module thermaldc

go 1.22
