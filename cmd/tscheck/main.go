// Command tscheck validates the JSONL time series exported by
// `tapo degraded -metrics-out` (and any other telemetry.JSONLWriter
// output) against the schema in internal/telemetry:
//
//   - every line must be a JSON object whose keys are exactly the
//     EpochSample fields (unknown keys fail: they mean producer and
//     consumer disagree about the schema),
//   - every required key must be present and every value must match its
//     declared type (numbers, and only finite ones — NaN/Inf poison any
//     downstream averaging),
//   - run numbers must be positive and non-decreasing across the file,
//     epochs strictly increasing within a run, and the [t_start_s,
//     t_end_s) intervals monotone within a run.
//
// Usage: tscheck [file...]
// With no file it reads stdin. Exit status 1 means a malformed series,
// 2 an I/O problem.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"thermaldc/internal/telemetry"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	if len(args) == 0 {
		st, err := checkStream("<stdin>", os.Stdin)
		return report("<stdin>", st, err)
	}
	code := 0
	for _, path := range args {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tscheck:", err)
			return 2
		}
		st, err := checkStream(path, f)
		f.Close()
		if c := report(path, st, err); c > code {
			code = c
		}
	}
	return code
}

func report(name string, st seriesStats, err error) int {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tscheck: FAIL:", err)
		return 1
	}
	fmt.Printf("tscheck: ok: %s (%d samples across %d runs)\n", name, st.Rows, st.Runs)
	return 0
}

// seriesStats summarizes a validated file.
type seriesStats struct {
	Rows, Runs int
}

// runState tracks the monotonicity invariants within one run.
type runState struct {
	epoch       int
	start, end  float64
	sawInterval bool
}

// checkStream validates one JSONL series; the returned error carries
// name:line for the first offending row.
func checkStream(name string, r io.Reader) (seriesStats, error) {
	schema := telemetry.SampleSchema()
	required := telemetry.SampleRequired()
	var st seriesStats
	lastRun := 0
	var cur runState

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("%s:%d: %s", name, line, fmt.Sprintf(format, args...))
		}

		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.UseNumber()
		var obj map[string]any
		if err := dec.Decode(&obj); err != nil {
			return st, fail("not a JSON object: %v", err)
		}
		if _, err := dec.Token(); err != io.EOF {
			return st, fail("trailing data after JSON object")
		}

		// Keys: no unknown names, no missing required fields.
		for k := range obj {
			if _, ok := schema[k]; !ok {
				return st, fail("unknown key %q (not in telemetry.SampleSchema)", k)
			}
		}
		for _, k := range required {
			if _, ok := obj[k]; !ok {
				return st, fail("missing required key %q", k)
			}
		}

		// Types: every present value must match its declared shape, and
		// every number must be finite (checked in sorted order so the
		// first error is deterministic).
		keys := make([]string, 0, len(obj))
		for k := range obj {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := checkType(k, schema[k], obj[k]); err != nil {
				return st, fail("%v", err)
			}
		}

		// Monotonicity: runs non-decreasing, epochs strictly increasing
		// and intervals monotone within a run.
		run := int(mustNum(obj["run"]))
		epoch := int(mustNum(obj["epoch"]))
		tStart, tEnd := mustNum(obj["t_start_s"]), mustNum(obj["t_end_s"])
		switch {
		case run < 1:
			return st, fail("run %d is not positive (JSONLWriter.NextRun was never called)", run)
		case run < lastRun:
			return st, fail("run %d after run %d (runs must be non-decreasing)", run, lastRun)
		case run > lastRun:
			lastRun = run
			st.Runs++
			cur = runState{}
		}
		if cur.sawInterval {
			if epoch <= cur.epoch {
				return st, fail("run %d epoch %d after epoch %d (epochs must be strictly increasing within a run)", run, epoch, cur.epoch)
			}
			if tStart < cur.start || tEnd < cur.end {
				return st, fail("run %d epoch %d interval [%g, %g) precedes [%g, %g) (timestamps must be monotone within a run)",
					run, epoch, tStart, tEnd, cur.start, cur.end)
			}
		}
		if tEnd < tStart {
			return st, fail("run %d epoch %d interval [%g, %g) is backwards", run, epoch, tStart, tEnd)
		}
		cur = runState{epoch: epoch, start: tStart, end: tEnd, sawInterval: true}
		st.Rows++
	}
	if err := sc.Err(); err != nil {
		return st, fmt.Errorf("%s: %w", name, err)
	}
	if st.Rows == 0 {
		return st, fmt.Errorf("%s: no samples", name)
	}
	return st, nil
}

// checkType validates one value against its schema shape.
func checkType(key string, ft telemetry.FieldType, v any) error {
	switch ft {
	case telemetry.FieldNumber:
		return checkNumber(key, v)
	case telemetry.FieldString:
		if _, ok := v.(string); !ok {
			return fmt.Errorf("key %q: want string, got %T", key, v)
		}
	case telemetry.FieldBool:
		if _, ok := v.(bool); !ok {
			return fmt.Errorf("key %q: want bool, got %T", key, v)
		}
	case telemetry.FieldNumberArray:
		arr, ok := v.([]any)
		if !ok {
			return fmt.Errorf("key %q: want number array, got %T", key, v)
		}
		for i, e := range arr {
			if err := checkNumber(fmt.Sprintf("%s[%d]", key, i), e); err != nil {
				return err
			}
		}
	}
	return nil
}

func checkNumber(key string, v any) error {
	n, ok := v.(json.Number)
	if !ok {
		return fmt.Errorf("key %q: want number, got %T", key, v)
	}
	f, err := n.Float64()
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
		return fmt.Errorf("key %q: value %s is not a finite number", key, n)
	}
	return nil
}

// mustNum reads a float that checkType already validated.
func mustNum(v any) float64 {
	f, _ := v.(json.Number).Float64()
	return f
}
