package main

import (
	"bytes"
	"strings"
	"testing"

	"thermaldc/internal/telemetry"
)

// goodSeries is a valid two-run file written through the real exporter so
// the test cannot drift from the producer.
func goodSeries(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	jw := telemetry.NewJSONLWriter(&buf)
	for run := 0; run < 2; run++ {
		jw.NextRun()
		for epoch := 0; epoch < 3; epoch++ {
			s := telemetry.EpochSample{
				Epoch:  epoch,
				TStart: float64(epoch) * 15,
				TEnd:   float64(epoch+1) * 15,
				Rung:   "warm", Resolved: true,
				RewardRate: 100, Completed: 10,
				PowerKW: 9, PowerHeadroomKW: 0.5, InletHeadroomC: 1.25,
				CracOutC: []float64{17.5, 18.75},
				LPSolves: 4, LPPivots: 20, LPAllocBytes: 0,
			}
			if run == 1 {
				// The second run exercises the zone fast-path fields.
				s.ZonePath = true
				s.ZoneRounds = 2 + epoch
				s.ZoneFallbacks = epoch % 2
			}
			if err := jw.Write(s); err != nil {
				t.Fatal(err)
			}
		}
	}
	return buf.String()
}

func TestCheckStreamAcceptsExporterOutput(t *testing.T) {
	st, err := checkStream("good", strings.NewReader(goodSeries(t)))
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != 6 || st.Runs != 2 {
		t.Fatalf("stats = %+v, want 6 rows across 2 runs", st)
	}
}

func TestCheckStreamRejections(t *testing.T) {
	good := goodSeries(t)
	lines := strings.Split(strings.TrimSuffix(good, "\n"), "\n")
	// corrupt rewrites one line of the good series.
	corrupt := func(i int, old, new string) string {
		mut := append([]string(nil), lines...)
		if !strings.Contains(mut[i], old) {
			t.Fatalf("line %d lacks %q: %s", i, old, mut[i])
		}
		mut[i] = strings.Replace(mut[i], old, new, 1)
		return strings.Join(mut, "\n") + "\n"
	}
	for _, tc := range []struct {
		name, in, want string
	}{
		{"unknown key", corrupt(0, `"epoch":0`, `"epohc":0`), "unknown key"},
		{"missing required", corrupt(0, `"reward_rate":100,`, ""), "missing required"},
		{"wrong type", corrupt(0, `"resolved":true`, `"resolved":"yes"`), "want bool"},
		{"nan", corrupt(0, `"reward_rate":100`, `"reward_rate":NaN`), "not a JSON object"},
		{"inf", corrupt(0, `"reward_rate":100`, `"reward_rate":1e999`), "not a finite number"},
		{"nan in array", corrupt(0, `"crac_out_c":[17.5,`, `"crac_out_c":[1e999,`), "not a finite number"},
		{"zero run", corrupt(0, `"run":1`, `"run":0`), "not positive"},
		{"run goes back", corrupt(5, `"run":2`, `"run":1`), "non-decreasing"},
		{"epoch repeats", corrupt(1, `"epoch":1`, `"epoch":0`), "strictly increasing"},
		{"time goes back", corrupt(2, `"t_start_s":30,"t_end_s":45`, `"t_start_s":1,"t_end_s":2`), "monotone"},
		{"backwards interval", corrupt(0, `"t_start_s":0,"t_end_s":15`, `"t_start_s":15,"t_end_s":0`), "backwards"},
		{"zone_path wrong type", corrupt(3, `"zone_path":true`, `"zone_path":1`), "want bool"},
		{"zone_rounds wrong type", corrupt(4, `"zone_rounds":3`, `"zone_rounds":"3"`), "want number"},
		{"zone_fallbacks wrong type", corrupt(4, `"zone_fallbacks":1`, `"zone_fallbacks":true`), "want number"},
		{"zone typo key", corrupt(3, `"zone_rounds":2`, `"zone_round":2`), "unknown key"},
		{"not json", "hello\n", "not a JSON object"},
		{"empty", "", "no samples"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := checkStream("bad", strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want it to mention %q", err, tc.want)
			}
		})
	}
}
