package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"thermaldc/internal/flightrec"
	"thermaldc/internal/telemetry"
)

// runTrace implements `tapo trace [lint] FILE...`: lint validates Chrome
// trace files written by `degraded -trace-out` against the exporter's
// schema; the default summary mode additionally reports span counts and
// durations by kind, the slowest LP solves, and a per-epoch critical-path
// breakdown. Summary mode lints first — a summary of a malformed trace
// would be misleading.
func runTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	top := fs.Int("top", 5, "slowest LP solves to list in the summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	mode := "summary"
	if len(rest) > 0 && (rest[0] == "lint" || rest[0] == "summary") {
		mode = rest[0]
		rest = rest[1:]
	}
	if len(rest) == 0 {
		return errors.New("usage: tapo trace [lint|summary] FILE...")
	}
	for _, path := range rest {
		ct, err := readTraceFile(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if err := ct.Lint(); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if mode == "lint" {
			fmt.Printf("%s: ok (%d events)\n", path, len(ct.TraceEvents))
			continue
		}
		fmt.Printf("%s: %d events\n", path, len(ct.TraceEvents))
		summarizeTrace(ct, *top)
	}
	return nil
}

func readTraceFile(path string) (*telemetry.ChromeTrace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return telemetry.ReadChromeTrace(f)
}

// summarizeTrace prints the three summary sections: per-kind duration
// stats, the top-N slowest LP solves, and per-epoch critical paths.
func summarizeTrace(ct *telemetry.ChromeTrace, top int) {
	type kindStat struct {
		name       string
		count      int
		total, max float64 // µs
	}
	stats := make(map[int32]*kindStat)
	var lps []telemetry.ChromeEvent
	var epochs []telemetry.ChromeEvent
	base := 0.0 // earliest ts, so the tables print offsets, not wall-clock µs
	for i, e := range ct.TraceEvents {
		if i == 0 || e.TS < base {
			base = e.TS
		}
	}
	for _, e := range ct.TraceEvents {
		ks := stats[e.Args.Kind]
		if ks == nil {
			ks = &kindStat{name: e.Name}
			stats[e.Args.Kind] = ks
		}
		ks.count++
		ks.total += e.Dur
		if e.Dur > ks.max {
			ks.max = e.Dur
		}
		switch e.Name {
		case "lp-solve":
			lps = append(lps, e)
		case "epoch":
			epochs = append(epochs, e)
		}
	}

	fmt.Println("\nspans by kind:")
	fmt.Printf("  %-12s %8s %12s %12s %12s\n", "kind", "count", "total_ms", "mean_us", "max_us")
	kinds := make([]int32, 0, len(stats))
	for k := range stats {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		ks := stats[k]
		fmt.Printf("  %-12s %8d %12.3f %12.1f %12.1f\n",
			ks.name, ks.count, ks.total/1e3, ks.total/float64(ks.count), ks.max)
	}

	if len(lps) > 0 {
		if top > len(lps) {
			top = len(lps)
		}
		sort.Slice(lps, func(i, j int) bool { return lps[i].Dur > lps[j].Dur })
		fmt.Printf("\ntop %d slowest LP solves:\n", top)
		fmt.Printf("  %-12s %10s %8s %5s %5s %4s\n", "ts_ms", "dur_us", "pivots", "pid", "tid", "err")
		for _, e := range lps[:top] {
			fmt.Printf("  %-12.3f %10.1f %8d %5d %5d %4d\n",
				(e.TS-base)/1e3, e.Dur, e.Args.Pivots, e.PID, e.TID, e.Args.Err)
		}
	}

	if len(epochs) > 0 {
		fmt.Println("\nper-epoch critical path:")
		fmt.Printf("  %-4s %-6s %10s %11s %11s %9s %8s %9s\n",
			"run", "epoch", "wall_us", "control_us", "workers_us", "busiest", "solves", "pivots")
		for _, ep := range epochs {
			summarizeEpoch(ct, ep)
		}
	}
}

// summarizeEpoch prints one epoch span's critical path: its wall time,
// how much of it the control track (tid of the epoch span itself) spent
// in stage spans, the busiest parallel worker track, and the LP work the
// window contains. Containment is by time window within the epoch's pid,
// which is exactly the parentage rule of the exported format.
func summarizeEpoch(ct *telemetry.ChromeTrace, ep telemetry.ChromeEvent) {
	end := ep.TS + ep.Dur
	var controlUS float64
	workerUS := make(map[int64]float64)
	var solves, pivots int64
	for _, e := range ct.TraceEvents {
		if e.PID != ep.PID || e.TS < ep.TS || e.TS+e.Dur > end {
			continue
		}
		switch e.Name {
		case "stage":
			if e.TID == ep.TID {
				controlUS += e.Dur
			}
		case "lp-solve":
			solves++
			pivots += e.Args.Pivots
		}
		if e.TID != ep.TID {
			workerUS[e.TID] += e.Dur
		}
	}
	var busiest int64
	var busiestUS, totalWorkerUS float64
	for tid, us := range workerUS {
		totalWorkerUS += us
		if us > busiestUS {
			busiest, busiestUS = tid, us
		}
	}
	busy := "-"
	if len(workerUS) > 0 {
		busy = fmt.Sprintf("t%d", busiest)
	}
	fmt.Printf("  %-4d %-6d %10.1f %11.1f %11.1f %9s %8d %9d\n",
		ep.PID, ep.Args.Label, ep.Dur, controlUS, totalWorkerUS, busy, solves, pivots)
}

// runFlight implements `tapo flight DIR`: it validates every flight
// bundle in DIR (parse + required fields) and prints a one-line summary
// per bundle. Missing or empty directories are an error so CI smokes
// fail loudly when the recorder produced nothing.
func runFlight(args []string) error {
	fs := flag.NewFlagSet("flight", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("usage: tapo flight DIR")
	}
	dir := fs.Arg(0)
	paths, err := flightrec.List(dir)
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no flight bundles in %s", dir)
	}
	fmt.Printf("%s: %d bundle(s)\n", dir, len(paths))
	for _, path := range paths {
		b, err := flightrec.ReadBundle(path)
		if err != nil {
			return fmt.Errorf("%s: %w", filepath.Base(path), err)
		}
		fmt.Printf("  %s: reason=%s run=%d epoch=%d violations=%d spans=%d",
			filepath.Base(path), b.Reason, b.Run, b.Epoch, b.Violations, len(b.Spans))
		if b.Rung != "" {
			fmt.Printf(" rung=%s", b.Rung)
		}
		if b.ErrKind != "" {
			fmt.Printf(" err=%s", b.ErrKind)
		}
		fmt.Println()
	}
	return nil
}
