package main

import (
	"context"
	"os"
	"strings"
	"testing"

	"thermaldc/internal/flightrec"
)

// degradedScale is the tiny fault sweep every observability test drives.
var degradedScale = []string{"-trials", "1", "-nodes", "10", "-cracs", "2",
	"-horizon", "20", "-epoch", "10", "-faults", "0:0,2:1"}

func TestRunDegradedTraceOutAtomic(t *testing.T) {
	path := t.TempDir() + "/trace.json"
	if err := runDegraded(context.Background(), append([]string{"-trace-out", path}, degradedScale...)); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil || st.Size() == 0 {
		t.Fatalf("trace not written: %v", err)
	}
	// The written trace must survive its own lint.
	if err := runTrace([]string{"lint", path}); err != nil {
		t.Fatalf("trace lint rejected a fresh export: %v", err)
	}
	// And the summary mode must digest it too.
	if err := runTrace([]string{"-top", "3", path}); err != nil {
		t.Fatalf("trace summary failed: %v", err)
	}
	// A failing run must not leave a torn trace under the final name.
	bad := t.TempDir() + "/bad.json"
	if err := runDegraded(context.Background(), []string{"-trials", "0", "-trace-out", bad}); err == nil {
		t.Fatal("zero-trial sweep succeeded")
	}
	if _, err := os.Stat(bad); !os.IsNotExist(err) {
		t.Fatalf("failed run left %s behind (err=%v)", bad, err)
	}
}

func TestRunTraceErrors(t *testing.T) {
	if err := runTrace(nil); err == nil {
		t.Fatal("trace with no files accepted")
	}
	if err := runTrace([]string{"lint"}); err == nil {
		t.Fatal("lint with no files accepted")
	}
	if err := runTrace([]string{t.TempDir() + "/missing.json"}); err == nil {
		t.Fatal("missing file accepted")
	}
	junk := t.TempDir() + "/junk.json"
	if err := os.WriteFile(junk, []byte(`{"traceEvents":[{"ph":"M"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runTrace([]string{"lint", junk}); err == nil || !strings.Contains(err.Error(), "ph") {
		t.Fatalf("malformed trace passed lint: %v", err)
	}
}

func TestRunDegradedFlightDir(t *testing.T) {
	dir := t.TempDir() + "/flight"
	// A 1ns solve budget times out every epoch, marching the ladder to a
	// safe rung — guaranteed flight-recorder triggers.
	args := append([]string{"-solve-timeout", "1ns", "-flight-dir", dir}, degradedScale...)
	if err := runDegraded(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	paths, err := flightrec.List(dir)
	if err != nil || len(paths) == 0 {
		t.Fatalf("no flight bundles: %v", err)
	}
	if err := runFlight([]string{dir}); err != nil {
		t.Fatalf("flight summary failed: %v", err)
	}
}

func TestRunFlightErrors(t *testing.T) {
	if err := runFlight(nil); err == nil {
		t.Fatal("flight with no dir accepted")
	}
	if err := runFlight([]string{t.TempDir()}); err == nil {
		t.Fatal("empty dir accepted")
	}
}
