package main

import (
	"context"
	"os"
	"testing"
)

// The run* helpers parse their own flags, so each can be exercised
// directly at a tiny scale; output goes to stdout, which `go test`
// captures.

func TestRunTable1(t *testing.T) {
	if err := runTable1([]string{"-static", "0.25"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig345(t *testing.T) {
	if err := runFig345(nil); err != nil {
		t.Fatal(err)
	}
	csv := t.TempDir() + "/f345.csv"
	if err := runFig345([]string{"-csv", csv}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(csv); err != nil {
		t.Fatalf("CSV not written: %v", err)
	}
}

func TestRunBoundsTiny(t *testing.T) {
	if err := runBounds([]string{"-nodes", "10", "-cracs", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig6Tiny(t *testing.T) {
	if err := runFig6(context.Background(), []string{"-trials", "1", "-nodes", "10", "-cracs", "2", "-quiet"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSweepTiny(t *testing.T) {
	if err := runSweep(context.Background(), []string{"-kind", "psi", "-values", "25,50", "-trials", "1", "-nodes", "10", "-cracs", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSweepUnknownKind(t *testing.T) {
	if err := runSweep(context.Background(), []string{"-kind", "nope"}); err == nil {
		t.Fatal("unknown sweep kind accepted")
	}
}

func TestRunAblationTiny(t *testing.T) {
	if err := runAblation(context.Background(), []string{"-trials", "1", "-nodes", "10", "-cracs", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSimulateTiny(t *testing.T) {
	if err := runSimulate(context.Background(), []string{"-trials", "1", "-nodes", "10", "-cracs", "2", "-horizon", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMinPowerTiny(t *testing.T) {
	if err := runMinPower([]string{"-nodes", "10", "-cracs", "2", "-floors", "0.5"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunPoliciesTiny(t *testing.T) {
	if err := runPolicies(context.Background(), []string{"-trials", "1", "-nodes", "10", "-cracs", "2", "-horizon", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDynamicTiny(t *testing.T) {
	if err := runDynamic(context.Background(), []string{"-nodes", "10", "-cracs", "2", "-horizon", "30", "-epoch", "15", "-period", "30"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunThermalTiny(t *testing.T) {
	if err := runThermal([]string{"-nodes", "10", "-cracs", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDegradedTiny(t *testing.T) {
	if err := runDegraded(context.Background(), []string{"-trials", "1", "-nodes", "10", "-cracs", "2",
		"-horizon", "20", "-epoch", "10", "-faults", "0:0,2:1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDegradedCheckpointFlags(t *testing.T) {
	scale := []string{"-trials", "1", "-nodes", "10", "-cracs", "2",
		"-horizon", "20", "-epoch", "10", "-faults", "0:0,2:1"}
	dir := t.TempDir() + "/ck"
	if err := runDegraded(context.Background(), append([]string{"-checkpoint", dir}, scale...)); err != nil {
		t.Fatal(err)
	}
	// Resuming a finished sweep replays the journal and re-renders.
	if err := runDegraded(context.Background(), append([]string{"-resume", dir}, scale...)); err != nil {
		t.Fatal(err)
	}
	if err := runDegraded(context.Background(), []string{"-checkpoint", "a", "-resume", "b"}); err == nil {
		t.Fatal("conflicting -checkpoint/-resume accepted")
	}
	if err := runDegraded(context.Background(), []string{"-crash-after", "3"}); err == nil {
		t.Fatal("-crash-after without -checkpoint accepted")
	}
}

func TestRunDegradedMetricsOutAtomic(t *testing.T) {
	path := t.TempDir() + "/series.jsonl"
	if err := runDegraded(context.Background(), []string{"-trials", "1", "-nodes", "10", "-cracs", "2",
		"-horizon", "20", "-epoch", "10", "-faults", "0:0", "-metrics-out", path}); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil || st.Size() == 0 {
		t.Fatalf("metrics series not written: %v", err)
	}
	// A failing run must not leave a torn file under the final name.
	bad := t.TempDir() + "/bad.jsonl"
	if err := runDegraded(context.Background(), []string{"-trials", "0", "-metrics-out", bad}); err == nil {
		t.Fatal("zero-trial sweep succeeded")
	}
	if _, err := os.Stat(bad); !os.IsNotExist(err) {
		t.Fatalf("failed run left %s behind (err=%v)", bad, err)
	}
}

func TestParseLevels(t *testing.T) {
	levels, err := parseLevels("0:0, 2:1,4:2")
	if err != nil || len(levels) != 3 {
		t.Fatalf("parseLevels = %v, %v", levels, err)
	}
	if levels[1].NodeFailures != 2 || levels[1].CracDegradations != 1 {
		t.Fatalf("level 1 = %+v", levels[1])
	}
	for _, bad := range []string{"", "2", "2:x", "x:1", "-1:0", "2:-1", "2:1:3"} {
		if _, err := parseLevels(bad); err == nil {
			t.Errorf("parseLevels(%q) accepted", bad)
		}
	}
}

func TestParseValues(t *testing.T) {
	vs, err := parseValues("1, 2.5,3")
	if err != nil || len(vs) != 3 || vs[1] != 2.5 {
		t.Fatalf("parseValues = %v, %v", vs, err)
	}
	if _, err := parseValues("1,x"); err == nil {
		t.Fatal("bad value accepted")
	}
}
