// Command tapo (Thermal-Aware Performance Optimization) regenerates the
// paper's tables and figures and runs the extension experiments.
//
// Usage:
//
//	tapo fig6     [-trials N] [-nodes N] [-cracs N] [-seed S] [-quiet]
//	              [-search-parallelism N]
//	tapo table1   [-static F]
//	tapo table2
//	tapo fig345
//	tapo bounds   [-nodes N] [-cracs N] [-seed S] [-static F] [-vprop F]
//	tapo sweep    -kind {powercap|psi|vprop|static} [-values a,b,c] [...]
//	tapo ablation [-trials N] [-nodes N] [-cracs N]
//	tapo simulate [-trials N] [-nodes N] [-cracs N] [-horizon SEC]
//	tapo degraded [-trials N] [-nodes N] [-cracs N] [-horizon SEC]
//	              [-epoch SEC] [-faults nodes:cracs,...] [-solve-timeout DUR]
//	              [-metrics-out FILE] [-checkpoint DIR] [-resume DIR]
//	              [-trace-out FILE] [-flight-dir DIR]
//	tapo trace    [lint] FILE...
//	tapo flight   DIR
//
// Global telemetry flags (before the command): -log-level/-log-json tune
// the structured logger, -serve-metrics ADDR exposes /metrics (Prometheus
// text), /debug/vars (expvar), and /debug/pprof on an HTTP listener for
// the duration of the run.
//
// SIGINT/SIGTERM cancel the run at the next epoch or trial boundary and
// exit 130; a second signal forces immediate exit. With `degraded
// -checkpoint DIR` every completed epoch is already durable on disk when
// the signal lands, so `degraded -resume DIR` continues the sweep where
// it stopped.
//
// Full paper scale is `-trials 25 -nodes 150 -cracs 3`; the defaults are
// reduced so every command finishes interactively.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"

	"thermaldc/internal/assign"
	"thermaldc/internal/experiments"
	"thermaldc/internal/flightrec"
	"thermaldc/internal/linprog"
	"thermaldc/internal/persist"
	"thermaldc/internal/report"
	"thermaldc/internal/scenario"
	"thermaldc/internal/telemetry"
)

// Global flags — given before the command (tapo -cpuprofile cpu.out fig6 …)
// so every subcommand can be profiled and tuned the same way.
var (
	cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	lpPricing    = flag.String("lp-pricing", "dantzig", "simplex pricing rule for the Stage-1 LPs: dantzig|devex")
	lpMethod     = flag.String("lp-method", "tableau", "simplex core for the assignment LPs: tableau|revised")
	lpWarm       = flag.Bool("lp-warm", false, "retain optimal bases and dual warm-start epoch re-solves (revised core only)")
	logLevel     = flag.String("log-level", "info", "log verbosity: debug|info|warn|error")
	logJSON      = flag.Bool("log-json", false, "emit logs as JSON lines instead of plain text")
	serveMetrics = flag.String("serve-metrics", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :9090) for the duration of the run")
)

// pricing and method are the parsed -lp-pricing / -lp-method values,
// applied to every assign.Options a subcommand builds.
var (
	pricing linprog.Pricing
	method  linprog.Method
)

// recorder is the process-wide telemetry recorder, non-nil only when
// -serve-metrics is given (subcommands with their own sinks, like
// degraded -metrics-out, reuse it when present so one registry backs both).
var recorder *telemetry.Recorder

// tunePricing applies the -lp-pricing / -lp-method / -lp-warm selections
// (and, when -serve-metrics is on, the process recorder) to a subcommand's
// options. The defaults leave the options untouched, so default CLI output
// is byte-identical to builds without these flags.
func tunePricing(opts *assign.Options) {
	opts.Pricing = pricing
	opts.Method = method
	opts.WarmStart = *lpWarm
	opts.Recorder = recorder
}

// writeCSV writes one experiment result to path via the given writer
// function ("" = skip). The write is atomic — temp file, fsync, rename —
// so a crash or full disk never leaves a torn CSV under the final name.
func writeCSV(path string, write func(w io.Writer) error) error {
	if path == "" {
		return nil
	}
	if err := persist.WriteFileAtomic(path, write); err != nil {
		return err
	}
	telemetry.Default().Info("wrote " + path)
	return nil
}

func main() { os.Exit(run()) }

// run carries the real main so profile-writing defers survive the exit.
func run() int {
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		return 2
	}
	cmd, args := flag.Arg(0), flag.Args()[1:]

	switch *lpPricing {
	case "dantzig":
		pricing = linprog.PricingDantzig
	case "devex":
		pricing = linprog.PricingDevex
	default:
		fmt.Fprintf(os.Stderr, "tapo: unknown -lp-pricing %q (want dantzig or devex)\n", *lpPricing)
		return 2
	}
	switch *lpMethod {
	case "tableau":
		method = linprog.MethodTableau
	case "revised":
		method = linprog.MethodRevised
	default:
		fmt.Fprintf(os.Stderr, "tapo: unknown -lp-method %q (want tableau or revised)\n", *lpMethod)
		return 2
	}
	if *lpWarm && method != linprog.MethodRevised {
		fmt.Fprintln(os.Stderr, "tapo: -lp-warm requires -lp-method revised")
		return 2
	}
	lvl, lvlErr := telemetry.ParseLevel(*logLevel)
	if lvlErr != nil {
		fmt.Fprintf(os.Stderr, "tapo: %v\n", lvlErr)
		return 2
	}
	telemetry.SetDefault(telemetry.NewLogger(os.Stderr, lvl, *logJSON))
	if *serveMetrics != "" {
		recorder = telemetry.NewRecorder()
		addr, closeServe, srvErr := telemetry.Serve(*serveMetrics, recorder.Registry())
		if srvErr != nil {
			fmt.Fprintf(os.Stderr, "tapo: %v\n", srvErr)
			return 1
		}
		defer closeServe()
		telemetry.Default().Info("serving metrics", "addr", addr)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tapo: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "tapo: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			telemetry.Default().Info("wrote " + *cpuProfile)
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tapo: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "tapo: %v\n", err)
				return
			}
			telemetry.Default().Info("wrote " + *memProfile)
		}()
	}

	ctx, stop := signalContext()
	defer stop()

	var err error
	switch cmd {
	case "fig6":
		err = runFig6(ctx, args)
	case "table1":
		err = runTable1(args)
	case "table2":
		fmt.Println(experiments.Table2())
	case "fig345":
		err = runFig345(args)
	case "bounds":
		err = runBounds(args)
	case "sweep":
		err = runSweep(ctx, args)
	case "ablation":
		err = runAblation(ctx, args)
	case "simulate":
		err = runSimulate(ctx, args)
	case "minpower":
		err = runMinPower(args)
	case "policies":
		err = runPolicies(ctx, args)
	case "dynamic":
		err = runDynamic(ctx, args)
	case "degraded":
		err = runDegraded(ctx, args)
	case "thermal":
		err = runThermal(args)
	case "compare":
		err = runCompare(ctx, args)
	case "burst":
		err = runBurst(ctx, args)
	case "trace":
		err = runTrace(args)
	case "flight":
		err = runFlight(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "tapo: unknown command %q\n\n", cmd)
		usage()
		return 2
	}
	if errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "tapo %s: interrupted\n", cmd)
		return 130
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tapo %s: %v\n", cmd, err)
		return 1
	}
	return 0
}

// signalContext returns a context canceled by the first SIGINT/SIGTERM so
// long-running commands stop at the next epoch or trial boundary (with
// -checkpoint, everything already committed stays durable). A second
// signal forces immediate exit with the conventional interrupt status.
func signalContext() (context.Context, func()) {
	ctx, cancel := context.WithCancel(context.Background())
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		s, ok := <-sigc
		if !ok {
			return
		}
		telemetry.Default().Warn("received " + s.String() + "; finishing the current step (signal again to force quit)")
		cancel()
		if _, ok := <-sigc; ok {
			telemetry.Default().Error("second signal; exiting immediately")
			os.Exit(130)
		}
	}()
	return ctx, func() {
		signal.Stop(sigc)
		close(sigc)
		cancel()
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `tapo — thermal-aware performance optimization experiments

commands:
  fig6      Figure 6: %% improvement of three-stage vs Equation-21 baseline
  table1    Table I: node-type parameters + derived P-state powers
  table2    Table II: EC/RC ranges per rack label
  fig345    Figures 3-5: worked reward-rate function example
  bounds    Equation 17/18: Pmin, Pmax and Pconst for one scenario
  sweep     extension sweeps: -kind powercap|psi|vprop|static
  ablation  temperature-search strategy ablation
  simulate  second-step dynamic-scheduler validation
  minpower  §VIII extension: minimize power under a reward-rate floor
  policies  second-step scheduling-policy ablation
  dynamic   epoch-reassignment extension under arrival-rate drift
  degraded  fault injection: open-loop vs re-optimizing epoch controller
  thermal   thermal map + P-state histogram after the assignment
  compare   naive ondemand clamp vs Eq. 21 vs three-stage
  burst     MMPP arrival-burstiness sweep over both scheduler policies
  trace     summarize ("trace FILE") or lint ("trace lint FILE...") a
            Chrome trace written by "degraded -trace-out"
  flight    validate and summarize flight-recorder bundles in a directory

global flags (before the command):
  -cpuprofile FILE     write a CPU profile (inspect with go tool pprof)
  -memprofile FILE     write a heap profile on exit
  -lp-pricing RULE     simplex pricing for Stage-1 LPs: dantzig (default) | devex
  -log-level LEVEL     log verbosity: debug | info (default) | warn | error
  -log-json            emit logs as JSON lines instead of plain text
  -serve-metrics ADDR  serve /metrics, /debug/vars and /debug/pprof on ADDR

SIGINT/SIGTERM stop the run at the next epoch/trial boundary (exit 130);
a second signal exits immediately. "degraded -checkpoint DIR" makes every
completed epoch durable; "degraded -resume DIR" continues a killed sweep.

run "tapo <cmd> -h" for flags; paper scale is -trials 25 -nodes 150 -cracs 3
`)
}

// scaleFlags registers the shared size/seed flags.
func scaleFlags(fs *flag.FlagSet) (trials, nodes, cracs *int, seed *int64) {
	trials = fs.Int("trials", 5, "trials per cell (paper: 25)")
	nodes = fs.Int("nodes", 30, "compute nodes (paper: 150)")
	cracs = fs.Int("cracs", 2, "CRAC units (paper: 3)")
	seed = fs.Int64("seed", 1, "base random seed")
	return
}

// searchParFlag registers the CRAC temperature-search worker-pool flag.
// Results are bit-identical for every setting (see internal/tempsearch).
func searchParFlag(fs *flag.FlagSet) *int {
	return fs.Int("search-parallelism", 0, "workers per temperature search (0 = GOMAXPROCS; any value gives identical results)")
}

func runFig6(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("fig6", flag.ExitOnError)
	trials, nodes, cracs, seed := scaleFlags(fs)
	quiet := fs.Bool("quiet", false, "suppress per-trial progress")
	csvPath := fs.String("csv", "", "also write per-trial rows to this CSV file")
	simHorizon := fs.Float64("sim", 0, "also simulate both techniques over this horizon (s) and report realized improvement")
	simPaper := fs.Bool("sim-paper-policy", false, "use the paper's strict min-ratio policy in the simulation")
	searchPar := searchParFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.DefaultFig6Config()
	cfg.Trials, cfg.NNodes, cfg.NCracs, cfg.BaseSeed = *trials, *nodes, *cracs, *seed
	cfg.SimHorizon = *simHorizon
	cfg.SimPaperPolicy = *simPaper
	cfg.Options.Search.Parallelism = *searchPar
	tunePricing(&cfg.Options)
	progress := func(line string) { telemetry.Default().Info(line) }
	if *quiet {
		progress = nil
	}
	res, err := experiments.Figure6Context(ctx, cfg, progress)
	if err != nil {
		return err
	}
	fmt.Println(res.Render())
	return writeCSV(*csvPath, func(w io.Writer) error { return report.Fig6CSV(w, res) })
}

func runTable1(args []string) error {
	fs := flag.NewFlagSet("table1", flag.ExitOnError)
	static := fs.Float64("static", 0.3, "static share of P-state-0 core power")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Println(experiments.Table1(*static))
	return nil
}

func runFig345(args []string) error {
	fs := flag.NewFlagSet("fig345", flag.ExitOnError)
	csvPath := fs.String("csv", "", "also write function samples to this CSV file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	series, err := experiments.Figures345()
	if err != nil {
		return err
	}
	fmt.Println(experiments.RenderFig345(series))
	return writeCSV(*csvPath, func(w io.Writer) error { return report.Fig345CSV(w, series) })
}

func runBounds(args []string) error {
	fs := flag.NewFlagSet("bounds", flag.ExitOnError)
	_, nodes, cracs, seed := scaleFlags(fs)
	static := fs.Float64("static", 0.3, "static power share")
	vprop := fs.Float64("vprop", 0.1, "ECS proportionality variation")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := scenario.Default(*static, *vprop, *seed)
	cfg.NNodes, cfg.NCracs = *nodes, *cracs
	sc, err := scenario.Build(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("Equation 17/18 power bounds (%d nodes, %d CRACs, seed %d)\n", *nodes, *cracs, *seed)
	fmt.Printf("  Pmin   = %10.2f kW   (all cores off)\n", sc.Pmin)
	fmt.Printf("  Pmax   = %10.2f kW   (all cores at P-state 0)\n", sc.Pmax)
	fmt.Printf("  Pconst = %10.2f kW   ((Pmin+Pmax)/2)\n", sc.DC.Pconst)
	return nil
}

func parseValues(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func runSweep(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	trials, nodes, cracs, seed := scaleFlags(fs)
	kind := fs.String("kind", "powercap", "powercap | psi | vprop | static | hetero")
	csvPath := fs.String("csv", "", "also write sweep points to this CSV file")
	valuesFlag := fs.String("values", "", "comma-separated sweep values (defaults per kind)")
	static := fs.Float64("static", 0.3, "static power share (non-swept)")
	vprop := fs.Float64("vprop", 0.3, "Vprop (non-swept)")
	searchPar := searchParFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	defaults := map[string][]float64{
		"powercap": {0.2, 0.35, 0.5, 0.65, 0.8},
		"psi":      {12.5, 25, 50, 75, 100},
		"vprop":    {0.05, 0.1, 0.2, 0.3, 0.4},
		"static":   {0.1, 0.2, 0.3, 0.4},
		"hetero":   {0.02, 0.25, 0.5, 0.75, 0.98},
	}
	values := defaults[*kind]
	if *valuesFlag != "" {
		var err error
		if values, err = parseValues(*valuesFlag); err != nil {
			return err
		}
	}
	if values == nil {
		return fmt.Errorf("unknown sweep kind %q", *kind)
	}
	cfg := experiments.DefaultSweepConfig(values)
	cfg.Trials, cfg.NNodes, cfg.NCracs, cfg.BaseSeed = *trials, *nodes, *cracs, *seed
	cfg.StaticShare, cfg.Vprop = *static, *vprop
	cfg.Options.Search.Parallelism = *searchPar
	tunePricing(&cfg.Options)
	var res *experiments.SweepResult
	var err error
	switch *kind {
	case "powercap":
		res, err = experiments.PowerCapSweepContext(ctx, cfg)
	case "psi":
		res, err = experiments.PsiSweepContext(ctx, cfg)
	case "vprop":
		res, err = experiments.VpropSweepContext(ctx, cfg)
	case "static":
		res, err = experiments.StaticShareSweepContext(ctx, cfg)
	case "hetero":
		res, err = experiments.HeterogeneitySweepContext(ctx, cfg)
	}
	if err != nil {
		return err
	}
	fmt.Println(res.Render())
	return writeCSV(*csvPath, func(w io.Writer) error { return report.SweepCSV(w, res) })
}

func runAblation(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("ablation", flag.ExitOnError)
	trials, nodes, cracs, seed := scaleFlags(fs)
	searchPar := searchParFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.DefaultSweepConfig(nil)
	cfg.Trials, cfg.NNodes, cfg.NCracs, cfg.BaseSeed = *trials, *nodes, *cracs, *seed
	cfg.Options.Search.Parallelism = *searchPar
	tunePricing(&cfg.Options)
	res, err := experiments.StrategyAblationContext(ctx, cfg, []assign.Strategy{
		assign.CoarseToFine, assign.FullGrid, assign.CoordDescent,
	})
	if err != nil {
		return err
	}
	fmt.Println(res.Render())
	return nil
}

func runMinPower(args []string) error {
	fs := flag.NewFlagSet("minpower", flag.ExitOnError)
	_, nodes, cracs, seed := scaleFlags(fs)
	static := fs.Float64("static", 0.3, "static power share")
	vprop := fs.Float64("vprop", 0.3, "ECS proportionality variation")
	fracs := fs.String("floors", "0.3,0.5,0.7,0.9", "reward floors as fractions of the Pconst-optimal reward")
	searchPar := searchParFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	values, err := parseValues(*fracs)
	if err != nil {
		return err
	}
	cfg := scenario.Default(*static, *vprop, *seed)
	cfg.NNodes, cfg.NCracs = *nodes, *cracs
	sc, err := scenario.Build(cfg)
	if err != nil {
		return err
	}
	opts := assign.DefaultOptions()
	opts.Search.Parallelism = *searchPar
	tunePricing(&opts)
	primal, err := assign.ThreeStage(sc.DC, sc.Thermal, opts)
	if err != nil {
		return err
	}
	fmt.Printf("§VIII extension — minimize power s.t. reward floor (%d nodes, %d CRACs)\n", *nodes, *cracs)
	fmt.Printf("Primal at Pconst %.1f kW: reward %.1f/s\n\n", sc.DC.Pconst, primal.RewardRate())
	fmt.Printf("%-10s %-14s %-14s %-14s %-12s\n", "floor", "reward floor", "relaxed kW", "integer kW", "achieved")
	for _, f := range values {
		floor := f * primal.RewardRate()
		res, err := assign.MinPowerForReward(sc.DC, sc.Thermal, floor, opts)
		if err != nil {
			fmt.Printf("%-10.2f infeasible: %v\n", f, err)
			continue
		}
		fmt.Printf("%-10.2f %-14.1f %-14.1f %-14.1f %-12.1f\n",
			f, floor, res.RelaxedPower, res.IntegerPower, res.Stage3.RewardRate)
	}
	return nil
}

func runPolicies(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("policies", flag.ExitOnError)
	trials, nodes, cracs, seed := scaleFlags(fs)
	horizon := fs.Float64("horizon", 60, "arrival horizon in seconds")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.DefaultSweepConfig(nil)
	cfg.Trials, cfg.NNodes, cfg.NCracs, cfg.BaseSeed = *trials, *nodes, *cracs, *seed
	res, err := experiments.PolicyAblationContext(ctx, cfg, *horizon)
	if err != nil {
		return err
	}
	fmt.Println(res.Render())
	return nil
}

func runDynamic(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("dynamic", flag.ExitOnError)
	_, nodes, cracs, seed := scaleFlags(fs)
	horizon := fs.Float64("horizon", 120, "arrival horizon in seconds")
	epoch := fs.Float64("epoch", 30, "reassignment interval in seconds")
	amp := fs.Float64("amplitude", 0.8, "arrival-rate drift amplitude")
	period := fs.Float64("period", 120, "drift period in seconds")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.DefaultDynamicConfig(*seed)
	cfg.NNodes, cfg.NCracs = *nodes, *cracs
	cfg.Horizon, cfg.Epoch, cfg.Amplitude, cfg.Period = *horizon, *epoch, *amp, *period
	res, err := experiments.DynamicReassignmentContext(ctx, cfg)
	if err != nil {
		return err
	}
	fmt.Println(res.Render())
	return nil
}

// parseLevels parses a "-faults" spec like "2:1,4:2" into severity levels
// (failed nodes : degraded CRACs per level).
func parseLevels(s string) ([]experiments.DegradedLevel, error) {
	var out []experiments.DegradedLevel
	for _, part := range strings.Split(s, ",") {
		var lvl experiments.DegradedLevel
		nums := strings.Split(strings.TrimSpace(part), ":")
		if len(nums) != 2 {
			return nil, fmt.Errorf("bad fault level %q (want nodes:cracs)", part)
		}
		var err error
		if lvl.NodeFailures, err = strconv.Atoi(nums[0]); err != nil {
			return nil, fmt.Errorf("bad fault level %q: %w", part, err)
		}
		if lvl.CracDegradations, err = strconv.Atoi(nums[1]); err != nil {
			return nil, fmt.Errorf("bad fault level %q: %w", part, err)
		}
		if lvl.NodeFailures < 0 || lvl.CracDegradations < 0 {
			return nil, fmt.Errorf("bad fault level %q: counts must be non-negative", part)
		}
		out = append(out, lvl)
	}
	return out, nil
}

func runDegraded(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("degraded", flag.ExitOnError)
	trials, nodes, cracs, seed := scaleFlags(fs)
	horizon := fs.Float64("horizon", 60, "arrival horizon in seconds")
	epoch := fs.Float64("epoch", 15, "re-optimization epoch in seconds")
	faultsFlag := fs.String("faults", "0:0,2:0,2:1,4:1,6:2", "severity levels as failedNodes:degradedCracs, comma-separated")
	solveTimeout := fs.Duration("solve-timeout", 0, "per-epoch solve deadline (e.g. 200ms); 0 disables; expired budgets engage the degradation ladder")
	metricsOut := fs.String("metrics-out", "", "write a per-epoch JSONL time series (one run per trial×mode) to this file")
	checkpointDir := fs.String("checkpoint", "", "journal every completed epoch to this directory; a killed sweep resumes with -resume")
	resumeDir := fs.String("resume", "", "resume a killed sweep from this checkpoint directory (config must match)")
	snapEvery := fs.Int("snapshot-every", 0, "compact the checkpoint journal every N commits (0 = default, negative = never)")
	crashAfter := fs.Int("crash-after", 0, "TESTING: exit hard right after the Nth durable commit (requires -checkpoint)")
	traceOut := fs.String("trace-out", "", "write a Chrome/Perfetto trace of the solve pipeline to this file (open at ui.perfetto.dev)")
	traceCap := fs.Int("trace-cap", 0, "span ring capacity for -trace-out (0 = default; the trace keeps the most recent spans)")
	flightDir := fs.String("flight-dir", "", "dump a diagnostic flight-recorder bundle to this directory on every degraded epoch")
	flightMax := fs.Int("flight-max", flightrec.DefaultMaxBundles, "keep at most N flight bundles, pruning the oldest")
	flightInterval := fs.Duration("flight-interval", flightrec.DefaultMinInterval, "minimum wall time between flight bundles (rate limit)")
	searchPar := searchParFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	levels, err := parseLevels(*faultsFlag)
	if err != nil {
		return err
	}
	cfg := experiments.DefaultDegradedConfig(*seed)
	cfg.Trials, cfg.NNodes, cfg.NCracs = *trials, *nodes, *cracs
	cfg.Horizon, cfg.Epoch = *horizon, *epoch
	cfg.Levels = levels
	cfg.SolveTimeout = *solveTimeout
	cfg.Options.Search.Parallelism = *searchPar
	tunePricing(&cfg.Options)
	cfg.CheckpointDir = *checkpointDir
	cfg.SnapshotEvery = *snapEvery
	if *resumeDir != "" {
		if *checkpointDir != "" && *checkpointDir != *resumeDir {
			return fmt.Errorf("-checkpoint %q and -resume %q name different directories", *checkpointDir, *resumeDir)
		}
		cfg.CheckpointDir = *resumeDir
		cfg.Resume = true
	}
	if *crashAfter > 0 {
		if cfg.CheckpointDir == "" {
			return fmt.Errorf("-crash-after requires -checkpoint")
		}
		n := *crashAfter
		cfg.CommitHook = func(commits int) {
			if commits == n {
				telemetry.Default().Error("crash-after: simulating a crash", "commit", commits)
				os.Exit(7)
			}
		}
	}
	cfg.Recorder = recorder
	var mf *persist.AtomicFile
	if *metricsOut != "" {
		if cfg.Recorder == nil {
			cfg.Recorder = telemetry.NewRecorder()
		}
		// The series streams into a temp file and only takes the final
		// name on a clean finish, so a crash never leaves a torn JSONL.
		mf, err = persist.NewAtomicFile(*metricsOut)
		if err != nil {
			return err
		}
		defer mf.Abort() // no-op after Commit; discards a torn series on error
		cfg.Recorder.Series = telemetry.NewJSONLWriter(mf)
		cfg.Options.Recorder = cfg.Recorder
	}
	if *traceOut != "" || *flightDir != "" {
		// Both the trace export and the flight recorder read the span ring,
		// so either flag enables tracing on a (possibly fresh) recorder.
		if cfg.Recorder == nil {
			cfg.Recorder = telemetry.NewRecorder()
		}
		if cfg.Recorder.Trace == nil {
			cfg.Recorder.Trace = telemetry.NewTracer(*traceCap)
		}
		cfg.Options.Recorder = cfg.Recorder
	}
	if *flightDir != "" {
		fr, frErr := flightrec.New(flightrec.Config{
			Dir:         *flightDir,
			MaxBundles:  *flightMax,
			MinInterval: *flightInterval,
		})
		if frErr != nil {
			return frErr
		}
		cfg.FlightRec = fr
	}
	res, err := experiments.DegradedSweepContext(ctx, cfg)
	if err != nil {
		return err
	}
	fmt.Println(res.Render())
	if mf != nil {
		if err := mf.Commit(); err != nil {
			return err
		}
		telemetry.Default().Info("wrote " + *metricsOut)
	}
	if *traceOut != "" {
		// Same atomic discipline as -metrics-out: the trace lands under its
		// final name only when fully written.
		tf, tfErr := persist.NewAtomicFile(*traceOut)
		if tfErr != nil {
			return tfErr
		}
		defer tf.Abort()
		if err := cfg.Recorder.Tracer().WriteChrome(tf); err != nil {
			return err
		}
		if err := tf.Commit(); err != nil {
			return err
		}
		telemetry.Default().Info("wrote " + *traceOut)
	}
	if cfg.FlightRec != nil {
		recorded, dropped := cfg.FlightRec.Stats()
		telemetry.Default().Info("flight recorder done",
			"dir", *flightDir, "bundles", recorded, "rate_limited", dropped)
	}
	return nil
}

func runCompare(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	trials, nodes, cracs, seed := scaleFlags(fs)
	static := fs.Float64("static", 0.3, "static power share")
	vprop := fs.Float64("vprop", 0.3, "ECS proportionality variation")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.DefaultSweepConfig(nil)
	cfg.Trials, cfg.NNodes, cfg.NCracs, cfg.BaseSeed = *trials, *nodes, *cracs, *seed
	cfg.StaticShare, cfg.Vprop = *static, *vprop
	res, err := experiments.TechniqueComparisonContext(ctx, cfg)
	if err != nil {
		return err
	}
	fmt.Println(res.Render())
	return nil
}

func runBurst(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("burst", flag.ExitOnError)
	trials, nodes, cracs, seed := scaleFlags(fs)
	horizon := fs.Float64("horizon", 60, "arrival horizon in seconds")
	values := fs.String("values", "0,0.25,0.5,0.75,1", "burst factors")
	if err := fs.Parse(args); err != nil {
		return err
	}
	vs, err := parseValues(*values)
	if err != nil {
		return err
	}
	cfg := experiments.DefaultSweepConfig(vs)
	cfg.Trials, cfg.NNodes, cfg.NCracs, cfg.BaseSeed = *trials, *nodes, *cracs, *seed
	res, err := experiments.BurstinessSweepContext(ctx, cfg, *horizon)
	if err != nil {
		return err
	}
	fmt.Println(res.Render())
	return nil
}

func runThermal(args []string) error {
	fs := flag.NewFlagSet("thermal", flag.ExitOnError)
	_, nodes, cracs, seed := scaleFlags(fs)
	static := fs.Float64("static", 0.3, "static power share")
	vprop := fs.Float64("vprop", 0.3, "ECS proportionality variation")
	psi := fs.Float64("psi", 50, "ψ parameter")
	searchPar := searchParFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	scCfg := scenario.Default(*static, *vprop, *seed)
	scCfg.NNodes, scCfg.NCracs = *nodes, *cracs
	opts := assign.DefaultOptions()
	opts.Psi = *psi
	opts.Search.Parallelism = *searchPar
	tunePricing(&opts)
	res, err := experiments.ThermalMap(scCfg, opts)
	if err != nil {
		return err
	}
	fmt.Println(res.Render())
	return nil
}

func runSimulate(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	trials, nodes, cracs, seed := scaleFlags(fs)
	horizon := fs.Float64("horizon", 60, "arrival horizon in seconds")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.DefaultSweepConfig(nil)
	cfg.Trials, cfg.NNodes, cfg.NCracs, cfg.BaseSeed = *trials, *nodes, *cracs, *seed
	res, err := experiments.SchedulerValidationContext(ctx, cfg, *horizon)
	if err != nil {
		return err
	}
	fmt.Println(res.Render())
	return nil
}
