// Command dcgen builds a Section-VI scenario and dumps the complete data
// center (node types, layout, cross-interference matrix, ECS tensor, task
// types, power constraint) as JSON for inspection or reuse by external
// tools.
//
// With -zones N (N > 1) it builds a multi-zone fleet instead: N thermally
// independent zones, each with its own CRACs and Appendix-B floor plan
// (cycling through -variants distinct layouts), assembled into one data
// center with a block-diagonal cross-interference matrix and a shared
// power cap — the input shape the zone-decomposed Stage-1 solver
// (internal/zones) exploits. In zone mode -nodes and -cracs size each
// zone, not the fleet.
//
// Usage:
//
//	dcgen [-nodes N] [-cracs N] [-seed S] [-static F] [-vprop F]
//	      [-zones N] [-variants N] [-o FILE]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"thermaldc/internal/persist"
	"thermaldc/internal/scenario"
	"thermaldc/internal/zones"
)

// dump is the serialized scenario: the data center plus the derived
// power envelope, so consumers do not need to re-run the bounds search.
type dump struct {
	Seed        int64   `json:"seed"`
	StaticShare float64 `json:"staticShare"`
	Vprop       float64 `json:"vprop"`
	// Zones and Variants describe the multi-zone layout (1 and 0 for the
	// classic single-room scenario).
	Zones      int     `json:"zones,omitempty"`
	Variants   int     `json:"variants,omitempty"`
	Pmin       float64 `json:"pminKW"`
	Pmax       float64 `json:"pmaxKW"`
	DataCenter any     `json:"dataCenter"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "dcgen: %v\n", err)
		os.Exit(1)
	}
}

// run parses flags, builds the scenario and writes the JSON dump.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("dcgen", flag.ContinueOnError)
	nodes := fs.Int("nodes", 30, "compute nodes, per zone in zone mode (paper: 150)")
	cracs := fs.Int("cracs", 2, "CRAC units, per zone in zone mode (paper: 3)")
	seed := fs.Int64("seed", 1, "random seed")
	static := fs.Float64("static", 0.3, "static share of P-state-0 core power")
	vprop := fs.Float64("vprop", 0.1, "ECS proportionality variation")
	nzones := fs.Int("zones", 1, "thermally independent zones (>1 builds a multi-zone fleet)")
	variants := fs.Int("variants", 0, "distinct zone floor plans in zone mode (0: min(3, zones))")
	out := fs.String("o", "-", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	d := dump{Seed: *seed, StaticShare: *static, Vprop: *vprop}
	if *nzones > 1 {
		f, err := zones.BuildFleet(zones.FleetConfig{
			Zones:        *nzones,
			NodesPerZone: *nodes,
			CracsPerZone: *cracs,
			Variants:     *variants,
			Seed:         *seed,
			StaticShare:  *static,
			Vprop:        *vprop,
		})
		if err != nil {
			return err
		}
		dc, err := f.Assemble()
		if err != nil {
			return err
		}
		d.Zones = f.NumZones()
		d.Variants = len(f.Variants)
		// The fleet envelope is the sum of the independent zone envelopes.
		for _, zv := range f.ZoneVariant {
			d.Pmin += f.Variants[zv].Pmin
			d.Pmax += f.Variants[zv].Pmax
		}
		d.DataCenter = dc
	} else {
		cfg := scenario.Default(*static, *vprop, *seed)
		cfg.NNodes, cfg.NCracs = *nodes, *cracs
		sc, err := scenario.Build(cfg)
		if err != nil {
			return err
		}
		d.Zones = 1
		d.Pmin, d.Pmax = sc.Pmin, sc.Pmax
		d.DataCenter = sc.DC
	}
	encode := func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(d)
	}
	if *out == "-" {
		return encode(stdout)
	}
	// Atomic write: a crash or full disk never leaves a torn dump under
	// the requested name.
	return persist.WriteFileAtomic(*out, encode)
}
