// Command dcgen builds a Section-VI scenario and dumps the complete data
// center (node types, layout, cross-interference matrix, ECS tensor, task
// types, power constraint) as JSON for inspection or reuse by external
// tools.
//
// Usage:
//
//	dcgen [-nodes N] [-cracs N] [-seed S] [-static F] [-vprop F] [-o FILE]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"thermaldc/internal/persist"
	"thermaldc/internal/scenario"
)

// dump is the serialized scenario: the data center plus the derived
// power envelope, so consumers do not need to re-run the bounds search.
type dump struct {
	Seed        int64   `json:"seed"`
	StaticShare float64 `json:"staticShare"`
	Vprop       float64 `json:"vprop"`
	Pmin        float64 `json:"pminKW"`
	Pmax        float64 `json:"pmaxKW"`
	DataCenter  any     `json:"dataCenter"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "dcgen: %v\n", err)
		os.Exit(1)
	}
}

// run parses flags, builds the scenario and writes the JSON dump.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("dcgen", flag.ContinueOnError)
	nodes := fs.Int("nodes", 30, "compute nodes (paper: 150)")
	cracs := fs.Int("cracs", 2, "CRAC units (paper: 3)")
	seed := fs.Int64("seed", 1, "random seed")
	static := fs.Float64("static", 0.3, "static share of P-state-0 core power")
	vprop := fs.Float64("vprop", 0.1, "ECS proportionality variation")
	out := fs.String("o", "-", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := scenario.Default(*static, *vprop, *seed)
	cfg.NNodes, cfg.NCracs = *nodes, *cracs
	sc, err := scenario.Build(cfg)
	if err != nil {
		return err
	}
	d := dump{
		Seed:        *seed,
		StaticShare: *static,
		Vprop:       *vprop,
		Pmin:        sc.Pmin,
		Pmax:        sc.Pmax,
		DataCenter:  sc.DC,
	}
	encode := func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(d)
	}
	if *out == "-" {
		return encode(stdout)
	}
	// Atomic write: a crash or full disk never leaves a torn dump under
	// the requested name.
	return persist.WriteFileAtomic(*out, encode)
}
