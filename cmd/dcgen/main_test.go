package main

import (
	"bytes"
	"encoding/json"
	"testing"

	"thermaldc/internal/model"
)

func TestRunProducesLoadableJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-nodes", "10", "-cracs", "2", "-seed", "3"}, &buf); err != nil {
		t.Fatal(err)
	}
	var d struct {
		Seed       int64            `json:"seed"`
		Pmin       float64          `json:"pminKW"`
		Pmax       float64          `json:"pmaxKW"`
		DataCenter model.DataCenter `json:"dataCenter"`
	}
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if d.Seed != 3 || d.Pmin <= 0 || d.Pmax <= d.Pmin {
		t.Errorf("metadata wrong: %+v", d)
	}
	if err := d.DataCenter.Validate(); err != nil {
		t.Fatalf("dumped data center invalid: %v", err)
	}
	if d.DataCenter.NCN() != 10 || d.DataCenter.NCRAC() != 2 {
		t.Error("sizes not respected")
	}
}

func TestRunZoneMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-zones", "3", "-nodes", "8", "-cracs", "2", "-seed", "21"}, &buf); err != nil {
		t.Fatal(err)
	}
	var d struct {
		Zones      int              `json:"zones"`
		Variants   int              `json:"variants"`
		Pmin       float64          `json:"pminKW"`
		Pmax       float64          `json:"pmaxKW"`
		DataCenter model.DataCenter `json:"dataCenter"`
	}
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if d.Zones != 3 || d.Variants != 3 || d.Pmin <= 0 || d.Pmax <= d.Pmin {
		t.Errorf("zone metadata wrong: zones=%d variants=%d pmin=%g pmax=%g", d.Zones, d.Variants, d.Pmin, d.Pmax)
	}
	if err := d.DataCenter.Validate(); err != nil {
		t.Fatalf("assembled fleet invalid: %v", err)
	}
	// -nodes/-cracs size each zone in zone mode.
	if d.DataCenter.NCN() != 24 || d.DataCenter.NCRAC() != 6 {
		t.Errorf("fleet sized %d nodes/%d CRACs, want 24/6", d.DataCenter.NCN(), d.DataCenter.NCRAC())
	}
}

func TestRunToFile(t *testing.T) {
	path := t.TempDir() + "/dc.json"
	var buf bytes.Buffer
	if err := run([]string{"-nodes", "10", "-cracs", "2", "-o", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Error("stdout should be empty when -o is set")
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-nodes", "x"}, &bytes.Buffer{}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
