package main

import (
	"strings"
	"testing"
)

const plainOK = `goos: linux
BenchmarkThreeStagePaperScale/legacy-rebuild-4         	       3	 268833180 ns/op
BenchmarkThreeStagePaperScale/solver-serial-4          	       3	 117461279 ns/op
BenchmarkThreeStagePaperScale/warm-resolve-allocs-4    	       3	    552366 ns/op	       0 B/op	       0 allocs/op
BenchmarkThreeStagePaperScale/warm-resolve-allocs-metrics-4    	       3	    553101 ns/op	       0 B/op	       0 allocs/op
BenchmarkThreeStagePaperScale/warm-dual-resolve-4    	      50	    786837 ns/op	         6.000 pivots/op	       0 B/op	       0 allocs/op
BenchmarkThreeStagePaperScale/cold-dual-resolve-4    	      50	   3528334 ns/op	        13.00 pivots/op	       0 B/op	       0 allocs/op
PASS
`

const jsonOK = `{"Action":"run","Test":"BenchmarkThreeStagePaperScale"}
{"Action":"output","Output":"BenchmarkThreeStagePaperScale/legacy-rebuild \t       3\t 268833180 ns/op\n"}
{"Action":"output","Output":"BenchmarkThreeStagePaperScale/solver-serial \t       3\t 117461279 ns/op\n"}
{"Action":"output","Output":"BenchmarkThreeStagePaperScale/warm-resolve-allocs \t       3\t 552366 ns/op\t       0 B/op\t       0 allocs/op\n"}
{"Action":"output","Output":"BenchmarkThreeStagePaperScale/warm-resolve-allocs-metrics \t       3\t 553101 ns/op\t       0 B/op\t       0 allocs/op\n"}
{"Action":"output","Output":"BenchmarkThreeStagePaperScale/warm-dual-resolve \t      50\t 786837 ns/op\t 6.000 pivots/op\t       0 B/op\t       0 allocs/op\n"}
{"Action":"output","Output":"BenchmarkThreeStagePaperScale/cold-dual-resolve \t      50\t 3528334 ns/op\t 13.00 pivots/op\t       0 B/op\t       0 allocs/op\n"}
`

func TestParseAndCheckPass(t *testing.T) {
	for _, tc := range []struct{ name, in string }{
		{"plain", plainOK},
		{"json", jsonOK},
	} {
		results, err := parse(strings.NewReader(tc.in))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(results) != 6 {
			t.Fatalf("%s: parsed %d results, want 6", tc.name, len(results))
		}
		if f := check(results, 1.05); len(f) != 0 {
			t.Fatalf("%s: unexpected failures: %v", tc.name, f)
		}
	}
}

func TestCheckFailsOnAllocs(t *testing.T) {
	in := strings.Replace(plainOK, "0 allocs/op", "3 allocs/op", 1)
	results, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	f := check(results, 1.05)
	if len(f) != 1 || !strings.Contains(f[0], "zero-allocation contract") {
		t.Fatalf("failures = %v, want one allocs-contract failure", f)
	}
}

func TestCheckFailsWhenFlatSlower(t *testing.T) {
	in := strings.Replace(plainOK, " 117461279 ns/op", " 468833180 ns/op", 1)
	results, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	f := check(results, 1.05)
	if len(f) != 1 || !strings.Contains(f[0], "slower than") {
		t.Fatalf("failures = %v, want one slower-than failure", f)
	}
}

func TestCheckFailsOnMissingBenchmarks(t *testing.T) {
	results, err := parse(strings.NewReader("BenchmarkOther-4 1 5 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if f := check(results, 1.05); len(f) != 7 {
		t.Fatalf("failures = %v, want 7 missing-benchmark failures", f)
	}
}

// TestCheckFailsWhenWarmDualPivotsNotLower flips the pivot counts so the
// warm dual re-solve no longer beats the cold one.
func TestCheckFailsWhenWarmDualPivotsNotLower(t *testing.T) {
	in := strings.Replace(plainOK, "6.000 pivots/op", "13.00 pivots/op", 1)
	results, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	f := check(results, 1.05)
	if len(f) != 1 || !strings.Contains(f[0], "lost its edge") {
		t.Fatalf("failures = %v, want one pivots/op failure", f)
	}
}

// TestCheckFailsOnWarmDualAllocs: the dual warm re-solve shares the
// zero-allocation contract of the scratch path.
func TestCheckFailsOnWarmDualAllocs(t *testing.T) {
	in := strings.Replace(plainOK,
		"6.000 pivots/op	       0 B/op	       0 allocs/op",
		"6.000 pivots/op	      64 B/op	       2 allocs/op", 1)
	results, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	f := check(results, 1.05)
	if len(f) != 1 || !strings.Contains(f[0], "zero-allocation contract") {
		t.Fatalf("failures = %v, want one allocs-contract failure", f)
	}
}
