package main

import (
	"strings"
	"testing"
)

const plainOK = `goos: linux
BenchmarkThreeStagePaperScale/legacy-rebuild-4         	       3	 268833180 ns/op
BenchmarkThreeStagePaperScale/solver-serial-4          	       3	 117461279 ns/op
BenchmarkThreeStagePaperScale/warm-resolve-allocs-4    	       3	    552366 ns/op	       0 B/op	       0 allocs/op
BenchmarkThreeStagePaperScale/warm-resolve-allocs-metrics-4    	       3	    553101 ns/op	       0 B/op	       0 allocs/op
BenchmarkThreeStagePaperScale/warm-dual-resolve-4    	      50	    786837 ns/op	         6.000 pivots/op	       0 B/op	       0 allocs/op
BenchmarkThreeStagePaperScale/cold-dual-resolve-4    	      50	   3528334 ns/op	        13.00 pivots/op	       0 B/op	       0 allocs/op
PASS
`

const jsonOK = `{"Action":"run","Test":"BenchmarkThreeStagePaperScale"}
{"Action":"output","Output":"BenchmarkThreeStagePaperScale/legacy-rebuild \t       3\t 268833180 ns/op\n"}
{"Action":"output","Output":"BenchmarkThreeStagePaperScale/solver-serial \t       3\t 117461279 ns/op\n"}
{"Action":"output","Output":"BenchmarkThreeStagePaperScale/warm-resolve-allocs \t       3\t 552366 ns/op\t       0 B/op\t       0 allocs/op\n"}
{"Action":"output","Output":"BenchmarkThreeStagePaperScale/warm-resolve-allocs-metrics \t       3\t 553101 ns/op\t       0 B/op\t       0 allocs/op\n"}
{"Action":"output","Output":"BenchmarkThreeStagePaperScale/warm-dual-resolve \t      50\t 786837 ns/op\t 6.000 pivots/op\t       0 B/op\t       0 allocs/op\n"}
{"Action":"output","Output":"BenchmarkThreeStagePaperScale/cold-dual-resolve \t      50\t 3528334 ns/op\t 13.00 pivots/op\t       0 B/op\t       0 allocs/op\n"}
`

const fleetOK = `goos: linux
BenchmarkFleetStage1/1k-4         	       2	 426725013 ns/op	    426725 ns/node	   17480 B/op	      29 allocs/op
BenchmarkFleetStage1/10k-4        	       2	4235171810 ns/op	    423517 ns/node	  166760 B/op	      35 allocs/op
BenchmarkFleetStage1/zone-warm-resolve-4 	       3	 415719568 ns/op	       0 B/op	       0 allocs/op
PASS
`

func TestParseAndCheckPass(t *testing.T) {
	for _, tc := range []struct{ name, in string }{
		{"plain", plainOK},
		{"json", jsonOK},
	} {
		results, err := parse(strings.NewReader(tc.in))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(results) != 6 {
			t.Fatalf("%s: parsed %d results, want 6", tc.name, len(results))
		}
		f, checked := check(results, 1.05, 1.25)
		if len(f) != 0 {
			t.Fatalf("%s: unexpected failures: %v", tc.name, f)
		}
		if checked != 1 {
			t.Fatalf("%s: checked %d families, want 1", tc.name, checked)
		}
	}
}

func TestCheckFailsOnAllocs(t *testing.T) {
	in := strings.Replace(plainOK, "0 allocs/op", "3 allocs/op", 1)
	results, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	f, _ := check(results, 1.05, 1.25)
	if len(f) != 1 || !strings.Contains(f[0], "zero-allocation contract") {
		t.Fatalf("failures = %v, want one allocs-contract failure", f)
	}
}

func TestCheckFailsWhenFlatSlower(t *testing.T) {
	in := strings.Replace(plainOK, " 117461279 ns/op", " 468833180 ns/op", 1)
	results, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	f, _ := check(results, 1.05, 1.25)
	if len(f) != 1 || !strings.Contains(f[0], "slower than") {
		t.Fatalf("failures = %v, want one slower-than failure", f)
	}
}

// TestCheckIgnoresUnknownFamilies: a file with no gated family is not a
// pass — run() turns checked == 0 into exit code 2.
func TestCheckIgnoresUnknownFamilies(t *testing.T) {
	results, err := parse(strings.NewReader("BenchmarkOther-4 1 5 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	f, checked := check(results, 1.05, 1.25)
	if len(f) != 0 || checked != 0 {
		t.Fatalf("failures = %v checked = %d, want none", f, checked)
	}
}

// TestCheckFailsOnMissingFamilyMembers: once any simplex benchmark appears,
// every member of the family must (a typo'd -bench regex must not pass).
func TestCheckFailsOnMissingFamilyMembers(t *testing.T) {
	results, err := parse(strings.NewReader(
		"BenchmarkThreeStagePaperScale/legacy-rebuild-4 1 5 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	f, checked := check(results, 1.05, 1.25)
	// warm-dual-resolve is reported by both the allocs and the pivots
	// checks, so 5 missing members yield 6 failures.
	if checked != 1 || len(f) != 6 {
		t.Fatalf("failures = %v (checked %d), want 6 missing-benchmark failures", f, checked)
	}
}

// TestCheckFailsWhenWarmDualPivotsNotLower flips the pivot counts so the
// warm dual re-solve no longer beats the cold one.
func TestCheckFailsWhenWarmDualPivotsNotLower(t *testing.T) {
	in := strings.Replace(plainOK, "6.000 pivots/op", "13.00 pivots/op", 1)
	results, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	f, _ := check(results, 1.05, 1.25)
	if len(f) != 1 || !strings.Contains(f[0], "lost its edge") {
		t.Fatalf("failures = %v, want one pivots/op failure", f)
	}
}

// TestCheckFailsOnWarmDualAllocs: the dual warm re-solve shares the
// zero-allocation contract of the scratch path.
func TestCheckFailsOnWarmDualAllocs(t *testing.T) {
	in := strings.Replace(plainOK,
		"6.000 pivots/op	       0 B/op	       0 allocs/op",
		"6.000 pivots/op	      64 B/op	       2 allocs/op", 1)
	results, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	f, _ := check(results, 1.05, 1.25)
	if len(f) != 1 || !strings.Contains(f[0], "zero-allocation contract") {
		t.Fatalf("failures = %v, want one allocs-contract failure", f)
	}
}

// TestCheckFleetPass: the fleet family parses its ns/node metric and the
// flat-scaling gate holds on real-shaped output.
func TestCheckFleetPass(t *testing.T) {
	results, err := parse(strings.NewReader(fleetOK))
	if err != nil {
		t.Fatal(err)
	}
	r, ok := results["BenchmarkFleetStage1/10k"]
	if !ok || !r.hasNsNode || r.nsPerNode != 423517 {
		t.Fatalf("10k point parsed wrong: %+v (ok=%v)", r, ok)
	}
	f, checked := check(results, 1.05, 1.25)
	if len(f) != 0 || checked != 1 {
		t.Fatalf("failures = %v checked = %d, want clean single-family pass", f, checked)
	}
}

// TestCheckFleetFailsOnScaling: a 10k point past tolerance × the 1k point
// breaks the linear-or-better scaling contract.
func TestCheckFleetFailsOnScaling(t *testing.T) {
	in := strings.Replace(fleetOK, "423517 ns/node", "633517 ns/node", 1)
	results, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	f, _ := check(results, 1.05, 1.25)
	if len(f) != 1 || !strings.Contains(f[0], "scales worse") {
		t.Fatalf("failures = %v, want one scaling failure", f)
	}
}

// TestCheckFleetFailsWithout10k: the 1k point alone must not pass the gate.
func TestCheckFleetFailsWithout10k(t *testing.T) {
	in := strings.Replace(fleetOK,
		"BenchmarkFleetStage1/10k-4        	       2	4235171810 ns/op	    423517 ns/node	  166760 B/op	      35 allocs/op\n", "", 1)
	results, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	f, _ := check(results, 1.05, 1.25)
	if len(f) != 1 || !strings.Contains(f[0], "10k missing") {
		t.Fatalf("failures = %v, want one missing-10k failure", f)
	}
}

// TestCheckFleetFailsWithoutZoneWarm: zone-warm-resolve is a mandatory
// family member — dropping it from the bench regex must not pass.
func TestCheckFleetFailsWithoutZoneWarm(t *testing.T) {
	in := strings.Replace(fleetOK,
		"BenchmarkFleetStage1/zone-warm-resolve-4 	       3	 415719568 ns/op	       0 B/op	       0 allocs/op\n", "", 1)
	results, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	f, _ := check(results, 1.05, 1.25)
	if len(f) != 1 || !strings.Contains(f[0], "zone-warm-resolve missing") {
		t.Fatalf("failures = %v, want one missing-zone-warm failure", f)
	}
}

// TestCheckFleetFailsOnZoneWarmAllocs: any allocation on the zone warm
// re-solve breaks the fast path's zero-allocation contract.
func TestCheckFleetFailsOnZoneWarmAllocs(t *testing.T) {
	in := strings.Replace(fleetOK, "0 B/op	       0 allocs/op", "96 B/op	       4 allocs/op", 1)
	results, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	f, _ := check(results, 1.05, 1.25)
	if len(f) != 1 || !strings.Contains(f[0], "zero-allocation contract") {
		t.Fatalf("failures = %v, want one allocs-contract failure", f)
	}
}

// TestCheckFleetGates50kWhenPresent: the optional 50k point is held to the
// same bar once it appears.
func TestCheckFleetGates50kWhenPresent(t *testing.T) {
	in := strings.Replace(fleetOK, "PASS",
		"BenchmarkFleetStage1/50k-4 1 32000000000 ns/op 640000 ns/node\nPASS", 1)
	results, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	f, _ := check(results, 1.05, 1.25)
	if len(f) != 1 || !strings.Contains(f[0], "50k") {
		t.Fatalf("failures = %v, want one 50k scaling failure", f)
	}
}
