// Command benchcheck enforces the performance contracts recorded by
// `make bench-compare`. It parses `go test -bench` output (plain text or the
// -json stream) and exits non-zero when a contract is broken. Checks are
// grouped into families and a family is enforced when any of its benchmarks
// appears in the input — so the simplex file and the fleet file are checked
// by the same binary — but within a present family every member must
// appear, which keeps a typo'd -bench regex from passing silently.
//
// Simplex family (BenchmarkThreeStagePaperScale/...):
//
//   - warm-resolve-allocs, warm-resolve-allocs-metrics and
//     warm-dual-resolve must report exactly 0 allocs/op (the warm Stage-1
//     scratch path has a zero-allocation contract, with and without live
//     metrics, and the dual warm-started re-solve inherits it),
//   - solver-serial (the flat incremental solver) must not be slower than
//     legacy-rebuild (per-candidate tableau reconstruction), and
//   - warm-dual-resolve must spend strictly fewer pivots/op than
//     cold-dual-resolve (the dual warm start must beat re-solving the
//     power-cap step from scratch).
//
// Fleet family (BenchmarkFleetStage1/...): the 10k-node point's ns/node —
// wall time per zone-decomposed Stage-1 solve divided by fleet node count —
// must stay within -fleet-tolerance of the 1k-node point's, i.e. the
// decomposition must scale linearly or better in fleet size. The optional
// 50k point (TAPO_BENCH_50K) is held to the same bar when present, and
// zone-warm-resolve must report exactly 0 allocs/op (the warm epoch
// re-solve on the zone fast path, telemetry off, keeps the Stage-1
// zero-allocation contract).
//
// Usage: benchcheck [-tolerance f] [-fleet-tolerance f] [file]
// With no file, it reads stdin. The tolerances (default 1.05 and 1.25)
// absorb scheduler noise on short -benchtime runs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// benchLine matches a benchmark result row: the ns/op column, the optional
// custom ns/node and pivots/op metrics (testing prints custom metrics in
// unit order, so ns/node sorts before pivots/op), and the optional
// -benchmem tail. The -NN GOMAXPROCS suffix is folded into the name.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op` +
		`(?:\s+([0-9.]+) ns/node)?` +
		`(?:\s+([0-9.]+) pivots/op)?` +
		`(?:\s+([0-9.]+) B/op\s+([0-9.]+) allocs/op)?`)

type result struct {
	nsPerOp     float64
	nsPerNode   float64
	hasNsNode   bool
	pivotsPerOp float64
	hasPivots   bool
	allocsPerOp float64
	hasAllocs   bool
}

func main() {
	os.Exit(run())
}

func run() int {
	tolerance := flag.Float64("tolerance", 1.05,
		"fail if solver-serial ns/op exceeds legacy-rebuild ns/op by more than this factor")
	fleetTolerance := flag.Float64("fleet-tolerance", 1.25,
		"fail if the 10k-node fleet ns/node exceeds the 1k-node point by more than this factor")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchcheck [-tolerance f] [-fleet-tolerance f] [bench-output-file]")
		flag.PrintDefaults()
	}
	flag.Parse()

	in := io.Reader(os.Stdin)
	name := "<stdin>"
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			return 2
		}
		defer f.Close()
		in, name = f, flag.Arg(0)
	}

	results, err := parse(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: reading %s: %v\n", name, err)
		return 2
	}
	if len(results) == 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: no benchmark results found in %s\n", name)
		return 2
	}

	failures, checked := check(results, *tolerance, *fleetTolerance)
	if checked == 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: no gated benchmark family found in %s\n", name)
		return 2
	}
	for _, f := range failures {
		fmt.Fprintln(os.Stderr, "benchcheck: FAIL:", f)
	}
	if len(failures) > 0 {
		return 1
	}
	fmt.Printf("benchcheck: ok (%d benchmarks checked in %s)\n", len(results), name)
	return 0
}

// parse accepts either raw `go test -bench` text or the `-json` event
// stream. JSON events carry the benchmark name in the Test field; the
// Output field may hold the full result row or just the measurement
// columns (`"       1\t 191680596 ns/op\n"`), so when Output lacks the
// Benchmark prefix the name is grafted back on from Test.
func parse(in io.Reader) (map[string]result, error) {
	results := make(map[string]result)
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if len(line) > 0 && line[0] == '{' {
			var ev struct {
				Action string
				Test   string
				Output string
			}
			if json.Unmarshal([]byte(line), &ev) == nil && ev.Action == "output" {
				line = strings.TrimLeft(ev.Output, " \t")
				if !strings.HasPrefix(line, "Benchmark") &&
					strings.HasPrefix(ev.Test, "Benchmark") && strings.Contains(line, "ns/op") {
					line = ev.Test + "\t" + line
				}
			}
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		var r result
		r.nsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			r.nsPerNode, _ = strconv.ParseFloat(m[4], 64)
			r.hasNsNode = true
		}
		if m[5] != "" {
			r.pivotsPerOp, _ = strconv.ParseFloat(m[5], 64)
			r.hasPivots = true
		}
		if m[7] != "" {
			r.allocsPerOp, _ = strconv.ParseFloat(m[7], 64)
			r.hasAllocs = true
		}
		results[trimProcs(m[1])] = r
	}
	return results, sc.Err()
}

// trimProcs drops the trailing -NN GOMAXPROCS suffix from a benchmark name.
var procsSuffix = regexp.MustCompile(`-\d+$`)

func trimProcs(name string) string { return procsSuffix.ReplaceAllString(name, "") }

// check runs every benchmark family whose members appear in results and
// returns the failures plus the number of families checked.
func check(results map[string]result, tolerance, fleetTolerance float64) (failures []string, checked int) {
	if present(results, simplexPrefix) {
		checked++
		failures = append(failures, checkSimplex(results, tolerance)...)
	}
	if present(results, fleetPrefix) {
		checked++
		failures = append(failures, checkFleet(results, fleetTolerance)...)
	}
	return failures, checked
}

const (
	simplexPrefix = "BenchmarkThreeStagePaperScale/"
	fleetPrefix   = "BenchmarkFleetStage1/"
)

// present reports whether any result name belongs to the family.
func present(results map[string]result, prefix string) bool {
	for name := range results {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

func checkSimplex(results map[string]result, tolerance float64) []string {
	const (
		legacy      = simplexPrefix + "legacy-rebuild"
		serial      = simplexPrefix + "solver-serial"
		warm        = simplexPrefix + "warm-resolve-allocs"
		warmMetrics = simplexPrefix + "warm-resolve-allocs-metrics"
		warmDual    = simplexPrefix + "warm-dual-resolve"
		coldDual    = simplexPrefix + "cold-dual-resolve"
	)
	var failures []string

	for _, name := range []string{warm, warmMetrics, warmDual} {
		w, ok := results[name]
		switch {
		case !ok:
			failures = append(failures, name+" missing from benchmark output")
		case !w.hasAllocs:
			failures = append(failures, name+" has no allocs/op column (run with -benchmem or b.ReportAllocs)")
		case w.allocsPerOp != 0:
			failures = append(failures, fmt.Sprintf(
				"%s reports %g allocs/op, want 0 (warm scratch path broke its zero-allocation contract)",
				name, w.allocsPerOp))
		}
	}

	l, okL := results[legacy]
	s, okS := results[serial]
	if !okL {
		failures = append(failures, legacy+" missing from benchmark output")
	}
	if !okS {
		failures = append(failures, serial+" missing from benchmark output")
	}
	if okL && okS && s.nsPerOp > l.nsPerOp*tolerance {
		failures = append(failures, fmt.Sprintf(
			"%s at %.0f ns/op is slower than %s at %.0f ns/op (×%.2f, tolerance ×%.2f)",
			serial, s.nsPerOp, legacy, l.nsPerOp, s.nsPerOp/l.nsPerOp, tolerance))
	}

	wd, okW := results[warmDual]
	cd, okC := results[coldDual]
	if !okW {
		failures = append(failures, warmDual+" missing from benchmark output")
	}
	if !okC {
		failures = append(failures, coldDual+" missing from benchmark output")
	}
	if okW && okC {
		switch {
		case !wd.hasPivots || !cd.hasPivots:
			failures = append(failures, "dual-resolve benchmarks report no pivots/op metric")
		case wd.pivotsPerOp >= cd.pivotsPerOp:
			failures = append(failures, fmt.Sprintf(
				"%s at %g pivots/op does not beat %s at %g pivots/op (dual warm start lost its edge)",
				warmDual, wd.pivotsPerOp, coldDual, cd.pivotsPerOp))
		}
	}
	return failures
}

// checkFleet gates the fleet-scale scaling contract: ns/node must not grow
// with fleet size, up to the tolerance. The 1k and 10k points are
// mandatory once the family appears; the 50k point joins the gate when the
// run included it. The zone-warm-resolve point is mandatory too and must
// report exactly 0 allocs/op: the warm epoch re-solve on the zone fast
// path keeps the Stage-1 zero-allocation contract with telemetry off.
func checkFleet(results map[string]result, tolerance float64) []string {
	const (
		small    = fleetPrefix + "1k"
		large    = fleetPrefix + "10k"
		huge     = fleetPrefix + "50k"
		warmZone = fleetPrefix + "zone-warm-resolve"
	)
	var failures []string
	w, okW := results[warmZone]
	switch {
	case !okW:
		failures = append(failures, warmZone+" missing from benchmark output")
	case !w.hasAllocs:
		failures = append(failures, warmZone+" has no allocs/op column (run with -benchmem or b.ReportAllocs)")
	case w.allocsPerOp != 0:
		failures = append(failures, fmt.Sprintf(
			"%s reports %g allocs/op, want 0 (zone fast-path warm re-solve broke its zero-allocation contract)",
			warmZone, w.allocsPerOp))
	}
	base, okB := results[small]
	if !okB {
		failures = append(failures, small+" missing from benchmark output")
	} else if !base.hasNsNode {
		failures = append(failures, small+" has no ns/node metric")
	}
	for _, name := range []string{large, huge} {
		r, ok := results[name]
		if !ok {
			if name == large {
				failures = append(failures, large+" missing from benchmark output")
			}
			continue // 50k is optional
		}
		switch {
		case !r.hasNsNode:
			failures = append(failures, name+" has no ns/node metric")
		case okB && base.hasNsNode && r.nsPerNode > base.nsPerNode*tolerance:
			failures = append(failures, fmt.Sprintf(
				"%s at %.0f ns/node scales worse than %s at %.0f ns/node (×%.2f, tolerance ×%.2f)",
				name, r.nsPerNode, small, base.nsPerNode, r.nsPerNode/base.nsPerNode, tolerance))
		}
	}
	return failures
}
