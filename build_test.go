package thermaldc_test

import (
	"math"
	"testing"

	"thermaldc"
)

// TestManualBuildPipeline drives the hand-assembly path of the public API:
// node list → layout → alpha → workload → thermal model → bounds →
// assignment → simulation with options → energy.
func TestManualBuildPipeline(t *testing.T) {
	dc := &thermaldc.DataCenter{
		NodeTypes:   thermaldc.TableINodeTypes(0.3),
		CRACs:       make([]thermaldc.CRAC, 2),
		RedlineNode: 25,
		RedlineCRAC: 40,
	}
	for j := 0; j < 10; j++ {
		dc.Nodes = append(dc.Nodes, thermaldc.Node{Type: j % 2})
	}
	lay := thermaldc.DefaultLayoutConfig()
	if err := thermaldc.ArrangeLayout(dc, lay); err != nil {
		t.Fatal(err)
	}
	if err := thermaldc.GenerateAlpha(dc, lay, 5); err != nil {
		t.Fatal(err)
	}
	wl := thermaldc.DefaultWorkloadConfig(0.2)
	if err := thermaldc.GenerateWorkload(dc, wl, 5); err != nil {
		t.Fatal(err)
	}
	tm, err := thermaldc.NewThermalModel(dc)
	if err != nil {
		t.Fatal(err)
	}
	search := thermaldc.SearchConfig{Lo: 5, Hi: 25, CoarseStep: 5, FineStep: 1}
	pmin, pmax, err := thermaldc.PowerBounds(dc, tm, search)
	if err != nil {
		t.Fatal(err)
	}
	dc.Pconst = (pmin + pmax) / 2
	if err := dc.Validate(); err != nil {
		t.Fatal(err)
	}
	sc := &thermaldc.Scenario{DC: dc, Thermal: tm, Pmin: pmin, Pmax: pmax}
	opts := thermaldc.DefaultAssignOptions()
	opts.Search = search
	res, err := thermaldc.ThreeStage(sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.RewardRate() <= 0 {
		t.Fatal("no reward")
	}

	// Bursty stream + soft policy + trace + energy.
	const horizon = 20.0
	tasks, err := thermaldc.GenerateBurstyTasks(dc, horizon, thermaldc.BurstConfig{
		Burst: 0.5, HighFraction: 0.3, MeanHighDuration: 5,
	}, 9)
	if err != nil {
		t.Fatal(err)
	}
	var traced int
	out, err := thermaldc.SimulateOpts(dc, res, tasks, horizon, thermaldc.SimOptions{
		Policy:   thermaldc.SoftRatioPolicy(),
		Recorder: func(thermaldc.TaskRecord) { traced++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if traced != len(tasks) {
		t.Errorf("traced %d of %d tasks", traced, len(tasks))
	}
	rep, err := thermaldc.Energy(dc, res, out, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ComputeKJ <= 0 {
		t.Error("no energy accounted")
	}
	if thermaldc.PaperPolicy().Name() != "paper-min-ratio" {
		t.Error("paper policy name wrong")
	}
}

// TestFacadeMinPower drives the §VIII extension through the facade.
func TestFacadeMinPower(t *testing.T) {
	cfg := thermaldc.DefaultScenario(0.3, 0.1, 6)
	cfg.NCracs = 2
	cfg.NNodes = 10
	sc, err := thermaldc.NewScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	primal, err := thermaldc.ThreeStage(sc, thermaldc.DefaultAssignOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := thermaldc.MinPowerForReward(sc, 0.5*primal.RewardRate(), thermaldc.DefaultAssignOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.RelaxedPower >= sc.DC.Pconst || math.IsNaN(res.IntegerPower) {
		t.Errorf("min power %g vs Pconst %g", res.RelaxedPower, sc.DC.Pconst)
	}
}
