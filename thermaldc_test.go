package thermaldc_test

import (
	"math"
	"testing"

	"thermaldc"
)

// buildSmall exercises the full public pipeline at reduced scale.
func buildSmall(t testing.TB, seed int64) *thermaldc.Scenario {
	t.Helper()
	cfg := thermaldc.DefaultScenario(0.3, 0.1, seed)
	cfg.NCracs = 2
	cfg.NNodes = 10
	sc, err := thermaldc.NewScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestPublicAPIEndToEnd(t *testing.T) {
	sc := buildSmall(t, 1)
	if sc.Pmin >= sc.Pmax || sc.DC.Pconst <= sc.Pmin || sc.DC.Pconst >= sc.Pmax {
		t.Fatalf("bounds: Pmin %g, Pconst %g, Pmax %g", sc.Pmin, sc.DC.Pconst, sc.Pmax)
	}
	opts := thermaldc.DefaultAssignOptions()
	ts, err := thermaldc.ThreeStage(sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	bl, err := thermaldc.Baseline(sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ts.RewardRate() <= 0 || bl.RewardRate <= 0 {
		t.Fatal("rewards should be positive")
	}
	const horizon = 25.0
	tasks := thermaldc.GenerateTasks(sc.DC, horizon, 7)
	out, err := thermaldc.Simulate(sc.DC, ts, tasks, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if out.RewardRate <= 0 {
		t.Fatal("simulation produced no reward")
	}
	if math.IsNaN(out.MeanRatioError) {
		t.Fatal("ratio error NaN")
	}
}

func TestPublicPowerBounds(t *testing.T) {
	sc := buildSmall(t, 2)
	search := sc.Config.Search
	pmin, pmax, err := thermaldc.PowerBounds(sc.DC, sc.Thermal, search)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pmin-sc.Pmin) > 1e-9 || math.Abs(pmax-sc.Pmax) > 1e-9 {
		t.Errorf("bounds disagree with scenario: %g/%g vs %g/%g", pmin, pmax, sc.Pmin, sc.Pmax)
	}
}

func TestPublicTableTypes(t *testing.T) {
	types := thermaldc.TableINodeTypes(0.25)
	if len(types) != 2 || types[0].NumCores != 32 {
		t.Fatal("TableINodeTypes wrong")
	}
	if types[0].Core.StaticShare != 0.25 {
		t.Fatal("static share not threaded through")
	}
}

func TestPublicThermalModel(t *testing.T) {
	sc := buildSmall(t, 3)
	tm, err := thermaldc.NewThermalModel(sc.DC)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, sc.DC.NCRAC())
	for i := range out {
		out[i] = 15
	}
	pcn := make([]float64, sc.DC.NCN())
	for j := range pcn {
		pcn[j] = sc.DC.NodeType(j).MinPower()
	}
	tin := tm.InletTemps(out, pcn)
	if len(tin) != sc.DC.NumThermal() {
		t.Fatal("inlet vector wrong length")
	}
}
