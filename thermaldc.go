// Package thermaldc is a from-scratch reproduction of "Thermal-Aware
// Performance Optimization in Power Constrained Heterogeneous Data
// Centers" (Al-Qawasmeh, Pasricha, Maciejewski, Siegel — IEEE IPDPSW
// 2012). It maximizes the steady-state reward rate of an oversubscribed
// data center under a total power cap and inlet-temperature redlines by
// assigning CRAC outlet temperatures, per-core P-states and desired task
// execution rates at the data-center level, and dynamically scheduling
// arriving tasks onto cores.
//
// The package is a facade over the internal substrates:
//
//   - internal/model      — data-center, node-type, task-type and ECS models
//   - internal/power      — CMOS P-state power and CRAC CoP physics
//   - internal/thermal    — abstract heat-flow model (Tin = A·Tout)
//   - internal/layout     — hot-aisle floor plan + Appendix-B α generator
//   - internal/workload   — §VI synthetic workload generators
//   - internal/linprog    — dense two-phase bounded-variable simplex
//   - internal/assign     — the paper's three-stage technique + baseline
//   - internal/sched,sim  — second-step dynamic scheduler and event sim
//   - internal/experiments — regeneration of every table and figure
//
// Quickstart:
//
//	sc, err := thermaldc.NewScenario(thermaldc.DefaultScenario(0.3, 0.1, 42))
//	if err != nil { ... }
//	res, err := thermaldc.ThreeStage(sc, thermaldc.DefaultAssignOptions())
//	if err != nil { ... }
//	fmt.Println(res.RewardRate())
package thermaldc

import (
	"thermaldc/internal/assign"
	"thermaldc/internal/model"
	"thermaldc/internal/power"
	"thermaldc/internal/scenario"
	"thermaldc/internal/sched"
	"thermaldc/internal/sim"
	"thermaldc/internal/stats"
	"thermaldc/internal/tempsearch"
	"thermaldc/internal/thermal"
	"thermaldc/internal/workload"
)

// Core model types.
type (
	// DataCenter is the assembled Section-III model.
	DataCenter = model.DataCenter
	// NodeType describes one server model (Table I).
	NodeType = model.NodeType
	// Node is one compute-node instance with its rack position.
	Node = model.Node
	// CRAC is one computer-room air-conditioning unit.
	CRAC = model.CRAC
	// TaskType is one workload task type (reward, deadline, arrival rate).
	TaskType = model.TaskType
	// ECS is the estimated-computational-speed tensor.
	ECS = model.ECS
	// NodeLabel is the rack-position label A–E of Table II.
	NodeLabel = model.NodeLabel
	// CoreModel is the Appendix-A CMOS power model of one core type.
	CoreModel = power.CoreModel
	// ThermalModel precomputes the heat-flow sensitivities of a data center.
	ThermalModel = thermal.Model
	// Task is a concrete task instance for the dynamic scheduler.
	Task = workload.Task
)

// Scenario construction.
type (
	// ScenarioConfig selects the size and knobs of a §VI instance.
	ScenarioConfig = scenario.Config
	// Scenario is a fully built instance (data center + thermal model +
	// power bounds).
	Scenario = scenario.Scenario
	// WorkloadConfig tunes the §VI generators.
	WorkloadConfig = workload.GenConfig
	// SearchConfig bounds the CRAC outlet-temperature search. Its
	// Parallelism field sizes the candidate-evaluation worker pool
	// (0 = GOMAXPROCS); results are bit-identical for every setting.
	SearchConfig = tempsearch.Config
)

// Assignment types.
type (
	// AssignOptions configures ψ and the temperature search.
	AssignOptions = assign.Options
	// ThreeStageResult is the paper's first-step assignment outcome.
	ThreeStageResult = assign.ThreeStageResult
	// BaselineResult is the Equation-21 baseline outcome.
	BaselineResult = assign.BaselineResult
	// Stage1Result is the relaxed power assignment of Stage 1.
	Stage1Result = assign.Stage1Result
	// Stage3Result holds the desired execution-rate matrix.
	Stage3Result = assign.Stage3Result
	// SimResult is the second-step simulation outcome.
	SimResult = sim.Result
	// Summary is a mean ± 95% CI sample summary.
	Summary = stats.Summary
)

// Search strategies for the CRAC outlet temperatures.
const (
	// SearchCoarseToFine is the paper's multi-step discretized search.
	SearchCoarseToFine = assign.CoarseToFine
	// SearchFullGrid exhaustively scans the fine lattice.
	SearchFullGrid = assign.FullGrid
	// SearchCoordDescent optimizes one CRAC at a time.
	SearchCoordDescent = assign.CoordDescent
)

// DefaultScenario returns the paper's simulation setup (3 CRACs, 150
// nodes, Pconst halfway between the Equation-17 bounds) for the given
// static power share, Vprop and seed. Reduce NCracs/NNodes on the returned
// config for faster experiments.
func DefaultScenario(staticShare, vprop float64, seed int64) ScenarioConfig {
	return scenario.Default(staticShare, vprop, seed)
}

// NewScenario builds a deterministic scenario instance.
func NewScenario(cfg ScenarioConfig) (*Scenario, error) {
	return scenario.Build(cfg)
}

// DefaultAssignOptions returns the paper's defaults (ψ = 50,
// coarse-to-fine search to 1 °C).
func DefaultAssignOptions() AssignOptions {
	return assign.DefaultOptions()
}

// ThreeStage runs the paper's first-step assignment (temperature search +
// Stage 1 relaxed power LP + Stage 2 P-state rounding + Stage 3
// execution-rate LP) on a built scenario. The temperature search evaluates
// Stage-1 candidates through incremental per-worker solvers (one LP
// skeleton and simplex tableau, patched per candidate); set
// opts.Search.Parallelism to bound the worker pool. The result does not
// depend on the parallelism setting.
func ThreeStage(sc *Scenario, opts AssignOptions) (*ThreeStageResult, error) {
	return assign.ThreeStage(sc.DC, sc.Thermal, opts)
}

// Baseline runs the Equation-21 technique (cores at P-state 0 or off).
func Baseline(sc *Scenario, opts AssignOptions) (*BaselineResult, error) {
	return assign.Baseline(sc.DC, sc.Thermal, opts)
}

// PowerBounds solves the Equation-17 problems for an arbitrary data
// center + thermal model pair.
func PowerBounds(dc *DataCenter, tm *ThermalModel, search SearchConfig) (pmin, pmax float64, err error) {
	return assign.PowerBounds(dc, tm, search)
}

// MinPowerResult is the outcome of the §VIII dual problem.
type MinPowerResult = assign.MinPowerResult

// MinPowerForReward minimizes total power subject to a steady-state
// reward-rate floor — the paper's first future-work extension.
func MinPowerForReward(sc *Scenario, rewardFloor float64, opts AssignOptions) (*MinPowerResult, error) {
	return assign.MinPowerForReward(sc.DC, sc.Thermal, rewardFloor, opts)
}

// NewThermalModel builds the heat-flow model for a hand-assembled data
// center (NewScenario does this automatically).
func NewThermalModel(dc *DataCenter) (*ThermalModel, error) {
	return thermal.New(dc)
}

// GenerateTasks draws the Poisson task stream for the second-step
// simulation over [0, horizon) seconds.
func GenerateTasks(dc *DataCenter, horizon float64, seed int64) []Task {
	return workload.GenerateTasks(dc, horizon, stats.NewRand(seed))
}

// Simulate runs the second-step dynamic scheduler on a first-step
// assignment and a task stream.
func Simulate(dc *DataCenter, res *ThreeStageResult, tasks []Task, horizon float64) (*SimResult, error) {
	return sim.Run(dc, res.PStates, res.Stage3.TC, tasks, horizon)
}

// TableINodeTypes returns the two paper server models with the given
// static share of P-state-0 core power.
func TableINodeTypes(staticShare float64) []NodeType {
	return model.TableINodeTypes(staticShare)
}

// Second-step extensions.
type (
	// SimOptions tunes a simulation run (scheduling policy, trace hook).
	SimOptions = sim.Options
	// TaskRecord is one simulation-trace entry.
	TaskRecord = sim.TaskRecord
	// EnergyReport is the post-hoc compute-energy ledger of a run.
	EnergyReport = sim.EnergyReport
	// BurstConfig parameterizes MMPP (bursty) arrivals.
	BurstConfig = workload.BurstConfig
)

// SchedPolicy chooses the core for each arriving task.
type SchedPolicy = sched.Policy

// PaperPolicy returns the paper's §V.C min-ratio rule (drop when every
// feasible core exceeds its desired rate).
func PaperPolicy() SchedPolicy { return sched.PaperPolicy{} }

// SoftRatioPolicy returns our softened variant: prefer within-quota cores
// but assign to the least-over-quota core instead of dropping.
func SoftRatioPolicy() SchedPolicy { return sched.SoftRatioPolicy{} }

// SimulateOpts is Simulate with a custom scheduling policy and/or a
// per-task trace recorder.
func SimulateOpts(dc *DataCenter, res *ThreeStageResult, tasks []Task, horizon float64, opts SimOptions) (*SimResult, error) {
	return sim.RunOpts(dc, res.PStates, res.Stage3.TC, tasks, horizon, opts)
}

// Energy computes the compute-energy ledger for a finished run, including
// the paper's §III.C task-type power factors and an idle-power fraction
// (1 reproduces the paper's utilization-independent model).
func Energy(dc *DataCenter, res *ThreeStageResult, out *SimResult, idleFraction float64) (*EnergyReport, error) {
	return sim.Energy(dc, res.PStates, out, idleFraction)
}

// GenerateBurstyTasks draws an MMPP arrival stream (bursty extension of
// GenerateTasks).
func GenerateBurstyTasks(dc *DataCenter, horizon float64, cfg BurstConfig, seed int64) ([]Task, error) {
	return workload.GenerateBurstyTasks(dc, horizon, cfg, stats.NewRand(seed))
}
