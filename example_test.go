package thermaldc_test

import (
	"fmt"

	"thermaldc"
)

// Example runs the paper's two techniques on a reduced instance and
// verifies the headline relationship: the thermal-aware three-stage
// assignment earns at least as much reward as the P0-or-off baseline.
func Example() {
	cfg := thermaldc.DefaultScenario(0.3, 0.3, 42)
	cfg.NCracs = 2
	cfg.NNodes = 10
	sc, err := thermaldc.NewScenario(cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	opts := thermaldc.DefaultAssignOptions()
	baseline, err := thermaldc.Baseline(sc, opts)
	if err != nil {
		fmt.Println(err)
		return
	}
	three, err := thermaldc.ThreeStage(sc, opts)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("oversubscribed:", sc.DC.Pconst < sc.Pmax)
	fmt.Println("three-stage ≥ baseline:", three.RewardRate() >= baseline.RewardRate)
	fmt.Println("within power cap:", three.Stage1.TotalPower <= sc.DC.Pconst+1e-6)
	// Output:
	// oversubscribed: true
	// three-stage ≥ baseline: true
	// within power cap: true
}
