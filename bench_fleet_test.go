// Fleet-scale benchmarks for the zone-decomposed Stage-1 solver
// (internal/zones). Each point solves a multi-zone fleet of 100-node
// zones at fixed CRAC outlets and reports ns/node — wall time per solve
// divided by the fleet's node count — so the 1k/10k/50k points are
// directly comparable: linear-or-better scaling means the 10k ns/node
// stays at or below the 1k point. cmd/benchcheck gates exactly that
// ratio (see fleet checks there); `make bench-compare` publishes the
// family as BENCH_fleet.json.
//
// The 50k point takes tens of seconds per iteration and is skipped
// unless TAPO_BENCH_50K is set.
package thermaldc_test

import (
	"context"
	"os"
	"testing"

	"thermaldc/internal/linprog"
	"thermaldc/internal/zones"
)

// fleetCache reuses the built fleets across sub-benchmarks; the three
// shared zone variants (scenario + layout builds) dominate setup cost,
// so building once keeps `-bench Fleet` interactive.
var fleetCache = map[int]*zones.Fleet{}

// getFleet returns a cached fleet of nz zones × 100 nodes × 2 CRACs.
func getFleet(b *testing.B, nz int) *zones.Fleet {
	b.Helper()
	if f, ok := fleetCache[nz]; ok {
		return f
	}
	f, err := zones.BuildFleet(zones.FleetConfig{
		Zones:        nz,
		NodesPerZone: 100,
		CracsPerZone: 2,
		Seed:         2,
	})
	if err != nil {
		b.Fatal(err)
	}
	fleetCache[nz] = f
	return f
}

// BenchmarkFleetStage1 is the fleet-scale family: a full price-coordinated
// Stage-1 solve per iteration, warm — the first solve primes the per-zone
// LU bases outside the timer, so iterations measure the steady-state
// epoch re-solve the controller's zone fast path issues.
func BenchmarkFleetStage1(b *testing.B) {
	for _, sz := range []struct {
		name  string
		zones int
	}{
		{"1k", 10},
		{"10k", 100},
		{"50k", 500},
	} {
		b.Run(sz.name, func(b *testing.B) {
			if sz.zones >= 500 && os.Getenv("TAPO_BENCH_50K") == "" {
				b.Skip("set TAPO_BENCH_50K=1 to run the 50k-node point")
			}
			f := getFleet(b, sz.zones)
			zs, err := zones.NewFleetSolver(f, zones.Config{
				Method:    linprog.MethodRevised,
				WarmStart: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			out := make([]float64, f.NumCRACs())
			for i := range out {
				out[i] = 15
			}
			ctx := context.Background()
			if _, err := zs.Solve(ctx, out); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := zs.Solve(ctx, out); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(f.NumNodes()), "ns/node")
		})
	}

	// zone-warm-resolve pins the zero-allocation contract of the warm
	// epoch re-solve on the zone fast path with telemetry off: serial
	// fan-out (no goroutines), no recorder, and the scratch entry point
	// that reuses the solver-owned result buffers. cmd/benchcheck fails
	// the fleet family if this reports any allocs/op.
	b.Run("zone-warm-resolve", func(b *testing.B) {
		f := getFleet(b, 10)
		zs, err := zones.NewFleetSolver(f, zones.Config{
			Method:      linprog.MethodRevised,
			WarmStart:   true,
			Parallelism: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		out := make([]float64, f.NumCRACs())
		for i := range out {
			out[i] = 15
		}
		ctx := context.Background()
		if _, err := zs.SolveScratch(ctx, out); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := zs.SolveScratch(ctx, out); err != nil {
				b.Fatal(err)
			}
		}
	})
}
