// Benchmarks regenerating each of the paper's tables and figures, plus
// component and ablation benches. Table/figure benches run at reduced
// scale so `go test -bench=.` stays interactive; the cmd/tapo CLI runs the
// full paper scale (25 trials, 150 nodes, 3 CRACs).
package thermaldc_test

import (
	"testing"

	"thermaldc/internal/assign"
	"thermaldc/internal/experiments"
	"thermaldc/internal/layout"
	"thermaldc/internal/linprog"
	"thermaldc/internal/model"
	"thermaldc/internal/pwl"
	"thermaldc/internal/scenario"
	"thermaldc/internal/sim"
	"thermaldc/internal/stats"
	"thermaldc/internal/telemetry"
	"thermaldc/internal/tempsearch"
	"thermaldc/internal/thermal"
	"thermaldc/internal/workload"
)

// benchScenario caches one small instance across benchmarks.
var benchSC *scenario.Scenario

func getScenario(b *testing.B) *scenario.Scenario {
	b.Helper()
	if benchSC == nil {
		cfg := scenario.Default(0.3, 0.3, 1)
		cfg.NCracs = 2
		cfg.NNodes = 20
		sc, err := scenario.Build(cfg)
		if err != nil {
			b.Fatal(err)
		}
		benchSC = sc
	}
	return benchSC
}

// BenchmarkTable1PowerModel regenerates Table I: the Appendix-A derivation
// of per-P-state core powers for both server models at both static shares.
func BenchmarkTable1PowerModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, share := range []float64{0.3, 0.2} {
			for _, nt := range model.TableINodeTypes(share) {
				_ = nt.CorePowers()
			}
		}
	}
}

// BenchmarkTable2AlphaGeneration regenerates the Table-II-driven
// Appendix-B cross-interference matrix for a 4-rack layout.
func BenchmarkTable2AlphaGeneration(b *testing.B) {
	sc := getScenario(b)
	cfg := sc.Config.Layout
	rng := stats.NewRand(1)
	dc := *sc.DC // shallow copy; GenerateAlpha replaces Alpha only
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := layout.GenerateAlpha(&dc, cfg, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3RRFunction regenerates the Figure-3 reward-rate function.
func BenchmarkFig3RRFunction(b *testing.B) {
	sc := getScenario(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = assign.RR(sc.DC, 0, 0)
	}
}

// BenchmarkFig4Fig5ARR regenerates the deadline-aware RR and its concave
// ARR envelope (Figures 4 and 5) for both node types.
func BenchmarkFig4Fig5ARR(b *testing.B) {
	sc := getScenario(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range sc.DC.NodeTypes {
			if _, err := assign.ARR(sc.DC, j, 50); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig6Improvement runs one full Figure-6 trial (baseline +
// three-stage at ψ=50) at reduced scale.
func BenchmarkFig6Improvement(b *testing.B) {
	sc := getScenario(b)
	opts := assign.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := assign.Baseline(sc.DC, sc.Thermal, opts); err != nil {
			b.Fatal(err)
		}
		if _, err := assign.ThreeStage(sc.DC, sc.Thermal, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEq17PowerBounds regenerates the Equation-17/18 power envelope.
func BenchmarkEq17PowerBounds(b *testing.B) {
	sc := getScenario(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := assign.PowerBounds(sc.DC, sc.Thermal, tempsearch.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStage1LP isolates one Stage-1 LP solve at fixed outlets.
func BenchmarkStage1LP(b *testing.B) {
	sc := getScenario(b)
	arrs := make([]*pwl.Func, len(sc.DC.NodeTypes))
	for j := range arrs {
		f, err := assign.ARR(sc.DC, j, 50)
		if err != nil {
			b.Fatal(err)
		}
		arrs[j] = f
	}
	out := []float64{15, 15}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := assign.Stage1Fixed(sc.DC, sc.Thermal, arrs, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStage3LP isolates the Stage-3 desired-rate LP.
func BenchmarkStage3LP(b *testing.B) {
	sc := getScenario(b)
	res, err := assign.ThreeStage(sc.DC, sc.Thermal, assign.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := assign.Stage3(sc.DC, res.PStates); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThermalModelPaperScale builds the 153-unit heat-flow model.
func BenchmarkThermalModelPaperScale(b *testing.B) {
	cfg := scenario.Default(0.3, 0.1, 2)
	cfg.NCracs = 3
	cfg.NNodes = 150
	sc, err := scenario.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := thermal.New(sc.DC); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDynamicScheduler streams one second of tasks per op through the
// second-step scheduler.
func BenchmarkDynamicScheduler(b *testing.B) {
	sc := getScenario(b)
	res, err := assign.ThreeStage(sc.DC, sc.Thermal, assign.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	const horizon = 10.0
	tasks := workload.GenerateTasks(sc.DC, horizon, stats.NewRand(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sc.DC, res.PStates, res.Stage3.TC, tasks, horizon); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tasks)), "tasks/op")
}

// BenchmarkSearchStrategies is the temperature-search ablation: the
// paper's coarse-to-fine multi-step search versus the exhaustive grid and
// coordinate descent.
func BenchmarkSearchStrategies(b *testing.B) {
	sc := getScenario(b)
	for _, strat := range []assign.Strategy{assign.CoarseToFine, assign.FullGrid, assign.CoordDescent} {
		b.Run(strat.String(), func(b *testing.B) {
			opts := assign.DefaultOptions()
			opts.Strategy = strat
			// A narrower window keeps the exhaustive grid tractable.
			opts.Search = tempsearch.Config{Lo: 10, Hi: 20, CoarseStep: 5, FineStep: 1}
			for i := 0; i < b.N; i++ {
				res, err := assign.ThreeStage(sc.DC, sc.Thermal, opts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.SearchEvals), "LPsolves/op")
			}
		})
	}
}

// benchPaperSC caches the paper-scale instance (150 nodes, 3 CRACs).
var benchPaperSC *scenario.Scenario

func getPaperScenario(b *testing.B) *scenario.Scenario {
	b.Helper()
	if benchPaperSC == nil {
		cfg := scenario.Default(0.3, 0.1, 2)
		cfg.NCracs = 3
		cfg.NNodes = 150
		sc, err := scenario.Build(cfg)
		if err != nil {
			b.Fatal(err)
		}
		benchPaperSC = sc
	}
	return benchPaperSC
}

// BenchmarkThreeStagePaperScale measures one full three-stage assignment
// trial at the paper's scale, comparing the historical per-candidate
// rebuild path (Stage1Fixed on every search candidate) against the
// incremental Stage1Solver, serially and with the parallel search.
func BenchmarkThreeStagePaperScale(b *testing.B) {
	sc := getPaperScenario(b)

	b.Run("legacy-rebuild", func(b *testing.B) {
		// The pre-Stage1Solver evaluation path: a fresh LP per candidate.
		arrs := make([]*pwl.Func, len(sc.DC.NodeTypes))
		for j := range arrs {
			f, err := assign.ARR(sc.DC, j, 50)
			if err != nil {
				b.Fatal(err)
			}
			arrs[j] = f
		}
		cfg := tempsearch.DefaultConfig()
		cfg.Parallelism = 1
		eval := tempsearch.Shared(func(cracOut []float64) (float64, bool) {
			res, err := assign.Stage1Fixed(sc.DC, sc.Thermal, arrs, cracOut)
			if err != nil || !res.Feasible {
				return 0, false
			}
			return res.PredictedARR, true
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			best, err := tempsearch.CoarseToFine(sc.DC.NCRAC(), cfg, eval)
			if err != nil {
				b.Fatal(err)
			}
			s1, err := assign.Stage1Fixed(sc.DC, sc.Thermal, arrs, best.Out)
			if err != nil {
				b.Fatal(err)
			}
			pstates, err := assign.Stage2(sc.DC, arrs, s1)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := assign.Stage3(sc.DC, pstates); err != nil {
				b.Fatal(err)
			}
		}
	})

	for _, bench := range []struct {
		name    string
		par     int
		pricing linprog.Pricing
	}{
		{"solver-serial", 1, linprog.PricingDantzig},
		{"solver-parallel", 0, linprog.PricingDantzig},
		// solver-serial-devex is an ablation, not a contender, at this
		// scale: devex's reference-weight bookkeeping costs ~2× wall time
		// on the paper's small dense LPs (hundreds of columns) and only
		// pays off when steepest-edge-like pricing saves enough pivots,
		// i.e. on LPs orders of magnitude larger. It is therefore
		// excluded from the default `make bench-compare` gate (see the
		// Makefile) and kept here for `go test -bench .` inspection.
		{"solver-serial-devex", 1, linprog.PricingDevex},
	} {
		b.Run(bench.name, func(b *testing.B) {
			opts := assign.DefaultOptions()
			opts.Search.Parallelism = bench.par
			opts.Pricing = bench.pricing
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := assign.ThreeStage(sc.DC, sc.Thermal, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// solver-warm-epoch is the controller's steady state: one retained
	// ThreeStageSolver re-solving every epoch on cached search workers and
	// the cached Stage-3 skeleton.
	b.Run("solver-warm-epoch", func(b *testing.B) {
		opts := assign.DefaultOptions()
		opts.Search.Parallelism = 1
		s, err := assign.NewThreeStageSolver(sc.DC, sc.Thermal, opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Solve(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Solve(); err != nil {
				b.Fatal(err)
			}
		}
	})

	// warm-resolve-allocs pins the zero-allocation contract of the scratch
	// Stage-1 path at paper scale: after warm-up, re-solves must report
	// 0 allocs/op (make bench-compare fails otherwise).
	b.Run("warm-resolve-allocs", func(b *testing.B) {
		arrs := make([]*pwl.Func, len(sc.DC.NodeTypes))
		for j := range arrs {
			f, err := assign.ARR(sc.DC, j, 50)
			if err != nil {
				b.Fatal(err)
			}
			arrs[j] = f
		}
		s := assign.NewStage1Solver(sc.DC, sc.Thermal, arrs)
		outs := [][]float64{{15, 15, 15}, {14, 16, 15}}
		for _, out := range outs {
			res, err := s.SolveScratch(out)
			if err != nil || !res.Feasible {
				b.Fatalf("warm-up solve at %v: %v (feasible=%v)", out, err, res != nil && res.Feasible)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.SolveScratch(outs[i%2]); err != nil {
				b.Fatal(err)
			}
		}
	})

	// warm-dual-resolve and cold-dual-resolve isolate the controller's
	// power-cap epoch re-solve under the revised core: fixed outlets, the
	// cap stepping every iteration so the retained basis goes primal
	// infeasible and must be repaired. The warm variant re-enters via the
	// dual simplex from the previous optimal basis; the cold variant
	// re-solves from scratch. Both report pivots/op, which benchcheck
	// gates: warm must pivot strictly less than cold and stay at
	// 0 allocs/op (make bench-compare fails otherwise).
	for _, bench := range []struct {
		name string
		warm bool
	}{
		{"warm-dual-resolve", true},
		{"cold-dual-resolve", false},
	} {
		b.Run(bench.name, func(b *testing.B) {
			arrs := make([]*pwl.Func, len(sc.DC.NodeTypes))
			for j := range arrs {
				f, err := assign.ARR(sc.DC, j, 50)
				if err != nil {
					b.Fatal(err)
				}
				arrs[j] = f
			}
			s := assign.NewStage1Solver(sc.DC, sc.Thermal, arrs)
			s.SetMethod(linprog.MethodRevised)
			s.SetWarmStart(bench.warm)
			out := []float64{15, 15, 15}
			base := sc.DC.Pconst
			defer func() { sc.DC.Pconst = base }()
			caps := [2]float64{1, 0.98}
			for _, c := range caps {
				sc.DC.Pconst = base * c
				res, err := s.SolveScratch(out)
				if err != nil || !res.Feasible {
					b.Fatalf("warm-up solve at cap %g: %v (feasible=%v)", c, err, res != nil && res.Feasible)
				}
			}
			s.TakeStats()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc.DC.Pconst = base * caps[i%2]
				if _, err := s.SolveScratch(out); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := s.TakeStats()
			b.ReportMetric(float64(st.Pivots)/float64(b.N), "pivots/op")
			if bench.warm && st.WarmHits != int64(b.N) {
				b.Fatalf("warm hits %d over %d re-solves (rejects %d)", st.WarmHits, b.N, st.WarmRejects)
			}
		})
	}

	// warm-resolve-allocs-metrics repeats the contract with the metrics
	// registry live (tracing still off, its default): counter increments
	// are atomic adds on pre-resolved handles, so instrumentation must not
	// cost an allocation either (make bench-compare fails otherwise).
	b.Run("warm-resolve-allocs-metrics", func(b *testing.B) {
		arrs := make([]*pwl.Func, len(sc.DC.NodeTypes))
		for j := range arrs {
			f, err := assign.ARR(sc.DC, j, 50)
			if err != nil {
				b.Fatal(err)
			}
			arrs[j] = f
		}
		s := assign.NewStage1Solver(sc.DC, sc.Thermal, arrs)
		s.SetRecorder(telemetry.NewRecorder())
		outs := [][]float64{{15, 15, 15}, {14, 16, 15}}
		for _, out := range outs {
			res, err := s.SolveScratch(out)
			if err != nil || !res.Feasible {
				b.Fatalf("warm-up solve at %v: %v (feasible=%v)", out, err, res != nil && res.Feasible)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.SolveScratch(outs[i%2]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig6ReducedExperiment runs a miniature end-to-end Figure-6
// experiment (1 trial per group) including scenario construction.
func BenchmarkFig6ReducedExperiment(b *testing.B) {
	cfg := experiments.DefaultFig6Config()
	cfg.Trials = 1
	cfg.NCracs = 2
	cfg.NNodes = 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure6(cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}
