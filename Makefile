# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short race bench bench-json bench-compare ci fig6 results clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./internal/experiments/ ./internal/sim/ ./internal/sched/ ./internal/controller/ ./internal/faults/ ./internal/telemetry/

# Pre-merge gate (see README): formatting, vet, build, full race suite,
# the full revised-vs-tableau differential sweep (600 seeded LPs, behind
# the slow tag), a 1k-node multi-zone fleet solve with invariant checks
# (also behind the slow tag), short fuzz smokes on the workload parser,
# the LU factorizer and the checkpoint journal decoder, the simplex and
# fleet-scaling performance gates (the fleet family includes the
# zone-warm-resolve 0-allocs gate), a short instrumented degraded run whose
# exported time series must pass cmd/tscheck's schema validation and whose
# Chrome trace must pass `tapo trace lint`, a flight-recorder smoke (a 1ns
# solve budget forces the ladder onto a safe rung every epoch; at least one
# bundle must exist and parse via `tapo flight`), and a crash-recovery
# smoke: a checkpointed sweep is killed mid-run after its 5th durable
# commit, then resumed, and the resumed table must byte-match an
# uninterrupted run's.
ci:
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(GO) test -tags slow -run TestDifferentialFull ./internal/linprog
	$(GO) test -tags slow -run TestFleetSmoke1k ./internal/zones
	$(GO) test -run '^$$' -fuzz FuzzLoadTasks -fuzztime 10s ./internal/workload
	$(GO) test -run '^$$' -fuzz FuzzFactorLU -fuzztime 10s ./internal/linalg
	$(GO) test -run '^$$' -fuzz FuzzJournalDecode -fuzztime 10s ./internal/persist
	$(MAKE) bench-compare BENCHTIME=1x
	$(GO) run ./cmd/tapo degraded -trials 1 -nodes 10 -cracs 2 -horizon 30 \
		-faults 0:0,2:1 -metrics-out /tmp/tapo-ci-metrics.jsonl \
		-trace-out /tmp/tapo-ci-trace.json > /dev/null
	$(GO) run ./cmd/tscheck /tmp/tapo-ci-metrics.jsonl
	$(GO) run ./cmd/tapo trace lint /tmp/tapo-ci-trace.json
	rm -rf /tmp/tapo-ci-flight
	$(GO) run ./cmd/tapo degraded -trials 1 -nodes 10 -cracs 2 -horizon 30 \
		-faults 0:0,2:1 -solve-timeout 1ns \
		-flight-dir /tmp/tapo-ci-flight > /dev/null
	$(GO) run ./cmd/tapo flight /tmp/tapo-ci-flight
	$(GO) build -o /tmp/tapo-ci ./cmd/tapo
	rm -rf /tmp/tapo-ci-ck
	/tmp/tapo-ci degraded -trials 1 -nodes 10 -cracs 2 -horizon 30 \
		-faults 0:0,2:1 > /tmp/tapo-ci-clean.txt
	if /tmp/tapo-ci degraded -trials 1 -nodes 10 -cracs 2 -horizon 30 \
		-faults 0:0,2:1 -checkpoint /tmp/tapo-ci-ck -crash-after 5 \
		> /dev/null 2>&1; then \
		echo "crash-recovery smoke: -crash-after did not crash"; exit 1; fi
	/tmp/tapo-ci degraded -trials 1 -nodes 10 -cracs 2 -horizon 30 \
		-faults 0:0,2:1 -resume /tmp/tapo-ci-ck > /tmp/tapo-ci-resumed.txt
	diff /tmp/tapo-ci-clean.txt /tmp/tapo-ci-resumed.txt

bench:
	$(GO) test -bench=. -benchmem ./...

# Stage-1 solver benchmark (legacy rebuild vs incremental solver, serial
# and parallel) in machine-readable form.
bench-json:
	$(GO) test -run '^$$' -bench 'ThreeStagePaperScale' -benchtime 3x -json . > BENCH_stage1.json
	@grep 'ns/op' BENCH_stage1.json | sed 's/.*"Test":"\([^"]*\)".*"Output":" *\([0-9]*\)\\t \([0-9]*\) ns.op.*/\1: \3 ns\/op (\2 runs)/' || true

# Performance gates. The simplex pass records the flat-vs-legacy and
# allocation subbenchmarks, then fails if the warm scratch path allocates
# or the flat solver regresses below the legacy rebuild path; the
# solver-serial-devex ablation is excluded (devex pricing only pays off on
# LPs far larger than paper scale — see bench_test.go — so gating it here
# would just burn CI time on a documented 2× slowdown). The fleet pass
# records the 1k/10k-node zone-decomposed solves and fails if ns/node
# grows super-linearly with fleet size. BENCHTIME=1x (as in `make ci`)
# keeps it quick; the default 3x smooths scheduler noise.
BENCHTIME ?= 3x
FLEETBENCHTIME ?= 1x
bench-compare:
	$(GO) test -run '^$$' -bench 'ThreeStagePaperScale/(legacy-rebuild|solver-serial$$|solver-parallel|solver-warm-epoch|warm-resolve-allocs|warm-dual-resolve|cold-dual-resolve)' \
		-benchtime $(BENCHTIME) -json . > BENCH_simplex.json
	$(GO) run ./cmd/benchcheck BENCH_simplex.json
	$(GO) test -run '^$$' -bench 'FleetStage1' -benchtime $(FLEETBENCHTIME) -json . > BENCH_fleet.json
	$(GO) run ./cmd/benchcheck BENCH_fleet.json

# The paper's headline experiment at full scale (25 trials, 150 nodes,
# 3 CRACs); takes ~10 minutes on one core.
fig6:
	$(GO) run ./cmd/tapo fig6 -trials 25 -nodes 150 -cracs 3

# Regenerate every recorded experiment in results/ (slow).
results:
	$(GO) build -o /tmp/tapo ./cmd/tapo
	/tmp/tapo bounds   -nodes 150 -cracs 3                         > results/bounds.txt
	/tmp/tapo ablation -trials 5 -nodes 150 -cracs 3               > results/ablation.txt
	/tmp/tapo simulate -trials 5 -nodes 150 -cracs 3 -horizon 120  > results/simulate.txt
	/tmp/tapo minpower -nodes 150 -cracs 3                         > results/minpower.txt
	/tmp/tapo policies -trials 3 -nodes 150 -cracs 3 -horizon 120  > results/policies.txt
	/tmp/tapo dynamic  -nodes 150 -cracs 3                         > results/dynamic.txt
	/tmp/tapo compare  -trials 5 -nodes 150 -cracs 3               > results/compare.txt
	/tmp/tapo burst    -trials 3 -nodes 150 -cracs 3 -horizon 120  > results/burst.txt
	/tmp/tapo sweep -kind powercap -trials 5 -nodes 60 -cracs 3    > results/sweep_powercap.txt
	/tmp/tapo sweep -kind psi      -trials 5 -nodes 60 -cracs 3    > results/sweep_psi.txt
	/tmp/tapo sweep -kind vprop    -trials 5 -nodes 60 -cracs 3    > results/sweep_vprop.txt
	/tmp/tapo sweep -kind static   -trials 5 -nodes 60 -cracs 3    > results/sweep_static.txt
	/tmp/tapo sweep -kind hetero   -trials 5 -nodes 60 -cracs 3    > results/sweep_hetero.txt

clean:
	$(GO) clean ./...
