// Power-cap sweep: the paper's motivating scenario is a data center whose
// available power is physically capped. This example slides Pconst from
// near Pmin to near Pmax and shows (a) both techniques' reward rates and
// (b) where the three-stage advantage is largest — the heavily constrained
// regime, where P-state choice matters most.
//
//	go run ./examples/powercap-sweep
package main

import (
	"fmt"
	"log"
	"strings"

	"thermaldc"
)

func main() {
	fractions := []float64{0.15, 0.3, 0.45, 0.6, 0.75, 0.9}
	opts := thermaldc.DefaultAssignOptions()

	fmt.Printf("%-10s %-12s %-12s %-12s %-12s %s\n",
		"fraction", "Pconst kW", "baseline", "three-stage", "gain %", "")
	for _, f := range fractions {
		cfg := thermaldc.DefaultScenario(0.3, 0.3, 7)
		cfg.NCracs = 2
		cfg.NNodes = 20
		cfg.PconstFraction = f
		sc, err := thermaldc.NewScenario(cfg)
		if err != nil {
			log.Fatal(err)
		}
		bl, err := thermaldc.Baseline(sc, opts)
		if err != nil {
			log.Fatal(err)
		}
		ts, err := thermaldc.ThreeStage(sc, opts)
		if err != nil {
			log.Fatal(err)
		}
		gain := 100 * (ts.RewardRate() - bl.RewardRate) / bl.RewardRate
		bar := strings.Repeat("▋", int(gain*2+0.5))
		fmt.Printf("%-10.2f %-12.1f %-12.1f %-12.1f %+-12.2f %s\n",
			f, sc.DC.Pconst, bl.RewardRate, ts.RewardRate(), gain, bar)
	}
	fmt.Println("\nThe gap narrows as the cap rises: with ample power both techniques")
	fmt.Println("simply run every core at P-state 0, which is exactly the baseline's move.")
}
