// Dynamic scheduler: the paper's second-step assignment. After the
// first step fixes CRAC outlets, P-states and desired execution rates,
// a Poisson task stream arrives and the dynamic scheduler maps each task
// to the core with the lowest actual/desired rate ratio that can still
// meet its deadline — or drops it. This example compares the realized
// reward rate against the Stage-3 steady-state prediction.
//
//	go run ./examples/dynamic-scheduler
package main

import (
	"fmt"
	"log"

	"thermaldc"
)

func main() {
	cfg := thermaldc.DefaultScenario(0.3, 0.1, 11)
	cfg.NCracs = 2
	cfg.NNodes = 20
	sc, err := thermaldc.NewScenario(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := thermaldc.ThreeStage(sc, thermaldc.DefaultAssignOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("First step fixed: outlets %v, Stage-3 predicted reward rate %.1f/s\n\n",
		res.Stage1.CracOut, res.RewardRate())

	const horizon = 120.0
	tasks := thermaldc.GenerateTasks(sc.DC, horizon, 99)
	fmt.Printf("Streaming %d tasks over %.0f s through the dynamic scheduler...\n\n", len(tasks), horizon)

	out, err := thermaldc.Simulate(sc.DC, res, tasks, horizon)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Realized reward rate : %.1f/s (%.1f%% of prediction)\n",
		out.RewardRate, 100*out.RewardRate/res.RewardRate())
	fmt.Printf("Completed            : %d tasks\n", out.Completed)
	fmt.Printf("Dropped              : %d tasks (%.1f%% — the data center is oversubscribed)\n",
		out.Dropped, 100*float64(out.Dropped)/float64(len(tasks)))
	fmt.Printf("Core busy fraction   : %.1f%%\n", 100*out.BusyFraction)
	fmt.Printf("Rate-tracking error  : mean |ATC/TC − 1| = %.3f\n\n", out.MeanRatioError)

	fmt.Printf("%-8s %-10s %-10s %-10s\n", "type", "completed", "dropped", "reward")
	for i, tt := range sc.DC.TaskTypes {
		fmt.Printf("%-8s %-10d %-10d %-10.3g\n",
			tt.Name, out.CompletedByType[i], out.DroppedByType[i], tt.Reward)
	}
}
