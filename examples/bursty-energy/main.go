// Bursty arrivals + energy accounting: stress the second-step scheduler
// with Markov-modulated (bursty) arrivals, compare the paper's min-ratio
// policy against the softened variant on the same stream, and account the
// compute energy including the paper's §III.C task-type power factors.
//
//	go run ./examples/bursty-energy
package main

import (
	"fmt"
	"log"

	"thermaldc"
)

func main() {
	cfg := thermaldc.DefaultScenario(0.3, 0.3, 17)
	cfg.NCracs = 2
	cfg.NNodes = 20
	sc, err := thermaldc.NewScenario(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := thermaldc.ThreeStage(sc, thermaldc.DefaultAssignOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Stage-3 predicted reward rate: %.1f/s\n\n", res.RewardRate())

	// Mark the two easiest task types I/O-intensive: they draw only 70%
	// of the P-state power while executing (§III.C extension).
	for i := len(sc.DC.TaskTypes) - 2; i < len(sc.DC.TaskTypes); i++ {
		sc.DC.TaskTypes[i].PowerFactor = 0.7
	}

	const horizon = 90.0
	tasks, err := thermaldc.GenerateBurstyTasks(sc.DC, horizon, thermaldc.BurstConfig{
		Burst:            0.9, // bursts run at 1.9× the mean rate
		HighFraction:     0.25,
		MeanHighDuration: 10,
	}, 23)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MMPP stream: %d tasks over %.0f s (bursts at 1.9×)\n\n", len(tasks), horizon)

	for _, policy := range []thermaldc.SchedPolicy{
		thermaldc.PaperPolicy(),
		thermaldc.SoftRatioPolicy(),
	} {
		out, err := thermaldc.SimulateOpts(sc.DC, res, tasks, horizon, thermaldc.SimOptions{Policy: policy})
		if err != nil {
			log.Fatal(err)
		}
		energy, err := thermaldc.Energy(sc.DC, res, out, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s reward %.1f/s (%.0f%% of prediction), dropped %.1f%%\n",
			policy.Name(), out.RewardRate, 100*out.RewardRate/res.RewardRate(),
			100*float64(out.Dropped)/float64(len(tasks)))
		fmt.Printf("%-16s compute energy %.0f kJ (avg %.1f kW: base %.0f + busy %.0f + idle %.0f kJ)\n\n",
			"", energy.ComputeKJ, energy.AvgComputeKW, energy.BaseKJ, energy.BusyKJ, energy.IdleKJ)
	}
	fmt.Println("The soft policy converts most drops into assignments during bursts;")
	fmt.Println("busy energy shrinks when I/O-intensive types carry a power factor < 1.")
}
