// Quickstart: build one Section-VI scenario, run the paper's three-stage
// assignment and the Equation-21 baseline, and compare their steady-state
// reward rates.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"thermaldc"
)

func main() {
	// A reduced instance (2 CRACs, 30 nodes) of the paper's setup with
	// static power share 30% and Vprop 0.3; seed fixes every random draw.
	cfg := thermaldc.DefaultScenario(0.3, 0.3, 42)
	cfg.NCracs = 2
	cfg.NNodes = 30
	sc, err := thermaldc.NewScenario(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Data center: %d nodes / %d cores, %d CRACs, %d task types\n",
		sc.DC.NCN(), sc.DC.NumCores(), sc.DC.NCRAC(), sc.DC.T())
	fmt.Printf("Power envelope: Pmin %.1f kW, Pmax %.1f kW, Pconst %.1f kW (oversubscribed)\n\n",
		sc.Pmin, sc.Pmax, sc.DC.Pconst)

	opts := thermaldc.DefaultAssignOptions()

	baseline, err := thermaldc.Baseline(sc, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Equation-21 baseline (P-state 0 or off):\n")
	fmt.Printf("  reward rate %.1f at outlets %v, power %.1f/%.1f kW\n\n",
		baseline.RewardRate, baseline.CracOut, baseline.TotalPower, sc.DC.Pconst)

	best := 0.0
	for _, psi := range []float64{25, 50} {
		opts.Psi = psi
		res, err := thermaldc.ThreeStage(sc, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Three-stage assignment, ψ=%g:\n", psi)
		fmt.Printf("  reward rate %.1f at outlets %v, power %.1f kW, %d Stage-1 LP solves\n",
			res.RewardRate(), res.Stage1.CracOut, res.Stage1.TotalPower, res.SearchEvals)
		onCores := 0
		for _, ps := range res.PStates {
			if ps < 4 { // both Table-I types have 4 real P-states
				onCores++
			}
		}
		fmt.Printf("  %d/%d cores powered on\n", onCores, sc.DC.NumCores())
		if res.RewardRate() > best {
			best = res.RewardRate()
		}
	}
	fmt.Printf("\nImprovement of best three-stage over baseline: %+.2f%%\n",
		100*(best-baseline.RewardRate)/baseline.RewardRate)
}
