// Custom data center: assemble a heterogeneous data center by hand —
// the two Table-I server models plus a third, low-power custom type —
// lay it out, generate Appendix-B cross-interference coefficients and a
// synthetic workload, and run the thermal-aware assignment. Finally the
// whole model round-trips through JSON.
//
//	go run ./examples/custom-datacenter
package main

import (
	"encoding/json"
	"fmt"
	"log"

	"thermaldc"
)

func main() {
	// Start from the paper's two servers and add a custom micro-server:
	// 16 low-power cores, modest base power, smaller air flow.
	types := thermaldc.TableINodeTypes(0.3)
	types = append(types, thermaldc.NodeType{
		Name:      "Custom MicroBlade",
		BasePower: 0.120,
		NumCores:  16,
		Core: thermaldc.CoreModel{
			FreqMHz:     []float64{2000, 1500, 1000},
			Voltage:     []float64{1.1, 1.0, 0.9},
			P0Power:     0.006,
			StaticShare: 0.25,
		},
		AirFlow: 0.03,
	})

	dc := &thermaldc.DataCenter{
		NodeTypes:   types,
		CRACs:       make([]thermaldc.CRAC, 2),
		RedlineNode: 25,
		RedlineCRAC: 40,
	}
	// 6 racks of 5 nodes, cycling through the three types.
	for j := 0; j < 30; j++ {
		dc.Nodes = append(dc.Nodes, thermaldc.Node{Type: j % 3})
	}

	lay := thermaldc.DefaultLayoutConfig()
	if err := thermaldc.ArrangeLayout(dc, lay); err != nil {
		log.Fatal(err)
	}
	if err := thermaldc.GenerateAlpha(dc, lay, 1); err != nil {
		log.Fatal(err)
	}

	// Workload: 6 task types; performance factors must cover all 3 node
	// types (the custom type performs at 0.4 of the NEC server).
	wl := thermaldc.DefaultWorkloadConfig(0.2)
	wl.T = 6
	wl.NodeTypePerf = []float64{0.6, 1.0, 0.4}
	if err := thermaldc.GenerateWorkload(dc, wl, 2); err != nil {
		log.Fatal(err)
	}

	tm, err := thermaldc.NewThermalModel(dc)
	if err != nil {
		log.Fatal(err)
	}
	search := thermaldc.SearchConfig{Lo: 5, Hi: 25, CoarseStep: 5, FineStep: 1}
	pmin, pmax, err := thermaldc.PowerBounds(dc, tm, search)
	if err != nil {
		log.Fatal(err)
	}
	dc.Pconst = (pmin + pmax) / 2
	if err := dc.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Custom data center: %d nodes (%d types), %d cores, Pconst %.1f kW\n",
		dc.NCN(), len(dc.NodeTypes), dc.NumCores(), dc.Pconst)

	sc := &thermaldc.Scenario{DC: dc, Thermal: tm, Pmin: pmin, Pmax: pmax}
	opts := thermaldc.DefaultAssignOptions()
	opts.Search = search
	res, err := thermaldc.ThreeStage(sc, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Three-stage reward rate: %.1f/s at outlets %v\n", res.RewardRate(), res.Stage1.CracOut)

	// How did each node type fare? Count powered-on cores per type.
	on := make([]int, len(types))
	total := make([]int, len(types))
	core := 0
	for j := 0; j < dc.NCN(); j++ {
		nt := dc.Nodes[j].Type
		for c := 0; c < dc.NodeType(j).NumCores; c++ {
			total[nt]++
			if res.PStates[core] < dc.NodeType(j).OffState() {
				on[nt]++
			}
			core++
		}
	}
	for i, t := range types {
		fmt.Printf("  %-26s %3d/%3d cores on\n", t.Name, on[i], total[i])
	}

	// JSON round trip: the whole model serializes losslessly.
	raw, err := json.Marshal(dc)
	if err != nil {
		log.Fatal(err)
	}
	var back thermaldc.DataCenter
	if err := json.Unmarshal(raw, &back); err != nil {
		log.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("JSON round trip OK (%d bytes)\n", len(raw))
}
