package persist

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func testTag(b byte) Tag {
	var t Tag
	for i := range t {
		t[i] = b
	}
	return t
}

// buildJournal writes a journal with the given payloads and returns its
// path and raw bytes.
func buildJournal(t *testing.T, dir string, tag Tag, payloads ...[]byte) (string, []byte) {
	t.Helper()
	path := filepath.Join(dir, "j.wal")
	j, err := CreateJournal(path, tag)
	if err != nil {
		t.Fatalf("CreateJournal: %v", err)
	}
	for i, p := range payloads {
		if err := j.Append(uint64(i+1), p); err != nil {
			t.Fatalf("Append %d: %v", i+1, err)
		}
	}
	if err := j.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	return path, data
}

func kindOf(t *testing.T, err error) Kind {
	t.Helper()
	var pe *Error
	if !errors.As(err, &pe) {
		t.Fatalf("error %v is not a *persist.Error", err)
	}
	return pe.Kind
}

func TestJournalRoundTrip(t *testing.T) {
	tag := testTag(7)
	payloads := [][]byte{[]byte("alpha"), []byte(""), bytes.Repeat([]byte{0xAB}, 1000)}
	path, _ := buildJournal(t, t.TempDir(), tag, payloads...)

	j, recs, err := OpenJournal(path, tag)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	defer j.Close()
	if len(recs) != len(payloads) {
		t.Fatalf("recovered %d records, want %d", len(recs), len(payloads))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Errorf("record %d: seq %d, want %d", i, r.Seq, i+1)
		}
		if !bytes.Equal(r.Payload, payloads[i]) {
			t.Errorf("record %d: payload mismatch", i)
		}
	}
	if j.LastSeq() != uint64(len(payloads)) {
		t.Errorf("LastSeq %d, want %d", j.LastSeq(), len(payloads))
	}

	// The recovered journal accepts further appends with later sequences
	// and rejects a regression.
	if err := j.Append(2, []byte("dup")); err == nil {
		t.Error("Append with old sequence succeeded, want error")
	}
	if err := j.Append(uint64(len(payloads)+1), []byte("next")); err != nil {
		t.Errorf("Append after recovery: %v", err)
	}
	if err := j.Commit(); err != nil {
		t.Errorf("Commit after recovery: %v", err)
	}
}

// Torn-tail cases: every truncation point inside the final record must
// recover the earlier records, drop the tail, and leave the file
// appendable.
func TestJournalTornTailTruncated(t *testing.T) {
	tag := testTag(1)
	dir := t.TempDir()
	_, full := buildJournal(t, dir, tag, []byte("first"), []byte("second-payload"))

	headerLen := len(journalMagic) + TagLen
	rec1End := headerLen + recHeaderLen + len("first")
	cases := []struct {
		name string
		cut  int // bytes kept
	}{
		{"mid header", rec1End + recHeaderLen/2},
		{"header only", rec1End + recHeaderLen},
		{"mid payload", rec1End + recHeaderLen + 4},
		{"one byte short", len(full) - 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "torn.wal")
			if err := os.WriteFile(path, full[:tc.cut], 0o644); err != nil {
				t.Fatal(err)
			}
			j, recs, err := OpenJournal(path, tag)
			if err != nil {
				t.Fatalf("OpenJournal: %v", err)
			}
			defer j.Close()
			if len(recs) != 1 || string(recs[0].Payload) != "first" {
				t.Fatalf("recovered %d records, want just the first", len(recs))
			}
			// The torn bytes are gone from disk; appending resumes at seq 2.
			if fi, err := os.Stat(path); err != nil || fi.Size() != int64(rec1End) {
				t.Errorf("file size %d after truncation, want %d", fi.Size(), rec1End)
			}
			if err := j.Append(2, []byte("replacement")); err != nil {
				t.Fatalf("Append after truncation: %v", err)
			}
			if err := j.Commit(); err != nil {
				t.Fatal(err)
			}
			j.Close()
			_, recs2, err := OpenJournal(path, tag)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			if len(recs2) != 2 || string(recs2[1].Payload) != "replacement" {
				t.Fatalf("after re-append recovered %d records", len(recs2))
			}
		})
	}
}

func TestJournalCRCBitFlip(t *testing.T) {
	tag := testTag(2)
	dir := t.TempDir()
	_, full := buildJournal(t, dir, tag, []byte("first"), []byte("second"))
	headerLen := len(journalMagic) + TagLen
	rec1End := headerLen + recHeaderLen + len("first")

	t.Run("final record is a torn tail", func(t *testing.T) {
		data := append([]byte(nil), full...)
		data[len(data)-1] ^= 0x40 // flip a bit in the last record's payload
		path := filepath.Join(t.TempDir(), "flip.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, recs, err := OpenJournal(path, tag)
		if err != nil {
			t.Fatalf("OpenJournal: %v", err)
		}
		j.Close()
		if len(recs) != 1 {
			t.Fatalf("recovered %d records, want 1 (corrupt tail dropped)", len(recs))
		}
	})

	t.Run("non-final record fails loudly", func(t *testing.T) {
		data := append([]byte(nil), full...)
		data[rec1End-1] ^= 0x40 // flip a bit in the FIRST record's payload
		path := filepath.Join(t.TempDir(), "flip.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err := OpenJournal(path, tag)
		if err == nil {
			t.Fatal("OpenJournal succeeded on mid-file corruption")
		}
		if k := kindOf(t, err); k != KindCorrupt {
			t.Errorf("kind %v, want KindCorrupt", k)
		}
	})
}

func TestJournalDuplicateSeq(t *testing.T) {
	tag := testTag(3)
	// Hand-build a journal whose second record repeats sequence 1 by
	// duplicating the first record's bytes.
	_, full := buildJournal(t, t.TempDir(), tag, []byte("only"))
	headerLen := len(journalMagic) + TagLen
	rec := full[headerLen:]
	data := append(append([]byte(nil), full...), rec...)
	path := filepath.Join(t.TempDir(), "dup.wal")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := OpenJournal(path, tag)
	if err == nil {
		t.Fatal("OpenJournal accepted a duplicate sequence")
	}
	if k := kindOf(t, err); k != KindCorrupt {
		t.Errorf("kind %v, want KindCorrupt", k)
	}
}

func TestJournalTagMismatch(t *testing.T) {
	path, _ := buildJournal(t, t.TempDir(), testTag(4), []byte("x"))
	_, _, err := OpenJournal(path, testTag(5))
	if err == nil {
		t.Fatal("OpenJournal accepted a foreign tag")
	}
	if k := kindOf(t, err); k != KindMismatch {
		t.Errorf("kind %v, want KindMismatch", k)
	}
}

func TestJournalBadMagic(t *testing.T) {
	path, data := buildJournal(t, t.TempDir(), testTag(4), []byte("x"))
	data[0] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := OpenJournal(path, testTag(4))
	if err == nil {
		t.Fatal("OpenJournal accepted bad magic")
	}
	if k := kindOf(t, err); k != KindCorrupt {
		t.Errorf("kind %v, want KindCorrupt", k)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	tag := testTag(9)
	path := filepath.Join(t.TempDir(), "s.snap")

	// Missing file: recovery proceeds with the journal alone.
	if snap, err := ReadSnapshot(path, tag); err != nil || snap != nil {
		t.Fatalf("missing snapshot: got (%v, %v), want (nil, nil)", snap, err)
	}

	payload := bytes.Repeat([]byte{1, 2, 3}, 100)
	if err := WriteSnapshot(path, tag, 42, payload); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	snap, err := ReadSnapshot(path, tag)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if snap.Seq != 42 || !bytes.Equal(snap.Payload, payload) {
		t.Fatalf("snapshot round-trip mismatch: seq %d", snap.Seq)
	}

	// Overwrite replaces atomically.
	if err := WriteSnapshot(path, tag, 43, []byte("newer")); err != nil {
		t.Fatal(err)
	}
	snap, err = ReadSnapshot(path, tag)
	if err != nil || snap.Seq != 43 || string(snap.Payload) != "newer" {
		t.Fatalf("overwritten snapshot: seq %d, err %v", snap.Seq, err)
	}

	// Tag mismatch and bit flips are loud.
	if _, err := ReadSnapshot(path, testTag(10)); err == nil {
		t.Error("ReadSnapshot accepted a foreign tag")
	} else if k := kindOf(t, err); k != KindMismatch {
		t.Errorf("kind %v, want KindMismatch", k)
	}
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(path, tag); err == nil {
		t.Error("ReadSnapshot accepted a corrupted payload")
	} else if k := kindOf(t, err); k != KindCorrupt {
		t.Errorf("kind %v, want KindCorrupt", k)
	}
}

func TestStoreCommitSnapshotRecover(t *testing.T) {
	tag := testTag(11)
	dir := t.TempDir()
	s, err := CreateStore(dir, tag)
	if err != nil {
		t.Fatalf("CreateStore: %v", err)
	}
	for i := 1; i <= 5; i++ {
		seq, err := s.Commit([]byte(fmt.Sprintf("epoch-%d", i)))
		if err != nil {
			t.Fatalf("Commit %d: %v", i, err)
		}
		if seq != uint64(i) {
			t.Fatalf("Commit %d assigned seq %d", i, seq)
		}
		if i == 3 {
			if err := s.Snapshot([]byte("state-through-3")); err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
		}
	}
	s.Close()

	s2, rec, err := OpenStore(dir, tag)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	defer s2.Close()
	if string(rec.Snapshot) != "state-through-3" || rec.SnapshotSeq != 3 {
		t.Fatalf("snapshot payload %q seq %d", rec.Snapshot, rec.SnapshotSeq)
	}
	if len(rec.Records) != 2 || rec.Records[0].Seq != 4 || rec.Records[1].Seq != 5 {
		t.Fatalf("replay records %v, want seqs 4,5", rec.Records)
	}
	// Further commits continue the sequence.
	if seq, err := s2.Commit([]byte("epoch-6")); err != nil || seq != 6 {
		t.Fatalf("post-recovery Commit: seq %d err %v", seq, err)
	}
}

func TestStoreSnapshotNewerThanJournal(t *testing.T) {
	tag := testTag(12)
	dir := t.TempDir()
	s, err := CreateStore(dir, tag)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit([]byte("one")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// A snapshot claiming sequence 9 that the journal never committed.
	if err := WriteSnapshot(filepath.Join(dir, SnapshotFile), tag, 9, []byte("future")); err != nil {
		t.Fatal(err)
	}
	_, _, err = OpenStore(dir, tag)
	if err == nil {
		t.Fatal("OpenStore accepted a snapshot ahead of the journal")
	}
	if k := kindOf(t, err); k != KindStale {
		t.Errorf("kind %v, want KindStale", k)
	}
}

func TestStoreEmptyDir(t *testing.T) {
	// Resuming from a directory with no journal is an error, not a silent
	// fresh start — the caller asked to resume something.
	_, _, err := OpenStore(t.TempDir(), testTag(13))
	if err == nil {
		t.Fatal("OpenStore succeeded on an empty directory")
	}
	if k := kindOf(t, err); k != KindIO {
		t.Errorf("kind %v, want KindIO", k)
	}
}

func TestStoreCreateDiscardsOldState(t *testing.T) {
	tag := testTag(14)
	dir := t.TempDir()
	s, err := CreateStore(dir, tag)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit([]byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot([]byte("old-snap")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := CreateStore(dir, tag)
	if err != nil {
		t.Fatalf("CreateStore over existing dir: %v", err)
	}
	s2.Close()
	_, rec, err := OpenStore(dir, tag)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	if rec.Snapshot != nil || len(rec.Records) != 0 {
		t.Fatalf("recreate left old state behind: %+v", rec)
	}
}

func TestAtomicFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	if err := os.WriteFile(path, []byte("old content"), 0o644); err != nil {
		t.Fatal(err)
	}

	// A write-callback failure leaves the old content untouched and no
	// temp litter.
	failErr := errors.New("boom")
	err := WriteFileAtomic(path, func(w io.Writer) error { return failErr })
	if !errors.Is(err, failErr) {
		t.Fatalf("WriteFileAtomic error %v, want boom", err)
	}
	if data, _ := os.ReadFile(path); string(data) != "old content" {
		t.Fatalf("failed write changed the file to %q", data)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("temp file left behind: %v", ents)
	}

	// A successful write replaces the content.
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("new content"))
		return err
	}); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	if data, _ := os.ReadFile(path); string(data) != "new content" {
		t.Fatalf("file is %q after atomic write", data)
	}
	if fi, err := os.Stat(path); err != nil || fi.Mode().Perm() != 0o644 {
		t.Errorf("mode %v, want 0644", fi.Mode().Perm())
	}

	// Abort after Commit is a no-op; double Abort is safe.
	af, err := NewAtomicFile(path)
	if err != nil {
		t.Fatal(err)
	}
	af.Write([]byte("third"))
	if err := af.Commit(); err != nil {
		t.Fatal(err)
	}
	af.Abort()
	af.Abort()
	if data, _ := os.ReadFile(path); string(data) != "third" {
		t.Fatalf("file is %q after commit+abort", data)
	}
}

func TestDecodeRecordsEmpty(t *testing.T) {
	recs, n, err := DecodeRecords(nil)
	if err != nil || n != 0 || len(recs) != 0 {
		t.Fatalf("DecodeRecords(nil) = %v, %d, %v", recs, n, err)
	}
}

func TestErrorFormatting(t *testing.T) {
	e := newErr("journal open", KindCorrupt, "/tmp/j.wal", errors.New("bad"))
	if got := e.Error(); got != "persist: journal open (corrupt) /tmp/j.wal: bad" {
		t.Errorf("Error() = %q", got)
	}
	if !IsCorrupt(fmt.Errorf("wrapped: %w", e)) {
		t.Error("IsCorrupt failed through wrapping")
	}
	if IsCorrupt(errors.New("plain")) {
		t.Error("IsCorrupt true for a plain error")
	}
}
