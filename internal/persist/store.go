package persist

import (
	"fmt"
	"os"
	"path/filepath"
)

// Store file names inside a checkpoint directory.
const (
	JournalFile  = "journal.wal"
	SnapshotFile = "snapshot.snap"
)

// Store combines a journal and a snapshot in one checkpoint directory.
// The protocol:
//
//   - Commit appends one record and fsyncs it (the epoch-commit
//     durability point). Sequences are assigned internally, starting
//     after whatever recovery found.
//   - Snapshot atomically replaces the snapshot file with a compacted
//     image of everything up to the last committed record. The journal
//     keeps growing within one process lifetime; the snapshot only
//     shortens replay, it never destroys journal history.
//   - Open recovers: snapshot payload (if any) plus every journal record
//     committed after it, in order.
type Store struct {
	dir string
	tag Tag
	j   *Journal
}

// RecoveredState is what Open found in the directory.
type RecoveredState struct {
	// Snapshot is the compacted state image, nil when no snapshot exists.
	Snapshot []byte
	// SnapshotSeq is the journal sequence the snapshot covers through.
	SnapshotSeq uint64
	// Records are the journal records with sequence > SnapshotSeq, in
	// commit order.
	Records []Record
}

// CreateStore starts a fresh checkpoint directory (creating it if
// needed), discarding any previous journal and snapshot.
func CreateStore(dir string, tag Tag) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, newErr("store create", KindIO, dir, err)
	}
	if err := os.Remove(filepath.Join(dir, SnapshotFile)); err != nil && !os.IsNotExist(err) {
		return nil, newErr("store create", KindIO, dir, err)
	}
	j, err := CreateJournal(filepath.Join(dir, JournalFile), tag)
	if err != nil {
		return nil, err
	}
	return &Store{dir: dir, tag: tag, j: j}, nil
}

// OpenStore recovers an existing checkpoint directory for resumption and
// positions it for further commits. Every inconsistency is a typed
// error: tag mismatches (KindMismatch), corrupt records (KindCorrupt),
// and a snapshot claiming sequences the journal never committed
// (KindStale — the journal and snapshot are not from the same run).
func OpenStore(dir string, tag Tag) (*Store, *RecoveredState, error) {
	j, recs, err := OpenJournal(filepath.Join(dir, JournalFile), tag)
	if err != nil {
		return nil, nil, err
	}
	snap, err := ReadSnapshot(filepath.Join(dir, SnapshotFile), tag)
	if err != nil {
		j.Close()
		return nil, nil, err
	}
	st := &RecoveredState{}
	if snap != nil {
		if snap.Seq > j.LastSeq() {
			j.Close()
			return nil, nil, newErr("store open", KindStale, dir,
				fmt.Errorf("snapshot covers through sequence %d but the journal ends at %d", snap.Seq, j.LastSeq()))
		}
		st.Snapshot = snap.Payload
		st.SnapshotSeq = snap.Seq
	}
	for _, r := range recs {
		if r.Seq > st.SnapshotSeq {
			st.Records = append(st.Records, r)
		}
	}
	return &Store{dir: dir, tag: tag, j: j}, st, nil
}

// Commit appends one record and makes it durable (fsync). It returns the
// assigned sequence number.
func (s *Store) Commit(payload []byte) (uint64, error) {
	seq := s.j.LastSeq() + 1
	if err := s.j.Append(seq, payload); err != nil {
		return 0, err
	}
	if err := s.j.Commit(); err != nil {
		return 0, err
	}
	return seq, nil
}

// Snapshot atomically replaces the snapshot with a state image covering
// every record committed so far.
func (s *Store) Snapshot(payload []byte) error {
	return WriteSnapshot(filepath.Join(s.dir, SnapshotFile), s.tag, s.j.LastSeq(), payload)
}

// LastSeq returns the last committed sequence (0 when nothing has been
// committed).
func (s *Store) LastSeq() uint64 { return s.j.LastSeq() }

// Dir returns the checkpoint directory.
func (s *Store) Dir() string { return s.dir }

// Close releases the journal handle.
func (s *Store) Close() error { return s.j.Close() }
