package persist

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// journalMagic opens every journal file; the trailing digit versions the
// on-disk format.
var journalMagic = []byte("TAPOWAL1")

// recHeaderLen is the fixed per-record header: seq (uint64 LE) +
// payload length (uint32 LE) + CRC32C over seq‖payload (uint32 LE).
const recHeaderLen = 8 + 4 + 4

// maxRecordLen bounds a single record payload. Real records are a few
// hundred KiB at most; a "length" beyond this is a corrupted header, not
// a record to allocate.
const maxRecordLen = 1 << 28

// Record is one committed journal entry.
type Record struct {
	// Seq is the strictly increasing commit sequence number (first
	// record is 1).
	Seq uint64
	// Payload is the opaque record body.
	Payload []byte
}

// Journal is an append-only, CRC-protected record log. Appends become
// durable at Commit (fsync); a crash between Append and Commit leaves at
// worst a torn tail, which Open truncates away.
type Journal struct {
	f    *os.File
	path string
	// lastSeq is the sequence of the last valid record (0 when empty).
	lastSeq uint64
}

// CreateJournal starts a fresh journal at path (truncating any previous
// one) stamped with the run tag.
func CreateJournal(path string, tag Tag) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, newErr("journal create", KindIO, path, err)
	}
	if _, err := f.Write(journalMagic); err != nil {
		f.Close()
		return nil, newErr("journal create", KindIO, path, err)
	}
	if _, err := f.Write(tag[:]); err != nil {
		f.Close()
		return nil, newErr("journal create", KindIO, path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, newErr("journal create", KindIO, path, err)
	}
	syncDir(filepath.Dir(path))
	return &Journal{f: f, path: path}, nil
}

// OpenJournal recovers the journal at path: it validates the header
// against the expected tag, decodes every committed record, truncates a
// torn tail at the last valid record, and positions the file for
// appending. The decoded records are returned in commit order.
func OpenJournal(path string, tag Tag) (*Journal, []Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, newErr("journal open", KindIO, path, err)
	}
	body, err := checkJournalHeader(data, tag, path)
	if err != nil {
		return nil, nil, err
	}
	recs, validLen, err := DecodeRecords(body)
	if err != nil {
		return nil, nil, newErr("journal open", KindCorrupt, path, err)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, nil, newErr("journal open", KindIO, path, err)
	}
	headerLen := len(journalMagic) + TagLen
	if int64(headerLen+validLen) != int64(len(data)) {
		// Torn tail: drop the partial record so the next append starts on
		// a clean boundary.
		if err := f.Truncate(int64(headerLen + validLen)); err != nil {
			f.Close()
			return nil, nil, newErr("journal truncate", KindIO, path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, newErr("journal truncate", KindIO, path, err)
		}
	}
	if _, err := f.Seek(int64(headerLen+validLen), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, newErr("journal open", KindIO, path, err)
	}
	j := &Journal{f: f, path: path}
	if n := len(recs); n > 0 {
		j.lastSeq = recs[n-1].Seq
	}
	return j, recs, nil
}

// checkJournalHeader validates magic + tag and returns the record bytes.
func checkJournalHeader(data []byte, tag Tag, path string) ([]byte, error) {
	if len(data) < len(journalMagic)+TagLen {
		return nil, newErr("journal open", KindCorrupt, path,
			fmt.Errorf("file shorter than the %d-byte header", len(journalMagic)+TagLen))
	}
	if !bytes.Equal(data[:len(journalMagic)], journalMagic) {
		return nil, newErr("journal open", KindCorrupt, path, fmt.Errorf("bad magic %q", data[:len(journalMagic)]))
	}
	var got Tag
	copy(got[:], data[len(journalMagic):])
	if got != tag {
		return nil, newErr("journal open", KindMismatch, path,
			fmt.Errorf("journal was written by a different run configuration (tag %x, want %x)", got[:4], tag[:4]))
	}
	return data[len(journalMagic)+TagLen:], nil
}

// DecodeRecords scans the record region of a journal. It returns the
// valid records, the byte length of the valid prefix, and an error only
// for loud-failure corruption. The tail policy implements the package
// contract:
//
//   - an incomplete header or payload at the end of data is a torn tail:
//     scanning stops, validLen excludes it, no error;
//   - a CRC mismatch on the final record is a torn tail too (a crashed
//     write can fill the full length with garbage);
//   - a CRC mismatch on a record with more data after it, a sequence
//     duplicate/regression, or an implausible length is KindCorrupt-grade
//     corruption and returns an error.
//
// Exported for the decoder fuzz target; callers use OpenJournal.
func DecodeRecords(data []byte) (recs []Record, validLen int, err error) {
	off := 0
	var lastSeq uint64
	for {
		if len(data)-off < recHeaderLen {
			return recs, off, nil // torn or absent header
		}
		seq := binary.LittleEndian.Uint64(data[off:])
		plen := binary.LittleEndian.Uint32(data[off+8:])
		want := binary.LittleEndian.Uint32(data[off+12:])
		if plen > maxRecordLen {
			return nil, 0, fmt.Errorf("record at offset %d claims %d-byte payload (corrupted length)", off, plen)
		}
		end := off + recHeaderLen + int(plen)
		if end > len(data) {
			return recs, off, nil // torn payload
		}
		payload := data[off+recHeaderLen : end]
		crc := crc32.Checksum(data[off:off+8], castagnoli)
		crc = crc32.Update(crc, castagnoli, payload)
		if crc != want {
			if end == len(data) {
				return recs, off, nil // torn tail: full length, partial write
			}
			return nil, 0, fmt.Errorf("CRC mismatch on record at offset %d with %d bytes following (corruption, not a torn tail)",
				off, len(data)-end)
		}
		if seq <= lastSeq {
			return nil, 0, fmt.Errorf("record at offset %d has sequence %d after %d (duplicate or reordered record)",
				off, seq, lastSeq)
		}
		lastSeq = seq
		recs = append(recs, Record{Seq: seq, Payload: append([]byte(nil), payload...)})
		off = end
	}
}

// Append writes one record. The sequence must be strictly greater than
// every previously appended record's. The record is not durable until
// Commit returns.
func (j *Journal) Append(seq uint64, payload []byte) error {
	if seq <= j.lastSeq {
		return newErr("journal append", KindCorrupt, j.path,
			fmt.Errorf("sequence %d not after %d", seq, j.lastSeq))
	}
	if len(payload) > maxRecordLen {
		return newErr("journal append", KindIO, j.path, fmt.Errorf("payload of %d bytes exceeds the record limit", len(payload)))
	}
	var hdr [recHeaderLen]byte
	binary.LittleEndian.PutUint64(hdr[0:], seq)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(payload)))
	crc := crc32.Checksum(hdr[:8], castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[12:], crc)
	if _, err := j.f.Write(hdr[:]); err != nil {
		return newErr("journal append", KindIO, j.path, err)
	}
	if _, err := j.f.Write(payload); err != nil {
		return newErr("journal append", KindIO, j.path, err)
	}
	j.lastSeq = seq
	return nil
}

// Commit fsyncs every append so far: the epoch-commit durability point.
func (j *Journal) Commit() error {
	if err := j.f.Sync(); err != nil {
		return newErr("journal commit", KindIO, j.path, err)
	}
	return nil
}

// LastSeq returns the sequence of the last appended (or recovered)
// record, 0 when the journal is empty.
func (j *Journal) LastSeq() uint64 { return j.lastSeq }

// Close releases the file handle (without an implicit Commit).
func (j *Journal) Close() error {
	if err := j.f.Close(); err != nil {
		return newErr("journal close", KindIO, j.path, err)
	}
	return nil
}
