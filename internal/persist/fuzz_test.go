package persist

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// fuzzRecord encodes one well-formed record for seeding the corpus.
func fuzzRecord(seq uint64, payload []byte) []byte {
	var hdr [recHeaderLen]byte
	binary.LittleEndian.PutUint64(hdr[0:], seq)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(payload)))
	crc := crc32.Checksum(hdr[:8], castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[12:], crc)
	return append(hdr[:], payload...)
}

// FuzzJournalDecode throws arbitrary bytes at the record decoder. The
// decoder must never panic, and on success its outputs must satisfy the
// recovery invariants the journal relies on:
//
//   - validLen is within bounds;
//   - sequences are strictly increasing;
//   - decoding is deterministic;
//   - the valid prefix re-decodes to the identical records with nothing
//     left over (truncating at validLen always yields a clean journal).
func FuzzJournalDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(fuzzRecord(1, []byte("hello")))
	two := append(fuzzRecord(1, []byte("a")), fuzzRecord(2, bytes.Repeat([]byte{7}, 64))...)
	f.Add(two)
	f.Add(two[:len(two)-3])                                  // torn payload
	f.Add(append(fuzzRecord(1, nil), 0xFF))                  // torn header
	f.Add(append(fuzzRecord(2, nil), fuzzRecord(1, nil)...)) // seq regression
	flipped := append([]byte(nil), two...)
	flipped[len(flipped)-1] ^= 1
	f.Add(flipped) // CRC mismatch on the tail

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, validLen, err := DecodeRecords(data)
		if err != nil {
			if validLen != 0 || recs != nil {
				t.Fatalf("error return must carry zero results, got %d records validLen %d", len(recs), validLen)
			}
			return
		}
		if validLen < 0 || validLen > len(data) {
			t.Fatalf("validLen %d out of range [0,%d]", validLen, len(data))
		}
		var last uint64
		for i, r := range recs {
			if r.Seq <= last {
				t.Fatalf("record %d: seq %d not after %d", i, r.Seq, last)
			}
			last = r.Seq
		}
		// Determinism.
		recs2, validLen2, err2 := DecodeRecords(data)
		if err2 != nil || validLen2 != validLen || len(recs2) != len(recs) {
			t.Fatalf("non-deterministic decode: (%d,%d,%v) vs (%d,%d,%v)",
				len(recs), validLen, err, len(recs2), validLen2, err2)
		}
		// The valid prefix is a clean journal: same records, fully consumed.
		recs3, validLen3, err3 := DecodeRecords(data[:validLen])
		if err3 != nil {
			t.Fatalf("valid prefix failed to decode: %v", err3)
		}
		if validLen3 != validLen || len(recs3) != len(recs) {
			t.Fatalf("valid prefix decoded to %d records / %d bytes, want %d / %d",
				len(recs3), validLen3, len(recs), validLen)
		}
		for i := range recs {
			if recs[i].Seq != recs3[i].Seq || !bytes.Equal(recs[i].Payload, recs3[i].Payload) {
				t.Fatalf("record %d differs between full and prefix decode", i)
			}
		}
	})
}
