package persist

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// snapshotMagic opens every snapshot file; the trailing digit versions
// the on-disk format.
var snapshotMagic = []byte("TAPOSNP1")

// Snapshot is a decoded snapshot file: the full run state as of journal
// sequence Seq, letting recovery skip every journal record at or below it.
type Snapshot struct {
	Seq     uint64
	Payload []byte
}

// WriteSnapshot atomically replaces the snapshot at path with the given
// state. The write goes through a temp file + Sync + rename, so a crash
// mid-snapshot leaves the previous snapshot intact — a snapshot file is
// either complete and valid or not there at all.
func WriteSnapshot(path string, tag Tag, seq uint64, payload []byte) error {
	if len(payload) > maxRecordLen {
		return newErr("snapshot write", KindIO, path, fmt.Errorf("payload of %d bytes exceeds the record limit", len(payload)))
	}
	return WriteFileAtomic(path, func(w io.Writer) error {
		var hdr [recHeaderLen]byte
		binary.LittleEndian.PutUint64(hdr[0:], seq)
		binary.LittleEndian.PutUint32(hdr[8:], uint32(len(payload)))
		crc := crc32.Checksum(hdr[:8], castagnoli)
		crc = crc32.Update(crc, castagnoli, payload)
		binary.LittleEndian.PutUint32(hdr[12:], crc)
		for _, chunk := range [][]byte{snapshotMagic, tag[:], hdr[:], payload} {
			if _, err := w.Write(chunk); err != nil {
				return err
			}
		}
		return nil
	})
}

// ReadSnapshot loads and validates the snapshot at path. A missing file
// returns (nil, nil): recovery then replays the whole journal. Any other
// defect — bad magic, tag mismatch, truncation, CRC failure — is a typed
// error; a damaged snapshot is never silently ignored, because the
// journal alone might predate it.
func ReadSnapshot(path string, tag Tag) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, newErr("snapshot read", KindIO, path, err)
	}
	headerLen := len(snapshotMagic) + TagLen + recHeaderLen
	if len(data) < headerLen {
		return nil, newErr("snapshot read", KindCorrupt, path, fmt.Errorf("file shorter than the %d-byte header", headerLen))
	}
	if !bytes.Equal(data[:len(snapshotMagic)], snapshotMagic) {
		return nil, newErr("snapshot read", KindCorrupt, path, fmt.Errorf("bad magic %q", data[:len(snapshotMagic)]))
	}
	var got Tag
	copy(got[:], data[len(snapshotMagic):])
	if got != tag {
		return nil, newErr("snapshot read", KindMismatch, path,
			fmt.Errorf("snapshot was written by a different run configuration (tag %x, want %x)", got[:4], tag[:4]))
	}
	hdr := data[len(snapshotMagic)+TagLen:]
	seq := binary.LittleEndian.Uint64(hdr[0:])
	plen := binary.LittleEndian.Uint32(hdr[8:])
	want := binary.LittleEndian.Uint32(hdr[12:])
	payload := data[headerLen:]
	if int(plen) != len(payload) {
		return nil, newErr("snapshot read", KindCorrupt, path,
			fmt.Errorf("payload is %d bytes, header claims %d", len(payload), plen))
	}
	crc := crc32.Checksum(hdr[:8], castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	if crc != want {
		return nil, newErr("snapshot read", KindCorrupt, path, fmt.Errorf("CRC mismatch"))
	}
	return &Snapshot{Seq: seq, Payload: append([]byte(nil), payload...)}, nil
}
