// Package persist implements crash-safe persistence for long runs: a
// WAL-style run journal (length-prefixed records with CRC32C, fsync on
// commit) plus periodic snapshots written via temp-file + Sync + atomic
// rename. Together they give the epoch controller the property every
// long-horizon control scheme in the related work assumes but this
// reproduction lacked: a run killed at any instant — SIGKILL, OOM,
// power loss — resumes from its last committed epoch and produces
// byte-identical remaining output versus an uninterrupted run.
//
// Recovery is paranoid by design. Every failure mode either recovers
// exactly or fails loudly with a typed Error — never silently diverges:
//
//   - A torn tail (the record being written when the process died) is
//     detected by an incomplete header/payload or a CRC mismatch on the
//     final record, and truncated at the last valid record. Because the
//     run is deterministic, the truncated-away epochs are simply
//     recomputed — over-truncation is always safe, silent corruption
//     never is.
//   - A CRC mismatch on any record that is *followed by more data* is
//     real corruption (bit rot, a concurrent writer), not a torn write,
//     and fails with KindCorrupt.
//   - Records carry strictly increasing sequence numbers; a duplicate or
//     regressing sequence fails with KindCorrupt.
//   - Journal and snapshot carry a caller-supplied run tag (a hash of
//     the run configuration); opening with a different tag fails with
//     KindMismatch, so a checkpoint directory can never silently resume
//     under different flags.
//   - A snapshot whose sequence is ahead of the journal's last record
//     claims state the journal never committed and fails with KindStale.
//
// The package is storage only: it moves opaque []byte payloads. Record
// schemas live with their owners (internal/controller, experiments).
package persist

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Kind classifies a persistence failure.
type Kind int

const (
	// KindIO: the underlying filesystem operation failed.
	KindIO Kind = iota
	// KindCorrupt: stored bytes fail validation (bad magic, CRC mismatch
	// on a non-tail record, sequence regression) — fail loudly, never
	// replay.
	KindCorrupt
	// KindMismatch: the journal or snapshot belongs to a different run
	// configuration (run-tag mismatch).
	KindMismatch
	// KindStale: journal and snapshot disagree (snapshot sequence ahead
	// of the journal tail) — the directory is internally inconsistent.
	KindStale
)

func (k Kind) String() string {
	switch k {
	case KindIO:
		return "io"
	case KindCorrupt:
		return "corrupt"
	case KindMismatch:
		return "mismatch"
	case KindStale:
		return "stale"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Error is a typed persistence failure; the solve-pipeline taxonomy
// (internal/solvererr) classifies it as a Persist failure.
type Error struct {
	// Op names the failing operation ("journal open", "snapshot read", …).
	Op string
	// Kind classifies the failure.
	Kind Kind
	// Path is the file involved, when known.
	Path string
	// Cause is the underlying error (may be nil for pure validation
	// failures).
	Cause error
}

func (e *Error) Error() string {
	msg := fmt.Sprintf("persist: %s (%s)", e.Op, e.Kind)
	if e.Path != "" {
		msg += " " + e.Path
	}
	if e.Cause != nil {
		msg += ": " + e.Cause.Error()
	}
	return msg
}

// Unwrap exposes the cause for errors.Is/As.
func (e *Error) Unwrap() error { return e.Cause }

// IsCorrupt reports whether err is a persist failure of kind KindCorrupt.
func IsCorrupt(err error) bool {
	var pe *Error
	return errors.As(err, &pe) && pe.Kind == KindCorrupt
}

func newErr(op string, kind Kind, path string, cause error) *Error {
	return &Error{Op: op, Kind: kind, Path: path, Cause: cause}
}

// castagnoli is the CRC32C table (the checksum used by ext4, btrfs and
// every serious WAL; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// TagLen is the byte length of a run tag (a SHA-256 of the run
// configuration, by convention).
const TagLen = 32

// Tag identifies the run configuration a journal or snapshot belongs to.
type Tag [TagLen]byte

// WriteFileAtomic writes a file via temp-file + Sync + rename, so a crash
// or full disk can never leave a torn file at path: readers observe either
// the old content or the complete new content. The write callback streams
// the content; any error from it (or from Sync/Close/Rename) aborts and
// removes the temp file.
func WriteFileAtomic(path string, write func(w io.Writer) error) error {
	af, err := NewAtomicFile(path)
	if err != nil {
		return err
	}
	if err := write(af); err != nil {
		af.Abort()
		return err
	}
	return af.Commit()
}

// AtomicFile is an io.Writer that becomes visible at its final path only
// on Commit (Sync + Close + rename). Until then the bytes live in a
// temporary file in the same directory, so a crash mid-write leaves the
// final path untouched. Abort discards the temp file; calling it after
// Commit is a no-op, so `defer af.Abort()` is safe.
type AtomicFile struct {
	f    *os.File
	path string
	done bool
}

// NewAtomicFile starts an atomic write of path.
func NewAtomicFile(path string) (*AtomicFile, error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return nil, newErr("atomic create", KindIO, path, err)
	}
	// CreateTemp uses 0600; match os.Create's 0666-minus-umask so the
	// final file's permissions don't depend on how it was written.
	if err := f.Chmod(0o644); err != nil {
		f.Close()
		os.Remove(f.Name())
		return nil, newErr("atomic chmod", KindIO, path, err)
	}
	return &AtomicFile{f: f, path: path}, nil
}

// Write implements io.Writer.
func (a *AtomicFile) Write(p []byte) (int, error) { return a.f.Write(p) }

// Commit makes the content durable and visible at the final path. The
// Sync and Close errors are checked — an ENOSPC discovered at close time
// aborts instead of renaming a truncated file into place.
func (a *AtomicFile) Commit() error {
	if a.done {
		return nil
	}
	a.done = true
	tmp := a.f.Name()
	if err := a.f.Sync(); err != nil {
		a.f.Close()
		os.Remove(tmp)
		return newErr("atomic sync", KindIO, a.path, err)
	}
	if err := a.f.Close(); err != nil {
		os.Remove(tmp)
		return newErr("atomic close", KindIO, a.path, err)
	}
	if err := os.Rename(tmp, a.path); err != nil {
		os.Remove(tmp)
		return newErr("atomic rename", KindIO, a.path, err)
	}
	syncDir(filepath.Dir(a.path))
	return nil
}

// Abort discards the temp file. No-op after Commit.
func (a *AtomicFile) Abort() {
	if a.done {
		return
	}
	a.done = true
	tmp := a.f.Name()
	a.f.Close()
	os.Remove(tmp)
}

// syncDir fsyncs a directory so a rename or append survives power loss.
// Best-effort: some filesystems refuse directory fsync, and the data-file
// sync already happened.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
