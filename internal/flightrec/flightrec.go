// Package flightrec is the failure flight recorder: a bounded black box
// that captures a diagnostic bundle the moment the controller degrades —
// a ladder engagement above the warm rung, a plan-verifier rejection, a
// zone-solver fallback, or any classified solver error. Each bundle is
// one JSON file (recent span window, metrics snapshot, last exported
// EpochSample, fault-schedule state, LP work stats) written atomically
// via internal/persist so a crash mid-dump can never leave a torn file.
// Recording is rate-limited and the directory is pruned to a fixed
// bundle count, so a flapping fault cannot fill the disk. A nil
// *Recorder is the disabled state: Record is a no-op.
package flightrec

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"thermaldc/internal/persist"
	"thermaldc/internal/telemetry"
)

// DefaultMaxBundles bounds the directory when Config.MaxBundles <= 0.
const DefaultMaxBundles = 16

// DefaultMinInterval rate-limits recording when Config.MinInterval <= 0.
const DefaultMinInterval = 10 * time.Second

// DefaultSpanWindow caps Bundle.Spans when Config.SpanWindow <= 0.
const DefaultSpanWindow = 256

// Config sizes a Recorder.
type Config struct {
	// Dir receives the bundle files; created if missing.
	Dir string
	// MaxBundles bounds the directory: the oldest bundles are pruned once
	// more than MaxBundles exist (DefaultMaxBundles when <= 0).
	MaxBundles int
	// MinInterval drops triggers that fire within MinInterval of the last
	// accepted one (DefaultMinInterval when <= 0, unlimited when < 0 is
	// not supported — use a tiny positive value to effectively disable).
	MinInterval time.Duration
	// SpanWindow caps how many of the most recent spans a bundle retains
	// (DefaultSpanWindow when <= 0).
	SpanWindow int
	// Now overrides the clock (tests); defaults to time.Now.
	Now func() time.Time
}

// Bundle is the diagnostic payload of one trigger. Every field except
// Reason, Time, and Seq is best-effort: absent when the matching
// telemetry hook is not wired.
type Bundle struct {
	// Reason names the trigger ("ladder-cold", "verify-reject",
	// "zone-fallback", "solve-error", ...).
	Reason string `json:"reason"`
	// Time is the wall-clock capture instant; Seq the recorder's bundle
	// sequence number (monotone, survives pruning).
	Time time.Time `json:"time"`
	Seq  int       `json:"seq"`
	// Run/Epoch locate the trigger in the experiment.
	Run   int `json:"run,omitempty"`
	Epoch int `json:"epoch"`
	// Rung, ErrKind, and Violations summarize the epoch outcome.
	Rung       string `json:"rung,omitempty"`
	ErrKind    string `json:"err_kind,omitempty"`
	Violations int    `json:"violations,omitempty"`
	// Spans is the most recent window of the tracer ring, oldest first.
	Spans []telemetry.Span `json:"spans,omitempty"`
	// Metrics is the registry snapshot at capture time.
	Metrics map[string]any `json:"metrics,omitempty"`
	// LastSample is the epoch's exported time-series row.
	LastSample *telemetry.EpochSample `json:"last_sample,omitempty"`
	// Faults is the fault-schedule state in force (faults.State).
	Faults any `json:"faults,omitempty"`
	// LP is the epoch's solver work stats (linprog.Stats).
	LP any `json:"lp,omitempty"`
	// Zone is the zone coordinator's last stats (zones.Stats), when the
	// fleet path was involved.
	Zone any `json:"zone,omitempty"`
}

// Recorder writes bundles. Safe for concurrent use.
type Recorder struct {
	cfg Config

	mu       sync.Mutex
	last     time.Time
	seq      int
	recorded int
	dropped  int
}

// New creates the bundle directory and returns a recorder over it.
func New(cfg Config) (*Recorder, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("flightrec: empty bundle directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("flightrec: creating %s: %w", cfg.Dir, err)
	}
	if cfg.MaxBundles <= 0 {
		cfg.MaxBundles = DefaultMaxBundles
	}
	if cfg.MinInterval <= 0 {
		cfg.MinInterval = DefaultMinInterval
	}
	if cfg.SpanWindow <= 0 {
		cfg.SpanWindow = DefaultSpanWindow
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Recorder{cfg: cfg}, nil
}

// SpanWindow trims a full tracer snapshot to the recorder's retained
// window (the most recent spans, still oldest first). Nil-safe.
func (r *Recorder) SpanWindow(spans []telemetry.Span) []telemetry.Span {
	if r == nil {
		return nil
	}
	if len(spans) > r.cfg.SpanWindow {
		spans = spans[len(spans)-r.cfg.SpanWindow:]
	}
	return spans
}

// Record captures b, stamping Time and Seq. It returns the bundle path,
// or "" when the trigger was rate-limited away. A nil recorder drops
// everything. Errors are I/O failures writing or pruning the directory.
func (r *Recorder) Record(b Bundle) (string, error) {
	if r == nil {
		return "", nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.cfg.Now()
	if !r.last.IsZero() && now.Sub(r.last) < r.cfg.MinInterval {
		r.dropped++
		return "", nil
	}
	b.Time = now
	b.Seq = r.seq
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return "", fmt.Errorf("flightrec: encoding bundle: %w", err)
	}
	path := filepath.Join(r.cfg.Dir, fmt.Sprintf("bundle-%08d-%s.json", b.Seq, sanitizeReason(b.Reason)))
	if err := persist.WriteFileAtomic(path, func(w io.Writer) error {
		_, werr := w.Write(data)
		return werr
	}); err != nil {
		return "", err
	}
	r.seq++
	r.recorded++
	r.last = now
	if err := r.prune(); err != nil {
		return "", err
	}
	return path, nil
}

// Stats reports how many triggers were recorded and rate-limited away.
func (r *Recorder) Stats() (recorded, dropped int) {
	if r == nil {
		return 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.recorded, r.dropped
}

// prune deletes the oldest bundles beyond MaxBundles. Bundle names embed
// a zero-padded sequence number, so lexical order is age order.
func (r *Recorder) prune() error {
	names, err := bundleNames(r.cfg.Dir)
	if err != nil {
		return err
	}
	for len(names) > r.cfg.MaxBundles {
		if err := os.Remove(filepath.Join(r.cfg.Dir, names[0])); err != nil {
			return fmt.Errorf("flightrec: pruning %s: %w", names[0], err)
		}
		names = names[1:]
	}
	return nil
}

// bundleNames lists bundle files oldest first.
func bundleNames(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("flightrec: listing %s: %w", dir, err)
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "bundle-") && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// List returns the full paths of the retained bundles, oldest first.
func List(dir string) ([]string, error) {
	names, err := bundleNames(dir)
	if err != nil {
		return nil, err
	}
	paths := make([]string, len(names))
	for i, n := range names {
		paths[i] = filepath.Join(dir, n)
	}
	return paths, nil
}

// ReadBundle parses one bundle file.
func ReadBundle(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("flightrec: reading bundle: %w", err)
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("flightrec: parsing %s: %w", path, err)
	}
	if b.Reason == "" {
		return nil, fmt.Errorf("flightrec: %s: bundle has no reason", path)
	}
	return &b, nil
}

// sanitizeReason keeps bundle filenames portable.
func sanitizeReason(reason string) string {
	if reason == "" {
		return "unknown"
	}
	out := []byte(reason)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}
