package flightrec

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"thermaldc/internal/telemetry"
)

// newTestRecorder returns a recorder over a temp dir with a controllable
// clock that starts far enough from zero that the rate limiter's
// first-bundle bypass works naturally.
func newTestRecorder(t *testing.T, cfg Config) (*Recorder, *time.Time) {
	t.Helper()
	now := time.Unix(1000, 0)
	cfg.Dir = t.TempDir()
	cfg.Now = func() time.Time { return now }
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r, &now
}

func TestRecordRoundTrip(t *testing.T) {
	r, _ := newTestRecorder(t, Config{})
	b := Bundle{
		Reason:     "ladder-cold",
		Run:        3,
		Epoch:      7,
		Rung:       "cold",
		ErrKind:    "timeout",
		Violations: 2,
		Spans: []telemetry.Span{
			{Kind: telemetry.SpanEpoch, Dur: time.Millisecond, Seq: 41},
		},
		Metrics:    map[string]any{"tapo_controller_fallbacks_total": 1.0},
		LastSample: &telemetry.EpochSample{Epoch: 7, RewardRate: 12.5},
	}
	path, err := r.Record(b)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "bundle-00000000-ladder-cold.json" {
		t.Fatalf("bundle path = %s", path)
	}
	got, err := ReadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Reason != "ladder-cold" || got.Run != 3 || got.Epoch != 7 ||
		got.Rung != "cold" || got.ErrKind != "timeout" || got.Violations != 2 {
		t.Errorf("round trip lost fields: %+v", got)
	}
	if len(got.Spans) != 1 || got.Spans[0].Seq != 41 {
		t.Errorf("spans = %+v", got.Spans)
	}
	if got.LastSample == nil || got.LastSample.RewardRate != 12.5 {
		t.Errorf("last sample = %+v", got.LastSample)
	}
	if got.Time.IsZero() {
		t.Error("Time not stamped")
	}
	if rec, dropped := r.Stats(); rec != 1 || dropped != 0 {
		t.Errorf("stats = %d/%d", rec, dropped)
	}
}

func TestRecordRateLimits(t *testing.T) {
	r, now := newTestRecorder(t, Config{MinInterval: 10 * time.Second})
	if path, err := r.Record(Bundle{Reason: "a"}); err != nil || path == "" {
		t.Fatalf("first record = %q, %v", path, err)
	}
	// Inside the window: dropped without error.
	*now = now.Add(5 * time.Second)
	if path, err := r.Record(Bundle{Reason: "b"}); err != nil || path != "" {
		t.Fatalf("rate-limited record = %q, %v, want empty path", path, err)
	}
	// Past the window: accepted, with the sequence number continuing.
	*now = now.Add(6 * time.Second)
	path, err := r.Record(Bundle{Reason: "c"})
	if err != nil || !strings.Contains(path, "bundle-00000001-c") {
		t.Fatalf("post-window record = %q, %v", path, err)
	}
	if rec, dropped := r.Stats(); rec != 2 || dropped != 1 {
		t.Errorf("stats = %d/%d, want 2/1", rec, dropped)
	}
}

func TestPruneKeepsNewest(t *testing.T) {
	r, now := newTestRecorder(t, Config{MaxBundles: 3, MinInterval: time.Nanosecond})
	for i := 0; i < 5; i++ {
		*now = now.Add(time.Second)
		if _, err := r.Record(Bundle{Reason: "fault"}); err != nil {
			t.Fatal(err)
		}
	}
	paths, err := List(r.cfg.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("retained %d bundles, want 3", len(paths))
	}
	// Oldest-first listing: the survivors are seq 2..4.
	for i, p := range paths {
		want := "bundle-0000000" + string(rune('2'+i))
		if !strings.Contains(p, want) {
			t.Errorf("survivor %d = %s, want %s*", i, p, want)
		}
	}
}

func TestSpanWindowTrims(t *testing.T) {
	r, _ := newTestRecorder(t, Config{SpanWindow: 2})
	spans := []telemetry.Span{{Seq: 1}, {Seq: 2}, {Seq: 3}}
	got := r.SpanWindow(spans)
	if len(got) != 2 || got[0].Seq != 2 || got[1].Seq != 3 {
		t.Fatalf("window = %+v, want the 2 most recent", got)
	}
	if short := r.SpanWindow(spans[:1]); len(short) != 1 {
		t.Fatalf("short snapshot trimmed: %+v", short)
	}
}

func TestNilRecorderNoOps(t *testing.T) {
	var r *Recorder
	if path, err := r.Record(Bundle{Reason: "x"}); err != nil || path != "" {
		t.Fatalf("nil Record = %q, %v", path, err)
	}
	if rec, dropped := r.Stats(); rec != 0 || dropped != 0 {
		t.Fatal("nil Stats not zero")
	}
	if r.SpanWindow([]telemetry.Span{{}}) != nil {
		t.Fatal("nil SpanWindow not nil")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty dir accepted")
	}
	// Defaults fill in.
	r, err := New(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if r.cfg.MaxBundles != DefaultMaxBundles || r.cfg.MinInterval != DefaultMinInterval ||
		r.cfg.SpanWindow != DefaultSpanWindow || r.cfg.Now == nil {
		t.Fatalf("defaults not applied: %+v", r.cfg)
	}
}

func TestReadBundleRejectsJunk(t *testing.T) {
	dir := t.TempDir()
	junk := filepath.Join(dir, "junk.json")
	if err := os.WriteFile(junk, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBundle(junk); err == nil {
		t.Fatal("junk bundle accepted")
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBundle(empty); err == nil || !strings.Contains(err.Error(), "no reason") {
		t.Fatalf("reason-less bundle: %v", err)
	}
	if _, err := ReadBundle(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing bundle accepted")
	}
}

func TestSanitizeReason(t *testing.T) {
	for in, want := range map[string]string{
		"ladder-cold":   "ladder-cold",
		"solve error/7": "solve_error_7",
		"":              "unknown",
	} {
		if got := sanitizeReason(in); got != want {
			t.Errorf("sanitizeReason(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestListMissingDir(t *testing.T) {
	if _, err := List(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing dir accepted")
	}
}
