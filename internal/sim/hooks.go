package sim

// Hook is a timestamped callback wired into the simulation clock. The
// simulator fires each hook exactly once, in time order, when simulated
// time first reaches Hook.Time — either because a task arrives at or after
// it, or at the end of the run for hooks inside the window that no arrival
// reached. The fault-injection layer uses hooks to mutate the physical
// plant (CRAC flows, node health, power caps) at its scheduled instants
// while the task loop is running.
type Hook struct {
	// Time is the firing timestamp in seconds.
	Time float64
	// Fire receives the firing timestamp.
	Fire func(now float64)
}

// PlantSample is one observation of the physical data center.
type PlantSample struct {
	// Power is the total facility power draw in kW (compute + CRAC).
	Power float64
	// PowerCap is the power constraint in force at the sample time (kW).
	PowerCap float64
	// InletExcess is the worst inlet-temperature violation in °C:
	// max over thermal units of (Tin − redline). Negative means every
	// inlet is below its redline by at least that margin.
	InletExcess float64
}

// Plant exposes the physical state of the data center to the simulator so
// a run can report constraint telemetry alongside scheduling statistics.
// The paper's power model is utilization-independent, so the plant state
// is piecewise-constant between hook firings; the simulator samples it at
// the window start and after every hook, which captures the exact maxima.
type Plant interface {
	Sample(t float64) PlantSample
}

// observe folds a plant sample into the running telemetry maxima.
func (r *Result) observe(s PlantSample) {
	if s.Power > r.MaxPower {
		r.MaxPower = s.Power
	}
	if excess := s.Power - s.PowerCap; excess > r.MaxPowerExcess {
		r.MaxPowerExcess = excess
	}
	if s.InletExcess > r.MaxInletExcess {
		r.MaxInletExcess = s.InletExcess
	}
}
