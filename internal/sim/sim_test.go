package sim_test

import (
	"math"
	"testing"

	"thermaldc/internal/assign"
	"thermaldc/internal/scenario"
	"thermaldc/internal/sched"
	"thermaldc/internal/sim"
	"thermaldc/internal/stats"
	"thermaldc/internal/workload"
)

func buildAssigned(t testing.TB, seed int64) (*scenario.Scenario, *assign.ThreeStageResult) {
	t.Helper()
	cfg := scenario.Default(0.3, 0.1, seed)
	cfg.NCracs = 2
	cfg.NNodes = 10
	sc, err := scenario.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := assign.ThreeStage(sc.DC, sc.Thermal, assign.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return sc, res
}

func TestRunRejectsBadHorizon(t *testing.T) {
	sc, res := buildAssigned(t, 1)
	if _, err := sim.Run(sc.DC, res.PStates, res.Stage3.TC, nil, 0); err == nil {
		t.Fatal("horizon 0 accepted")
	}
	// A zero-length window (Start == horizon) would make every rate field
	// 0/0 = NaN; it must be rejected the same way.
	if _, err := sim.RunOpts(sc.DC, res.PStates, res.Stage3.TC, nil, 5, sim.Options{Start: 5}); err == nil {
		t.Fatal("zero-length window accepted")
	}
	if _, err := sim.RunOpts(sc.DC, res.PStates, res.Stage3.TC, nil, 5, sim.Options{Start: 6}); err == nil {
		t.Fatal("negative-length window accepted")
	}
	// And no surviving code path may emit NaN rates on a legal run.
	out, err := sim.Run(sc.DC, res.PStates, res.Stage3.TC, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{out.RewardRate, out.WindowRewardRate, out.BusyFraction} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("rate field is %g", v)
		}
	}
}

// fakePlant reports a fixed power ramp so telemetry folding is checkable.
type fakePlant struct {
	power func(t float64) float64
}

func (p fakePlant) Sample(t float64) sim.PlantSample {
	return sim.PlantSample{Power: p.power(t), PowerCap: 100, InletExcess: p.power(t) - 120}
}

func TestRunHooksFireInOrderWithTelemetry(t *testing.T) {
	sc, res := buildAssigned(t, 6)
	const horizon = 20.0
	tasks := workload.GenerateTasks(sc.DC, horizon, stats.NewRand(13))
	level := 90.0
	var fired []float64
	hooks := []sim.Hook{
		{Time: 5, Fire: func(now float64) { fired = append(fired, now); level = 110 }},
		{Time: 12, Fire: func(now float64) { fired = append(fired, now); level = 95 }},
		// A hook after the last arrival still fires via the end-of-run flush.
		{Time: horizon, Fire: func(now float64) { fired = append(fired, now) }},
	}
	out, err := sim.RunOpts(sc.DC, res.PStates, res.Stage3.TC, tasks, horizon, sim.Options{
		Hooks: hooks,
		Plant: fakePlant{power: func(t float64) float64 { return level }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 || fired[0] != 5 || fired[1] != 12 || fired[2] != horizon {
		t.Fatalf("hooks fired at %v", fired)
	}
	// The plant peaked at 110 kW (after the first hook), 10 kW above the cap.
	if out.MaxPower != 110 {
		t.Errorf("MaxPower %g, want 110", out.MaxPower)
	}
	if math.Abs(out.MaxPowerExcess-10) > 1e-12 {
		t.Errorf("MaxPowerExcess %g, want 10", out.MaxPowerExcess)
	}
	if math.Abs(out.MaxInletExcess-(-10)) > 1e-12 {
		t.Errorf("MaxInletExcess %g, want -10", out.MaxInletExcess)
	}
	// Unsorted hooks are rejected.
	bad := []sim.Hook{{Time: 9}, {Time: 3}}
	if _, err := sim.RunOpts(sc.DC, res.PStates, res.Stage3.TC, nil, horizon, sim.Options{Hooks: bad}); err == nil {
		t.Fatal("unsorted hooks accepted")
	}
}

func TestRunLostTasksEarnNoReward(t *testing.T) {
	sc, res := buildAssigned(t, 7)
	const horizon = 20.0
	tasks := workload.GenerateTasks(sc.DC, horizon, stats.NewRand(17))
	base, err := sim.Run(sc.DC, res.PStates, res.Stage3.TC, tasks, horizon)
	if err != nil {
		t.Fatal(err)
	}
	// Every task completing after t = 10 is lost.
	var lostRecords int
	out, err := sim.RunOpts(sc.DC, res.PStates, res.Stage3.TC, tasks, horizon, sim.Options{
		Lost: func(core int, start, completion float64) bool { return completion > 10 },
		Recorder: func(r sim.TaskRecord) {
			if r.Lost {
				lostRecords++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Lost == 0 {
		t.Fatal("no tasks lost under a rule that voids half the horizon")
	}
	if lostRecords != out.Lost {
		t.Errorf("%d lost records for %d lost tasks", lostRecords, out.Lost)
	}
	if out.Completed+out.Lost != base.Completed {
		t.Errorf("completed %d + lost %d != baseline completed %d (losses must not change placement)",
			out.Completed, out.Lost, base.Completed)
	}
	if out.TotalReward >= base.TotalReward {
		t.Errorf("lost tasks still earned reward: %g >= %g", out.TotalReward, base.TotalReward)
	}
}

func TestRunCarriedStateMatchesSingleRun(t *testing.T) {
	// Splitting one run into [0, split) and [split, horizon) with the
	// scheduler and free-time state carried across must reproduce the
	// single-run totals exactly: epoch slicing is bookkeeping, not physics.
	sc, res := buildAssigned(t, 8)
	const horizon, split = 30.0, 13.0
	tasks := workload.GenerateTasks(sc.DC, horizon, stats.NewRand(23))
	whole, err := sim.Run(sc.DC, res.PStates, res.Stage3.TC, tasks, horizon)
	if err != nil {
		t.Fatal(err)
	}

	s, err := sched.New(sc.DC, res.PStates, res.Stage3.TC)
	if err != nil {
		t.Fatal(err)
	}
	freeAt := make([]float64, sc.DC.NumCores())
	var first, second []workload.Task
	for _, task := range tasks {
		if task.Arrival < split {
			first = append(first, task)
		} else {
			second = append(second, task)
		}
	}
	a, err := sim.RunOpts(sc.DC, res.PStates, res.Stage3.TC, first, split, sim.Options{
		Scheduler: s, FreeAt: freeAt,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.RunOpts(sc.DC, res.PStates, res.Stage3.TC, second, horizon, sim.Options{
		Start: split, Scheduler: s, FreeAt: freeAt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.TotalReward + b.TotalReward; math.Abs(got-whole.TotalReward) > 1e-9 {
		t.Errorf("split reward %g != whole %g", got, whole.TotalReward)
	}
	if a.Completed+b.Completed != whole.Completed || a.Dropped+b.Dropped != whole.Dropped {
		t.Errorf("split counts (%d+%d completed, %d+%d dropped) != whole (%d, %d)",
			a.Completed, b.Completed, a.Dropped, b.Dropped, whole.Completed, whole.Dropped)
	}
	if a.Horizon != split || b.Horizon != horizon-split {
		t.Errorf("window lengths %g, %g", a.Horizon, b.Horizon)
	}
}

func TestRunRejectsBadTaskType(t *testing.T) {
	sc, res := buildAssigned(t, 9)
	bad := []workload.Task{{ID: 1, Type: sc.DC.T(), Arrival: 1, Deadline: 5}}
	if _, err := sim.Run(sc.DC, res.PStates, res.Stage3.TC, bad, 10); err == nil {
		t.Fatal("out-of-range task type accepted")
	}
}

func TestRunEmptyStream(t *testing.T) {
	sc, res := buildAssigned(t, 1)
	out, err := sim.Run(sc.DC, res.PStates, res.Stage3.TC, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if out.TotalReward != 0 || out.Completed != 0 || out.Dropped != 0 {
		t.Error("empty stream should produce zero activity")
	}
}

func TestRunTracksStage3Prediction(t *testing.T) {
	// The realized reward rate should come close to (and not exceed by
	// much) the Stage-3 steady-state prediction. It can't systematically
	// exceed it because Stage 3 is optimal for the P-state assignment;
	// stochastic arrivals and the ratio-cap rule typically land it a bit
	// below.
	sc, res := buildAssigned(t, 2)
	const horizon = 60.0
	tasks := workload.GenerateTasks(sc.DC, horizon, stats.NewRand(99))
	out, err := sim.Run(sc.DC, res.PStates, res.Stage3.TC, tasks, horizon)
	if err != nil {
		t.Fatal(err)
	}
	pred := res.RewardRate()
	if out.RewardRate < 0.5*pred {
		t.Errorf("realized rate %g below half the prediction %g", out.RewardRate, pred)
	}
	if out.RewardRate > 1.3*pred {
		t.Errorf("realized rate %g implausibly above prediction %g", out.RewardRate, pred)
	}
	if out.Completed+out.Dropped != len(tasks) {
		t.Errorf("completed %d + dropped %d != %d tasks", out.Completed, out.Dropped, len(tasks))
	}
	t.Logf("predicted %.1f, realized %.1f (%.0f%% of prediction), dropped %d/%d, ratio err %.3f",
		pred, out.RewardRate, 100*out.RewardRate/pred, out.Dropped, len(tasks), out.MeanRatioError)
}

func TestRunAccountingConsistency(t *testing.T) {
	sc, res := buildAssigned(t, 3)
	const horizon = 30.0
	tasks := workload.GenerateTasks(sc.DC, horizon, stats.NewRand(5))
	out, err := sim.Run(sc.DC, res.PStates, res.Stage3.TC, tasks, horizon)
	if err != nil {
		t.Fatal(err)
	}
	// Reward equals Σ completed-by-type × reward.
	want := 0.0
	totC, totD := 0, 0
	for i, c := range out.CompletedByType {
		want += float64(c) * sc.DC.TaskTypes[i].Reward
		totC += c
		totD += out.DroppedByType[i]
	}
	if math.Abs(want-out.TotalReward) > 1e-9 {
		t.Errorf("reward %g != per-type sum %g", out.TotalReward, want)
	}
	if totC != out.Completed || totD != out.Dropped {
		t.Error("per-type counts inconsistent with totals")
	}
	if out.BusyFraction < 0 || out.BusyFraction > 1+1e-9 {
		t.Errorf("busy fraction %g", out.BusyFraction)
	}
	// ATC sums to completed counts / horizon.
	for i := range out.ATC {
		sum := 0.0
		for _, v := range out.ATC[i] {
			sum += v
		}
		if math.Abs(sum-float64(out.CompletedByType[i])/horizon) > 1e-9 {
			t.Errorf("type %d ATC sum %g != %g", i, sum, float64(out.CompletedByType[i])/horizon)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	sc, res := buildAssigned(t, 4)
	tasks := workload.GenerateTasks(sc.DC, 20, stats.NewRand(7))
	a, err := sim.Run(sc.DC, res.PStates, res.Stage3.TC, tasks, 20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Run(sc.DC, res.PStates, res.Stage3.TC, tasks, 20)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalReward != b.TotalReward || a.Dropped != b.Dropped {
		t.Error("simulation not deterministic")
	}
}

func TestOversubscriptionCausesDrops(t *testing.T) {
	// Doubling every arrival rate far beyond capacity must produce drops
	// rather than crashes or deadline violations.
	sc, res := buildAssigned(t, 5)
	for i := range sc.DC.TaskTypes {
		sc.DC.TaskTypes[i].ArrivalRate *= 3
	}
	const horizon = 20.0
	tasks := workload.GenerateTasks(sc.DC, horizon, stats.NewRand(11))
	out, err := sim.Run(sc.DC, res.PStates, res.Stage3.TC, tasks, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if out.Dropped == 0 {
		t.Error("3× oversubscription should drop tasks")
	}
}

func TestTraceRecorder(t *testing.T) {
	sc, res := buildAssigned(t, 10)
	const horizon = 15.0
	tasks := workload.GenerateTasks(sc.DC, horizon, stats.NewRand(3))
	var records []sim.TaskRecord
	out, err := sim.RunOpts(sc.DC, res.PStates, res.Stage3.TC, tasks, horizon, sim.Options{
		Recorder: func(r sim.TaskRecord) { records = append(records, r) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(tasks) {
		t.Fatalf("trace has %d records for %d tasks", len(records), len(tasks))
	}
	dropped, completed := 0, 0
	for i, r := range records {
		if r.ID != tasks[i].ID || r.Type != tasks[i].Type {
			t.Fatal("trace order mismatch")
		}
		if r.Dropped {
			dropped++
			if r.Core != -1 {
				t.Fatal("dropped record with core assignment")
			}
			continue
		}
		completed++
		if r.Start < r.Arrival-1e-12 {
			t.Fatalf("task %d started before arrival", r.ID)
		}
		if r.Completion > r.Deadline+1e-9 {
			t.Fatalf("task %d completed after deadline", r.ID)
		}
		if r.Core < 0 || r.Core >= sc.DC.NumCores() {
			t.Fatalf("task %d on invalid core %d", r.ID, r.Core)
		}
	}
	if dropped != out.Dropped || completed != out.Completed {
		t.Fatal("trace counts disagree with result")
	}
}

// TestTraceNonOverlappingPerCore checks the fundamental execution
// invariant: a core never runs two tasks at once.
func TestTraceNonOverlappingPerCore(t *testing.T) {
	sc, res := buildAssigned(t, 11)
	const horizon = 15.0
	tasks := workload.GenerateTasks(sc.DC, horizon, stats.NewRand(5))
	lastEnd := make(map[int]float64)
	_, err := sim.RunOpts(sc.DC, res.PStates, res.Stage3.TC, tasks, horizon, sim.Options{
		Recorder: func(r sim.TaskRecord) {
			if r.Dropped {
				return
			}
			if r.Start < lastEnd[r.Core]-1e-9 {
				t.Fatalf("core %d overlap: start %g before previous end %g", r.Core, r.Start, lastEnd[r.Core])
			}
			lastEnd[r.Core] = r.Completion
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}
