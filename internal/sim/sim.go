// Package sim runs the second-step discrete-event simulation: a Poisson
// task stream flows through the dynamic scheduler onto the cores fixed by
// the first-step assignment, and the realized reward rate is compared to
// the Stage-3 steady-state prediction. Cores execute non-preemptively in
// FIFO order, so a core's state is simply its earliest free time.
package sim

import (
	"fmt"
	"log/slog"
	"math"

	"thermaldc/internal/model"
	"thermaldc/internal/sched"
	"thermaldc/internal/telemetry"
	"thermaldc/internal/workload"
)

// Result summarizes one simulation run.
type Result struct {
	// Horizon is the length of the simulated arrival window in seconds
	// (horizon − Options.Start); every rate below divides by it.
	Horizon float64
	// TotalReward is the reward collected from every admitted task (all
	// admitted tasks meet their deadlines); RewardRate = TotalReward /
	// Horizon. Tasks admitted near the end of the horizon may complete
	// after it, so this slightly overstates sustainable throughput for
	// policies that build deep queues.
	TotalReward float64
	RewardRate  float64
	// WindowReward counts only tasks that *complete* within the horizon;
	// WindowRewardRate = WindowReward / Horizon is the fair
	// apples-to-apples number against the Stage-3 steady-state prediction
	// (no borrowing of post-horizon capacity).
	WindowReward     float64
	WindowRewardRate float64
	// Completed and Dropped count tasks; dropped tasks never start.
	Completed, Dropped int
	// Lost counts tasks the scheduler placed but a fault destroyed (the
	// host node died before the task completed, per Options.Lost). Lost
	// tasks occupy their core — the work is wasted — but earn no reward.
	Lost int
	// CompletedByType and DroppedByType break the counts down per task
	// type.
	CompletedByType, DroppedByType []int
	// ATC is the achieved execution-rate matrix at the horizon.
	ATC [][]float64
	// MeanRatioError is the mean of |ATC(i,k)/TC(i,k) − 1| over entries
	// with TC > 0: how closely the dynamic scheduler tracked the desired
	// rates.
	MeanRatioError float64
	// BusyFraction is the core-time-weighted utilization across all cores
	// over the horizon.
	BusyFraction float64
	// MaxPower, MaxPowerExcess and MaxInletExcess are the worst plant
	// observations over the run: peak facility power (kW), peak power
	// above the cap in force (kW, ≤ 0 means the cap always held), and
	// peak inlet temperature above its redline (°C, ≤ 0 means every
	// redline always held). Populated only when Options.Plant is set;
	// the excess fields are −Inf when a plant reports no samples.
	MaxPower       float64
	MaxPowerExcess float64
	MaxInletExcess float64
}

// TaskRecord is one trace entry: the fate of a single task.
type TaskRecord struct {
	ID       int
	Type     int
	Arrival  float64
	Deadline float64
	// Dropped tasks have Core = -1 and zero Start/Completion.
	Dropped bool
	// Lost tasks were placed on a core whose node died before completion.
	Lost              bool
	Core              int
	Start, Completion float64
}

// Options tunes a simulation run beyond the defaults.
type Options struct {
	// Policy overrides the paper's min-ratio scheduling rule (nil = paper).
	Policy sched.Policy
	// Recorder, when non-nil, receives one TaskRecord per task in arrival
	// order (the simulation trace).
	Recorder func(TaskRecord)
	// Start is the beginning of the simulated window; the horizon argument
	// is its end, so rates divide by horizon − Start. Epoch-controller runs
	// simulate [epoch start, epoch end) slices of one long task stream.
	Start float64
	// Scheduler, when non-nil, is used instead of a freshly built one —
	// the epoch controller carries one scheduler (and its ATC clock, via
	// SetStartTime) across a re-optimization boundary. The caller must
	// have built it against the same core layout as dc.
	Scheduler *sched.Scheduler
	// FreeAt, when non-nil, is the per-core earliest-free-time state,
	// mutated in place so core occupancy persists across per-epoch runs.
	FreeAt []float64
	// Hooks fire in time order as the simulation clock passes each
	// Hook.Time (see Hook). They must already be sorted by Time.
	Hooks []Hook
	// Plant, when non-nil, is sampled at the window start and after every
	// hook firing; the maxima land in Result.MaxPower/MaxPowerExcess/
	// MaxInletExcess.
	Plant Plant
	// Lost, when non-nil, classifies each placed task: returning true
	// voids the task's reward (a fault destroys it) while the core stays
	// occupied. The fault layer supplies the node-failure timeline here.
	Lost func(core int, start, completion float64) bool
	// Telemetry, when non-nil, wires a freshly built scheduler's assignment
	// counters to the recorder (a caller-supplied Scheduler keeps whatever
	// wiring it already has) and enables debug-level run logging.
	Telemetry *telemetry.Recorder
}

// Run simulates the task stream against the first-step assignment
// (pstates + TC) with the paper's scheduling policy.
func Run(dc *model.DataCenter, pstates []int, tc [][]float64, tasks []workload.Task, horizon float64) (*Result, error) {
	return RunOpts(dc, pstates, tc, tasks, horizon, Options{})
}

// RunPolicy simulates the task stream under an alternative second-step
// scheduling policy (for the policy ablation experiment).
func RunPolicy(dc *model.DataCenter, pstates []int, tc [][]float64, tasks []workload.Task, horizon float64, policy sched.Policy) (*Result, error) {
	return RunOpts(dc, pstates, tc, tasks, horizon, Options{Policy: policy})
}

// RunOpts is the fully configurable entry point.
func RunOpts(dc *model.DataCenter, pstates []int, tc [][]float64, tasks []workload.Task, horizon float64, opts Options) (*Result, error) {
	// window is the divisor of every rate field; a zero-length window
	// would turn RewardRate and friends into NaN, so it is rejected here
	// (and rate() below guards the division anyway, for defense in depth).
	window := horizon - opts.Start
	if horizon <= 0 || window <= 0 {
		return nil, fmt.Errorf("sim: window [%g, %g) must have positive length", opts.Start, horizon)
	}
	// A NaN bound sails through the <= comparisons above and would poison
	// every rate; reject it explicitly.
	if math.IsNaN(window) || math.IsInf(window, 0) {
		return nil, fmt.Errorf("sim: window [%g, %g) must be finite", opts.Start, horizon)
	}
	for i := 1; i < len(opts.Hooks); i++ {
		if opts.Hooks[i].Time < opts.Hooks[i-1].Time {
			return nil, fmt.Errorf("sim: hooks not sorted by time at index %d", i)
		}
	}
	policy := opts.Policy
	if policy == nil {
		policy = sched.PaperPolicy{}
	}
	s := opts.Scheduler
	if s == nil {
		var err error
		s, err = sched.New(dc, pstates, tc)
		if err != nil {
			return nil, err
		}
		if opts.Telemetry != nil {
			s.SetRecorder(opts.Telemetry)
		}
	}
	if log := opts.Telemetry.Logger(); log.Enabled(slog.LevelDebug) {
		log.Debug("sim: run starting", "t_start", opts.Start, "t_end", horizon,
			"tasks", len(tasks), "hooks", len(opts.Hooks))
	}
	ncores := dc.NumCores()
	freeAt := opts.FreeAt
	if freeAt == nil {
		freeAt = make([]float64, ncores)
	} else if len(freeAt) != ncores {
		return nil, fmt.Errorf("sim: FreeAt has %d cores, want %d", len(freeAt), ncores)
	}
	busy := make([]float64, ncores)

	res := &Result{
		Horizon:         window,
		CompletedByType: make([]int, dc.T()),
		DroppedByType:   make([]int, dc.T()),
	}
	if opts.Plant != nil {
		res.MaxPowerExcess = math.Inf(-1)
		res.MaxInletExcess = math.Inf(-1)
		res.observe(opts.Plant.Sample(opts.Start))
	}
	nextHook := 0
	fire := func(upTo float64) {
		for nextHook < len(opts.Hooks) && opts.Hooks[nextHook].Time <= upTo {
			h := opts.Hooks[nextHook]
			nextHook++
			if h.Fire != nil {
				h.Fire(h.Time)
			}
			if opts.Plant != nil {
				res.observe(opts.Plant.Sample(h.Time))
			}
		}
	}
	for _, task := range tasks {
		if task.Type < 0 || task.Type >= dc.T() {
			return nil, fmt.Errorf("sim: task %d has unknown type %d", task.ID, task.Type)
		}
		if math.IsNaN(task.Arrival) || math.IsInf(task.Arrival, 0) {
			return nil, fmt.Errorf("sim: task %d has non-finite arrival %g", task.ID, task.Arrival)
		}
		fire(task.Arrival)
		core, completion, ok := s.ScheduleWith(policy, task, task.Arrival, freeAt)
		if !ok {
			res.Dropped++
			res.DroppedByType[task.Type]++
			if opts.Recorder != nil {
				opts.Recorder(TaskRecord{
					ID: task.ID, Type: task.Type, Arrival: task.Arrival,
					Deadline: task.Deadline, Dropped: true, Core: -1,
				})
			}
			continue
		}
		start := math.Max(task.Arrival, freeAt[core])
		busy[core] += completion - start
		freeAt[core] = completion
		if opts.Lost != nil && opts.Lost(core, start, completion) {
			res.Lost++
			if opts.Recorder != nil {
				opts.Recorder(TaskRecord{
					ID: task.ID, Type: task.Type, Arrival: task.Arrival,
					Deadline: task.Deadline, Lost: true, Core: core, Start: start, Completion: completion,
				})
			}
			continue
		}
		// The scheduler only assigns when the deadline is met, so the
		// reward is always collected.
		res.TotalReward += dc.TaskTypes[task.Type].Reward
		if completion <= horizon {
			res.WindowReward += dc.TaskTypes[task.Type].Reward
		}
		res.Completed++
		res.CompletedByType[task.Type]++
		if opts.Recorder != nil {
			opts.Recorder(TaskRecord{
				ID: task.ID, Type: task.Type, Arrival: task.Arrival,
				Deadline: task.Deadline, Core: core, Start: start, Completion: completion,
			})
		}
	}
	fire(horizon)
	res.RewardRate = rate(res.TotalReward, window)
	res.WindowRewardRate = rate(res.WindowReward, window)
	res.ATC = s.ATC(window)

	// Desired-rate tracking error.
	n := 0
	for i := range tc {
		for k := range tc[i] {
			if tc[i][k] <= 0 {
				continue
			}
			res.MeanRatioError += math.Abs(res.ATC[i][k]/tc[i][k] - 1)
			n++
		}
	}
	if n > 0 {
		res.MeanRatioError /= float64(n)
	}
	total := 0.0
	for _, b := range busy {
		total += b
	}
	res.BusyFraction = rate(total, float64(ncores)*window)
	return res, nil
}

// rate divides, returning 0 instead of NaN/Inf on a degenerate window so
// Result rate fields never poison downstream summaries.
func rate(sum, window float64) float64 {
	if window <= 0 {
		return 0
	}
	return sum / window
}
