// Package sim runs the second-step discrete-event simulation: a Poisson
// task stream flows through the dynamic scheduler onto the cores fixed by
// the first-step assignment, and the realized reward rate is compared to
// the Stage-3 steady-state prediction. Cores execute non-preemptively in
// FIFO order, so a core's state is simply its earliest free time.
package sim

import (
	"fmt"
	"math"

	"thermaldc/internal/model"
	"thermaldc/internal/sched"
	"thermaldc/internal/workload"
)

// Result summarizes one simulation run.
type Result struct {
	// Horizon is the arrival window in seconds.
	Horizon float64
	// TotalReward is the reward collected from every admitted task (all
	// admitted tasks meet their deadlines); RewardRate = TotalReward /
	// Horizon. Tasks admitted near the end of the horizon may complete
	// after it, so this slightly overstates sustainable throughput for
	// policies that build deep queues.
	TotalReward float64
	RewardRate  float64
	// WindowReward counts only tasks that *complete* within the horizon;
	// WindowRewardRate = WindowReward / Horizon is the fair
	// apples-to-apples number against the Stage-3 steady-state prediction
	// (no borrowing of post-horizon capacity).
	WindowReward     float64
	WindowRewardRate float64
	// Completed and Dropped count tasks; dropped tasks never start.
	Completed, Dropped int
	// CompletedByType and DroppedByType break the counts down per task
	// type.
	CompletedByType, DroppedByType []int
	// ATC is the achieved execution-rate matrix at the horizon.
	ATC [][]float64
	// MeanRatioError is the mean of |ATC(i,k)/TC(i,k) − 1| over entries
	// with TC > 0: how closely the dynamic scheduler tracked the desired
	// rates.
	MeanRatioError float64
	// BusyFraction is the core-time-weighted utilization across all cores
	// over the horizon.
	BusyFraction float64
}

// TaskRecord is one trace entry: the fate of a single task.
type TaskRecord struct {
	ID       int
	Type     int
	Arrival  float64
	Deadline float64
	// Dropped tasks have Core = -1 and zero Start/Completion.
	Dropped           bool
	Core              int
	Start, Completion float64
}

// Options tunes a simulation run beyond the defaults.
type Options struct {
	// Policy overrides the paper's min-ratio scheduling rule (nil = paper).
	Policy sched.Policy
	// Recorder, when non-nil, receives one TaskRecord per task in arrival
	// order (the simulation trace).
	Recorder func(TaskRecord)
}

// Run simulates the task stream against the first-step assignment
// (pstates + TC) with the paper's scheduling policy.
func Run(dc *model.DataCenter, pstates []int, tc [][]float64, tasks []workload.Task, horizon float64) (*Result, error) {
	return RunOpts(dc, pstates, tc, tasks, horizon, Options{})
}

// RunPolicy simulates the task stream under an alternative second-step
// scheduling policy (for the policy ablation experiment).
func RunPolicy(dc *model.DataCenter, pstates []int, tc [][]float64, tasks []workload.Task, horizon float64, policy sched.Policy) (*Result, error) {
	return RunOpts(dc, pstates, tc, tasks, horizon, Options{Policy: policy})
}

// RunOpts is the fully configurable entry point.
func RunOpts(dc *model.DataCenter, pstates []int, tc [][]float64, tasks []workload.Task, horizon float64, opts Options) (*Result, error) {
	if horizon <= 0 {
		return nil, fmt.Errorf("sim: horizon must be positive, got %g", horizon)
	}
	policy := opts.Policy
	if policy == nil {
		policy = sched.PaperPolicy{}
	}
	s, err := sched.New(dc, pstates, tc)
	if err != nil {
		return nil, err
	}
	ncores := dc.NumCores()
	freeAt := make([]float64, ncores)
	busy := make([]float64, ncores)

	res := &Result{
		Horizon:         horizon,
		CompletedByType: make([]int, dc.T()),
		DroppedByType:   make([]int, dc.T()),
	}
	for _, task := range tasks {
		core, completion, ok := s.ScheduleWith(policy, task, task.Arrival, freeAt)
		if !ok {
			res.Dropped++
			res.DroppedByType[task.Type]++
			if opts.Recorder != nil {
				opts.Recorder(TaskRecord{
					ID: task.ID, Type: task.Type, Arrival: task.Arrival,
					Deadline: task.Deadline, Dropped: true, Core: -1,
				})
			}
			continue
		}
		start := math.Max(task.Arrival, freeAt[core])
		busy[core] += completion - start
		freeAt[core] = completion
		// The scheduler only assigns when the deadline is met, so the
		// reward is always collected.
		res.TotalReward += dc.TaskTypes[task.Type].Reward
		if completion <= horizon {
			res.WindowReward += dc.TaskTypes[task.Type].Reward
		}
		res.Completed++
		res.CompletedByType[task.Type]++
		if opts.Recorder != nil {
			opts.Recorder(TaskRecord{
				ID: task.ID, Type: task.Type, Arrival: task.Arrival,
				Deadline: task.Deadline, Core: core, Start: start, Completion: completion,
			})
		}
	}
	res.RewardRate = res.TotalReward / horizon
	res.WindowRewardRate = res.WindowReward / horizon
	res.ATC = s.ATC(horizon)

	// Desired-rate tracking error.
	n := 0
	for i := range tc {
		for k := range tc[i] {
			if tc[i][k] <= 0 {
				continue
			}
			res.MeanRatioError += math.Abs(res.ATC[i][k]/tc[i][k] - 1)
			n++
		}
	}
	if n > 0 {
		res.MeanRatioError /= float64(n)
	}
	total := 0.0
	for _, b := range busy {
		total += b
	}
	res.BusyFraction = total / (float64(ncores) * horizon)
	return res, nil
}
