package sim_test

import (
	"math"
	"testing"

	"thermaldc/internal/assign"
	"thermaldc/internal/sim"
	"thermaldc/internal/stats"
	"thermaldc/internal/workload"
)

func TestEnergyMatchesBudgetUnderPaperModel(t *testing.T) {
	// With idleFraction = 1 and all power factors unset, average compute
	// power equals Σ PCN_j from the P-state assignment exactly, regardless
	// of what executed (the paper's utilization-independent model).
	sc, res := buildAssigned(t, 6)
	const horizon = 20.0
	tasks := workload.GenerateTasks(sc.DC, horizon, stats.NewRand(9))
	out, err := sim.Run(sc.DC, res.PStates, res.Stage3.TC, tasks, horizon)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Energy(sc.DC, res.PStates, out, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for _, p := range assign.NodePowersFromPStates(sc.DC, res.PStates) {
		want += p
	}
	if math.Abs(rep.AvgComputeKW-want) > 0.02*want {
		t.Errorf("avg compute power %g, want %g", rep.AvgComputeKW, want)
	}
	if rep.ComputeKJ <= 0 || rep.BaseKJ <= 0 {
		t.Error("energy components should be positive")
	}
	if math.Abs(rep.ComputeKJ-(rep.BaseKJ+rep.BusyKJ+rep.IdleKJ)) > 1e-9 {
		t.Error("energy ledger does not add up")
	}
}

func TestEnergyTaskPowerFactorsReduceBusyEnergy(t *testing.T) {
	sc, res := buildAssigned(t, 7)
	const horizon = 20.0
	tasks := workload.GenerateTasks(sc.DC, horizon, stats.NewRand(9))
	out, err := sim.Run(sc.DC, res.PStates, res.Stage3.TC, tasks, horizon)
	if err != nil {
		t.Fatal(err)
	}
	full, err := sim.Energy(sc.DC, res.PStates, out, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Mark every type I/O-intensive at 60% power.
	for i := range sc.DC.TaskTypes {
		sc.DC.TaskTypes[i].PowerFactor = 0.6
	}
	reduced, err := sim.Energy(sc.DC, res.PStates, out, 1)
	for i := range sc.DC.TaskTypes {
		sc.DC.TaskTypes[i].PowerFactor = 0
	}
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(reduced.BusyKJ-0.6*full.BusyKJ) > 1e-9*full.BusyKJ {
		t.Errorf("busy energy %g, want %g", reduced.BusyKJ, 0.6*full.BusyKJ)
	}
	if reduced.IdleKJ != full.IdleKJ || reduced.BaseKJ != full.BaseKJ {
		t.Error("idle/base energy should be unaffected by task power factors")
	}
}

func TestEnergyIdleFractionScalesIdle(t *testing.T) {
	sc, res := buildAssigned(t, 8)
	const horizon = 20.0
	tasks := workload.GenerateTasks(sc.DC, horizon, stats.NewRand(9))
	out, err := sim.Run(sc.DC, res.PStates, res.Stage3.TC, tasks, horizon)
	if err != nil {
		t.Fatal(err)
	}
	one, err := sim.Energy(sc.DC, res.PStates, out, 1)
	if err != nil {
		t.Fatal(err)
	}
	half, err := sim.Energy(sc.DC, res.PStates, out, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(half.IdleKJ-0.5*one.IdleKJ) > 1e-9*one.IdleKJ {
		t.Errorf("idle energy %g, want %g", half.IdleKJ, 0.5*one.IdleKJ)
	}
}

func TestEnergyValidation(t *testing.T) {
	sc, res := buildAssigned(t, 9)
	out := &sim.Result{Horizon: 10, ATC: make([][]float64, sc.DC.T())}
	for i := range out.ATC {
		out.ATC[i] = make([]float64, sc.DC.NumCores())
	}
	if _, err := sim.Energy(sc.DC, res.PStates[:1], out, 1); err == nil {
		t.Error("short P-state slice accepted")
	}
	if _, err := sim.Energy(sc.DC, res.PStates, out, -0.1); err == nil {
		t.Error("negative idle fraction accepted")
	}
	if _, err := sim.Energy(sc.DC, res.PStates, out, 1.1); err == nil {
		t.Error("idle fraction > 1 accepted")
	}
}
