package sim

import (
	"fmt"

	"thermaldc/internal/model"
)

// EnergyReport is a post-hoc energy ledger for one simulation run. The
// paper's power model is utilization-independent (a core in P-state k
// draws π_k whether or not it is executing); §III.C sketches an extension
// where power also depends on the task type (I/O-intensive tasks draw
// less). This report implements that extension:
//
//   - while core k executes a task of type i it draws π_k · factor_i,
//     where factor_i is the task type's PowerFactor (1 when unset);
//   - while idle it draws π_k · idleFraction (1 reproduces the paper).
type EnergyReport struct {
	// BaseKJ is the node base-power energy over the horizon.
	BaseKJ float64
	// BusyKJ and IdleKJ split the core energy.
	BusyKJ, IdleKJ float64
	// ComputeKJ = BaseKJ + BusyKJ + IdleKJ.
	ComputeKJ float64
	// AvgComputeKW = ComputeKJ / horizon: directly comparable to the
	// Σ PCN_j budget the first step allocated.
	AvgComputeKW float64
}

// Energy computes the report for a finished run. idleFraction ∈ [0, 1]
// scales core power while idle; task PowerFactor fields scale it while
// executing (0 = unset = 1).
func Energy(dc *model.DataCenter, pstates []int, res *Result, idleFraction float64) (*EnergyReport, error) {
	if len(pstates) != dc.NumCores() {
		return nil, fmt.Errorf("sim: %d P-states for %d cores", len(pstates), dc.NumCores())
	}
	if idleFraction < 0 || idleFraction > 1 {
		return nil, fmt.Errorf("sim: idle fraction %g outside [0, 1]", idleFraction)
	}
	if res.Horizon <= 0 {
		return nil, fmt.Errorf("sim: result has non-positive horizon %g", res.Horizon)
	}
	rep := &EnergyReport{}
	for j := range dc.Nodes {
		rep.BaseKJ += dc.NodeType(j).BasePower * res.Horizon
	}
	for j := range dc.Nodes {
		nt := dc.NodeType(j)
		powers := nt.CorePowers()
		lo, hi := dc.CoreRange(j)
		typ := dc.Nodes[j].Type
		for k := lo; k < hi; k++ {
			pi := powers[pstates[k]]
			if pi == 0 {
				continue // turned off
			}
			busy, weighted := 0.0, 0.0
			for i := range dc.TaskTypes {
				ecs := dc.ECS[i][typ][pstates[k]]
				if ecs <= 0 || res.ATC[i][k] == 0 {
					continue
				}
				t := res.ATC[i][k] * res.Horizon / ecs // total execution time
				busy += t
				weighted += t * taskPowerFactor(&dc.TaskTypes[i])
			}
			if busy > res.Horizon {
				// Admitted tasks may queue past the horizon (deadlines can
				// be long); only energy within the horizon is accounted,
				// scaling the task-type mix proportionally.
				weighted *= res.Horizon / busy
				busy = res.Horizon
			}
			rep.BusyKJ += weighted * pi
			rep.IdleKJ += (res.Horizon - busy) * pi * idleFraction
		}
	}
	rep.ComputeKJ = rep.BaseKJ + rep.BusyKJ + rep.IdleKJ
	rep.AvgComputeKW = rep.ComputeKJ / res.Horizon
	return rep, nil
}

// taskPowerFactor returns the §III.C power factor, defaulting to 1.
func taskPowerFactor(tt *model.TaskType) float64 {
	if tt.PowerFactor <= 0 {
		return 1
	}
	return tt.PowerFactor
}
