package pwl

import (
	"math"
	"testing"
)

// FuzzConcaveEnvelope checks the envelope invariants on arbitrary point
// sets: concavity, majorization of every breakpoint, endpoint
// preservation, and idempotence.
func FuzzConcaveEnvelope(f *testing.F) {
	f.Add(int64(1), uint8(4))
	f.Add(int64(42), uint8(9))
	f.Add(int64(-3), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, nRaw uint8) {
		n := int(nRaw)%12 + 1
		s := uint64(seed)*6364136223846793005 + 1
		next := func() float64 {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return float64(s%1_000_000) / 100_000
		}
		xs := make([]float64, n)
		ys := make([]float64, n)
		acc := 0.0
		for i := range xs {
			acc += next() + 0.001
			xs[i] = acc
			ys[i] = next()
		}
		fn := MustNew(xs, ys)
		env := fn.ConcaveEnvelope()
		if !env.IsConcave(1e-9) {
			t.Fatalf("envelope not concave: %v from %v", env, fn)
		}
		for i := range fn.X {
			if env.Eval(fn.X[i]) < fn.Y[i]-1e-9 {
				t.Fatalf("envelope below input at x=%g: %g < %g", fn.X[i], env.Eval(fn.X[i]), fn.Y[i])
			}
		}
		lo1, hi1 := fn.Domain()
		lo2, hi2 := env.Domain()
		if lo1 != lo2 || hi1 != hi2 {
			t.Fatalf("envelope changed domain: [%g %g] vs [%g %g]", lo1, hi1, lo2, hi2)
		}
		again := env.ConcaveEnvelope()
		for _, x := range fn.X {
			if math.Abs(again.Eval(x)-env.Eval(x)) > 1e-9 {
				t.Fatalf("envelope not idempotent at %g", x)
			}
		}
	})
}
