package pwl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// paperFig3 is the example RR function of Figure 3: a 4-P-state core with
// powers 0.15/0.1/0.05/0 W and ECS 1.2/0.9/0.5/0, reward 1.
func paperFig3() *Func {
	return MustNew(
		[]float64{0, 0.05, 0.1, 0.15},
		[]float64{0, 0.5, 0.9, 1.2},
	)
}

// paperFig4 zeroes the P-state-2 point (deadline m=1.5 < 1/0.5): the RR
// becomes non-concave.
func paperFig4() *Func {
	return MustNew(
		[]float64{0, 0.05, 0.1, 0.15},
		[]float64{0, 0, 0.9, 1.2},
	)
}

func TestNewSortsAndDedups(t *testing.T) {
	f := MustNew([]float64{0.1, 0, 0.1, 0.05}, []float64{1, 0, 2, 0.5})
	if f.Len() != 3 {
		t.Fatalf("Len = %d, want 3", f.Len())
	}
	if f.Eval(0.1) != 2 {
		t.Fatalf("duplicate x should keep max y, got %g", f.Eval(0.1))
	}
	lo, hi := f.Domain()
	if lo != 0 || hi != 0.1 {
		t.Fatalf("Domain = [%g, %g]", lo, hi)
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New([]float64{1}, []float64{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := New(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := New([]float64{math.NaN()}, []float64{0}); err == nil {
		t.Error("NaN accepted")
	}
}

func TestEvalInterpolation(t *testing.T) {
	f := paperFig3()
	cases := []struct{ x, want float64 }{
		{0, 0},
		{0.05, 0.5},
		{0.1, 0.9},
		{0.15, 1.2},
		{0.025, 0.25}, // midpoint of first segment
		{0.075, 0.7},  // midpoint of second segment
		{0.125, 1.05}, // midpoint of third segment
		{-1, 0},       // clamped left
		{0.2, 1.2},    // clamped right
	}
	for _, c := range cases {
		if got := f.Eval(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Eval(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestSlopesAndConcavity(t *testing.T) {
	f := paperFig3()
	s := f.Slopes()
	want := []float64{10, 8, 6}
	for i := range want {
		if math.Abs(s[i]-want[i]) > 1e-9 {
			t.Fatalf("Slopes = %v, want %v", s, want)
		}
	}
	if !f.IsConcave(1e-9) {
		t.Error("Figure-3 RR should be concave")
	}
	if paperFig4().IsConcave(1e-9) {
		t.Error("Figure-4 RR (deadline-zeroed) should NOT be concave")
	}
}

func TestConcaveEnvelopePaperFig5(t *testing.T) {
	// Figure 5: eliding the bad P-state 2 leaves points (0,0), (0.1,0.9),
	// (0.15,1.2).
	env := paperFig4().ConcaveEnvelope()
	if env.Len() != 3 {
		t.Fatalf("envelope has %d points, want 3: %v", env.Len(), env)
	}
	wantX := []float64{0, 0.1, 0.15}
	wantY := []float64{0, 0.9, 1.2}
	for i := range wantX {
		if math.Abs(env.X[i]-wantX[i]) > 1e-12 || math.Abs(env.Y[i]-wantY[i]) > 1e-12 {
			t.Fatalf("envelope = %v, want X=%v Y=%v", env, wantX, wantY)
		}
	}
	if !env.IsConcave(1e-12) {
		t.Error("envelope not concave")
	}
	// The paper's 2-core example: 0.1 W total on the envelope yields
	// aggregate reward rate 0.45 at 0.05 W each.
	if got := env.Eval(0.05); math.Abs(got-0.45) > 1e-12 {
		t.Errorf("envelope(0.05) = %g, want 0.45", got)
	}
}

func TestConcaveEnvelopeIdempotentOnConcave(t *testing.T) {
	f := paperFig3()
	env := f.ConcaveEnvelope()
	if env.Len() != f.Len() {
		t.Fatalf("concave input lost points: %v -> %v", f, env)
	}
}

func TestConcaveEnvelopeProperties(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10) + 2
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i) * (0.5 + rng.Float64())
			ys[i] = rng.Float64() * 10
		}
		f := MustNew(xs, ys)
		env := f.ConcaveEnvelope()
		if !env.IsConcave(1e-9) {
			return false
		}
		// Envelope majorizes the original at every original breakpoint.
		for i := range f.X {
			if env.Eval(f.X[i]) < f.Y[i]-1e-9 {
				return false
			}
		}
		// Endpoints are preserved.
		return env.X[0] == f.X[0] && env.X[env.Len()-1] == f.X[f.Len()-1]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestScale(t *testing.T) {
	f := paperFig3()
	g := f.Scale(32) // a 32-core node
	if got := g.Eval(32 * 0.1); math.Abs(got-32*0.9) > 1e-9 {
		t.Errorf("Scale(32)(3.2) = %g, want %g", got, 32*0.9)
	}
	// g(x) == 32 f(x/32) pointwise.
	for _, x := range []float64{0, 0.7, 1.6, 3.99, 4.8} {
		if math.Abs(g.Eval(x)-32*f.Eval(x/32)) > 1e-9 {
			t.Fatalf("Scale mismatch at %g", x)
		}
	}
}

func TestScalePanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Scale(0) did not panic")
		}
	}()
	paperFig3().Scale(0)
}

func TestMeanTwoFunctions(t *testing.T) {
	a := MustNew([]float64{0, 1}, []float64{0, 2})
	b := MustNew([]float64{0, 0.5, 1}, []float64{0, 1, 1})
	m, err := Mean([]*Func{a, b})
	if err != nil {
		t.Fatal(err)
	}
	// At 0.5: (1 + 1)/2 = 1. At 1: (2+1)/2 = 1.5.
	if got := m.Eval(0.5); math.Abs(got-1) > 1e-12 {
		t.Errorf("Mean(0.5) = %g, want 1", got)
	}
	if got := m.Eval(1); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("Mean(1) = %g, want 1.5", got)
	}
	// Union of breakpoints: 0, 0.5, 1.
	if m.Len() != 3 {
		t.Errorf("Mean has %d breakpoints, want 3", m.Len())
	}
}

func TestMeanEmpty(t *testing.T) {
	if _, err := Mean(nil); err == nil {
		t.Fatal("Mean(nil) accepted")
	}
}

func TestMeanSingleIsIdentityPointwise(t *testing.T) {
	f := paperFig4()
	m, err := Mean([]*Func{f})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 0.03, 0.05, 0.11, 0.15} {
		if math.Abs(m.Eval(x)-f.Eval(x)) > 1e-12 {
			t.Fatalf("Mean of single function differs at %g", x)
		}
	}
}

func TestSegments(t *testing.T) {
	segs := paperFig3().Segments()
	if len(segs) != 3 {
		t.Fatalf("got %d segments, want 3", len(segs))
	}
	if segs[0].Slope != 10 || segs[1].Slope != 8 || segs[2].Slope != 6 {
		t.Fatalf("slopes = %v", segs)
	}
	total := 0.0
	for _, s := range segs {
		total += s.Length
	}
	if math.Abs(total-0.15) > 1e-12 {
		t.Fatalf("total length = %g, want 0.15", total)
	}
}

func TestSegmentsSinglePoint(t *testing.T) {
	f := MustNew([]float64{1}, []float64{2})
	if segs := f.Segments(); segs != nil {
		t.Fatalf("single point should have no segments, got %v", segs)
	}
	if s := f.Slopes(); s != nil {
		t.Fatalf("single point should have no slopes, got %v", s)
	}
	if !f.IsConcave(0) {
		t.Error("single point should be vacuously concave")
	}
}

func TestEvalPropertyMonotoneInputs(t *testing.T) {
	// For a function with increasing Y, Eval is monotone non-decreasing.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(8) + 2
		xs := make([]float64, n)
		ys := make([]float64, n)
		acc := 0.0
		for i := range xs {
			xs[i] = float64(i)
			acc += rng.Float64()
			ys[i] = acc
		}
		f := MustNew(xs, ys)
		prev := math.Inf(-1)
		for x := -0.5; x < float64(n); x += 0.1 {
			v := f.Eval(x)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	s := MustNew([]float64{0, 1}, []float64{0, 2}).String()
	if s != "pwl[(0,0) (1,2)]" {
		t.Errorf("String = %q", s)
	}
}
