package pwl_test

import (
	"fmt"

	"thermaldc/internal/pwl"
)

// ExampleFunc_ConcaveEnvelope reproduces the paper's Figure-4→Figure-5
// step: the deadline-adjusted reward-rate function is non-concave because
// P-state 2 earns nothing; the envelope elides that "bad" P-state.
func ExampleFunc_ConcaveEnvelope() {
	rr := pwl.MustNew(
		[]float64{0, 0.05, 0.1, 0.15}, // P-state powers (W), off first
		[]float64{0, 0, 0.9, 1.2},     // reward rates with m_i = 1.5
	)
	fmt.Println("concave before:", rr.IsConcave(1e-9))
	env := rr.ConcaveEnvelope()
	fmt.Println("envelope:", env)
	fmt.Println("value at 0.05 W:", env.Eval(0.05))
	// Output:
	// concave before: false
	// envelope: pwl[(0,0) (0.1,0.9) (0.15,1.2)]
	// value at 0.05 W: 0.45
}

// ExampleFunc_Scale shows the exact node-level aggregation: 32 identical
// concave cores sharing a power budget behave like one scaled function.
func ExampleFunc_Scale() {
	core := pwl.MustNew([]float64{0, 0.1}, []float64{0, 0.9})
	node := core.Scale(32)
	fmt.Println(node.Eval(1.6)) // half the node budget
	// Output:
	// 14.4
}

// ExampleMean averages reward-rate functions over selected task types,
// the ψ-percent step of the paper's ARR construction.
func ExampleMean() {
	a := pwl.MustNew([]float64{0, 1}, []float64{0, 2})
	b := pwl.MustNew([]float64{0, 0.5, 1}, []float64{0, 1, 1})
	m, _ := pwl.Mean([]*pwl.Func{a, b})
	fmt.Println(m.Eval(0.5), m.Eval(1))
	// Output:
	// 1 1.5
}
