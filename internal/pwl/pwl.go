// Package pwl implements the piecewise-linear (PWL) functions at the heart
// of the paper's Stage-1 relaxation: reward-rate functions RR_{i,j} through
// the P-state (power, reward-rate) points (Figures 3 and 4), their averages
// ARR_j over the best ψ% of task types, and the upper concave envelope that
// realizes the paper's "ignore bad P-states" rule (Figure 5).
package pwl

import (
	"fmt"
	"math"
	"sort"
)

// Func is a continuous piecewise-linear function defined by breakpoints
// (X[i], Y[i]) with strictly increasing X. Outside [X[0], X[n-1]] the
// function is clamped to its boundary values: in this codebase the domain
// is always the physically meaningful power range [0, π_{j,0}].
type Func struct {
	X, Y []float64
}

// New builds a Func from breakpoints. Points are sorted by x; points with
// (numerically) duplicate x keep the maximum y, which is the right choice
// for reward-rate envelopes. At least one point is required.
func New(xs, ys []float64) (*Func, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("pwl: length mismatch: %d xs, %d ys", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("pwl: need at least one point")
	}
	type pt struct{ x, y float64 }
	pts := make([]pt, len(xs))
	for i := range xs {
		if math.IsNaN(xs[i]) || math.IsNaN(ys[i]) {
			return nil, fmt.Errorf("pwl: NaN point (%g, %g)", xs[i], ys[i])
		}
		pts[i] = pt{xs[i], ys[i]}
	}
	sort.Slice(pts, func(a, b int) bool { return pts[a].x < pts[b].x })
	const eps = 1e-12
	f := &Func{}
	for _, p := range pts {
		n := len(f.X)
		if n > 0 && p.x-f.X[n-1] <= eps {
			if p.y > f.Y[n-1] {
				f.Y[n-1] = p.y
			}
			continue
		}
		f.X = append(f.X, p.x)
		f.Y = append(f.Y, p.y)
	}
	return f, nil
}

// MustNew is New but panics on error; for static tables and tests.
func MustNew(xs, ys []float64) *Func {
	f, err := New(xs, ys)
	if err != nil {
		panic(err)
	}
	return f
}

// Len returns the number of breakpoints.
func (f *Func) Len() int { return len(f.X) }

// Domain returns the x-range [lo, hi] covered by breakpoints.
func (f *Func) Domain() (lo, hi float64) { return f.X[0], f.X[len(f.X)-1] }

// Eval evaluates the function at x with linear interpolation, clamping
// outside the breakpoint range.
func (f *Func) Eval(x float64) float64 {
	n := len(f.X)
	if x <= f.X[0] {
		return f.Y[0]
	}
	if x >= f.X[n-1] {
		return f.Y[n-1]
	}
	// Find the segment with X[i] <= x < X[i+1].
	i := sort.SearchFloat64s(f.X, x)
	if i < n && f.X[i] == x {
		return f.Y[i]
	}
	i-- // now X[i] < x < X[i+1]
	t := (x - f.X[i]) / (f.X[i+1] - f.X[i])
	return f.Y[i] + t*(f.Y[i+1]-f.Y[i])
}

// Clone returns a deep copy.
func (f *Func) Clone() *Func {
	return &Func{X: append([]float64(nil), f.X...), Y: append([]float64(nil), f.Y...)}
}

// Slopes returns the slope of each of the Len()-1 segments.
func (f *Func) Slopes() []float64 {
	if len(f.X) < 2 {
		return nil
	}
	s := make([]float64, len(f.X)-1)
	for i := range s {
		s[i] = (f.Y[i+1] - f.Y[i]) / (f.X[i+1] - f.X[i])
	}
	return s
}

// IsConcave reports whether segment slopes are non-increasing within tol.
func (f *Func) IsConcave(tol float64) bool {
	s := f.Slopes()
	for i := 1; i < len(s); i++ {
		if s[i] > s[i-1]+tol {
			return false
		}
	}
	return true
}

// ConcaveEnvelope returns the upper concave envelope of the breakpoints:
// the least concave function that majorizes every breakpoint. Breakpoints
// strictly below the envelope are dropped. This is exactly the paper's
// elision of "bad" P-states — P-states whose reward-rate/power ratio is
// dominated by a mix of their neighbours (Figure 5).
func (f *Func) ConcaveEnvelope() *Func {
	n := len(f.X)
	if n <= 2 {
		return f.Clone()
	}
	// Upper hull by x (Andrew's monotone chain, keeping left turns).
	hx := []float64{f.X[0]}
	hy := []float64{f.Y[0]}
	for i := 1; i < n; i++ {
		for len(hx) >= 2 {
			// Cross product of (p_{k-1}→p_k) × (p_{k-1}→p_i); for an upper
			// hull we pop while the middle point is at or below the chord.
			k := len(hx) - 1
			cross := (hx[k]-hx[k-1])*(f.Y[i]-hy[k-1]) - (f.X[i]-hx[k-1])*(hy[k]-hy[k-1])
			if cross >= -1e-15 {
				hx = hx[:k]
				hy = hy[:k]
			} else {
				break
			}
		}
		hx = append(hx, f.X[i])
		hy = append(hy, f.Y[i])
	}
	return &Func{X: hx, Y: hy}
}

// Scale returns g(x) = n·f(x/n): the exact aggregate of n identical concave
// copies of f sharing a total budget x (equal split is optimal by
// concavity). Used to aggregate the identical cores of one compute node.
func (f *Func) Scale(n float64) *Func {
	if n <= 0 {
		panic(fmt.Sprintf("pwl: Scale factor must be positive, got %g", n))
	}
	out := f.Clone()
	for i := range out.X {
		out.X[i] *= n
		out.Y[i] *= n
	}
	return out
}

// Mean returns the pointwise average of fs on the union of their
// breakpoints. This is the paper's averaging of RR_{i,j} over the selected
// ψ% task types to obtain ARR_j.
func Mean(fs []*Func) (*Func, error) {
	if len(fs) == 0 {
		return nil, fmt.Errorf("pwl: Mean of no functions")
	}
	var xs []float64
	for _, f := range fs {
		xs = append(xs, f.X...)
	}
	sort.Float64s(xs)
	// Deduplicate.
	ux := xs[:0]
	for i, x := range xs {
		if i == 0 || x-ux[len(ux)-1] > 1e-12 {
			ux = append(ux, x)
		}
	}
	ys := make([]float64, len(ux))
	for i, x := range ux {
		s := 0.0
		for _, f := range fs {
			s += f.Eval(x)
		}
		ys[i] = s / float64(len(fs))
	}
	return New(append([]float64(nil), ux...), ys)
}

// Segment is one linear piece of a Func, used to encode a concave Func into
// LP variables: a segment contributes Slope·t to the objective for
// t ∈ [0, Length] of allocated x.
type Segment struct {
	X0, Y0 float64 // left endpoint
	Length float64 // horizontal extent
	Slope  float64
}

// Segments returns the linear pieces left to right.
func (f *Func) Segments() []Segment {
	if len(f.X) < 2 {
		return nil
	}
	segs := make([]Segment, len(f.X)-1)
	for i := range segs {
		dx := f.X[i+1] - f.X[i]
		segs[i] = Segment{
			X0:     f.X[i],
			Y0:     f.Y[i],
			Length: dx,
			Slope:  (f.Y[i+1] - f.Y[i]) / dx,
		}
	}
	return segs
}

// String renders the breakpoints compactly for logs and experiment output.
func (f *Func) String() string {
	s := "pwl["
	for i := range f.X {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("(%g,%g)", f.X[i], f.Y[i])
	}
	return s + "]"
}
