// Package report serializes experiment results to CSV and JSON so the
// figures can be re-plotted outside this repository. CSV schemas keep one
// row per trial (Figure 6) or per sweep point, with summary statistics in
// trailing columns.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"thermaldc/internal/experiments"
	"thermaldc/internal/sim"
	"thermaldc/internal/telemetry"
)

// WriteJSON writes v as indented JSON.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return err
	}
	telemetry.Default().Debug("report: wrote JSON document")
	return nil
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }

// Fig6CSV writes one row per (group, trial) with the baseline reward, the
// per-ψ rewards and improvements, and the best-of improvement.
func Fig6CSV(w io.Writer, res *experiments.Fig6Result) error {
	cw := csv.NewWriter(w)
	header := []string{"static_share", "vprop", "seed", "baseline_reward"}
	for _, psi := range res.Config.Psis {
		header = append(header,
			fmt.Sprintf("reward_psi%g", psi),
			fmt.Sprintf("improvement_pct_psi%g", psi))
	}
	header = append(header, "best_improvement_pct")
	withSim := res.Config.SimHorizon > 0
	if withSim {
		header = append(header, "realized_baseline", "realized_threestage",
			"realized_improvement_pct", "admitted_improvement_pct")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, g := range res.Groups {
		for _, tr := range g.Trials {
			row := []string{
				f(g.Group.StaticShare), f(g.Group.Vprop),
				strconv.FormatInt(tr.Seed, 10), f(tr.BaselineReward),
			}
			for p := range res.Config.Psis {
				row = append(row, f(tr.RewardByPsi[p]), f(tr.ImprovementByPsi[p]))
			}
			row = append(row, f(tr.BestImprovement))
			if withSim {
				row = append(row, f(tr.RealizedBaseline), f(tr.RealizedThreeStage),
					f(tr.RealizedImprovement), f(tr.AdmittedImprovement))
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	telemetry.Default().Debug("report: wrote fig6 CSV", "groups", len(res.Groups))
	return cw.Error()
}

// SweepCSV writes one row per sweep point with mean ± CI for both
// techniques and the improvement.
func SweepCSV(w io.Writer, res *experiments.SweepResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"x", "baseline_mean", "baseline_ci95", "threestage_mean",
		"threestage_ci95", "improvement_pct_mean", "improvement_pct_ci95",
	}); err != nil {
		return err
	}
	for _, p := range res.Points {
		if err := cw.Write([]string{
			f(p.X),
			f(p.Baseline.Mean), f(p.Baseline.HalfCI95),
			f(p.ThreeStage.Mean), f(p.ThreeStage.HalfCI95),
			f(p.Improvement.Mean), f(p.Improvement.HalfCI95),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// TraceCSV writes a simulation trace, one row per task.
func TraceCSV(w io.Writer, records []sim.TaskRecord) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"id", "type", "arrival", "deadline", "dropped", "core", "start", "completion",
	}); err != nil {
		return err
	}
	for _, r := range records {
		if err := cw.Write([]string{
			strconv.Itoa(r.ID), strconv.Itoa(r.Type), f(r.Arrival), f(r.Deadline),
			strconv.FormatBool(r.Dropped), strconv.Itoa(r.Core), f(r.Start), f(r.Completion),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Fig345CSV writes the worked-example function samples, one series per
// block of rows.
func Fig345CSV(w io.Writer, series []experiments.Fig345Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "power_w", "reward_rate"}); err != nil {
		return err
	}
	for _, s := range series {
		lo, hi := s.Func.Domain()
		const samples = 64
		for i := 0; i <= samples; i++ {
			x := lo + (hi-lo)*float64(i)/samples
			if err := cw.Write([]string{s.Name, f(x), f(s.Func.Eval(x))}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
