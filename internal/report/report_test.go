package report

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"strings"
	"testing"

	"thermaldc/internal/experiments"
	"thermaldc/internal/stats"
)

func fakeFig6() *experiments.Fig6Result {
	cfg := experiments.DefaultFig6Config()
	cfg.Trials = 2
	cfg.Psis = []float64{25, 50}
	return &experiments.Fig6Result{
		Config: cfg,
		Groups: []experiments.Fig6GroupResult{
			{
				Group: experiments.Fig6Group{StaticShare: 0.3, Vprop: 0.1},
				Trials: []experiments.Fig6Trial{
					{Seed: 1, BaselineReward: 100, RewardByPsi: []float64{104, 106}, ImprovementByPsi: []float64{4, 6}, BestImprovement: 6},
					{Seed: 2, BaselineReward: 200, RewardByPsi: []float64{210, 208}, ImprovementByPsi: []float64{5, 4}, BestImprovement: 5},
				},
				PsiSummaries: []stats.Summary{stats.Summarize([]float64{4, 5}), stats.Summarize([]float64{6, 4})},
				BestSummary:  stats.Summarize([]float64{6, 5}),
			},
		},
	}
}

func TestFig6CSV(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig6CSV(&buf, fakeFig6()); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want header + 2 trials", len(rows))
	}
	if rows[0][0] != "static_share" || rows[0][len(rows[0])-1] != "best_improvement_pct" {
		t.Errorf("header = %v", rows[0])
	}
	if rows[1][3] != "100" {
		t.Errorf("baseline cell = %q", rows[1][3])
	}
	best, err := strconv.ParseFloat(rows[2][len(rows[2])-1], 64)
	if err != nil || best != 5 {
		t.Errorf("best cell = %v", rows[2])
	}
}

func TestSweepCSV(t *testing.T) {
	res := &experiments.SweepResult{
		Kind:   "powercap",
		XLabel: "fraction",
		Points: []experiments.SweepPoint{
			{X: 0.5, Baseline: stats.Summarize([]float64{10, 12}), ThreeStage: stats.Summarize([]float64{11, 13}), Improvement: stats.Summarize([]float64{10, 8})},
		},
	}
	var buf bytes.Buffer
	if err := SweepCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[1][0] != "0.5" {
		t.Fatalf("rows = %v", rows)
	}
	if rows[1][1] != "11" { // mean of 10, 12
		t.Errorf("baseline mean = %q", rows[1][1])
	}
}

func TestFig345CSV(t *testing.T) {
	series, err := experiments.Figures345()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Fig345CSV(&buf, series); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1+3*65 {
		t.Fatalf("got %d rows", len(rows))
	}
	if !strings.Contains(rows[1][0], "Figure 3") {
		t.Errorf("first series = %q", rows[1][0])
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, map[string]int{"a": 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"a\": 1") {
		t.Errorf("json = %q", buf.String())
	}
}

func TestFig6CSVWithSimColumns(t *testing.T) {
	res := fakeFig6()
	res.Config.SimHorizon = 60
	for g := range res.Groups {
		for i := range res.Groups[g].Trials {
			res.Groups[g].Trials[i].RealizedBaseline = 90
			res.Groups[g].Trials[i].RealizedThreeStage = 95
			res.Groups[g].Trials[i].RealizedImprovement = 5.5
			res.Groups[g].Trials[i].AdmittedImprovement = 6.5
		}
	}
	var buf bytes.Buffer
	if err := Fig6CSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	last := rows[0][len(rows[0])-1]
	if last != "admitted_improvement_pct" {
		t.Errorf("last header = %q", last)
	}
	if rows[1][len(rows[1])-1] != "6.5" {
		t.Errorf("admitted cell = %q", rows[1][len(rows[1])-1])
	}
}
