package faults

import (
	"math"
	"reflect"
	"testing"

	"thermaldc/internal/scenario"
	"thermaldc/internal/thermal"
)

func testScenario(t *testing.T, seed int64) *scenario.Scenario {
	t.Helper()
	cfg := scenario.Default(0.3, 0.1, seed)
	cfg.NCracs = 2
	cfg.NNodes = 8
	sc, err := scenario.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGenConfig(7, 100, 3, 20)
	cfg.CracOutages = 1
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config generated different schedules:\n%v\n%v", a, b)
	}
	if len(a.Events) != cfg.CracDegradations+1+cfg.NodeFailures+cfg.PowerSteps+cfg.SensorOffsets {
		t.Fatalf("got %d events", len(a.Events))
	}
	if err := a.Validate(3, 20); err != nil {
		t.Fatal(err)
	}
	c, err := Generate(DefaultGenConfig(8, 100, 3, 20))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds generated identical schedules")
	}
}

func TestGenerateCapsOutages(t *testing.T) {
	cfg := DefaultGenConfig(1, 50, 2, 4)
	cfg.CracOutages = 5 // capped at NCrac-1 = 1
	s, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	outages := 0
	for _, e := range s.Events {
		if e.Kind == CRACOutage {
			outages++
		}
	}
	if outages != 1 {
		t.Fatalf("got %d outages, want 1 (one CRAC must stay healthy)", outages)
	}
}

func TestStateApplyMonotone(t *testing.T) {
	st := NewState(2, 4)
	if !st.Apply(Event{Kind: CRACDegrade, Unit: 1, Magnitude: 0.7}) {
		t.Fatal("first degradation should be structural")
	}
	if st.Apply(Event{Kind: CRACDegrade, Unit: 1, Magnitude: 0.8}) {
		t.Fatal("weaker degradation must not loosen the state")
	}
	if st.CracFlowFactor[1] != 0.7 {
		t.Fatalf("flow factor %g", st.CracFlowFactor[1])
	}
	st.Apply(Event{Kind: CRACOutage, Unit: 1})
	if st.CracFlowFactor[1] != OutageFlowFactor {
		t.Fatalf("outage flow factor %g", st.CracFlowFactor[1])
	}
	if st.Apply(Event{Kind: PowerCap, Magnitude: 0.8}) {
		t.Fatal("power-cap step must not be structural (Pconst is read per solve)")
	}
	st.Apply(Event{Kind: PowerCap, Magnitude: 0.9})
	if st.CapFactor != 0.8 {
		t.Fatalf("cap factor %g", st.CapFactor)
	}
	st.Apply(Event{Kind: NodeFail, Unit: 2})
	st.Apply(Event{Kind: SensorOffset, Magnitude: 1.5})
	st.Apply(Event{Kind: SensorOffset, Magnitude: 0.5})
	if st.SensorBias != 1.5 {
		t.Fatalf("sensor bias %g", st.SensorBias)
	}
	if st.FailedNodes() != 1 || st.DegradedCRACs() != 1 {
		t.Fatalf("counts: %d failed, %d degraded", st.FailedNodes(), st.DegradedCRACs())
	}
}

func TestDegradeProducesValidModel(t *testing.T) {
	sc := testScenario(t, 3)
	st := NewState(sc.DC.NCRAC(), sc.DC.NCN())
	st.Apply(Event{Kind: CRACDegrade, Unit: 0, Magnitude: 0.6})
	st.Apply(Event{Kind: NodeFail, Unit: 2})
	st.Apply(Event{Kind: NodeFail, Unit: 5})
	st.Apply(Event{Kind: PowerCap, Magnitude: 0.8})
	st.Apply(Event{Kind: SensorOffset, Magnitude: 1})

	baseFlow := sc.DC.CRACs[0].Flow
	basePconst := sc.DC.Pconst
	baseTypes := len(sc.DC.NodeTypes)

	dc, err := st.Degrade(sc.DC, Planner)
	if err != nil {
		t.Fatal(err)
	}
	// The base model must be untouched.
	if sc.DC.CRACs[0].Flow != baseFlow || sc.DC.Pconst != basePconst || len(sc.DC.NodeTypes) != baseTypes {
		t.Fatal("Degrade mutated the base model")
	}
	if err := dc.Validate(); err != nil {
		t.Fatalf("degraded model invalid: %v", err)
	}
	if got := dc.CRACs[0].Flow; math.Abs(got-0.6*baseFlow) > 1e-12 {
		t.Fatalf("CRAC flow %g, want %g", got, 0.6*baseFlow)
	}
	if got := dc.Pconst; math.Abs(got-0.8*basePconst) > 1e-9 {
		t.Fatalf("Pconst %g, want %g", got, 0.8*basePconst)
	}
	if dc.RedlineNode != sc.DC.RedlineNode-1 || dc.RedlineCRAC != sc.DC.RedlineCRAC-1 {
		t.Fatal("planner view did not tighten redlines by the sensor bias")
	}
	// Core indexing is preserved.
	if dc.NumCores() != sc.DC.NumCores() {
		t.Fatalf("core count changed: %d vs %d", dc.NumCores(), sc.DC.NumCores())
	}
	for _, j := range []int{2, 5} {
		typ := dc.Nodes[j].Type
		if typ < baseTypes {
			t.Fatalf("failed node %d still maps to a healthy type", j)
		}
		if dc.NodeTypes[typ].BasePower != 0 {
			t.Fatalf("failed node %d draws base power", j)
		}
		for i := range dc.TaskTypes {
			for _, v := range dc.ECS[i][typ] {
				if v != 0 {
					t.Fatalf("failed node type has non-zero ECS")
				}
			}
		}
	}
	// The degraded model supports a thermal rebuild.
	if _, err := thermal.New(dc); err != nil {
		t.Fatalf("thermal model on degraded DC: %v", err)
	}

	// Truth view keeps real redlines.
	truth, err := st.Degrade(sc.DC, Truth)
	if err != nil {
		t.Fatal(err)
	}
	if truth.RedlineNode != sc.DC.RedlineNode || truth.RedlineCRAC != sc.DC.RedlineCRAC {
		t.Fatal("truth view tightened redlines")
	}
}

func TestDegradeSharesECSWhenNoFailures(t *testing.T) {
	sc := testScenario(t, 4)
	st := NewState(sc.DC.NCRAC(), sc.DC.NCN())
	st.Apply(Event{Kind: PowerCap, Magnitude: 0.9})
	dc, err := st.Degrade(sc.DC, Truth)
	if err != nil {
		t.Fatal(err)
	}
	if &dc.ECS[0] != &sc.DC.ECS[0] {
		t.Fatal("ECS copied without any node failure")
	}
}

func TestNodeFailTimes(t *testing.T) {
	s := Schedule{Events: []Event{
		{Time: 5, Kind: NodeFail, Unit: 1},
		{Time: 9, Kind: NodeFail, Unit: 1}, // duplicate keeps the earliest
		{Time: 3, Kind: CRACOutage, Unit: 0},
	}}
	ft := NodeFailTimes(s, 3)
	if ft[1] != 5 || !math.IsInf(ft[0], 1) || !math.IsInf(ft[2], 1) {
		t.Fatalf("fail times %v", ft)
	}
}

func TestValidateRejectsBadEvents(t *testing.T) {
	bad := []Event{
		{Time: -1, Kind: NodeFail, Unit: 0},
		{Time: 1, Kind: CRACDegrade, Unit: 5, Magnitude: 0.5},
		{Time: 1, Kind: CRACDegrade, Unit: 0, Magnitude: 1.2},
		{Time: 1, Kind: PowerCap, Magnitude: 0},
		{Time: 1, Kind: SensorOffset, Magnitude: -0.5},
		{Time: 1, Kind: NodeFail, Unit: 99},
	}
	for _, e := range bad {
		s := Schedule{Events: []Event{e}}
		if err := s.Validate(2, 4); err == nil {
			t.Errorf("event %v accepted", e)
		}
	}
}
