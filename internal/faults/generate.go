package faults

import (
	"fmt"

	"thermaldc/internal/stats"
)

// GenConfig parameterizes the seeded fault-schedule generator. The
// defaults are sized so a mid-capacity data center (Pconst at the
// Equation-18 midpoint) always retains a safe operating point: at least
// one CRAC keeps full flow, degradations stay above half flow, and the
// power cap never drops below 60% of Pconst. Harsher schedules are legal —
// the controller falls back to the all-off safe plan when re-optimization
// goes infeasible — but the shipped defaults are the ones the invariant
// tests promise zero violations for.
type GenConfig struct {
	// Seed drives every draw; equal configs generate equal schedules.
	Seed int64
	// Horizon bounds event times to (0, Horizon).
	Horizon float64
	// NCrac and NNodes are the data-center dimensions.
	NCrac, NNodes int
	// CracDegradations draws that many CRACDegrade events with flow
	// factors in [DegradeLo, DegradeHi].
	CracDegradations int
	// CracOutages draws that many CRACOutage events on distinct CRACs,
	// capped at NCrac−1 so one unit always keeps full flow.
	CracOutages int
	// NodeFailures draws that many NodeFail events on distinct nodes.
	NodeFailures int
	// PowerSteps draws that many PowerCap events with factors in
	// [CapLo, CapHi].
	PowerSteps int
	// SensorOffsets draws that many SensorOffset events with biases in
	// [BiasLo, BiasHi] °C.
	SensorOffsets int
	// DegradeLo/DegradeHi bound CRACDegrade flow factors (defaults 0.5/0.85).
	DegradeLo, DegradeHi float64
	// CapLo/CapHi bound PowerCap factors (defaults 0.6/0.9).
	CapLo, CapHi float64
	// BiasLo/BiasHi bound sensor biases in °C (defaults 0.5/2).
	BiasLo, BiasHi float64
}

// DefaultGenConfig returns a moderate schedule for the given dimensions:
// one CRAC degradation, node failures for ~10% of the fleet, one power-cap
// step, and one sensor offset, spread over the horizon.
func DefaultGenConfig(seed int64, horizon float64, ncrac, nnodes int) GenConfig {
	return GenConfig{
		Seed:             seed,
		Horizon:          horizon,
		NCrac:            ncrac,
		NNodes:           nnodes,
		CracDegradations: 1,
		NodeFailures:     (nnodes + 9) / 10,
		PowerSteps:       1,
		SensorOffsets:    1,
	}
}

func (c GenConfig) withDefaults() GenConfig {
	if c.DegradeLo == 0 {
		c.DegradeLo = 0.5
	}
	if c.DegradeHi == 0 {
		c.DegradeHi = 0.85
	}
	if c.CapLo == 0 {
		c.CapLo = 0.6
	}
	if c.CapHi == 0 {
		c.CapHi = 0.9
	}
	if c.BiasLo == 0 {
		c.BiasLo = 0.5
	}
	if c.BiasHi == 0 {
		c.BiasHi = 2
	}
	return c
}

// Generate draws a deterministic fault schedule from the config. The same
// config always yields the same schedule, byte for byte, which is what
// makes degraded-operation experiments and the invariant tests replayable.
func Generate(cfg GenConfig) (Schedule, error) {
	cfg = cfg.withDefaults()
	if cfg.Horizon <= 0 {
		return Schedule{}, fmt.Errorf("faults: generator horizon must be positive")
	}
	if cfg.NCrac <= 0 || cfg.NNodes <= 0 {
		return Schedule{}, fmt.Errorf("faults: generator needs positive data-center dimensions")
	}
	if cfg.DegradeLo <= 0 || cfg.DegradeHi >= 1 || cfg.DegradeLo > cfg.DegradeHi ||
		cfg.CapLo <= 0 || cfg.CapHi > 1 || cfg.CapLo > cfg.CapHi ||
		cfg.BiasLo < 0 || cfg.BiasLo > cfg.BiasHi {
		return Schedule{}, fmt.Errorf("faults: generator magnitude bounds are inconsistent")
	}
	rng := stats.NewRand(cfg.Seed)
	var s Schedule

	// Event times avoid t = 0 (the initial plan already sees a healthy
	// plant) and cluster nothing: plain uniform draws over the horizon.
	when := func() float64 { return stats.Uniform(rng, 1e-3*cfg.Horizon, cfg.Horizon) }

	for i := 0; i < cfg.CracDegradations; i++ {
		s.Events = append(s.Events, Event{
			Time:      when(),
			Kind:      CRACDegrade,
			Unit:      rng.Intn(cfg.NCrac),
			Magnitude: stats.Uniform(rng, cfg.DegradeLo, cfg.DegradeHi),
		})
	}
	outages := cfg.CracOutages
	if max := cfg.NCrac - 1; outages > max {
		outages = max
	}
	for _, unit := range samples(rng.Perm(cfg.NCrac), outages) {
		s.Events = append(s.Events, Event{Time: when(), Kind: CRACOutage, Unit: unit})
	}
	failures := cfg.NodeFailures
	if failures > cfg.NNodes {
		failures = cfg.NNodes
	}
	for _, unit := range samples(rng.Perm(cfg.NNodes), failures) {
		s.Events = append(s.Events, Event{Time: when(), Kind: NodeFail, Unit: unit})
	}
	for i := 0; i < cfg.PowerSteps; i++ {
		s.Events = append(s.Events, Event{
			Time:      when(),
			Kind:      PowerCap,
			Magnitude: stats.Uniform(rng, cfg.CapLo, cfg.CapHi),
		})
	}
	for i := 0; i < cfg.SensorOffsets; i++ {
		s.Events = append(s.Events, Event{
			Time:      when(),
			Kind:      SensorOffset,
			Magnitude: stats.Uniform(rng, cfg.BiasLo, cfg.BiasHi),
		})
	}
	s.Sort()
	if err := s.Validate(cfg.NCrac, cfg.NNodes); err != nil {
		return Schedule{}, err
	}
	return s, nil
}

// samples returns the first n entries of a permutation.
func samples(perm []int, n int) []int {
	if n > len(perm) {
		n = len(perm)
	}
	return perm[:n]
}
