// Package faults models mid-run disturbances in a power-constrained data
// center: CRAC degradation and outage, compute-node failure, power-cap
// step changes, and thermal-sensor bias. The paper's two-step scheme
// (Section V) chooses CRAC outlets, P-states, and TC once and runs
// open-loop; real facilities lose cooling capacity, nodes, and power
// headroom mid-run (Van Damme et al., arXiv:1611.00522; Ogura et al.,
// arXiv:1806.03375 both close the loop for exactly this reason).
//
// A Schedule is a deterministic, time-sorted list of Events — either
// hand-built or drawn from a seeded generator (see Generate) — and a State
// is the cumulative effect of the events applied so far. State.Degrade
// projects the base data-center model onto the degraded one the controller
// re-optimizes against:
//
//   - CRAC degradation/outage scales the unit's air flow (an outage keeps
//     OutageFlowFactor of the flow: the blower idles on backup power and
//     moves almost no air).
//   - A failed node is remapped to a "failed" variant of its node type
//     with zero base power and an all-zero ECS column, so every layer
//     downstream (Stage-1 ARR envelopes, Stage-2 rounding, Stage-3 rates,
//     the dynamic scheduler's eligibility lists) routes around it without
//     special cases. Core indexing is unchanged, so scheduler busy state
//     carries across the failure.
//   - A power-cap step scales Pconst (grid curtailment).
//   - A sensor offset models inlet sensors reading high by a fixed bias;
//     the planner compensates by tightening every redline by the bias, so
//     plans remain safe against the true temperatures.
//
// Everything here is pure data transformation: deterministic, allocation
// only, no clock and no randomness beyond the seeded generator.
package faults

import (
	"fmt"
	"log/slog"
	"math"
	"sort"

	"thermaldc/internal/model"
	"thermaldc/internal/telemetry"
)

// Kind enumerates the fault classes.
type Kind int

const (
	// CRACDegrade scales a CRAC's air flow by Magnitude ∈ (0, 1).
	CRACDegrade Kind = iota
	// CRACOutage drops a CRAC to OutageFlowFactor of its flow (Magnitude
	// is ignored).
	CRACOutage
	// NodeFail permanently kills compute node Unit (no repair).
	NodeFail
	// PowerCap scales the facility power constraint Pconst by
	// Magnitude ∈ (0, 1].
	PowerCap
	// SensorOffset raises the inlet-temperature sensor bias to Magnitude
	// °C (sensors read high; the planner tightens redlines to compensate).
	SensorOffset
	numKinds
)

// String names the kind for reports.
func (k Kind) String() string {
	switch k {
	case CRACDegrade:
		return "crac-degrade"
	case CRACOutage:
		return "crac-outage"
	case NodeFail:
		return "node-fail"
	case PowerCap:
		return "power-cap"
	case SensorOffset:
		return "sensor-offset"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// OutageFlowFactor is the residual air flow of a CRAC in outage: the unit
// no longer chills, but backup fans keep a trickle of air moving so the
// heat-flow fixed point stays well posed.
const OutageFlowFactor = 0.1

// Event is one timestamped disturbance.
type Event struct {
	// Time is the simulation timestamp in seconds.
	Time float64
	// Kind selects the fault class.
	Kind Kind
	// Unit is the CRAC index (CRACDegrade/CRACOutage) or node index
	// (NodeFail); unused otherwise.
	Unit int
	// Magnitude is the flow factor (CRACDegrade), Pconst factor
	// (PowerCap), or sensor bias in °C (SensorOffset).
	Magnitude float64
}

func (e Event) String() string {
	switch e.Kind {
	case CRACDegrade:
		return fmt.Sprintf("t=%.1fs %s crac %d flow ×%.2f", e.Time, e.Kind, e.Unit, e.Magnitude)
	case CRACOutage:
		return fmt.Sprintf("t=%.1fs %s crac %d", e.Time, e.Kind, e.Unit)
	case NodeFail:
		return fmt.Sprintf("t=%.1fs %s node %d", e.Time, e.Kind, e.Unit)
	case PowerCap:
		return fmt.Sprintf("t=%.1fs %s Pconst ×%.2f", e.Time, e.Kind, e.Magnitude)
	case SensorOffset:
		return fmt.Sprintf("t=%.1fs %s +%.2f °C", e.Time, e.Kind, e.Magnitude)
	default:
		return fmt.Sprintf("t=%.1fs %s", e.Time, e.Kind)
	}
}

// validate checks one event against the data-center dimensions.
func (e Event) validate(ncrac, nnodes int) error {
	if e.Time < 0 || math.IsNaN(e.Time) || math.IsInf(e.Time, 0) {
		return fmt.Errorf("faults: event %v has invalid time", e)
	}
	switch e.Kind {
	case CRACDegrade:
		if e.Unit < 0 || e.Unit >= ncrac {
			return fmt.Errorf("faults: event %v targets unknown CRAC", e)
		}
		if e.Magnitude <= 0 || e.Magnitude >= 1 {
			return fmt.Errorf("faults: event %v flow factor outside (0, 1)", e)
		}
	case CRACOutage:
		if e.Unit < 0 || e.Unit >= ncrac {
			return fmt.Errorf("faults: event %v targets unknown CRAC", e)
		}
	case NodeFail:
		if e.Unit < 0 || e.Unit >= nnodes {
			return fmt.Errorf("faults: event %v targets unknown node", e)
		}
	case PowerCap:
		if e.Magnitude <= 0 || e.Magnitude > 1 {
			return fmt.Errorf("faults: event %v cap factor outside (0, 1]", e)
		}
	case SensorOffset:
		if e.Magnitude < 0 || math.IsNaN(e.Magnitude) {
			return fmt.Errorf("faults: event %v has negative sensor bias (sensors reading low would let the planner overshoot the true redlines)", e)
		}
	default:
		return fmt.Errorf("faults: event %v has unknown kind", e)
	}
	return nil
}

// Schedule is a time-sorted fault sequence for one run.
type Schedule struct {
	Events []Event
}

// Sort orders the events by time, breaking ties by (kind, unit, magnitude)
// so a schedule renders and replays deterministically regardless of how it
// was assembled.
func (s *Schedule) Sort() {
	sort.SliceStable(s.Events, func(a, b int) bool {
		ea, eb := s.Events[a], s.Events[b]
		if ea.Time != eb.Time {
			return ea.Time < eb.Time
		}
		if ea.Kind != eb.Kind {
			return ea.Kind < eb.Kind
		}
		if ea.Unit != eb.Unit {
			return ea.Unit < eb.Unit
		}
		return ea.Magnitude < eb.Magnitude
	})
}

// Validate checks every event against the data-center dimensions and that
// the schedule is sorted.
func (s *Schedule) Validate(ncrac, nnodes int) error {
	for i, e := range s.Events {
		if err := e.validate(ncrac, nnodes); err != nil {
			return err
		}
		if i > 0 && e.Time < s.Events[i-1].Time {
			return fmt.Errorf("faults: schedule not sorted at event %d (%v)", i, e)
		}
	}
	return nil
}

// State is the cumulative effect of every event applied so far.
type State struct {
	// CracFlowFactor[i] ∈ (0, 1] scales CRAC i's air flow.
	CracFlowFactor []float64
	// NodeFailed[j] marks node j dead (permanently).
	NodeFailed []bool
	// CapFactor ∈ (0, 1] scales Pconst.
	CapFactor float64
	// SensorBias is the inlet-sensor bias in °C (≥ 0).
	SensorBias float64
}

// NewState returns the healthy state for the given dimensions.
func NewState(ncrac, nnodes int) *State {
	st := &State{
		CracFlowFactor: make([]float64, ncrac),
		NodeFailed:     make([]bool, nnodes),
		CapFactor:      1,
	}
	for i := range st.CracFlowFactor {
		st.CracFlowFactor[i] = 1
	}
	return st
}

// Apply folds one event into the state. Degradations compound by taking
// the worse factor (faults never self-repair). It reports whether the
// degraded *structure* changed — flows, node population, or redlines —
// which is what forces a thermal-model and LP-skeleton rebuild; a pure
// power-cap step returns false because Pconst is read per solve.
func (st *State) Apply(e Event) (structural bool) {
	structural = st.apply(e)
	if log := telemetry.Default(); log.Enabled(slog.LevelDebug) {
		log.Debug("fault applied", "t", e.Time, "kind", e.Kind.String(),
			"unit", e.Unit, "magnitude", e.Magnitude, "structural", structural)
	}
	return structural
}

func (st *State) apply(e Event) (structural bool) {
	switch e.Kind {
	case CRACDegrade:
		if e.Magnitude < st.CracFlowFactor[e.Unit] {
			st.CracFlowFactor[e.Unit] = e.Magnitude
			return true
		}
	case CRACOutage:
		if OutageFlowFactor < st.CracFlowFactor[e.Unit] {
			st.CracFlowFactor[e.Unit] = OutageFlowFactor
			return true
		}
	case NodeFail:
		if !st.NodeFailed[e.Unit] {
			st.NodeFailed[e.Unit] = true
			return true
		}
	case PowerCap:
		if e.Magnitude < st.CapFactor {
			st.CapFactor = e.Magnitude
		}
	case SensorOffset:
		if e.Magnitude > st.SensorBias {
			st.SensorBias = e.Magnitude
			return true
		}
	}
	return false
}

// Clone returns an independent deep copy of the state, for checkpointing
// a run without aliasing the live controller's fault bookkeeping.
func (st *State) Clone() *State {
	return &State{
		CracFlowFactor: append([]float64(nil), st.CracFlowFactor...),
		NodeFailed:     append([]bool(nil), st.NodeFailed...),
		CapFactor:      st.CapFactor,
		SensorBias:     st.SensorBias,
	}
}

// FailedNodes counts dead nodes.
func (st *State) FailedNodes() int {
	n := 0
	for _, f := range st.NodeFailed {
		if f {
			n++
		}
	}
	return n
}

// DegradedCRACs counts CRACs below full flow.
func (st *State) DegradedCRACs() int {
	n := 0
	for _, f := range st.CracFlowFactor {
		if f < 1 {
			n++
		}
	}
	return n
}

// View selects which redlines Degrade bakes into the projected model.
type View int

const (
	// Planner is the controller's view: redlines tightened by the sensor
	// bias, so plans verified against it are safe against the truth.
	Planner View = iota
	// Truth is the physical view: real redlines, used by the plant
	// telemetry and the invariant tests.
	Truth
)

// Degrade projects the base data center onto the degraded model for the
// given view. The result is a fresh DataCenter sharing only immutable
// inputs (core models, ECS rows of healthy types, Alpha rows); the base is
// never mutated. Core indexing is preserved: a failed node keeps its core
// count via a failed variant of its node type with zero base power and
// zero ECS, so P-state slices and scheduler busy state remain aligned
// across the projection.
func (st *State) Degrade(base *model.DataCenter, view View) (*model.DataCenter, error) {
	if len(st.CracFlowFactor) != base.NCRAC() || len(st.NodeFailed) != base.NCN() {
		return nil, fmt.Errorf("faults: state sized for %d CRACs/%d nodes, data center has %d/%d",
			len(st.CracFlowFactor), len(st.NodeFailed), base.NCRAC(), base.NCN())
	}
	dc := &model.DataCenter{
		NodeTypes:   append([]model.NodeType(nil), base.NodeTypes...),
		Nodes:       append([]model.Node(nil), base.Nodes...),
		CRACs:       append([]model.CRAC(nil), base.CRACs...),
		TaskTypes:   append([]model.TaskType(nil), base.TaskTypes...),
		Alpha:       base.Alpha,
		RedlineNode: base.RedlineNode,
		RedlineCRAC: base.RedlineCRAC,
		Pconst:      base.Pconst * st.CapFactor,
	}
	for i := range dc.CRACs {
		dc.CRACs[i].Flow *= st.CracFlowFactor[i]
	}
	if view == Planner {
		dc.RedlineNode -= st.SensorBias
		dc.RedlineCRAC -= st.SensorBias
		if dc.RedlineNode <= 0 || dc.RedlineCRAC <= 0 {
			return nil, fmt.Errorf("faults: sensor bias %.2f °C exceeds a redline", st.SensorBias)
		}
	}

	// ECS rows are shared until a failed variant forces an extension.
	ecs := base.ECS
	failedVariant := map[int]int{} // original type -> failed-variant type index
	for j, failed := range st.NodeFailed {
		if !failed {
			continue
		}
		orig := base.Nodes[j].Type
		variant, ok := failedVariant[orig]
		if !ok {
			nt := base.NodeTypes[orig]
			nt.Name += " (failed)"
			nt.BasePower = 0
			variant = len(dc.NodeTypes)
			dc.NodeTypes = append(dc.NodeTypes, nt)
			failedVariant[orig] = variant
			if len(ecs) > 0 && &ecs[0] == &base.ECS[0] {
				ecs = append(model.ECS(nil), base.ECS...)
			}
			for i := range ecs {
				ecs[i] = append(append([][]float64(nil), ecs[i]...),
					make([]float64, nt.NumPStates()+1))
			}
		}
		dc.Nodes[j].Type = variant
	}
	dc.ECS = ecs
	if err := dc.Validate(); err != nil {
		return nil, fmt.Errorf("faults: degraded model invalid: %w", err)
	}
	return dc, nil
}

// NodeFailTimes returns, for each node, the time of its first NodeFail
// event in the schedule (+Inf for nodes that never fail). The simulator's
// task-loss rule — a task earns no reward if its host node dies before the
// task completes — needs the full timeline up front.
func NodeFailTimes(s Schedule, nnodes int) []float64 {
	out := make([]float64, nnodes)
	for j := range out {
		out[j] = math.Inf(1)
	}
	for _, e := range s.Events {
		if e.Kind == NodeFail && e.Unit >= 0 && e.Unit < nnodes && e.Time < out[e.Unit] {
			out[e.Unit] = e.Time
		}
	}
	return out
}
