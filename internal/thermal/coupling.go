package thermal

// Coupling reports the block structure of a cross-interference matrix:
// which thermal units exchange recirculated air with which, and how much
// heat flow a block-diagonal reading of the matrix would ignore. The zone
// decomposition (internal/zones) uses it to split a floor into thermally
// independent blocks that can be modeled and solved separately.
type Coupling struct {
	// Component maps each thermal unit (thermal-index order, CRACs first)
	// to a zero-based component id. Ids are assigned in order of each
	// component's smallest thermal index, so the labeling is deterministic.
	Component []int

	// NumComponents is the number of connected components.
	NumComponents int

	// MaxCross is the largest |α[i][j]| between units in different
	// components. It is ≤ the eps passed to Components, and exactly 0 when
	// eps is 0; it bounds the per-edge heat fraction the block-diagonal
	// approximation drops.
	MaxCross float64
}

// Components partitions the thermal units into connected components of the
// undirected support graph of the cross-interference matrix alpha: units i
// and j are joined when |α[i][j]| > eps or |α[j][i]| > eps. With eps = 0
// the partition is exact: the heat-flow fixed point of New, and therefore
// every affine map this package computes, decomposes block-by-block with
// bit-identical arithmetic — LU partial pivoting never selects a pivot
// across a structurally zero block, and the zero off-block entries
// contribute exactly 0.0 to every matrix product. A positive eps treats
// weak couplings as absent; callers accepting that approximation can bound
// its size with MaxCross.
func Components(alpha [][]float64, eps float64) Coupling {
	n := len(alpha)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for i := 0; i < n; i++ {
		row := alpha[i]
		for j := i + 1; j < n; j++ {
			if abs(row[j]) > eps || abs(alpha[j][i]) > eps {
				union(i, j)
			}
		}
	}

	// Relabel roots in order of first appearance so component ids are a
	// deterministic function of the matrix alone.
	c := Coupling{Component: make([]int, n)}
	label := make(map[int]int, 8)
	for i := 0; i < n; i++ {
		r := find(i)
		id, ok := label[r]
		if !ok {
			id = len(label)
			label[r] = id
		}
		c.Component[i] = id
	}
	c.NumComponents = len(label)

	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if c.Component[i] != c.Component[j] {
				if a := abs(alpha[i][j]); a > c.MaxCross {
					c.MaxCross = a
				}
			}
		}
	}
	return c
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
