package thermal

import (
	"math"
	"testing"
)

func TestTransientStartsAtSteadyState(t *testing.T) {
	dc := mixDC(t, 2, 6)
	m, err := New(dc)
	if err != nil {
		t.Fatal(err)
	}
	cracOut := []float64{15, 16}
	pcn := []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5}
	tr, err := NewTransient(m, 120, cracOut, pcn)
	if err != nil {
		t.Fatal(err)
	}
	want := m.InletTemps(cracOut, pcn)
	got := tr.InletTemps()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("initial inlet %d = %g, want %g", i, got[i], want[i])
		}
	}
	// Stepping with unchanged inputs stays at the steady state.
	tr.Step(60, cracOut, pcn)
	got = tr.InletTemps()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("steady state drifted at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestTransientConvergesExponentially(t *testing.T) {
	dc := mixDC(t, 2, 6)
	m, err := New(dc)
	if err != nil {
		t.Fatal(err)
	}
	cracOut := []float64{15, 15}
	low := []float64{0.4, 0.4, 0.4, 0.4, 0.4, 0.4}
	high := []float64{0.9, 0.9, 0.9, 0.9, 0.9, 0.9}
	const tau = 120.0
	tr, err := NewTransient(m, tau, cracOut, low)
	if err != nil {
		t.Fatal(err)
	}
	ssLow := m.OutletTemps(cracOut, low)
	ssHigh := m.OutletTemps(cracOut, high)

	// After one time constant, the gap shrinks to exp(-1) of the initial.
	tr.Step(tau, cracOut, high)
	got := tr.OutletTemps()
	for i := range got {
		wantGap := (ssLow[i] - ssHigh[i]) * math.Exp(-1)
		if math.Abs((got[i]-ssHigh[i])-wantGap) > 1e-9 {
			t.Fatalf("unit %d gap = %g, want %g", i, got[i]-ssHigh[i], wantGap)
		}
	}
	// After many time constants it has settled.
	for k := 0; k < 20; k++ {
		tr.Step(tau, cracOut, high)
	}
	got = tr.OutletTemps()
	for i := range got {
		if math.Abs(got[i]-ssHigh[i]) > 1e-6 {
			t.Fatalf("unit %d not settled: %g vs %g", i, got[i], ssHigh[i])
		}
	}
}

// TestTransientNoOvershoot checks the safety property: transitioning
// between two redline-feasible operating points keeps every inlet within
// the envelope of the two steady states at all times.
func TestTransientNoOvershoot(t *testing.T) {
	dc := mixDC(t, 2, 8)
	m, err := New(dc)
	if err != nil {
		t.Fatal(err)
	}
	outA := []float64{14, 14}
	outB := []float64{17, 15}
	pcnA := make([]float64, 8)
	pcnB := make([]float64, 8)
	for j := range pcnA {
		pcnA[j] = 0.45
		pcnB[j] = 0.85
	}
	tinA := m.InletTemps(outA, pcnA)
	tinB := m.InletTemps(outB, pcnB)
	tr, err := NewTransient(m, 90, outA, pcnA)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 200; step++ {
		tr.Step(5, outB, pcnB)
		tin := tr.InletTemps()
		for i := range tin {
			lo := math.Min(tinA[i], tinB[i]) - 1e-9
			hi := math.Max(tinA[i], tinB[i]) + 1e-9
			if tin[i] < lo || tin[i] > hi {
				t.Fatalf("step %d unit %d: inlet %g outside [%g, %g]", step, i, tin[i], lo, hi)
			}
		}
	}
}

func TestSettlingTime(t *testing.T) {
	dc := mixDC(t, 1, 4)
	m, err := New(dc)
	if err != nil {
		t.Fatal(err)
	}
	cracOut := []float64{15}
	low := []float64{0.4, 0.4, 0.4, 0.4}
	high := []float64{0.9, 0.9, 0.9, 0.9}
	const tau = 60.0
	tr, err := NewTransient(m, tau, cracOut, low)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.SettlingTime(cracOut, low, 0.01); got != 0 {
		t.Errorf("settled state reports settling time %g", got)
	}
	ts := tr.SettlingTime(cracOut, high, 0.01)
	if ts <= 0 {
		t.Fatal("transition should need settling time")
	}
	// Stepping exactly that long brings the state within eps.
	tr.Step(ts, cracOut, high)
	ss := m.OutletTemps(cracOut, high)
	for i, v := range tr.OutletTemps() {
		if math.Abs(v-ss[i]) > 0.01+1e-9 {
			t.Fatalf("unit %d deviation %g after settling time", i, math.Abs(v-ss[i]))
		}
	}
}

func TestTransientValidation(t *testing.T) {
	dc := mixDC(t, 1, 2)
	m, err := New(dc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTransient(m, 0, []float64{15}, []float64{0.4, 0.4}); err == nil {
		t.Error("zero tau accepted")
	}
	tr, err := NewTransient(m, 10, []float64{15}, []float64{0.4, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative dt did not panic")
			}
		}()
		tr.Step(-1, []float64{15}, []float64{0.4, 0.4})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("non-positive eps did not panic")
			}
		}()
		tr.SettlingTime([]float64{15}, []float64{0.4, 0.4}, 0)
	}()
}
