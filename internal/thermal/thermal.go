// Package thermal implements the paper's Section-IV thermal model, built on
// the Abstract Heat Flow Model of Tang et al. [29]: inlet temperatures are
// a linear mix of outlet temperatures, Tin = A·Tout (Equation 5), with
// A[j][i] = α[i][j]·F_i/F_j derived from the cross-interference matrix α
// and the air flow rates F. Node outlets follow Equation 4
// (Tout = Tin + PCN/(ρ·Cp·F)) and CRAC outlets are control inputs.
//
// Substituting Equation 4 into Equation 5 gives a linear fixed point which
// this package solves symbolically once per data center: one LU
// factorization yields affine maps
//
//	Tin = TinFromCRAC·TcracOut + G·PCN
//
// whose rows are exactly the thermal constraint rows of every LP in the
// paper (Stage 1, Equation 21, Equation 17), and whose CRAC-inlet rows make
// CRAC power (Equation 3) linear in node power for fixed outlet
// temperatures.
package thermal

import (
	"fmt"
	"math"

	"thermaldc/internal/linalg"
	"thermaldc/internal/model"
	"thermaldc/internal/power"
)

// Model holds the precomputed affine thermal maps for one data center.
type Model struct {
	dc *model.DataCenter

	// a is the heat-distribution matrix of Equation 5: Tin = a·Tout.
	a *linalg.Matrix

	// outFromCRAC (n×NCRAC) and outFromPower (n×NCN) give
	// Tout = outFromCRAC·TcracOut + outFromPower·PCN.
	outFromCRAC  *linalg.Matrix
	outFromPower *linalg.Matrix

	// tinFromCRAC (n×NCRAC) and g (n×NCN) give
	// Tin = tinFromCRAC·TcracOut + g·PCN.
	tinFromCRAC *linalg.Matrix
	g           *linalg.Matrix

	// flows caches dc.Flows() — invariant after construction and needed on
	// every CRAC-power evaluation in the temperature-search hot path.
	flows []float64
}

// New builds the thermal model for dc. It returns an error when the
// recirculation pattern is degenerate (air never reaching a CRAC would
// make the fixed point singular — physically impossible in a data center
// with positive exit coefficients).
func New(dc *model.DataCenter) (*Model, error) {
	n := dc.NumThermal()
	ncrac := dc.NCRAC()
	flows := dc.Flows()

	// A[j][i] = α[i][j]·F_i / F_j  (row j: inlet of unit j).
	a := linalg.NewMatrix(n, n)
	for j := 0; j < n; j++ {
		row := a.Row(j)
		for i := 0; i < n; i++ {
			row[i] = dc.Alpha[i][j] * flows[i] / flows[j]
		}
	}

	// Fixed point: Tout = S·A·Tout + S·(c ∘ PCN)_ext + (I−S)·TcracOut_ext,
	// where S selects node rows. Build M = I − S·A and factor it.
	m := linalg.Identity(n)
	for t := ncrac; t < n; t++ {
		mrow := m.Row(t)
		arow := a.Row(t)
		for i := 0; i < n; i++ {
			mrow[i] -= arow[i]
		}
	}
	lu, err := linalg.FactorLU(m)
	if err != nil {
		return nil, fmt.Errorf("thermal: heat-flow fixed point is singular (air recirculation never reaches a CRAC): %w", err)
	}

	// Tout sensitivities: solve M·X = E for the CRAC-selector and
	// power-injection right-hand sides.
	eCRAC := linalg.NewMatrix(n, ncrac)
	for i := 0; i < ncrac; i++ {
		eCRAC.Set(i, i, 1)
	}
	ePow := linalg.NewMatrix(n, dc.NCN())
	for j := 0; j < dc.NCN(); j++ {
		t := ncrac + j
		ePow.Set(t, j, 1/(power.RhoCp*flows[t]))
	}
	outFromCRAC, err := lu.SolveMatrix(eCRAC)
	if err != nil {
		return nil, fmt.Errorf("thermal: solving CRAC sensitivity: %w", err)
	}
	outFromPower, err := lu.SolveMatrix(ePow)
	if err != nil {
		return nil, fmt.Errorf("thermal: solving power sensitivity: %w", err)
	}

	return &Model{
		dc:           dc,
		a:            a,
		outFromCRAC:  outFromCRAC,
		outFromPower: outFromPower,
		tinFromCRAC:  a.Mul(outFromCRAC),
		g:            a.Mul(outFromPower),
		flows:        flows,
	}, nil
}

// A returns the heat-distribution matrix of Equation 5 (read-only).
func (m *Model) A() *linalg.Matrix { return m.a }

// PowerSensitivity returns G with Tin = TinBase(cracOut) + G·PCN. Row t is
// a thermal unit in thermal-index order; column j is compute node j. All
// entries are ≥ 0: more node power can never cool an inlet.
func (m *Model) PowerSensitivity() *linalg.Matrix { return m.g }

// InletBase returns the inlet temperatures with zero node power:
// tinFromCRAC·cracOut.
func (m *Model) InletBase(cracOut []float64) []float64 {
	return m.InletBaseInto(cracOut, nil)
}

// InletBaseInto is InletBase writing into dst (reused when capacity
// allows). It lets temperature-search hot loops evaluate thousands of
// candidate outlet vectors without allocating.
func (m *Model) InletBaseInto(cracOut, dst []float64) []float64 {
	m.checkCRACLen(cracOut)
	return m.tinFromCRAC.MulVecInto(cracOut, dst)
}

// InletTemps returns all inlet temperatures (thermal-index order) for the
// given CRAC outlet temperatures and node powers PCN (kW, including base
// power).
func (m *Model) InletTemps(cracOut, pcn []float64) []float64 {
	m.checkCRACLen(cracOut)
	m.checkNodeLen(pcn)
	tin := m.tinFromCRAC.MulVec(cracOut)
	gp := m.g.MulVec(pcn)
	for i := range tin {
		tin[i] += gp[i]
	}
	return tin
}

// InletTempsInto is InletTemps writing into dst, using gp as the scratch
// for the G·PCN product; both are reused when capacity allows and the
// (possibly grown) scratch is returned for the caller to keep. The
// computation order matches InletTemps exactly, so the temperatures are
// bit-identical.
func (m *Model) InletTempsInto(cracOut, pcn, dst, gp []float64) (tin, gpOut []float64) {
	m.checkCRACLen(cracOut)
	m.checkNodeLen(pcn)
	tin = m.tinFromCRAC.MulVecInto(cracOut, dst)
	gp = m.g.MulVecInto(pcn, gp)
	for i := range tin {
		tin[i] += gp[i]
	}
	return tin, gp
}

// OutletTemps returns all outlet temperatures. CRAC rows reproduce the
// requested outlets; node rows satisfy Equation 4.
func (m *Model) OutletTemps(cracOut, pcn []float64) []float64 {
	m.checkCRACLen(cracOut)
	m.checkNodeLen(pcn)
	tout := m.outFromCRAC.MulVec(cracOut)
	gp := m.outFromPower.MulVec(pcn)
	for i := range tout {
		tout[i] += gp[i]
	}
	return tout
}

// RedlineSlack returns min over thermal units of (redline − Tin); a
// negative value means some redline constraint (Equation 6) is violated by
// that many °C.
func (m *Model) RedlineSlack(tin []float64) float64 {
	redline := m.dc.Redline()
	slack := math.Inf(1)
	for i := range tin {
		if s := redline[i] - tin[i]; s < slack {
			slack = s
		}
	}
	return slack
}

// CRACPowers returns each CRAC's power (Equation 3) for the given outlet
// temperatures and node powers, applying the exact max(0,·) rule.
func (m *Model) CRACPowers(cracOut, pcn []float64) []float64 {
	tin := m.InletTemps(cracOut, pcn)
	flows := m.flows
	out := make([]float64, m.dc.NCRAC())
	for i := range out {
		out[i] = power.CRACPower(flows[i], tin[i], cracOut[i])
	}
	return out
}

// CRACPowersInto is CRACPowers for a precomputed inlet-temperature vector
// (e.g. from InletTempsInto), writing into dst. Each CRAC's power is the
// same expression CRACPowers evaluates, so results are bit-identical.
func (m *Model) CRACPowersInto(cracOut, tin, dst []float64) []float64 {
	m.checkCRACLen(cracOut)
	flows := m.flows
	n := m.dc.NCRAC()
	if cap(dst) >= n {
		dst = dst[:n]
	} else {
		dst = make([]float64, n)
	}
	for i := range dst {
		dst[i] = power.CRACPower(flows[i], tin[i], cracOut[i])
	}
	return dst
}

// TotalPower returns compute power plus exact CRAC power (the left side of
// the paper's constraint 4) for the given CRAC outlets and node powers.
func (m *Model) TotalPower(cracOut, pcn []float64) float64 {
	total := 0.0
	for _, p := range pcn {
		total += p
	}
	for _, p := range m.CRACPowers(cracOut, pcn) {
		total += p
	}
	return total
}

// LinearCRACPower describes CRAC i's power as an affine function of node
// powers for fixed outlet temperatures: P ≈ Const + Σ_j Coef[j]·PCN_j.
// The linearization drops Equation 3's max(0,·); callers must verify final
// solutions with the exact CRACPowers (the two agree whenever every CRAC
// inlet is warmer than its outlet, the normal operating regime of an
// oversubscribed data center).
type LinearCRACPower struct {
	Const float64
	Coef  []float64
}

// LinearizeCRACPower returns the affine CRAC power model for the given
// outlet temperatures, used to keep the paper's constraint 4 linear inside
// the Stage-1 and Equation-21 LPs.
func (m *Model) LinearizeCRACPower(cracOut []float64) []LinearCRACPower {
	return m.LinearizeCRACPowerInto(cracOut, m.InletBase(cracOut), nil)
}

// LinearizeCRACPowerInto is LinearizeCRACPower taking the caller's
// precomputed InletBase(cracOut) vector and reusing buf (including each
// entry's Coef slice) when it has the right shape. Incremental Stage-1
// solvers call this once per search candidate, so the reuse removes a
// NCRAC×NCN allocation from the hot path.
func (m *Model) LinearizeCRACPowerInto(cracOut, inletBase []float64, buf []LinearCRACPower) []LinearCRACPower {
	m.checkCRACLen(cracOut)
	ncrac, ncn := m.dc.NCRAC(), m.dc.NCN()
	flows := m.flows
	out := buf
	if cap(out) >= ncrac {
		out = out[:ncrac]
	} else {
		out = make([]LinearCRACPower, ncrac)
	}
	for i := range out {
		k := power.RhoCp * flows[i] / power.CoP(cracOut[i])
		coef := out[i].Coef
		if cap(coef) >= ncn {
			coef = coef[:ncn]
		} else {
			coef = make([]float64, ncn)
		}
		for j := range coef {
			coef[j] = k * m.g.At(i, j)
		}
		out[i] = LinearCRACPower{
			Const: k * (inletBase[i] - cracOut[i]),
			Coef:  coef,
		}
	}
	return out
}

func (m *Model) checkCRACLen(v []float64) {
	if len(v) != m.dc.NCRAC() {
		panic(fmt.Sprintf("thermal: got %d CRAC outlet temps, want %d", len(v), m.dc.NCRAC()))
	}
}

func (m *Model) checkNodeLen(v []float64) {
	if len(v) != m.dc.NCN() {
		panic(fmt.Sprintf("thermal: got %d node powers, want %d", len(v), m.dc.NCN()))
	}
}
