package thermal

import "testing"

func TestComponentsBlockDiagonal(t *testing.T) {
	// Two 2×2 blocks: {0,1} and {2,3}.
	alpha := [][]float64{
		{0, 0.5, 0, 0},
		{0.5, 0, 0, 0},
		{0, 0, 0, 0.3},
		{0, 0, 0.3, 0},
	}
	c := Components(alpha, 0)
	if c.NumComponents != 2 {
		t.Fatalf("NumComponents = %d, want 2", c.NumComponents)
	}
	want := []int{0, 0, 1, 1}
	for i, w := range want {
		if c.Component[i] != w {
			t.Errorf("Component[%d] = %d, want %d", i, c.Component[i], w)
		}
	}
	if c.MaxCross != 0 {
		t.Errorf("MaxCross = %g, want 0", c.MaxCross)
	}
}

func TestComponentsFullyConnected(t *testing.T) {
	alpha := [][]float64{
		{0, 0.1, 0.1},
		{0.1, 0, 0.1},
		{0.1, 0.1, 0},
	}
	c := Components(alpha, 0)
	if c.NumComponents != 1 {
		t.Fatalf("NumComponents = %d, want 1", c.NumComponents)
	}
}

func TestComponentsAsymmetricSupport(t *testing.T) {
	// Only alpha[1][0] is nonzero; the support graph is undirected, so 0
	// and 1 must still land in one component.
	alpha := [][]float64{
		{0, 0, 0},
		{0.4, 0, 0},
		{0, 0, 0},
	}
	c := Components(alpha, 0)
	if c.NumComponents != 2 {
		t.Fatalf("NumComponents = %d, want 2", c.NumComponents)
	}
	if c.Component[0] != c.Component[1] {
		t.Errorf("units 0 and 1 split: %v", c.Component)
	}
	if c.Component[2] == c.Component[0] {
		t.Errorf("unit 2 merged with {0,1}: %v", c.Component)
	}
}

func TestComponentsEpsDropsWeakEdges(t *testing.T) {
	// A weak 0.01 bridge joins the two blocks; eps above it splits them
	// and MaxCross reports the dropped coupling.
	alpha := [][]float64{
		{0, 0.5, 0.01, 0},
		{0.5, 0, 0, 0},
		{0.01, 0, 0, 0.3},
		{0, 0, 0.3, 0},
	}
	if c := Components(alpha, 0); c.NumComponents != 1 {
		t.Fatalf("eps=0: NumComponents = %d, want 1", c.NumComponents)
	}
	c := Components(alpha, 0.05)
	if c.NumComponents != 2 {
		t.Fatalf("eps=0.05: NumComponents = %d, want 2", c.NumComponents)
	}
	if c.MaxCross != 0.01 {
		t.Errorf("MaxCross = %g, want 0.01", c.MaxCross)
	}
}

func TestComponentsDeterministicLabels(t *testing.T) {
	// Labels follow smallest-member order regardless of union order: unit
	// 0 is isolated and must get id 0, the {1,3} pair id 1, unit 2 id 2.
	alpha := [][]float64{
		{0, 0, 0, 0},
		{0, 0, 0, 0.2},
		{0, 0, 0, 0},
		{0, 0.2, 0, 0},
	}
	c := Components(alpha, 0)
	want := []int{0, 1, 2, 1}
	for i, w := range want {
		if c.Component[i] != w {
			t.Fatalf("Component = %v, want %v", c.Component, want)
		}
	}
}
