package thermal

import (
	"fmt"
	"math"
)

// Transient models the temperature *evolution* the paper appeals to when
// it separates the two assignment timescales ("temperature evolution in
// the data center is in orders of minutes, while the execution of a task
// is in orders of seconds"). Each thermal unit's outlet temperature
// relaxes toward the instantaneous steady state of the heat-flow model
// with a first-order time constant τ:
//
//	Tout(t+dt) = ss + (Tout(t) − ss)·exp(−dt/τ)
//
// which is exact for piecewise-constant inputs (CRAC outlets and node
// powers). Because the inlet map Tin = A·Tout is linear and the trajectory
// is a convex combination of the initial and steady states, a transition
// between two redline-feasible operating points can never overshoot the
// redlines — the property that makes epoch reassignment thermally safe.
type Transient struct {
	m *Model
	// Tau is the thermal time constant in seconds.
	Tau float64

	tout []float64
}

// NewTransient starts the dynamics at the steady state of the given
// operating point. Tau must be positive.
func NewTransient(m *Model, tau float64, cracOut, pcn []float64) (*Transient, error) {
	if tau <= 0 {
		return nil, fmt.Errorf("thermal: time constant must be positive, got %g", tau)
	}
	return &Transient{
		m:    m,
		Tau:  tau,
		tout: m.OutletTemps(cracOut, pcn),
	}, nil
}

// Step advances the state by dt seconds under the (constant) inputs.
func (tr *Transient) Step(dt float64, cracOut, pcn []float64) {
	if dt < 0 {
		panic(fmt.Sprintf("thermal: negative time step %g", dt))
	}
	ss := tr.m.OutletTemps(cracOut, pcn)
	decay := math.Exp(-dt / tr.Tau)
	for i := range tr.tout {
		tr.tout[i] = ss[i] + (tr.tout[i]-ss[i])*decay
	}
}

// OutletTemps returns the current outlet temperatures (thermal-index
// order, copied).
func (tr *Transient) OutletTemps() []float64 {
	return append([]float64(nil), tr.tout...)
}

// InletTemps returns the current inlet temperatures Tin = A·Tout.
func (tr *Transient) InletTemps() []float64 {
	return tr.m.a.MulVec(tr.tout)
}

// RedlineSlack returns the minimum redline slack at the current state.
func (tr *Transient) RedlineSlack() float64 {
	return tr.m.RedlineSlack(tr.InletTemps())
}

// SettlingTime returns how long the state needs to come within eps °C
// (max-norm over outlets) of the steady state of the given inputs,
// assuming they are held constant from now on. It returns 0 when already
// settled.
func (tr *Transient) SettlingTime(cracOut, pcn []float64, eps float64) float64 {
	if eps <= 0 {
		panic(fmt.Sprintf("thermal: eps must be positive, got %g", eps))
	}
	ss := tr.m.OutletTemps(cracOut, pcn)
	maxDev := 0.0
	for i := range ss {
		if d := math.Abs(tr.tout[i] - ss[i]); d > maxDev {
			maxDev = d
		}
	}
	if maxDev <= eps {
		return 0
	}
	return tr.Tau * math.Log(maxDev/eps)
}
