package thermal

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"thermaldc/internal/model"
	"thermaldc/internal/power"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// loopDC is the simplest closed system: one CRAC and one node exchanging
// all their air (node exhaust → CRAC, CRAC outlet → node inlet). Flows are
// equal, so the fixed point is exact and hand-computable.
func loopDC(t *testing.T) *model.DataCenter {
	t.Helper()
	nt := model.HPProLiantDL785G5(0.3)
	dc := &model.DataCenter{
		NodeTypes:   []model.NodeType{nt},
		Nodes:       []model.Node{{Type: 0, Label: model.LabelA}},
		CRACs:       []model.CRAC{{Flow: nt.AirFlow}},
		TaskTypes:   []model.TaskType{{Name: "t", Reward: 1, RelDeadline: 1, ArrivalRate: 1}},
		RedlineNode: 25,
		RedlineCRAC: 40,
	}
	dc.ECS = model.ECS{{{1, 0.8, 0.6, 0.3, 0}}}
	// α: CRAC (index 0) sends 100% to node (index 1) and vice versa.
	dc.Alpha = [][]float64{{0, 1}, {1, 0}}
	if err := dc.Validate(); err != nil {
		t.Fatalf("loopDC invalid: %v", err)
	}
	return dc
}

// mixDC builds nCracs + nNodes with a fully mixed, flow-balanced Alpha
// (every unit's outlet distributes to all inlets proportionally to the
// destination's flow share).
func mixDC(t testing.TB, nCracs, nNodes int) *model.DataCenter {
	t.Helper()
	types := model.TableINodeTypes(0.3)
	dc := &model.DataCenter{
		NodeTypes:   types,
		RedlineNode: 25,
		RedlineCRAC: 40,
	}
	nodeFlow := 0.0
	for j := 0; j < nNodes; j++ {
		typ := j % 2
		dc.Nodes = append(dc.Nodes, model.Node{Type: typ, Slot: j % 5, Label: model.NodeLabel(j % 5)})
		nodeFlow += types[typ].AirFlow
	}
	for i := 0; i < nCracs; i++ {
		dc.CRACs = append(dc.CRACs, model.CRAC{Flow: nodeFlow / float64(nCracs)})
	}
	dc.TaskTypes = []model.TaskType{{Name: "t", Reward: 1, RelDeadline: 1, ArrivalRate: 1}}
	dc.ECS = make(model.ECS, 1)
	dc.ECS[0] = make([][]float64, len(types))
	for j := range dc.ECS[0] {
		dc.ECS[0][j] = []float64{1, 0.8, 0.6, 0.3, 0}
	}
	n := dc.NumThermal()
	F := dc.Flows()
	total := 0.0
	for _, f := range F {
		total += f
	}
	dc.Alpha = make([][]float64, n)
	for i := range dc.Alpha {
		dc.Alpha[i] = make([]float64, n)
		for j := range dc.Alpha[i] {
			dc.Alpha[i][j] = F[j] / total
		}
	}
	if err := dc.Validate(); err != nil {
		t.Fatalf("mixDC invalid: %v", err)
	}
	return dc
}

func TestLoopFixedPoint(t *testing.T) {
	dc := loopDC(t)
	m, err := New(dc)
	if err != nil {
		t.Fatal(err)
	}
	const out = 18.0
	const pcn = 0.5
	flow := dc.CRACs[0].Flow
	rise := pcn / (power.RhoCp * flow)

	tin := m.InletTemps([]float64{out}, []float64{pcn})
	// Node inlet = CRAC outlet; CRAC inlet = node outlet = out + rise.
	if !approx(tin[1], out, 1e-9) {
		t.Errorf("node inlet = %g, want %g", tin[1], out)
	}
	if !approx(tin[0], out+rise, 1e-9) {
		t.Errorf("CRAC inlet = %g, want %g", tin[0], out+rise)
	}
	tout := m.OutletTemps([]float64{out}, []float64{pcn})
	if !approx(tout[0], out, 1e-12) {
		t.Errorf("CRAC outlet = %g, want %g", tout[0], out)
	}
	if !approx(tout[1], out+rise, 1e-9) {
		t.Errorf("node outlet = %g, want %g", tout[1], out+rise)
	}
}

func TestLoopEnergyConservation(t *testing.T) {
	dc := loopDC(t)
	m, err := New(dc)
	if err != nil {
		t.Fatal(err)
	}
	const out = 15.0
	const pcn = 0.7
	// All heat generated must be removed by the CRAC.
	cp := m.CRACPowers([]float64{out}, []float64{pcn})
	tin := m.InletTemps([]float64{out}, []float64{pcn})
	removed := power.HeatRemoved(dc.CRACs[0].Flow, tin[0], out)
	if !approx(removed, pcn, 1e-9) {
		t.Errorf("heat removed = %g, want %g", removed, pcn)
	}
	wantPower := pcn / power.CoP(out)
	if !approx(cp[0], wantPower, 1e-9) {
		t.Errorf("CRAC power = %g, want %g", cp[0], wantPower)
	}
	if got := m.TotalPower([]float64{out}, []float64{pcn}); !approx(got, pcn+wantPower, 1e-9) {
		t.Errorf("TotalPower = %g, want %g", got, pcn+wantPower)
	}
}

func TestEnergyConservationProperty(t *testing.T) {
	// For any flow-balanced α, the heat removed across CRACs equals the
	// total node power (law of energy conservation, Section IV).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nCracs := rng.Intn(3) + 1
		nNodes := rng.Intn(8) + 1
		dc := mixDC(t, nCracs, nNodes)
		m, err := New(dc)
		if err != nil {
			return false
		}
		cracOut := make([]float64, nCracs)
		for i := range cracOut {
			cracOut[i] = 10 + rng.Float64()*10
		}
		pcn := make([]float64, nNodes)
		totalP := 0.0
		for j := range pcn {
			pcn[j] = rng.Float64()
			totalP += pcn[j]
		}
		tin := m.InletTemps(cracOut, pcn)
		// Unclamped balance: Σ ρ·Cp·F_i·(Tin_i − Tout_i) over CRACs equals
		// the generated heat exactly (a CRAC with Tin < Tout contributes
		// negatively here; Equation 3 clamps that to zero power, but the
		// energy ledger itself must balance).
		removed := 0.0
		for i := 0; i < nCracs; i++ {
			removed += power.RhoCp * dc.CRACs[i].Flow * (tin[i] - cracOut[i])
		}
		return approx(removed, totalP, 1e-6*(1+totalP))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPowerSensitivityNonNegative(t *testing.T) {
	dc := mixDC(t, 2, 6)
	m, err := New(dc)
	if err != nil {
		t.Fatal(err)
	}
	g := m.PowerSensitivity()
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			if g.At(r, c) < -1e-12 {
				t.Fatalf("negative sensitivity G[%d][%d] = %g", r, c, g.At(r, c))
			}
		}
	}
}

func TestAffineConsistency(t *testing.T) {
	// InletTemps must equal InletBase + G·PCN exactly.
	dc := mixDC(t, 2, 5)
	m, err := New(dc)
	if err != nil {
		t.Fatal(err)
	}
	cracOut := []float64{15, 17}
	pcn := []float64{0.4, 0.5, 0.6, 0.7, 0.8}
	tin := m.InletTemps(cracOut, pcn)
	base := m.InletBase(cracOut)
	gp := m.PowerSensitivity().MulVec(pcn)
	for i := range tin {
		if !approx(tin[i], base[i]+gp[i], 1e-9) {
			t.Fatalf("affine mismatch at %d: %g vs %g", i, tin[i], base[i]+gp[i])
		}
	}
}

func TestLinearizeCRACPowerMatchesExact(t *testing.T) {
	dc := mixDC(t, 3, 9)
	m, err := New(dc)
	if err != nil {
		t.Fatal(err)
	}
	cracOut := []float64{12, 14, 16}
	pcn := make([]float64, 9)
	for j := range pcn {
		pcn[j] = 0.5 + 0.05*float64(j)
	}
	lin := m.LinearizeCRACPower(cracOut)
	exact := m.CRACPowers(cracOut, pcn)
	for i := range lin {
		got := lin[i].Const
		for j, c := range lin[i].Coef {
			got += c * pcn[j]
		}
		// In the heavily loaded regime inlet > outlet everywhere, so the
		// linearization is exact.
		if !approx(got, exact[i], 1e-9) {
			t.Errorf("CRAC %d: linear %g, exact %g", i, got, exact[i])
		}
	}
}

func TestCRACPowerZeroWhenIdle(t *testing.T) {
	// With zero node power the inlets equal a mix of outlets; with uniform
	// outlets there is no heat to remove.
	dc := mixDC(t, 2, 4)
	m, err := New(dc)
	if err != nil {
		t.Fatal(err)
	}
	cp := m.CRACPowers([]float64{20, 20}, make([]float64, 4))
	for i, p := range cp {
		if !approx(p, 0, 1e-9) {
			t.Errorf("idle CRAC %d power = %g, want 0", i, p)
		}
	}
}

func TestRedlineSlack(t *testing.T) {
	dc := mixDC(t, 1, 2)
	m, err := New(dc)
	if err != nil {
		t.Fatal(err)
	}
	// 3 thermal units; node redline 25, CRAC redline 40.
	slack := m.RedlineSlack([]float64{30, 20, 24})
	if !approx(slack, 1, 1e-12) {
		t.Errorf("slack = %g, want 1", slack)
	}
	slack = m.RedlineSlack([]float64{30, 26, 20})
	if !approx(slack, -1, 1e-12) {
		t.Errorf("slack = %g, want -1", slack)
	}
}

func TestMonotoneInPower(t *testing.T) {
	// More node power can only raise every inlet temperature.
	dc := mixDC(t, 2, 6)
	m, err := New(dc)
	if err != nil {
		t.Fatal(err)
	}
	cracOut := []float64{15, 15}
	lo := m.InletTemps(cracOut, []float64{0.3, 0.3, 0.3, 0.3, 0.3, 0.3})
	hi := m.InletTemps(cracOut, []float64{0.6, 0.6, 0.6, 0.6, 0.6, 0.6})
	for i := range lo {
		if hi[i] < lo[i]-1e-12 {
			t.Fatalf("inlet %d dropped when power rose: %g -> %g", i, lo[i], hi[i])
		}
	}
}

func TestArgumentLengthPanics(t *testing.T) {
	dc := mixDC(t, 2, 3)
	m, err := New(dc)
	if err != nil {
		t.Fatal(err)
	}
	for name, fn := range map[string]func(){
		"short crac": func() { m.InletTemps([]float64{1}, []float64{0, 0, 0}) },
		"short pcn":  func() { m.InletTemps([]float64{1, 2}, []float64{0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSingularWhenAirNeverReachesCRAC(t *testing.T) {
	// A node that recirculates 100% into itself makes the fixed point
	// singular: its temperature would grow without bound.
	dc := loopDC(t)
	dc.Alpha = [][]float64{{1, 0}, {0, 1}} // CRAC→CRAC, node→node
	if _, err := New(dc); err == nil {
		t.Fatal("expected singular heat-flow model")
	}
}

func BenchmarkNewModelPaperScale(b *testing.B) {
	dc := mixDC(b, 3, 150)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(dc); err != nil {
			b.Fatal(err)
		}
	}
}
