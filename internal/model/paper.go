package model

import "thermaldc/internal/power"

// The two server models of paper Table I / Appendix A.

// HPProLiantDL785G5 returns node type 1: an HP ProLiant DL785 G5 with
// 8 AMD Opteron 8381 HE processors × 4 cores. The static share of P-state-0
// core power is the experiment knob varied in Figure 6 (0.3 or 0.2).
func HPProLiantDL785G5(staticShare float64) NodeType {
	return NodeType{
		Name:      "HP ProLiant DL785 G5",
		BasePower: 0.353,
		NumCores:  32,
		Core: power.CoreModel{
			FreqMHz:     []float64{2500, 2100, 1700, 800},
			Voltage:     []float64{1.325, 1.25, 1.175, 1.025},
			P0Power:     0.01375,
			StaticShare: staticShare,
		},
		AirFlow: 0.07,
	}
}

// NECExpress5800A1080aS returns node type 2: an NEC Express5800/A1080a-S
// with 4 Intel Xeon X7560 processors × 8 cores.
func NECExpress5800A1080aS(staticShare float64) NodeType {
	return NodeType{
		Name:      "NEC Express5800/A1080a-S",
		BasePower: 0.418,
		NumCores:  32,
		Core: power.CoreModel{
			FreqMHz:     []float64{2666, 2200, 1700, 1000},
			Voltage:     []float64{1.35, 1.268, 1.18, 1.056},
			P0Power:     0.01625,
			StaticShare: staticShare,
		},
		AirFlow: 0.0828,
	}
}

// TableINodeTypes returns both paper node types with the given static
// share of P-state-0 power.
func TableINodeTypes(staticShare float64) []NodeType {
	return []NodeType{HPProLiantDL785G5(staticShare), NECExpress5800A1080aS(staticShare)}
}

// Paper-default redline temperatures (Section VI.F).
const (
	// DefaultRedlineNode is the compute-node inlet redline in °C.
	DefaultRedlineNode = 25.0
	// DefaultRedlineCRAC is the CRAC inlet redline in °C.
	DefaultRedlineCRAC = 40.0
)
