package model

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// tinyDC builds a minimal valid data center: 1 CRAC, 2 nodes (one of each
// Table-I type), 2 task types.
func tinyDC(t *testing.T) *DataCenter {
	t.Helper()
	dc := &DataCenter{
		NodeTypes: TableINodeTypes(0.3),
		Nodes: []Node{
			{Type: 0, Rack: 0, Slot: 0, Label: LabelA, HotAisle: 0},
			{Type: 1, Rack: 0, Slot: 1, Label: LabelB, HotAisle: 0},
		},
		CRACs:       []CRAC{{Flow: 0.1528}},
		TaskTypes:   []TaskType{{Name: "t0", Reward: 1, RelDeadline: 2, ArrivalRate: 3}, {Name: "t1", Reward: 2, RelDeadline: 1, ArrivalRate: 4}},
		RedlineNode: DefaultRedlineNode,
		RedlineCRAC: DefaultRedlineCRAC,
		Pconst:      10,
	}
	// ECS: 2 tasks × 2 types × (4 P-states + off).
	dc.ECS = make(ECS, 2)
	for i := range dc.ECS {
		dc.ECS[i] = make([][]float64, 2)
		for j := range dc.ECS[i] {
			dc.ECS[i][j] = []float64{1, 0.8, 0.6, 0.3, 0}
		}
	}
	// A valid doubly-balanced Alpha for 3 thermal units: uniform mixing
	// weighted so Σ_i α_ij F_i = F_j holds with these flows.
	n := dc.NumThermal()
	dc.Alpha = make([][]float64, n)
	F := dc.Flows()
	total := 0.0
	for _, f := range F {
		total += f
	}
	for i := range dc.Alpha {
		dc.Alpha[i] = make([]float64, n)
		for j := range dc.Alpha[i] {
			dc.Alpha[i][j] = F[j] / total
		}
	}
	if err := dc.Validate(); err != nil {
		t.Fatalf("tinyDC invalid: %v", err)
	}
	return dc
}

func TestTableIConstants(t *testing.T) {
	hp := HPProLiantDL785G5(0.3)
	nec := NECExpress5800A1080aS(0.3)
	if hp.BasePower != 0.353 || nec.BasePower != 0.418 {
		t.Error("base powers disagree with Table I")
	}
	if hp.NumCores != 32 || nec.NumCores != 32 {
		t.Error("core counts disagree with Table I")
	}
	if hp.Core.P0Power != 0.01375 || nec.Core.P0Power != 0.01625 {
		t.Error("P-state-0 powers disagree with Table I")
	}
	if hp.AirFlow != 0.07 || nec.AirFlow != 0.0828 {
		t.Error("air flows disagree with Table I")
	}
	if hp.Core.FreqMHz[0] != 2500 || hp.Core.FreqMHz[3] != 800 {
		t.Error("HP frequencies disagree with Table I")
	}
	if nec.Core.FreqMHz[0] != 2666 || nec.Core.FreqMHz[3] != 1000 {
		t.Error("NEC frequencies disagree with Table I")
	}
	// Appendix A: HP node at 100% utilization consumes 0.793 kW.
	if got := hp.MaxPower(); math.Abs(got-0.793) > 1e-9 {
		t.Errorf("HP max power = %g, want 0.793", got)
	}
	if got := hp.MinPower(); got != 0.353 {
		t.Errorf("HP min power = %g, want 0.353", got)
	}
}

func TestNodeTypeHelpers(t *testing.T) {
	hp := HPProLiantDL785G5(0.3)
	if hp.NumPStates() != 4 {
		t.Errorf("NumPStates = %d, want 4", hp.NumPStates())
	}
	if hp.OffState() != 4 {
		t.Errorf("OffState = %d, want 4", hp.OffState())
	}
	ps := hp.CorePowers()
	if len(ps) != 5 || ps[4] != 0 || math.Abs(ps[0]-0.01375) > 1e-12 {
		t.Errorf("CorePowers = %v", ps)
	}
}

func TestNodeLabelString(t *testing.T) {
	if LabelA.String() != "A" || LabelE.String() != "E" {
		t.Error("label strings wrong")
	}
	if !strings.Contains(NodeLabel(9).String(), "9") {
		t.Error("out-of-range label should include numeric value")
	}
}

func TestDataCenterCounts(t *testing.T) {
	dc := tinyDC(t)
	if dc.NCRAC() != 1 || dc.NCN() != 2 || dc.T() != 2 || dc.NumThermal() != 3 {
		t.Fatalf("counts wrong: %d %d %d %d", dc.NCRAC(), dc.NCN(), dc.T(), dc.NumThermal())
	}
	if dc.NumCores() != 64 {
		t.Errorf("NumCores = %d, want 64", dc.NumCores())
	}
	if dc.NodeThermalIndex(1) != 2 {
		t.Errorf("NodeThermalIndex(1) = %d, want 2", dc.NodeThermalIndex(1))
	}
}

func TestCoreRangeAndCoreNode(t *testing.T) {
	dc := tinyDC(t)
	lo, hi := dc.CoreRange(0)
	if lo != 0 || hi != 32 {
		t.Errorf("CoreRange(0) = [%d, %d)", lo, hi)
	}
	lo, hi = dc.CoreRange(1)
	if lo != 32 || hi != 64 {
		t.Errorf("CoreRange(1) = [%d, %d)", lo, hi)
	}
	if dc.CoreNode(0) != 0 || dc.CoreNode(31) != 0 || dc.CoreNode(32) != 1 || dc.CoreNode(63) != 1 {
		t.Error("CoreNode mapping wrong")
	}
}

func TestCoreNodePanicsOutOfRange(t *testing.T) {
	dc := tinyDC(t)
	defer func() {
		if recover() == nil {
			t.Fatal("CoreNode(64) did not panic")
		}
	}()
	dc.CoreNode(64)
}

func TestRedlineAndFlows(t *testing.T) {
	dc := tinyDC(t)
	rl := dc.Redline()
	if rl[0] != 40 || rl[1] != 25 || rl[2] != 25 {
		t.Errorf("Redline = %v", rl)
	}
	f := dc.Flows()
	if f[0] != 0.1528 || f[1] != 0.07 || f[2] != 0.0828 {
		t.Errorf("Flows = %v", f)
	}
}

func TestNodePower(t *testing.T) {
	dc := tinyDC(t)
	// All cores off: base power only.
	off := make([]int, 32)
	for i := range off {
		off[i] = 4
	}
	if got := dc.NodePower(0, off); math.Abs(got-0.353) > 1e-12 {
		t.Errorf("all-off power = %g, want 0.353", got)
	}
	// All cores at P0: Table-I max.
	p0 := make([]int, 32)
	if got := dc.NodePower(0, p0); math.Abs(got-0.793) > 1e-9 {
		t.Errorf("all-P0 power = %g, want 0.793", got)
	}
}

func TestNodePowerPanicsOnWrongLen(t *testing.T) {
	dc := tinyDC(t)
	defer func() {
		if recover() == nil {
			t.Fatal("NodePower with wrong P-state count did not panic")
		}
	}()
	dc.NodePower(0, []int{0})
}

func TestValidateCatchesProblems(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(dc *DataCenter)
	}{
		{"no node types", func(dc *DataCenter) { dc.NodeTypes = nil }},
		{"no nodes", func(dc *DataCenter) { dc.Nodes = nil }},
		{"bad node type ref", func(dc *DataCenter) { dc.Nodes[0].Type = 7 }},
		{"bad label", func(dc *DataCenter) { dc.Nodes[0].Label = 9 }},
		{"bad hot aisle", func(dc *DataCenter) { dc.Nodes[0].HotAisle = 3 }},
		{"no CRACs", func(dc *DataCenter) { dc.CRACs = nil }},
		{"bad CRAC flow", func(dc *DataCenter) { dc.CRACs[0].Flow = 0 }},
		{"no task types", func(dc *DataCenter) { dc.TaskTypes = nil }},
		{"bad deadline", func(dc *DataCenter) { dc.TaskTypes[0].RelDeadline = 0 }},
		{"ECS wrong tasks", func(dc *DataCenter) { dc.ECS = dc.ECS[:1] }},
		{"ECS negative", func(dc *DataCenter) { dc.ECS[0][0][1] = -1 }},
		{"ECS off not zero", func(dc *DataCenter) { dc.ECS[0][0][4] = 0.5 }},
		{"Alpha wrong size", func(dc *DataCenter) { dc.Alpha = dc.Alpha[:2] }},
		{"Alpha row sum", func(dc *DataCenter) { dc.Alpha[0][0] += 0.5 }},
		{"Alpha out of range", func(dc *DataCenter) { dc.Alpha[0][0] = 1.7; dc.Alpha[0][1] = -0.7 }},
		{"bad redline", func(dc *DataCenter) { dc.RedlineNode = 0 }},
		{"negative Pconst", func(dc *DataCenter) { dc.Pconst = -1 }},
	}
	for _, m := range mutations {
		dc := tinyDC(t)
		m.mut(dc)
		if err := dc.Validate(); err == nil {
			t.Errorf("mutation %q not caught by Validate", m.name)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	dc := tinyDC(t)
	raw, err := json.Marshal(dc)
	if err != nil {
		t.Fatal(err)
	}
	var back DataCenter
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped data center invalid: %v", err)
	}
	if back.NumCores() != dc.NumCores() || back.NCRAC() != dc.NCRAC() {
		t.Error("round trip lost structure")
	}
	if back.NodeTypes[0].Core.P0Power != dc.NodeTypes[0].Core.P0Power {
		t.Error("round trip lost core model")
	}
}

func TestECSAt(t *testing.T) {
	dc := tinyDC(t)
	if dc.ECS.At(0, 1, 2) != 0.6 {
		t.Errorf("ECS.At = %g, want 0.6", dc.ECS.At(0, 1, 2))
	}
}
