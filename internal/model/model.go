// Package model defines the data-center model of Section III: node types
// with P-states, compute nodes, CRAC units, the workload's task types, the
// estimated-computational-speed (ECS) tensor, and the assembled DataCenter
// with its thermal cross-interference matrix and global constraints.
//
// Index conventions (matching the paper and Appendix B):
//   - Thermal vectors list CRAC units first, then compute nodes: thermal
//     index t ∈ [0, NCRAC) is CRAC t, t ∈ [NCRAC, NCRAC+NCN) is node
//     t−NCRAC.
//   - P-states are 0 (fastest) … η−1 (slowest real P-state), with the
//     turned-off state appended as P-state η (power 0, ECS 0).
//   - Cores carry a global index: node 0's cores first, then node 1's, etc.
package model

import (
	"fmt"

	"thermaldc/internal/power"
)

// NodeType describes one homogeneous server model (paper Table I plus the
// Appendix-A core model).
type NodeType struct {
	// Name identifies the type in output ("HP ProLiant DL785 G5", ...).
	Name string
	// BasePower is the node's non-compute power in kW (disks, fans, ...),
	// consumed regardless of core activity because nodes are never turned
	// off in an oversubscribed data center.
	BasePower float64
	// NumCores is the number of identical cores per node.
	NumCores int
	// Core is the Appendix-A power model for each core.
	Core power.CoreModel
	// AirFlow is the node's air flow rate in m³/s.
	AirFlow float64
}

// NumPStates returns the number of real P-states η (excluding off).
func (nt *NodeType) NumPStates() int { return len(nt.Core.FreqMHz) }

// OffState returns the index of the appended turned-off P-state (= η).
func (nt *NodeType) OffState() int { return nt.NumPStates() }

// CorePowers returns per-P-state core power in kW including the final
// turned-off entry (0).
func (nt *NodeType) CorePowers() []float64 { return nt.Core.PStatePowers() }

// MaxPower returns the node's power in kW with every core at P-state 0.
func (nt *NodeType) MaxPower() float64 {
	return nt.BasePower + float64(nt.NumCores)*nt.Core.PStatePower(0)
}

// MinPower returns the node's power in kW with every core turned off.
func (nt *NodeType) MinPower() float64 { return nt.BasePower }

// Validate checks the node type.
func (nt *NodeType) Validate() error {
	if nt.NumCores <= 0 {
		return fmt.Errorf("model: node type %q has %d cores", nt.Name, nt.NumCores)
	}
	if nt.BasePower < 0 {
		return fmt.Errorf("model: node type %q has negative base power", nt.Name)
	}
	if nt.AirFlow <= 0 {
		return fmt.Errorf("model: node type %q has non-positive air flow", nt.Name)
	}
	if err := nt.Core.Validate(); err != nil {
		return fmt.Errorf("model: node type %q: %w", nt.Name, err)
	}
	return nil
}

// NodeLabel is the rack-position label of Table II / [29], which determines
// the node's exit- and recirculation-coefficient ranges. Label A is at the
// bottom of a rack, E at the top.
type NodeLabel int

// Rack-position labels in bottom-to-top order.
const (
	LabelA NodeLabel = iota
	LabelB
	LabelC
	LabelD
	LabelE
	numLabels
)

// String returns "A".."E".
func (l NodeLabel) String() string {
	if l < 0 || l >= numLabels {
		return fmt.Sprintf("NodeLabel(%d)", int(l))
	}
	return string(rune('A' + int(l)))
}

// Node is one compute node instance.
type Node struct {
	// Type indexes DataCenter.NodeTypes.
	Type int
	// Rack and Slot locate the node physically; Slot 0 is the bottom.
	Rack, Slot int
	// Label is the Table-II rack-position label derived from Slot.
	Label NodeLabel
	// HotAisle is the index of the hot aisle this node exhausts into,
	// which biases its exit coefficients toward the facing CRAC (Fig. 1).
	HotAisle int
}

// CRAC is one computer-room air conditioning unit.
type CRAC struct {
	// Flow is the unit's air flow rate in m³/s.
	Flow float64
}

// TaskType describes one of the workload's T task types (Section III.B).
type TaskType struct {
	// Name identifies the type in output.
	Name string
	// Reward r_i is collected when a task completes by its deadline.
	Reward float64
	// RelDeadline m_i: a task arriving at t must finish by t + m_i.
	RelDeadline float64
	// ArrivalRate λ_i in tasks per second.
	ArrivalRate float64
	// PowerFactor optionally scales a core's P-state power while executing
	// this type (the paper's §III.C task-type extension: I/O-intensive
	// types draw less). 0 means unset and is treated as 1.
	PowerFactor float64 `json:",omitempty"`
}

// ECS is the estimated-computational-speed tensor: ECS[i][j][k] is the
// number of tasks of type i completed per second on a core of node type j
// in P-state k. The last k index is the turned-off state and must be 0.
type ECS [][][]float64

// At returns ECS(i, j, k).
func (e ECS) At(task, nodeType, pstate int) float64 { return e[task][nodeType][pstate] }

// DataCenter assembles the full model.
type DataCenter struct {
	NodeTypes []NodeType
	Nodes     []Node
	CRACs     []CRAC
	TaskTypes []TaskType
	ECS       ECS

	// Alpha is the (NCRAC+NCN)² cross-interference matrix of Appendix B:
	// Alpha[i][j] is the fraction of unit i's outlet air flow that enters
	// unit j's inlet, in thermal-index order.
	Alpha [][]float64

	// RedlineNode and RedlineCRAC are the inlet redline temperatures in °C
	// (paper: 25 °C for nodes, 40 °C for CRACs).
	RedlineNode float64
	RedlineCRAC float64

	// Pconst is the total power constraint in kW (Equation 18).
	Pconst float64
}

// NCRAC returns the number of CRAC units.
func (dc *DataCenter) NCRAC() int { return len(dc.CRACs) }

// NCN returns the number of compute nodes.
func (dc *DataCenter) NCN() int { return len(dc.Nodes) }

// T returns the number of task types.
func (dc *DataCenter) T() int { return len(dc.TaskTypes) }

// NumThermal returns the size of thermal vectors (NCRAC + NCN).
func (dc *DataCenter) NumThermal() int { return dc.NCRAC() + dc.NCN() }

// NodeThermalIndex maps node j to its thermal-vector index.
func (dc *DataCenter) NodeThermalIndex(j int) int { return dc.NCRAC() + j }

// NodeType returns the type descriptor of node j.
func (dc *DataCenter) NodeType(j int) *NodeType { return &dc.NodeTypes[dc.Nodes[j].Type] }

// NumCores returns the total number of cores NCORES.
func (dc *DataCenter) NumCores() int {
	n := 0
	for j := range dc.Nodes {
		n += dc.NodeType(j).NumCores
	}
	return n
}

// CoreRange returns the [lo, hi) global core index range of node j.
func (dc *DataCenter) CoreRange(j int) (lo, hi int) {
	for i := 0; i < j; i++ {
		lo += dc.NodeType(i).NumCores
	}
	return lo, lo + dc.NodeType(j).NumCores
}

// CoreNode returns the node owning global core k.
func (dc *DataCenter) CoreNode(k int) int {
	for j := range dc.Nodes {
		n := dc.NodeType(j).NumCores
		if k < n {
			return j
		}
		k -= n
	}
	panic(fmt.Sprintf("model: core index %d out of range", k))
}

// Redline returns the redline vector in thermal-index order (Equation 6).
func (dc *DataCenter) Redline() []float64 {
	out := make([]float64, dc.NumThermal())
	for i := 0; i < dc.NCRAC(); i++ {
		out[i] = dc.RedlineCRAC
	}
	for j := 0; j < dc.NCN(); j++ {
		out[dc.NCRAC()+j] = dc.RedlineNode
	}
	return out
}

// Flows returns the air-flow vector F in thermal-index order.
func (dc *DataCenter) Flows() []float64 {
	out := make([]float64, dc.NumThermal())
	for i, c := range dc.CRACs {
		out[i] = c.Flow
	}
	for j := range dc.Nodes {
		out[dc.NCRAC()+j] = dc.NodeType(j).AirFlow
	}
	return out
}

// NodePower returns node j's power in kW given per-core P-state
// assignments for its cores (Equation 1). pstates must have exactly the
// node's core count.
func (dc *DataCenter) NodePower(j int, pstates []int) float64 {
	nt := dc.NodeType(j)
	if len(pstates) != nt.NumCores {
		panic(fmt.Sprintf("model: node %d has %d cores, got %d P-states", j, nt.NumCores, len(pstates)))
	}
	powers := nt.CorePowers()
	total := nt.BasePower
	for _, k := range pstates {
		total += powers[k]
	}
	return total
}

// Validate checks the assembled data center for structural consistency.
func (dc *DataCenter) Validate() error {
	if len(dc.NodeTypes) == 0 {
		return fmt.Errorf("model: no node types")
	}
	for i := range dc.NodeTypes {
		if err := dc.NodeTypes[i].Validate(); err != nil {
			return err
		}
	}
	if len(dc.Nodes) == 0 {
		return fmt.Errorf("model: no nodes")
	}
	for j, n := range dc.Nodes {
		if n.Type < 0 || n.Type >= len(dc.NodeTypes) {
			return fmt.Errorf("model: node %d references unknown type %d", j, n.Type)
		}
		if n.Label < 0 || n.Label >= numLabels {
			return fmt.Errorf("model: node %d has invalid label %d", j, n.Label)
		}
		if n.HotAisle < 0 || n.HotAisle >= len(dc.CRACs) {
			return fmt.Errorf("model: node %d exhausts into unknown hot aisle %d", j, n.HotAisle)
		}
	}
	if len(dc.CRACs) == 0 {
		return fmt.Errorf("model: no CRAC units")
	}
	for i, c := range dc.CRACs {
		if c.Flow <= 0 {
			return fmt.Errorf("model: CRAC %d has non-positive flow", i)
		}
	}
	if len(dc.TaskTypes) == 0 {
		return fmt.Errorf("model: no task types")
	}
	for i, tt := range dc.TaskTypes {
		if tt.Reward < 0 || tt.RelDeadline <= 0 || tt.ArrivalRate < 0 {
			return fmt.Errorf("model: task type %d (%s) has invalid parameters %+v", i, tt.Name, tt)
		}
		if tt.PowerFactor < 0 || tt.PowerFactor > 1.5 {
			return fmt.Errorf("model: task type %d (%s) has power factor %g outside [0, 1.5]", i, tt.Name, tt.PowerFactor)
		}
	}
	if err := dc.validateECS(); err != nil {
		return err
	}
	if err := dc.validateAlpha(); err != nil {
		return err
	}
	if dc.RedlineNode <= 0 || dc.RedlineCRAC <= 0 {
		return fmt.Errorf("model: redline temperatures must be positive")
	}
	if dc.Pconst < 0 {
		return fmt.Errorf("model: negative power constraint")
	}
	return nil
}

func (dc *DataCenter) validateECS() error {
	if len(dc.ECS) != dc.T() {
		return fmt.Errorf("model: ECS has %d task rows, want %d", len(dc.ECS), dc.T())
	}
	for i := range dc.ECS {
		if len(dc.ECS[i]) != len(dc.NodeTypes) {
			return fmt.Errorf("model: ECS[%d] has %d node types, want %d", i, len(dc.ECS[i]), len(dc.NodeTypes))
		}
		for j := range dc.ECS[i] {
			want := dc.NodeTypes[j].NumPStates() + 1
			if len(dc.ECS[i][j]) != want {
				return fmt.Errorf("model: ECS[%d][%d] has %d P-states, want %d (incl. off)", i, j, len(dc.ECS[i][j]), want)
			}
			for k, v := range dc.ECS[i][j] {
				if v < 0 {
					return fmt.Errorf("model: ECS[%d][%d][%d] negative", i, j, k)
				}
			}
			if off := dc.ECS[i][j][want-1]; off != 0 {
				return fmt.Errorf("model: ECS[%d][%d] turned-off state has ECS %g, want 0", i, j, off)
			}
		}
	}
	return nil
}

func (dc *DataCenter) validateAlpha() error {
	n := dc.NumThermal()
	if len(dc.Alpha) != n {
		return fmt.Errorf("model: Alpha has %d rows, want %d", len(dc.Alpha), n)
	}
	for i := range dc.Alpha {
		if len(dc.Alpha[i]) != n {
			return fmt.Errorf("model: Alpha row %d has %d cols, want %d", i, len(dc.Alpha[i]), n)
		}
		sum := 0.0
		for j, v := range dc.Alpha[i] {
			if v < -1e-9 || v > 1+1e-9 {
				return fmt.Errorf("model: Alpha[%d][%d] = %g outside [0,1]", i, j, v)
			}
			sum += v
		}
		if sum < 1-1e-6 || sum > 1+1e-6 {
			return fmt.Errorf("model: Alpha row %d sums to %g, want 1 (Appendix-B constraint 1)", i, sum)
		}
	}
	return nil
}
