// Package layout arranges compute nodes into the paper's
// hot-aisle/cold-aisle floor plan (Figure 1) and generates the thermal
// cross-interference matrix α via the Appendix-B LP feasibility problem.
//
// Nodes are stacked into racks of (by default) five, labelled A (bottom)
// through E (top) with the Table-II exit-coefficient (EC) and
// recirculation-coefficient (RC) ranges from the CFD study of Tang et
// al. [29]. Racks are assigned round-robin to hot aisles; each hot aisle
// faces one CRAC unit, which receives the larger share of the exit air of
// the nodes exhausting into it (the M matrix of Appendix B).
package layout

import (
	"fmt"
	"math/rand"

	"thermaldc/internal/linprog"
	"thermaldc/internal/model"
)

// ECRange and RCRange are the Table-II coefficient ranges per node label
// (A..E), as fractions.
var (
	ECRange = [5][2]float64{
		{0.30, 0.40}, // A
		{0.30, 0.40}, // B
		{0.40, 0.50}, // C
		{0.70, 0.80}, // D
		{0.80, 0.90}, // E
	}
	RCRange = [5][2]float64{
		{0.00, 0.10}, // A
		{0.00, 0.20}, // B
		{0.10, 0.30}, // C
		{0.30, 0.70}, // D
		{0.40, 0.80}, // E
	}
)

// Config controls the floor plan and the α generator.
type Config struct {
	// NodesPerRack is the rack height; labels beyond E repeat E. The
	// paper/[29] use 5.
	NodesPerRack int
	// FacingShare is M(i,i): the fraction of a node's exit air that goes
	// to the CRAC facing its hot aisle; the remainder is split evenly
	// among the other CRACs. Must be in (0, 1].
	FacingShare float64
	// NeighborRacks is the node→node recirculation support radius in
	// racks (within the same hot aisle); 1 means own rack ± one rack.
	NeighborRacks int
	// MaxRelaxations caps how many times the generator widens the
	// Table-II ranges when the strict problem is infeasible (small or
	// partial-rack layouts). 0 disables relaxation.
	MaxRelaxations int
}

// DefaultConfig returns the paper's layout parameters.
func DefaultConfig() Config {
	return Config{NodesPerRack: 5, FacingShare: 0.7, NeighborRacks: 1, MaxRelaxations: 3}
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.NodesPerRack == 0 {
		out.NodesPerRack = 5
	}
	if out.FacingShare == 0 {
		out.FacingShare = 0.7
	}
	if out.NeighborRacks == 0 {
		out.NeighborRacks = 1
	}
	return out
}

// Arrange assigns rack positions, labels and hot aisles to dc.Nodes and
// sizes the CRAC flows so their sum equals the total node air flow
// (Section VI.G). Node types must already be assigned.
func Arrange(dc *model.DataCenter, cfg Config) error {
	cfg = cfg.withDefaults()
	if cfg.NodesPerRack <= 0 {
		return fmt.Errorf("layout: NodesPerRack must be positive")
	}
	if len(dc.CRACs) == 0 {
		return fmt.Errorf("layout: data center has no CRAC units")
	}
	ncrac := len(dc.CRACs)
	for j := range dc.Nodes {
		rack := j / cfg.NodesPerRack
		slot := j % cfg.NodesPerRack
		label := slot
		if label >= int(model.LabelE) {
			label = int(model.LabelE)
		}
		dc.Nodes[j].Rack = rack
		dc.Nodes[j].Slot = slot
		dc.Nodes[j].Label = model.NodeLabel(label)
		dc.Nodes[j].HotAisle = rack % ncrac
	}
	total := 0.0
	for j := range dc.Nodes {
		total += dc.NodeType(j).AirFlow
	}
	per := total / float64(ncrac)
	for i := range dc.CRACs {
		dc.CRACs[i].Flow = per
	}
	return nil
}

// MMatrix returns M(aisle, crac): the share of a hot aisle's exit air
// going to each CRAC. The facing CRAC (same index) receives facingShare;
// the remainder is split evenly. Each row sums to 1.
func MMatrix(ncrac int, facingShare float64) [][]float64 {
	m := make([][]float64, ncrac)
	for i := range m {
		m[i] = make([]float64, ncrac)
		if ncrac == 1 {
			m[i][0] = 1
			continue
		}
		rest := (1 - facingShare) / float64(ncrac-1)
		for j := range m[i] {
			if i == j {
				m[i][j] = facingShare
			} else {
				m[i][j] = rest
			}
		}
	}
	return m
}

// labelRanges returns the EC and RC ranges for a node, optionally widened
// by the relaxation factor w ∈ [0, 1): lower bounds shrink toward 0 and
// upper bounds grow toward 1 by w of the remaining distance.
func labelRanges(l model.NodeLabel, w float64) (ecLo, ecHi, rcLo, rcHi float64) {
	ec, rc := ECRange[l], RCRange[l]
	ecLo = ec[0] * (1 - w)
	ecHi = ec[1] + (1-ec[1])*w
	rcLo = rc[0] * (1 - w)
	rcHi = rc[1] + (1-rc[1])*w
	return
}

// GenerateAlpha solves the Appendix-B LP feasibility problem and stores
// the resulting cross-interference matrix in dc.Alpha. A random objective
// drawn from rng diversifies the chosen vertex across trials, mirroring
// the variability of CFD-derived coefficients. When the strict Table-II
// ranges are infeasible (e.g. partial racks), the ranges are progressively
// widened up to cfg.MaxRelaxations times.
func GenerateAlpha(dc *model.DataCenter, cfg Config, rng *rand.Rand) error {
	cfg = cfg.withDefaults()
	var lastErr error
	for attempt := 0; attempt <= cfg.MaxRelaxations; attempt++ {
		w := 0.0
		if attempt > 0 {
			w = float64(attempt) / float64(cfg.MaxRelaxations+1)
		}
		alpha, err := solveAlphaLP(dc, cfg, rng, w)
		if err == nil {
			dc.Alpha = alpha
			return nil
		}
		lastErr = err
	}
	return fmt.Errorf("layout: Appendix-B feasibility failed even after %d relaxations: %w",
		cfg.MaxRelaxations, lastErr)
}

// solveAlphaLP builds and solves one instance of the Appendix-B LP.
func solveAlphaLP(dc *model.DataCenter, cfg Config, rng *rand.Rand, widen float64) ([][]float64, error) {
	ncrac := dc.NCRAC()
	ncn := dc.NCN()
	n := ncrac + ncn
	flows := dc.Flows()
	m := MMatrix(ncrac, cfg.FacingShare)

	p := linprog.NewProblem(linprog.Minimize)

	// Variable registry: var id per (source, dest) thermal-index pair on
	// the sparse support.
	type arc struct{ src, dst int }
	varOf := make(map[arc]int)
	addVar := func(src, dst int, lo, hi float64) {
		if hi < lo {
			hi = lo
		}
		id := p.AddVar(fmt.Sprintf("a_%d_%d", src, dst), lo, hi, rng.Float64())
		varOf[arc{src, dst}] = id
	}

	// node → CRAC arcs with the Appendix-B constraint-3/4 bounds:
	// MinEC_L·M(HA, c) ≤ α ≤ MaxEC_L·M(HA, c).
	for j, node := range dc.Nodes {
		ecLo, ecHi, _, _ := labelRanges(node.Label, widen)
		src := ncrac + j
		for c := 0; c < ncrac; c++ {
			addVar(src, c, ecLo*m[node.HotAisle][c], ecHi*m[node.HotAisle][c])
		}
	}
	// node → node arcs on the neighbourhood support.
	for i, src := range dc.Nodes {
		for j, dst := range dc.Nodes {
			if i == j {
				continue
			}
			if src.HotAisle != dst.HotAisle {
				continue
			}
			dr := src.Rack - dst.Rack
			if dr < 0 {
				dr = -dr
			}
			// Racks in the same aisle are numbered ncrac apart.
			if dr > cfg.NeighborRacks*dc.NCRAC() {
				continue
			}
			addVar(ncrac+i, ncrac+j, 0, 1)
		}
	}
	// CRAC → node and CRAC → CRAC arcs (the cold-air plenum is shared).
	for c := 0; c < ncrac; c++ {
		for j := 0; j < ncn; j++ {
			addVar(c, ncrac+j, 0, 1)
		}
		for c2 := 0; c2 < ncrac; c2++ {
			addVar(c, c2, 0, 1)
		}
	}

	// Constraint 1: each source's fractions sum to 1.
	for src := 0; src < n; src++ {
		var terms []linprog.Term
		for dst := 0; dst < n; dst++ {
			if id, ok := varOf[arc{src, dst}]; ok {
				terms = append(terms, linprog.Term{Var: id, Coef: 1})
			}
		}
		if len(terms) == 0 {
			return nil, fmt.Errorf("layout: source %d has no outgoing arcs", src)
		}
		p.AddRow(linprog.EQ, 1, terms...)
	}
	// Constraint 2: each destination's inflow equals its flow rate.
	for dst := 0; dst < n; dst++ {
		var terms []linprog.Term
		for src := 0; src < n; src++ {
			if id, ok := varOf[arc{src, dst}]; ok {
				terms = append(terms, linprog.Term{Var: id, Coef: flows[src]})
			}
		}
		if len(terms) == 0 {
			return nil, fmt.Errorf("layout: destination %d has no incoming arcs", dst)
		}
		p.AddRow(linprog.EQ, flows[dst], terms...)
	}
	// Constraint 5 (flow-weighted, see package doc): recirculated node
	// inflow within the label's RC range. The paper sums raw fractions;
	// we weight by source flow to match the RC definition in [29].
	for j, node := range dc.Nodes {
		_, _, rcLo, rcHi := labelRanges(node.Label, widen)
		dst := ncrac + j
		var terms []linprog.Term
		for i := 0; i < ncn; i++ {
			if id, ok := varOf[arc{ncrac + i, dst}]; ok {
				terms = append(terms, linprog.Term{Var: id, Coef: flows[ncrac+i]})
			}
		}
		if len(terms) == 0 {
			if rcLo > 0 {
				return nil, fmt.Errorf("layout: node %d needs recirculation but has no node arcs", j)
			}
			continue
		}
		p.AddRangeRow(rcLo*flows[dst], rcHi*flows[dst], terms...)
	}

	sol, err := p.Solve()
	if err != nil {
		return nil, err
	}
	alpha := make([][]float64, n)
	for i := range alpha {
		alpha[i] = make([]float64, n)
	}
	for a, id := range varOf {
		v := sol.Value(id)
		if v < 0 {
			v = 0
		}
		alpha[a.src][a.dst] = v
	}
	// Normalize rows exactly to 1 to absorb solver tolerance.
	for i := range alpha {
		sum := 0.0
		for _, v := range alpha[i] {
			sum += v
		}
		if sum > 0 {
			for j := range alpha[i] {
				alpha[i][j] /= sum
			}
		}
	}
	return alpha, nil
}
