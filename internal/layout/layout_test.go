package layout

import (
	"math"
	"testing"

	"thermaldc/internal/model"
	"thermaldc/internal/stats"
	"thermaldc/internal/thermal"
)

// buildDC creates a DC skeleton with nNodes alternating Table-I types and
// nCracs CRAC units, then arranges it.
func buildDC(t testing.TB, nCracs, nNodes int, cfg Config) *model.DataCenter {
	t.Helper()
	dc := &model.DataCenter{
		NodeTypes:   model.TableINodeTypes(0.3),
		CRACs:       make([]model.CRAC, nCracs),
		TaskTypes:   []model.TaskType{{Name: "t", Reward: 1, RelDeadline: 1, ArrivalRate: 1}},
		RedlineNode: model.DefaultRedlineNode,
		RedlineCRAC: model.DefaultRedlineCRAC,
	}
	for j := 0; j < nNodes; j++ {
		dc.Nodes = append(dc.Nodes, model.Node{Type: j % 2})
	}
	dc.ECS = make(model.ECS, 1)
	dc.ECS[0] = make([][]float64, 2)
	for j := range dc.ECS[0] {
		dc.ECS[0][j] = []float64{1, 0.8, 0.6, 0.3, 0}
	}
	if err := Arrange(dc, cfg); err != nil {
		t.Fatalf("Arrange: %v", err)
	}
	return dc
}

func TestArrangeBasic(t *testing.T) {
	dc := buildDC(t, 2, 20, DefaultConfig())
	// 4 racks of 5; labels A..E per rack; aisles alternate.
	for j, n := range dc.Nodes {
		if n.Rack != j/5 || n.Slot != j%5 {
			t.Fatalf("node %d rack/slot = %d/%d", j, n.Rack, n.Slot)
		}
		if n.Label != model.NodeLabel(j%5) {
			t.Fatalf("node %d label = %v", j, n.Label)
		}
		if n.HotAisle != (j/5)%2 {
			t.Fatalf("node %d hot aisle = %d", j, n.HotAisle)
		}
	}
	// CRAC flows sum to node flows.
	nodeFlow := 0.0
	for j := range dc.Nodes {
		nodeFlow += dc.NodeType(j).AirFlow
	}
	cracFlow := dc.CRACs[0].Flow + dc.CRACs[1].Flow
	if math.Abs(cracFlow-nodeFlow) > 1e-9 {
		t.Errorf("CRAC flow %g != node flow %g", cracFlow, nodeFlow)
	}
}

func TestArrangeTallRackClampsLabel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NodesPerRack = 8
	dc := buildDC(t, 1, 8, cfg)
	if dc.Nodes[7].Label != model.LabelE || dc.Nodes[5].Label != model.LabelE {
		t.Error("slots above E should clamp to label E")
	}
	if dc.Nodes[4].Label != model.LabelE {
		t.Error("slot 4 should be E")
	}
	if dc.Nodes[3].Label != model.LabelD {
		t.Error("slot 3 should be D")
	}
}

func TestMMatrix(t *testing.T) {
	m := MMatrix(3, 0.7)
	for i := range m {
		sum := 0.0
		for j := range m[i] {
			sum += m[i][j]
			if i == j && m[i][j] != 0.7 {
				t.Errorf("M[%d][%d] = %g, want 0.7", i, j, m[i][j])
			}
			if i != j && math.Abs(m[i][j]-0.15) > 1e-12 {
				t.Errorf("M[%d][%d] = %g, want 0.15", i, j, m[i][j])
			}
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("M row %d sums to %g", i, sum)
		}
	}
	single := MMatrix(1, 0.7)
	if single[0][0] != 1 {
		t.Errorf("single-CRAC M = %v, want [[1]]", single)
	}
}

func TestGenerateAlphaSatisfiesAppendixB(t *testing.T) {
	cfg := DefaultConfig()
	dc := buildDC(t, 2, 20, cfg)
	rng := stats.NewRand(1)
	if err := GenerateAlpha(dc, cfg, rng); err != nil {
		t.Fatalf("GenerateAlpha: %v", err)
	}
	if err := dc.Validate(); err != nil {
		t.Fatalf("generated DC invalid: %v", err)
	}
	n := dc.NumThermal()
	flows := dc.Flows()
	// Constraint 1: row sums 1 (checked by Validate too, but explicit).
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			sum += dc.Alpha[i][j]
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Errorf("row %d sums to %g", i, sum)
		}
	}
	// Constraint 2: inflow balance.
	for j := 0; j < n; j++ {
		in := 0.0
		for i := 0; i < n; i++ {
			in += dc.Alpha[i][j] * flows[i]
		}
		if math.Abs(in-flows[j]) > 1e-5 {
			t.Errorf("destination %d inflow %g, want %g", j, in, flows[j])
		}
	}
	// Constraints 3/4: EC within Table-II ranges, biased to facing CRAC.
	ncrac := dc.NCRAC()
	for j, node := range dc.Nodes {
		ec := 0.0
		for c := 0; c < ncrac; c++ {
			ec += dc.Alpha[ncrac+j][c]
		}
		lo, hi := ECRange[node.Label][0], ECRange[node.Label][1]
		if ec < lo-1e-6 || ec > hi+1e-6 {
			t.Errorf("node %d (label %v) EC = %g outside [%g, %g]", j, node.Label, ec, lo, hi)
		}
		facing := dc.Alpha[ncrac+j][node.HotAisle]
		other := dc.Alpha[ncrac+j][1-node.HotAisle]
		if facing <= other {
			t.Errorf("node %d EC not biased to facing CRAC: %g vs %g", j, facing, other)
		}
	}
	// Constraint 5 (flow-weighted RC).
	for j, node := range dc.Nodes {
		rc := 0.0
		for i := 0; i < dc.NCN(); i++ {
			rc += dc.Alpha[ncrac+i][ncrac+j] * flows[ncrac+i]
		}
		rc /= flows[ncrac+j]
		lo, hi := RCRange[node.Label][0], RCRange[node.Label][1]
		if rc < lo-1e-6 || rc > hi+1e-6 {
			t.Errorf("node %d (label %v) RC = %g outside [%g, %g]", j, node.Label, rc, lo, hi)
		}
	}
}

func TestGenerateAlphaFeedsThermalModel(t *testing.T) {
	cfg := DefaultConfig()
	dc := buildDC(t, 2, 20, cfg)
	if err := GenerateAlpha(dc, cfg, stats.NewRand(3)); err != nil {
		t.Fatal(err)
	}
	m, err := thermal.New(dc)
	if err != nil {
		t.Fatalf("thermal model rejected generated alpha: %v", err)
	}
	// Physically sensible: powering nodes raises CRAC inlets above the
	// uniform outlet temperature.
	cracOut := []float64{15, 15}
	pcn := make([]float64, dc.NCN())
	for j := range pcn {
		pcn[j] = 0.5
	}
	tin := m.InletTemps(cracOut, pcn)
	for c := 0; c < dc.NCRAC(); c++ {
		if tin[c] <= 15 {
			t.Errorf("CRAC %d inlet %g not above outlet", c, tin[c])
		}
	}
}

func TestGenerateAlphaVariesWithSeed(t *testing.T) {
	cfg := DefaultConfig()
	a := buildDC(t, 2, 10, cfg)
	b := buildDC(t, 2, 10, cfg)
	if err := GenerateAlpha(a, cfg, stats.NewRand(1)); err != nil {
		t.Fatal(err)
	}
	if err := GenerateAlpha(b, cfg, stats.NewRand(2)); err != nil {
		t.Fatal(err)
	}
	diff := 0.0
	for i := range a.Alpha {
		for j := range a.Alpha[i] {
			diff += math.Abs(a.Alpha[i][j] - b.Alpha[i][j])
		}
	}
	if diff < 1e-6 {
		t.Error("different seeds produced identical alpha matrices")
	}
}

func TestGenerateAlphaDeterministicPerSeed(t *testing.T) {
	cfg := DefaultConfig()
	a := buildDC(t, 2, 10, cfg)
	b := buildDC(t, 2, 10, cfg)
	if err := GenerateAlpha(a, cfg, stats.NewRand(7)); err != nil {
		t.Fatal(err)
	}
	if err := GenerateAlpha(b, cfg, stats.NewRand(7)); err != nil {
		t.Fatal(err)
	}
	for i := range a.Alpha {
		for j := range a.Alpha[i] {
			if a.Alpha[i][j] != b.Alpha[i][j] {
				t.Fatal("same seed produced different alpha")
			}
		}
	}
}

func TestGenerateAlphaRelaxesPartialRack(t *testing.T) {
	// Two nodes (labels A, B only) are infeasible under strict Table II:
	// they must shed 60-70% of their air to each other but may accept at
	// most 10-20%. The relaxation path must still produce a valid matrix.
	cfg := DefaultConfig()
	dc := buildDC(t, 1, 2, cfg)
	if err := GenerateAlpha(dc, cfg, stats.NewRand(1)); err != nil {
		t.Fatalf("relaxed generation failed: %v", err)
	}
	if err := dc.Validate(); err != nil {
		t.Fatalf("relaxed alpha invalid: %v", err)
	}
}

func TestGenerateAlphaStrictFailsWithoutRelaxation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxRelaxations = 0
	dc := buildDC(t, 1, 2, cfg)
	if err := GenerateAlpha(dc, cfg, stats.NewRand(1)); err == nil {
		t.Fatal("expected infeasibility for a 2-node rack with strict Table-II ranges")
	}
}

func TestPaperScaleGeneration(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale alpha generation in -short mode")
	}
	cfg := DefaultConfig()
	dc := buildDC(t, 3, 150, cfg)
	if err := GenerateAlpha(dc, cfg, stats.NewRand(42)); err != nil {
		t.Fatalf("paper-scale GenerateAlpha: %v", err)
	}
	if err := dc.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := thermal.New(dc); err != nil {
		t.Fatalf("thermal model: %v", err)
	}
}

func BenchmarkGenerateAlphaPaperScale(b *testing.B) {
	cfg := DefaultConfig()
	dc := buildDC(b, 3, 150, cfg)
	rng := stats.NewRand(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := GenerateAlpha(dc, cfg, rng); err != nil {
			b.Fatal(err)
		}
	}
}
