package power_test

import (
	"fmt"

	"thermaldc/internal/power"
)

// Example derives the paper's node-type-1 P-state powers from the
// Appendix-A CMOS model with a 30% static share.
func Example() {
	core := power.CoreModel{
		FreqMHz:     []float64{2500, 2100, 1700, 800},
		Voltage:     []float64{1.325, 1.25, 1.175, 1.025},
		P0Power:     0.01375,
		StaticShare: 0.3,
	}
	for k := range core.FreqMHz {
		fmt.Printf("π_%d = %.5f kW\n", k, core.PStatePower(k))
	}
	// Output:
	// π_0 = 0.01375 kW
	// π_1 = 0.01109 kW
	// π_2 = 0.00881 kW
	// π_3 = 0.00503 kW
}

// ExampleCoP evaluates the HP Utility Data Center CoP curve (Equation 8):
// warmer outlet air is cheaper to produce.
func ExampleCoP() {
	fmt.Printf("CoP(15) = %.3f, CoP(25) = %.3f\n", power.CoP(15), power.CoP(25))
	// Output:
	// CoP(15) = 2.000, CoP(25) = 4.728
}
