package power

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// opteron returns the paper's node-type-1 core (AMD Opteron 8381 HE,
// Table I and Appendix A).
func opteron(staticShare float64) *CoreModel {
	return &CoreModel{
		FreqMHz:     []float64{2500, 2100, 1700, 800},
		Voltage:     []float64{1.325, 1.25, 1.175, 1.025},
		P0Power:     0.01375,
		StaticShare: staticShare,
	}
}

// xeon returns the paper's node-type-2 core (Intel Xeon X7560).
func xeon(staticShare float64) *CoreModel {
	return &CoreModel{
		FreqMHz:     []float64{2666, 2200, 1700, 1000},
		Voltage:     []float64{1.35, 1.268, 1.18, 1.056},
		P0Power:     0.01625,
		StaticShare: staticShare,
	}
}

func TestCoPPaperValues(t *testing.T) {
	// Equation 8 at a few outlet temperatures.
	cases := []struct{ tau, want float64 }{
		{0, 0.458},
		{10, 0.0068*100 + 0.008 + 0.458},
		{25, 0.0068*625 + 0.02 + 0.458},
	}
	for _, c := range cases {
		if got := CoP(c.tau); !approx(got, c.want, 1e-12) {
			t.Errorf("CoP(%g) = %g, want %g", c.tau, got, c.want)
		}
	}
	// CoP improves with warmer outlet air (less aggressive cooling).
	if CoP(25) <= CoP(15) {
		t.Error("CoP should increase with outlet temperature")
	}
}

func TestHeatRemovedAndCRACPower(t *testing.T) {
	// No heat to remove when inlet ≤ outlet.
	if HeatRemoved(10, 15, 15) != 0 || HeatRemoved(10, 14, 15) != 0 {
		t.Error("HeatRemoved should be 0 when tin <= tout")
	}
	if CRACPower(10, 14, 15) != 0 {
		t.Error("CRACPower should be 0 when tin <= tout")
	}
	// Removing heat: ρ·Cp·F·ΔT.
	got := HeatRemoved(2, 30, 20)
	want := RhoCp * 2 * 10
	if !approx(got, want, 1e-12) {
		t.Errorf("HeatRemoved = %g, want %g", got, want)
	}
	if p := CRACPower(2, 30, 20); !approx(p, want/CoP(20), 1e-12) {
		t.Errorf("CRACPower = %g, want %g", p, want/CoP(20))
	}
}

func TestOutletTempPaperExample(t *testing.T) {
	// Appendix A: node type 1 at max power 0.793 kW with 0.07 m³/s flow
	// heats air by 9.4 °C.
	rise := OutletTemp(20, 0.793, 0.07) - 20
	if !approx(rise, 9.4, 0.05) {
		t.Errorf("temperature rise = %g, want ≈9.4", rise)
	}
}

func TestCoreModelValidate(t *testing.T) {
	if err := opteron(0.3).Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	bad := []*CoreModel{
		{},
		{FreqMHz: []float64{100}, Voltage: []float64{1, 1}, P0Power: 1},
		{FreqMHz: []float64{100, 200}, Voltage: []float64{1, 1}, P0Power: 1},           // increasing freq
		{FreqMHz: []float64{100}, Voltage: []float64{-1}, P0Power: 1},                  // bad voltage
		{FreqMHz: []float64{100}, Voltage: []float64{1}, P0Power: 0},                   // bad power
		{FreqMHz: []float64{100}, Voltage: []float64{1}, P0Power: 1, StaticShare: 1.0}, // bad share
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
}

func TestPStatePowerAnchorsAtP0(t *testing.T) {
	for _, share := range []float64{0.2, 0.3} {
		for _, m := range []*CoreModel{opteron(share), xeon(share)} {
			if got := m.PStatePower(0); !approx(got, m.P0Power, 1e-15) {
				t.Errorf("P0 power = %g, want %g", got, m.P0Power)
			}
		}
	}
}

func TestPStatePowersDecreaseAndEndAtZero(t *testing.T) {
	m := opteron(0.3)
	ps := m.PStatePowers()
	if len(ps) != 5 {
		t.Fatalf("got %d P-state powers, want 5 (4 real + off)", len(ps))
	}
	for k := 1; k < len(ps); k++ {
		if ps[k] >= ps[k-1] {
			t.Errorf("P-state power not decreasing: π_%d=%g, π_%d=%g", k-1, ps[k-1], k, ps[k])
		}
	}
	if ps[4] != 0 {
		t.Errorf("turned-off power = %g, want 0", ps[4])
	}
}

func TestStaticShareSplit(t *testing.T) {
	m := opteron(0.3)
	sc, beta := m.Coefficients()
	// Reconstruct P0: dynamic + static must equal P0Power with the split.
	stat := beta * m.Voltage[0]
	dyn := sc * m.FreqMHz[0] * m.Voltage[0] * m.Voltage[0]
	if !approx(stat, 0.3*m.P0Power, 1e-15) {
		t.Errorf("static at P0 = %g, want %g", stat, 0.3*m.P0Power)
	}
	if !approx(stat+dyn, m.P0Power, 1e-15) {
		t.Errorf("static+dynamic = %g, want %g", stat+dyn, m.P0Power)
	}
	if got := m.StaticFraction(0); !approx(got, 0.3, 1e-12) {
		t.Errorf("StaticFraction(0) = %g, want 0.3", got)
	}
}

func TestStaticFractionGrowsWithPState(t *testing.T) {
	// The paper's Figure-6 discussion: higher P-states have a higher
	// static share, making their performance/power ratio relatively worse
	// as the P0 static share rises.
	for _, m := range []*CoreModel{opteron(0.3), xeon(0.2)} {
		prev := m.StaticFraction(0)
		for k := 1; k < len(m.FreqMHz); k++ {
			f := m.StaticFraction(k)
			if f <= prev {
				t.Errorf("static fraction not increasing at P-state %d: %g <= %g", k, f, prev)
			}
			prev = f
		}
	}
}

// Property: frequency-per-watt at P-state 0 relative to other P-states
// flips as the static share grows — with a large static share, P-state 0
// becomes relatively more attractive.
func TestPerfPerWattShiftsWithStaticShare(t *testing.T) {
	ratio := func(m *CoreModel, k int) float64 {
		return m.FreqMHz[k] / m.PStatePower(k)
	}
	low := opteron(0.05)  // almost all dynamic
	high := opteron(0.45) // large static share
	// Normalized advantage of a mid P-state over P0.
	advLow := ratio(low, 2) / ratio(low, 0)
	advHigh := ratio(high, 2) / ratio(high, 0)
	if advHigh >= advLow {
		t.Errorf("P-state 2 advantage should shrink with static share: low=%g high=%g", advLow, advHigh)
	}
}

// Property: PStatePower is always positive and bounded by P0 power for
// every valid model derived from the paper's two cores.
func TestPStatePowerBoundsProperty(t *testing.T) {
	f := func(shareRaw uint8) bool {
		share := float64(shareRaw%90) / 100.0
		for _, m := range []*CoreModel{opteron(share), xeon(share)} {
			for k := range m.FreqMHz {
				p := m.PStatePower(k)
				if p <= 0 || p > m.P0Power+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
