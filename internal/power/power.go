// Package power implements the paper's power physics: the Appendix-A CMOS
// core power model that derives per-P-state core powers from data-sheet
// frequencies/voltages and a static-power share, and the CRAC model of
// Section III.E (heat removal, Coefficient of Performance, CRAC power).
//
// Units follow the paper's Appendix A: power in kW, air flow in m³/s,
// temperatures in °C, air density 1.205 kg/m³ and specific heat capacity
// 1 kJ/(kg·°C), so that a 0.793 kW node with 0.07 m³/s flow heats its air
// by 9.4 °C as the paper states.
package power

import "fmt"

// Physical constants assumed by the paper (Appendix A).
const (
	// AirDensity ρ in kg/m³.
	AirDensity = 1.205
	// AirSpecificHeat Cp in kJ/(kg·°C).
	AirSpecificHeat = 1.0
)

// RhoCp is the ρ·Cp product that converts (flow × ΔT) into kW.
const RhoCp = AirDensity * AirSpecificHeat

// CoP is the Coefficient of Performance of a CRAC unit as a function of
// its outlet temperature τ in °C, measured at the HP Labs Utility Data
// Center (paper Equation 8):
//
//	CoP(τ) = 0.0068·τ² + 0.0008·τ + 0.458
func CoP(tau float64) float64 {
	return 0.0068*tau*tau + 0.0008*tau + 0.458
}

// HeatRemoved returns the heat (kW) a CRAC with the given air flow (m³/s)
// removes when cooling air from tin to tout °C (paper Equation 2). It is 0
// when tin ≤ tout (nothing to remove).
func HeatRemoved(flow, tin, tout float64) float64 {
	if tin <= tout {
		return 0
	}
	return RhoCp * flow * (tin - tout)
}

// CRACPower returns the power (kW) consumed by a CRAC unit with the given
// flow when cooling air from tin to tout (paper Equation 3): heat removed
// divided by CoP(tout).
func CRACPower(flow, tin, tout float64) float64 {
	h := HeatRemoved(flow, tin, tout)
	if h == 0 {
		return 0
	}
	return h / CoP(tout)
}

// OutletTemp returns the node outlet air temperature for a node consuming
// pcn kW with inlet temperature tin and air flow rate flow (paper
// Equation 4).
func OutletTemp(tin, pcn, flow float64) float64 {
	return tin + pcn/(RhoCp*flow)
}

// CoreModel captures the Appendix-A description of one core type: the
// per-P-state frequencies and supply voltages from the data sheet, the
// measured P-state-0 power, and the assumed fraction of that power that is
// static. From these it derives every P-state's power via
//
//	π_k = SC·f_k·V_k² + β·V_k
//
// where β·V_0 is the static share of π_0 and SC·f_0·V_0² the dynamic rest.
type CoreModel struct {
	// FreqMHz and Voltage list the real P-states, lowest index = P-state 0
	// (highest frequency). Both must have the same length ≥ 1.
	FreqMHz []float64
	Voltage []float64
	// P0Power is the measured total core power at P-state 0 in kW.
	P0Power float64
	// StaticShare is the fraction of P0Power that is static (leakage).
	StaticShare float64
}

// Validate checks the model for internal consistency.
func (m *CoreModel) Validate() error {
	if len(m.FreqMHz) == 0 {
		return fmt.Errorf("power: core model needs at least one P-state")
	}
	if len(m.FreqMHz) != len(m.Voltage) {
		return fmt.Errorf("power: %d frequencies but %d voltages", len(m.FreqMHz), len(m.Voltage))
	}
	for k := 1; k < len(m.FreqMHz); k++ {
		if m.FreqMHz[k] > m.FreqMHz[k-1] {
			return fmt.Errorf("power: P-state %d frequency %g exceeds P-state %d frequency %g",
				k, m.FreqMHz[k], k-1, m.FreqMHz[k-1])
		}
	}
	for k, v := range m.Voltage {
		if v <= 0 {
			return fmt.Errorf("power: P-state %d has non-positive voltage %g", k, v)
		}
		if m.FreqMHz[k] <= 0 {
			return fmt.Errorf("power: P-state %d has non-positive frequency %g", k, m.FreqMHz[k])
		}
	}
	if m.P0Power <= 0 {
		return fmt.Errorf("power: P0 power must be positive, got %g", m.P0Power)
	}
	if m.StaticShare < 0 || m.StaticShare >= 1 {
		return fmt.Errorf("power: static share must be in [0, 1), got %g", m.StaticShare)
	}
	return nil
}

// Coefficients returns the derived constants SC = S·C_L (switching
// capacitance factor) and β (static-power coefficient) of Equation 23.
func (m *CoreModel) Coefficients() (sc, beta float64) {
	f0, v0 := m.FreqMHz[0], m.Voltage[0]
	beta = m.StaticShare * m.P0Power / v0
	sc = (1 - m.StaticShare) * m.P0Power / (f0 * v0 * v0)
	return sc, beta
}

// PStatePower returns the power of P-state k in kW (Equation 23).
func (m *CoreModel) PStatePower(k int) float64 {
	sc, beta := m.Coefficients()
	return sc*m.FreqMHz[k]*m.Voltage[k]*m.Voltage[k] + beta*m.Voltage[k]
}

// PStatePowers returns the power of every real P-state in kW, plus a final
// 0 entry for the turned-off state the paper appends as P-state η.
func (m *CoreModel) PStatePowers() []float64 {
	out := make([]float64, len(m.FreqMHz)+1)
	for k := range m.FreqMHz {
		out[k] = m.PStatePower(k)
	}
	// out[len] stays 0: the turned-off P-state.
	return out
}

// StaticFraction returns the static share of P-state k's total power.
// Higher P-state indices (lower voltage/frequency) have larger static
// shares, which is why P-state 0 can still have the best
// performance/power ratio when the share at P-state 0 is low.
func (m *CoreModel) StaticFraction(k int) float64 {
	sc, beta := m.Coefficients()
	static := beta * m.Voltage[k]
	dynamic := sc * m.FreqMHz[k] * m.Voltage[k] * m.Voltage[k]
	return static / (static + dynamic)
}
