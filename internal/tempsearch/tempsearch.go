// Package tempsearch finds good CRAC outlet-temperature vectors by
// discretized search. The paper's Stage-1 problem and the Equation-21
// baseline are NLPs only because CRAC power depends nonlinearly on the
// outlet temperatures; with the outlets fixed they become LPs. Section
// V.B.2 proposes a discretized search at 1 °C granularity, refined
// coarse-to-fine to avoid the exponential blowup in the number of CRAC
// units — exactly what this package implements, plus an exhaustive grid
// and a coordinate-descent variant for ablations.
package tempsearch

import (
	"fmt"
	"math"
)

// Objective evaluates one outlet-temperature vector and reports its value
// and whether the configuration is feasible. Higher values are better
// (callers maximizing reward pass their objective directly; power
// minimizers pass the negated power).
type Objective func(cracOut []float64) (value float64, feasible bool)

// Config bounds and discretizes the search.
type Config struct {
	// Lo and Hi bound every CRAC outlet temperature in °C.
	Lo, Hi float64
	// CoarseStep is the first-pass granularity in °C.
	CoarseStep float64
	// FineStep is the final granularity in °C (paper: 1 °C).
	FineStep float64
}

// DefaultConfig returns the search window used by the experiments:
// outlets in [5, 25] °C, coarse 5 °C pass refined down to 1 °C.
func DefaultConfig() Config {
	return Config{Lo: 5, Hi: 25, CoarseStep: 5, FineStep: 1}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Hi < c.Lo {
		return fmt.Errorf("tempsearch: Hi %g < Lo %g", c.Hi, c.Lo)
	}
	if c.CoarseStep <= 0 || c.FineStep <= 0 {
		return fmt.Errorf("tempsearch: steps must be positive")
	}
	if c.FineStep > c.CoarseStep {
		return fmt.Errorf("tempsearch: FineStep %g > CoarseStep %g", c.FineStep, c.CoarseStep)
	}
	return nil
}

// Result is the outcome of a search.
type Result struct {
	// Out is the best outlet-temperature vector found.
	Out []float64
	// Value is the objective at Out.
	Value float64
	// Evals counts objective evaluations.
	Evals int
}

// Grid exhaustively evaluates the lattice with the given step and returns
// the best feasible point. It is exponential in the number of CRACs and
// exists as the ground truth for ablations on small instances.
func Grid(ncrac int, cfg Config, step float64, eval Objective) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	levels := latticeLevels(cfg.Lo, cfg.Hi, step)
	best := Result{Value: math.Inf(-1)}
	out := make([]float64, ncrac)
	var walk func(i int)
	walk = func(i int) {
		if i == ncrac {
			v, ok := eval(out)
			best.Evals++
			if ok && v > best.Value {
				best.Value = v
				best.Out = append(best.Out[:0], out...)
			}
			return
		}
		for _, t := range levels {
			out[i] = t
			walk(i + 1)
		}
	}
	walk(0)
	if best.Out == nil {
		return best, fmt.Errorf("tempsearch: no feasible outlet assignment on the grid")
	}
	return best, nil
}

// CoarseToFine implements the paper's multi-step search: a coarse lattice
// pass over the full window, then repeated refinement around the incumbent
// with the step halved until FineStep is reached.
func CoarseToFine(ncrac int, cfg Config, eval Objective) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	res, err := Grid(ncrac, cfg, cfg.CoarseStep, eval)
	if err != nil {
		return res, err
	}
	step := cfg.CoarseStep
	for step > cfg.FineStep {
		next := step / 2
		if next < cfg.FineStep {
			next = cfg.FineStep
		}
		// Refine ±next around the incumbent on the finer lattice (3 levels
		// per CRAC per round keeps the eval count linear in the number of
		// rounds instead of exponential in the refinement ratio).
		sub := Config{
			Lo:         cfg.Lo,
			Hi:         cfg.Hi,
			CoarseStep: next,
			FineStep:   next,
		}
		improved, err := gridAround(ncrac, sub, res.Out, next, next, eval)
		if err == nil {
			improved.Evals += res.Evals
			if improved.Value >= res.Value {
				res = improved
			} else {
				res.Evals = improved.Evals
			}
		}
		step = next
	}
	return res, nil
}

// gridAround evaluates the lattice of the given step within ±radius of
// center, clamped to [cfg.Lo, cfg.Hi].
func gridAround(ncrac int, cfg Config, center []float64, radius, step float64, eval Objective) (Result, error) {
	best := Result{Value: math.Inf(-1)}
	out := make([]float64, ncrac)
	var walk func(i int)
	walk = func(i int) {
		if i == ncrac {
			v, ok := eval(out)
			best.Evals++
			if ok && v > best.Value {
				best.Value = v
				best.Out = append(best.Out[:0], out...)
			}
			return
		}
		lo := math.Max(cfg.Lo, center[i]-radius)
		hi := math.Min(cfg.Hi, center[i]+radius)
		for _, t := range latticeLevels(lo, hi, step) {
			out[i] = t
			walk(i + 1)
		}
	}
	walk(0)
	if best.Out == nil {
		return best, fmt.Errorf("tempsearch: no feasible point in refinement window")
	}
	return best, nil
}

// CoordinateDescent optimizes one CRAC outlet at a time on the FineStep
// lattice, sweeping until no coordinate improves. It is the cheapest
// strategy and the paper-scale default ablation point.
func CoordinateDescent(ncrac int, cfg Config, start []float64, eval Objective) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	out := make([]float64, ncrac)
	if start != nil {
		copy(out, start)
	} else {
		for i := range out {
			out[i] = (cfg.Lo + cfg.Hi) / 2
		}
	}
	res := Result{Value: math.Inf(-1)}
	if v, ok := eval(out); ok {
		res.Value = v
		res.Out = append([]float64(nil), out...)
	}
	res.Evals = 1
	levels := latticeLevels(cfg.Lo, cfg.Hi, cfg.FineStep)
	for sweep := 0; sweep < 50; sweep++ {
		improved := false
		for i := 0; i < ncrac; i++ {
			savedVal := out[i]
			bestT, bestV := savedVal, res.Value
			for _, t := range levels {
				out[i] = t
				v, ok := eval(out)
				res.Evals++
				if ok && v > bestV {
					bestT, bestV = t, v
				}
			}
			out[i] = bestT
			if bestV > res.Value {
				res.Value = bestV
				res.Out = append(res.Out[:0], out...)
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	if res.Out == nil {
		return res, fmt.Errorf("tempsearch: coordinate descent found no feasible point")
	}
	return res, nil
}

// latticeLevels returns lo, lo+step, ..., hi (hi always included).
func latticeLevels(lo, hi, step float64) []float64 {
	var out []float64
	for t := lo; t < hi+1e-9; t += step {
		out = append(out, math.Min(t, hi))
	}
	if len(out) == 0 || out[len(out)-1] < hi-1e-9 {
		out = append(out, hi)
	}
	return out
}
