// Package tempsearch finds good CRAC outlet-temperature vectors by
// discretized search. The paper's Stage-1 problem and the Equation-21
// baseline are NLPs only because CRAC power depends nonlinearly on the
// outlet temperatures; with the outlets fixed they become LPs. Section
// V.B.2 proposes a discretized search at 1 °C granularity, refined
// coarse-to-fine to avoid the exponential blowup in the number of CRAC
// units — exactly what this package implements, plus an exhaustive grid
// and a coordinate-descent variant for ablations.
//
// Searches enumerate each lattice (or refinement window) into a candidate
// slice and batch-evaluate it over a bounded worker pool
// (Config.Parallelism). Results are deterministic regardless of worker
// count: every candidate is evaluated independently and the reduction
// breaks objective ties toward the lexicographically smallest vector,
// which is exactly the point the historical serial scan (lexicographic
// enumeration, strict improvement) would have kept. A memoization layer
// keyed on the quantized outlet vector guarantees coarse-to-fine
// refinement rounds never re-evaluate a lattice point.
package tempsearch

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"

	"thermaldc/internal/telemetry"
)

// Objective evaluates one outlet-temperature vector and reports its value
// and whether the configuration is feasible. Higher values are better
// (callers maximizing reward pass their objective directly; power
// minimizers pass the negated power). An Objective must be deterministic:
// the same vector must always produce the same (value, feasible) pair.
type Objective func(cracOut []float64) (value float64, feasible bool)

// Factory creates one Objective per search worker. Searches call it once
// per worker; Objectives returned by distinct calls may be invoked
// concurrently, so any mutable evaluation state (e.g. an incremental LP
// solver) must be owned by the returned closure, not shared.
type Factory func() Objective

// Shared adapts a single Objective into a Factory handing the same
// Objective to every worker. Use it only when eval is safe for concurrent
// use (pure functions of the candidate vector and read-only captures).
func Shared(eval Objective) Factory {
	return func() Objective { return eval }
}

// ErrNoFeasible reports that no evaluated lattice point was feasible.
// Searches wrap it with context; callers distinguish an infeasible search
// window from configuration errors via errors.Is(err, ErrNoFeasible).
var ErrNoFeasible = errors.New("no feasible point")

// Config bounds and discretizes the search.
type Config struct {
	// Lo and Hi bound every CRAC outlet temperature in °C.
	Lo, Hi float64
	// CoarseStep is the first-pass granularity in °C.
	CoarseStep float64
	// FineStep is the final granularity in °C (paper: 1 °C).
	FineStep float64
	// Parallelism bounds the candidate-evaluation worker pool: 0 uses
	// GOMAXPROCS, 1 evaluates serially, and any request larger than
	// GOMAXPROCS is clamped down to it (see Workers) — extra workers on an
	// oversubscribed host only add scheduling overhead and once made
	// "parallel" searches lose to serial ones on small machines. Results
	// are identical for every setting.
	Parallelism int
	// Trace, when non-nil, records one telemetry.SpanCandidate span per
	// objective evaluation (label = worker index, Err = 1 for infeasible
	// candidates). Nil leaves evaluations on the untraced fast path and is
	// ignored by Validate.
	Trace *telemetry.Tracer
}

// DefaultConfig returns the search window used by the experiments:
// outlets in [5, 25] °C, coarse 5 °C pass refined down to 1 °C, with the
// worker pool sized to the machine.
func DefaultConfig() Config {
	return Config{Lo: 5, Hi: 25, CoarseStep: 5, FineStep: 1}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Hi < c.Lo {
		return fmt.Errorf("tempsearch: Hi %g < Lo %g", c.Hi, c.Lo)
	}
	if c.CoarseStep <= 0 || c.FineStep <= 0 {
		return fmt.Errorf("tempsearch: steps must be positive")
	}
	if c.FineStep > c.CoarseStep {
		return fmt.Errorf("tempsearch: FineStep %g > CoarseStep %g", c.FineStep, c.CoarseStep)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("tempsearch: Parallelism must be >= 0, got %d", c.Parallelism)
	}
	return nil
}

func (c Config) workers() int { return Workers(c.Parallelism) }

// Workers is the worker-count policy shared by every fan-out in the solve
// pipeline (candidate searches here, per-zone LP fan-outs in
// internal/zones): a requested parallelism of 0 means "use the machine"
// and any positive request is clamped to runtime.GOMAXPROCS(0), so a
// worker pool never holds more runnable goroutines than the scheduler has
// processors. The clamp auto-degrades parallel configurations to the
// serial path on single-CPU hosts, where extra workers can only lose.
func Workers(requested int) int {
	max := runtime.GOMAXPROCS(0)
	if requested > 0 && requested < max {
		return requested
	}
	return max
}

// Result is the outcome of a search.
type Result struct {
	// Out is the best outlet-temperature vector found.
	Out []float64
	// Value is the objective at Out.
	Value float64
	// Evals counts objective evaluations (memoized hits are not
	// re-evaluated and therefore not re-counted).
	Evals int
}

// Grid exhaustively evaluates the lattice with the given step and returns
// the best feasible point. It is exponential in the number of CRACs and
// exists as the ground truth for ablations on small instances.
func Grid(ncrac int, cfg Config, step float64, newEval Factory) (Result, error) {
	return GridContext(context.Background(), ncrac, cfg, step, newEval)
}

// GridContext is Grid under cooperative cancellation: a done context stops
// the worker pool between candidate evaluations and returns an error
// matching ctx.Err() via errors.Is. Uncancelled runs return exactly what
// Grid returns.
func GridContext(ctx context.Context, ncrac int, cfg Config, step float64, newEval Factory) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	s := newSearcher(ctx, ncrac, cfg, newEval)
	return s.grid(step)
}

// CoarseToFine implements the paper's multi-step search: a coarse lattice
// pass over the full window, then repeated refinement around the incumbent
// with the step halved until FineStep is reached. Lattice points shared
// between rounds are evaluated once (memoized), and Evals counts every
// actual evaluation including those of refinement rounds.
func CoarseToFine(ncrac int, cfg Config, newEval Factory) (Result, error) {
	return CoarseToFineContext(context.Background(), ncrac, cfg, newEval)
}

// CoarseToFineContext is CoarseToFine under cooperative cancellation (see
// GridContext).
func CoarseToFineContext(ctx context.Context, ncrac int, cfg Config, newEval Factory) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	s := newSearcher(ctx, ncrac, cfg, newEval)
	res, err := s.grid(cfg.CoarseStep)
	if err != nil {
		return res, err
	}
	step := cfg.CoarseStep
	for step > cfg.FineStep {
		next := step / 2
		if next < cfg.FineStep {
			next = cfg.FineStep
		}
		// Refine ±next around the incumbent on the finer lattice (3 levels
		// per CRAC per round keeps the eval count linear in the number of
		// rounds instead of exponential in the refinement ratio).
		cands := s.window(res.Out, next, next)
		idx, v, ok, err := s.batch(cands)
		res.Evals = s.evals // exact accounting even when the window fails
		if err != nil {
			return res, err
		}
		if ok && v >= res.Value {
			res.Out = append(res.Out[:0], cands[idx]...)
			res.Value = v
		}
		// !ok cannot happen with a deterministic objective — the incumbent
		// is itself a window point and memoized feasible — so an infeasible
		// window simply keeps the incumbent instead of discarding the
		// search (the historical code dropped both the error and the
		// refinement eval count here).
		step = next
	}
	return res, nil
}

// CoordinateDescent optimizes one CRAC outlet at a time on the FineStep
// lattice, sweeping until no coordinate improves. It is the cheapest
// strategy and the paper-scale default ablation point. The sweep order is
// inherently sequential, so it runs on a single worker.
func CoordinateDescent(ncrac int, cfg Config, start []float64, newEval Factory) (Result, error) {
	return CoordinateDescentContext(context.Background(), ncrac, cfg, start, newEval)
}

// CoordinateDescentContext is CoordinateDescent under cooperative
// cancellation: the context is checked before every coordinate scan.
func CoordinateDescentContext(ctx context.Context, ncrac int, cfg Config, start []float64, newEval Factory) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	eval := newEval()
	out := make([]float64, ncrac)
	if start != nil {
		copy(out, start)
	} else {
		for i := range out {
			out[i] = (cfg.Lo + cfg.Hi) / 2
		}
	}
	res := Result{Value: math.Inf(-1)}
	if v, ok := eval(out); ok {
		res.Value = v
		res.Out = append([]float64(nil), out...)
	}
	res.Evals = 1
	levels := latticeLevels(cfg.Lo, cfg.Hi, cfg.FineStep)
	for sweep := 0; sweep < 50; sweep++ {
		improved := false
		for i := 0; i < ncrac; i++ {
			if err := ctx.Err(); err != nil {
				return res, fmt.Errorf("tempsearch: coordinate descent canceled: %w", err)
			}
			savedVal := out[i]
			bestT, bestV := savedVal, res.Value
			for _, t := range levels {
				out[i] = t
				v, ok := eval(out)
				res.Evals++
				if ok && v > bestV {
					bestT, bestV = t, v
				}
			}
			out[i] = bestT
			if bestV > res.Value {
				res.Value = bestV
				res.Out = append(res.Out[:0], out...)
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	if res.Out == nil {
		return res, fmt.Errorf("tempsearch: coordinate descent found no feasible point: %w", ErrNoFeasible)
	}
	return res, nil
}

// memoEntry caches one evaluated lattice point.
type memoEntry struct {
	value    float64
	feasible bool
}

// searcher owns the evaluation machinery of one search call: the memo
// table, the eval counter, one Objective per worker, and the context that
// can cancel the whole search between evaluations.
type searcher struct {
	ctx     context.Context
	ncrac   int
	cfg     Config
	factory Factory
	objs    []Objective
	memo    map[string]memoEntry
	evals   int
	keyBuf  []byte
}

func newSearcher(ctx context.Context, ncrac int, cfg Config, newEval Factory) *searcher {
	return &searcher{
		ctx:     ctx,
		ncrac:   ncrac,
		cfg:     cfg,
		factory: newEval,
		memo:    make(map[string]memoEntry),
	}
}

// key quantizes an outlet vector to 1e-6 °C and encodes it as a memo key;
// every lattice this package generates is far coarser than the quantum.
func (s *searcher) key(out []float64) string {
	b := s.keyBuf[:0]
	for _, t := range out {
		q := uint64(int64(math.Round(t * 1e6)))
		b = append(b, byte(q), byte(q>>8), byte(q>>16), byte(q>>24),
			byte(q>>32), byte(q>>40), byte(q>>48), byte(q>>56))
	}
	s.keyBuf = b
	return string(b)
}

// obj returns the w-th worker Objective, creating workers lazily. With
// tracing configured each worker's Objective is wrapped to record one
// SpanCandidate span per evaluation; the tracer is internally synchronized,
// so concurrent workers may share it.
func (s *searcher) obj(w int) Objective {
	for len(s.objs) <= w {
		eval := s.factory()
		if tr := s.cfg.Trace; tr != nil {
			inner := eval
			worker := int32(len(s.objs))
			eval = func(out []float64) (float64, bool) {
				clk := tr.Begin()
				v, ok := inner(out)
				var code int32
				if !ok {
					code = 1
				}
				// Track = worker puts each worker's candidates on its own
				// timeline lane in exported Chrome traces.
				tr.EndOnTrack(clk, telemetry.SpanCandidate, worker, worker, 0, code)
				return v, ok
			}
		}
		s.objs = append(s.objs, eval)
	}
	return s.objs[w]
}

// batch evaluates every candidate (memoized points are looked up, fresh
// points fan out over the worker pool) and reduces to the best feasible
// index. Ties on the objective keep the earliest candidate, which is the
// lexicographically smallest vector because candidates are enumerated in
// lexicographic order — so the outcome is independent of worker count.
//
// Cancellation: each worker re-checks the context before claiming the next
// candidate, so a canceled batch stops within one evaluation per worker,
// every goroutine exits (no leaks — wg.Wait always returns), and the
// returned error matches the context error via errors.Is. Nothing is
// memoized from a canceled batch: partially filled results must not
// poison a later retry of the same search window.
func (s *searcher) batch(cands [][]float64) (bestIdx int, bestVal float64, found bool, err error) {
	results := make([]memoEntry, len(cands))
	var fresh []int
	for i, c := range cands {
		if e, ok := s.memo[s.key(c)]; ok {
			results[i] = e
		} else {
			fresh = append(fresh, i)
		}
	}
	s.evals += len(fresh)

	workers := s.cfg.workers()
	if workers > len(fresh) {
		workers = len(fresh)
	}
	ctx := s.ctx
	if workers <= 1 {
		eval := s.obj(0)
		for n, i := range fresh {
			if ctx.Err() != nil {
				s.evals -= len(fresh) - n // count only what actually ran
				return -1, 0, false, fmt.Errorf("tempsearch: search canceled: %w", ctx.Err())
			}
			v, ok := eval(cands[i])
			results[i] = memoEntry{value: v, feasible: ok}
		}
	} else {
		for w := 0; w < workers; w++ {
			s.obj(w) // materialize outside the goroutines
		}
		var next, ran int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int, eval Objective) {
				defer wg.Done()
				// pprof labels attribute CPU samples from -cpuprofile and
				// the -serve-metrics profile endpoint to the search stage
				// and worker lane.
				pprof.Do(ctx, pprof.Labels("stage", "tempsearch", "worker", strconv.Itoa(w)), func(ctx context.Context) {
					for {
						if ctx.Err() != nil {
							return
						}
						n := int(atomic.AddInt64(&next, 1)) - 1
						if n >= len(fresh) {
							return
						}
						i := fresh[n]
						v, ok := eval(cands[i])
						results[i] = memoEntry{value: v, feasible: ok}
						atomic.AddInt64(&ran, 1)
					}
				})
			}(w, s.objs[w])
		}
		wg.Wait()
		if cerr := ctx.Err(); cerr != nil {
			s.evals -= len(fresh) - int(ran)
			return -1, 0, false, fmt.Errorf("tempsearch: search canceled: %w", cerr)
		}
	}
	for _, i := range fresh {
		s.memo[s.key(cands[i])] = results[i]
	}

	bestIdx, bestVal = -1, math.Inf(-1)
	for i, r := range results {
		if r.feasible && r.value > bestVal {
			bestIdx, bestVal = i, r.value
		}
	}
	return bestIdx, bestVal, bestIdx >= 0, nil
}

// grid batch-evaluates the full lattice with the given step.
func (s *searcher) grid(step float64) (Result, error) {
	levels := latticeLevels(s.cfg.Lo, s.cfg.Hi, step)
	perDim := make([][]float64, s.ncrac)
	for i := range perDim {
		perDim[i] = levels
	}
	cands := enumerate(perDim)
	idx, v, ok, err := s.batch(cands)
	if err != nil {
		return Result{Evals: s.evals}, err
	}
	if !ok {
		return Result{Evals: s.evals},
			fmt.Errorf("tempsearch: no feasible outlet assignment on the grid: %w", ErrNoFeasible)
	}
	return Result{
		Out:   append([]float64(nil), cands[idx]...),
		Value: v,
		Evals: s.evals,
	}, nil
}

// window enumerates the lattice of the given step within ±radius of
// center, clamped to [cfg.Lo, cfg.Hi].
func (s *searcher) window(center []float64, radius, step float64) [][]float64 {
	perDim := make([][]float64, s.ncrac)
	for i := range perDim {
		lo := math.Max(s.cfg.Lo, center[i]-radius)
		hi := math.Min(s.cfg.Hi, center[i]+radius)
		perDim[i] = latticeLevels(lo, hi, step)
	}
	return enumerate(perDim)
}

// enumerate returns the cartesian product of the per-dimension levels in
// lexicographic order.
func enumerate(perDim [][]float64) [][]float64 {
	total := 1
	for _, levels := range perDim {
		total *= len(levels)
	}
	cands := make([][]float64, 0, total)
	out := make([]float64, len(perDim))
	var walk func(i int)
	walk = func(i int) {
		if i == len(perDim) {
			cands = append(cands, append([]float64(nil), out...))
			return
		}
		for _, t := range perDim[i] {
			out[i] = t
			walk(i + 1)
		}
	}
	walk(0)
	return cands
}

// latticeLevels returns lo, lo+step, ..., hi (hi always included).
func latticeLevels(lo, hi, step float64) []float64 {
	var out []float64
	for t := lo; t < hi+1e-9; t += step {
		out = append(out, math.Min(t, hi))
	}
	if len(out) == 0 || out[len(out)-1] < hi-1e-9 {
		out = append(out, hi)
	}
	return out
}
