package tempsearch

import (
	"math"
	"testing"
)

// quadratic returns an objective with a unique maximum at the given peak.
func quadratic(peak []float64) Objective {
	return func(out []float64) (float64, bool) {
		v := 0.0
		for i := range out {
			d := out[i] - peak[i]
			v -= d * d
		}
		return v, true
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Lo: 10, Hi: 5, CoarseStep: 1, FineStep: 1},
		{Lo: 0, Hi: 5, CoarseStep: 0, FineStep: 1},
		{Lo: 0, Hi: 5, CoarseStep: 1, FineStep: 2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGridFindsLatticeOptimum(t *testing.T) {
	cfg := Config{Lo: 0, Hi: 10, CoarseStep: 1, FineStep: 1}
	res, err := Grid(2, cfg, 1, quadratic([]float64{3, 7}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Out[0] != 3 || res.Out[1] != 7 {
		t.Errorf("Grid found %v, want [3 7]", res.Out)
	}
	if res.Value != 0 {
		t.Errorf("value = %g, want 0", res.Value)
	}
	if res.Evals != 121 {
		t.Errorf("evals = %d, want 121", res.Evals)
	}
}

func TestGridInfeasible(t *testing.T) {
	cfg := Config{Lo: 0, Hi: 2, CoarseStep: 1, FineStep: 1}
	_, err := Grid(1, cfg, 1, func([]float64) (float64, bool) { return 0, false })
	if err == nil {
		t.Fatal("expected error when nothing is feasible")
	}
}

func TestCoarseToFineMatchesGridOnSmooth(t *testing.T) {
	cfg := Config{Lo: 0, Hi: 20, CoarseStep: 4, FineStep: 1}
	peak := []float64{13, 6}
	ctf, err := CoarseToFine(2, cfg, quadratic(peak))
	if err != nil {
		t.Fatal(err)
	}
	grid, err := Grid(2, cfg, 1, quadratic(peak))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ctf.Value-grid.Value) > 1e-9 {
		t.Errorf("coarse-to-fine %v (%g) vs grid %v (%g)", ctf.Out, ctf.Value, grid.Out, grid.Value)
	}
	if ctf.Evals >= grid.Evals {
		t.Errorf("coarse-to-fine used %d evals, grid %d — refinement should be cheaper", ctf.Evals, grid.Evals)
	}
}

func TestCoarseToFineRespectsBounds(t *testing.T) {
	cfg := Config{Lo: 5, Hi: 25, CoarseStep: 5, FineStep: 1}
	// Peak outside the window: search must clamp to the boundary.
	res, err := CoarseToFine(3, cfg, quadratic([]float64{-10, 30, 15}))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 25, 15}
	for i := range want {
		if math.Abs(res.Out[i]-want[i]) > 1e-9 {
			t.Errorf("Out[%d] = %g, want %g", i, res.Out[i], want[i])
		}
	}
}

func TestCoordinateDescentSeparableExact(t *testing.T) {
	// Separable objectives are solved exactly by coordinate descent.
	cfg := Config{Lo: 0, Hi: 10, CoarseStep: 1, FineStep: 1}
	res, err := CoordinateDescent(3, cfg, nil, quadratic([]float64{2, 9, 4}))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 9, 4}
	for i := range want {
		if math.Abs(res.Out[i]-want[i]) > 1e-9 {
			t.Errorf("Out[%d] = %g, want %g", i, res.Out[i], want[i])
		}
	}
}

func TestCoordinateDescentWithStart(t *testing.T) {
	cfg := Config{Lo: 0, Hi: 10, CoarseStep: 1, FineStep: 1}
	start := []float64{0, 0}
	res, err := CoordinateDescent(2, cfg, start, quadratic([]float64{8, 8}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Out[0] != 8 || res.Out[1] != 8 {
		t.Errorf("Out = %v, want [8 8]", res.Out)
	}
	if start[0] != 0 {
		t.Error("start vector must not be mutated")
	}
}

func TestPartialFeasibility(t *testing.T) {
	// Only points with sum ≤ 10 are feasible; the best feasible point on
	// the lattice maximizing x+y is any with sum exactly 10.
	obj := func(out []float64) (float64, bool) {
		s := out[0] + out[1]
		return s, s <= 10
	}
	cfg := Config{Lo: 0, Hi: 10, CoarseStep: 2, FineStep: 1}
	res, err := CoarseToFine(2, cfg, obj)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-10) > 1e-9 {
		t.Errorf("value = %g, want 10", res.Value)
	}
}

func TestLatticeLevelsIncludesHi(t *testing.T) {
	ls := latticeLevels(5, 25, 5)
	if len(ls) != 5 || ls[0] != 5 || ls[len(ls)-1] != 25 {
		t.Errorf("levels = %v", ls)
	}
	// Non-divisible range still ends at hi.
	ls = latticeLevels(0, 7, 3)
	if ls[len(ls)-1] != 7 {
		t.Errorf("levels = %v, last must be 7", ls)
	}
}
