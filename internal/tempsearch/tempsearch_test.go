package tempsearch

import (
	"errors"
	"math"
	"runtime"
	"sync"
	"testing"
)

// quadratic returns an objective with a unique maximum at the given peak.
func quadratic(peak []float64) Objective {
	return func(out []float64) (float64, bool) {
		v := 0.0
		for i := range out {
			d := out[i] - peak[i]
			v -= d * d
		}
		return v, true
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Lo: 10, Hi: 5, CoarseStep: 1, FineStep: 1},
		{Lo: 0, Hi: 5, CoarseStep: 0, FineStep: 1},
		{Lo: 0, Hi: 5, CoarseStep: 1, FineStep: 2},
		{Lo: 0, Hi: 5, CoarseStep: 1, FineStep: 1, Parallelism: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGridFindsLatticeOptimum(t *testing.T) {
	cfg := Config{Lo: 0, Hi: 10, CoarseStep: 1, FineStep: 1}
	res, err := Grid(2, cfg, 1, Shared(quadratic([]float64{3, 7})))
	if err != nil {
		t.Fatal(err)
	}
	if res.Out[0] != 3 || res.Out[1] != 7 {
		t.Errorf("Grid found %v, want [3 7]", res.Out)
	}
	if res.Value != 0 {
		t.Errorf("value = %g, want 0", res.Value)
	}
	if res.Evals != 121 {
		t.Errorf("evals = %d, want 121", res.Evals)
	}
}

func TestGridInfeasible(t *testing.T) {
	cfg := Config{Lo: 0, Hi: 2, CoarseStep: 1, FineStep: 1}
	_, err := Grid(1, cfg, 1, Shared(func([]float64) (float64, bool) { return 0, false }))
	if err == nil {
		t.Fatal("expected error when nothing is feasible")
	}
	if !errors.Is(err, ErrNoFeasible) {
		t.Errorf("error %v does not wrap ErrNoFeasible", err)
	}
}

func TestCoarseToFineInfeasibleSentinel(t *testing.T) {
	cfg := Config{Lo: 0, Hi: 2, CoarseStep: 1, FineStep: 1}
	res, err := CoarseToFine(1, cfg, Shared(func([]float64) (float64, bool) { return 0, false }))
	if !errors.Is(err, ErrNoFeasible) {
		t.Fatalf("err = %v, want ErrNoFeasible", err)
	}
	if res.Evals != 3 {
		t.Errorf("Evals = %d, want 3 (all lattice points tried before giving up)", res.Evals)
	}
	// Config errors must NOT look like infeasibility.
	_, err = CoarseToFine(1, Config{Lo: 5, Hi: 0, CoarseStep: 1, FineStep: 1}, Shared(quadratic([]float64{1})))
	if err == nil || errors.Is(err, ErrNoFeasible) {
		t.Errorf("config error %v must not wrap ErrNoFeasible", err)
	}
}

func TestCoarseToFineMatchesGridOnSmooth(t *testing.T) {
	cfg := Config{Lo: 0, Hi: 20, CoarseStep: 4, FineStep: 1}
	peak := []float64{13, 6}
	ctf, err := CoarseToFine(2, cfg, Shared(quadratic(peak)))
	if err != nil {
		t.Fatal(err)
	}
	grid, err := Grid(2, cfg, 1, Shared(quadratic(peak)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ctf.Value-grid.Value) > 1e-9 {
		t.Errorf("coarse-to-fine %v (%g) vs grid %v (%g)", ctf.Out, ctf.Value, grid.Out, grid.Value)
	}
	if ctf.Evals >= grid.Evals {
		t.Errorf("coarse-to-fine used %d evals, grid %d — refinement should be cheaper", ctf.Evals, grid.Evals)
	}
}

func TestCoarseToFineRespectsBounds(t *testing.T) {
	cfg := Config{Lo: 5, Hi: 25, CoarseStep: 5, FineStep: 1}
	// Peak outside the window: search must clamp to the boundary.
	res, err := CoarseToFine(3, cfg, Shared(quadratic([]float64{-10, 30, 15})))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 25, 15}
	for i := range want {
		if math.Abs(res.Out[i]-want[i]) > 1e-9 {
			t.Errorf("Out[%d] = %g, want %g", i, res.Out[i], want[i])
		}
	}
}

func TestMemoizationSkipsRevisits(t *testing.T) {
	// Count raw objective invocations: the memo must make CoarseToFine's
	// reported Evals equal the number of distinct lattice points actually
	// evaluated, with refinement rounds never re-solving visited points.
	var mu sync.Mutex
	calls := 0
	counted := Shared(func(out []float64) (float64, bool) {
		mu.Lock()
		calls++
		mu.Unlock()
		v, ok := quadratic([]float64{13, 6})(out)
		return v, ok
	})
	cfg := Config{Lo: 0, Hi: 20, CoarseStep: 4, FineStep: 1}
	res, err := CoarseToFine(2, cfg, counted)
	if err != nil {
		t.Fatal(err)
	}
	if calls != res.Evals {
		t.Errorf("objective called %d times but Evals = %d — accounting must be exact", calls, res.Evals)
	}
	// The incumbent sits in every refinement window, so at least one point
	// per round is a guaranteed memo hit: total evals must be strictly less
	// than the sum of window sizes.
	serialUpper := 6*6 + 3*(3*3) // coarse 6×6 lattice + 3 halving rounds of 3×3
	if res.Evals >= serialUpper {
		t.Errorf("Evals = %d, want < %d (memoization must skip revisited points)", res.Evals, serialUpper)
	}
}

func TestParallelismDeterminism(t *testing.T) {
	// A flat plateau forces objective ties: every Parallelism setting must
	// resolve them identically (lexicographically smallest vector).
	plateau := func(out []float64) (float64, bool) {
		s := out[0] + out[1] + out[2]
		if s > 30 {
			return 0, false
		}
		return math.Min(s, 24), true // ties for every point with sum in [24, 30]
	}
	var ref Result
	for i, par := range []int{1, 2, 4, runtime.GOMAXPROCS(0), 0} {
		cfg := Config{Lo: 0, Hi: 20, CoarseStep: 4, FineStep: 1, Parallelism: par}
		res, err := CoarseToFine(3, cfg, Shared(plateau))
		if err != nil {
			t.Fatalf("Parallelism=%d: %v", par, err)
		}
		if i == 0 {
			ref = res
			continue
		}
		if res.Value != ref.Value || res.Evals != ref.Evals {
			t.Errorf("Parallelism=%d: (value %g, evals %d) != reference (%g, %d)",
				par, res.Value, res.Evals, ref.Value, ref.Evals)
		}
		for j := range ref.Out {
			if res.Out[j] != ref.Out[j] {
				t.Errorf("Parallelism=%d: Out = %v, want %v", par, res.Out, ref.Out)
				break
			}
		}
	}
}

func TestFactoryOnePerWorker(t *testing.T) {
	// Each worker must get its own Objective from the Factory; no Objective
	// may be shared between concurrently running workers.
	var mu sync.Mutex
	made := 0
	factory := func() Objective {
		mu.Lock()
		made++
		mu.Unlock()
		inUse := false
		return func(out []float64) (float64, bool) {
			mu.Lock()
			if inUse {
				mu.Unlock()
				t.Error("objective invoked concurrently from two workers")
				return 0, false
			}
			inUse = true
			mu.Unlock()
			v, ok := quadratic([]float64{3, 7})(out)
			mu.Lock()
			inUse = false
			mu.Unlock()
			return v, ok
		}
	}
	cfg := Config{Lo: 0, Hi: 10, CoarseStep: 1, FineStep: 1, Parallelism: 4}
	if _, err := Grid(2, cfg, 1, factory); err != nil {
		t.Fatal(err)
	}
	if made == 0 || made > 4 {
		t.Errorf("factory called %d times, want 1..4", made)
	}
}

func TestCoordinateDescentSeparableExact(t *testing.T) {
	// Separable objectives are solved exactly by coordinate descent.
	cfg := Config{Lo: 0, Hi: 10, CoarseStep: 1, FineStep: 1}
	res, err := CoordinateDescent(3, cfg, nil, Shared(quadratic([]float64{2, 9, 4})))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 9, 4}
	for i := range want {
		if math.Abs(res.Out[i]-want[i]) > 1e-9 {
			t.Errorf("Out[%d] = %g, want %g", i, res.Out[i], want[i])
		}
	}
}

func TestCoordinateDescentWithStart(t *testing.T) {
	cfg := Config{Lo: 0, Hi: 10, CoarseStep: 1, FineStep: 1}
	start := []float64{0, 0}
	res, err := CoordinateDescent(2, cfg, start, Shared(quadratic([]float64{8, 8})))
	if err != nil {
		t.Fatal(err)
	}
	if res.Out[0] != 8 || res.Out[1] != 8 {
		t.Errorf("Out = %v, want [8 8]", res.Out)
	}
	if start[0] != 0 {
		t.Error("start vector must not be mutated")
	}
}

func TestCoordinateDescentInfeasibleSentinel(t *testing.T) {
	cfg := Config{Lo: 0, Hi: 2, CoarseStep: 1, FineStep: 1}
	_, err := CoordinateDescent(1, cfg, nil, Shared(func([]float64) (float64, bool) { return 0, false }))
	if !errors.Is(err, ErrNoFeasible) {
		t.Errorf("err = %v, want ErrNoFeasible", err)
	}
}

func TestPartialFeasibility(t *testing.T) {
	// Only points with sum ≤ 10 are feasible; the best feasible point on
	// the lattice maximizing x+y is any with sum exactly 10.
	obj := func(out []float64) (float64, bool) {
		s := out[0] + out[1]
		return s, s <= 10
	}
	cfg := Config{Lo: 0, Hi: 10, CoarseStep: 2, FineStep: 1}
	res, err := CoarseToFine(2, cfg, Shared(obj))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-10) > 1e-9 {
		t.Errorf("value = %g, want 10", res.Value)
	}
}

func TestLatticeLevelsIncludesHi(t *testing.T) {
	ls := latticeLevels(5, 25, 5)
	if len(ls) != 5 || ls[0] != 5 || ls[len(ls)-1] != 25 {
		t.Errorf("levels = %v", ls)
	}
	// Non-divisible range still ends at hi.
	ls = latticeLevels(0, 7, 3)
	if ls[len(ls)-1] != 7 {
		t.Errorf("levels = %v, last must be 7", ls)
	}
}

func TestWorkersClampsToGOMAXPROCS(t *testing.T) {
	max := runtime.GOMAXPROCS(0)
	cases := []struct{ requested, want int }{
		{0, max},        // default: use the machine
		{1, 1},          // explicit serial stays serial
		{max, max},      // exact fit
		{max + 1, max},  // oversubscription clamps down
		{max * 16, max}, // wildly oversubscribed clamps down
	}
	for _, c := range cases {
		if got := Workers(c.requested); got != c.want {
			t.Errorf("Workers(%d) = %d, want %d (GOMAXPROCS %d)",
				c.requested, got, c.want, max)
		}
	}
	if max > 1 {
		if got := Workers(max - 1); got != max-1 {
			t.Errorf("Workers(%d) = %d, want %d", max-1, got, max-1)
		}
	}
	// Config.workers follows the same policy.
	if got := (Config{Parallelism: max * 4}).workers(); got != max {
		t.Errorf("Config{Parallelism: %d}.workers() = %d, want %d", max*4, got, max)
	}
}
