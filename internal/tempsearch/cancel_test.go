package tempsearch

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestGridCancelMidSearch cancels the search from inside an objective
// evaluation — the worker pool must drain cleanly, the error must unwrap
// to context.Canceled, and no goroutine may outlive the call.
func TestGridCancelMidSearch(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var evals int64
	factory := func() Objective {
		return func(out []float64) (float64, bool) {
			if atomic.AddInt64(&evals, 1) == 5 {
				cancel() // pull the plug mid-search
			}
			return -out[0], true
		}
	}
	cfg := Config{Lo: 5, Hi: 25, CoarseStep: 5, FineStep: 1, Parallelism: 4}
	// 3 CRACs at 1 °C over [5, 25] = 9261 candidates: far more than can
	// finish before the 5th evaluation cancels.
	_, err := GridContext(ctx, 3, cfg, 1, factory)
	if err == nil {
		t.Fatal("want cancellation error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(err, context.Canceled) = false for %v", err)
	}

	// Every worker goroutine must exit; allow the runtime a moment to
	// reap them before declaring a leak.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.Gosched()
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before search, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCoarseToFineCancelSerial covers the serial (Parallelism=1) path and
// the refinement loop's error propagation.
func TestCoarseToFineCancelSerial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var evals int64
	factory := func() Objective {
		return func(out []float64) (float64, bool) {
			if atomic.AddInt64(&evals, 1) == 3 {
				cancel()
			}
			return -out[0], true
		}
	}
	cfg := Config{Lo: 5, Hi: 25, CoarseStep: 5, FineStep: 1, Parallelism: 1}
	_, err := CoarseToFineContext(ctx, 2, cfg, factory)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCoordinateDescentCancel covers the sequential strategy.
func TestCoordinateDescentCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{Lo: 5, Hi: 25, CoarseStep: 5, FineStep: 1, Parallelism: 1}
	_, err := CoordinateDescentContext(ctx, 2, cfg, nil, Shared(func(out []float64) (float64, bool) {
		return -out[0], true
	}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestContextVariantsIdenticalWhenUncancelled: threading a live context
// must not change any result bit — value, vector, or eval count — for any
// strategy or worker count.
func TestContextVariantsIdenticalWhenUncancelled(t *testing.T) {
	eval := func(out []float64) (float64, bool) {
		v := 0.0
		for i, x := range out {
			v -= (x - 18.5 - float64(i)) * (x - 18.5 - float64(i))
		}
		return v, v > -40
	}
	for _, par := range []int{1, 4} {
		cfg := Config{Lo: 5, Hi: 25, CoarseStep: 5, FineStep: 1, Parallelism: par}
		plain, err := CoarseToFine(2, cfg, Shared(eval))
		if err != nil {
			t.Fatal(err)
		}
		ctxed, err := CoarseToFineContext(context.Background(), 2, cfg, Shared(eval))
		if err != nil {
			t.Fatal(err)
		}
		if plain.Value != ctxed.Value || plain.Evals != ctxed.Evals {
			t.Errorf("par=%d: (%g, %d) vs (%g, %d)", par, plain.Value, plain.Evals, ctxed.Value, ctxed.Evals)
		}
		for i := range plain.Out {
			if plain.Out[i] != ctxed.Out[i] {
				t.Errorf("par=%d: Out[%d] %g vs %g", par, i, plain.Out[i], ctxed.Out[i])
			}
		}
	}
}
