package linalg

import (
	"math"
	"testing"
)

// gaussSolve is an independent reference: plain Gaussian elimination with
// partial pivoting on an augmented copy, sharing no code with LU. It
// returns (x, true) or (nil, false) when it judges the system singular.
func gaussSolve(a *Matrix, b []float64) ([]float64, bool) {
	n := a.Rows
	aug := make([][]float64, n)
	for r := 0; r < n; r++ {
		aug[r] = append(append([]float64(nil), a.Row(r)...), b[r])
	}
	for k := 0; k < n; k++ {
		p, maxAbs := k, math.Abs(aug[k][k])
		for r := k + 1; r < n; r++ {
			if v := math.Abs(aug[r][k]); v > maxAbs {
				maxAbs, p = v, r
			}
		}
		if maxAbs == 0 {
			return nil, false
		}
		aug[k], aug[p] = aug[p], aug[k]
		for r := k + 1; r < n; r++ {
			m := aug[r][k] / aug[k][k]
			if m == 0 {
				continue
			}
			for c := k; c <= n; c++ {
				aug[r][c] -= m * aug[k][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := aug[i][n]
		for j := i + 1; j < n; j++ {
			s -= aug[i][j] * x[j]
		}
		x[i] = s / aug[i][i]
	}
	return x, true
}

// FuzzFactorLU differentials FactorLU+Solve against the independent
// Gaussian elimination above on fuzzer-shaped matrices: the two must agree
// on singularity, and when both solve, each solution must satisfy the
// system to a conditioning-scaled residual tolerance.
func FuzzFactorLU(f *testing.F) {
	f.Add(uint8(3), int64(1), []byte{})
	f.Add(uint8(1), int64(42), []byte{0x00})
	f.Add(uint8(6), int64(-7), []byte{0xff, 0x01, 0x80, 0x7f})
	f.Add(uint8(4), int64(0), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Fuzz(func(t *testing.T, nRaw uint8, salt int64, raw []byte) {
		n := int(nRaw)%8 + 1
		a := NewMatrix(n, n)
		b := make([]float64, n)
		// Deterministic expansion of the fuzz bytes into matrix entries:
		// each byte maps to [-12.8, 12.7], missing bytes fall back to a
		// salt-seeded linear congruence. Small integers over a modest range
		// keep exact-zero pivots and near-singular cases reachable.
		s := uint64(salt)*2654435761 + 1
		val := func(k int) float64 {
			if k < len(raw) {
				return (float64(raw[k]) - 128) / 10
			}
			s = s*6364136223846793005 + 1442695040888963407
			return (float64(s>>56) - 128) / 10
		}
		k := 0
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				a.Set(r, c, val(k))
				k++
			}
		}
		for i := range b {
			b[i] = val(k)
			k++
		}
		maxAbs := 0.0
		for _, v := range a.Data {
			if av := math.Abs(v); av > maxAbs {
				maxAbs = av
			}
		}

		fac, luErr := FactorLU(a)
		_, refOK := gaussSolve(a, b)
		if (luErr == nil) != refOK {
			// Both pivot on the column max, so exact-zero singularity must
			// agree bit-for-bit.
			t.Fatalf("singularity disagreement: FactorLU err=%v, reference ok=%v\nmatrix=%v", luErr, refOK, a.Data)
		}
		if luErr != nil {
			return
		}
		x, err := fac.Solve(b)
		if err != nil {
			t.Fatalf("Solve after successful FactorLU: %v", err)
		}
		// Residual check with a conditioning allowance: random small-integer
		// matrices can be arbitrarily ill-conditioned, so scale the
		// tolerance by the solution magnitude the system produced.
		xMag := 1.0
		for _, v := range x {
			if av := math.Abs(v); av > xMag {
				xMag = av
			}
		}
		tol := 1e-8 * (1 + maxAbs) * xMag * float64(n)
		got := a.MulVec(x)
		for i := range b {
			if d := math.Abs(got[i] - b[i]); d > tol || math.IsNaN(d) {
				t.Fatalf("residual %g at row %d exceeds %g\nA=%v\nb=%v\nx=%v", d, i, tol, a.Data, b, x)
			}
		}
	})
}
