package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 || m.At(0, 1) != 0 {
		t.Fatal("Set/At mismatch")
	}
	r := m.Row(1)
	r[0] = 9
	if m.At(1, 0) != 9 {
		t.Fatal("Row must be a view")
	}
	c := m.Clone()
	c.Set(0, 0, 7)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must be a deep copy")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestMulVecKnown(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	y := m.MulVec([]float64{5, 6})
	if y[0] != 17 || y[1] != 39 {
		t.Fatalf("MulVec = %v, want [17 39]", y)
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{0, 1}, {1, 0}})
	c := a.Mul(b)
	want := FromRows([][]float64{{2, 1}, {4, 3}})
	for i := range c.Data {
		if c.Data[i] != want.Data[i] {
			t.Fatalf("Mul = %v, want %v", c.Data, want.Data)
		}
	}
}

func TestIdentityMul(t *testing.T) {
	a := FromRows([][]float64{{2, -1, 0}, {1, 3, 5}, {0, 0, 1}})
	if got := Identity(3).Mul(a); !matricesClose(got, a, 0) {
		t.Fatal("I·A != A")
	}
	if got := a.Mul(Identity(3)); !matricesClose(got, a, 0) {
		t.Fatal("A·I != A")
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("Transpose wrong: %+v", at)
	}
}

func TestSub(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{1, 1}, {1, 1}})
	c := a.Sub(b)
	if c.At(0, 0) != 0 || c.At(1, 1) != 3 {
		t.Fatalf("Sub wrong: %v", c.Data)
	}
}

func matricesClose(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

func TestLUSolveKnown(t *testing.T) {
	a := FromRows([][]float64{
		{2, 1, 1},
		{4, -6, 0},
		{-2, 7, 2},
	})
	b := []float64{5, -2, 9}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got := a.MulVec(x)
	for i := range b {
		if math.Abs(got[i]-b[i]) > 1e-10 {
			t.Fatalf("A·x = %v, want %v", got, b)
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := FactorLU(a); err != ErrSingular {
		t.Fatalf("FactorLU on singular matrix: err = %v, want ErrSingular", err)
	}
}

func TestLUNonSquare(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := FactorLU(a); err == nil {
		t.Fatal("FactorLU accepted a non-square matrix")
	}
}

func TestLUNeedsPivoting(t *testing.T) {
	// Zero on the initial diagonal forces a row swap.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := Solve(a, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-7) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v, want [7 3]", x)
	}
}

func TestInverse(t *testing.T) {
	a := FromRows([][]float64{{4, 7}, {2, 6}})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := f.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	if !matricesClose(a.Mul(inv), Identity(2), 1e-12) {
		t.Fatalf("A·A⁻¹ != I: %v", a.Mul(inv).Data)
	}
}

func randomDiagDominant(rng *rand.Rand, n int) *Matrix {
	a := NewMatrix(n, n)
	for r := 0; r < n; r++ {
		sum := 0.0
		for c := 0; c < n; c++ {
			if c == r {
				continue
			}
			v := rng.Float64()*2 - 1
			a.Set(r, c, v)
			sum += math.Abs(v)
		}
		a.Set(r, r, sum+1+rng.Float64())
	}
	return a
}

// Property: for random diagonally dominant systems, Solve produces a
// residual at numerical noise level.
func TestLUSolveProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%20 + 1
		rng := rand.New(rand.NewSource(seed))
		a := randomDiagDominant(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Float64()*10 - 5
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		got := a.MulVec(x)
		for i := range b {
			if math.Abs(got[i]-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: SolveMatrix(I) equals Inverse, and applying it recovers the RHS.
func TestSolveMatrixProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(8) + 2
		a := randomDiagDominant(rng, n)
		fac, err := FactorLU(a)
		if err != nil {
			return false
		}
		inv, err := fac.Inverse()
		if err != nil {
			return false
		}
		return matricesClose(a.Mul(inv), Identity(n), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSolveLengthMismatch(t *testing.T) {
	a := Identity(3)
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1, 2}); err == nil {
		t.Fatal("Solve accepted wrong-length RHS")
	}
}

func BenchmarkLUFactorSolve153(b *testing.B) {
	// 153 = NCRAC + NCN at the paper's scale (3 CRACs + 150 nodes).
	rng := rand.New(rand.NewSource(1))
	a := randomDiagDominant(rng, 153)
	rhs := make([]float64, 153)
	for i := range rhs {
		rhs[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := FactorLU(a)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.Solve(rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSolveIntoMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := rng.Intn(12) + 1
		a := randomDiagDominant(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Float64()*10 - 5
		}
		f, err := FactorLU(a)
		if err != nil {
			t.Fatal(err)
		}
		want, err := f.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]float64, n)
		if err := f.SolveInto(got, b); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: SolveInto[%d] = %g, Solve = %g", trial, i, got[i], want[i])
			}
		}
	}
}

func TestSolveIntoRejectsAliasAndBadLengths(t *testing.T) {
	f, err := FactorLU(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, 2, 3}
	if err := f.SolveInto(b, b); err == nil {
		t.Fatal("SolveInto accepted aliased dst")
	}
	if err := f.SolveInto(make([]float64, 2), b); err == nil {
		t.Fatal("SolveInto accepted short dst")
	}
	if err := f.SolveInto(make([]float64, 3), b[:2]); err == nil {
		t.Fatal("SolveInto accepted short b")
	}
}

func TestSolveTransposeInto(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := rng.Intn(12) + 1
		a := randomDiagDominant(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Float64()*10 - 5
		}
		f, err := FactorLU(a)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, n)
		if err := f.SolveTransposeInto(x, b); err != nil {
			t.Fatal(err)
		}
		// Check Aᵀ·x = b.
		got := a.Transpose().MulVec(x)
		for i := range b {
			if math.Abs(got[i]-b[i]) > 1e-8 {
				t.Fatalf("trial %d n=%d: Aᵀx = %v, want %v", trial, n, got, b)
			}
		}
		// dst may alias b: rerun in place and compare.
		inPlace := append([]float64(nil), b...)
		if err := f.SolveTransposeInto(inPlace, inPlace); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if inPlace[i] != x[i] {
				t.Fatalf("trial %d: aliased transpose solve diverged at %d", trial, i)
			}
		}
	}
}

func TestFactorReuseMatchesFactorLU(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var f LU
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(10) + 1
		a := randomDiagDominant(rng, n)
		if err := f.Factor(a); err != nil {
			t.Fatal(err)
		}
		ref, err := FactorLU(a)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref.lu.Data {
			if f.lu.Data[i] != ref.lu.Data[i] {
				t.Fatalf("trial %d: reused Factor diverged from FactorLU at %d", trial, i)
			}
		}
		for i := range ref.piv {
			if f.piv[i] != ref.piv[i] {
				t.Fatalf("trial %d: pivot permutation diverged at %d", trial, i)
			}
		}
	}
}

func TestFactorSolveIntoZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomDiagDominant(rng, 16)
	b := make([]float64, 16)
	x := make([]float64, 16)
	for i := range b {
		b[i] = rng.Float64()
	}
	var f LU
	if err := f.Factor(a); err != nil {
		t.Fatal(err)
	}
	if err := f.SolveTransposeInto(x, b); err != nil {
		t.Fatal(err) // warm tmp scratch
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := f.Factor(a); err != nil {
			t.Fatal(err)
		}
		if err := f.SolveInto(x, b); err != nil {
			t.Fatal(err)
		}
		if err := f.SolveTransposeInto(x, b); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Factor+SolveInto+SolveTransposeInto allocates %v per run, want 0", allocs)
	}
}
