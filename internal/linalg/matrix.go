// Package linalg implements the dense linear algebra needed by the thermal
// model and the LP solver: row-major matrices, matrix/vector products, and
// LU factorization with partial pivoting. The matrices involved are small
// (NCRAC+NCN ≈ 153 rows), so a straightforward dense implementation is both
// adequate and dependency-free.
package linalg

import "fmt"

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, Data[r*Cols+c]
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for r, row := range rows {
		if len(row) != m.Cols {
			panic(fmt.Sprintf("linalg: ragged row %d: len %d want %d", r, len(row), m.Cols))
		}
		copy(m.Data[r*m.Cols:(r+1)*m.Cols], row)
	}
	return m
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Row returns a view (not a copy) of row r.
func (m *Matrix) Row(r int) []float64 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec returns m·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	return m.MulVecInto(x, nil)
}

// MulVecInto computes m·x into dst, reusing dst's storage when it has
// sufficient capacity (a nil dst allocates). It returns the result slice.
func (m *Matrix) MulVecInto(x, dst []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec shape mismatch: %dx%d by %d", m.Rows, m.Cols, len(x)))
	}
	if cap(dst) >= m.Rows {
		dst = dst[:m.Rows]
	} else {
		dst = make([]float64, m.Rows)
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		s := 0.0
		for c, v := range row {
			s += v * x[c]
		}
		dst[r] = s
	}
	return dst
}

// Mul returns the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch: %dx%d by %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for r := 0; r < m.Rows; r++ {
		mrow := m.Row(r)
		orow := out.Row(r)
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			brow := b.Row(k)
			for c, bv := range brow {
				orow[c] += mv * bv
			}
		}
	}
	return out
}

// Sub returns m − b.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("linalg: Sub shape mismatch")
	}
	out := m.Clone()
	for i, v := range b.Data {
		out.Data[i] -= v
	}
	return out
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			out.Set(c, r, m.At(r, c))
		}
	}
	return out
}
