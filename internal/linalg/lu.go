package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization or solve encounters a
// (numerically) singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular")

// LU holds an LU factorization with partial pivoting: P·A = L·U, stored
// compactly in lu with the permutation in piv. The zero value is ready for
// Factor, which reuses the receiver's buffers across refactorizations — the
// pattern the revised simplex leans on to keep its refresh cadence
// allocation-free after warm-up.
type LU struct {
	n   int
	lu  *Matrix
	piv []int
	tmp []float64 // scratch for the transpose solve's permuted intermediate
}

// Factor (re)computes the LU factorization of the square matrix a with
// partial pivoting, reusing the receiver's buffers when their capacity
// allows. The input matrix is not modified. On error the receiver must not
// be used for solves until a later Factor succeeds. The elimination is
// bit-identical to FactorLU's.
func (f *LU) Factor(a *Matrix) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("linalg: Factor needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if f.lu == nil || cap(f.lu.Data) < n*n {
		f.lu = &Matrix{Rows: n, Cols: n, Data: make([]float64, n*n)}
	} else {
		f.lu.Rows, f.lu.Cols = n, n
		f.lu.Data = f.lu.Data[:n*n]
	}
	copy(f.lu.Data, a.Data[:n*n])
	if cap(f.piv) >= n {
		f.piv = f.piv[:n]
	} else {
		f.piv = make([]int, n)
	}
	f.n = n
	lu, piv := f.lu, f.piv
	for i := range piv {
		piv[i] = i
	}
	for k := 0; k < n; k++ {
		// Pivot: largest absolute value in column k at or below the diagonal.
		p := k
		maxAbs := math.Abs(lu.At(k, k))
		for r := k + 1; r < n; r++ {
			if v := math.Abs(lu.At(r, k)); v > maxAbs {
				maxAbs, p = v, r
			}
		}
		if maxAbs == 0 {
			return ErrSingular
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for c := range rk {
				rk[c], rp[c] = rp[c], rk[c]
			}
			piv[k], piv[p] = piv[p], piv[k]
		}
		pivot := lu.At(k, k)
		for r := k + 1; r < n; r++ {
			m := lu.At(r, k) / pivot
			lu.Set(r, k, m)
			if m == 0 {
				continue
			}
			rr, rk := lu.Row(r), lu.Row(k)
			for c := k + 1; c < n; c++ {
				rr[c] -= m * rk[c]
			}
		}
	}
	return nil
}

// FactorLU computes the LU factorization of the square matrix a with
// partial pivoting. The input matrix is not modified.
func FactorLU(a *Matrix) (*LU, error) {
	f := &LU{}
	if err := f.Factor(a); err != nil {
		return nil, err
	}
	return f, nil
}

// SolveInto solves A·x = b into dst without allocating. dst must have
// length n and must not alias b (the permutation pass reads b after dst has
// been partially written).
func (f *LU) SolveInto(dst, b []float64) error {
	if len(b) != f.n || len(dst) != f.n {
		return fmt.Errorf("linalg: SolveInto length mismatch: dst %d, b %d, want %d", len(dst), len(b), f.n)
	}
	if f.n > 0 && &dst[0] == &b[0] {
		return errors.New("linalg: SolveInto dst must not alias b")
	}
	// Apply the permutation, then forward-substitute L (unit diagonal).
	for i := 0; i < f.n; i++ {
		dst[i] = b[f.piv[i]]
	}
	for i := 0; i < f.n; i++ {
		row := f.lu.Row(i)
		s := dst[i]
		for j := 0; j < i; j++ {
			s -= row[j] * dst[j]
		}
		dst[i] = s
	}
	// Back-substitute U.
	for i := f.n - 1; i >= 0; i-- {
		row := f.lu.Row(i)
		s := dst[i]
		for j := i + 1; j < f.n; j++ {
			s -= row[j] * dst[j]
		}
		d := row[i]
		if d == 0 {
			return ErrSingular
		}
		dst[i] = s / d
	}
	return nil
}

// SolveTransposeInto solves Aᵀ·x = b into dst without allocating (beyond a
// once-grown internal scratch). With P·A = L·U this is Uᵀ·Lᵀ·P·x = b:
// forward-substitute Uᵀ, back-substitute Lᵀ, then undo the permutation.
// dst may alias b. The revised simplex uses this as BTRAN.
func (f *LU) SolveTransposeInto(dst, b []float64) error {
	if len(b) != f.n || len(dst) != f.n {
		return fmt.Errorf("linalg: SolveTransposeInto length mismatch: dst %d, b %d, want %d", len(dst), len(b), f.n)
	}
	if cap(f.tmp) >= f.n {
		f.tmp = f.tmp[:f.n]
	} else {
		f.tmp = make([]float64, f.n)
	}
	w := f.tmp
	// Uᵀ·z = b: Uᵀ is lower triangular with U's diagonal.
	for i := 0; i < f.n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= f.lu.At(j, i) * w[j]
		}
		d := f.lu.At(i, i)
		if d == 0 {
			return ErrSingular
		}
		w[i] = s / d
	}
	// Lᵀ·w = z: Lᵀ is unit upper triangular.
	for i := f.n - 1; i >= 0; i-- {
		s := w[i]
		for j := i + 1; j < f.n; j++ {
			s -= f.lu.At(j, i) * w[j]
		}
		w[i] = s
	}
	// P·x = w ⇒ x[piv[i]] = w[i].
	for i := 0; i < f.n; i++ {
		dst[f.piv[i]] = w[i]
	}
	return nil
}

// Solve solves A·x = b for x using the factorization.
func (f *LU) Solve(b []float64) ([]float64, error) {
	if len(b) != f.n {
		return nil, fmt.Errorf("linalg: Solve length mismatch: %d want %d", len(b), f.n)
	}
	x := make([]float64, f.n)
	if err := f.SolveInto(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveMatrix solves A·X = B column by column and returns X.
func (f *LU) SolveMatrix(b *Matrix) (*Matrix, error) {
	if b.Rows != f.n {
		return nil, fmt.Errorf("linalg: SolveMatrix shape mismatch: %d rows want %d", b.Rows, f.n)
	}
	out := NewMatrix(f.n, b.Cols)
	col := make([]float64, f.n)
	x := make([]float64, f.n)
	for c := 0; c < b.Cols; c++ {
		for r := 0; r < f.n; r++ {
			col[r] = b.At(r, c)
		}
		if err := f.SolveInto(x, col); err != nil {
			return nil, err
		}
		for r := 0; r < f.n; r++ {
			out.Set(r, c, x[r])
		}
	}
	return out, nil
}

// Inverse returns A⁻¹ computed from the factorization.
func (f *LU) Inverse() (*Matrix, error) {
	return f.SolveMatrix(Identity(f.n))
}

// Solve is a convenience wrapper that factors a and solves a·x = b once.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}
