package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization or solve encounters a
// (numerically) singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular")

// LU holds an LU factorization with partial pivoting: P·A = L·U, stored
// compactly in lu with the permutation in piv.
type LU struct {
	n   int
	lu  *Matrix
	piv []int
}

// FactorLU computes the LU factorization of the square matrix a with
// partial pivoting. The input matrix is not modified.
func FactorLU(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: FactorLU needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	for k := 0; k < n; k++ {
		// Pivot: largest absolute value in column k at or below the diagonal.
		p := k
		maxAbs := math.Abs(lu.At(k, k))
		for r := k + 1; r < n; r++ {
			if v := math.Abs(lu.At(r, k)); v > maxAbs {
				maxAbs, p = v, r
			}
		}
		if maxAbs == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for c := range rk {
				rk[c], rp[c] = rp[c], rk[c]
			}
			piv[k], piv[p] = piv[p], piv[k]
		}
		pivot := lu.At(k, k)
		for r := k + 1; r < n; r++ {
			m := lu.At(r, k) / pivot
			lu.Set(r, k, m)
			if m == 0 {
				continue
			}
			rr, rk := lu.Row(r), lu.Row(k)
			for c := k + 1; c < n; c++ {
				rr[c] -= m * rk[c]
			}
		}
	}
	return &LU{n: n, lu: lu, piv: piv}, nil
}

// Solve solves A·x = b for x using the factorization.
func (f *LU) Solve(b []float64) ([]float64, error) {
	if len(b) != f.n {
		return nil, fmt.Errorf("linalg: Solve length mismatch: %d want %d", len(b), f.n)
	}
	x := make([]float64, f.n)
	// Apply the permutation, then forward-substitute L (unit diagonal).
	for i := 0; i < f.n; i++ {
		x[i] = b[f.piv[i]]
	}
	for i := 0; i < f.n; i++ {
		row := f.lu.Row(i)
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back-substitute U.
	for i := f.n - 1; i >= 0; i-- {
		row := f.lu.Row(i)
		s := x[i]
		for j := i + 1; j < f.n; j++ {
			s -= row[j] * x[j]
		}
		d := row[i]
		if d == 0 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// SolveMatrix solves A·X = B column by column and returns X.
func (f *LU) SolveMatrix(b *Matrix) (*Matrix, error) {
	if b.Rows != f.n {
		return nil, fmt.Errorf("linalg: SolveMatrix shape mismatch: %d rows want %d", b.Rows, f.n)
	}
	out := NewMatrix(f.n, b.Cols)
	col := make([]float64, f.n)
	for c := 0; c < b.Cols; c++ {
		for r := 0; r < f.n; r++ {
			col[r] = b.At(r, c)
		}
		x, err := f.Solve(col)
		if err != nil {
			return nil, err
		}
		for r := 0; r < f.n; r++ {
			out.Set(r, c, x[r])
		}
	}
	return out, nil
}

// Inverse returns A⁻¹ computed from the factorization.
func (f *LU) Inverse() (*Matrix, error) {
	return f.SolveMatrix(Identity(f.n))
}

// Solve is a convenience wrapper that factors a and solves a·x = b once.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}
