package sched

import (
	"math"
	"testing"

	"thermaldc/internal/model"
	"thermaldc/internal/power"
	"thermaldc/internal/workload"
)

// twoCoreDC builds a 1-node, 2-core data center with one task type:
// ECS 1 at P-state 0, 0.5 at P-state 1.
func twoCoreDC() *model.DataCenter {
	nt := model.NodeType{
		Name:      "n",
		BasePower: 0.1,
		NumCores:  2,
		Core: power.CoreModel{
			FreqMHz: []float64{2000, 1000},
			Voltage: []float64{1, 1},
			P0Power: 0.1,
		},
		AirFlow: 0.07,
	}
	return &model.DataCenter{
		NodeTypes:   []model.NodeType{nt},
		Nodes:       []model.Node{{Type: 0}},
		CRACs:       []model.CRAC{{Flow: 0.07}},
		TaskTypes:   []model.TaskType{{Name: "t", Reward: 2, RelDeadline: 3, ArrivalRate: 1}},
		ECS:         model.ECS{{{1, 0.5, 0}}},
		Alpha:       [][]float64{{0, 1}, {1, 0}},
		RedlineNode: 25,
		RedlineCRAC: 40,
		Pconst:      10,
	}
}

func TestNewValidation(t *testing.T) {
	dc := twoCoreDC()
	tc := [][]float64{{0.5, 0.5}}
	if _, err := New(dc, []int{0}, tc); err == nil {
		t.Error("wrong P-state count accepted")
	}
	if _, err := New(dc, []int{0, 0}, [][]float64{}); err == nil {
		t.Error("wrong TC task count accepted")
	}
	if _, err := New(dc, []int{0, 0}, [][]float64{{0.5}}); err == nil {
		t.Error("wrong TC core count accepted")
	}
	if _, err := New(dc, []int{0, 0}, tc); err != nil {
		t.Errorf("valid inputs rejected: %v", err)
	}
}

func TestExecTime(t *testing.T) {
	dc := twoCoreDC()
	s, err := New(dc, []int{0, 1}, [][]float64{{0.5, 0.25}})
	if err != nil {
		t.Fatal(err)
	}
	if s.ExecTime(0, 0) != 1 {
		t.Errorf("exec time core 0 = %g, want 1", s.ExecTime(0, 0))
	}
	if s.ExecTime(0, 1) != 2 {
		t.Errorf("exec time core 1 = %g, want 2", s.ExecTime(0, 1))
	}
	// Off core: infinite exec time.
	s2, _ := New(dc, []int{0, 2}, [][]float64{{0.5, 0}})
	if !math.IsInf(s2.ExecTime(0, 1), 1) {
		t.Error("off core should have infinite exec time")
	}
}

func TestSchedulePrefersLowestRatio(t *testing.T) {
	dc := twoCoreDC()
	s, err := New(dc, []int{0, 0}, [][]float64{{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	freeAt := []float64{0, 0}
	// First assignment at t=1: both ratios 0; tie broken by earlier
	// completion — both identical, the scan picks core 0.
	task := workload.Task{Type: 0, Arrival: 1, Deadline: 4}
	core, done, ok := s.Schedule(task, 1, freeAt)
	if !ok || core != 0 || done != 2 {
		t.Fatalf("first schedule: core=%d done=%g ok=%v", core, done, ok)
	}
	freeAt[0] = done
	// Second at t=1.1: core 0 now has ratio > 0, core 1 has 0 → core 1.
	core, _, ok = s.Schedule(workload.Task{Type: 0, Arrival: 1.1, Deadline: 5}, 1.1, freeAt)
	if !ok || core != 1 {
		t.Fatalf("second schedule picked core %d, want 1", core)
	}
}

func TestScheduleDropsWhenDeadlineImpossible(t *testing.T) {
	dc := twoCoreDC()
	s, _ := New(dc, []int{0, 0}, [][]float64{{1, 1}})
	// Both cores busy until t=10; deadline 3 → drop.
	if _, _, ok := s.Schedule(workload.Task{Type: 0, Arrival: 1, Deadline: 3}, 1, []float64{10, 10}); ok {
		t.Fatal("task should be dropped")
	}
	// Deadline 12 → feasible (start 10, done 11).
	if _, _, ok := s.Schedule(workload.Task{Type: 0, Arrival: 1, Deadline: 12}, 1, []float64{10, 10}); !ok {
		t.Fatal("task should be schedulable")
	}
}

func TestScheduleSkipsZeroTC(t *testing.T) {
	dc := twoCoreDC()
	s, _ := New(dc, []int{0, 0}, [][]float64{{0, 1}})
	core, _, ok := s.Schedule(workload.Task{Type: 0, Arrival: 1, Deadline: 5}, 1, []float64{0, 0})
	if !ok || core != 1 {
		t.Fatalf("core = %d, want 1 (TC=0 core must be skipped)", core)
	}
}

func TestScheduleSkipsOverQuotaCores(t *testing.T) {
	dc := twoCoreDC()
	s, _ := New(dc, []int{0, 0}, [][]float64{{0.1, 0}})
	// Saturate core 0's quota: after 2 assignments by t=1, ATC = 2 > 0.1.
	freeAt := []float64{0, 0}
	for i := 0; i < 2; i++ {
		if _, done, ok := s.Schedule(workload.Task{Type: 0, Arrival: 0.1, Deadline: 50}, 0.1, freeAt); ok {
			freeAt[0] = done
		}
	}
	if r := s.Ratio(0, 0, 1); r <= 1 {
		t.Fatalf("ratio = %g, expected > 1", r)
	}
	// Now the only core with TC > 0 is over quota → drop.
	if _, _, ok := s.Schedule(workload.Task{Type: 0, Arrival: 1, Deadline: 50}, 1, freeAt); ok {
		t.Fatal("over-quota core should not accept tasks")
	}
}

func TestRatioEdgeCases(t *testing.T) {
	dc := twoCoreDC()
	s, _ := New(dc, []int{0, 0}, [][]float64{{1, 0}})
	if r := s.Ratio(0, 1, 5); !math.IsInf(r, 1) {
		t.Errorf("TC=0 ratio = %g, want +Inf", r)
	}
	if r := s.Ratio(0, 0, 0); r != 0 {
		t.Errorf("t=0 ratio = %g, want 0", r)
	}
}

func TestATCMatrix(t *testing.T) {
	dc := twoCoreDC()
	s, _ := New(dc, []int{0, 0}, [][]float64{{1, 1}})
	freeAt := []float64{0, 0}
	for i := 0; i < 4; i++ {
		now := float64(i)
		if core, done, ok := s.Schedule(workload.Task{Type: 0, Arrival: now, Deadline: now + 3}, now, freeAt); ok {
			freeAt[core] = done
		}
	}
	atc := s.ATC(4)
	total := atc[0][0] + atc[0][1]
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("total ATC = %g, want 1 (4 tasks / 4 s)", total)
	}
	zero := s.ATC(0)
	if zero[0][0] != 0 {
		t.Error("ATC at elapsed=0 should be zero")
	}
}
