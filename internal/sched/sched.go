// Package sched implements the paper's second-step assignment (Section
// V.C): a dynamic scheduler that maps each arriving task to the core whose
// actual-to-desired execution-rate ratio ATC(i,k)/TC(i,k) is smallest,
// among cores that can still complete the task by its deadline, and drops
// tasks no core can serve. Keeping every ratio near 1 makes the realized
// execution rates track the Stage-3 desired rates.
package sched

import (
	"fmt"
	"math"

	"thermaldc/internal/model"
	"thermaldc/internal/telemetry"
	"thermaldc/internal/workload"
)

// Scheduler is the second-step policy plus its ATC bookkeeping.
type Scheduler struct {
	dc      *model.DataCenter
	pstates []int
	tc      [][]float64
	// counts[i][k] is the number of type-i tasks assigned to core k.
	counts [][]int
	// execTime[i][k] caches 1/ECS for the core's P-state (+Inf when the
	// core cannot run the type).
	execTime [][]float64
	// eligible[i] lists the cores with finite execTime for type i, so the
	// per-arrival scan skips turned-off and incapable cores (often half
	// the fleet in an oversubscribed data center).
	eligible [][]int
	// startTime anchors the ATC rate clock (elapsed = now − startTime);
	// zero for a fresh simulation, the epoch start when reassigning.
	startTime float64

	// Telemetry counters; the zero values are no-ops, so an uninstrumented
	// scheduler pays nothing on the per-arrival path.
	mAssigned telemetry.Counter
	mRejected telemetry.Counter
}

// SetRecorder wires per-arrival assignment counters to rec's metrics
// registry (tapo_sched_assigned_total / tapo_sched_rejected_total). A nil
// rec detaches cleanly.
func (s *Scheduler) SetRecorder(rec *telemetry.Recorder) {
	reg := rec.Registry()
	s.mAssigned = reg.Counter("tapo_sched_assigned_total",
		"tasks assigned to a core by the second-step scheduler")
	s.mRejected = reg.Counter("tapo_sched_rejected_total",
		"task arrivals the scheduler could not place (no deadline-feasible core, or policy drop)")
}

// SetStartTime anchors the ATC clock at t: rates are computed over
// now − t. Used by epoch-reassignment runs whose schedulers start mid-
// simulation.
func (s *Scheduler) SetStartTime(t float64) { s.startTime = t }

// StartTime returns the ATC clock anchor set by SetStartTime.
func (s *Scheduler) StartTime() float64 { return s.startTime }

// Counts returns a deep copy of the ATC assignment counts (tasks of type
// i assigned to core k so far). Together with StartTime it is the
// scheduler's complete mutable state, letting a checkpointed run rebuild
// an identically behaving scheduler with RestoreCounts.
func (s *Scheduler) Counts() [][]int {
	out := make([][]int, len(s.counts))
	for i := range s.counts {
		out[i] = append([]int(nil), s.counts[i]...)
	}
	return out
}

// RestoreCounts overwrites the ATC counts with a snapshot taken by Counts
// on an identically shaped scheduler (same task types, same core count).
func (s *Scheduler) RestoreCounts(counts [][]int) error {
	if len(counts) != len(s.counts) {
		return fmt.Errorf("sched: restoring %d task-type count rows, scheduler has %d", len(counts), len(s.counts))
	}
	for i := range counts {
		if len(counts[i]) != len(s.counts[i]) {
			return fmt.Errorf("sched: count row %d has %d cores, scheduler has %d", i, len(counts[i]), len(s.counts[i]))
		}
		copy(s.counts[i], counts[i])
	}
	return nil
}

// New builds a scheduler for the given first-step assignment: per-core
// P-states and the Stage-3 desired-rate matrix TC[i][k].
func New(dc *model.DataCenter, pstates []int, tc [][]float64) (*Scheduler, error) {
	ncores := dc.NumCores()
	if len(pstates) != ncores {
		return nil, fmt.Errorf("sched: %d P-states for %d cores", len(pstates), ncores)
	}
	if len(tc) != dc.T() {
		return nil, fmt.Errorf("sched: TC has %d task rows, want %d", len(tc), dc.T())
	}
	s := &Scheduler{
		dc:       dc,
		pstates:  pstates,
		tc:       tc,
		counts:   make([][]int, dc.T()),
		execTime: make([][]float64, dc.T()),
		eligible: make([][]int, dc.T()),
	}
	for i := range s.counts {
		if len(tc[i]) != ncores {
			return nil, fmt.Errorf("sched: TC[%d] has %d cores, want %d", i, len(tc[i]), ncores)
		}
		s.counts[i] = make([]int, ncores)
		s.execTime[i] = make([]float64, ncores)
		for j := range dc.Nodes {
			lo, hi := dc.CoreRange(j)
			nt := dc.Nodes[j].Type
			for k := lo; k < hi; k++ {
				ecs := dc.ECS[i][nt][pstates[k]]
				if ecs <= 0 {
					s.execTime[i][k] = math.Inf(1)
				} else {
					s.execTime[i][k] = 1 / ecs
					s.eligible[i] = append(s.eligible[i], k)
				}
			}
		}
	}
	return s, nil
}

// ExecTime returns the execution time of task type i on core k (possibly
// +Inf).
func (s *Scheduler) ExecTime(task, core int) float64 { return s.execTime[task][core] }

// Ratio returns ATC(i,k)/TC(i,k) at time now; cores with TC = 0 report
// +Inf so they are never selected.
func (s *Scheduler) Ratio(task, core int, now float64) float64 {
	tc := s.tc[task][core]
	if tc <= 0 {
		return math.Inf(1)
	}
	elapsed := now - s.startTime
	if elapsed <= 0 {
		return 0
	}
	return float64(s.counts[task][core]) / elapsed / tc
}

// Schedule picks a core for the task with the paper's min-ratio rule, or
// reports a drop. On success the internal ATC counts are updated; the
// caller must then occupy the core until completion. Equivalent to
// ScheduleWith(PaperPolicy{}, ...).
func (s *Scheduler) Schedule(task workload.Task, now float64, freeAt []float64) (core int, completion float64, ok bool) {
	return s.ScheduleWith(PaperPolicy{}, task, now, freeAt)
}

// ATC returns the achieved execution-rate matrix at the given time:
// counts/elapsed.
func (s *Scheduler) ATC(elapsed float64) [][]float64 {
	out := make([][]float64, len(s.counts))
	for i := range s.counts {
		out[i] = make([]float64, len(s.counts[i]))
		if elapsed <= 0 {
			continue
		}
		for k, c := range s.counts[i] {
			out[i][k] = float64(c) / elapsed
		}
	}
	return out
}
