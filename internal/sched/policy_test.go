package sched

import (
	"math/rand"
	"testing"

	"thermaldc/internal/workload"
)

func schedulerForPolicies(t *testing.T) *Scheduler {
	t.Helper()
	dc := twoCoreDC()
	s, err := New(dc, []int{0, 1}, [][]float64{{1, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestScheduleWithMatchesSchedule(t *testing.T) {
	dc := twoCoreDC()
	mk := func() *Scheduler {
		s, err := New(dc, []int{0, 0}, [][]float64{{0.7, 0.9}})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(), mk()
	freeA := []float64{0, 0}
	freeB := []float64{0, 0}
	for i := 0; i < 20; i++ {
		now := float64(i) * 0.5
		task := workload.Task{Type: 0, Arrival: now, Deadline: now + 3}
		c1, d1, ok1 := a.Schedule(task, now, freeA)
		c2, d2, ok2 := b.ScheduleWith(PaperPolicy{}, task, now, freeB)
		if c1 != c2 || d1 != d2 || ok1 != ok2 {
			t.Fatalf("step %d: Schedule (%d,%g,%v) != ScheduleWith(Paper) (%d,%g,%v)",
				i, c1, d1, ok1, c2, d2, ok2)
		}
		if ok1 {
			freeA[c1], freeB[c2] = d1, d2
		}
	}
}

func TestMinCompletionPolicyPicksFastest(t *testing.T) {
	s := schedulerForPolicies(t)
	// Core 0 at P0 (exec 1), core 1 at P1 (exec 2): min completion = core 0.
	task := workload.Task{Type: 0, Arrival: 0, Deadline: 10}
	core, _, ok := s.ScheduleWith(MinCompletionPolicy{}, task, 0, []float64{0, 0})
	if !ok || core != 0 {
		t.Fatalf("core = %d, want 0", core)
	}
	// With core 0 busy until t=5, core 1 completes sooner (2 vs 6).
	core, _, ok = s.ScheduleWith(MinCompletionPolicy{}, task, 0, []float64{5, 0})
	if !ok || core != 1 {
		t.Fatalf("core = %d, want 1", core)
	}
}

func TestMinCompletionIgnoresQuota(t *testing.T) {
	// Unlike the paper policy, min-completion serves tasks even when every
	// core is over its desired rate.
	dc := twoCoreDC()
	s, _ := New(dc, []int{0, 0}, [][]float64{{0.01, 0.01}})
	freeAt := []float64{0, 0}
	for i := 0; i < 5; i++ {
		if core, done, ok := s.ScheduleWith(MinCompletionPolicy{}, workload.Task{Type: 0, Arrival: 0.1, Deadline: 50}, 0.1, freeAt); ok {
			freeAt[core] = done
		} else {
			t.Fatal("min-completion should never drop a feasible task")
		}
	}
	if _, _, ok := s.ScheduleWith(PaperPolicy{}, workload.Task{Type: 0, Arrival: 1, Deadline: 50}, 1, freeAt); ok {
		t.Fatal("paper policy should drop once over quota")
	}
}

func TestRandomPolicyIsFeasibleAndSeeded(t *testing.T) {
	s := schedulerForPolicies(t)
	p1 := &RandomPolicy{Rng: rand.New(rand.NewSource(1))}
	task := workload.Task{Type: 0, Arrival: 0, Deadline: 10}
	seen := map[int]bool{}
	freeAt := []float64{0, 0}
	for i := 0; i < 30; i++ {
		core, _, ok := s.ScheduleWith(p1, task, 0, freeAt)
		if !ok {
			t.Fatal("random policy dropped a feasible task")
		}
		seen[core] = true
	}
	if len(seen) != 2 {
		t.Error("random policy never explored both cores")
	}
}

func TestRoundRobinCycles(t *testing.T) {
	s := schedulerForPolicies(t)
	p := &RoundRobinPolicy{}
	task := workload.Task{Type: 0, Arrival: 0, Deadline: 100}
	var order []int
	freeAt := []float64{0, 0}
	for i := 0; i < 4; i++ {
		core, _, ok := s.ScheduleWith(p, task, 0, freeAt)
		if !ok {
			t.Fatal("round robin dropped")
		}
		order = append(order, core)
	}
	want := []int{0, 1, 0, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestPolicyNames(t *testing.T) {
	names := map[string]Policy{
		"paper-min-ratio": PaperPolicy{},
		"min-completion":  MinCompletionPolicy{},
		"random-feasible": &RandomPolicy{Rng: rand.New(rand.NewSource(1))},
		"round-robin":     &RoundRobinPolicy{},
	}
	for want, p := range names {
		if p.Name() != want {
			t.Errorf("Name() = %q, want %q", p.Name(), want)
		}
	}
}

func TestScheduleWithNilPolicyPanics(t *testing.T) {
	s := schedulerForPolicies(t)
	defer func() {
		if recover() == nil {
			t.Fatal("nil policy did not panic")
		}
	}()
	s.ScheduleWith(nil, workload.Task{}, 0, []float64{0, 0})
}

func TestSoftRatioFallsBackInsteadOfDropping(t *testing.T) {
	dc := twoCoreDC()
	s, _ := New(dc, []int{0, 0}, [][]float64{{0.01, 0.02}})
	freeAt := []float64{0, 0}
	// Saturate both cores' quotas.
	for i := 0; i < 4; i++ {
		if core, done, ok := s.ScheduleWith(SoftRatioPolicy{}, workload.Task{Type: 0, Arrival: 0.1, Deadline: 50}, 0.1, freeAt); ok {
			freeAt[core] = done
		}
	}
	task := workload.Task{Type: 0, Arrival: 1, Deadline: 50}
	if _, _, ok := s.ScheduleWith(PaperPolicy{}, task, 1, freeAt); ok {
		t.Fatal("paper policy should drop")
	}
	core, _, ok := s.ScheduleWith(SoftRatioPolicy{}, task, 1, freeAt)
	if !ok {
		t.Fatal("soft policy should fall back instead of dropping")
	}
	// It picks the least-over-quota core: core 1 has double the desired
	// rate, so its ratio is half of core 0's for equal counts.
	if r0, r1 := s.Ratio(0, 0, 1), s.Ratio(0, 1, 1); r1 < r0 && core != 1 {
		t.Errorf("core = %d, want the lower-ratio core 1 (r0=%g r1=%g)", core, r0, r1)
	}
}

func TestSoftRatioAgreesWithPaperWithinQuota(t *testing.T) {
	dc := twoCoreDC()
	a, _ := New(dc, []int{0, 0}, [][]float64{{1, 1}})
	b, _ := New(dc, []int{0, 0}, [][]float64{{1, 1}})
	freeA := []float64{0, 0}
	freeB := []float64{0, 0}
	for i := 0; i < 10; i++ {
		now := float64(i)
		task := workload.Task{Type: 0, Arrival: now, Deadline: now + 5}
		c1, d1, ok1 := a.ScheduleWith(PaperPolicy{}, task, now, freeA)
		c2, d2, ok2 := b.ScheduleWith(SoftRatioPolicy{}, task, now, freeB)
		if !ok1 || !ok2 || c1 != c2 || d1 != d2 {
			t.Fatalf("step %d: paper (%d,%g,%v) vs soft (%d,%g,%v)", i, c1, d1, ok1, c2, d2, ok2)
		}
		freeA[c1], freeB[c2] = d1, d2
	}
}
