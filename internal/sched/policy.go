package sched

import (
	"fmt"
	"math"
	"math/rand"

	"thermaldc/internal/workload"
)

// Candidate is one deadline-feasible core choice for an arriving task.
type Candidate struct {
	// Core is the global core index.
	Core int
	// Start and Completion are the execution window if chosen.
	Start, Completion float64
	// Ratio is ATC/TC at decision time (+Inf when TC = 0 for this pair).
	Ratio float64
}

// Policy chooses among deadline-feasible candidates (never empty) or
// decides to drop the task anyway. Implementations must be deterministic
// given their own state.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Pick returns the index into cands of the chosen core, or drop=true.
	Pick(task workload.Task, now float64, cands []Candidate) (idx int, drop bool)
}

// PaperPolicy is the paper's Section-V.C rule: among cores whose
// actual/desired ratio is at most 1, pick the minimum ratio (ties: the
// earliest completion); if every candidate is over its desired rate, drop.
type PaperPolicy struct{}

// Name implements Policy.
func (PaperPolicy) Name() string { return "paper-min-ratio" }

// Pick implements Policy.
func (PaperPolicy) Pick(_ workload.Task, _ float64, cands []Candidate) (int, bool) {
	best := -1
	for i, c := range cands {
		if c.Ratio > 1 {
			continue
		}
		if best < 0 || c.Ratio < cands[best].Ratio ||
			(c.Ratio == cands[best].Ratio && c.Completion < cands[best].Completion) {
			best = i
		}
	}
	if best < 0 {
		return 0, true
	}
	return best, false
}

// SoftRatioPolicy is our softened variant of the paper's rule: prefer the
// minimum-ratio core among those within quota, but when every candidate is
// over its desired rate, assign to the minimum-ratio core anyway instead
// of dropping. The policy-ablation experiment motivates it: the hard
// quota cap forfeits reward that idle cores could harvest, especially
// early in a run when the ATC estimate is noisy.
type SoftRatioPolicy struct{}

// Name implements Policy.
func (SoftRatioPolicy) Name() string { return "soft-min-ratio" }

// Pick implements Policy.
func (SoftRatioPolicy) Pick(task workload.Task, now float64, cands []Candidate) (int, bool) {
	if idx, drop := (PaperPolicy{}).Pick(task, now, cands); !drop {
		return idx, false
	}
	// All over quota: take the least-over-quota core; among untracked
	// (TC = 0, ratio +Inf) cores prefer the earliest completion.
	best := 0
	for i, c := range cands {
		if c.Ratio < cands[best].Ratio ||
			(c.Ratio == cands[best].Ratio && c.Completion < cands[best].Completion) {
			best = i
		}
	}
	return best, false
}

// MinCompletionPolicy greedily picks the earliest completion regardless of
// the desired rates (a natural "fastest first" strawman).
type MinCompletionPolicy struct{}

// Name implements Policy.
func (MinCompletionPolicy) Name() string { return "min-completion" }

// Pick implements Policy.
func (MinCompletionPolicy) Pick(_ workload.Task, _ float64, cands []Candidate) (int, bool) {
	best := 0
	for i, c := range cands {
		if c.Completion < cands[best].Completion {
			best = i
		}
	}
	return best, false
}

// RandomPolicy picks a uniformly random feasible core; it isolates how
// much of the paper policy's value comes from honoring TC at all.
type RandomPolicy struct {
	// Rng must be non-nil.
	Rng *rand.Rand
}

// Name implements Policy.
func (*RandomPolicy) Name() string { return "random-feasible" }

// Pick implements Policy.
func (p *RandomPolicy) Pick(_ workload.Task, _ float64, cands []Candidate) (int, bool) {
	return p.Rng.Intn(len(cands)), false
}

// RoundRobinPolicy cycles through cores, taking the next feasible one.
type RoundRobinPolicy struct {
	next int
}

// Name implements Policy.
func (*RoundRobinPolicy) Name() string { return "round-robin" }

// Pick implements Policy.
func (p *RoundRobinPolicy) Pick(_ workload.Task, _ float64, cands []Candidate) (int, bool) {
	best := 0
	bestKey := math.MaxInt
	for i, c := range cands {
		key := c.Core - p.next
		if key < 0 {
			key += 1 << 30
		}
		if key < bestKey {
			bestKey, best = key, i
		}
	}
	p.next = cands[best].Core + 1
	return best, false
}

// ScheduleWith is the policy-parameterized variant of Schedule: the
// scheduler builds the deadline-feasible candidate set (cores that can run
// the type at all), the policy chooses. ATC counts update on assignment.
func (s *Scheduler) ScheduleWith(policy Policy, task workload.Task, now float64, freeAt []float64) (core int, completion float64, ok bool) {
	if policy == nil {
		panic("sched: nil policy")
	}
	var cands []Candidate
	for _, k := range s.eligible[task.Type] {
		et := s.execTime[task.Type][k]
		start := math.Max(now, freeAt[k])
		done := start + et
		if done > task.Deadline+1e-12 {
			continue
		}
		cands = append(cands, Candidate{
			Core:       k,
			Start:      start,
			Completion: done,
			Ratio:      s.Ratio(task.Type, k, now),
		})
	}
	if len(cands) == 0 {
		s.mRejected.Inc()
		return -1, 0, false
	}
	idx, drop := policy.Pick(task, now, cands)
	if drop {
		s.mRejected.Inc()
		return -1, 0, false
	}
	if idx < 0 || idx >= len(cands) {
		panic(fmt.Sprintf("sched: policy %s picked invalid candidate %d of %d", policy.Name(), idx, len(cands)))
	}
	chosen := cands[idx]
	s.counts[task.Type][chosen.Core]++
	s.mAssigned.Inc()
	return chosen.Core, chosen.Completion, true
}
