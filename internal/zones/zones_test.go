package zones

import (
	"context"
	"math"
	"reflect"
	"testing"

	"thermaldc/internal/assign"
	"thermaldc/internal/linprog"
	"thermaldc/internal/model"
	"thermaldc/internal/scenario"
	"thermaldc/internal/tempsearch"
	"thermaldc/internal/thermal"
)

// feasibleOutlets returns the uniform 15 °C outlet vector the existing
// Stage-1 tests solve at: cold enough to keep inlets under redline, well
// inside the default search window.
func feasibleOutlets(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 15
	}
	return out
}

func buildScenario(t *testing.T, nodes, cracs int, frac float64, seed int64) *scenario.Scenario {
	t.Helper()
	cfg := scenario.Default(0.3, 0.1, seed)
	cfg.NNodes, cfg.NCracs = nodes, cracs
	cfg.PconstFraction = frac
	sc, err := scenario.Build(cfg)
	if err != nil {
		t.Fatalf("scenario.Build: %v", err)
	}
	return sc
}

func TestPartitionSingleZone(t *testing.T) {
	sc := buildScenario(t, 20, 2, 0.5, 1)
	part, err := PartitionDataCenter(sc.DC, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(part.Zones) != 1 {
		t.Fatalf("paper-style single room split into %d zones", len(part.Zones))
	}
	if part.MaxCross != 0 {
		t.Errorf("MaxCross = %g, want 0", part.MaxCross)
	}
	z := part.Zones[0]
	if len(z.CRACs) != 2 || len(z.Nodes) != 20 {
		t.Fatalf("zone has %d CRACs, %d nodes", len(z.CRACs), len(z.Nodes))
	}
	if z.DC == sc.DC {
		t.Fatal("single zone must be a private shallow copy, not the parent itself")
	}
	if &z.DC.Alpha[0][0] != &sc.DC.Alpha[0][0] {
		t.Error("single zone should share the parent's Alpha storage")
	}
}

// TestSingleZoneBitIdentical is the paper-scale differential guarantee:
// on a floor that does not decompose (one thermal component), the
// zone-decomposed solve must reproduce the monolithic Stage-1 result bit
// for bit, including the ledgers, the dual, and the feasibility verdict.
func TestSingleZoneBitIdentical(t *testing.T) {
	sc := buildScenario(t, 30, 3, 0.5, 3)
	part, err := PartitionDataCenter(sc.DC, 0)
	if err != nil {
		t.Fatal(err)
	}
	zs, err := NewSolverFromPartition(part, sc.Thermal, Config{})
	if err != nil {
		t.Fatal(err)
	}
	arrs, err := assign.NodeARRs(sc.DC, 50)
	if err != nil {
		t.Fatal(err)
	}
	out := feasibleOutlets(sc.DC.NCRAC())
	want, err := assign.Stage1Fixed(sc.DC, sc.Thermal, arrs, out)
	if err != nil {
		t.Fatalf("monolithic: %v", err)
	}
	got, err := zs.Solve(context.Background(), out)
	if err != nil {
		t.Fatalf("decomposed: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("single-zone decomposed result differs from monolithic:\n got %+v\nwant %+v", got, want)
	}
	st := zs.LastStats()
	if !st.Shortcut || !st.Converged || st.Rounds != 0 {
		t.Errorf("single zone must settle via the shortcut: %+v", st)
	}
}

func buildFleet(t *testing.T, cfg FleetConfig) *Fleet {
	t.Helper()
	f, err := BuildFleet(cfg)
	if err != nil {
		t.Fatalf("BuildFleet: %v", err)
	}
	return f
}

// relDiff returns |a−b| / max(1, |a|, |b|).
func relDiff(a, b float64) float64 {
	return math.Abs(a-b) / math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// solveMonolithic solves the assembled fleet's Stage-1 LP directly.
func solveMonolithic(t *testing.T, f *Fleet, out []float64) *assign.Stage1Result {
	t.Helper()
	dc, err := f.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	tm, err := thermal.New(dc)
	if err != nil {
		t.Fatal(err)
	}
	arrs, err := assign.NodeARRs(dc, 50)
	if err != nil {
		t.Fatal(err)
	}
	res, err := assign.Stage1Fixed(dc, tm, arrs, out)
	if err != nil {
		t.Fatalf("monolithic: %v", err)
	}
	return res
}

// TestFleetMatchesMonolithic sweeps cap tightness and seeds: the
// zone-decomposed objective must match the monolithic LP on the assembled
// model within the coordination tolerance, whether or not the cap binds.
func TestFleetMatchesMonolithic(t *testing.T) {
	for _, frac := range []float64{0.3, 0.6, 0.9} {
		for _, seed := range []int64{1, 7} {
			f := buildFleet(t, FleetConfig{
				Zones: 3, NodesPerZone: 10, CracsPerZone: 2, Variants: 2,
				Seed: seed, PconstFraction: frac,
			})
			out := feasibleOutlets(f.NumCRACs())
			want := solveMonolithic(t, f, out)

			zs, err := NewFleetSolver(f, Config{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := zs.Solve(context.Background(), out)
			if err != nil {
				t.Fatalf("frac=%g seed=%d: %v", frac, seed, err)
			}
			st := zs.LastStats()
			if !st.Converged {
				t.Fatalf("frac=%g seed=%d: not converged: %+v", frac, seed, st)
			}
			if d := relDiff(got.PredictedARR, want.PredictedARR); d > 1e-6 {
				t.Errorf("frac=%g seed=%d: objective %.12g vs monolithic %.12g (rel %.3g, stats %+v)",
					frac, seed, got.PredictedARR, want.PredictedARR, d, st)
			}
			if got.Feasible != want.Feasible {
				t.Errorf("frac=%g seed=%d: Feasible=%v, monolithic %v", frac, seed, got.Feasible, want.Feasible)
			}
			// The assembled ledger must be self-consistent and respect the cap
			// whenever the verdict says so.
			if got.Feasible && got.TotalPower > f.Pconst+1e-6 {
				t.Errorf("frac=%g seed=%d: feasible but TotalPower %.9g > cap %.9g",
					frac, seed, got.TotalPower, f.Pconst)
			}
		}
	}
}

// TestPartitionOfAssembledFleet closes the loop through the partitioner:
// assembling a fleet and re-partitioning its block-diagonal Alpha must
// recover the zones, and the partition-path solver (with its monolithic
// fallback armed) must agree with the monolithic LP.
func TestPartitionOfAssembledFleet(t *testing.T) {
	f := buildFleet(t, FleetConfig{
		Zones: 3, NodesPerZone: 10, CracsPerZone: 2, Variants: 3, Seed: 3, PconstFraction: 0.3,
	})
	dc, err := f.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	part, err := PartitionDataCenter(dc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(part.Zones) != 3 {
		t.Fatalf("recovered %d zones, want 3", len(part.Zones))
	}
	for i, z := range part.Zones {
		if len(z.CRACs) != 2 || len(z.Nodes) != 10 {
			t.Errorf("zone %d: %d CRACs, %d nodes", i, len(z.CRACs), len(z.Nodes))
		}
	}
	tm, err := thermal.New(dc)
	if err != nil {
		t.Fatal(err)
	}
	zs, err := NewSolverFromPartition(part, tm, Config{})
	if err != nil {
		t.Fatal(err)
	}
	out := feasibleOutlets(dc.NCRAC())
	got, err := zs.Solve(context.Background(), out)
	if err != nil {
		t.Fatal(err)
	}
	arrs, err := assign.NodeARRs(dc, 50)
	if err != nil {
		t.Fatal(err)
	}
	want, err := assign.Stage1Fixed(dc, tm, arrs, out)
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiff(got.PredictedARR, want.PredictedARR); d > 1e-6 {
		t.Errorf("objective %.12g vs monolithic %.12g (rel %.3g)", got.PredictedARR, want.PredictedARR, d)
	}
	if zs.LastStats().Fallback {
		t.Errorf("decomposed solve fell back to the monolithic path: %+v", zs.LastStats())
	}
}

// loopDC hand-builds a block-diagonal data center: zone z is one CRAC in
// a perfect air loop with its nodes (every node inlet is the CRAC outlet,
// the CRAC inlet is the flow-weighted mix of its nodes' outlets), with
// flows matched so the mixing matrix rows stay stochastic. The Appendix-B
// layout generator cannot place such degenerate rooms; building them by
// hand keeps the zones exactly independent and exactly coolable. zones
// lists (node type, node count) per zone; Pconst is left to the caller.
func loopDC(t *testing.T, base *model.DataCenter, zones [][2]int) *model.DataCenter {
	t.Helper()
	Z := len(zones)
	nn := 0
	for _, zc := range zones {
		nn += zc[1]
	}
	n := Z + nn
	dc := &model.DataCenter{
		NodeTypes:   base.NodeTypes,
		TaskTypes:   base.TaskTypes,
		ECS:         base.ECS,
		RedlineNode: base.RedlineNode,
		RedlineCRAC: base.RedlineCRAC,
		Alpha:       make([][]float64, n),
	}
	for i := range dc.Alpha {
		dc.Alpha[i] = make([]float64, n)
	}
	off := 0
	for z, zc := range zones {
		typ, count := zc[0], zc[1]
		dc.CRACs = append(dc.CRACs, model.CRAC{Flow: float64(count) * dc.NodeTypes[typ].AirFlow})
		for j := 0; j < count; j++ {
			dc.Nodes = append(dc.Nodes, model.Node{Type: typ, HotAisle: z, Rack: z})
			dc.Alpha[z][Z+off+j] = 1 / float64(count)
			dc.Alpha[Z+off+j][z] = 1
		}
		off += count
	}
	return dc
}

// TestOneNodePerZone exercises the degenerate zone shape — one node, one
// CRAC per zone — on a hand-built floor, going through the partitioner
// rather than the fleet builder.
func TestOneNodePerZone(t *testing.T) {
	base := buildScenario(t, 20, 2, 0.5, 1).DC
	const Z = 3
	dc := loopDC(t, base, [][2]int{
		{0, 1}, {1 % len(base.NodeTypes), 1}, {0, 1},
	})
	tm, err := thermal.New(dc)
	if err != nil {
		t.Fatal(err)
	}
	pmin, pmax, err := assign.PowerBounds(dc, tm, tempsearch.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dc.Pconst = pmin + 0.4*(pmax-pmin)
	if err := dc.Validate(); err != nil {
		t.Fatal(err)
	}

	part, err := PartitionDataCenter(dc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(part.Zones) != Z {
		t.Fatalf("partitioned into %d zones, want %d", len(part.Zones), Z)
	}
	for i, z := range part.Zones {
		if len(z.CRACs) != 1 || len(z.Nodes) != 1 {
			t.Errorf("zone %d: %d CRACs, %d nodes, want 1/1", i, len(z.CRACs), len(z.Nodes))
		}
	}
	zs, err := NewSolverFromPartition(part, tm, Config{})
	if err != nil {
		t.Fatal(err)
	}
	out := feasibleOutlets(Z)
	got, err := zs.Solve(context.Background(), out)
	if err != nil {
		t.Fatal(err)
	}
	arrs, err := assign.NodeARRs(dc, 50)
	if err != nil {
		t.Fatal(err)
	}
	want, err := assign.Stage1Fixed(dc, tm, arrs, out)
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiff(got.PredictedARR, want.PredictedARR); d > 1e-6 {
		t.Errorf("objective %.12g vs monolithic %.12g (rel %.3g, stats %+v)",
			got.PredictedARR, want.PredictedARR, d, zs.LastStats())
	}
	if zs.LastStats().Fallback {
		t.Errorf("one-node-per-zone solve fell back: %+v", zs.LastStats())
	}
}

// TestCapBindingInOneZone pins the asymmetric degenerate case from the
// issue: the shared cap binds in exactly one zone. Zone 0 holds one node
// of the steeper-ARR type; zone 1 holds four nodes of the type whose
// flattest envelope segment has the strictly smallest reward-per-kW. A
// cap trimmed slightly below the joint full draw therefore cuts only
// zone 1's flattest tranche: the optimum keeps zone 0 at its saturated
// value (power row slack, shadow price 0) and squeezes zone 1 (positive
// shadow price) — and the coordination loop must discover that split.
func TestCapBindingInOneZone(t *testing.T) {
	base := buildScenario(t, 20, 2, 0.5, 1).DC
	if len(base.NodeTypes) < 2 {
		t.Fatalf("need two node types, have %d", len(base.NodeTypes))
	}
	arrs, err := assign.NodeARRs(base, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Pick steep = type with the larger flattest-segment slope. With one
	// CRAC per zone at the same outlet temperature, the linearized CRAC
	// power coefficient is identical across zones, so this ordering in
	// reward-per-core-kW is also the ordering in reward-per-budget-kW.
	flattest := func(typ int) float64 {
		segs := arrs[typ].Scale(float64(base.NodeTypes[typ].NumCores)).Segments()
		return segs[len(segs)-1].Slope
	}
	steep, flat := 0, 1
	if flattest(1) > flattest(0) {
		steep, flat = 1, 0
	}
	if flattest(steep) <= flattest(flat) {
		t.Fatalf("node types have equal flattest slopes (%g); cannot order zones", flattest(steep))
	}

	dc := loopDC(t, base, [][2]int{{steep, 1}, {flat, 4}})
	dc.Pconst = 1000 // generous: measure the unconstrained full draw first
	if err := dc.Validate(); err != nil {
		t.Fatal(err)
	}
	tm, err := thermal.New(dc)
	if err != nil {
		t.Fatal(err)
	}
	part, err := PartitionDataCenter(dc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(part.Zones) != 2 {
		t.Fatalf("partitioned into %d zones, want 2", len(part.Zones))
	}
	zs, err := NewSolverFromPartition(part, tm, Config{})
	if err != nil {
		t.Fatal(err)
	}
	out := feasibleOutlets(2)
	ctx := context.Background()
	full, err := zs.Solve(ctx, out)
	if err != nil {
		t.Fatal(err)
	}
	if !zs.LastStats().Shortcut {
		t.Fatalf("generous cap should not need coordination: %+v", zs.LastStats())
	}
	v0full, v1full := zs.zones[0].best.value, zs.zones[1].best.value

	// Trim the cap into zone 1's flattest tranche (4 nodes × its final
	// segment is far longer than 0.25 kW) and re-solve on the same solver:
	// the partition path reads the parent's live Pconst.
	dc.Pconst = full.LinearPower - 0.25
	got, err := zs.Solve(ctx, out)
	if err != nil {
		t.Fatal(err)
	}
	st := zs.LastStats()
	if st.Shortcut || !st.Converged || st.Rounds == 0 {
		t.Fatalf("trimmed cap should force converged coordination rounds: %+v", st)
	}
	if st.Fallback {
		t.Fatalf("decomposed solve fell back: %+v", st)
	}

	// Exactly one zone loses value, and only that zone prices power.
	z0, z1 := zs.zones[0], zs.zones[1]
	if z0.best.value < v0full-1e-6 {
		t.Errorf("zone 0 lost value (%.9g vs %.9g); the cap should bind only in zone 1",
			z0.best.value, v0full)
	}
	if z1.best.value > v1full-1e-4 {
		t.Errorf("zone 1 kept its unconstrained value (%.9g vs %.9g); the cap did not bind there",
			z1.best.value, v1full)
	}
	if z1.best.price <= 0 {
		t.Errorf("zone 1's power shadow price = %g, want > 0", z1.best.price)
	}

	// And the split is still optimal: compare with the monolithic LP.
	want, err := assign.Stage1Fixed(dc, tm, arrs, out)
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiff(got.PredictedARR, want.PredictedARR); d > 1e-6 {
		t.Errorf("objective %.12g vs monolithic %.12g (rel %.3g, stats %+v)",
			got.PredictedARR, want.PredictedARR, d, st)
	}
	if got.LinearPower > dc.Pconst+1e-6 {
		t.Errorf("LinearPower %.9g exceeds cap %.9g", got.LinearPower, dc.Pconst)
	}
}

// TestParallelismInvariance: the fan-out worker count must not change a
// single bit of the result.
func TestParallelismInvariance(t *testing.T) {
	f := buildFleet(t, FleetConfig{
		Zones: 3, NodesPerZone: 8, CracsPerZone: 2, Variants: 2, Seed: 9, PconstFraction: 0.2,
	})
	out := feasibleOutlets(f.NumCRACs())
	var ref *assign.Stage1Result
	for _, par := range []int{1, 2, 8} {
		zs, err := NewFleetSolver(f, Config{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		res, err := zs.Solve(context.Background(), out)
		if err != nil {
			t.Fatalf("Parallelism=%d: %v", par, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(res, ref) {
			t.Errorf("Parallelism=%d: result differs from Parallelism=1", par)
		}
	}
}

// TestWarmDualResolvesEngage: under MethodRevised with warm starts, the
// budget-only re-solves of the coordination rounds must hit the dual
// warm-start path (the outlets are fixed, so every non-RHS byte of the
// zone LPs repeats).
func TestWarmDualResolvesEngage(t *testing.T) {
	f := buildFleet(t, FleetConfig{
		Zones: 3, NodesPerZone: 10, CracsPerZone: 2, Variants: 1, Seed: 13, PconstFraction: 0.9,
	})
	f.Pconst *= 0.7
	out := feasibleOutlets(f.NumCRACs())

	cold, err := NewFleetSolver(f, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := cold.Solve(context.Background(), out)
	if err != nil {
		t.Fatal(err)
	}

	warm, err := NewFleetSolver(f, Config{Method: linprog.MethodRevised, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := warm.Solve(context.Background(), out)
	if err != nil {
		t.Fatal(err)
	}
	st := warm.LastStats()
	if st.Rounds == 0 {
		t.Fatalf("expected coordination rounds, got %+v", st)
	}
	lp := warm.TakeLPStats()
	if lp.WarmHits == 0 {
		t.Errorf("no warm dual re-solves engaged across %d zone solves: %+v", st.ZoneSolves, lp)
	}
	if d := relDiff(got.PredictedARR, want.PredictedARR); d > 1e-9 {
		t.Errorf("warm objective %.12g differs from cold %.12g", got.PredictedARR, want.PredictedARR)
	}
}

// TestPartitionNotDecomposable: a thermal component with no CRAC (or no
// nodes) has no self-contained model; the partitioner must refuse rather
// than emit a broken zone.
func TestPartitionNotDecomposable(t *testing.T) {
	base := buildScenario(t, 20, 2, 0.5, 1).DC
	dc := loopDC(t, base, [][2]int{{0, 1}, {0, 1}})
	// Cut node 1 loose from CRAC 1: CRAC 1 and node 1 become singleton
	// components (CRAC-only and node-only).
	dc.Alpha[1][3], dc.Alpha[1][1] = 0, 1
	dc.Alpha[3][1], dc.Alpha[3][3] = 0, 1
	if _, err := PartitionDataCenter(dc, 0); err == nil {
		t.Fatal("expected a not-decomposable error for a CRAC-less component")
	}
}

// TestFleetAssembleValidates: the assembled fleet passes model.Validate
// (exercised inside Assemble) and its block structure is consistent.
func TestFleetAssembleValidates(t *testing.T) {
	f := buildFleet(t, FleetConfig{Zones: 2, NodesPerZone: 8, CracsPerZone: 2, Variants: 2, Seed: 21})
	dc, err := f.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if dc.NCN() != f.NumNodes() || dc.NCRAC() != f.NumCRACs() {
		t.Fatalf("assembled %d nodes/%d CRACs, want %d/%d", dc.NCN(), dc.NCRAC(), f.NumNodes(), f.NumCRACs())
	}
	if dc.Pconst != f.Pconst {
		t.Errorf("assembled Pconst %g, want %g", dc.Pconst, f.Pconst)
	}
	c := thermal.Components(dc.Alpha, 0)
	if c.NumComponents != 2 {
		t.Errorf("assembled Alpha has %d components, want 2", c.NumComponents)
	}
}
