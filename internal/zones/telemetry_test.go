package zones

import (
	"context"
	"reflect"
	"testing"

	"thermaldc/internal/linprog"
	"thermaldc/internal/telemetry"
)

// TestSolveScratchMatchesSolve: the scratch entry point must produce the
// same numbers as the cloning one, and its result must alias solver-owned
// buffers (overwritten by the next solve) while Solve's must not.
func TestSolveScratchMatchesSolve(t *testing.T) {
	f := buildFleet(t, FleetConfig{
		Zones: 3, NodesPerZone: 8, CracsPerZone: 2, Variants: 2, Seed: 9, PconstFraction: 0.2,
	})
	out := feasibleOutlets(f.NumCRACs())
	zs, err := NewFleetSolver(f, Config{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cloned, err := zs.Solve(ctx, out)
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := zs.SolveScratch(ctx, out)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cloned, scratch) {
		t.Fatal("SolveScratch result differs from Solve")
	}
	if &cloned.CracOut[0] == &scratch.CracOut[0] {
		t.Fatal("Solve returned solver-owned buffers (retention hazard)")
	}
	// A second scratch solve reuses the same result storage.
	again, err := zs.SolveScratch(ctx, out)
	if err != nil {
		t.Fatal(err)
	}
	if again != scratch {
		t.Error("SolveScratch did not reuse its retained result")
	}
	// The clone must have stayed intact through the scratch solves.
	if !reflect.DeepEqual(cloned, again) {
		t.Error("Solve's clone was mutated by a later SolveScratch")
	}
}

// TestFleetTelemetryPublishes: an instrumented fleet solve must emit zone
// spans, coordination-round spans, and the zones_* metrics — without
// changing a single output bit relative to an uninstrumented solve.
func TestFleetTelemetryPublishes(t *testing.T) {
	build := func() *Fleet {
		f := buildFleet(t, FleetConfig{
			Zones: 3, NodesPerZone: 10, CracsPerZone: 2, Variants: 1, Seed: 13, PconstFraction: 0.9,
		})
		f.Pconst *= 0.7 // tight cap forces coordination rounds
		return f
	}
	out := feasibleOutlets(build().NumCRACs())
	ctx := context.Background()

	plainSolver, err := NewFleetSolver(build(), Config{Method: linprog.MethodRevised, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := plainSolver.Solve(ctx, out)
	if err != nil {
		t.Fatal(err)
	}

	rec := telemetry.NewRecorder()
	rec.Trace = telemetry.NewTracer(telemetry.DefaultTraceCapacity)
	zs, err := NewFleetSolver(build(), Config{
		Method: linprog.MethodRevised, WarmStart: true, Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := zs.Solve(ctx, out)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, plain) {
		t.Error("telemetry changed the solve result")
	}

	st := zs.LastStats()
	byKind := rec.Trace.CountByKind()
	if got := byKind[telemetry.SpanZoneSolve]; got != st.ZoneSolves {
		t.Errorf("%d zone-solve spans for %d zone solves", got, st.ZoneSolves)
	}
	// One coord-round span per round past the unconstrained shortcut.
	if got := byKind[telemetry.SpanCoordRound]; got != st.Rounds {
		t.Errorf("%d coord-round spans for %d rounds", got, st.Rounds)
	}
	// Zone spans land on per-zone tracks with the zone index as label.
	seenTracks := map[int32]bool{}
	for _, s := range rec.Trace.Snapshot() {
		if s.Kind != telemetry.SpanZoneSolve {
			continue
		}
		if s.Label != s.Track {
			t.Errorf("zone span label %d != track %d", s.Label, s.Track)
		}
		seenTracks[s.Track] = true
	}
	if len(seenTracks) != 3 {
		t.Errorf("zone spans cover %d tracks, want 3", len(seenTracks))
	}

	snap := rec.Metrics.Snapshot()
	if v, ok := snap["tapo_zones_zone_solves_total"].(int64); !ok || v != int64(st.ZoneSolves) {
		t.Errorf("tapo_zones_zone_solves_total = %v, want %d", snap["tapo_zones_zone_solves_total"], st.ZoneSolves)
	}
	for _, name := range []string{"tapo_zones_gap", "tapo_zones_price", "tapo_zones_cuts"} {
		if _, ok := snap[name]; !ok {
			t.Errorf("gauge %s not published", name)
		}
	}
	// Fallback-cause counters are pre-registered (all zero on success).
	if v, ok := snap[`tapo_zones_fallback_cause_total{cause="timeout"}`].(int64); !ok || v != 0 {
		t.Errorf("fallback cause counter = %v, want registered 0", snap[`tapo_zones_fallback_cause_total{cause="timeout"}`])
	}
}
