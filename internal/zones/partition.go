// Package zones decomposes the Stage-1 power-assignment LP by thermal
// zone. A data-center floor whose cross-interference matrix is
// block-diagonal — separate rooms, containment pods, or far-apart aisle
// groups whose recirculation never mixes — splits into zones that share
// nothing but the facility power cap: every thermal row of the Stage-1 LP
// involves one zone's nodes only, and the heat-flow fixed point of
// internal/thermal solves block-by-block with bit-identical arithmetic.
// The one coupling row (total power ≤ Pconst) is coordinated by a small
// master problem over per-zone power budgets (see Solver), so fleets of
// tens of thousands of nodes solve as many small LPs in parallel instead
// of one enormous one.
package zones

import (
	"fmt"

	"thermaldc/internal/model"
	"thermaldc/internal/thermal"
)

// Zone is one thermally self-contained block of a partitioned data center.
type Zone struct {
	// ID is the zone's index in Partition.Zones (deterministic: zones are
	// ordered by their smallest thermal index in the parent).
	ID int
	// CRACs and Nodes list the parent's CRAC and node indices belonging to
	// this zone, ascending.
	CRACs []int
	Nodes []int
	// DC is the zone sub-model: its own Nodes/CRACs/Alpha restricted to
	// the zone (parent index order preserved), sharing the parent's node
	// types, task types, and ECS tensor. Its Pconst starts at the parent's
	// and is the budget knob the zone Solver turns; the parent is never
	// mutated.
	DC *model.DataCenter
}

// Partition is a data center split into thermally independent zones.
type Partition struct {
	// Parent is the monolithic model the partition was derived from.
	Parent *model.DataCenter
	// Zones are the blocks, ordered by smallest thermal index.
	Zones []*Zone
	// MaxCross is the largest cross-zone |α| entry the partition ignored
	// (0 when eps was 0: the split is exact).
	MaxCross float64
}

// PartitionDataCenter splits dc into thermally weakly-coupled zones: the
// connected components of the cross-interference support graph (entries
// with |α| > eps). With eps = 0 the decomposition is exact — every dropped
// entry is exactly zero, so per-zone thermal models and LPs reproduce the
// monolithic ones bit-for-bit on their blocks.
//
// It fails when the floor does not decompose cleanly: a component with
// nodes but no CRAC (or vice versa) has no self-contained thermal model,
// and a node whose hot aisle faces a CRAC outside its component cannot be
// re-homed. Callers treat an error as "not decomposable" and keep the
// monolithic path.
func PartitionDataCenter(dc *model.DataCenter, eps float64) (*Partition, error) {
	ncrac := dc.NCRAC()
	c := thermal.Components(dc.Alpha, eps)

	part := &Partition{Parent: dc, MaxCross: c.MaxCross}
	if c.NumComponents == 1 {
		// Single zone: share the parent's slices outright (a shallow copy
		// keeps Pconst privately mutable), so the zone LP is the monolithic
		// LP, bit for bit.
		zdc := *dc
		z := &Zone{ID: 0, DC: &zdc}
		for i := 0; i < ncrac; i++ {
			z.CRACs = append(z.CRACs, i)
		}
		for j := 0; j < dc.NCN(); j++ {
			z.Nodes = append(z.Nodes, j)
		}
		part.Zones = []*Zone{z}
		return part, nil
	}

	// Group thermal units by component; component ids already follow
	// smallest-member order.
	zones := make([]*Zone, c.NumComponents)
	for id := range zones {
		zones[id] = &Zone{ID: id}
	}
	for t, id := range c.Component {
		if t < ncrac {
			zones[id].CRACs = append(zones[id].CRACs, t)
		} else {
			zones[id].Nodes = append(zones[id].Nodes, t-ncrac)
		}
	}
	for _, z := range zones {
		if len(z.CRACs) == 0 || len(z.Nodes) == 0 {
			return nil, fmt.Errorf("zones: component %d has %d CRACs and %d nodes; not decomposable",
				z.ID, len(z.CRACs), len(z.Nodes))
		}
		sub, err := zoneModel(dc, z)
		if err != nil {
			return nil, err
		}
		z.DC = sub
	}
	part.Zones = zones
	return part, nil
}

// zoneModel builds the sub-DataCenter for one zone: the zone's nodes and
// CRACs in parent order, the Alpha submatrix, and the parent's shared
// workload tables. Cross-zone Alpha entries are dropped; with eps = 0 they
// are exactly zero, so zone rows still sum to 1 and the sub-model passes
// model.Validate.
func zoneModel(dc *model.DataCenter, z *Zone) (*model.DataCenter, error) {
	ncrac := dc.NCRAC()
	cracLocal := make(map[int]int, len(z.CRACs))
	sub := &model.DataCenter{
		NodeTypes:   dc.NodeTypes,
		TaskTypes:   dc.TaskTypes,
		ECS:         dc.ECS,
		RedlineNode: dc.RedlineNode,
		RedlineCRAC: dc.RedlineCRAC,
		Pconst:      dc.Pconst,
	}
	for li, gi := range z.CRACs {
		cracLocal[gi] = li
		sub.CRACs = append(sub.CRACs, dc.CRACs[gi])
	}
	for _, gj := range z.Nodes {
		n := dc.Nodes[gj]
		la, ok := cracLocal[n.HotAisle]
		if !ok {
			return nil, fmt.Errorf("zones: node %d exhausts into hot aisle %d outside its zone %d; not decomposable",
				gj, n.HotAisle, z.ID)
		}
		n.HotAisle = la
		sub.Nodes = append(sub.Nodes, n)
	}

	// Zone thermal order mirrors the parent's: CRACs first, then nodes,
	// each in ascending parent index.
	gidx := make([]int, 0, len(z.CRACs)+len(z.Nodes))
	for _, gi := range z.CRACs {
		gidx = append(gidx, gi)
	}
	for _, gj := range z.Nodes {
		gidx = append(gidx, ncrac+gj)
	}
	sub.Alpha = make([][]float64, len(gidx))
	for a, ga := range gidx {
		row := make([]float64, len(gidx))
		src := dc.Alpha[ga]
		for b, gb := range gidx {
			row[b] = src[gb]
		}
		sub.Alpha[a] = row
	}
	return sub, nil
}
