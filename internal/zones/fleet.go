package zones

import (
	"fmt"

	"thermaldc/internal/assign"
	"thermaldc/internal/layout"
	"thermaldc/internal/model"
	"thermaldc/internal/scenario"
	"thermaldc/internal/stats"
	"thermaldc/internal/tempsearch"
	"thermaldc/internal/thermal"
)

// FleetConfig sizes a multi-zone fleet. Zones share one workload (node
// types, task types, ECS tensor) and cycle through a small number of
// distinct floor-plan variants, so building a 10k-node fleet costs a few
// variant-sized Appendix-B layout LPs instead of thousands, and never
// materializes a fleet-wide cross-interference matrix (dense Alpha at 10k
// nodes would be ~1 GB; the fleet keeps one small matrix per variant).
type FleetConfig struct {
	// Zones is the number of thermally independent zones.
	Zones int
	// NodesPerZone and CracsPerZone size each zone (defaults 100 and 2).
	NodesPerZone int
	CracsPerZone int
	// Variants is the number of distinct zone floor plans generated; zone
	// z uses variant z mod Variants. Default min(3, Zones).
	Variants int
	// Seed drives every random draw; variant v derives its own stream.
	Seed int64
	// StaticShare, Vprop and PconstFraction are the scenario knobs
	// (defaults 0.3, 0.1, 0.5; see scenario.Config).
	StaticShare    float64
	Vprop          float64
	PconstFraction float64
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.NodesPerZone == 0 {
		c.NodesPerZone = 100
	}
	if c.CracsPerZone == 0 {
		c.CracsPerZone = 2
	}
	if c.Variants == 0 {
		c.Variants = 3
	}
	if c.Variants > c.Zones {
		c.Variants = c.Zones
	}
	if c.StaticShare == 0 {
		c.StaticShare = 0.3
	}
	if c.Vprop == 0 {
		c.Vprop = 0.1
	}
	if c.PconstFraction == 0 {
		c.PconstFraction = 0.5
	}
	return c
}

// Variant is one distinct zone floor plan: a self-contained data center
// with its own layout, cross-interference matrix, and thermal model, plus
// the Equation-17 power envelope used to set its default budget.
type Variant struct {
	DC *model.DataCenter
	TM *thermal.Model
	// Pmin and Pmax bound the zone's power; Budget is the default cap
	// Pmin + PconstFraction·(Pmax−Pmin).
	Pmin, Pmax, Budget float64
}

// Fleet is a multi-zone data center in factored form: a few variant
// templates plus a zone→variant assignment. It is the scalable input to
// NewFleetSolver; Assemble materializes the equivalent monolithic model
// for small fleets (tests, dcgen dumps).
type Fleet struct {
	Config   FleetConfig
	Variants []*Variant
	// ZoneVariant maps zone index to its variant.
	ZoneVariant []int
	// Pconst is the fleet-wide power cap: the sum of per-zone default
	// budgets, which the zone Solver re-divides by value.
	Pconst float64
}

// NumZones returns the zone count.
func (f *Fleet) NumZones() int { return len(f.ZoneVariant) }

// NumNodes returns the fleet-wide compute-node count.
func (f *Fleet) NumNodes() int {
	n := 0
	for _, v := range f.ZoneVariant {
		n += f.Variants[v].DC.NCN()
	}
	return n
}

// NumCRACs returns the fleet-wide CRAC count.
func (f *Fleet) NumCRACs() int {
	n := 0
	for _, v := range f.ZoneVariant {
		n += f.Variants[v].DC.NCRAC()
	}
	return n
}

// BuildFleet constructs a fleet deterministically from cfg. Variant 0 is a
// full scenario.Build (which also generates the shared workload); later
// variants redraw node types and floor layout from their own seeded
// streams while sharing variant 0's workload tables, so every zone prices
// work identically and the assembled fleet has one consistent ECS.
func BuildFleet(cfg FleetConfig) (*Fleet, error) {
	cfg = cfg.withDefaults()
	if cfg.Zones <= 0 {
		return nil, fmt.Errorf("zones: fleet needs at least one zone, got %d", cfg.Zones)
	}

	scfg := scenario.Default(cfg.StaticShare, cfg.Vprop, cfg.Seed)
	scfg.NNodes, scfg.NCracs = cfg.NodesPerZone, cfg.CracsPerZone
	scfg.PconstFraction = cfg.PconstFraction
	base, err := scenario.Build(scfg)
	if err != nil {
		return nil, fmt.Errorf("zones: building variant 0: %w", err)
	}
	f := &Fleet{
		Config: cfg,
		Variants: []*Variant{{
			DC: base.DC, TM: base.Thermal,
			Pmin: base.Pmin, Pmax: base.Pmax, Budget: base.DC.Pconst,
		}},
	}

	lcfg := layout.DefaultConfig()
	search := tempsearch.DefaultConfig()
	for v := 1; v < cfg.Variants; v++ {
		// A distinct, deterministic stream per variant; the large stride
		// keeps neighbouring fleet seeds from colliding across variants.
		rng := stats.NewRand(cfg.Seed + int64(v)*1000003)
		dc := &model.DataCenter{
			NodeTypes:   base.DC.NodeTypes,
			TaskTypes:   base.DC.TaskTypes,
			ECS:         base.DC.ECS,
			CRACs:       make([]model.CRAC, cfg.CracsPerZone),
			RedlineNode: base.DC.RedlineNode,
			RedlineCRAC: base.DC.RedlineCRAC,
		}
		for j := 0; j < cfg.NodesPerZone; j++ {
			dc.Nodes = append(dc.Nodes, model.Node{Type: rng.Intn(len(dc.NodeTypes))})
		}
		if err := layout.Arrange(dc, lcfg); err != nil {
			return nil, fmt.Errorf("zones: variant %d: %w", v, err)
		}
		if err := layout.GenerateAlpha(dc, lcfg, rng); err != nil {
			return nil, fmt.Errorf("zones: variant %d: %w", v, err)
		}
		tm, err := thermal.New(dc)
		if err != nil {
			return nil, fmt.Errorf("zones: variant %d: %w", v, err)
		}
		pmin, pmax, err := assign.PowerBounds(dc, tm, search)
		if err != nil {
			return nil, fmt.Errorf("zones: variant %d power bounds: %w", v, err)
		}
		dc.Pconst = pmin + cfg.PconstFraction*(pmax-pmin)
		if err := dc.Validate(); err != nil {
			return nil, fmt.Errorf("zones: variant %d invalid: %w", v, err)
		}
		f.Variants = append(f.Variants, &Variant{DC: dc, TM: tm, Pmin: pmin, Pmax: pmax, Budget: dc.Pconst})
	}

	for z := 0; z < cfg.Zones; z++ {
		v := z % cfg.Variants
		f.ZoneVariant = append(f.ZoneVariant, v)
		f.Pconst += f.Variants[v].Budget
	}
	return f, nil
}

// Assemble materializes the fleet as one monolithic DataCenter with a
// block-diagonal cross-interference matrix (global thermal order: every
// zone's CRACs first, then every zone's nodes, zones in order). The dense
// Alpha is quadratic in fleet size — use it for small fleets only; the
// zone Solver never needs it.
func (f *Fleet) Assemble() (*model.DataCenter, error) {
	ncrac, ncn := f.NumCRACs(), f.NumNodes()
	n := ncrac + ncn
	base := f.Variants[0].DC
	dc := &model.DataCenter{
		NodeTypes:   base.NodeTypes,
		TaskTypes:   base.TaskTypes,
		ECS:         base.ECS,
		RedlineNode: base.RedlineNode,
		RedlineCRAC: base.RedlineCRAC,
		Pconst:      f.Pconst,
	}
	dc.Alpha = make([][]float64, n)
	for i := range dc.Alpha {
		dc.Alpha[i] = make([]float64, n)
	}

	cracOff, nodeOff, rackOff := 0, 0, 0
	for _, vi := range f.ZoneVariant {
		v := f.Variants[vi].DC
		zc, zn := v.NCRAC(), v.NCN()
		dc.CRACs = append(dc.CRACs, v.CRACs...)
		maxRack := 0
		for _, node := range v.Nodes {
			node.HotAisle += cracOff
			node.Rack += rackOff
			if node.Rack > maxRack {
				maxRack = node.Rack
			}
			dc.Nodes = append(dc.Nodes, node)
		}
		// Scatter the variant's Alpha block: local thermal index i<zc is
		// CRAC i, i≥zc is node i−zc.
		glob := func(i int) int {
			if i < zc {
				return cracOff + i
			}
			return ncrac + nodeOff + (i - zc)
		}
		for a := 0; a < zc+zn; a++ {
			ga, src := glob(a), v.Alpha[a]
			dst := dc.Alpha[ga]
			for b := 0; b < zc+zn; b++ {
				dst[glob(b)] = src[b]
			}
		}
		cracOff += zc
		nodeOff += zn
		rackOff = maxRack + 1
	}
	if err := dc.Validate(); err != nil {
		return nil, fmt.Errorf("zones: assembled fleet invalid: %w", err)
	}
	return dc, nil
}
