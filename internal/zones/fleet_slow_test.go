//go:build slow

package zones

import (
	"context"
	"testing"

	"thermaldc/internal/linprog"
)

// TestFleetSmoke1k solves a 1k-node multi-zone fleet end to end and checks
// the decomposition's invariants: coordination converges, the assembled
// result respects the shared cap, every zone's budget is honored by its
// retained solution, and the per-node vectors cover the whole fleet. This
// is the `make ci` guard that fleet-scale solves keep working without
// paying benchmark wall time.
func TestFleetSmoke1k(t *testing.T) {
	f, err := BuildFleet(FleetConfig{Zones: 10, NodesPerZone: 100, CracsPerZone: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	zs, err := NewFleetSolver(f, Config{Method: linprog.MethodRevised, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, f.NumCRACs())
	for i := range out {
		out[i] = 15
	}
	res, err := zs.Solve(context.Background(), out)
	if err != nil {
		t.Fatal(err)
	}
	st := zs.LastStats()
	if !st.Converged || st.Fallback {
		t.Fatalf("coordination did not converge cleanly: %+v", st)
	}
	if !res.Feasible {
		t.Fatal("fleet solve reported infeasible")
	}
	if res.LinearPower > f.Pconst*(1+1e-6) {
		t.Errorf("LP power ledger %.6f kW exceeds the shared cap %.6f kW", res.LinearPower, f.Pconst)
	}
	if got := len(res.NodePower); got != f.NumNodes() {
		t.Fatalf("result covers %d nodes, want %d", got, f.NumNodes())
	}
	for i, p := range res.NodePower {
		if p < 0 {
			t.Fatalf("node %d assigned negative power %g", i, p)
		}
	}
	// Zone budgets must partition the cap: retained per-zone LP power stays
	// within each proposed budget, and the proposals sum to at most P.
	sum := 0.0
	for zi, z := range zs.zones {
		if !z.best.valid {
			t.Fatalf("zone %d retained no solution", zi)
		}
		if z.best.linPow > z.budget*(1+1e-6) {
			t.Errorf("zone %d draws %.6f kW over its %.6f kW budget", zi, z.best.linPow, z.budget)
		}
		sum += z.best.linPow
	}
	if sum > f.Pconst*(1+1e-6) {
		t.Errorf("zone draws sum to %.6f kW over the %.6f kW cap", sum, f.Pconst)
	}
	if st.Rounds == 0 && !st.Shortcut {
		t.Error("neither shortcut nor coordination rounds recorded")
	}
}
