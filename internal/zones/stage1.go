package zones

import (
	"context"
	"fmt"
	"math"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"thermaldc/internal/assign"
	"thermaldc/internal/linprog"
	"thermaldc/internal/model"
	"thermaldc/internal/solvererr"
	"thermaldc/internal/telemetry"
	"thermaldc/internal/tempsearch"
	"thermaldc/internal/thermal"
)

// budgetTolerance is the slack allowed on the shared power cap when
// deciding that the zones' full-budget solutions already fit (the
// unconstrained shortcut) and that the fleet's base power fits at all.
const budgetTolerance = 1e-9

// Config tunes the zone-decomposed Stage-1 solver.
type Config struct {
	// Psi is the ARR-envelope ψ in percent (default 50, the paper's).
	Psi float64
	// Pricing, Method and WarmStart configure every per-zone Stage-1 LP
	// exactly like assign.Options does: the coordination loop re-solves
	// each zone at a sequence of budgets — a right-hand-side-only change —
	// so MethodRevised with WarmStart on turns rounds 1+ into dual-simplex
	// warm re-solves from the previous round's basis.
	Pricing   linprog.Pricing
	Method    linprog.Method
	WarmStart bool
	// Parallelism bounds the zone fan-out worker pool under the same
	// policy as the temperature search (tempsearch.Workers): 0 uses
	// GOMAXPROCS, larger requests are clamped to it. Results are identical
	// for every setting.
	Parallelism int
	// Tol is the master problem's relative optimality gap (default 1e-8):
	// the price iteration stops when upper and lower bounds agree to
	// Tol·max(1, |upper|). The default is the tightest gap the cutting
	// planes can certify in float64 at fleet scale — a 100-zone fleet's
	// objective is O(1e5), so demanding much below 1e-8 relative stalls the
	// loop on round-off and buries the master under near-duplicate cuts.
	Tol float64
	// MaxRounds bounds the price-coordination rounds (default 200). The
	// master's cutting-plane model of each zone's concave value function
	// is exact after finitely many cuts, so the bound is a safety net; an
	// exceeded bound falls back to the monolithic solve when one is
	// available and errors otherwise.
	MaxRounds int
	// Recorder, when non-nil, publishes solve counters and per-zone budget
	// gauges on its metrics registry. Telemetry never changes results.
	Recorder *telemetry.Recorder
}

func (c Config) withDefaults() Config {
	if c.Psi == 0 {
		c.Psi = 50
	}
	if c.Tol == 0 {
		c.Tol = 1e-8
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 200
	}
	return c
}

// Stats describes the last Solve's coordination work.
type Stats struct {
	// Zones is the number of zone subproblems.
	Zones int
	// Rounds counts master iterations (0 when the shortcut fired).
	Rounds int
	// ZoneSolves counts zone LP solves across all rounds.
	ZoneSolves int
	// Shortcut reports that the full-budget zone solutions already fit
	// under the shared cap, so no price coordination was needed (always
	// the case with a single zone).
	Shortcut bool
	// Converged reports a proven gap ≤ Tol (Shortcut implies Converged).
	Converged bool
	// Fallback reports that the monolithic solver produced the result.
	Fallback bool
	// UpperBound, LowerBound and Gap are the master's final bounds on the
	// monolithic LP objective (meaningful when Rounds > 0).
	UpperBound, LowerBound, Gap float64
}

// cut is one sampled point of a zone's concave value function V(budget):
// the LP objective and its power-row dual (a supergradient) at one budget,
// yielding the Kelley cut v ≤ Value + Price·(b − Budget).
type cut struct {
	Budget, Value, Price float64
}

// zoneState is the per-zone solve state. Each zone owns its model copy,
// solver and buffers, so the fan-out runs without locks; only the
// goroutine assigned a zone touches it during a round.
type zoneState struct {
	dc     *model.DataCenter // private shallow copy; Pconst is the budget knob
	tm     *thermal.Model
	solver *assign.Stage1Solver
	// idx is the zone's index in the solver; tr (nil when tracing is off)
	// records one SpanZoneSolve per eval on track idx.
	idx int
	tr  *telemetry.Tracer
	// cracIdx and nodeIdx map zone-local CRACs and nodes to global
	// indices (parent indices on the partition path, assembled-order
	// offsets on the fleet path).
	cracIdx []int
	nodeIdx []int
	out     []float64 // zone's slice of the global outlet vector

	// Round state, written by eval.
	budget  float64
	last    *assign.Stage1Result // solver-owned scratch; valid until next eval
	value   float64
	price   float64
	linPow  float64
	basePow float64
	err     error

	// Retained best solution (deep copies of the solver-owned scratch).
	best struct {
		valid        bool
		value, price float64
		linPow       float64
		corePow, pow []float64
		computePower float64
		cracPower    float64
		totalPower   float64
		feasible     bool
	}

	vMax  float64
	cuts  []cut
	alloc float64 // master-proposed budget above base, rewritten each round
}

// Solver solves the Stage-1 LP of a zoned data center at fixed CRAC outlet
// temperatures: per-zone LPs run concurrently, and a small master problem
// splits the shared power cap across zones by Dantzig–Wolfe-style price
// iteration. Each zone's optimal value is a concave piecewise-linear
// function of its budget, and its LP's power-row dual is a supergradient,
// so the master maximizes a cutting-plane model of Σ V_z(b_z) subject to
// Σ b_z ≤ Pconst: every round yields an upper bound (the model) and a
// lower bound (the zones' actual values at the proposed budgets), and the
// loop stops when they meet. When the zones' full-budget solutions already
// fit under the cap, the first round is provably optimal and no master is
// built; with a single zone that path reproduces the monolithic solve bit
// for bit.
//
// A Solver is NOT safe for concurrent use; it owns per-zone LP workspaces.
type Solver struct {
	cfg   Config
	zones []*zoneState
	ncrac int
	nnode int

	// parent/fallback are set on the partition path: the budget is read
	// from parent.Pconst per solve, and fallback reproduces the exact
	// monolithic behavior when the decomposition cannot (zone errors,
	// non-convergence).
	parent   *model.DataCenter
	fallback *assign.Stage1Solver

	// fleetPconst is the fixed budget on the fleet path (parent == nil).
	fleetPconst float64

	segs     []masterSeg // master-problem scratch, reused across rounds
	sorter   segSorter   // reusable sort.Interface over segs (no per-round boxing)
	last     Stats
	bestDual float64
	res      assign.Stage1Result // SolveScratch's retained result buffers

	tr                                       *telemetry.Tracer
	mSolves, mRounds, mShortcuts, mFallbacks telemetry.Counter
	mZoneSolves                              telemetry.Counter
	mGap, mPrice, mCuts                      telemetry.Gauge
	mFallbackCause                           []telemetry.Counter // indexed by solvererr.Kind
	zBudget, zValue                          []telemetry.Gauge
}

// NewSolverFromPartition builds a zone solver over part, sharing one ARR
// envelope set (built from the parent at cfg.Psi) across all zones and
// retaining a monolithic fallback solver on the parent. tm is the parent's
// thermal model, reused for the fallback and for single-zone partitions.
func NewSolverFromPartition(part *Partition, tm *thermal.Model, cfg Config) (*Solver, error) {
	cfg = cfg.withDefaults()
	arrs, err := assign.NodeARRs(part.Parent, cfg.Psi)
	if err != nil {
		return nil, err
	}
	s := &Solver{
		cfg:    cfg,
		parent: part.Parent,
		ncrac:  part.Parent.NCRAC(),
		nnode:  part.Parent.NCN(),
	}
	s.fallback = s.configure(assign.NewStage1Solver(part.Parent, tm, arrs))
	for _, z := range part.Zones {
		ztm := tm
		if len(part.Zones) > 1 {
			if ztm, err = thermal.New(z.DC); err != nil {
				return nil, fmt.Errorf("zones: zone %d thermal model: %w", z.ID, err)
			}
		}
		s.zones = append(s.zones, &zoneState{
			dc:      z.DC,
			tm:      ztm,
			solver:  s.configure(assign.NewStage1Solver(z.DC, ztm, arrs)),
			cracIdx: z.CRACs,
			nodeIdx: z.Nodes,
			out:     make([]float64, len(z.CRACs)),
		})
	}
	s.wire()
	return s, nil
}

// NewFleetSolver builds a zone solver over a factored fleet: zones of the
// same variant share that variant's thermal model (safe — thermal models
// are read-only after construction) and all zones share one ARR envelope
// set, so per-zone setup cost is one LP skeleton, not a scenario build.
// The fleet path has no monolithic fallback — materializing the fleet-wide
// LP is exactly what it exists to avoid — so unconverged coordination
// (never observed; see Config.MaxRounds) surfaces as an error.
func NewFleetSolver(f *Fleet, cfg Config) (*Solver, error) {
	cfg = cfg.withDefaults()
	arrs, err := assign.NodeARRs(f.Variants[0].DC, cfg.Psi)
	if err != nil {
		return nil, err
	}
	s := &Solver{cfg: cfg, fleetPconst: f.Pconst}
	cracOff, nodeOff := 0, 0
	for _, vi := range f.ZoneVariant {
		v := f.Variants[vi]
		zdc := *v.DC
		zc, zn := zdc.NCRAC(), zdc.NCN()
		z := &zoneState{
			dc:     &zdc,
			tm:     v.TM,
			solver: s.configure(assign.NewStage1Solver(&zdc, v.TM, arrs)),
			out:    make([]float64, zc),
		}
		for i := 0; i < zc; i++ {
			z.cracIdx = append(z.cracIdx, cracOff+i)
		}
		for j := 0; j < zn; j++ {
			z.nodeIdx = append(z.nodeIdx, nodeOff+j)
		}
		s.zones = append(s.zones, z)
		cracOff += zc
		nodeOff += zn
	}
	s.ncrac, s.nnode = cracOff, nodeOff
	s.wire()
	return s, nil
}

// configure applies the LP settings to a freshly built Stage-1 solver.
func (s *Solver) configure(sv *assign.Stage1Solver) *assign.Stage1Solver {
	sv.SetPricing(s.cfg.Pricing)
	sv.SetMethod(s.cfg.Method)
	sv.SetWarmStart(s.cfg.WarmStart)
	if s.cfg.Recorder != nil {
		sv.SetRecorder(s.cfg.Recorder)
	}
	return sv
}

// maxZoneGauges bounds the per-zone labeled metric families registered, so
// a 10k-zone fleet does not mint 10k gauges; aggregate counters cover the
// rest.
const maxZoneGauges = 16

// wire registers the solver's telemetry (no-ops when cfg.Recorder is nil).
func (s *Solver) wire() {
	for i, z := range s.zones {
		z.idx = i
	}
	if s.cfg.Recorder == nil {
		return
	}
	s.tr = s.cfg.Recorder.Tracer()
	for _, z := range s.zones {
		z.tr = s.tr
	}
	reg := s.cfg.Recorder.Registry()
	s.mSolves = reg.Counter("tapo_zones_solves_total", "zone-decomposed Stage-1 solves")
	s.mRounds = reg.Counter("tapo_zones_rounds_total", "price-coordination master rounds")
	s.mShortcuts = reg.Counter("tapo_zones_shortcut_total", "solves settled by the unconstrained shortcut")
	s.mFallbacks = reg.Counter("tapo_zones_fallback_total", "solves delegated to the monolithic fallback")
	s.mZoneSolves = reg.Counter("tapo_zones_zone_solves_total", "per-zone LP solves across all coordination rounds")
	s.mGap = reg.Gauge("tapo_zones_gap", "upper-minus-lower bound gap after the last coordination round")
	s.mPrice = reg.Gauge("tapo_zones_price", "coordination price (budget-row dual) of the last master round")
	s.mCuts = reg.Gauge("tapo_zones_cuts", "Kelley cuts accumulated across all zones in the last solve")
	kinds := solvererr.Kinds()
	s.mFallbackCause = make([]telemetry.Counter, len(kinds))
	for _, k := range kinds {
		s.mFallbackCause[k] = reg.Counter("tapo_zones_fallback_cause_total",
			"monolithic fallbacks by classified cause", "cause", k.String())
	}
	for i := range s.zones {
		if i >= maxZoneGauges {
			break
		}
		lbl := fmt.Sprintf("%d", i)
		s.zBudget = append(s.zBudget, reg.Gauge("tapo_zone_budget_kw",
			"power budget allocated to the zone in the last solve", "zone", lbl))
		s.zValue = append(s.zValue, reg.Gauge("tapo_zone_value",
			"zone LP objective at its allocated budget in the last solve", "zone", lbl))
	}
}

// NumZones returns the zone count.
func (s *Solver) NumZones() int { return len(s.zones) }

// LastStats returns the coordination statistics of the most recent Solve.
func (s *Solver) LastStats() Stats { return s.last }

// TakeLPStats drains and sums the simplex counters of every zone solver
// and the monolithic fallback (if any). The master is not an LP (see
// solveMaster) and contributes nothing.
func (s *Solver) TakeLPStats() linprog.Stats {
	var total linprog.Stats
	for _, z := range s.zones {
		total.Add(z.solver.TakeStats())
	}
	if s.fallback != nil {
		total.Add(s.fallback.TakeStats())
	}
	return total
}

// totalBudget is the shared cap: the parent's live Pconst on the partition
// path (so power-cap faults propagate without rebuilds, exactly like the
// monolithic solver's dc.Pconst read), or the fleet's fixed cap.
func (s *Solver) totalBudget() float64 {
	if s.parent != nil {
		return s.parent.Pconst
	}
	return s.fleetPconst
}

// Solve runs the zone-decomposed Stage-1 LP at the given global CRAC
// outlet temperatures (parent order on the partition path, zone-assembled
// order on the fleet path) and returns an assembled monolithic-shape
// Stage1Result the caller owns. See Solver for the algorithm; LastStats
// reports how the solve went.
func (s *Solver) Solve(ctx context.Context, cracOut []float64) (*assign.Stage1Result, error) {
	res, err := s.SolveScratch(ctx, cracOut)
	if err != nil {
		return nil, err
	}
	if res != &s.res {
		// The monolithic fallback allocated this result; it is already
		// caller-owned.
		return res, nil
	}
	return cloneResult(res), nil
}

// cloneResult deep-copies an assembled result so callers can retain it
// across later solves.
func cloneResult(r *assign.Stage1Result) *assign.Stage1Result {
	c := *r
	c.CracOut = append([]float64(nil), r.CracOut...)
	c.NodeCorePower = append([]float64(nil), r.NodeCorePower...)
	c.NodePower = append([]float64(nil), r.NodePower...)
	return &c
}

// SolveScratch is Solve without the defensive copy: the returned result
// aliases solver-owned buffers and is valid only until the next solve.
// With warm starts on and telemetry off, a re-solve at unchanged
// dimensions performs zero heap allocations — the fleet fast path's
// analog of assign.Stage1Solver.SolveScratch, gated in cmd/benchcheck.
func (s *Solver) SolveScratch(ctx context.Context, cracOut []float64) (*assign.Stage1Result, error) {
	if len(cracOut) != s.ncrac {
		return nil, fmt.Errorf("zones: got %d CRAC outlet temps, want %d", len(cracOut), s.ncrac)
	}
	P := s.totalBudget()
	st := Stats{Zones: len(s.zones)}
	s.mSolves.Inc()

	for _, z := range s.zones {
		for li, gi := range z.cracIdx {
			z.out[li] = cracOut[gi]
		}
		z.budget = P
		z.best.valid = false
	}

	// Round 0: every zone at the full budget. Each zone's value there is
	// the best it could do under any split, so if the solutions jointly
	// fit, they are optimal.
	if err := s.evalRound(ctx); err != nil {
		return s.recover(ctx, cracOut, &st, err)
	}
	st.ZoneSolves += len(s.zones)
	s.mZoneSolves.Add(int64(len(s.zones)))
	sumBase, sumLin := 0.0, 0.0
	for _, z := range s.zones {
		sumBase += z.basePow
		sumLin += z.linPow
	}
	eps := budgetTolerance * math.Max(1, P)
	if sumBase > P+eps {
		return s.recover(ctx, cracOut, &st, solvererr.New("zones", solvererr.Infeasible,
			fmt.Errorf("zones: base power %.6g kW exceeds the shared cap %.6g kW", sumBase, P)))
	}
	if sumLin <= P+eps {
		st.Shortcut, st.Converged = true, true
		s.copyBest()
		s.finish(&st)
		s.assembleInto(&s.res, cracOut, P, &st)
		return &s.res, nil
	}

	// Price coordination: maximize Σ v_z over Σ b_z ≤ P against a growing
	// cutting-plane model of each zone's value function.
	for _, z := range s.zones {
		z.vMax = z.value
		z.cuts = append(z.cuts[:0], cut{Budget: P, Value: z.value, Price: z.price})
	}
	ub, lb := math.Inf(1), math.Inf(-1)
	for round := 1; round <= s.cfg.MaxRounds; round++ {
		cRound := s.tr.Begin()
		st.Rounds = round
		mub, mdual := s.solveMaster(P)
		if mub < ub {
			ub = mub
		}
		if err := s.evalRound(ctx); err != nil {
			s.tr.End(cRound, telemetry.SpanCoordRound, int32(round), 0, 1)
			return s.recover(ctx, cracOut, &st, err)
		}
		st.ZoneSolves += len(s.zones)
		s.mZoneSolves.Add(int64(len(s.zones)))
		lbRound := 0.0
		for _, z := range s.zones {
			lbRound += z.value
		}
		if lbRound > lb {
			lb = lbRound
			s.copyBest()
			s.bestDual = mdual
		}
		for _, z := range s.zones {
			z.addCut(cut{Budget: z.budget, Value: z.value, Price: z.price})
		}
		st.UpperBound, st.LowerBound, st.Gap = ub, lb, ub-lb
		s.observeRound(&st, mdual)
		s.tr.End(cRound, telemetry.SpanCoordRound, int32(round), 0, 0)
		if ub-lb <= s.cfg.Tol*math.Max(1, math.Abs(ub)) {
			st.Converged = true
			break
		}
	}
	if !st.Converged {
		return s.recover(ctx, cracOut, &st, solvererr.New("zones", solvererr.IterationLimit,
			fmt.Errorf("zones: price coordination did not converge in %d rounds (gap %.3g)", st.Rounds, st.Gap)))
	}
	s.finish(&st)
	s.assembleInto(&s.res, cracOut, P, &st)
	return &s.res, nil
}

// observeRound publishes the per-round coordination gauges (price, gap,
// accumulated cut count). Skipped entirely with telemetry off, so the
// disabled path touches no metric handles and counts no cuts.
func (s *Solver) observeRound(st *Stats, dual float64) {
	if s.cfg.Recorder == nil {
		return
	}
	s.mGap.Set(st.Gap)
	s.mPrice.Set(dual)
	cuts := 0
	for _, z := range s.zones {
		cuts += len(z.cuts)
	}
	s.mCuts.Set(float64(cuts))
}

// evalRound solves every zone at its current budget, fanning out over the
// shared worker-count policy. Zone state is written only by the goroutine
// evaluating that zone, and results are independent of the worker count.
func (s *Solver) evalRound(ctx context.Context) error {
	nw := tempsearch.Workers(s.cfg.Parallelism)
	if nw > len(s.zones) {
		nw = len(s.zones)
	}
	if nw <= 1 {
		// Serial path: no goroutines, no pprof label sets — this is the
		// zero-allocation configuration the benchcheck gate measures.
		for _, z := range s.zones {
			z.eval(ctx)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				// Label the worker goroutine so CPU profiles attribute
				// samples to the zone-solve stage and, per eval, to the
				// zone being solved.
				pprof.Do(ctx, pprof.Labels("stage", "zone-solve", "worker", strconv.Itoa(worker)), func(ctx context.Context) {
					for {
						i := int(next.Add(1)) - 1
						if i >= len(s.zones) {
							return
						}
						pprof.Do(ctx, pprof.Labels("zone", strconv.Itoa(i)), func(ctx context.Context) {
							s.zones[i].eval(ctx)
						})
					}
				})
			}(w)
		}
		wg.Wait()
	}
	for i, z := range s.zones {
		if z.err != nil {
			return fmt.Errorf("zones: zone %d at budget %.6g kW: %w", i, z.budget, z.err)
		}
	}
	return nil
}

// eval solves the zone LP at z.budget and records the value-function
// sample. The scratch result stays valid (solver-owned) until the zone's
// next eval, which is after any copyBest decision for this round. With
// tracing on it records one SpanZoneSolve on the zone's own track: Label
// is the zone index, Pivots the solve's simplex work, and Err reports
// the warm-start outcome (0 warm hit, 1 cold, 2 solve error).
func (z *zoneState) eval(ctx context.Context) {
	var c telemetry.SpanClock
	var pivots0, hits0 int64
	if z.tr != nil {
		ws := z.solver.Workspace()
		pivots0 = ws.Stats.Pivots + ws.Stats.DualPivots
		hits0 = ws.Stats.WarmHits
		c = z.tr.Begin()
	}
	z.dc.Pconst = z.budget
	res, err := z.solver.SolveScratchContext(ctx, z.out)
	if z.tr != nil {
		ws := z.solver.Workspace()
		outcome := int32(1)
		if ws.Stats.WarmHits > hits0 {
			outcome = 0
		}
		if err != nil {
			outcome = 2
		}
		z.tr.EndOnTrack(c, telemetry.SpanZoneSolve, int32(z.idx), int32(z.idx),
			ws.Stats.Pivots+ws.Stats.DualPivots-pivots0, outcome)
	}
	if err != nil {
		z.err, z.last = err, nil
		return
	}
	z.err = nil
	z.last = res
	z.value, z.price = res.PredictedARR, res.PowerShadowPrice
	z.linPow, z.basePow = res.LinearPower, res.LinearBasePower
}

// addCut records a value-function sample, dropping near-duplicates: once
// the price iteration homes in on a budget split, later rounds resample
// essentially the same point, and feeding those as fresh rows makes the
// master both bigger and degenerate (near-parallel rows are what pushed
// fleet-sized masters past the simplex's residual verification).
func (z *zoneState) addCut(c cut) {
	for _, e := range z.cuts {
		if math.Abs(e.Budget-c.Budget) <= 1e-9*(1+math.Abs(c.Budget)) &&
			math.Abs(e.Price-c.Price) <= 1e-9*(1+math.Abs(c.Price)) {
			return
		}
	}
	z.cuts = append(z.cuts, c)
}

// copyBest deep-copies every zone's scratch solution into its retained
// best buffers (called when a round improves the lower bound).
func (s *Solver) copyBest() {
	for _, z := range s.zones {
		b := &z.best
		b.valid = true
		b.value, b.price, b.linPow = z.value, z.price, z.linPow
		b.corePow = append(b.corePow[:0], z.last.NodeCorePower...)
		b.pow = append(b.pow[:0], z.last.NodePower...)
		b.computePower = z.last.ComputePower
		b.cracPower = z.last.CRACPower
		b.totalPower = z.last.TotalPower
		b.feasible = z.last.Feasible
	}
}

// masterSeg is one marginal tranche of a zone's cutting-plane model: slope
// units of value per unit of budget over width kW, above the zone's base
// allocation. Tranches within a zone have strictly decreasing slopes
// (concavity), so pouring budget into tranches in global slope order is
// exact.
type masterSeg struct {
	zone         int
	width, slope float64
}

// segSorter is a retained sort.Interface over the master's tranche
// scratch: descending slope, stable. Solver keeps one so solveMaster
// sorts without boxing a slice or closure per round.
type segSorter struct{ segs []masterSeg }

func (p *segSorter) Len() int           { return len(p.segs) }
func (p *segSorter) Less(i, j int) bool { return p.segs[i].slope > p.segs[j].slope }
func (p *segSorter) Swap(i, j int)      { p.segs[i], p.segs[j] = p.segs[j], p.segs[i] }

// solveMaster maximizes the restricted master — Σ V̂_z(b_z) subject to
// Σ b_z ≤ P with b_z ∈ [base_z, P] — where V̂_z is the zone's cutting-plane
// model: the lower envelope of its cuts and of the monotonicity bound
// v ≤ V_z(P). The master is separable with concave piecewise-linear terms,
// so it is a continuous knapsack solved exactly by a greedy pour: every
// zone starts at its base power and the remaining budget fills the merged
// marginal tranches in slope order. An earlier version solved this as an
// LP; at fleet scale (hundreds of zones, thousands of accumulated cuts)
// the near-parallel cut rows made the simplex basis so ill-conditioned
// that both tableau and revised methods failed their own residual
// verification, while the greedy is exact by construction. Returns the
// model optimum (an upper bound on the monolithic LP objective) and the
// marginal tranche slope at the cap (the coordination price, a valid dual
// of the budget constraint), and writes the proposed budgets into the
// zones.
func (s *Solver) solveMaster(P float64) (ub, dual float64) {
	s.segs = s.segs[:0]
	budget := P
	for zi, z := range s.zones {
		lo := math.Min(z.basePow, P)
		z.alloc = 0
		budget -= lo
		ub += z.envelope(zi, lo, P, &s.segs)
	}
	// Near-degenerate caps can leave Σ base marginally above P (within the
	// shortcut tolerance); there is then nothing left to pour.
	if budget < 0 {
		budget = 0
	}
	// Stable sort: tranches within a zone keep their concavity order, ties
	// across zones resolve by zone index, so the proposal is deterministic.
	// The retained sorter (vs sort.SliceStable) keeps the coordination
	// rounds allocation-free: boxing a fresh slice+closure pair per round
	// was the warm fleet re-solve's last heap traffic.
	s.sorter.segs = s.segs
	sort.Stable(&s.sorter)
	for _, sg := range s.segs {
		if budget <= 0 {
			break
		}
		take := math.Min(sg.width, budget)
		s.zones[sg.zone].alloc += take
		ub += take * sg.slope
		budget -= take
		if budget <= 0 {
			dual = sg.slope
		}
	}
	for _, z := range s.zones {
		z.budget = math.Min(z.basePow, P) + z.alloc
	}
	return ub, dual
}

// envelope walks the lower envelope of the zone's cut lines over budgets
// [lo, hi], returns its value at lo, and appends the envelope's positive-
// slope tranches to segs. Lines are L_i(b) = c_i + λ_i·b with c_i =
// Value_i − Price_i·Budget_i, plus the flat line at vMax (the zone LP's
// value is nondecreasing in its budget, so V(b) ≤ V(P) everywhere); the
// flat line bounds every envelope slope into [0, max λ]. The walk is
// O(cuts²) with cuts capped by the round count — trivial next to one zone
// LP pivot.
func (z *zoneState) envelope(zi int, lo, hi float64, segs *[]masterSeg) float64 {
	lineAt := func(c cut, b float64) float64 {
		return c.Value + c.Price*(b-c.Budget)
	}
	flat := cut{Budget: hi, Value: z.vMax, Price: 0}
	// Active line at lo: minimum value, ties broken toward the smaller
	// slope (the shallower line stays lowest to the right of the tie).
	act := flat
	actV := lineAt(flat, lo)
	for _, c := range z.cuts {
		v := lineAt(c, lo)
		if v < actV-1e-12*(1+math.Abs(actV)) || (v <= actV+1e-12*(1+math.Abs(actV)) && c.Price < act.Price) {
			act, actV = c, v
		}
	}
	v0 := actV
	b := lo
	for b < hi && act.Price > 0 {
		// The next breakpoint: the nearest crossing with a shallower line.
		nb, next := hi, flat
		for _, c := range z.cuts {
			if c.Price >= act.Price {
				continue
			}
			// act and c cross where act's surplus over c vanishes.
			x := b + (lineAt(c, b)-lineAt(act, b))/(act.Price-c.Price)
			if x < b {
				x = b
			}
			if x < nb || (x == nb && c.Price < next.Price) {
				nb, next = x, c
			}
		}
		if lineAt(flat, b) < lineAt(act, b) {
			// Numerical guard: the flat line is already below; stop.
			break
		}
		if x := b + (z.vMax-lineAt(act, b))/act.Price; x < nb {
			nb, next = x, flat
		}
		if nb > b {
			*segs = append(*segs, masterSeg{zone: zi, width: nb - b, slope: act.Price})
		}
		b, act = nb, next
	}
	return v0
}

// recover routes a failed decomposed solve to the monolithic fallback when
// one exists (partition path) so behavior matches the monolithic solver
// exactly; without one the error propagates.
func (s *Solver) recover(ctx context.Context, cracOut []float64, st *Stats, cause error) (*assign.Stage1Result, error) {
	if s.fallback == nil {
		s.last = *st
		s.countFallbackCause(cause)
		return nil, cause
	}
	st.Fallback = true
	s.mFallbacks.Inc()
	s.countFallbackCause(cause)
	s.finish(st)
	return s.fallback.SolveContext(ctx, cracOut)
}

// countFallbackCause bumps the per-cause fallback counter (pre-registered
// per solvererr.Kind, so no label rendering happens here).
func (s *Solver) countFallbackCause(cause error) {
	if len(s.mFallbackCause) == 0 {
		return
	}
	if k := solvererr.Classify(cause); int(k) < len(s.mFallbackCause) {
		s.mFallbackCause[k].Inc()
	}
}

// finish publishes telemetry and retains the solve's stats.
func (s *Solver) finish(st *Stats) {
	s.last = *st
	s.mRounds.Add(int64(st.Rounds))
	if st.Shortcut {
		s.mShortcuts.Inc()
	}
	for i := range s.zBudget {
		z := s.zones[i]
		s.zBudget[i].Set(z.budget)
		s.zValue[i].Set(z.value)
	}
}

// assembleInto scatters the retained per-zone solutions into one
// monolithic-shape Stage1Result, reusing res's buffers. With a single
// zone every field is bit-identical to the monolithic solver's: the zone
// LP is the monolithic LP and each ledger entry is the zone's own. With
// several zones the ledgers sum per-zone terms (zone order), the
// predicted ARR is Σ V_z, and the power shadow price is the master's
// budget-row dual — a coordination price consistent with every zone's
// local dual at the final split.
func (s *Solver) assembleInto(res *assign.Stage1Result, cracOut []float64, P float64, st *Stats) {
	*res = assign.Stage1Result{
		CracOut:       append(res.CracOut[:0], cracOut...),
		NodeCorePower: resize(res.NodeCorePower, s.nnode),
		NodePower:     resize(res.NodePower, s.nnode),
		Feasible:      true,
	}
	totOK := 0.0
	for _, z := range s.zones {
		b := &z.best
		for lj, gj := range z.nodeIdx {
			res.NodeCorePower[gj] = b.corePow[lj]
			res.NodePower[gj] = b.pow[lj]
		}
		res.PredictedARR += b.value
		res.LinearBasePower += z.basePow
		res.LinearPower += b.linPow
		res.ComputePower += b.computePower
		res.CRACPower += b.cracPower
		totOK += b.totalPower
		res.Feasible = res.Feasible && b.feasible
	}
	res.TotalPower = res.ComputePower + res.CRACPower
	res.Feasible = res.Feasible && totOK <= P+powerBudgetSlack(P)
	if len(s.zones) == 1 {
		res.PowerShadowPrice = s.zones[0].best.price
	} else if !st.Shortcut {
		res.PowerShadowPrice = s.bestDual
	}
}

// resize returns buf with length n (reusing its array when it fits).
// NodeCorePower/NodePower are fully overwritten by the scatter loop, so
// stale contents never leak.
func resize(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// powerBudgetSlack mirrors the monolithic solver's absolute power
// tolerance (assign's powerTolerance is 1e-6 kW) so the assembled
// feasibility verdict uses the same yardstick.
func powerBudgetSlack(float64) float64 { return 1e-6 }
