package telemetry

import (
	"math"
	"strings"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-7) // monotone: ignored
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}

	h := r.Histogram("h_seconds", "a histogram", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 5, 50, math.NaN()} {
		h.Observe(v)
	}
	if got := h.Count(); got != 4 {
		t.Fatalf("histogram count = %d, want 4 (NaN dropped)", got)
	}
	if got := h.Sum(); got != 55.55 {
		t.Fatalf("histogram sum = %g, want 55.55", got)
	}
}

func TestInterningSharesSlots(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("shared_total", "x", "crac", "0")
	b := r.Counter("shared_total", "x", "crac", "0")
	a.Add(3)
	b.Add(4)
	if a.Value() != 7 || b.Value() != 7 {
		t.Fatalf("interned handles diverged: %d vs %d", a.Value(), b.Value())
	}
	other := r.Counter("shared_total", "x", "crac", "1")
	if other.Value() != 0 {
		t.Fatalf("different label set shared a slot")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("kind mismatch on re-registration did not panic")
		}
	}()
	r.Gauge("shared_total", "x", "crac", "0")
}

func TestZeroValueHandlesAreNoOps(t *testing.T) {
	var c Counter
	var g Gauge
	var h Histogram
	c.Inc()
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("zero-value handles recorded something")
	}
	var nilReg *Registry
	nilReg.Counter("x", "").Inc() // must not panic
	if s := nilReg.Snapshot(); len(s) != 0 {
		t.Fatalf("nil registry snapshot = %v", s)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("tapo_lp_pivots_total", "simplex pivots").Add(12)
	r.Gauge("tapo_plant_power_kw", "plant power", "dc", "a").Set(97.5)
	h := r.Histogram("tapo_solve_wall_seconds", "ladder wall time", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE tapo_lp_pivots_total counter",
		"tapo_lp_pivots_total 12",
		"# TYPE tapo_plant_power_kw gauge",
		`tapo_plant_power_kw{dc="a"} 97.5`,
		"# TYPE tapo_solve_wall_seconds histogram",
		`tapo_solve_wall_seconds_bucket{le="0.01"} 1`,
		`tapo_solve_wall_seconds_bucket{le="0.1"} 2`,
		`tapo_solve_wall_seconds_bucket{le="+Inf"} 3`,
		"tapo_solve_wall_seconds_sum 5.055",
		"tapo_solve_wall_seconds_count 3",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("prometheus output missing %q; got:\n%s", want, out)
		}
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(2)
	r.Gauge("g", "").Set(1.25)
	r.Histogram("h", "", []float64{1}).Observe(3)
	snap := r.Snapshot()
	if snap["c_total"] != int64(2) {
		t.Errorf("snapshot counter = %v", snap["c_total"])
	}
	if snap["g"] != 1.25 {
		t.Errorf("snapshot gauge = %v", snap["g"])
	}
	if snap["h_count"] != int64(1) || snap["h_sum"] != 3.0 {
		t.Errorf("snapshot histogram = %v / %v", snap["h_count"], snap["h_sum"])
	}
}

// TestHotPathDoesNotAllocate pins the zero-allocation contract of the
// metric write path: the warm solvers increment counters on every solve,
// so a single stray allocation here would break the epoch hot path's
// 0 allocs/op guarantee.
func TestHotPathDoesNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1, 2, 4, 8})
	if avg := testing.AllocsPerRun(1000, func() {
		c.Add(3)
		g.Set(1.5)
		g.Add(0.5)
		h.Observe(3)
	}); avg != 0 {
		t.Fatalf("metric writes allocate %.1f allocs/op, want 0", avg)
	}
}

func TestLabels(t *testing.T) {
	if got := Labels(); got != "" {
		t.Errorf("Labels() = %q", got)
	}
	if got := Labels("a", `x"y\z`); got != `{a="x\"y\\z"}` {
		t.Errorf("Labels escape = %q", got)
	}
	if got := mergeLabels(`{a="1"}`, "le", "+Inf"); got != `{a="1",le="+Inf"}` {
		t.Errorf("mergeLabels = %q", got)
	}
}
