package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricKind discriminates the three metric families.
type MetricKind uint8

const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
)

func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("MetricKind(%d)", int(k))
	}
}

// metric is one registered time series: a (family name, label set) pair
// plus its atomic payload. Counters keep an integer in bits; gauges keep
// math.Float64bits; histograms use the bucket/sum/count fields. Slots are
// heap-stable — handles point straight at them — so registration can grow
// the registry's index without invalidating concurrent writers.
type metric struct {
	name   string // family name, e.g. "tapo_lp_pivots_total"
	labels string // rendered label set, e.g. `{crac="0"}`, or ""
	help   string
	kind   MetricKind

	bits atomic.Uint64 // counter value (uint64) or gauge float bits

	uppers  []float64       // histogram bucket upper bounds, ascending
	buckets []atomic.Uint64 // per-bucket counts; len(uppers)+1 (+Inf last)
	sumBits atomic.Uint64   // histogram sum, float bits updated by CAS
	count   atomic.Uint64   // histogram observation count
}

// Registry interns metric names to IDs and owns the flat slot array they
// index. Registration (Counter/Gauge/Histogram) takes a lock and may
// allocate; it is meant for setup time. The returned handles write with
// atomics only — no locks, no allocation — and are safe for concurrent
// use. Registering an already-known (name, labels) pair returns a handle
// to the existing slot, so independent subsystems share series by naming
// them identically.
type Registry struct {
	mu  sync.Mutex
	ids map[string]int // interned "name{labels}" -> index into metrics
	// metrics is the flat, append-only slot index in registration order
	// (the export order). Entries are pointers so slots stay address-stable
	// while the slice grows.
	metrics []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{ids: make(map[string]int)}
}

// Labels renders key/value pairs into a deterministic Prometheus label
// set: Labels("crac", "0") == `{crac="0"}`. Pairs must come in key, value
// order; values are escaped per the Prometheus text format.
func Labels(pairs ...string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic("telemetry: Labels needs key/value pairs")
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(pairs[i])
		b.WriteString(`="`)
		v := pairs[i+1]
		for j := 0; j < len(v); j++ {
			switch c := v[j]; c {
			case '\\', '"':
				b.WriteByte('\\')
				b.WriteByte(c)
			case '\n':
				b.WriteString(`\n`)
			default:
				b.WriteByte(c)
			}
		}
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// register interns (name, labels) and returns its slot, creating it with
// the given shape on first sight. A kind mismatch on an existing name is a
// programming error and panics — it would silently cross counter and gauge
// semantics otherwise.
func (r *Registry) register(name, labels, help string, kind MetricKind, uppers []float64) *metric {
	if r == nil {
		return nil
	}
	key := name + labels
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.ids[key]; ok {
		m := r.metrics[id]
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %s re-registered as %s, was %s", key, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, labels: labels, help: help, kind: kind}
	if kind == KindHistogram {
		m.uppers = append([]float64(nil), uppers...)
		if !sort.Float64sAreSorted(m.uppers) {
			panic("telemetry: histogram buckets must be sorted ascending")
		}
		m.buckets = make([]atomic.Uint64, len(m.uppers)+1)
	}
	r.ids[key] = len(r.metrics)
	r.metrics = append(r.metrics, m)
	return m
}

// Counter registers (or finds) a monotonically increasing counter.
// labels are optional key/value pairs as in Labels. A nil registry
// returns a no-op handle.
func (r *Registry) Counter(name, help string, labels ...string) Counter {
	if r == nil {
		return Counter{}
	}
	return Counter{r.register(name, Labels(labels...), help, KindCounter, nil)}
}

// Gauge registers (or finds) a float gauge. A nil registry returns a
// no-op handle.
func (r *Registry) Gauge(name, help string, labels ...string) Gauge {
	if r == nil {
		return Gauge{}
	}
	return Gauge{r.register(name, Labels(labels...), help, KindGauge, nil)}
}

// Histogram registers (or finds) a fixed-bucket histogram with the given
// ascending upper bounds (an implicit +Inf bucket is appended). A nil
// registry returns a no-op handle.
func (r *Registry) Histogram(name, help string, uppers []float64, labels ...string) Histogram {
	if r == nil {
		return Histogram{}
	}
	return Histogram{r.register(name, Labels(labels...), help, KindHistogram, uppers)}
}

// Counter is a handle to a registered counter. The zero value (and any
// handle from a nil registry) is a no-op, so call sites never nil-check.
type Counter struct{ m *metric }

// Add increments the counter by delta; negative deltas are ignored
// (counters are monotone). Safe for concurrent use; never allocates.
func (c Counter) Add(delta int64) {
	if c.m == nil || delta <= 0 {
		return
	}
	c.m.bits.Add(uint64(delta))
}

// Inc is Add(1).
func (c Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a no-op handle).
func (c Counter) Value() int64 {
	if c.m == nil {
		return 0
	}
	return int64(c.m.bits.Load())
}

// Gauge is a handle to a registered gauge; the zero value is a no-op.
type Gauge struct{ m *metric }

// Set stores v. Safe for concurrent use; never allocates.
func (g Gauge) Set(v float64) {
	if g.m == nil {
		return
	}
	g.m.bits.Store(math.Float64bits(v))
}

// Add atomically adds v via a compare-and-swap loop (gauges, unlike
// counters, accept float and negative deltas).
func (g Gauge) Add(v float64) {
	if g.m == nil {
		return
	}
	for {
		old := g.m.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.m.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value (0 for a no-op handle).
func (g Gauge) Value() float64 {
	if g.m == nil {
		return 0
	}
	return math.Float64frombits(g.m.bits.Load())
}

// Histogram is a handle to a registered histogram; the zero value is a
// no-op.
type Histogram struct{ m *metric }

// Observe records v into its bucket. Safe for concurrent use; never
// allocates (the bucket scan is over the preallocated bounds).
func (h Histogram) Observe(v float64) {
	if h.m == nil || math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.m.uppers) && v > h.m.uppers[i] {
		i++
	}
	h.m.buckets[i].Add(1)
	h.m.count.Add(1)
	for {
		old := h.m.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.m.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h Histogram) Count() int64 {
	if h.m == nil {
		return 0
	}
	return int64(h.m.count.Load())
}

// Sum returns the sum of observed values.
func (h Histogram) Sum() float64 {
	if h.m == nil {
		return 0
	}
	return math.Float64frombits(h.m.sumBits.Load())
}

// snapshot returns the registered slots in registration order.
func (r *Registry) snapshot() []*metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*metric(nil), r.metrics...)
}

// Snapshot returns a flat name{labels} → value view of every registered
// metric (histograms contribute _count and _sum entries), for expvar and
// tests.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	for _, m := range r.snapshot() {
		key := m.name + m.labels
		switch m.kind {
		case KindCounter:
			out[key] = int64(m.bits.Load())
		case KindGauge:
			out[key] = math.Float64frombits(m.bits.Load())
		case KindHistogram:
			out[key+"_count"] = int64(m.count.Load())
			out[key+"_sum"] = math.Float64frombits(m.sumBits.Load())
		}
	}
	return out
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (one # TYPE header per family, histograms as cumulative
// name_bucket series plus name_sum / name_count).
func (r *Registry) WritePrometheus(w io.Writer) error {
	typed := make(map[string]bool)
	for _, m := range r.snapshot() {
		if !typed[m.name] {
			typed[m.name] = true
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.kind); err != nil {
				return err
			}
		}
		switch m.kind {
		case KindCounter:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", m.name, m.labels, int64(m.bits.Load())); err != nil {
				return err
			}
		case KindGauge:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", m.name, m.labels, fmtFloat(math.Float64frombits(m.bits.Load()))); err != nil {
				return err
			}
		case KindHistogram:
			if err := m.writeHistogram(w); err != nil {
				return err
			}
		}
	}
	return nil
}

func (m *metric) writeHistogram(w io.Writer) error {
	cum := uint64(0)
	for i := range m.buckets {
		cum += m.buckets[i].Load()
		le := "+Inf"
		if i < len(m.uppers) {
			le = fmtFloat(m.uppers[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, mergeLabels(m.labels, "le", le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.name, m.labels, fmtFloat(math.Float64frombits(m.sumBits.Load()))); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", m.name, m.labels, m.count.Load())
	return err
}

// mergeLabels appends one key/value to an already-rendered label set.
func mergeLabels(labels, key, value string) string {
	extra := Labels(key, value)
	if labels == "" {
		return extra
	}
	return labels[:len(labels)-1] + "," + extra[1:]
}

// fmtFloat renders a float the way Prometheus expects (shortest
// round-trip decimal; infinities as +Inf/-Inf).
func fmtFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
