package telemetry

import (
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

// TestPlainLoggerByteIdentity: an attribute-free Info line through the
// plain handler must be byte-identical to the fmt.Fprintf(os.Stderr,
// "%s\n", msg) call it replaced — tapo's default output depends on it.
func TestPlainLoggerByteIdentity(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, slog.LevelInfo, false)
	l.Info("wrote results.csv")
	l.Info("trial 3/25 static=0.3 done")
	want := "wrote results.csv\ntrial 3/25 static=0.3 done\n"
	if b.String() != want {
		t.Fatalf("plain output = %q, want %q", b.String(), want)
	}
}

func TestPlainLoggerAttrsAndLevels(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, slog.LevelInfo, false)
	l.Debug("hidden", "k", 1)
	l.Warn("fault applied", "kind", "crac-degrade", "unit", 2)
	if got, want := b.String(), "fault applied kind=crac-degrade unit=2\n"; got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
	if l.Enabled(slog.LevelDebug) || !l.Enabled(slog.LevelWarn) {
		t.Fatalf("Enabled() disagrees with the configured level")
	}
}

func TestJSONLogger(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, slog.LevelDebug, true)
	l.Debug("sample", "power_kw", 97.5)
	var rec map[string]any
	if err := json.Unmarshal([]byte(b.String()), &rec); err != nil {
		t.Fatalf("not JSON: %v (%q)", err, b.String())
	}
	if rec["msg"] != "sample" || rec["power_kw"] != 97.5 || rec["level"] != "DEBUG" {
		t.Fatalf("record = %v", rec)
	}
}

func TestNilLoggerIsSafe(t *testing.T) {
	var l *Logger
	l.Debug("x")
	l.Info("x")
	l.Warn("x")
	l.Error("x")
	if l.Enabled(slog.LevelError) {
		t.Fatal("nil logger claims to be enabled")
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, "Error": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
}

func TestDefaultLoggerSwap(t *testing.T) {
	orig := Default()
	defer SetDefault(orig)
	var b strings.Builder
	SetDefault(NewLogger(&b, slog.LevelInfo, false))
	Default().Info("hello")
	if b.String() != "hello\n" {
		t.Fatalf("default logger output = %q", b.String())
	}
	SetDefault(nil)
	if Default() == nil {
		t.Fatal("SetDefault(nil) left a nil default")
	}
}

func TestRecorderNilAccessors(t *testing.T) {
	var r *Recorder
	if r.Registry() != nil || r.Tracer() != nil || r.SeriesSink() != nil {
		t.Fatal("nil recorder handed out components")
	}
	if r.Logger() == nil {
		t.Fatal("nil recorder must fall back to the default logger")
	}
	rec := NewRecorder()
	if rec.Registry() == nil {
		t.Fatal("NewRecorder has no registry")
	}
	if rec.Tracer() != nil || rec.SeriesSink() != nil {
		t.Fatal("NewRecorder must leave tracing and series export disabled")
	}
}
