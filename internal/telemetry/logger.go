package telemetry

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"sync"
	"sync/atomic"
)

// Logger is a thin leveled wrapper over log/slog. Two handlers back it:
// the default plain handler prints bare `msg key=val` lines (a message
// with no attributes renders byte-identical to the fmt.Fprintf(os.Stderr,
// …) call it replaced), and the JSON handler is stock slog JSON for
// machine consumption. A nil *Logger drops everything.
type Logger struct {
	s   *slog.Logger
	lvl slog.Level
}

// NewLogger builds a logger writing to w at the given minimum level,
// plain by default or slog JSON when jsonOut is set.
func NewLogger(w io.Writer, level slog.Level, jsonOut bool) *Logger {
	var h slog.Handler
	if jsonOut {
		h = slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level})
	} else {
		h = &plainHandler{w: w, level: level, mu: &sync.Mutex{}}
	}
	return &Logger{s: slog.New(h), lvl: level}
}

// ParseLevel maps the -log-level flag values to slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("telemetry: unknown log level %q (want debug|info|warn|error)", s)
}

// Enabled reports whether the logger emits records at level; callers use
// it to skip building attribute lists on hot-ish paths. Nil-safe.
func (l *Logger) Enabled(level slog.Level) bool {
	return l != nil && level >= l.lvl
}

// Debug logs at LevelDebug (silent under the default Info level).
func (l *Logger) Debug(msg string, args ...any) {
	if l != nil {
		l.s.Debug(msg, args...)
	}
}

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, args ...any) {
	if l != nil {
		l.s.Info(msg, args...)
	}
}

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, args ...any) {
	if l != nil {
		l.s.Warn(msg, args...)
	}
}

// Error logs at LevelError.
func (l *Logger) Error(msg string, args ...any) {
	if l != nil {
		l.s.Error(msg, args...)
	}
}

// defaultLogger is the process-wide logger internal packages report
// through; cmd/tapo reconfigures it from -log-level/-log-json.
var defaultLogger atomic.Pointer[Logger]

func init() {
	defaultLogger.Store(NewLogger(os.Stderr, slog.LevelInfo, false))
}

// Default returns the process-wide logger (never nil).
func Default() *Logger { return defaultLogger.Load() }

// SetDefault replaces the process-wide logger; a nil l restores the
// stderr Info plain logger.
func SetDefault(l *Logger) {
	if l == nil {
		l = NewLogger(os.Stderr, slog.LevelInfo, false)
	}
	defaultLogger.Store(l)
}

// plainHandler renders records as `msg[ key=val]...\n` with no timestamp
// or level prefix: the human-facing format of the stderr progress lines
// the repository printed before the telemetry layer existed, kept
// byte-identical for attribute-free records.
type plainHandler struct {
	w     io.Writer
	level slog.Level
	mu    *sync.Mutex
	attrs []slog.Attr
}

func (h *plainHandler) Enabled(_ context.Context, level slog.Level) bool {
	return level >= h.level
}

func (h *plainHandler) Handle(_ context.Context, rec slog.Record) error {
	var b strings.Builder
	b.WriteString(rec.Message)
	for _, a := range h.attrs {
		writeAttr(&b, a)
	}
	rec.Attrs(func(a slog.Attr) bool {
		writeAttr(&b, a)
		return true
	})
	b.WriteByte('\n')
	h.mu.Lock()
	defer h.mu.Unlock()
	_, err := io.WriteString(h.w, b.String())
	return err
}

func writeAttr(b *strings.Builder, a slog.Attr) {
	if a.Equal(slog.Attr{}) {
		return
	}
	b.WriteByte(' ')
	b.WriteString(a.Key)
	b.WriteByte('=')
	b.WriteString(a.Value.String())
}

func (h *plainHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	if len(attrs) == 0 {
		return h
	}
	c := *h
	c.attrs = append(append([]slog.Attr(nil), h.attrs...), attrs...)
	return &c
}

// WithGroup flattens groups: this handler is for terse progress lines,
// not nested structure (use -log-json for that).
func (h *plainHandler) WithGroup(string) slog.Handler { return h }
