// Package telemetry is the observability substrate of the repository: a
// dependency-free (standard library only) layer that the controller, the
// three-stage solvers, the simplex core, the scheduler, and the truth
// plant all report through.
//
// It has four parts, bundled by Recorder:
//
//   - a metrics Registry of counters, gauges, and fixed-bucket histograms
//     backed by flat arrays of atomics keyed by interned IDs. Handles are
//     resolved once at setup; the write path (Counter.Add, Gauge.Set,
//     Histogram.Observe) is lock-free, allocation-free, and safe for
//     concurrent writers.
//   - a span Tracer for the solve pipeline (controller epoch → ladder
//     rung → three-stage stage → tempsearch candidate → linprog solve)
//     recording wall time, simplex pivots, and an error kind into a
//     preallocated ring buffer. A nil *Tracer is the disabled state: every
//     method is a nil-receiver no-op that never calls time.Now, which
//     preserves the warm-epoch zero-allocation guarantee of the solvers.
//   - a JSONL time-series exporter (JSONLWriter) of per-epoch EpochSample
//     rows — inlet-temperature headroom, power headroom against Pconst,
//     reward rate, drop/loss counts, LP work counters, ladder rung —
//     validated by cmd/tscheck against SampleSchema.
//   - a leveled structured Logger over log/slog whose default plain
//     handler prints bare messages, byte-identical to the fmt.Fprintf
//     lines it replaced; -log-json switches the same call sites to
//     machine-readable output.
//
// Everything is nil-safe: a nil *Recorder (and nil components) disables
// the layer at the cost of one pointer comparison per call site.
package telemetry

// Recorder bundles the telemetry components one run threads through the
// solver plumbing. Any field may be nil to disable that component; a nil
// *Recorder disables everything.
type Recorder struct {
	// Metrics is the shared registry counters and gauges resolve against.
	Metrics *Registry
	// Trace receives solve-pipeline spans (nil = tracing disabled, the
	// default; the solvers' hot paths then skip their time.Now calls).
	Trace *Tracer
	// Series receives one EpochSample per controller epoch (nil = no
	// time-series export).
	Series *JSONLWriter
	// Log overrides the package default logger for this run (nil = use
	// Default()).
	Log *Logger
}

// NewRecorder returns a Recorder with a fresh metrics registry and
// tracing, series export, and logging left disabled.
func NewRecorder() *Recorder {
	return &Recorder{Metrics: NewRegistry()}
}

// Registry returns the metrics registry, nil when disabled.
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.Metrics
}

// Tracer returns the span tracer, nil when disabled.
func (r *Recorder) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.Trace
}

// SeriesSink returns the JSONL exporter, nil when disabled.
func (r *Recorder) SeriesSink() *JSONLWriter {
	if r == nil {
		return nil
	}
	return r.Series
}

// Logger returns the run's logger, falling back to the package default.
func (r *Recorder) Logger() *Logger {
	if r == nil || r.Log == nil {
		return Default()
	}
	return r.Log
}
