package telemetry

import (
	"sync"
	"time"
)

// SpanKind names a level of the solve pipeline. The hierarchy, outermost
// first: one controller epoch runs ladder rungs, a rung runs the three
// stages, the search stage evaluates tempsearch candidates, and every
// candidate (and every stage LP) runs simplex solves.
type SpanKind uint8

const (
	// SpanEpoch is one controller epoch's whole ladder trip; Label is the
	// boundary index.
	SpanEpoch SpanKind = iota
	// SpanRung is one degradation-ladder solve attempt; Label is the
	// controller.Rung the attempt would land on.
	SpanRung
	// SpanStage is one three-stage phase; Label is 0 search, 1 Stage-1,
	// 2 Stage-2, 3 Stage-3.
	SpanStage
	// SpanCandidate is one tempsearch objective evaluation; Label is the
	// worker index, Err is 0 feasible / 1 infeasible.
	SpanCandidate
	// SpanLPSolve is one linprog solve; Pivots is the simplex work and Err
	// the numeric Solution status.
	SpanLPSolve
	// SpanZoneSolve is one per-zone Stage-1 solve inside the fleet
	// decomposition; Label is the zone index, Pivots the simplex work, and
	// Err is 0 for a warm-start hit, 1 for a cold (or warm-rejected) solve.
	SpanZoneSolve
	// SpanCoordRound is one price-coordination round of the zone master
	// (master knapsack + all zone evaluations); Label is the round index
	// and Err is 1 when the round ended in monolithic fallback.
	SpanCoordRound

	numSpanKinds
)

// SpanKindCount is the number of defined span kinds; exported so trace
// consumers (cmd/tapo trace) can validate Kind values without importing
// internals.
const SpanKindCount = int(numSpanKinds)

func (k SpanKind) String() string {
	switch k {
	case SpanEpoch:
		return "epoch"
	case SpanRung:
		return "rung"
	case SpanStage:
		return "stage"
	case SpanCandidate:
		return "candidate"
	case SpanLPSolve:
		return "lp-solve"
	case SpanZoneSolve:
		return "zone-solve"
	case SpanCoordRound:
		return "coord-round"
	default:
		return "span"
	}
}

// Span is one recorded interval of the solve pipeline.
type Span struct {
	Kind SpanKind
	// Label disambiguates spans of one kind; see the SpanKind constants.
	Label int32
	// Start is the span's begin time relative to the tracer's creation;
	// Dur its wall time.
	Start, Dur time.Duration
	// Pivots counts simplex basis changes inside the span (LP solves only).
	Pivots int64
	// Err is a kind-specific error code; 0 means success.
	Err int32
	// Track is the executor lane the span ran on (Chrome-trace tid):
	// 0 for the control path, a worker index for tempsearch candidates,
	// a zone index for per-zone solves. Spans on one track must nest by
	// time containment, which is how the exported timeline expresses
	// parentage without explicit parent pointers.
	Track int32
	// Run is the controller run the span belongs to (Chrome-trace pid),
	// advanced by Tracer.NextRun in lockstep with JSONLWriter.NextRun.
	Run int32
	// Seq is the global record sequence number (monotone per tracer).
	Seq uint64
}

// SpanClock is the begin timestamp handed out by Tracer.Begin. Its zero
// value marks a disabled span: End drops it without reading the clock.
type SpanClock struct{ t time.Time }

// Tracer records spans into a fixed ring buffer, overwriting the oldest
// once full. A nil *Tracer is the disabled state: Begin and End are
// nil-receiver no-ops that never read the clock, take no locks, and
// allocate nothing — the solvers keep their warm-path zero-allocation
// guarantee with tracing off. An enabled tracer serializes writers on a
// mutex (span recording is well off any per-pivot path) and still never
// allocates after construction.
type Tracer struct {
	mu    sync.Mutex
	epoch time.Time
	ring  []Span
	n     uint64
	run   int32
}

// DefaultTraceCapacity sizes NewTracer's ring when the caller passes a
// non-positive capacity.
const DefaultTraceCapacity = 4096

// NewTracer returns a tracer with a ring of the given capacity
// (DefaultTraceCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{epoch: time.Now(), ring: make([]Span, capacity)}
}

// Begin starts a span. On a nil tracer it returns the zero SpanClock
// without touching the clock.
func (t *Tracer) Begin() SpanClock {
	if t == nil {
		return SpanClock{}
	}
	return SpanClock{t: time.Now()}
}

// End records the span begun at c on track 0 (the control path). A nil
// tracer or a zero c (a Begin from a disabled tracer) is a no-op.
func (t *Tracer) End(c SpanClock, kind SpanKind, label int32, pivots int64, errCode int32) {
	t.EndOnTrack(c, kind, label, 0, pivots, errCode)
}

// EndOnTrack records the span begun at c on an explicit executor track
// (a tempsearch worker or a zone index). Same nil/zero no-op contract as
// End.
func (t *Tracer) EndOnTrack(c SpanClock, kind SpanKind, label, track int32, pivots int64, errCode int32) {
	if t == nil || c.t.IsZero() {
		return
	}
	now := time.Now()
	t.mu.Lock()
	i := t.n % uint64(len(t.ring))
	t.ring[i] = Span{
		Kind:   kind,
		Label:  label,
		Start:  c.t.Sub(t.epoch),
		Dur:    now.Sub(c.t),
		Pivots: pivots,
		Err:    errCode,
		Track:  track,
		Run:    t.run,
		Seq:    t.n,
	}
	t.n++
	t.mu.Unlock()
}

// NextRun advances the run number stamped on subsequent spans and returns
// it. Sweeps call it once per controller run, next to the matching
// JSONLWriter.NextRun, so trace pids line up with time-series run
// numbers. Nil-safe.
func (t *Tracer) NextRun() int32 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.run++
	return t.run
}

// WallStart is the wall-clock instant Span.Start offsets are relative to
// (the tracer's creation time). Nil tracers report the zero time.
func (t *Tracer) WallStart() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// Count returns how many spans were ever recorded (recorded − len(ring)
// of them may have been overwritten).
func (t *Tracer) Count() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Snapshot copies the retained spans oldest-first.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	size := uint64(len(t.ring))
	if t.n < size {
		return append([]Span(nil), t.ring[:t.n]...)
	}
	out := make([]Span, 0, size)
	start := t.n % size
	out = append(out, t.ring[start:]...)
	out = append(out, t.ring[:start]...)
	return out
}

// CountByKind tallies the retained spans per kind (a Snapshot
// convenience for tests and reports).
func (t *Tracer) CountByKind() map[SpanKind]int {
	out := make(map[SpanKind]int)
	for _, s := range t.Snapshot() {
		out[s.Kind]++
	}
	return out
}
