package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s body: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("tapo_test_total", "test counter").Add(7)
	srv := httptest.NewServer(Mux(reg))
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK || !strings.Contains(body, "tapo_test_total 7") {
		t.Errorf("/metrics = %d, %q", code, body)
	}
	if ct := "text/plain; version=0.0.4; charset=utf-8"; true {
		resp, _ := srv.Client().Get(srv.URL + "/metrics")
		if got := resp.Header.Get("Content-Type"); got != ct {
			t.Errorf("/metrics content type = %q, want %q", got, ct)
		}
		resp.Body.Close()
	}

	code, body = get(t, srv, "/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, "tapo_metrics") {
		t.Errorf("/debug/vars = %d, missing tapo_metrics: %q", code, body)
	}

	code, body = get(t, srv, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d", code)
	}

	code, _ = get(t, srv, "/nope")
	if code != http.StatusNotFound {
		t.Errorf("unknown path = %d, want 404", code)
	}
	code, body = get(t, srv, "/")
	if code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index = %d, %q", code, body)
	}
}

// TestBuildInfoGauge: Mux publishes the standard build-info gauge so one
// scrape identifies what binary produced the rest of the metrics.
func TestBuildInfoGauge(t *testing.T) {
	reg := NewRegistry()
	srv := httptest.NewServer(Mux(reg))
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if !strings.Contains(body, "tapo_build_info{") {
		t.Fatalf("/metrics lacks tapo_build_info: %q", body)
	}
	if !strings.Contains(body, `goversion="`+runtime.Version()+`"`) {
		t.Errorf("tapo_build_info lacks goversion label: %q", body)
	}
	for _, label := range []string{"version=", "gomaxprocs="} {
		if !strings.Contains(body, label) {
			t.Errorf("tapo_build_info lacks %s label: %q", label, body)
		}
	}
	// Re-registering (a second Mux over the same registry) must not panic
	// or duplicate the gauge.
	RegisterBuildInfo(reg)
	_, body = get(t, srv, "/metrics")
	if strings.Count(body, "tapo_build_info{") != 1 {
		t.Errorf("build info registered more than once: %q", body)
	}
	RegisterBuildInfo(nil) // nil registry is a no-op
}

func TestServeBindsAndCloses(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("tapo_up", "").Set(1)
	addr, closeFn, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET after Serve: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "tapo_up 1") {
		t.Errorf("served metrics = %q", body)
	}
	if err := closeFn(); err != nil {
		t.Errorf("close: %v", err)
	}
}
