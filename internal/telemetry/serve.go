package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// servedRegistry backs the process-wide "tapo_metrics" expvar: expvar
// names can be published once per process, so the var reads whichever
// registry was most recently wired into a mux.
var (
	servedRegistry atomic.Pointer[Registry]
	expvarOnce     sync.Once
)

func publishExpvar(reg *Registry) {
	servedRegistry.Store(reg)
	expvarOnce.Do(func() {
		expvar.Publish("tapo_metrics", expvar.Func(func() any {
			if r := servedRegistry.Load(); r != nil {
				return r.Snapshot()
			}
			return nil
		}))
	})
}

// Mux builds the diagnostics HTTP mux served by `tapo -serve-metrics`:
//
//	/metrics          Prometheus text exposition of reg
//	/debug/vars       expvar JSON (includes reg as "tapo_metrics")
//	/debug/pprof/...  net/http/pprof profiles
func Mux(reg *Registry) *http.ServeMux {
	RegisterBuildInfo(reg)
	publishExpvar(reg)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "tapo telemetry\n\n/metrics\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

// Serve starts Mux(reg) on addr in a background goroutine and returns the
// bound address (useful with ":0") and a closer that stops the server.
func Serve(addr string, reg *Registry) (boundAddr string, closeFn func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Mux(reg)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
