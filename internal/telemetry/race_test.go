package telemetry

import (
	"strings"
	"sync"
	"testing"
)

// TestConcurrentWritersSoak hammers one registry and one tracer from many
// goroutines while a reader exports snapshots, as the parallel tempsearch
// workers and a live -serve-metrics scrape would. Run under -race by
// `make ci` (and the race target), it is the layer's data-race gate; the
// final counter check also catches lost updates.
func TestConcurrentWritersSoak(t *testing.T) {
	const (
		writers = 8
		iters   = 2000
	)
	r := NewRegistry()
	c := r.Counter("soak_total", "")
	g := r.Gauge("soak_gauge", "")
	h := r.Histogram("soak_hist", "", []float64{1, 10, 100})
	perCRAC := []Gauge{r.Gauge("soak_crac", "", "crac", "0"), r.Gauge("soak_crac", "", "crac", "1")}
	tr := NewTracer(256)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 200))
				perCRAC[w%2].Set(float64(i))
				sc := tr.Begin()
				tr.End(sc, SpanCandidate, int32(w), int64(i), 0)
			}
		}(w)
	}
	// Concurrent readers: exporting while writers run must be race-free.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
			r.Snapshot()
			tr.Snapshot()
		}
	}()
	wg.Wait()

	if got, want := c.Value(), int64(writers*iters); got != want {
		t.Errorf("counter lost updates: %d, want %d", got, want)
	}
	if got, want := g.Value(), float64(writers*iters); got != want {
		t.Errorf("gauge CAS lost updates: %g, want %g", got, want)
	}
	if got, want := h.Count(), int64(writers*iters); got != want {
		t.Errorf("histogram lost observations: %d, want %d", got, want)
	}
	if got, want := tr.Count(), uint64(writers*iters); got != want {
		t.Errorf("tracer lost spans: %d, want %d", got, want)
	}
}
