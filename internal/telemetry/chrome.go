package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"
)

// This file exports a Tracer's span ring as Chrome trace-event JSON (the
// format chrome://tracing, Perfetto, and speedscope all load). Every span
// becomes one "X" (complete) event: ts and dur are microseconds, ts is
// wall-clock (Unix epoch) so traces from different processes line up,
// pid is the controller run, and tid is the span's executor track.
// Parentage is implicit: events on one (pid, tid) pair nest by time
// containment, which the span hierarchy (epoch ⊃ rung ⊃ stage ⊃
// candidate/zone ⊃ lp-solve) guarantees by construction.

// ChromeArgs carries the span fields that have no trace-event slot.
type ChromeArgs struct {
	// Kind is the numeric SpanKind (redundant with the event name; kept so
	// linters need no name table).
	Kind int32 `json:"kind"`
	// Label is the span's kind-specific label (see SpanKind docs).
	Label int32 `json:"label"`
	// Pivots counts simplex basis changes inside the span.
	Pivots int64 `json:"pivots"`
	// Err is the span's kind-specific error code; 0 means success.
	Err int32 `json:"err"`
	// Seq is the tracer's global record sequence number.
	Seq uint64 `json:"seq"`
}

// ChromeEvent is one trace-event JSON object.
type ChromeEvent struct {
	Name string     `json:"name"`
	Cat  string     `json:"cat"`
	Ph   string     `json:"ph"`
	TS   float64    `json:"ts"`
	Dur  float64    `json:"dur"`
	PID  int64      `json:"pid"`
	TID  int64      `json:"tid"`
	Args ChromeArgs `json:"args"`
}

// ChromeTrace is the JSON-object form of the trace file.
type ChromeTrace struct {
	DisplayTimeUnit string            `json:"displayTimeUnit,omitempty"`
	TraceEvents     []ChromeEvent     `json:"traceEvents"`
	Metadata        map[string]string `json:"metadata,omitempty"`
}

// chromeCategory tags every exported event so mixed traces can filter
// ours back out.
const chromeCategory = "tapo"

// ChromeTraceFromSpans converts a Snapshot (oldest-first) into a trace
// object. wallStart is the instant span Start offsets are relative to
// (Tracer.WallStart).
func ChromeTraceFromSpans(spans []Span, wallStart time.Time) *ChromeTrace {
	base := wallStart.UnixNano()
	events := make([]ChromeEvent, 0, len(spans))
	for _, s := range spans {
		events = append(events, ChromeEvent{
			Name: s.Kind.String(),
			Cat:  chromeCategory,
			Ph:   "X",
			TS:   float64(base+s.Start.Nanoseconds()) / 1e3,
			Dur:  float64(s.Dur.Nanoseconds()) / 1e3,
			PID:  int64(s.Run),
			TID:  int64(s.Track),
			Args: ChromeArgs{
				Kind:   int32(s.Kind),
				Label:  s.Label,
				Pivots: s.Pivots,
				Err:    s.Err,
				Seq:    s.Seq,
			},
		})
	}
	return &ChromeTrace{
		DisplayTimeUnit: "ms",
		TraceEvents:     events,
		Metadata: map[string]string{
			"tool":      "tapo",
			"goversion": runtime.Version(),
		},
	}
}

// WriteChrome serializes the tracer's retained spans as Chrome
// trace-event JSON. Safe on a nil tracer (writes an empty trace).
func (t *Tracer) WriteChrome(w io.Writer) error {
	ct := ChromeTraceFromSpans(t.Snapshot(), t.WallStart())
	enc := json.NewEncoder(w)
	if err := enc.Encode(ct); err != nil {
		return fmt.Errorf("telemetry: writing chrome trace: %w", err)
	}
	return nil
}

// ReadChromeTrace parses a trace file written by WriteChrome. It rejects
// trailing garbage but performs no semantic validation; call Lint for
// that.
func ReadChromeTrace(r io.Reader) (*ChromeTrace, error) {
	dec := json.NewDecoder(r)
	var ct ChromeTrace
	if err := dec.Decode(&ct); err != nil {
		return nil, fmt.Errorf("telemetry: parsing chrome trace: %w", err)
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err != io.EOF {
		return nil, fmt.Errorf("telemetry: trailing data after chrome trace object")
	}
	return &ct, nil
}

// Lint checks the trace against the exporter's schema: only complete
// ("X") events in our category, names matching the numeric kind, finite
// non-negative timestamps and durations, non-negative pid/tid/pivots,
// and strictly increasing sequence numbers (the oldest-first export
// order, so re-imported timelines cannot interleave).
func (ct *ChromeTrace) Lint() error {
	if len(ct.TraceEvents) == 0 {
		return fmt.Errorf("trace has no events")
	}
	var prevSeq uint64
	for i, e := range ct.TraceEvents {
		fail := func(format string, a ...any) error {
			return fmt.Errorf("event %d (%q): %s", i, e.Name, fmt.Sprintf(format, a...))
		}
		if e.Ph != "X" {
			return fail("phase %q, want complete event \"X\"", e.Ph)
		}
		if e.Cat != chromeCategory {
			return fail("category %q, want %q", e.Cat, chromeCategory)
		}
		if e.Args.Kind < 0 || int(e.Args.Kind) >= SpanKindCount {
			return fail("unknown span kind %d", e.Args.Kind)
		}
		if want := SpanKind(e.Args.Kind).String(); e.Name != want {
			return fail("name does not match kind %d (want %q)", e.Args.Kind, want)
		}
		for _, v := range []struct {
			name string
			v    float64
		}{{"ts", e.TS}, {"dur", e.Dur}} {
			if math.IsNaN(v.v) || math.IsInf(v.v, 0) || v.v < 0 {
				return fail("%s = %g, want finite and non-negative", v.name, v.v)
			}
		}
		if e.PID < 0 || e.TID < 0 {
			return fail("pid/tid = %d/%d, want non-negative", e.PID, e.TID)
		}
		if e.Args.Pivots < 0 {
			return fail("pivots = %d, want non-negative", e.Args.Pivots)
		}
		if i > 0 && e.Args.Seq <= prevSeq {
			return fail("seq %d not increasing (previous %d): events out of record order", e.Args.Seq, prevSeq)
		}
		prevSeq = e.Args.Seq
	}
	return nil
}
