package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
)

// EpochSample is one per-epoch row of the exported time series: the
// quantities the paper's two-step scheme lives on (inlet headroom against
// the redlines, power headroom against Pconst, the reward rate actually
// earned) plus the solve-pipeline telemetry of the epoch that produced
// the plan in force. All headrooms are signed: positive means margin,
// negative means the constraint was violated by that much.
type EpochSample struct {
	// Run separates concatenated controller runs in one file (a sweep
	// writes many); timestamps restart per run. Filled by JSONLWriter.
	Run int `json:"run"`
	// Epoch is the interval index within the run.
	Epoch int `json:"epoch"`
	// TStart and TEnd bound the interval in simulated seconds.
	TStart float64 `json:"t_start_s"`
	TEnd   float64 `json:"t_end_s"`
	// Resolved marks intervals that began with a first-step re-solve;
	// Rung is the degradation-ladder rung that produced the plan.
	Resolved bool   `json:"resolved"`
	Rung     string `json:"rung,omitempty"`
	// RewardRate is the interval's realized reward per second.
	RewardRate float64 `json:"reward_rate"`
	// Completed, Dropped (admission-time deadline misses) and Lost
	// (fault-destroyed) count the interval's tasks.
	Completed int `json:"completed"`
	Dropped   int `json:"dropped"`
	Lost      int `json:"lost"`
	// Violations counts planner-view assign.Verify findings against the
	// plan in force (0 for every shipped schedule).
	Violations int `json:"violations"`
	// Retries counts backed-off solve retries; SolveWallS is the ladder
	// trip's wall time; ErrKind classifies the last solve failure.
	Retries    int     `json:"retries"`
	SolveWallS float64 `json:"solve_wall_s"`
	ErrKind    string  `json:"err_kind,omitempty"`
	// PowerKW is the truth plant's total draw at the interval's plan;
	// PowerHeadroomKW = cap − power (negative = cap exceeded).
	PowerKW         float64 `json:"power_kw"`
	PowerHeadroomKW float64 `json:"power_headroom_kw"`
	// InletHeadroomC is the worst (minimum) redline − inlet margin over
	// all thermal sensors; the per-sensor breakdown follows.
	InletHeadroomC         float64   `json:"inlet_headroom_c"`
	InletHeadroomBySensorC []float64 `json:"inlet_headroom_by_sensor_c,omitempty"`
	// CracOutC is the CRAC outlet setpoint vector of the plan in force.
	CracOutC []float64 `json:"crac_out_c,omitempty"`
	// LP work counters drained from the warm solver for this epoch.
	LPSolves     int64 `json:"lp_solves"`
	LPPivots     int64 `json:"lp_pivots"`
	LPAllocBytes int64 `json:"lp_alloc_bytes"`
	// ZonePath marks epochs served by the zone-decomposed fast path;
	// ZoneRounds is the price-coordination round count of that solve and
	// ZoneFallbacks counts zone-solver failures that fell back to the
	// monolithic ladder this epoch. All zero/absent off the fleet path.
	ZonePath      bool `json:"zone_path,omitempty"`
	ZoneRounds    int  `json:"zone_rounds,omitempty"`
	ZoneFallbacks int  `json:"zone_fallbacks,omitempty"`
}

// FieldType is the JSON shape of one EpochSample field, for schema
// validation (cmd/tscheck).
type FieldType uint8

const (
	FieldNumber FieldType = iota
	FieldString
	FieldBool
	FieldNumberArray
)

// SampleSchema maps every EpochSample JSON key to its expected type. It
// is the single source of truth cmd/tscheck validates exported files
// against: unknown keys in a file fail the check.
func SampleSchema() map[string]FieldType {
	return map[string]FieldType{
		"run":                        FieldNumber,
		"epoch":                      FieldNumber,
		"t_start_s":                  FieldNumber,
		"t_end_s":                    FieldNumber,
		"resolved":                   FieldBool,
		"rung":                       FieldString,
		"reward_rate":                FieldNumber,
		"completed":                  FieldNumber,
		"dropped":                    FieldNumber,
		"lost":                       FieldNumber,
		"violations":                 FieldNumber,
		"retries":                    FieldNumber,
		"solve_wall_s":               FieldNumber,
		"err_kind":                   FieldString,
		"power_kw":                   FieldNumber,
		"power_headroom_kw":          FieldNumber,
		"inlet_headroom_c":           FieldNumber,
		"inlet_headroom_by_sensor_c": FieldNumberArray,
		"crac_out_c":                 FieldNumberArray,
		"lp_solves":                  FieldNumber,
		"lp_pivots":                  FieldNumber,
		"lp_alloc_bytes":             FieldNumber,
		"zone_path":                  FieldBool,
		"zone_rounds":                FieldNumber,
		"zone_fallbacks":             FieldNumber,
	}
}

// SampleRequired lists the keys every exported sample must carry
// (omitempty fields are optional).
func SampleRequired() []string {
	return []string{
		"run", "epoch", "t_start_s", "t_end_s", "resolved", "reward_rate",
		"completed", "dropped", "lost", "violations", "retries",
		"solve_wall_s", "power_kw", "power_headroom_kw", "inlet_headroom_c",
		"lp_solves", "lp_pivots", "lp_alloc_bytes",
	}
}

// Validate rejects samples that would poison the exported series:
// non-finite floats (JSON cannot carry them and downstream consumers
// cannot average them), negative counts, or a backwards interval.
func (s *EpochSample) Validate() error {
	floats := []struct {
		name string
		v    float64
	}{
		{"t_start_s", s.TStart}, {"t_end_s", s.TEnd},
		{"reward_rate", s.RewardRate}, {"solve_wall_s", s.SolveWallS},
		{"power_kw", s.PowerKW}, {"power_headroom_kw", s.PowerHeadroomKW},
		{"inlet_headroom_c", s.InletHeadroomC},
	}
	for _, f := range floats {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("telemetry: sample field %s is non-finite (%g)", f.name, f.v)
		}
	}
	for _, arr := range [][]float64{s.InletHeadroomBySensorC, s.CracOutC} {
		for _, v := range arr {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("telemetry: sample array value is non-finite (%g)", v)
			}
		}
	}
	if s.TEnd < s.TStart {
		return fmt.Errorf("telemetry: sample interval [%g, %g) is backwards", s.TStart, s.TEnd)
	}
	for _, c := range []struct {
		name string
		v    int64
	}{
		{"epoch", int64(s.Epoch)}, {"completed", int64(s.Completed)},
		{"dropped", int64(s.Dropped)}, {"lost", int64(s.Lost)},
		{"violations", int64(s.Violations)}, {"retries", int64(s.Retries)},
		{"lp_solves", s.LPSolves}, {"lp_pivots", s.LPPivots},
		{"lp_alloc_bytes", s.LPAllocBytes},
		{"zone_rounds", int64(s.ZoneRounds)}, {"zone_fallbacks", int64(s.ZoneFallbacks)},
	} {
		if c.v < 0 {
			return fmt.Errorf("telemetry: sample count %s is negative (%d)", c.name, c.v)
		}
	}
	return nil
}

// JSONLWriter appends EpochSample rows to a writer, one JSON object per
// line, stamping each with the current run number. Safe for concurrent
// use; a nil *JSONLWriter drops everything.
type JSONLWriter struct {
	mu  sync.Mutex
	w   io.Writer
	enc *json.Encoder
	run int
	n   int
}

// NewJSONLWriter wraps w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{w: w, enc: json.NewEncoder(w)}
}

// NextRun advances the run number stamped on subsequent samples and
// returns it. Sweeps call it once per controller run so cmd/tscheck can
// check timestamp monotonicity within each run. Nil-safe.
func (jw *JSONLWriter) NextRun() int {
	if jw == nil {
		return 0
	}
	jw.mu.Lock()
	defer jw.mu.Unlock()
	jw.run++
	return jw.run
}

// Run returns the current run number (0 before the first NextRun).
// Nil-safe.
func (jw *JSONLWriter) Run() int {
	if jw == nil {
		return 0
	}
	jw.mu.Lock()
	defer jw.mu.Unlock()
	return jw.run
}

// Write validates s, stamps the run number, and appends one line. A
// validation failure is returned (and nothing is written) so bad values
// surface at the producer, not in a consumer's parser. Nil-safe.
func (jw *JSONLWriter) Write(s EpochSample) error {
	if jw == nil {
		return nil
	}
	if err := s.Validate(); err != nil {
		return err
	}
	jw.mu.Lock()
	defer jw.mu.Unlock()
	s.Run = jw.run
	if err := jw.enc.Encode(&s); err != nil {
		return fmt.Errorf("telemetry: writing sample: %w", err)
	}
	jw.n++
	return nil
}

// Samples returns how many rows were written.
func (jw *JSONLWriter) Samples() int {
	if jw == nil {
		return 0
	}
	jw.mu.Lock()
	defer jw.mu.Unlock()
	return jw.n
}
