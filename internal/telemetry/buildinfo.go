package telemetry

import (
	"runtime"
	"runtime/debug"
	"strconv"
)

// RegisterBuildInfo publishes the conventional `tapo_build_info` gauge:
// constant value 1 with the build identity in the labels, so dashboards
// can join any other series against the binary that produced it. Mux
// calls it for every served registry; calling it twice is harmless (the
// registry dedupes on name+labels). Nil-safe.
func RegisterBuildInfo(reg *Registry) {
	if reg == nil {
		return
	}
	version := "devel"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		version = bi.Main.Version
	}
	reg.Gauge("tapo_build_info",
		"Build metadata: constant 1, identity in the labels.",
		"version", version,
		"goversion", runtime.Version(),
		"gomaxprocs", strconv.Itoa(runtime.GOMAXPROCS(0)),
	).Set(1)
}
