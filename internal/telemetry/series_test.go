package telemetry

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func sample() EpochSample {
	return EpochSample{
		Epoch: 1, TStart: 0, TEnd: 15, Resolved: true, Rung: "warm",
		RewardRate: 120.5, Completed: 40, Dropped: 2, Lost: 1,
		SolveWallS: 0.02, PowerKW: 90, PowerHeadroomKW: 10,
		InletHeadroomC:         1.5,
		InletHeadroomBySensorC: []float64{1.5, 2.5},
		CracOutC:               []float64{15, 16},
		LPSolves:               3, LPPivots: 120,
	}
}

func TestJSONLWriterStampsRuns(t *testing.T) {
	var b strings.Builder
	jw := NewJSONLWriter(&b)
	jw.NextRun()
	if err := jw.Write(sample()); err != nil {
		t.Fatal(err)
	}
	jw.NextRun()
	if err := jw.Write(sample()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 || jw.Samples() != 2 {
		t.Fatalf("wrote %d lines, Samples()=%d, want 2", len(lines), jw.Samples())
	}
	for i, line := range lines {
		var got EpochSample
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d not valid JSON: %v", i, err)
		}
		if got.Run != i+1 {
			t.Errorf("line %d run = %d, want %d", i, got.Run, i+1)
		}
	}
}

func TestWriteRejectsBadSamples(t *testing.T) {
	var b strings.Builder
	jw := NewJSONLWriter(&b)
	bad := sample()
	bad.PowerKW = math.NaN()
	if err := jw.Write(bad); err == nil {
		t.Errorf("NaN power accepted")
	}
	bad = sample()
	bad.InletHeadroomBySensorC = []float64{math.Inf(-1)}
	if err := jw.Write(bad); err == nil {
		t.Errorf("-Inf headroom accepted")
	}
	bad = sample()
	bad.TEnd = bad.TStart - 1
	if err := jw.Write(bad); err == nil {
		t.Errorf("backwards interval accepted")
	}
	bad = sample()
	bad.LPPivots = -1
	if err := jw.Write(bad); err == nil {
		t.Errorf("negative count accepted")
	}
	if b.Len() != 0 {
		t.Errorf("rejected samples still wrote output: %q", b.String())
	}
}

func TestNilJSONLWriterIsSafe(t *testing.T) {
	var jw *JSONLWriter
	if err := jw.Write(sample()); err != nil {
		t.Fatal(err)
	}
	if jw.NextRun() != 0 || jw.Samples() != 0 {
		t.Fatal("nil writer kept state")
	}
}

// TestSchemaMatchesStruct keeps SampleSchema, SampleRequired, and the
// struct's JSON tags from drifting apart: every emitted key must be in
// the schema, every required key must be emitted by a fully-populated
// sample, and optional keys must really be omitted when empty.
func TestSchemaMatchesStruct(t *testing.T) {
	schema := SampleSchema()

	full := sample()
	full.ErrKind = "timeout"
	full.Violations, full.Retries = 1, 2
	raw, err := json.Marshal(&full)
	if err != nil {
		t.Fatal(err)
	}
	var keys map[string]json.RawMessage
	if err := json.Unmarshal(raw, &keys); err != nil {
		t.Fatal(err)
	}
	for k := range keys {
		if _, ok := schema[k]; !ok {
			t.Errorf("emitted key %q missing from SampleSchema", k)
		}
	}
	for _, req := range SampleRequired() {
		if _, ok := keys[req]; !ok {
			t.Errorf("required key %q not emitted by a populated sample", req)
		}
		if _, ok := schema[req]; !ok {
			t.Errorf("required key %q missing from SampleSchema", req)
		}
	}

	// A minimal sample must still carry every required key (omitempty may
	// only hide optional ones).
	raw, err = json.Marshal(&EpochSample{TEnd: 1})
	if err != nil {
		t.Fatal(err)
	}
	var minKeys map[string]json.RawMessage
	if err := json.Unmarshal(raw, &minKeys); err != nil {
		t.Fatal(err)
	}
	for _, req := range SampleRequired() {
		if _, ok := minKeys[req]; !ok {
			t.Errorf("required key %q omitted from a minimal sample", req)
		}
	}
}
