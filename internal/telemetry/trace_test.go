package telemetry

import (
	"testing"
	"time"
)

func TestNilTracerIsFreeAndSafe(t *testing.T) {
	var tr *Tracer
	c := tr.Begin()
	if !c.t.IsZero() {
		t.Fatalf("nil tracer Begin read the clock")
	}
	tr.End(c, SpanEpoch, 0, 0, 0) // must not panic
	if tr.Count() != 0 || tr.Snapshot() != nil {
		t.Fatalf("nil tracer recorded spans")
	}
	// A zero SpanClock handed to an enabled tracer is dropped too (a span
	// begun while tracing was disabled must not record garbage).
	live := NewTracer(4)
	live.End(SpanClock{}, SpanEpoch, 0, 0, 0)
	if live.Count() != 0 {
		t.Fatalf("zero SpanClock recorded a span")
	}
}

func TestTracerRecordsAndWraps(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		c := tr.Begin()
		tr.End(c, SpanLPSolve, int32(i), int64(10*i), 0)
	}
	if tr.Count() != 5 {
		t.Fatalf("count = %d, want 5", tr.Count())
	}
	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("snapshot kept %d spans, want ring size 3", len(spans))
	}
	for i, s := range spans {
		wantLabel := int32(i + 2) // oldest retained is #2
		if s.Label != wantLabel || s.Seq != uint64(i+2) {
			t.Errorf("span %d = label %d seq %d, want label %d seq %d", i, s.Label, s.Seq, wantLabel, i+2)
		}
		if s.Pivots != int64(10*(i+2)) {
			t.Errorf("span %d pivots = %d", i, s.Pivots)
		}
		if s.Dur < 0 || s.Start < 0 {
			t.Errorf("span %d has negative time: start %v dur %v", i, s.Start, s.Dur)
		}
	}
	if got := tr.CountByKind()[SpanLPSolve]; got != 3 {
		t.Errorf("CountByKind = %d, want 3", got)
	}
}

func TestTracerSpanTiming(t *testing.T) {
	tr := NewTracer(8)
	c := tr.Begin()
	time.Sleep(2 * time.Millisecond)
	tr.End(c, SpanStage, 1, 0, 2)
	s := tr.Snapshot()[0]
	if s.Dur < time.Millisecond {
		t.Errorf("span duration %v implausibly short", s.Dur)
	}
	if s.Kind != SpanStage || s.Err != 2 {
		t.Errorf("span = %+v", s)
	}
}

// TestEnabledTracerDoesNotAllocate: even with tracing on, recording a
// span must not allocate (the ring is preallocated); only then can traced
// production runs keep GC pressure flat.
func TestEnabledTracerDoesNotAllocate(t *testing.T) {
	tr := NewTracer(64)
	if avg := testing.AllocsPerRun(1000, func() {
		c := tr.Begin()
		tr.End(c, SpanCandidate, 1, 2, 0)
	}); avg != 0 {
		t.Fatalf("span recording allocates %.1f allocs/op, want 0", avg)
	}
}

// TestSnapshotOrderAroundWraparound pins Snapshot's oldest-first contract
// at the two boundary fills: exactly capacity spans (the ring is full but
// nothing was overwritten — the next write index is 0 again, and a naive
// rotation would split the untouched ring in the wrong place) and
// capacity+1 (the first genuine overwrite).
func TestSnapshotOrderAroundWraparound(t *testing.T) {
	const capacity = 4
	record := func(n int) []Span {
		tr := NewTracer(capacity)
		for i := 0; i < n; i++ {
			tr.End(tr.Begin(), SpanLPSolve, int32(i), 0, 0)
		}
		return tr.Snapshot()
	}

	full := record(capacity)
	if len(full) != capacity {
		t.Fatalf("at exactly capacity: snapshot kept %d spans, want %d", len(full), capacity)
	}
	for i, s := range full {
		if s.Seq != uint64(i) || s.Label != int32(i) {
			t.Fatalf("at exactly capacity: span %d = seq %d label %d, want %d", i, s.Seq, s.Label, i)
		}
	}

	wrapped := record(capacity + 1)
	if len(wrapped) != capacity {
		t.Fatalf("at capacity+1: snapshot kept %d spans, want %d", len(wrapped), capacity)
	}
	for i, s := range wrapped {
		want := uint64(i + 1) // span 0 was overwritten
		if s.Seq != want || s.Label != int32(want) {
			t.Fatalf("at capacity+1: span %d = seq %d label %d, want %d", i, s.Seq, s.Label, want)
		}
	}
}

func TestEndOnTrackAndRunStamping(t *testing.T) {
	tr := NewTracer(8)
	tr.EndOnTrack(tr.Begin(), SpanZoneSolve, 3, 3, 17, 1)
	if got := tr.NextRun(); got != 1 {
		t.Fatalf("NextRun = %d, want 1", got)
	}
	tr.End(tr.Begin(), SpanEpoch, 0, 0, 0)
	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	if s := spans[0]; s.Track != 3 || s.Run != 0 || s.Pivots != 17 || s.Err != 1 {
		t.Errorf("pre-run span = %+v, want track 3 run 0", s)
	}
	if s := spans[1]; s.Track != 0 || s.Run != 1 {
		t.Errorf("post-run span = %+v, want track 0 run 1", s)
	}
	var nilTr *Tracer
	if nilTr.NextRun() != 0 {
		t.Error("nil tracer NextRun != 0")
	}
	if !nilTr.WallStart().IsZero() {
		t.Error("nil tracer WallStart not zero")
	}
}

func TestSpanKindStrings(t *testing.T) {
	for k := SpanKind(0); k < numSpanKinds; k++ {
		if k.String() == "span" {
			t.Errorf("SpanKind %d has no name", k)
		}
	}
}
