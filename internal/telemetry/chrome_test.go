package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// tracedWork records a small but structurally real span set: two runs,
// an epoch containing a zone solve on another track.
func tracedWork(t *testing.T) *Tracer {
	t.Helper()
	tr := NewTracer(16)
	tr.NextRun()
	e := tr.Begin()
	tr.EndOnTrack(tr.Begin(), SpanZoneSolve, 2, 2, 11, 0)
	tr.End(tr.Begin(), SpanLPSolve, 0, 5, 0)
	tr.End(e, SpanEpoch, 0, 0, 0)
	tr.NextRun()
	tr.End(tr.Begin(), SpanEpoch, 1, 0, 0)
	return tr
}

func TestChromeRoundTripAndLint(t *testing.T) {
	tr := tracedWork(t)
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	ct, err := ReadChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := ct.Lint(); err != nil {
		t.Fatalf("fresh export fails its own lint: %v", err)
	}
	if len(ct.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4", len(ct.TraceEvents))
	}
	if ct.DisplayTimeUnit != "ms" || ct.Metadata["tool"] != "tapo" {
		t.Errorf("trace header = %q / %v", ct.DisplayTimeUnit, ct.Metadata)
	}
	zone := ct.TraceEvents[0]
	if zone.Name != "zone-solve" || zone.TID != 2 || zone.PID != 1 || zone.Args.Pivots != 11 {
		t.Errorf("zone event = %+v", zone)
	}
	if last := ct.TraceEvents[3]; last.PID != 2 {
		t.Errorf("second-run event pid = %d, want 2", last.PID)
	}
	// ts is wall-clock µs: the epoch event must land near the tracer's
	// wall start, not near zero.
	wantTS := float64(tr.WallStart().UnixNano()) / 1e3
	if got := ct.TraceEvents[0].TS; got < wantTS || got > wantTS+60e6 {
		t.Errorf("ts = %g, want within a minute after %g", got, wantTS)
	}
	// The zone solve must nest inside its epoch window (the format's
	// containment-as-parentage rule).
	epoch := ct.TraceEvents[2]
	if zone.TS < epoch.TS || zone.TS+zone.Dur > epoch.TS+epoch.Dur {
		t.Errorf("zone [%g,+%g] escapes epoch [%g,+%g]", zone.TS, zone.Dur, epoch.TS, epoch.Dur)
	}
}

func TestWriteChromeNilTracer(t *testing.T) {
	var tr *Tracer
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	ct, err := ReadChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(ct.TraceEvents) != 0 {
		t.Fatalf("nil tracer exported %d events", len(ct.TraceEvents))
	}
	if err := ct.Lint(); err == nil {
		t.Fatal("empty trace passed lint")
	}
}

func TestReadChromeTraceRejectsTrailingData(t *testing.T) {
	if _, err := ReadChromeTrace(strings.NewReader(`{"traceEvents":[]}{"x":1}`)); err == nil {
		t.Fatal("trailing data accepted")
	}
	if _, err := ReadChromeTrace(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestChromeLintRejections(t *testing.T) {
	good := func() *ChromeTrace {
		return ChromeTraceFromSpans([]Span{
			{Kind: SpanEpoch, Start: 0, Dur: time.Millisecond, Seq: 0},
			{Kind: SpanLPSolve, Start: 0, Dur: time.Microsecond, Pivots: 3, Seq: 1},
		}, time.Unix(1000, 0))
	}
	if err := good().Lint(); err != nil {
		t.Fatalf("baseline trace fails lint: %v", err)
	}
	for _, tc := range []struct {
		name    string
		mutate  func(ct *ChromeTrace)
		wantSub string
	}{
		{"wrong phase", func(ct *ChromeTrace) { ct.TraceEvents[0].Ph = "B" }, "phase"},
		{"wrong category", func(ct *ChromeTrace) { ct.TraceEvents[0].Cat = "other" }, "category"},
		{"unknown kind", func(ct *ChromeTrace) { ct.TraceEvents[0].Args.Kind = 99 }, "unknown span kind"},
		{"name mismatch", func(ct *ChromeTrace) { ct.TraceEvents[0].Name = "rung" }, "does not match kind"},
		{"negative ts", func(ct *ChromeTrace) { ct.TraceEvents[0].TS = -1 }, "ts"},
		{"negative dur", func(ct *ChromeTrace) { ct.TraceEvents[0].Dur = -1 }, "dur"},
		{"negative pid", func(ct *ChromeTrace) { ct.TraceEvents[0].PID = -1 }, "pid"},
		{"negative pivots", func(ct *ChromeTrace) { ct.TraceEvents[1].Args.Pivots = -1 }, "pivots"},
		{"seq out of order", func(ct *ChromeTrace) { ct.TraceEvents[1].Args.Seq = 0 }, "not increasing"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ct := good()
			tc.mutate(ct)
			err := ct.Lint()
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("err = %v, want it to mention %q", err, tc.wantSub)
			}
		})
	}
}
