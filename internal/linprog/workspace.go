package linprog

import (
	"thermaldc/internal/linalg"
	"thermaldc/internal/telemetry"
)

// Stats counts the work done by solves that went through one Workspace.
// The counters are cumulative; callers that want per-epoch numbers take a
// snapshot and subtract, or use a draining accessor at a higher layer.
type Stats struct {
	// Solves counts completed Solve* calls (any status).
	Solves int64
	// Pivots counts simplex basis changes across both phases, including
	// anti-cycling restarts and rescaled retries.
	Pivots int64
	// BoundFlips counts ratio-test outcomes where the entering variable
	// ran to its opposite bound without a basis change.
	BoundFlips int64
	// Refreshes counts full reduced-cost recomputations (periodic
	// refreshes, phase starts, and optimality verification sweeps).
	Refreshes int64
	// SweepResumes counts the times the pre-optimality verification sweep
	// found a still-eligible column on the freshly recomputed reduced
	// costs and resumed pivoting — each one is a premature exit avoided.
	SweepResumes int64
	// CandidateRebuilds counts partial-pricing candidate list refills
	// (zero under the default Dantzig pricing).
	CandidateRebuilds int64
	// Factorizations counts basis LU factorizations in the revised core
	// (initial bases, periodic refactorizations, canonical extractions).
	Factorizations int64
	// DualPivots counts dual-simplex basis changes on the warm-start path.
	// Each is also counted in Pivots.
	DualPivots int64
	// WarmAttempts counts solves that found retained warm-start state and
	// tried to use it; WarmHits and WarmRejects partition the outcomes.
	WarmAttempts int64
	// WarmHits counts warm starts that ran to optimality from the retained
	// basis.
	WarmHits int64
	// WarmRejects counts warm starts abandoned for the cold path
	// (signature mismatch, singular retained basis, dual infeasibility, or
	// a stalled dual phase).
	WarmRejects int64
	// AllocBytes counts bytes of backing buffers the workspace had to
	// grow. A warmed-up workspace solving same-shaped problems stays at
	// its high-water mark, so this stops increasing in steady state.
	AllocBytes int64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Solves += o.Solves
	s.Pivots += o.Pivots
	s.BoundFlips += o.BoundFlips
	s.Refreshes += o.Refreshes
	s.SweepResumes += o.SweepResumes
	s.CandidateRebuilds += o.CandidateRebuilds
	s.Factorizations += o.Factorizations
	s.DualPivots += o.DualPivots
	s.WarmAttempts += o.WarmAttempts
	s.WarmHits += o.WarmHits
	s.WarmRejects += o.WarmRejects
	s.AllocBytes += o.AllocBytes
}

// Workspace holds the reusable buffers of repeated Solve calls. Solving
// through a Workspace avoids reallocating the flat tableau every time,
// which matters when one problem skeleton is solved hundreds of times with
// patched coefficients (the CRAC outlet-temperature search) or once per
// controller epoch. Problems of different shapes may share one workspace:
// every buffer is resized (growing only) per solve. The zero value is
// ready to use; a Workspace is NOT safe for concurrent use — give each
// goroutine its own.
type Workspace struct {
	// Stats accumulates solve counters; see Stats.
	Stats Stats

	// Trace, when non-nil, records one telemetry.SpanLPSolve span per
	// guarded solve (wall time, pivot count, terminal status). Leaving it
	// nil keeps solves on the untraced fast path: no clock reads, no span
	// writes, zero allocations.
	Trace *telemetry.Tracer

	a            []float64 // flat row-major tableau, m×stride
	aM, aStride  int       // shape of the last tableau built in a
	extLo, extHi []int32   // per-row nonzero extents
	runs         []int32   // nonzero runs of the scaled pivot row, [start,end) pairs
	nbv          []float64 // nonbasic-value cache used during the build
	lo, hi       []float64
	status       []varStatus
	basis        []int
	xB           []float64
	colBuf       []float64 // entering-column gather buffer
	rhs          []float64
	cost         []float64
	d            []float64
	psign        []float64 // per-column pricing signs (fast Dantzig scan)
	weight       []float64 // devex reference weights
	cand         []int32   // partial-pricing candidate list

	// Solution buffers for the aliasing SolveInto path.
	solX     []float64
	solDuals []float64
	sol      Solution

	st tableauState // embedded so a warm solve allocates no state object

	// Revised-core buffers (MethodRevised solves only). The revised state
	// shares lo/hi/status/basis/xB/rhs/cost/d/psign/weight/cand with the
	// tableau core — the two cores never run concurrently in one
	// workspace — and adds the factorization-side storage below.
	rvColPtr []int32       // CSC column pointers over all columns
	rvColIdx []int32       // CSC row indices
	rvColVal []float64     // CSC values
	rvColCur []int32       // per-column fill cursor during the CSC build
	rvNbv    []float64     // nonbasic value per column (build-time residuals)
	rvRhsEff []float64     // rhs − N·x_N scratch
	rvW      []float64     // FTRAN result / entering column
	rvRho    []float64     // BTRAN result / pivot row multipliers
	rvAlpha  []float64     // pivot row α_rj over all columns
	rvCB     []float64     // basic-cost gather for BTRAN
	rvTmpM   []float64     // length-m scratch (column gather, canonical x_B)
	rvSorted []int         // canonical (ascending) basis ordering
	rvEtaRow []int32       // eta pivot rows
	rvEtaVal []float64     // eta columns, flat k·m slabs
	rvBmat   linalg.Matrix // dense basis matrix for (re)factorization
	rvLU     linalg.LU     // basis factorization, buffers reused across solves
	rv       revisedState  // embedded so a warm solve allocates no state object

	// Warm-start retention (Problem.WarmStart with MethodRevised): the
	// optimal basis of the last retained solve plus a bitwise signature of
	// everything except the right-hand sides. A later solve matching the
	// signature restarts the dual simplex from this basis.
	warmOK     bool
	warmSense  Sense
	warmBasis  []int
	warmStatus []varStatus
	sigCost    []float64
	sigLo      []float64
	sigHi      []float64
	sigCoef    []float64
	sigVar     []int32
	sigRows    []sigRow
}

// sigRow is the per-row part of the warm-start signature: everything about
// a row except its right-hand side(s).
type sigRow struct {
	op      Op
	isRange bool
	rangeLo float64
	nTerms  int32
}

// stash saves the (possibly grown) buffers of a finished solve back into
// the workspace for the next call.
func (ws *Workspace) stash(st *tableauState) {
	ws.a = st.a
	ws.extLo, ws.extHi = st.extLo, st.extHi
	ws.runs = st.runs
	ws.lo, ws.hi = st.lo, st.hi
	ws.status = st.status
	ws.basis = st.basis
	ws.xB = st.xB
	ws.cost = st.cost
	ws.d = st.d
	ws.psign = st.psign
	ws.weight = st.weight
	ws.cand = st.cand
}

// f64 returns a length-n float64 slice backed by buf when capacity allows,
// without clearing the contents; growth is charged to Stats.AllocBytes.
func (ws *Workspace) f64(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	ws.Stats.AllocBytes += int64(8 * n)
	return make([]float64, n)
}

// i32 is f64 for int32 slices.
func (ws *Workspace) i32(buf []int32, n int) []int32 {
	if cap(buf) >= n {
		return buf[:n]
	}
	ws.Stats.AllocBytes += int64(4 * n)
	return make([]int32, n)
}

// ints is f64 for int slices.
func (ws *Workspace) ints(buf []int, n int) []int {
	if cap(buf) >= n {
		return buf[:n]
	}
	ws.Stats.AllocBytes += int64(8 * n)
	return make([]int, n)
}

// f64buf returns a length-n float64 slice backed by buf when capacity
// allows, without clearing the contents.
func f64buf(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}
