//go:build !amd64

package linprog

// axpyNeg subtracts f times x from y elementwise: y[i] -= f*x[i].
func axpyNeg(f float64, x, y []float64) {
	axpyNegGeneric(f, x, y)
}
