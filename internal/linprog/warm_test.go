package linprog

import (
	"math"
	"math/rand"
	"testing"
)

// TestAxpyNegMatchesGeneric pins the AVX2 kernel (when present) to the
// scalar loop bit-for-bit across every tail length, including the odd
// remainders that exercise the VEX-encoded scalar tail.
func TestAxpyNegMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for n := 0; n <= 67; n++ {
		x := make([]float64, n)
		y1 := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(9)-4))
			if rng.Intn(5) == 0 {
				x[i] = 0
			}
			y1[i] = rng.NormFloat64()
		}
		y2 := append([]float64(nil), y1...)
		f := rng.NormFloat64()
		axpyNeg(f, x, y1)
		axpyNegGeneric(f, x, y2)
		for i := range y1 {
			if math.Float64bits(y1[i]) != math.Float64bits(y2[i]) {
				t.Fatalf("n=%d i=%d: axpyNeg %x, generic %x", n, i,
					math.Float64bits(y1[i]), math.Float64bits(y2[i]))
			}
		}
	}
}

// smallLP is a 3-row, 3-var bounded LP with only slack rows (no
// artificials): max 3x+2y+z s.t. x+y ≤ 4, y+z ≤ 3, x+z ≤ 5, vars in [0,3].
func smallLP() *Problem {
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, 3, 3)
	y := p.AddVar("y", 0, 3, 2)
	z := p.AddVar("z", 0, 3, 1)
	p.AddRow(LE, 4, Term{x, 1}, Term{y, 1})
	p.AddRow(LE, 3, Term{y, 1}, Term{z, 1})
	p.AddRow(LE, 5, Term{x, 1}, Term{z, 1})
	return p
}

// bigLP is a larger LP of a different shape with GE rows, so solving it
// forces artificial variables and a Phase-1/Phase-2 run.
func bigLP() *Problem {
	p := NewProblem(Minimize)
	rng := rand.New(rand.NewSource(7))
	const nv, nr = 23, 11
	vars := make([]int, nv)
	for j := range vars {
		vars[j] = p.AddVar("", 0, 10, 1+rng.Float64())
	}
	for r := 0; r < nr; r++ {
		terms := make([]Term, 0, 6)
		for k := 0; k < 6; k++ {
			terms = append(terms, Term{vars[(r*5+k*3)%nv], 0.5 + rng.Float64()})
		}
		if r%2 == 0 {
			p.AddRow(GE, 2+rng.Float64(), terms...)
		} else {
			p.AddRow(LE, 20+rng.Float64(), terms...)
		}
	}
	return p
}

func solutionBitsEqual(t *testing.T, tag string, got, want *Solution) {
	t.Helper()
	if got.Status != want.Status {
		t.Fatalf("%s: status %v, want %v", tag, got.Status, want.Status)
	}
	if math.Float64bits(got.Objective) != math.Float64bits(want.Objective) {
		t.Fatalf("%s: objective %v != %v", tag, got.Objective, want.Objective)
	}
	for j := 0; j < len(want.x); j++ {
		if math.Float64bits(got.Value(j)) != math.Float64bits(want.Value(j)) {
			t.Fatalf("%s: x[%d] = %v, want %v", tag, j, got.Value(j), want.Value(j))
		}
	}
}

// TestWorkspaceCrossShapeReuse alternates two LPs of different shapes (one
// slack-only, one with artificials) through a single Workspace and checks
// every solve is bit-identical to a fresh-workspace solve: stale tableau
// contents, extents, pricing signs, and devex state from the other shape
// must never leak into a solve.
func TestWorkspaceCrossShapeReuse(t *testing.T) {
	pa, pb := smallLP(), bigLP()
	refA, err := pa.Solve()
	if err != nil {
		t.Fatal(err)
	}
	refB, err := pb.Solve()
	if err != nil {
		t.Fatal(err)
	}
	ws := &Workspace{}
	for round := 0; round < 3; round++ {
		got, err := pa.SolveWith(ws)
		if err != nil {
			t.Fatalf("round %d small: %v", round, err)
		}
		solutionBitsEqual(t, "small", got, refA)
		got, err = pb.SolveWith(ws)
		if err != nil {
			t.Fatalf("round %d big: %v", round, err)
		}
		solutionBitsEqual(t, "big", got, refB)
	}
	if ws.Stats.Solves != 6 {
		t.Fatalf("Stats.Solves = %d, want 6", ws.Stats.Solves)
	}
}

// TestWarmSolveIntoZeroAllocs checks the epoch hot path: once a Workspace
// has solved a shape, re-solves through SolveInto — including RHS patches,
// as the temperature search does — allocate nothing.
func TestWarmSolveIntoZeroAllocs(t *testing.T) {
	p := smallLP()
	ws := &Workspace{}
	if _, err := p.SolveInto(nil, ws); err != nil {
		t.Fatal(err)
	}
	rhs := []float64{4, 3.5}
	i := 0
	allocs := testing.AllocsPerRun(50, func() {
		p.SetRHS(0, rhs[i%2])
		i++
		sol, err := p.SolveInto(nil, ws)
		if err != nil || sol.Status != Optimal {
			t.Fatalf("warm solve: %v (%v)", err, sol.Status)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm SolveInto allocates %.1f objects/op, want 0", allocs)
	}
}

// TestVerificationSweepResumesOnStaleD is the regression test for the
// premature-optimality bug: a reduced-cost row that went stale (here,
// zeroed by hand mid-solve) makes pricing report "no eligible column", and
// iterate must NOT declare optimality — the verification sweep has to
// recompute d, find the real entering column, and resume pivoting to the
// true optimum.
func TestVerificationSweepResumesOnStaleD(t *testing.T) {
	p := smallLP()
	want, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}

	ws := &Workspace{}
	st := p.newState(ws)
	st.setPhase2Costs(p)
	if st.nArt != 0 {
		t.Fatalf("fixture grew %d artificials; the test assumes a slack basis", st.nArt)
	}
	// Corrupt the reduced costs: every column now looks priced-out even
	// though the slack basis is far from optimal.
	for j := range st.d {
		st.d[j] = 0
	}
	st.dFresh = false
	status := st.iterate()
	if status != Optimal {
		t.Fatalf("iterate = %v, want Optimal", status)
	}
	if st.stats.SweepResumes < 1 {
		t.Fatalf("SweepResumes = %d, want ≥ 1 (optimality declared off the stale d row)", st.stats.SweepResumes)
	}
	sol, err := p.finish(st, status, ws, false)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-want.Objective) > 1e-9 {
		t.Fatalf("objective after sweep resume %v, want %v", sol.Objective, want.Objective)
	}
}

// TestDevexMatchesDantzigObjective checks candidate-list partial pricing
// reaches the same optimal value as the full Dantzig scan on a spread of
// random bounded LPs (vertices may differ — objectives may not).
func TestDevexMatchesDantzigObjective(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		nv := 5 + rng.Intn(40)
		nr := 3 + rng.Intn(20)
		build := func() *Problem {
			g := rand.New(rand.NewSource(int64(1000 + trial)))
			p := NewProblem(Maximize)
			for j := 0; j < nv; j++ {
				p.AddVar("", 0, 1+4*g.Float64(), g.NormFloat64())
			}
			for r := 0; r < nr; r++ {
				terms := make([]Term, 0, 5)
				for k := 0; k < 5; k++ {
					terms = append(terms, Term{g.Intn(nv), g.Float64()})
				}
				p.AddRow(LE, 1+5*g.Float64(), terms...)
			}
			return p
		}
		pd := build()
		sd, err := pd.Solve()
		if err != nil {
			t.Fatalf("trial %d dantzig: %v", trial, err)
		}
		pv := build()
		pv.Pricing = PricingDevex
		ws := &Workspace{}
		sv, err := pv.SolveWith(ws)
		if err != nil {
			t.Fatalf("trial %d devex: %v", trial, err)
		}
		tol := 1e-8 * (1 + math.Abs(sd.Objective))
		if math.Abs(sv.Objective-sd.Objective) > tol {
			t.Fatalf("trial %d: devex objective %v, dantzig %v", trial, sv.Objective, sd.Objective)
		}
	}
}
