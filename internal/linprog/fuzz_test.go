package linprog

import (
	"math"
	"testing"
)

// FuzzKnapsackLP cross-checks the simplex against the greedy fractional-
// knapsack optimum on adversarial inputs. The seed corpus runs under
// plain `go test`; `go test -fuzz=FuzzKnapsackLP` explores further.
func FuzzKnapsackLP(f *testing.F) {
	f.Add(int64(1), uint8(3), 5.0)
	f.Add(int64(99), uint8(12), 0.001)
	f.Add(int64(-7), uint8(1), 100.0)
	f.Fuzz(func(t *testing.T, seed int64, nRaw uint8, budget float64) {
		if math.IsNaN(budget) || math.IsInf(budget, 0) || budget < 0 || budget > 1e6 {
			t.Skip()
		}
		n := int(nRaw)%15 + 1
		rng := newSplitMix(seed)
		c := make([]float64, n)
		u := make([]float64, n)
		p := NewProblem(Maximize)
		terms := make([]Term, n)
		for i := 0; i < n; i++ {
			c[i] = math.Round(rng.next()*1000) / 100
			u[i] = math.Round(rng.next()*500)/100 + 0.01
			v := p.AddVar("", 0, u[i], c[i])
			terms[i] = Term{v, 1}
		}
		p.AddRow(LE, budget, terms...)
		sol, err := p.Solve()
		if err != nil {
			t.Fatalf("solver failed on feasible knapsack: %v", err)
		}
		want := greedyKnapsackOpt(c, u, budget)
		if math.Abs(sol.Objective-want) > 1e-6*(1+want) {
			t.Fatalf("objective %g, greedy %g (n=%d budget=%g)", sol.Objective, want, n, budget)
		}
	})
}

// splitMix is a tiny deterministic PRNG so fuzz inputs fully determine the
// instance without math/rand's global state.
type splitMix struct{ s uint64 }

func newSplitMix(seed int64) *splitMix { return &splitMix{uint64(seed)*2654435769 + 1} }

func (r *splitMix) next() float64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z%1_000_000) / 1_000_000
}
