package linprog

import (
	"context"
	"fmt"
	"math"
	"sort"

	"thermaldc/internal/linalg"
)

const (
	// refactorEvery bounds the eta file: after this many basis changes the
	// basis matrix is refactorized from scratch and the etas discarded,
	// trading one O(m³) factorization for shorter FTRAN/BTRAN chains and a
	// fresh numerical footing.
	refactorEvery = 64
	// dualFeasTol is the reduced-cost slack a retained basis may show and
	// still be accepted as dual-feasible by the warm-start path. Wider than
	// tolReduced because the retained basis is refactorized from scratch,
	// so its reduced costs carry one fresh round of factorization noise.
	dualFeasTol = 1e-7
)

// revisedState is the mutable state of one MethodRevised solve.
//
// Where the tableau core updates an m×n dense tableau per pivot, the
// revised core keeps the problem columns static in CSC form and represents
// B⁻¹ implicitly: an LU factorization of a reference basis plus a
// product-form eta file of the pivots since. FTRAN (B⁻¹·v) is an LU solve
// followed by the etas oldest-first; BTRAN (B⁻ᵀ·v) applies the eta
// transposes newest-first and finishes with an LU transpose solve. The
// reduced-cost row d, the pricing machinery (Dantzig scan / devex candidate
// lists), the ratio test, and the degeneracy/Bland discipline all mirror
// the tableau core so the two agree on status and objective; the pivot
// SEQUENCE may differ (α columns carry factorization round-off instead of
// tableau round-off), which is why the revised core is opt-in and the
// tableau core keeps the goldens.
type revisedState struct {
	m, n    int // rows, total columns (structural + slack + artificial)
	nStruct int
	nCols   int // structural + slack; artificials start here
	nArt    int

	// Problem columns in compressed sparse column form, including slack
	// and artificial unit columns. Static for the whole solve.
	colPtr []int32
	colIdx []int32
	colVal []float64

	rhs     []float64
	lo, hi  []float64
	status  []varStatus
	basis   []int
	xB      []float64
	cost    []float64
	d       []float64
	psign   []float64
	hasFree bool
	nbv     []float64 // build-time nonbasic values (residual scans)

	lu   *linalg.LU     // factorization of the reference basis B₀
	bmat *linalg.Matrix // dense scratch the basis is assembled into

	// Product-form eta file: eta k replaced basis position etaRow[k] with
	// the column whose FTRAN image is etaVal[k·m : (k+1)·m].
	etaRow []int32
	etaVal []float64
	nEta   int

	w      []float64 // FTRAN image of the entering column
	rho    []float64 // BTRAN image (row of B⁻ᵀ, or y)
	cb     []float64 // basic-cost gather
	rhsEff []float64 // rhs − N·x_N scratch
	tmpm   []float64 // column gather / canonical-x_B scratch
	alpha  []float64 // pivot row α_rj over all columns

	pricing   Pricing
	weight    []float64
	cand      []int32
	candN     int
	candStart int

	iters, maxIter     int
	bland, forceBland  bool
	degen, maxDegenRun int
	dFresh             bool

	ctx   context.Context
	stats *Stats
}

// solveOnceRevised is solveOnce for MethodRevised: an optional dual-simplex
// warm start from the workspace's retained basis, then the cold two-phase
// primal revised simplex. A rejected warm start falls back to the cold path
// and, if that also fails, marks the error with ErrWarmStartRejected.
func (p *Problem) solveOnceRevised(ctx context.Context, ws *Workspace, forceBland, reuse bool) (*Solution, bool, error) {
	warmRejected := false
	if !forceBland && p.WarmStart && ws.warmOK {
		ws.Stats.WarmAttempts++
		if sol, err, ok := p.tryWarmRevised(ctx, ws, reuse); ok {
			ws.Stats.WarmHits++
			return sol, false, err
		}
		ws.Stats.WarmRejects++
		warmRejected = true
		if ctx != nil {
			if cerr := ctx.Err(); cerr != nil {
				return &Solution{Status: Canceled}, false, &StatusError{Status: Canceled, cause: cerr}
			}
		}
	}

	rv, ok := p.newRevisedState(ws)
	if !ok {
		ws.stashRevised(rv)
		sol := &Solution{Status: IterLimit}
		return markWarmReject(sol, false, &StatusError{Status: IterLimit, cause: ErrNumerical}, warmRejected)
	}
	rv.ctx = ctx
	if forceBland {
		rv.bland, rv.forceBland = true, true
	}
	defer ws.stashRevised(rv)

	// Phase 1: minimize the sum of artificial variables.
	if rv.nArt > 0 {
		rv.setPhase1Costs()
		status := rv.iterate()
		if status != Optimal {
			sol, err := p.finishRevised(rv, status, ws, reuse)
			return markWarmReject(sol, rv.stalled(), err, warmRejected)
		}
		if rv.phase1Objective() > 1e-6 {
			sol, err := p.finishRevised(rv, Infeasible, ws, reuse)
			return markWarmReject(sol, rv.stalled(), err, warmRejected)
		}
		if !rv.evictArtificials() {
			sol, err := p.finishRevised(rv, IterLimit, ws, reuse)
			return markWarmReject(sol, rv.stalled(), err, warmRejected)
		}
	}

	// Phase 2: the real objective.
	rv.setPhase2Costs(p)
	status := rv.iterate()
	sol, err := p.finishRevised(rv, status, ws, reuse)
	if err == nil && p.WarmStart {
		p.saveWarm(ws, rv)
	}
	return markWarmReject(sol, rv.stalled(), err, warmRejected)
}

// markWarmReject chains ErrWarmStartRejected into a failed solve that ran
// cold because its warm start was rejected, so ladder telemetry can
// distinguish "failed after a rejected warm start" from a plain failure.
func markWarmReject(sol *Solution, stalled bool, err error, rejected bool) (*Solution, bool, error) {
	if err != nil && rejected {
		if serr, ok := err.(*StatusError); ok {
			if serr.cause == nil {
				serr.cause = ErrWarmStartRejected
			} else {
				serr.cause = fmt.Errorf("%w (%w)", serr.cause, ErrWarmStartRejected)
			}
		}
	}
	return sol, stalled, err
}

func (rv *revisedState) stalled() bool {
	return rv.maxDegenRun > rv.m+16
}

// stashRevised saves the (possibly grown) buffers of a finished revised
// solve back into the workspace for the next call.
func (ws *Workspace) stashRevised(rv *revisedState) {
	ws.lo, ws.hi = rv.lo, rv.hi
	ws.status = rv.status
	ws.basis = rv.basis
	ws.xB = rv.xB
	ws.rhs = rv.rhs
	ws.cost = rv.cost
	ws.d = rv.d
	ws.psign = rv.psign
	ws.weight = rv.weight
	ws.cand = rv.cand
	ws.rvColPtr, ws.rvColIdx, ws.rvColVal = rv.colPtr, rv.colIdx, rv.colVal
	ws.rvNbv = rv.nbv
	ws.rvRhsEff = rv.rhsEff
	ws.rvW, ws.rvRho, ws.rvCB, ws.rvTmpM = rv.w, rv.rho, rv.cb, rv.tmpm
	ws.rvAlpha = rv.alpha
	ws.rvEtaRow, ws.rvEtaVal = rv.etaRow, rv.etaVal
}

// buildRevisedBase assembles the parts shared by cold and warm builds:
// bounds, statuses, right-hand sides, and the CSC columns for structural
// and slack variables (artificials, cold-path only, are appended later).
func (p *Problem) buildRevisedBase(ws *Workspace) *revisedState {
	m := len(p.rows)
	nStruct := len(p.cost)
	nCols := nStruct + m

	rv := &ws.rv
	*rv = revisedState{
		m:       m,
		nStruct: nStruct,
		nCols:   nCols,
		pricing: p.Pricing,
		stats:   &ws.Stats,
		lu:      &ws.rvLU,
		bmat:    &ws.rvBmat,
	}

	rv.lo = append(ws.lo[:0], p.lo...)
	rv.hi = append(ws.hi[:0], p.hi...)
	for _, r := range p.rows {
		slo, shi := slackBounds(r)
		rv.lo = append(rv.lo, slo)
		rv.hi = append(rv.hi, shi)
	}

	if cap(ws.status) >= nCols {
		rv.status = ws.status[:nCols]
	} else {
		rv.status = make([]varStatus, nCols, nCols+m)
		ws.Stats.AllocBytes += int64(nCols + m)
	}
	for j := 0; j < nCols; j++ {
		rv.status[j] = initialStatus(rv.lo[j], rv.hi[j])
	}

	rv.nbv = ws.f64(ws.rvNbv, nCols)
	ws.rvNbv = rv.nbv
	for j := 0; j < nCols; j++ {
		rv.nbv[j] = nonbasicValue(rv.status[j], rv.lo[j], rv.hi[j])
	}

	rv.rhs = ws.f64(ws.rhs, m)
	ws.rhs = rv.rhs
	for i, r := range p.rows {
		rv.rhs[i] = r.rhs
	}

	// CSC build for structural + slack columns: count, prefix-sum, fill.
	nnz := m // one unit entry per slack
	for _, r := range p.rows {
		nnz += len(r.terms)
	}
	colPtr := ws.i32(ws.rvColPtr, nCols+1)
	colIdx := ws.i32(ws.rvColIdx, nnz)
	colVal := ws.f64(ws.rvColVal, nnz)
	for j := range colPtr {
		colPtr[j] = 0
	}
	for _, r := range p.rows {
		for _, t := range r.terms {
			colPtr[t.Var+1]++
		}
	}
	for i := 0; i < m; i++ {
		colPtr[nStruct+i+1] = 1
	}
	for j := 1; j <= nCols; j++ {
		colPtr[j] += colPtr[j-1]
	}
	cur := ws.i32(ws.rvColCur, nStruct)
	ws.rvColCur = cur
	copy(cur, colPtr[:nStruct])
	for i, r := range p.rows {
		for _, t := range r.terms {
			k := cur[t.Var]
			cur[t.Var]++
			colIdx[k] = int32(i)
			colVal[k] = t.Coef
		}
		k := colPtr[nStruct+i]
		colIdx[k] = int32(i)
		colVal[k] = 1
	}
	rv.colPtr, rv.colIdx, rv.colVal = colPtr, colIdx, colVal

	if cap(ws.basis) >= m {
		rv.basis = ws.basis[:m]
	} else {
		rv.basis = make([]int, m)
	}
	rv.xB = ws.f64(ws.xB, m)
	ws.xB = rv.xB
	rv.w = ws.f64(ws.rvW, m)
	ws.rvW = rv.w
	rv.rho = ws.f64(ws.rvRho, m)
	ws.rvRho = rv.rho
	rv.cb = ws.f64(ws.rvCB, m)
	ws.rvCB = rv.cb
	rv.tmpm = ws.f64(ws.rvTmpM, m)
	ws.rvTmpM = rv.tmpm
	rv.rhsEff = ws.f64(ws.rvRhsEff, m)
	ws.rvRhsEff = rv.rhsEff
	rv.etaRow = ws.i32(ws.rvEtaRow, refactorEvery)
	ws.rvEtaRow = rv.etaRow
	rv.etaVal = ws.f64(ws.rvEtaVal, refactorEvery*m)
	ws.rvEtaVal = rv.etaVal

	rv.cost = ws.cost
	rv.d = ws.d
	rv.psign = ws.psign
	return rv
}

// finishRevisedSetup sizes the buffers that depend on the final column
// count n and the iteration budget. Shared by the cold and warm builds.
func (rv *revisedState) finishSetup(p *Problem, ws *Workspace) {
	rv.alpha = ws.f64(ws.rvAlpha, rv.n)
	ws.rvAlpha = rv.alpha
	if rv.pricing == PricingDevex {
		rv.weight = ws.f64(ws.weight, rv.n)
		ws.weight = rv.weight
		rv.cand = ws.i32(ws.cand, devexListSize(rv.n))
		ws.cand = rv.cand
	}
	rv.maxIter = p.MaxIter
	if rv.maxIter == 0 {
		rv.maxIter = 200*(rv.m+rv.n) + 2000
	}
}

// newRevisedState builds the cold-start state: the initial basis is one
// slack or artificial per row, exactly as the tableau core chooses it, so
// the two cores start from the same vertex. Unlike the tableau build, rows
// are never sign-flipped: an artificial for a negative residual simply
// carries coefficient −1.
func (p *Problem) newRevisedState(ws *Workspace) (*revisedState, bool) {
	rv := p.buildRevisedBase(ws)
	nStruct, nCols := rv.nStruct, rv.nCols

	for i, r := range p.rows {
		res := r.rhs
		for _, tm := range r.terms {
			res -= tm.Coef * rv.nbv[tm.Var]
		}
		slack := nStruct + i
		if res >= rv.lo[slack]-tolFeas && res <= rv.hi[slack]+tolFeas {
			rv.basis[i] = slack
			rv.xB[i] = clamp(res, rv.lo[slack], rv.hi[slack])
			rv.status[slack] = basic
			continue
		}
		sigma := 1.0
		if res < 0 {
			sigma = -1
		}
		art := nCols + rv.nArt
		rv.lo = append(rv.lo, 0)
		rv.hi = append(rv.hi, Inf)
		rv.status = append(rv.status, basic)
		rv.colIdx = append(rv.colIdx, int32(i))
		rv.colVal = append(rv.colVal, sigma)
		rv.colPtr = append(rv.colPtr, int32(len(rv.colIdx)))
		rv.basis[i] = art
		rv.xB[i] = sigma * res // = |res| ≥ 0
		rv.nArt++
	}
	rv.n = nCols + rv.nArt
	rv.finishSetup(p, ws)
	return rv, rv.refactor()
}

// newRevisedWarmState builds the state for a dual-simplex warm start: no
// artificials, basis and statuses restored from the workspace retention.
// Returns ok=false when the retained basis fails to factorize.
func (p *Problem) newRevisedWarmState(ws *Workspace) (*revisedState, bool) {
	rv := p.buildRevisedBase(ws)
	rv.n = rv.nCols
	copy(rv.basis, ws.warmBasis)
	copy(rv.status[:rv.nCols], ws.warmStatus)
	rv.finishSetup(p, ws)
	return rv, rv.refactor()
}

// columnInto scatters column j of the constraint matrix into the dense
// length-m vector dst (cleared first).
func (rv *revisedState) columnInto(dst []float64, j int) {
	clear(dst)
	for k := rv.colPtr[j]; k < rv.colPtr[j+1]; k++ {
		dst[rv.colIdx[k]] += rv.colVal[k]
	}
}

// colDot returns v · a_j over column j's sparse entries.
func (rv *revisedState) colDot(j int, v []float64) float64 {
	s := 0.0
	for k := rv.colPtr[j]; k < rv.colPtr[j+1]; k++ {
		s += rv.colVal[k] * v[rv.colIdx[k]]
	}
	return s
}

// refactor rebuilds the basis matrix from rv.basis, factorizes it, and
// clears the eta file. Returns false on a (numerically) singular basis.
func (rv *revisedState) refactor() bool {
	return rv.refactorFrom(rv.basis)
}

// refactorFrom is refactor with an explicit basis column ordering (the
// canonical extraction uses the ascending order).
func (rv *revisedState) refactorFrom(cols []int) bool {
	m := rv.m
	if cap(rv.bmat.Data) >= m*m {
		rv.bmat.Data = rv.bmat.Data[:m*m]
	} else {
		rv.bmat.Data = make([]float64, m*m)
		rv.stats.AllocBytes += int64(8 * m * m)
	}
	rv.bmat.Rows, rv.bmat.Cols = m, m
	clear(rv.bmat.Data)
	for k, j := range cols {
		for e := rv.colPtr[j]; e < rv.colPtr[j+1]; e++ {
			rv.bmat.Data[int(rv.colIdx[e])*m+k] += rv.colVal[e]
		}
	}
	if rv.lu.Factor(rv.bmat) != nil {
		return false
	}
	rv.nEta = 0
	rv.stats.Factorizations++
	return true
}

// applyEtas applies the eta file to x in place, oldest first: x ← E_K⁻¹ ···
// E_1⁻¹ x, completing an FTRAN started by the LU solve.
func (rv *revisedState) applyEtas(x []float64) {
	m := rv.m
	for k := 0; k < rv.nEta; k++ {
		r := int(rv.etaRow[k])
		ev := rv.etaVal[k*m : (k+1)*m]
		t := x[r] / ev[r]
		if t != 0 {
			for i, e := range ev {
				if e != 0 {
					x[i] -= e * t
				}
			}
		}
		x[r] = t
	}
}

// applyEtasT applies the transposed eta file to y in place, newest first:
// y ← E_1⁻ᵀ ··· E_K⁻ᵀ y, preparing a BTRAN for the LU transpose solve.
// Each transposed eta only changes component r.
func (rv *revisedState) applyEtasT(y []float64) {
	m := rv.m
	for k := rv.nEta - 1; k >= 0; k-- {
		r := int(rv.etaRow[k])
		ev := rv.etaVal[k*m : (k+1)*m]
		s := 0.0
		for i, e := range ev {
			if e != 0 && i != r {
				s += e * y[i]
			}
		}
		y[r] = (y[r] - s) / ev[r]
	}
}

// ftranColumn computes w = B⁻¹·a_j into rv.w. Returns false on a solve
// failure (cannot happen after a successful factorization, but the revised
// core degrades instead of panicking).
func (rv *revisedState) ftranColumn(j int) bool {
	rv.columnInto(rv.tmpm, j)
	if rv.lu.SolveInto(rv.w, rv.tmpm) != nil {
		return false
	}
	rv.applyEtas(rv.w)
	return true
}

// btranUnit computes rho = B⁻ᵀ·e_r into rv.rho: row r of B⁻¹, the pivot
// row multipliers.
func (rv *revisedState) btranUnit(r int) bool {
	clear(rv.tmpm)
	rv.tmpm[r] = 1
	rv.applyEtasT(rv.tmpm)
	return rv.lu.SolveTransposeInto(rv.rho, rv.tmpm) == nil
}

// btranInto computes dst = B⁻ᵀ·v (dst may alias v).
func (rv *revisedState) btranInto(dst, v []float64) bool {
	if &dst[0] != &v[0] {
		copy(dst, v)
	}
	rv.applyEtasT(dst)
	return rv.lu.SolveTransposeInto(dst, dst) == nil
}

// computeXB solves B·x_B = rhs − N·x_N for the basic values.
func (rv *revisedState) computeXB() bool {
	copy(rv.rhsEff, rv.rhs)
	for j := 0; j < rv.n; j++ {
		if rv.status[j] == basic {
			continue
		}
		v := nonbasicValue(rv.status[j], rv.lo[j], rv.hi[j])
		if v == 0 {
			continue
		}
		for k := rv.colPtr[j]; k < rv.colPtr[j+1]; k++ {
			rv.rhsEff[rv.colIdx[k]] -= rv.colVal[k] * v
		}
	}
	if rv.lu.SolveInto(rv.xB, rv.rhsEff) != nil {
		return false
	}
	rv.applyEtas(rv.xB)
	return true
}

func (rv *revisedState) setPhase1Costs() {
	rv.cost = f64buf(rv.cost, rv.n)
	for j := range rv.cost {
		rv.cost[j] = 0
	}
	for j := rv.n - rv.nArt; j < rv.n; j++ {
		rv.cost[j] = 1
	}
	rv.recomputeReducedCosts()
	rv.initPricingSigns()
	rv.resetPricing()
}

func (rv *revisedState) setPhase2Costs(p *Problem) {
	rv.cost = f64buf(rv.cost, rv.n)
	for j := range rv.cost {
		rv.cost[j] = 0
	}
	sign := 1.0
	if p.sense == Maximize {
		sign = -1 // internally always minimize
	}
	for j := 0; j < rv.nStruct; j++ {
		rv.cost[j] = sign * p.cost[j]
	}
	// Artificials must never re-enter: pin them to 0.
	for j := rv.n - rv.nArt; j < rv.n; j++ {
		rv.lo[j], rv.hi[j] = 0, 0
		if rv.status[j] != basic {
			rv.status[j] = atLower
		}
	}
	rv.recomputeReducedCosts()
	rv.initPricingSigns()
	rv.resetPricing()
}

func (rv *revisedState) phase1Objective() float64 {
	sum := 0.0
	for i, b := range rv.basis {
		if b >= rv.n-rv.nArt {
			sum += rv.xB[i]
		}
	}
	return sum
}

// recomputeReducedCosts rebuilds d from the factorization: y = B⁻ᵀ·c_B,
// then d_j = c_j − y·a_j for every nonbasic column (basic columns are
// exactly 0 by definition).
func (rv *revisedState) recomputeReducedCosts() {
	for i := 0; i < rv.m; i++ {
		rv.cb[i] = rv.cost[rv.basis[i]]
	}
	rv.btranInto(rv.rho, rv.cb)
	rv.d = f64buf(rv.d, rv.n)
	for j := 0; j < rv.n; j++ {
		if rv.status[j] == basic {
			rv.d[j] = 0
			continue
		}
		rv.d[j] = rv.cost[j] - rv.colDot(j, rv.rho)
	}
	rv.dFresh = true
	rv.stats.Refreshes++
}

// initPricingSigns mirrors the tableau core's fast-Dantzig sign setup.
func (rv *revisedState) initPricingSigns() {
	rv.psign = f64buf(rv.psign, rv.n)
	rv.hasFree = false
	for j := 0; j < rv.n; j++ {
		rv.psign[j] = pricingSign(rv.status[j], rv.lo[j], rv.hi[j])
		if rv.status[j] == freeZero && rv.lo[j] != rv.hi[j] {
			rv.hasFree = true
		}
	}
}

func (rv *revisedState) resetPricing() {
	if rv.pricing != PricingDevex {
		return
	}
	for j := range rv.weight {
		rv.weight[j] = 1
	}
	rv.candN, rv.candStart = 0, 0
}

// iterate runs primal revised-simplex pivots until optimality,
// unboundedness, the iteration budget, or cancellation, under the same
// refresh / verification-sweep / degeneracy discipline as the tableau core.
func (rv *revisedState) iterate() Status {
	sinceRefresh := 0
	sinceCtx := 0
	for ; rv.iters < rv.maxIter; rv.iters++ {
		if rv.ctx != nil {
			if sinceCtx++; sinceCtx >= ctxCheckEvery {
				sinceCtx = 0
				if rv.ctx.Err() != nil {
					return Canceled
				}
			}
		}
		if sinceRefresh >= refreshEvery {
			rv.recomputeReducedCosts()
			sinceRefresh = 0
		}
		enter, dir := rv.chooseEntering()
		if enter < 0 {
			if rv.dFresh {
				return Optimal
			}
			// Verification sweep: full refresh, then re-price everything.
			rv.recomputeReducedCosts()
			sinceRefresh = 0
			rv.candN = 0
			enter, dir = rv.chooseEntering()
			if enter < 0 {
				return Optimal
			}
			rv.stats.SweepResumes++
		}
		if !rv.ftranColumn(enter) {
			return IterLimit
		}
		flip, leaveRow, theta := rv.ratioTest(enter, dir)
		if math.IsInf(theta, 1) {
			return Unbounded
		}
		if theta <= tolFeas {
			rv.degen++
			if rv.degen > rv.maxDegenRun {
				rv.maxDegenRun = rv.degen
			}
			if rv.degen > 2*(rv.m+64) {
				rv.bland = true
			}
		} else {
			rv.degen = 0
			if rv.bland && !rv.forceBland {
				rv.bland = false
			}
		}
		if flip {
			for i, v := range rv.w {
				if v != 0 {
					rv.xB[i] -= dir * theta * v
				}
			}
			if rv.status[enter] == atLower {
				rv.status[enter] = atUpper
			} else {
				rv.status[enter] = atLower
			}
			rv.psign[enter] = pricingSign(rv.status[enter], rv.lo[enter], rv.hi[enter])
			rv.stats.BoundFlips++
			sinceRefresh++
			continue
		}
		entVal := nonbasicValue(rv.status[enter], rv.lo[enter], rv.hi[enter]) + dir*theta
		rv.updateBasics(dir, theta)
		if !rv.pivot(leaveRow, enter, entVal) {
			return IterLimit
		}
		sinceRefresh++
	}
	return IterLimit
}

func (rv *revisedState) chooseEntering() (int, float64) {
	if rv.pricing == PricingDevex && !rv.bland {
		return rv.chooseEnteringDevex()
	}
	return rv.chooseEnteringDantzig()
}

func (rv *revisedState) chooseEnteringDantzig() (int, float64) {
	if rv.hasFree {
		return rv.chooseEnteringClassify()
	}
	d := rv.d[:rv.n]
	ps := rv.psign[:rv.n]
	ps = ps[:len(d)]
	if rv.bland {
		for j, dj := range d {
			if ps[j]*dj > tolReduced {
				return j, -ps[j]
			}
		}
		return -1, 0
	}
	best, bestScore := -1, tolReduced
	for j, dj := range d {
		if s := ps[j] * dj; s > bestScore {
			best, bestScore = j, s
		}
	}
	if best < 0 {
		return -1, 0
	}
	return best, -ps[best]
}

func (rv *revisedState) chooseEnteringClassify() (int, float64) {
	best, bestScore, bestDir := -1, tolReduced, 0.0
	for j := 0; j < rv.n; j++ {
		score, dir := rv.scoreAt(j)
		if score <= tolReduced {
			continue
		}
		if rv.bland {
			return j, dir
		}
		if score > bestScore {
			best, bestScore, bestDir = j, score, dir
		}
	}
	return best, bestDir
}

func (rv *revisedState) scoreAt(j int) (score, dir float64) {
	if rv.status[j] == basic || rv.lo[j] == rv.hi[j] {
		return 0, 0
	}
	dj := rv.d[j]
	switch rv.status[j] {
	case atLower:
		return -dj, 1
	case atUpper:
		return dj, -1
	default: // freeZero
		if dj < 0 {
			return -dj, 1
		}
		return dj, -1
	}
}

func (rv *revisedState) chooseEnteringDevex() (int, float64) {
	for pass := 0; pass < 2; pass++ {
		best, bestDir, bestVal := -1, 0.0, 0.0
		cand := rv.cand[:rv.candN]
		w := 0
		for _, j32 := range cand {
			j := int(j32)
			score, dir := rv.scoreAt(j)
			if score <= tolReduced {
				continue
			}
			cand[w] = j32
			w++
			if val := score * score / rv.weight[j]; val > bestVal {
				best, bestDir, bestVal = j, dir, val
			}
		}
		rv.candN = w
		if best >= 0 {
			return best, bestDir
		}
		if !rv.refillCandidates() {
			return -1, 0
		}
	}
	return -1, 0
}

func (rv *revisedState) refillCandidates() bool {
	limit := devexListSize(rv.n)
	if cap(rv.cand) < limit {
		rv.cand = make([]int32, limit)
	}
	rv.candN = 0
	j := rv.candStart
	if j >= rv.n {
		j = 0
	}
	for scanned := 0; scanned < rv.n; scanned++ {
		if score, _ := rv.scoreAt(j); score > tolReduced {
			rv.cand[rv.candN] = int32(j)
			rv.candN++
			if rv.candN == limit {
				j++
				break
			}
		}
		if j++; j >= rv.n {
			j = 0
		}
	}
	if j >= rv.n {
		j = 0
	}
	rv.candStart = j
	rv.stats.CandidateRebuilds++
	return rv.candN > 0
}

// updateDevexWeights is the revised-core devex reference update: the scaled
// pivot row entries come from the α row instead of the tableau.
func (rv *revisedState) updateDevexWeights(r, enter int, inv float64) {
	w := rv.weight
	wq := w[enter]
	if wq < 1 {
		wq = 1
	}
	maxW := 0.0
	for j := 0; j < rv.n; j++ {
		v := rv.alpha[j] * inv
		if v == 0 {
			continue
		}
		if nw := v * v * wq; nw > w[j] {
			w[j] = nw
		}
		if w[j] > maxW {
			maxW = w[j]
		}
	}
	leave := rv.basis[r] // pivot updates basis after this hook
	lw := wq * inv * inv
	if lw < 1 {
		lw = 1
	}
	w[leave] = lw
	if maxW > 1e12 {
		for j := range w {
			w[j] = 1
		}
	}
}

// ratioTest mirrors the tableau core's bounded-variable ratio test, reading
// the FTRAN'd entering column rv.w instead of a gathered tableau column.
func (rv *revisedState) ratioTest(enter int, dir float64) (flip bool, leaveRow int, theta float64) {
	theta = Inf
	if !math.IsInf(rv.lo[enter], -1) && !math.IsInf(rv.hi[enter], 1) {
		theta = rv.hi[enter] - rv.lo[enter]
	}
	flip = true
	leaveRow = -1
	bestPiv := 0.0
	for i := 0; i < rv.m; i++ {
		t := rv.w[i]
		rate := -dir * t // d(xB_i)/dθ
		var lim float64
		switch {
		case rate > tolPivot:
			if math.IsInf(rv.hi[rv.basis[i]], 1) {
				continue
			}
			lim = (rv.hi[rv.basis[i]] - rv.xB[i]) / rate
		case rate < -tolPivot:
			if math.IsInf(rv.lo[rv.basis[i]], -1) {
				continue
			}
			lim = (rv.xB[i] - rv.lo[rv.basis[i]]) / -rate
		default:
			continue
		}
		if lim < -tolFeas {
			lim = 0
		}
		replace := false
		if lim < theta-tolFeas {
			replace = true
		} else if lim < theta+tolFeas && leaveRow >= 0 {
			if rv.bland {
				replace = rv.basis[i] < rv.basis[leaveRow]
			} else {
				replace = math.Abs(t) > bestPiv
			}
		} else if lim < theta+tolFeas && leaveRow < 0 && lim <= theta {
			replace = true
		}
		if replace {
			theta = math.Min(theta, math.Max(lim, 0))
			leaveRow = i
			bestPiv = math.Abs(t)
			flip = false
		}
	}
	if leaveRow < 0 && math.IsInf(theta, 1) {
		return false, -1, Inf // unbounded
	}
	return flip, leaveRow, theta
}

func (rv *revisedState) updateBasics(dir, theta float64) {
	if theta == 0 {
		return
	}
	for i, v := range rv.w {
		if v != 0 {
			rv.xB[i] -= dir * theta * v
		}
	}
}

// pivot makes column enter basic in basis position r with value entVal.
// rv.w must hold the FTRAN'd entering column and xB must already be
// stepped (updateBasics). The reduced costs are updated incrementally from
// the α row (BTRAN + sparse dots) exactly as the tableau updates them from
// its pivot row; the basis change is recorded as an eta, refactorizing on
// cadence. Returns false on a numerical abort (singular refactorization).
func (rv *revisedState) pivot(r, enter int, entVal float64) bool {
	leave := rv.basis[r]
	// Classify the leaving variable at whichever bound it reached.
	lv := rv.xB[r]
	if !math.IsInf(rv.lo[leave], -1) && math.Abs(lv-rv.lo[leave]) <= math.Abs(lv-rv.hi[leave]) {
		rv.status[leave] = atLower
	} else if !math.IsInf(rv.hi[leave], 1) {
		rv.status[leave] = atUpper
	} else {
		rv.status[leave] = atLower
	}
	rv.psign[leave] = pricingSign(rv.status[leave], rv.lo[leave], rv.hi[leave])

	wr := rv.w[r] // α_rq: pivot element
	needAlpha := rv.d[enter] != 0 || rv.pricing == PricingDevex
	if needAlpha {
		if !rv.btranUnit(r) {
			return false
		}
		for j := 0; j < rv.n; j++ {
			if rv.status[j] == basic {
				rv.alpha[j] = 0
				continue
			}
			rv.alpha[j] = rv.colDot(j, rv.rho)
		}
	}
	if f := rv.d[enter]; f != 0 {
		t := f / wr
		for j := 0; j < rv.n; j++ {
			if rv.status[j] == basic || j == enter {
				continue
			}
			if a := rv.alpha[j]; a != 0 {
				rv.d[j] -= t * a
			}
		}
		rv.d[leave] = -t // α_r,leave = 1 exactly
	} else {
		rv.d[leave] = 0
	}
	rv.d[enter] = 0
	if rv.pricing == PricingDevex {
		rv.updateDevexWeights(r, enter, 1/wr)
	}

	// Record the eta (w = B_old⁻¹·a_enter) and commit the basis change.
	slab := rv.etaVal[rv.nEta*rv.m : (rv.nEta+1)*rv.m]
	copy(slab, rv.w)
	rv.etaRow[rv.nEta] = int32(r)
	rv.nEta++
	rv.basis[r] = enter
	rv.status[enter] = basic
	rv.psign[enter] = 0
	rv.xB[r] = entVal
	rv.dFresh = false
	rv.stats.Pivots++
	if rv.nEta >= refactorEvery {
		return rv.refactor()
	}
	return true
}

// evictArtificials pivots basic artificial variables (necessarily ~0 after
// a feasible phase 1) out of the basis where possible, like the tableau
// core. The pivot row multipliers come from a BTRAN per candidate row.
func (rv *revisedState) evictArtificials() bool {
	for i := 0; i < rv.m; i++ {
		if rv.basis[i] < rv.n-rv.nArt {
			continue
		}
		if !rv.btranUnit(i) {
			return false
		}
		pivCol, pivAbs := -1, tolPivot
		for j := 0; j < rv.n-rv.nArt; j++ {
			if rv.status[j] == basic || rv.lo[j] == rv.hi[j] {
				continue
			}
			if a := math.Abs(rv.colDot(j, rv.rho)); a > pivAbs {
				pivAbs, pivCol = a, j
			}
		}
		if pivCol >= 0 {
			if !rv.ftranColumn(pivCol) {
				return false
			}
			if !rv.pivot(i, pivCol, nonbasicValue(rv.status[pivCol], rv.lo[pivCol], rv.hi[pivCol])) {
				return false
			}
		}
	}
	return true
}

// finishRevised extracts the solution canonically: the final basis is
// reordered ascending, refactorized from scratch, and both the basic
// values and the row duals are recomputed from that fresh factorization.
// The solution is therefore a deterministic function of (basis set,
// nonbasic statuses, problem data) — a warm dual re-solve and a cold
// primal solve that end on the same basis return bit-identical numbers,
// which is what the controller's warm-start regression pins.
func (p *Problem) finishRevised(rv *revisedState, status Status, ws *Workspace, reuse bool) (*Solution, error) {
	var sol *Solution
	if reuse {
		sol = &ws.sol
		*sol = Solution{Status: status, Iterations: rv.iters}
	} else {
		sol = &Solution{Status: status, Iterations: rv.iters}
	}
	if status != Optimal {
		serr := &StatusError{Status: status}
		if status == Canceled && rv.ctx != nil {
			serr.cause = rv.ctx.Err()
		}
		return sol, serr
	}

	sorted := ws.ints(ws.rvSorted, rv.m)
	ws.rvSorted = sorted
	copy(sorted, rv.basis)
	sort.Ints(sorted)
	if !rv.refactorFrom(sorted) {
		sol.Status = IterLimit
		return sol, &StatusError{Status: IterLimit, cause: ErrNumerical}
	}

	var x []float64
	if reuse {
		x = ws.f64(ws.solX, rv.n)
		ws.solX = x
		clear(x)
	} else {
		x = make([]float64, rv.n)
	}
	for j := 0; j < rv.n; j++ {
		if rv.status[j] != basic {
			x[j] = nonbasicValue(rv.status[j], rv.lo[j], rv.hi[j])
		}
	}
	copy(rv.rhsEff, rv.rhs)
	for j := 0; j < rv.n; j++ {
		if rv.status[j] == basic {
			continue
		}
		v := x[j]
		if v == 0 {
			continue
		}
		for k := rv.colPtr[j]; k < rv.colPtr[j+1]; k++ {
			rv.rhsEff[rv.colIdx[k]] -= rv.colVal[k] * v
		}
	}
	if rv.lu.SolveInto(rv.tmpm, rv.rhsEff) != nil {
		sol.Status = IterLimit
		return sol, &StatusError{Status: IterLimit, cause: ErrNumerical}
	}
	for k, b := range sorted {
		x[b] = rv.tmpm[k]
	}
	sol.x = x[:rv.nStruct]
	obj := 0.0
	for j := 0; j < rv.nStruct; j++ {
		obj += p.cost[j] * sol.x[j]
	}
	sol.Objective = obj

	// Row duals: y = B⁻ᵀ·c_B on the fresh factorization; the user-facing
	// dual flips sign for Maximize (the core always minimizes).
	for k, b := range sorted {
		rv.cb[k] = rv.cost[b]
	}
	if rv.lu.SolveTransposeInto(rv.rho, rv.cb) != nil {
		sol.Status = IterLimit
		return sol, &StatusError{Status: IterLimit, cause: ErrNumerical}
	}
	sign := 1.0
	if p.sense == Maximize {
		sign = -1
	}
	var duals []float64
	if reuse {
		duals = ws.f64(ws.solDuals, rv.m)
		ws.solDuals = duals
	} else {
		duals = make([]float64, rv.m)
	}
	for i := 0; i < rv.m; i++ {
		duals[i] = sign * rv.rho[i]
	}
	sol.duals = duals
	return sol, nil
}

// saveWarm retains the canonical optimal basis, the nonbasic statuses, and
// a bitwise signature of everything except the right-hand sides. A basis
// still holding an artificial (a redundant row) is not retained: the warm
// rebuild has no artificial columns.
func (p *Problem) saveWarm(ws *Workspace, rv *revisedState) {
	ws.warmOK = false
	for _, b := range rv.basis {
		if b >= rv.nCols {
			return
		}
	}
	ws.warmBasis = append(ws.warmBasis[:0], ws.rvSorted...)
	ws.warmStatus = append(ws.warmStatus[:0], rv.status[:rv.nCols]...)
	ws.warmSense = p.sense
	ws.sigCost = append(ws.sigCost[:0], p.cost...)
	ws.sigLo = append(ws.sigLo[:0], p.lo...)
	ws.sigHi = append(ws.sigHi[:0], p.hi...)
	ws.sigCoef = ws.sigCoef[:0]
	ws.sigVar = ws.sigVar[:0]
	ws.sigRows = ws.sigRows[:0]
	for _, r := range p.rows {
		ws.sigRows = append(ws.sigRows, sigRow{op: r.op, isRange: r.isRange, rangeLo: r.rangeLo, nTerms: int32(len(r.terms))})
		for _, t := range r.terms {
			ws.sigVar = append(ws.sigVar, int32(t.Var))
			ws.sigCoef = append(ws.sigCoef, t.Coef)
		}
	}
	ws.warmOK = true
}

// warmSignatureMatches reports whether p differs from the retained problem
// only in right-hand sides: same shape, sense, costs, structural bounds,
// row operators/ranges, and bit-identical coefficients. Only then is the
// retained basis guaranteed dual-feasible for p, because reduced costs do
// not depend on the RHS.
func (p *Problem) warmSignatureMatches(ws *Workspace) bool {
	if len(p.rows) != len(ws.sigRows) || len(p.cost) != len(ws.sigCost) || p.sense != ws.warmSense {
		return false
	}
	for j, c := range p.cost {
		if c != ws.sigCost[j] || p.lo[j] != ws.sigLo[j] || p.hi[j] != ws.sigHi[j] {
			return false
		}
	}
	k := 0
	for i := range p.rows {
		r := &p.rows[i]
		sig := &ws.sigRows[i]
		if r.op != sig.op || r.isRange != sig.isRange || len(r.terms) != int(sig.nTerms) {
			return false
		}
		if r.isRange && r.rangeLo != sig.rangeLo {
			return false
		}
		if k+len(r.terms) > len(ws.sigVar) {
			return false
		}
		for _, t := range r.terms {
			if int32(t.Var) != ws.sigVar[k] || t.Coef != ws.sigCoef[k] {
				return false
			}
			k++
		}
	}
	return k == len(ws.sigVar)
}

// tryWarmRevised attempts a dual-simplex warm start from the workspace's
// retained basis. ok=false means the warm start was rejected (any reason)
// and the caller must run the cold path; the workspace is left consistent.
func (p *Problem) tryWarmRevised(ctx context.Context, ws *Workspace, reuse bool) (*Solution, error, bool) {
	if !p.warmSignatureMatches(ws) {
		return nil, nil, false
	}
	rv, ok := p.newRevisedWarmState(ws)
	if !ok {
		ws.stashRevised(rv)
		return nil, nil, false
	}
	rv.ctx = ctx
	defer ws.stashRevised(rv)

	rv.setPhase2Costs(p)
	// The retained basis must price dual-feasible under the (bit-identical)
	// costs; factorization noise beyond dualFeasTol rejects the warm start.
	for j := 0; j < rv.n; j++ {
		if rv.status[j] == basic || rv.lo[j] == rv.hi[j] {
			continue
		}
		dj := rv.d[j]
		switch rv.status[j] {
		case atLower:
			if dj < -dualFeasTol {
				return nil, nil, false
			}
		case atUpper:
			if dj > dualFeasTol {
				return nil, nil, false
			}
		default: // freeZero
			if math.Abs(dj) > dualFeasTol {
				return nil, nil, false
			}
		}
	}
	if !rv.computeXB() {
		return nil, nil, false
	}
	if !rv.dualIterate() {
		return nil, nil, false
	}
	// The dual phase restored primal feasibility; a primal cleanup pass
	// confirms optimality (it terminates immediately when the maintained
	// reduced costs verify clean) and repairs any round-off drift.
	if rv.iterate() != Optimal {
		return nil, nil, false
	}
	sol, err := p.finishRevised(rv, Optimal, ws, reuse)
	if err != nil {
		return nil, nil, false
	}
	p.saveWarm(ws, rv)
	return sol, nil, true
}

// dualIterate runs bounded-variable dual-simplex pivots until primal
// feasibility (true) or rejection (false: dual unboundedness — primal
// infeasible, which the cold path is left to confirm —, a stalled budget,
// cancellation, or a numerical abort).
func (rv *revisedState) dualIterate() bool {
	sinceCtx := 0
	for ; rv.iters < rv.maxIter; rv.iters++ {
		if rv.ctx != nil {
			if sinceCtx++; sinceCtx >= ctxCheckEvery {
				sinceCtx = 0
				if rv.ctx.Err() != nil {
					return false
				}
			}
		}
		// Leaving row: the largest primal bound violation.
		r := -1
		maxViol := tolFeas
		delta := 0.0
		for i := 0; i < rv.m; i++ {
			b := rv.basis[i]
			if v := rv.lo[b] - rv.xB[i]; v > maxViol {
				maxViol, r, delta = v, i, rv.xB[i]-rv.lo[b] // delta < 0
			}
			if v := rv.xB[i] - rv.hi[b]; v > maxViol {
				maxViol, r, delta = v, i, rv.xB[i]-rv.hi[b] // delta > 0
			}
		}
		if r < 0 {
			return true // primal feasible
		}
		if !rv.btranUnit(r) {
			return false
		}
		// Dual ratio test: among columns whose reduced cost the dual step
		// drives toward infeasibility, enter the one binding first (smallest
		// |d_j/α_rj|), tie-broken on the larger pivot magnitude.
		enter := -1
		bestRatio := math.Inf(1)
		bestAbs := 0.0
		for j := 0; j < rv.n; j++ {
			if rv.status[j] == basic || rv.lo[j] == rv.hi[j] {
				rv.alpha[j] = 0
				continue
			}
			a := rv.colDot(j, rv.rho)
			rv.alpha[j] = a
			if a > -tolPivot && a < tolPivot {
				continue
			}
			eligible := false
			if delta < 0 {
				switch rv.status[j] {
				case atLower:
					eligible = a < 0
				case atUpper:
					eligible = a > 0
				default: // freeZero: d ≈ 0, binds immediately in any direction
					eligible = true
				}
			} else {
				switch rv.status[j] {
				case atLower:
					eligible = a > 0
				case atUpper:
					eligible = a < 0
				default:
					eligible = true
				}
			}
			if !eligible {
				continue
			}
			ratio := math.Abs(rv.d[j] / a)
			if ratio < bestRatio-tolPivot || (ratio < bestRatio+tolPivot && math.Abs(a) > bestAbs) {
				enter, bestRatio, bestAbs = j, ratio, math.Abs(a)
			}
		}
		if enter < 0 {
			return false // dual unbounded ⇒ primal infeasible; cold path confirms
		}
		if !rv.dualPivot(r, enter, delta) {
			return false
		}
	}
	return false
}

// dualPivot performs one dual-simplex basis change: basis position r
// (violating its bound by delta) leaves to the violated bound, column
// enter becomes basic. rv.alpha must hold the pivot row from dualIterate.
func (rv *revisedState) dualPivot(r, enter int, delta float64) bool {
	leave := rv.basis[r]
	aq := rv.alpha[enter]
	// Dual step: shift y along the pivot row so enter's reduced cost hits 0.
	t := rv.d[enter] / aq
	for j := 0; j < rv.n; j++ {
		if rv.status[j] == basic || j == enter {
			continue
		}
		if a := rv.alpha[j]; a != 0 {
			rv.d[j] -= t * a
		}
	}
	rv.d[leave] = -t // α_r,leave = 1 exactly
	rv.d[enter] = 0

	// Primal step: the entering variable moves by delta/α_rq, landing the
	// leaving variable exactly on its violated bound.
	tp := delta / aq
	if !rv.ftranColumn(enter) {
		return false
	}
	entVal := nonbasicValue(rv.status[enter], rv.lo[enter], rv.hi[enter]) + tp
	for i, v := range rv.w {
		if v != 0 {
			rv.xB[i] -= tp * v
		}
	}
	if delta < 0 {
		rv.status[leave] = atLower
	} else {
		rv.status[leave] = atUpper
	}
	rv.psign[leave] = pricingSign(rv.status[leave], rv.lo[leave], rv.hi[leave])

	slab := rv.etaVal[rv.nEta*rv.m : (rv.nEta+1)*rv.m]
	copy(slab, rv.w)
	rv.etaRow[rv.nEta] = int32(r)
	rv.nEta++
	rv.basis[r] = enter
	rv.status[enter] = basic
	rv.psign[enter] = 0
	rv.xB[r] = entVal
	rv.dFresh = false
	rv.stats.Pivots++
	rv.stats.DualPivots++
	if rv.nEta >= refactorEvery {
		return rv.refactor()
	}
	return true
}
