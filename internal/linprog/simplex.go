package linprog

import (
	"context"
	"fmt"
	"math"

	"thermaldc/internal/telemetry"
)

// Numerical tolerances for the simplex. The LPs in this repository are well
// scaled (powers in kW, temperatures in °C, rates in tasks/s), so fixed
// tolerances are adequate.
const (
	tolReduced   = 1e-9 // reduced-cost optimality tolerance
	tolPivot     = 1e-9 // smallest acceptable pivot magnitude
	tolFeas      = 1e-7 // bound/feasibility tolerance
	tolVerify    = 1e-6 // relative residual tolerance for solution verification
	refreshEvery = 256  // recompute the reduced-cost row every this many pivots
	// ctxCheckEvery bounds how many pivots run between cooperative
	// cancellation checks; each check is one atomic load inside ctx.Err.
	ctxCheckEvery = 64
)

type varStatus int8

const (
	atLower varStatus = iota
	atUpper
	basic
	freeZero // nonbasic free variable pinned at 0
)

// tableauState is the mutable state of one Solve call.
//
// The tableau lives in one flat row-major backing array a of m rows with a
// fixed stride (nStruct + 2m, the worst case of one artificial per row), so
// the pivot loop walks contiguous memory instead of chasing row pointers.
// Two sparsity structures cut the elimination work:
//
//   - extLo/extHi track each row's nonzero extent [extLo, extHi): every
//     entry outside it is an exact zero, so the ratio test, reduced-cost
//     refresh, and artificial eviction skip the structurally-zero tail
//     without reading it. Pivoting unions the pivot row's extent into each
//     touched row (fill-in only ever widens an extent).
//   - runs packs the scaled pivot row's nonzero columns into contiguous
//     [start, end) intervals (zero-gaps up to runGap wide are bridged), so
//     each row elimination walks a handful of contiguous slices — dense
//     enough for bounds-check-free sequential loops, sparse enough to skip
//     the structural zero blocks that make up half of these rows.
//
// Skipping exact zeros is bit-compatible with the dense loops: subtracting
// f·0 never changes a float64 (the sign-of-zero corner −0−(−0) aside), so
// the pivot sequence and every emitted value match the dense tableau.
type tableauState struct {
	m, n   int // rows, total columns (structural + slack + artificial)
	stride int // row stride of a (≥ n)
	nCols  int // structural + slack columns; artificials start here

	a            []float64 // m×stride flat row-major working tableau
	extLo, extHi []int32   // per-row nonzero extent [extLo, extHi)
	runs         []int32   // scratch: nonzero runs of the scaled pivot row, (start, end) pairs
	colBuf       []float64 // scratch: the entering column, gathered once per pivot

	xB     []float64   // current values of basic variables, per row
	basis  []int       // basic variable per row
	status []varStatus // per column
	lo, hi []float64   // per column bounds
	cost   []float64   // current phase objective (minimization)
	d      []float64   // reduced costs, maintained incrementally

	// psign folds each column's pricing state into one multiplier so the
	// Dantzig scan is a single fused multiply-compare per column: score =
	// psign_j·d_j, direction = −psign_j, ineligible columns hold 0. hasFree
	// (any free nonbasic column) forces the classification fallback scan.
	psign   []float64
	hasFree bool

	nStruct int // number of structural variables
	nArt    int
	iters   int
	maxIter int
	bland   bool
	degen   int // consecutive degenerate pivots, triggers Bland's rule

	// forceBland pins Bland's rule on from the first pivot (the
	// anti-cycling restart); maxDegenRun records the longest run of
	// consecutive degenerate pivots, the stall evidence that classifies an
	// exhausted iteration budget as cycling.
	forceBland  bool
	maxDegenRun int

	// dFresh is true while the reduced-cost row d is exactly the full
	// recomputation c_j − Σ c_B·T[·][j] (no incremental pivot updates have
	// touched it since). Optimality may only be declared when it is true;
	// otherwise iterate runs a verification sweep first.
	dFresh bool

	// Partial-pricing state (PricingDevex only).
	pricing   Pricing
	weight    []float64 // devex reference weights, per column
	cand      []int32   // candidate list
	candN     int
	candStart int // rotation cursor for candidate refills

	// ctx, when non-nil, is polled every ctxCheckEvery pivots for
	// cooperative cancellation.
	ctx   context.Context
	stats *Stats
}

// Solve optimizes the problem and returns the solution. A non-Optimal
// outcome is reported both in Solution.Status and as an error wrapping
// ErrNotOptimal, so callers may either branch on the status or simply
// propagate the error.
func (p *Problem) Solve() (*Solution, error) {
	return p.SolveWithContext(nil, nil)
}

// SolveContext is Solve under cooperative cancellation: the context is
// polled every few dozen pivots and a done context aborts the solve with
// status Canceled (the error unwraps to ctx.Err()).
func (p *Problem) SolveContext(ctx context.Context) (*Solution, error) {
	return p.SolveWithContext(ctx, nil)
}

// SolveWith is Solve reusing the buffers of ws (nil behaves like Solve).
// The returned Solution does not alias workspace memory, so it stays valid
// across subsequent SolveWith calls.
func (p *Problem) SolveWith(ws *Workspace) (*Solution, error) {
	return p.SolveWithContext(nil, ws)
}

// SolveWithContext is the full-control entry point: ctx (may be nil) is
// polled for cancellation, ws (may be nil) donates tableau buffers.
//
// Beyond the plain simplex run it layers three self-healing guards:
//
//  1. A problem marked malformed at insertion time (NaN/Inf data) is
//     re-validated and rejected with status Malformed before any pivoting.
//  2. An exhausted iteration budget triggers one full restart under
//     Bland's anti-cycling rule; if the restart also exhausts the budget
//     while stalling on degenerate pivots, the error wraps ErrCycling.
//  3. Every Optimal basis is verified against the original problem data
//     (finite values, bounds, primal residuals). A failed verification
//     triggers one deterministic retry on a row-equilibrated copy with a
//     tiny feasibility-preserving RHS relaxation; if that solution fails
//     verification too, the error wraps ErrNumerical.
//
// The guards only engage on failure, so healthy solves return bit-identical
// results to the unguarded simplex.
func (p *Problem) SolveWithContext(ctx context.Context, ws *Workspace) (*Solution, error) {
	if ws == nil {
		ws = &Workspace{}
	}
	return p.solveGuarded(ctx, ws, false)
}

// SolveInto is the zero-allocation hot path: like SolveWithContext, but
// the returned Solution and its vectors alias buffers owned by ws and stay
// valid only until the next solve through ws. Callers that keep results
// beyond that must copy what they need. The numbers are bit-identical to
// SolveWithContext; only the buffer ownership differs. ws must be non-nil.
func (p *Problem) SolveInto(ctx context.Context, ws *Workspace) (*Solution, error) {
	return p.solveGuarded(ctx, ws, true)
}

func (p *Problem) solveGuarded(ctx context.Context, ws *Workspace, reuse bool) (*Solution, error) {
	if tr := ws.Trace; tr != nil {
		clk := tr.Begin()
		pivots0 := ws.Stats.Pivots
		sol, err := p.solveGuardedInner(ctx, ws, reuse)
		var code int32
		if sol != nil {
			code = int32(sol.Status)
		}
		tr.End(clk, telemetry.SpanLPSolve, 0, ws.Stats.Pivots-pivots0, code)
		return sol, err
	}
	return p.solveGuardedInner(ctx, ws, reuse)
}

func (p *Problem) solveGuardedInner(ctx context.Context, ws *Workspace, reuse bool) (*Solution, error) {
	ws.Stats.Solves++
	if p.defect != nil {
		// Insertion noted a defect, but SetRHS/SetCost may have overwritten
		// the bad value since; only reject if the problem is still sick.
		if err := p.validate(); err != nil {
			return &Solution{Status: Malformed},
				&StatusError{Status: Malformed, cause: fmt.Errorf("%w: %v", ErrMalformed, err)}
		}
		p.defect = nil
	}

	sol, stalled, err := p.solveOnce(ctx, ws, false, reuse)
	if err != nil && sol.Status == IterLimit {
		// The budget ran out; re-run from scratch with Bland's rule pinned
		// on, which cannot cycle (it may still be slower than the budget).
		rsol, rstalled, rerr := p.solveOnce(ctx, ws, true, reuse)
		if rerr == nil {
			rsol.Restarted = true
		} else if rsol.Status == IterLimit && (stalled || rstalled) {
			rerr = &StatusError{Status: IterLimit, cause: ErrCycling}
		}
		sol, err = rsol, rerr
	}
	if err != nil {
		return sol, err
	}
	if verr := p.verifySolution(sol); verr != nil {
		return p.rescaledRetry(ctx, ws, sol, verr)
	}
	return sol, nil
}

// solveOnce runs both simplex phases once. stalled reports whether the run
// showed cycling-like behavior (a long streak of consecutive degenerate
// pivots). With reuse the returned Solution aliases ws buffers.
func (p *Problem) solveOnce(ctx context.Context, ws *Workspace, forceBland, reuse bool) (*Solution, bool, error) {
	if ctx != nil {
		if cerr := ctx.Err(); cerr != nil {
			return &Solution{Status: Canceled}, false, &StatusError{Status: Canceled, cause: cerr}
		}
	}
	if p.Method == MethodRevised {
		return p.solveOnceRevised(ctx, ws, forceBland, reuse)
	}
	st := p.newState(ws)
	st.ctx = ctx
	if forceBland {
		st.bland, st.forceBland = true, true
	}
	defer ws.stash(st)

	// Phase 1: minimize the sum of artificial variables.
	if st.nArt > 0 {
		st.setPhase1Costs()
		status := st.iterate()
		if status != Optimal {
			sol, err := p.finish(st, status, ws, reuse)
			return sol, st.stalled(), err
		}
		if st.phase1Objective() > 1e-6 {
			sol, err := p.finish(st, Infeasible, ws, reuse)
			return sol, st.stalled(), err
		}
		st.evictArtificials()
	}

	// Phase 2: the real objective.
	st.setPhase2Costs(p)
	status := st.iterate()
	sol, err := p.finish(st, status, ws, reuse)
	return sol, st.stalled(), err
}

// stalled reports whether the run's longest degenerate-pivot streak is
// long enough to suggest cycling rather than an honestly large LP.
func (st *tableauState) stalled() bool {
	return st.maxDegenRun > st.m+16
}

// row returns row i of the flat tableau, sliced to the live n columns.
func (st *tableauState) row(i int) []float64 {
	base := i * st.stride
	return st.a[base : base+st.n]
}

// newState builds the initial tableau, slacks, artificials and starting
// basis for the problem, drawing buffers from ws. The construction mirrors
// the previous ragged-row build operation for operation (term accumulation
// order, row flips, residual scans), so results are bit-identical.
func (p *Problem) newState(ws *Workspace) *tableauState {
	m := len(p.rows)
	nStruct := len(p.cost)

	st := &ws.st
	*st = tableauState{
		m:       m,
		nStruct: nStruct,
		pricing: p.Pricing,
		stats:   &ws.Stats,
	}

	// Column layout: [structural | one slack per row | artificials as
	// needed]. The stride reserves the worst case of one artificial per
	// row up front, so no row ever has to move.
	nCols := nStruct + m
	st.nCols = nCols
	st.stride = nCols + m

	st.lo = append(ws.lo[:0], p.lo...)
	st.hi = append(ws.hi[:0], p.hi...)
	for _, r := range p.rows {
		slo, shi := slackBounds(r)
		st.lo = append(st.lo, slo)
		st.hi = append(st.hi, shi)
	}

	// Initial nonbasic statuses and values for structural + slack columns.
	if cap(ws.status) >= nCols {
		st.status = ws.status[:nCols]
	} else {
		st.status = make([]varStatus, nCols)
		ws.Stats.AllocBytes += int64(nCols)
	}
	for j := 0; j < nCols; j++ {
		st.status[j] = initialStatus(st.lo[j], st.hi[j])
	}

	// Flat rows, zeroed over the full stride before the term fill so every
	// column an extent can ever grow into holds an exact zero. A freshly
	// allocated backing array is already zero; a reused one is only dirty
	// inside the previous solve's per-row extents (every tableau write —
	// term fill, flips, eliminations, fill-in — lands inside them), so a
	// same-shaped reuse clears just those spans instead of the full m×stride
	// block.
	fresh := cap(ws.a) < m*st.stride
	sameShape := !fresh && ws.aM == m && ws.aStride == st.stride
	st.a = ws.f64(ws.a, m*st.stride)
	prevLo, prevHi := ws.extLo, ws.extHi
	st.extLo = ws.i32(ws.extLo, m)
	st.extHi = ws.i32(ws.extHi, m)
	ws.aM, ws.aStride = m, st.stride
	st.runs = ws.runs
	rhs := ws.f64(ws.rhs, m)
	ws.rhs = rhs
	for i, r := range p.rows {
		rowv := st.a[i*st.stride : (i+1)*st.stride]
		if !fresh {
			if sameShape && i < len(prevLo) && i < len(prevHi) {
				clear(rowv[prevLo[i]:prevHi[i]])
			} else {
				clear(rowv)
			}
		}
		for _, tm := range r.terms {
			rowv[tm.Var] += tm.Coef
		}
		rowv[nStruct+i] = 1 // slack
		rhs[i] = r.rhs
	}

	// Precompute the nonbasic value of every column once; the residual
	// scans below read it m·n times.
	nbv := ws.f64(ws.nbv, nCols)
	ws.nbv = nbv
	for j := 0; j < nCols; j++ {
		nbv[j] = nonbasicValue(st.status[j], st.lo[j], st.hi[j])
	}

	// Residuals at the initial nonbasic point decide the starting basis.
	if cap(ws.basis) >= m {
		st.basis = ws.basis[:m]
	} else {
		st.basis = make([]int, m)
	}
	st.xB = ws.f64(ws.xB, m)
	ws.xB = st.xB
	st.colBuf = ws.f64(ws.colBuf, m)
	ws.colBuf = st.colBuf
	st.cost = ws.cost
	st.d = ws.d
	st.psign = ws.psign
	for i := 0; i < m; i++ {
		rowv := st.a[i*st.stride : (i+1)*st.stride]
		res := rhs[i]
		for j, v := range rowv[:nCols] {
			res -= v * nbv[j]
		}
		slack := nStruct + i
		if res >= st.lo[slack]-tolFeas && res <= st.hi[slack]+tolFeas {
			// The slack itself can carry the residual: no artificial needed.
			st.basis[i] = slack
			st.xB[i] = clamp(res, st.lo[slack], st.hi[slack])
			st.status[slack] = basic
			st.extLo[i], st.extHi[i] = 0, int32(slack+1)
			continue
		}
		// Need an artificial. Scale the row so the artificial is +1 with a
		// non-negative basic value. The flip covers the columns that exist
		// at this point (structural, slacks, artificials created so far),
		// matching the previous ragged-row behavior exactly.
		if res < 0 {
			for j := 0; j < nCols+st.nArt; j++ {
				rowv[j] = -rowv[j]
			}
			res = -res
		}
		art := nCols + st.nArt
		st.lo = append(st.lo, 0)
		st.hi = append(st.hi, Inf)
		st.status = append(st.status, basic)
		rowv[art] = 1
		st.basis[i] = art
		st.xB[i] = res
		st.nArt++
		st.extLo[i], st.extHi[i] = 0, int32(art+1)
	}
	st.n = len(st.lo)

	if st.pricing == PricingDevex {
		st.weight = ws.f64(ws.weight, st.n)
		st.cand = ws.i32(ws.cand, devexListSize(st.n))
	}

	st.maxIter = p.MaxIter
	if st.maxIter == 0 {
		st.maxIter = 200*(st.m+st.n) + 2000
	}
	return st
}

func slackBounds(r row) (lo, hi float64) {
	if r.isRange {
		return 0, r.rhs - r.rangeLo
	}
	switch r.op {
	case LE:
		return 0, Inf
	case GE:
		return math.Inf(-1), 0
	case EQ:
		return 0, 0
	default:
		panic(fmt.Sprintf("linprog: unknown op %d", r.op))
	}
}

func initialStatus(lo, hi float64) varStatus {
	switch {
	case !math.IsInf(lo, -1):
		return atLower
	case !math.IsInf(hi, 1):
		return atUpper
	default:
		return freeZero
	}
}

func nonbasicValue(s varStatus, lo, hi float64) float64 {
	switch s {
	case atLower:
		return lo
	case atUpper:
		return hi
	default:
		return 0
	}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func (st *tableauState) setPhase1Costs() {
	st.cost = f64buf(st.cost, st.n)
	for j := range st.cost {
		st.cost[j] = 0
	}
	for j := st.n - st.nArt; j < st.n; j++ {
		st.cost[j] = 1
	}
	st.recomputeReducedCosts()
	st.initPricingSigns()
	st.resetPricing()
}

func (st *tableauState) setPhase2Costs(p *Problem) {
	st.cost = f64buf(st.cost, st.n)
	for j := range st.cost {
		st.cost[j] = 0
	}
	sign := 1.0
	if p.sense == Maximize {
		sign = -1 // internally always minimize
	}
	for j := 0; j < st.nStruct; j++ {
		st.cost[j] = sign * p.cost[j]
	}
	// Artificials must never re-enter: pin them to 0.
	for j := st.n - st.nArt; j < st.n; j++ {
		st.lo[j], st.hi[j] = 0, 0
		if st.status[j] != basic {
			st.status[j] = atLower
		}
	}
	st.recomputeReducedCosts()
	st.initPricingSigns()
	st.resetPricing()
}

func (st *tableauState) phase1Objective() float64 {
	sum := 0.0
	for i, b := range st.basis {
		if b >= st.n-st.nArt {
			sum += st.xB[i]
		}
	}
	return sum
}

// evictArtificials pivots basic artificial variables (necessarily at value
// ~0 after a feasible phase 1) out of the basis where possible. Rows whose
// non-artificial entries are all zero are redundant and keep their
// artificial basic at 0, pinned by its [0,0] bounds.
func (st *tableauState) evictArtificials() {
	for i := 0; i < st.m; i++ {
		if st.basis[i] < st.n-st.nArt {
			continue
		}
		pivCol, pivAbs := -1, tolPivot
		row := st.row(i)
		hi := st.n - st.nArt
		if h := int(st.extHi[i]); h < hi {
			hi = h // entries past the extent are exact zeros
		}
		for j := int(st.extLo[i]); j < hi; j++ {
			if st.status[j] == basic || st.lo[j] == st.hi[j] {
				continue
			}
			if a := math.Abs(row[j]); a > pivAbs {
				pivAbs, pivCol = a, j
			}
		}
		if pivCol >= 0 {
			st.gatherColumn(pivCol) // pivot reads the entering column from colBuf
			st.pivot(i, pivCol, nonbasicValue(st.status[pivCol], st.lo[pivCol], st.hi[pivCol]))
		}
	}
}

// recomputeReducedCosts rebuilds the reduced-cost row d from scratch:
// d_j = c_j − Σ_i c_{B(i)}·T[i][j]. Each row contributes only over its
// nonzero extent; entries outside it are exact zeros and cannot change d.
func (st *tableauState) recomputeReducedCosts() {
	st.d = append(st.d[:0], st.cost...)
	d := st.d
	for i := 0; i < st.m; i++ {
		cb := st.cost[st.basis[i]]
		if cb == 0 {
			continue
		}
		row := st.row(i)
		lo, hi := int(st.extLo[i]), int(st.extHi[i])
		axpyNeg(cb, row[lo:hi], d[lo:hi])
	}
	st.dFresh = true
	st.stats.Refreshes++
}

// iterate runs simplex pivots until optimality, unboundedness, the
// iteration budget, or cancellation.
//
// Optimality is never declared off the incrementally-maintained reduced
// costs alone: when pricing finds no eligible column, a verification sweep
// recomputes d from the tableau and re-prices over all n columns (also
// refilling the partial-pricing candidate list). Only a clean sweep
// returns Optimal; anything it finds resumes pivoting. This closes the
// premature-optimality hole where a stale d row — or a candidate list that
// went empty between refreshes — hides a still-improvable column.
func (st *tableauState) iterate() Status {
	sinceRefresh := 0
	sinceCtx := 0
	for ; st.iters < st.maxIter; st.iters++ {
		if st.ctx != nil {
			if sinceCtx++; sinceCtx >= ctxCheckEvery {
				sinceCtx = 0
				if st.ctx.Err() != nil {
					return Canceled
				}
			}
		}
		if sinceRefresh >= refreshEvery {
			st.recomputeReducedCosts()
			sinceRefresh = 0
		}
		enter, dir := st.chooseEntering()
		if enter < 0 {
			if st.dFresh {
				return Optimal
			}
			// Verification sweep: full refresh, then re-price everything.
			st.recomputeReducedCosts()
			sinceRefresh = 0
			st.candN = 0
			enter, dir = st.chooseEntering()
			if enter < 0 {
				return Optimal
			}
			st.stats.SweepResumes++
		}
		flip, leaveRow, theta := st.ratioTest(enter, dir)
		if math.IsInf(theta, 1) {
			return Unbounded
		}
		if theta <= tolFeas {
			st.degen++
			if st.degen > st.maxDegenRun {
				st.maxDegenRun = st.degen
			}
			if st.degen > 2*(st.m+64) {
				st.bland = true
			}
		} else {
			st.degen = 0
			if st.bland && !st.forceBland {
				st.bland = false
			}
		}
		if flip {
			// Bound flip: the entering variable runs to its other bound;
			// no basis change, and d is untouched.
			e32 := int32(enter)
			for i := 0; i < st.m; i++ {
				if e32 < st.extLo[i] || e32 >= st.extHi[i] {
					continue // exact zero column entry
				}
				st.xB[i] -= dir * theta * st.colBuf[i]
			}
			if st.status[enter] == atLower {
				st.status[enter] = atUpper
			} else {
				st.status[enter] = atLower
			}
			st.psign[enter] = pricingSign(st.status[enter], st.lo[enter], st.hi[enter])
			st.stats.BoundFlips++
			sinceRefresh++
			continue
		}
		entVal := nonbasicValue(st.status[enter], st.lo[enter], st.hi[enter]) + dir*theta
		st.updateBasics(enter, dir, theta)
		st.pivot(leaveRow, enter, entVal)
		sinceRefresh++
	}
	return IterLimit
}

// chooseEntering picks the entering column and its direction (+1 =
// increasing, −1 = decreasing), or (-1, 0) when pricing sees no eligible
// column. Bland's rule always uses the exact full scan.
func (st *tableauState) chooseEntering() (int, float64) {
	if st.pricing == PricingDevex && !st.bland {
		return st.chooseEnteringDevex()
	}
	return st.chooseEnteringDantzig()
}

// chooseEnteringDantzig is the exact classic rule: scan all n columns for
// the largest reduced-cost violation (first eligible index under Bland).
// The hot path folds each column's status into the maintained pricing sign
// (see initPricingSigns): score = psign_j·d_j is bit-identical to the
// branchy per-status computation ((−1)·d and (+1)·d are exact), ineligible
// columns carry sign 0 and can never beat the tolerance, and the strict >
// keeps the same lowest-index tie-breaking. Free columns need a per-sign
// direction choice that a single multiplier cannot express, so problems
// that have any fall back to the classification scan.
func (st *tableauState) chooseEnteringDantzig() (int, float64) {
	if st.hasFree {
		return st.chooseEnteringClassify()
	}
	d := st.d[:st.n]
	ps := st.psign[:st.n]
	ps = ps[:len(d)]
	if st.bland {
		for j, dj := range d {
			if ps[j]*dj > tolReduced {
				return j, -ps[j] // first eligible index
			}
		}
		return -1, 0
	}
	best, bestScore := -1, tolReduced
	for j, dj := range d {
		if s := ps[j] * dj; s > bestScore {
			best, bestScore = j, s
		}
	}
	if best < 0 {
		return -1, 0
	}
	return best, -ps[best]
}

// chooseEnteringClassify is the classification form of the Dantzig scan,
// kept for problems with free variables (none of the repo's LPs have any,
// but the solver stays general).
func (st *tableauState) chooseEnteringClassify() (int, float64) {
	best, bestScore, bestDir := -1, tolReduced, 0.0
	for j := 0; j < st.n; j++ {
		if st.status[j] == basic || st.lo[j] == st.hi[j] {
			continue
		}
		dj := st.d[j]
		var score, dir float64
		switch st.status[j] {
		case atLower:
			score, dir = -dj, 1
		case atUpper:
			score, dir = dj, -1
		case freeZero:
			if dj < 0 {
				score, dir = -dj, 1
			} else {
				score, dir = dj, -1
			}
		}
		if score <= tolReduced {
			continue
		}
		if st.bland {
			return j, dir // first eligible index
		}
		if score > bestScore {
			best, bestScore, bestDir = j, score, dir
		}
	}
	return best, bestDir
}

// pricingSign is the per-column multiplier of the fast Dantzig scan:
// psign_j·d_j reproduces the reduced-cost violation score exactly
// (atLower → −d_j, atUpper → +d_j) and the entering direction is −psign_j.
// Basic and fixed columns get 0 so they can never price in; free columns
// also get 0 and force the fallback scan via hasFree.
func pricingSign(s varStatus, lo, hi float64) float64 {
	if s == basic || lo == hi {
		return 0
	}
	switch s {
	case atLower:
		return -1
	case atUpper:
		return 1
	default:
		return 0
	}
}

// initPricingSigns (re)derives every column's pricing sign from its status
// and bounds. Called at each phase start; pivots and bound flips maintain
// the array incrementally afterwards.
func (st *tableauState) initPricingSigns() {
	st.psign = f64buf(st.psign, st.n)
	st.hasFree = false
	for j := 0; j < st.n; j++ {
		st.psign[j] = pricingSign(st.status[j], st.lo[j], st.hi[j])
		if st.status[j] == freeZero && st.lo[j] != st.hi[j] {
			st.hasFree = true
		}
	}
}

// gatherColumn copies the entering column's in-extent entries into colBuf,
// so the ratio test, basic-value update, bound flips, and the pivot's row
// multipliers read it sequentially instead of each re-walking the strided
// tableau. Entries outside a row's extent are exact zeros and are never
// read (every consumer repeats the extent check), so they are not written.
func (st *tableauState) gatherColumn(enter int) {
	col := st.colBuf
	e32 := int32(enter)
	for i := 0; i < st.m; i++ {
		if e32 < st.extLo[i] || e32 >= st.extHi[i] {
			continue
		}
		col[i] = st.a[i*st.stride+enter]
	}
}

// ratioTest determines how far the entering variable can move. It returns
// flip=true when the binding limit is the entering variable's own opposite
// bound, otherwise the leaving row index and the step length. Rows whose
// extent excludes the entering column hold an exact zero there and are
// skipped without touching the tableau. As a side effect it gathers the
// entering column into colBuf for the rest of the pivot.
func (st *tableauState) ratioTest(enter int, dir float64) (flip bool, leaveRow int, theta float64) {
	st.gatherColumn(enter)
	theta = Inf
	// The entering variable's own range.
	if !math.IsInf(st.lo[enter], -1) && !math.IsInf(st.hi[enter], 1) {
		theta = st.hi[enter] - st.lo[enter]
	}
	flip = true
	leaveRow = -1
	bestPiv := 0.0
	e32 := int32(enter)
	for i := 0; i < st.m; i++ {
		if e32 < st.extLo[i] || e32 >= st.extHi[i] {
			continue
		}
		t := st.colBuf[i]
		rate := -dir * t // d(xB_i)/dθ
		var lim float64
		switch {
		case rate > tolPivot:
			if math.IsInf(st.hi[st.basis[i]], 1) {
				continue
			}
			lim = (st.hi[st.basis[i]] - st.xB[i]) / rate
		case rate < -tolPivot:
			if math.IsInf(st.lo[st.basis[i]], -1) {
				continue
			}
			lim = (st.xB[i] - st.lo[st.basis[i]]) / -rate
		default:
			continue
		}
		if lim < -tolFeas {
			lim = 0
		}
		replace := false
		if lim < theta-tolFeas {
			replace = true
		} else if lim < theta+tolFeas && leaveRow >= 0 {
			// Tie-break on pivot magnitude for stability, or on smallest
			// basis index under Bland's rule.
			if st.bland {
				replace = st.basis[i] < st.basis[leaveRow]
			} else {
				replace = math.Abs(t) > bestPiv
			}
		} else if lim < theta+tolFeas && leaveRow < 0 && lim <= theta {
			replace = true
		}
		if replace {
			theta = math.Min(theta, math.Max(lim, 0))
			leaveRow = i
			bestPiv = math.Abs(t)
			flip = false
		}
	}
	if leaveRow < 0 && math.IsInf(theta, 1) {
		return false, -1, Inf // unbounded
	}
	return flip, leaveRow, theta
}

// updateBasics applies the step to every basic value, including the leaving
// row: the leaving variable lands exactly on the bound it hit, which pivot
// then uses to classify it before the entering variable takes its slot.
func (st *tableauState) updateBasics(enter int, dir, theta float64) {
	if theta == 0 {
		return
	}
	e32 := int32(enter)
	for i := 0; i < st.m; i++ {
		if e32 < st.extLo[i] || e32 >= st.extHi[i] {
			continue // exact zero column entry
		}
		st.xB[i] -= dir * theta * st.colBuf[i]
	}
}

// runGap is the widest zero-gap bridged into a nonzero run of the scaled
// pivot row. Bridged zeros are eliminated like any dense column (an exact
// no-op), trading a little redundant arithmetic for long contiguous runs
// whose inner loops the compiler keeps bounds-check-free.
const runGap = 8

// pivot makes column enter basic in row r with the entering value entVal,
// performing the row elimination on the tableau and the reduced-cost row.
// The scaled pivot row's nonzero columns are packed once into contiguous
// runs and every elimination walks only those slices; the update order
// over columns is ascending, exactly as the dense loop's, so all produced
// values are bit-identical.
func (st *tableauState) pivot(r, enter int, entVal float64) {
	leave := st.basis[r]
	// Classify the leaving variable at whichever bound it reached.
	lv := st.xB[r] // value before replacement, already stepped to its bound
	if !math.IsInf(st.lo[leave], -1) && math.Abs(lv-st.lo[leave]) <= math.Abs(lv-st.hi[leave]) {
		st.status[leave] = atLower
	} else if !math.IsInf(st.hi[leave], 1) {
		st.status[leave] = atUpper
	} else {
		st.status[leave] = atLower // free variable leaving: pin at lower (finite by construction)
	}
	st.psign[leave] = pricingSign(st.status[leave], st.lo[leave], st.hi[leave])

	prow := st.row(r)
	piv := prow[enter]
	inv := 1 / piv
	exLo, exHi := int(st.extLo[r]), int(st.extHi[r])
	runs := st.runs[:0]
	curStart, lastNz := -1, -1
	for j := exLo; j < exHi; j++ {
		v := prow[j] * inv
		prow[j] = v
		if v != 0 {
			if curStart < 0 {
				curStart = j
			} else if j-lastNz > runGap {
				runs = append(runs, int32(curStart), int32(lastNz+1))
				curStart = j
			}
			lastNz = j
		}
	}
	if curStart >= 0 {
		runs = append(runs, int32(curStart), int32(lastNz+1))
	}
	st.runs = runs

	e32 := int32(enter)
	for i := 0; i < st.m; i++ {
		if i == r {
			continue
		}
		if e32 < st.extLo[i] || e32 >= st.extHi[i] {
			continue // exact zero in the entering column
		}
		f := st.colBuf[i]
		if f == 0 {
			continue
		}
		ib := i * st.stride
		ri := st.a[ib : ib+st.n]
		for k := 0; k < len(runs); k += 2 {
			s, e := int(runs[k]), int(runs[k+1])
			axpyNeg(f, prow[s:e], ri[s:e])
		}
		ri[enter] = 0 // exact zero to stop drift
		// Fill-in can only land on the pivot row's extent: union it.
		if int(st.extLo[i]) > exLo {
			st.extLo[i] = int32(exLo)
		}
		if int(st.extHi[i]) < exHi {
			st.extHi[i] = int32(exHi)
		}
	}
	if f := st.d[enter]; f != 0 {
		d := st.d
		for k := 0; k < len(runs); k += 2 {
			s, e := int(runs[k]), int(runs[k+1])
			axpyNeg(f, prow[s:e], d[s:e])
		}
		d[enter] = 0
	}
	if st.pricing == PricingDevex {
		st.updateDevexWeights(r, enter, inv)
	}
	st.basis[r] = enter
	st.status[enter] = basic
	st.psign[enter] = 0
	st.xB[r] = entVal
	st.dFresh = false
	st.stats.Pivots++
}

// finish extracts the solution vector, objective and row duals. With reuse
// the Solution and its vectors live in ws and are overwritten by the next
// solve through ws; otherwise they are freshly allocated.
func (p *Problem) finish(st *tableauState, status Status, ws *Workspace, reuse bool) (*Solution, error) {
	var sol *Solution
	if reuse {
		sol = &ws.sol
		*sol = Solution{Status: status, Iterations: st.iters}
	} else {
		sol = &Solution{Status: status, Iterations: st.iters}
	}
	if status != Optimal {
		serr := &StatusError{Status: status}
		if status == Canceled && st.ctx != nil {
			serr.cause = st.ctx.Err()
		}
		return sol, serr
	}
	var x []float64
	if reuse {
		x = ws.f64(ws.solX, st.n)
		ws.solX = x
		clear(x)
	} else {
		x = make([]float64, st.n)
	}
	for j := 0; j < st.n; j++ {
		if st.status[j] != basic {
			x[j] = nonbasicValue(st.status[j], st.lo[j], st.hi[j])
		}
	}
	for i, b := range st.basis {
		x[b] = st.xB[i]
	}
	sol.x = x[:st.nStruct]
	obj := 0.0
	for j := 0; j < st.nStruct; j++ {
		obj += p.cost[j] * sol.x[j]
	}
	sol.Objective = obj

	// Row duals from the slack columns' reduced costs. Rows scaled by
	// σ_i = ±1 during the artificial setup cancel out: the internal dual
	// ŷ_i = −σ_i·d_slack_i lives in the scaled frame, and converting back
	// to the user frame multiplies by σ_i again, so y_i = −d_slack_i
	// always. The user-facing dual also flips sign for Maximize.
	// Optimality implies d was just fully recomputed (the verification
	// sweep), so the refresh only runs if something invalidated it since.
	if !st.dFresh {
		st.recomputeReducedCosts()
	}
	sign := 1.0
	if p.sense == Maximize {
		sign = -1
	}
	var duals []float64
	if reuse {
		duals = ws.f64(ws.solDuals, st.m)
		ws.solDuals = duals
	} else {
		duals = make([]float64, st.m)
	}
	for i := 0; i < st.m; i++ {
		duals[i] = sign * -st.d[st.nStruct+i]
	}
	sol.duals = duals
	return sol, nil
}

// verifySolution independently re-checks an Optimal solution against the
// original problem data: every value finite and inside its bounds, every
// row residual within tolVerify of its right-hand side(s), relative to the
// row's magnitude. It shares no state with the tableau, so tableau drift
// (accumulated pivot round-off) cannot hide from it.
func (p *Problem) verifySolution(sol *Solution) error {
	for j, x := range sol.x {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("variable %d (%q) is non-finite: %g", j, p.names[j], x)
		}
		scale := 1 + math.Abs(x)
		if x < p.lo[j]-tolVerify*scale || x > p.hi[j]+tolVerify*scale {
			return fmt.Errorf("variable %d (%q) = %g outside bounds [%g, %g]", j, p.names[j], x, p.lo[j], p.hi[j])
		}
	}
	for r := range p.rows {
		rw := &p.rows[r]
		ax, mag := 0.0, 1+math.Abs(rw.rhs)
		for _, t := range rw.terms {
			v := t.Coef * sol.x[t.Var]
			ax += v
			mag += math.Abs(v)
		}
		tol := tolVerify * mag
		var bad bool
		switch {
		case rw.isRange:
			bad = ax < rw.rangeLo-tol || ax > rw.rhs+tol
		case rw.op == LE:
			bad = ax > rw.rhs+tol
		case rw.op == GE:
			bad = ax < rw.rhs-tol
		default: // EQ
			bad = math.Abs(ax-rw.rhs) > tol
		}
		if bad {
			return fmt.Errorf("row %d residual: a·x = %g violates %s %g (tol %g)", r, ax, opString(rw), rw.rhs, tol)
		}
	}
	return nil
}

func opString(rw *row) string {
	if rw.isRange {
		return fmt.Sprintf("range [%g, ·] ≤", rw.rangeLo)
	}
	switch rw.op {
	case LE:
		return "≤"
	case GE:
		return "≥"
	default:
		return "="
	}
}

// rescaledRetry is the last numerical line of defense: the returned basis
// failed verification, so the problem is re-solved once on a copy whose
// rows are equilibrated by exact powers of two (no rounding introduced)
// and whose inequality right-hand sides are relaxed by a tiny
// deterministic slack that preserves feasibility. The retry's solution
// must pass verification against the ORIGINAL problem; otherwise the
// solve fails with an error wrapping ErrNumerical.
//
// The retry always allocates its Solution fresh (never aliasing ws), so
// orig — which may live in ws on the SolveInto path — survives the retry
// solve for forensic return.
func (p *Problem) rescaledRetry(ctx context.Context, ws *Workspace, orig *Solution, verr error) (*Solution, error) {
	q := p.rescaledCopy()
	sol, _, err := q.solveOnce(ctx, ws, false, false)
	if err != nil && sol.Status == IterLimit {
		sol, _, err = q.solveOnce(ctx, ws, true, false)
	}
	if err != nil || p.verifySolution(sol) != nil {
		// Keep the original (claimed-optimal) basis for forensics; the
		// error says its numbers cannot be trusted.
		return orig, fmt.Errorf("%w: %w: %v", ErrNotOptimal, ErrNumerical, verr)
	}
	// Undo the row scaling on the duals: row i was multiplied by s_i, so
	// its shadow price w.r.t. the original rhs is s_i times the scaled one.
	for i, s := range q.retryRowScale {
		sol.duals[i] *= s
	}
	// Recompute the objective against the exact original costs (the copy
	// shares them, but keep the contract explicit).
	obj := 0.0
	for j := range sol.x {
		obj += p.cost[j] * sol.x[j]
	}
	sol.Objective = obj
	sol.Rescaled = true
	return sol, nil
}

// rescaledCopy builds the equilibrated, slightly relaxed clone used by
// rescaledRetry. Row scale factors are exact powers of two, so the scaled
// coefficients are bit-exact multiples and the conditioning change is the
// only difference the simplex sees; the RHS relaxation (1e-9 relative)
// only ever widens the feasible set.
func (p *Problem) rescaledCopy() *Problem {
	q := &Problem{
		sense:   p.sense,
		cost:    p.cost,
		lo:      p.lo,
		hi:      p.hi,
		names:   p.names,
		MaxIter: p.MaxIter,
		Pricing: p.Pricing,
		Method:  p.Method,
		// WarmStart stays off: the retry's scaled coefficients could never
		// match the retained signature anyway.
	}
	q.rows = make([]row, len(p.rows))
	q.retryRowScale = make([]float64, len(p.rows))
	for r := range p.rows {
		rw := p.rows[r]
		maxAbs := 0.0
		for _, t := range rw.terms {
			if a := math.Abs(t.Coef); a > maxAbs {
				maxAbs = a
			}
		}
		s := 1.0
		if maxAbs > 0 && !math.IsInf(maxAbs, 0) {
			// Exact power-of-two equilibration: s·maxAbs ∈ [1, 2).
			s = math.Exp2(float64(-math.Ilogb(maxAbs)))
		}
		const relax = 1e-9
		terms := make([]Term, len(rw.terms))
		for k, t := range rw.terms {
			terms[k] = Term{Var: t.Var, Coef: t.Coef * s}
		}
		nr := row{terms: terms, op: rw.op, isRange: rw.isRange}
		switch {
		case rw.isRange:
			d := relax * (1 + math.Max(math.Abs(rw.rangeLo), math.Abs(rw.rhs)))
			nr.rangeLo = (rw.rangeLo - d) * s
			nr.rhs = (rw.rhs + d) * s
		case rw.op == LE:
			nr.rhs = (rw.rhs + relax*(1+math.Abs(rw.rhs))) * s
		case rw.op == GE:
			nr.rhs = (rw.rhs - relax*(1+math.Abs(rw.rhs))) * s
		default: // EQ: perturbing an equality can destroy feasibility; keep it.
			nr.rhs = rw.rhs * s
		}
		q.rows[r] = nr
		q.retryRowScale[r] = s
	}
	return q
}
