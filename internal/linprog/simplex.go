package linprog

import (
	"context"
	"fmt"
	"math"
)

// Numerical tolerances for the simplex. The LPs in this repository are well
// scaled (powers in kW, temperatures in °C, rates in tasks/s), so fixed
// tolerances are adequate.
const (
	tolReduced   = 1e-9 // reduced-cost optimality tolerance
	tolPivot     = 1e-9 // smallest acceptable pivot magnitude
	tolFeas      = 1e-7 // bound/feasibility tolerance
	tolVerify    = 1e-6 // relative residual tolerance for solution verification
	refreshEvery = 256  // recompute the reduced-cost row every this many pivots
	// ctxCheckEvery bounds how many pivots run between cooperative
	// cancellation checks; each check is one atomic load inside ctx.Err.
	ctxCheckEvery = 64
)

type varStatus int8

const (
	atLower varStatus = iota
	atUpper
	basic
	freeZero // nonbasic free variable pinned at 0
)

// tableauState is the mutable state of one Solve call.
type tableauState struct {
	m, n int // rows, total columns (structural + slack + artificial)

	t      [][]float64 // m×n working tableau, starts as the (row-scaled) constraint matrix
	xB     []float64   // current values of basic variables, per row
	basis  []int       // basic variable per row
	status []varStatus // per column
	lo, hi []float64   // per column bounds
	cost   []float64   // current phase objective (minimization)
	d      []float64   // reduced costs, maintained incrementally

	nStruct int // number of structural variables
	nArt    int
	flipped []bool // rows scaled by −1 during artificial setup
	iters   int
	maxIter int
	bland   bool
	degen   int // consecutive degenerate pivots, triggers Bland's rule

	// forceBland pins Bland's rule on from the first pivot (the
	// anti-cycling restart); maxDegenRun records the longest run of
	// consecutive degenerate pivots, the stall evidence that classifies an
	// exhausted iteration budget as cycling.
	forceBland  bool
	maxDegenRun int
	// ctx, when non-nil, is polled every ctxCheckEvery pivots for
	// cooperative cancellation.
	ctx context.Context
}

// Workspace holds the reusable buffers of repeated Solve calls. Solving
// through a Workspace avoids reallocating the dense tableau every time,
// which matters when one problem skeleton is solved hundreds of times with
// patched coefficients (the CRAC outlet-temperature search). The zero
// value is ready to use; a Workspace is NOT safe for concurrent use — give
// each goroutine its own.
type Workspace struct {
	t       [][]float64
	lo, hi  []float64
	status  []varStatus
	basis   []int
	flipped []bool
	xB      []float64
	rhs     []float64
	cost    []float64
	d       []float64
}

// stash saves the (possibly grown) buffers of a finished solve back into
// the workspace for the next call.
func (ws *Workspace) stash(st *tableauState) {
	ws.t = st.t
	ws.lo, ws.hi = st.lo, st.hi
	ws.status = st.status
	ws.basis = st.basis
	ws.flipped = st.flipped
	ws.xB = st.xB
	ws.cost = st.cost
	ws.d = st.d
}

// f64buf returns a length-n float64 slice backed by buf when capacity
// allows, without clearing the contents.
func f64buf(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}

// Solve optimizes the problem and returns the solution. A non-Optimal
// outcome is reported both in Solution.Status and as an error wrapping
// ErrNotOptimal, so callers may either branch on the status or simply
// propagate the error.
func (p *Problem) Solve() (*Solution, error) {
	return p.SolveWithContext(nil, nil)
}

// SolveContext is Solve under cooperative cancellation: the context is
// polled every few dozen pivots and a done context aborts the solve with
// status Canceled (the error unwraps to ctx.Err()).
func (p *Problem) SolveContext(ctx context.Context) (*Solution, error) {
	return p.SolveWithContext(ctx, nil)
}

// SolveWith is Solve reusing the buffers of ws (nil behaves like Solve).
// The returned Solution does not alias workspace memory, so it stays valid
// across subsequent SolveWith calls.
func (p *Problem) SolveWith(ws *Workspace) (*Solution, error) {
	return p.SolveWithContext(nil, ws)
}

// SolveWithContext is the full-control entry point: ctx (may be nil) is
// polled for cancellation, ws (may be nil) donates tableau buffers.
//
// Beyond the plain simplex run it layers three self-healing guards:
//
//  1. A problem marked malformed at insertion time (NaN/Inf data) is
//     re-validated and rejected with status Malformed before any pivoting.
//  2. An exhausted iteration budget triggers one full restart under
//     Bland's anti-cycling rule; if the restart also exhausts the budget
//     while stalling on degenerate pivots, the error wraps ErrCycling.
//  3. Every Optimal basis is verified against the original problem data
//     (finite values, bounds, primal residuals). A failed verification
//     triggers one deterministic retry on a row-equilibrated copy with a
//     tiny feasibility-preserving RHS relaxation; if that solution fails
//     verification too, the error wraps ErrNumerical.
//
// The guards only engage on failure, so healthy solves return bit-identical
// results to the unguarded simplex.
func (p *Problem) SolveWithContext(ctx context.Context, ws *Workspace) (*Solution, error) {
	if ws == nil {
		ws = &Workspace{}
	}
	if p.defect != nil {
		// Insertion noted a defect, but SetRHS/SetCost may have overwritten
		// the bad value since; only reject if the problem is still sick.
		if err := p.validate(); err != nil {
			return &Solution{Status: Malformed},
				&StatusError{Status: Malformed, cause: fmt.Errorf("%w: %v", ErrMalformed, err)}
		}
		p.defect = nil
	}

	sol, stalled, err := p.solveOnce(ctx, ws, false)
	if err != nil && sol.Status == IterLimit {
		// The budget ran out; re-run from scratch with Bland's rule pinned
		// on, which cannot cycle (it may still be slower than the budget).
		rsol, rstalled, rerr := p.solveOnce(ctx, ws, true)
		if rerr == nil {
			rsol.Restarted = true
		} else if rsol.Status == IterLimit && (stalled || rstalled) {
			rerr = &StatusError{Status: IterLimit, cause: ErrCycling}
		}
		sol, err = rsol, rerr
	}
	if err != nil {
		return sol, err
	}
	if verr := p.verifySolution(sol); verr != nil {
		return p.rescaledRetry(ctx, ws, sol, verr)
	}
	return sol, nil
}

// solveOnce runs both simplex phases once. stalled reports whether the run
// showed cycling-like behavior (a long streak of consecutive degenerate
// pivots).
func (p *Problem) solveOnce(ctx context.Context, ws *Workspace, forceBland bool) (*Solution, bool, error) {
	if ctx != nil {
		if cerr := ctx.Err(); cerr != nil {
			return &Solution{Status: Canceled}, false, &StatusError{Status: Canceled, cause: cerr}
		}
	}
	st := p.newState(ws)
	st.ctx = ctx
	if forceBland {
		st.bland, st.forceBland = true, true
	}
	defer ws.stash(st)

	// Phase 1: minimize the sum of artificial variables.
	if st.nArt > 0 {
		st.setPhase1Costs()
		status := st.iterate()
		if status != Optimal {
			sol, err := p.finish(st, status)
			return sol, st.stalled(), err
		}
		if st.phase1Objective() > 1e-6 {
			sol, err := p.finish(st, Infeasible)
			return sol, st.stalled(), err
		}
		st.evictArtificials()
	}

	// Phase 2: the real objective.
	st.setPhase2Costs(p)
	status := st.iterate()
	sol, err := p.finish(st, status)
	return sol, st.stalled(), err
}

// stalled reports whether the run's longest degenerate-pivot streak is
// long enough to suggest cycling rather than an honestly large LP.
func (st *tableauState) stalled() bool {
	return st.maxDegenRun > st.m+16
}

// newState builds the initial tableau, slacks, artificials and starting
// basis for the problem, drawing buffers from ws.
func (p *Problem) newState(ws *Workspace) *tableauState {
	m := len(p.rows)
	nStruct := len(p.cost)

	st := &tableauState{
		m:       m,
		nStruct: nStruct,
	}

	// Column layout: [structural | one slack per row | artificials as needed].
	nCols := nStruct + m // artificials appended later
	st.lo = append(ws.lo[:0], p.lo...)
	st.hi = append(ws.hi[:0], p.hi...)
	for _, r := range p.rows {
		slo, shi := slackBounds(r)
		st.lo = append(st.lo, slo)
		st.hi = append(st.hi, shi)
	}

	// Initial nonbasic statuses and values for structural + slack columns.
	if cap(ws.status) >= nCols {
		st.status = ws.status[:nCols]
	} else {
		st.status = make([]varStatus, nCols)
	}
	for j := 0; j < nCols; j++ {
		st.status[j] = initialStatus(st.lo[j], st.hi[j])
	}

	// Dense rows, zeroed before the term fill when reused.
	if cap(ws.t) >= m {
		st.t = ws.t[:m]
	} else {
		st.t = make([][]float64, m, m+8)
		copy(st.t, ws.t)
	}
	rhs := f64buf(ws.rhs, m)
	ws.rhs = rhs
	for i, r := range p.rows {
		rowv := f64buf(st.t[i], nCols)
		for j := range rowv {
			rowv[j] = 0
		}
		for _, tm := range r.terms {
			rowv[tm.Var] += tm.Coef
		}
		rowv[nStruct+i] = 1 // slack
		st.t[i] = rowv
		rhs[i] = r.rhs
	}

	// Residuals at the initial nonbasic point decide the starting basis.
	if cap(ws.basis) >= m {
		st.basis = ws.basis[:m]
	} else {
		st.basis = make([]int, m)
	}
	if cap(ws.flipped) >= m {
		st.flipped = ws.flipped[:m]
		for i := range st.flipped {
			st.flipped[i] = false
		}
	} else {
		st.flipped = make([]bool, m)
	}
	st.xB = f64buf(ws.xB, m)
	st.cost = ws.cost
	st.d = ws.d
	for i := 0; i < m; i++ {
		res := rhs[i]
		for j := 0; j < nCols; j++ {
			res -= st.t[i][j] * nonbasicValue(st.status[j], st.lo[j], st.hi[j])
		}
		slack := nStruct + i
		if res >= st.lo[slack]-tolFeas && res <= st.hi[slack]+tolFeas {
			// The slack itself can carry the residual: no artificial needed.
			st.basis[i] = slack
			st.xB[i] = clamp(res, st.lo[slack], st.hi[slack])
			st.status[slack] = basic
			continue
		}
		// Need an artificial. Scale the row so the artificial is +1 with a
		// non-negative basic value.
		if res < 0 {
			for j := range st.t[i] {
				st.t[i][j] = -st.t[i][j]
			}
			res = -res
			st.flipped[i] = true
		}
		art := len(st.lo)
		st.lo = append(st.lo, 0)
		st.hi = append(st.hi, Inf)
		st.status = append(st.status, basic)
		for k := 0; k < m; k++ {
			if k == i {
				st.t[k] = append(st.t[k], 1)
			} else {
				st.t[k] = append(st.t[k], 0)
			}
		}
		st.basis[i] = art
		st.xB[i] = res
		st.nArt++
	}
	st.n = len(st.lo)
	// Artificial columns were appended after some rows already existed;
	// normalize row lengths (rows created before artificials are shorter).
	for i := range st.t {
		for len(st.t[i]) < st.n {
			st.t[i] = append(st.t[i], 0)
		}
	}

	st.maxIter = p.MaxIter
	if st.maxIter == 0 {
		st.maxIter = 200*(st.m+st.n) + 2000
	}
	return st
}

func slackBounds(r row) (lo, hi float64) {
	if r.isRange {
		return 0, r.rhs - r.rangeLo
	}
	switch r.op {
	case LE:
		return 0, Inf
	case GE:
		return math.Inf(-1), 0
	case EQ:
		return 0, 0
	default:
		panic(fmt.Sprintf("linprog: unknown op %d", r.op))
	}
}

func initialStatus(lo, hi float64) varStatus {
	switch {
	case !math.IsInf(lo, -1):
		return atLower
	case !math.IsInf(hi, 1):
		return atUpper
	default:
		return freeZero
	}
}

func nonbasicValue(s varStatus, lo, hi float64) float64 {
	switch s {
	case atLower:
		return lo
	case atUpper:
		return hi
	default:
		return 0
	}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func (st *tableauState) setPhase1Costs() {
	st.cost = f64buf(st.cost, st.n)
	for j := range st.cost {
		st.cost[j] = 0
	}
	for j := st.n - st.nArt; j < st.n; j++ {
		st.cost[j] = 1
	}
	st.recomputeReducedCosts()
}

func (st *tableauState) setPhase2Costs(p *Problem) {
	st.cost = f64buf(st.cost, st.n)
	for j := range st.cost {
		st.cost[j] = 0
	}
	sign := 1.0
	if p.sense == Maximize {
		sign = -1 // internally always minimize
	}
	for j := 0; j < st.nStruct; j++ {
		st.cost[j] = sign * p.cost[j]
	}
	// Artificials must never re-enter: pin them to 0.
	for j := st.n - st.nArt; j < st.n; j++ {
		st.lo[j], st.hi[j] = 0, 0
		if st.status[j] != basic {
			st.status[j] = atLower
		}
	}
	st.recomputeReducedCosts()
}

func (st *tableauState) phase1Objective() float64 {
	sum := 0.0
	for i, b := range st.basis {
		if b >= st.n-st.nArt {
			sum += st.xB[i]
		}
	}
	return sum
}

// evictArtificials pivots basic artificial variables (necessarily at value
// ~0 after a feasible phase 1) out of the basis where possible. Rows whose
// non-artificial entries are all zero are redundant and keep their
// artificial basic at 0, pinned by its [0,0] bounds.
func (st *tableauState) evictArtificials() {
	for i := 0; i < st.m; i++ {
		if st.basis[i] < st.n-st.nArt {
			continue
		}
		pivCol, pivAbs := -1, tolPivot
		for j := 0; j < st.n-st.nArt; j++ {
			if st.status[j] == basic || st.lo[j] == st.hi[j] {
				continue
			}
			if a := math.Abs(st.t[i][j]); a > pivAbs {
				pivAbs, pivCol = a, j
			}
		}
		if pivCol >= 0 {
			st.pivot(i, pivCol, nonbasicValue(st.status[pivCol], st.lo[pivCol], st.hi[pivCol]))
		}
	}
}

// recomputeReducedCosts rebuilds the reduced-cost row d from scratch:
// d_j = c_j − Σ_i c_{B(i)}·T[i][j].
func (st *tableauState) recomputeReducedCosts() {
	st.d = append(st.d[:0], st.cost...)
	for i := 0; i < st.m; i++ {
		cb := st.cost[st.basis[i]]
		if cb == 0 {
			continue
		}
		row := st.t[i]
		for j := 0; j < st.n; j++ {
			st.d[j] -= cb * row[j]
		}
	}
}

// iterate runs simplex pivots until optimality, unboundedness, the
// iteration budget, or cancellation.
func (st *tableauState) iterate() Status {
	sinceRefresh := 0
	sinceCtx := 0
	for ; st.iters < st.maxIter; st.iters++ {
		if st.ctx != nil {
			if sinceCtx++; sinceCtx >= ctxCheckEvery {
				sinceCtx = 0
				if st.ctx.Err() != nil {
					return Canceled
				}
			}
		}
		if sinceRefresh >= refreshEvery {
			st.recomputeReducedCosts()
			sinceRefresh = 0
		}
		enter, dir := st.chooseEntering()
		if enter < 0 {
			return Optimal
		}
		flip, leaveRow, theta := st.ratioTest(enter, dir)
		if math.IsInf(theta, 1) {
			return Unbounded
		}
		if theta <= tolFeas {
			st.degen++
			if st.degen > st.maxDegenRun {
				st.maxDegenRun = st.degen
			}
			if st.degen > 2*(st.m+64) {
				st.bland = true
			}
		} else {
			st.degen = 0
			if st.bland && !st.forceBland {
				st.bland = false
			}
		}
		if flip {
			// Bound flip: the entering variable runs to its other bound;
			// no basis change.
			col := st.colCache(enter)
			for i := 0; i < st.m; i++ {
				st.xB[i] -= dir * theta * col[i]
			}
			if st.status[enter] == atLower {
				st.status[enter] = atUpper
			} else {
				st.status[enter] = atLower
			}
			sinceRefresh++
			continue
		}
		entVal := nonbasicValue(st.status[enter], st.lo[enter], st.hi[enter]) + dir*theta
		st.updateBasics(enter, dir, theta)
		st.pivot(leaveRow, enter, entVal)
		sinceRefresh++
	}
	return IterLimit
}

// chooseEntering picks the entering column and its direction (+1 =
// increasing, −1 = decreasing), or (-1, 0) at optimality.
func (st *tableauState) chooseEntering() (int, float64) {
	best, bestScore, bestDir := -1, tolReduced, 0.0
	for j := 0; j < st.n; j++ {
		if st.status[j] == basic || st.lo[j] == st.hi[j] {
			continue
		}
		dj := st.d[j]
		var score, dir float64
		switch st.status[j] {
		case atLower:
			score, dir = -dj, 1
		case atUpper:
			score, dir = dj, -1
		case freeZero:
			if dj < 0 {
				score, dir = -dj, 1
			} else {
				score, dir = dj, -1
			}
		}
		if score <= tolReduced {
			continue
		}
		if st.bland {
			return j, dir // first eligible index
		}
		if score > bestScore {
			best, bestScore, bestDir = j, score, dir
		}
	}
	return best, bestDir
}

func (st *tableauState) colCache(j int) []float64 {
	col := make([]float64, st.m)
	for i := 0; i < st.m; i++ {
		col[i] = st.t[i][j]
	}
	return col
}

// ratioTest determines how far the entering variable can move. It returns
// flip=true when the binding limit is the entering variable's own opposite
// bound, otherwise the leaving row index and the step length.
func (st *tableauState) ratioTest(enter int, dir float64) (flip bool, leaveRow int, theta float64) {
	theta = Inf
	// The entering variable's own range.
	if !math.IsInf(st.lo[enter], -1) && !math.IsInf(st.hi[enter], 1) {
		theta = st.hi[enter] - st.lo[enter]
	}
	flip = true
	leaveRow = -1
	bestPiv := 0.0
	for i := 0; i < st.m; i++ {
		t := st.t[i][enter]
		rate := -dir * t // d(xB_i)/dθ
		var lim float64
		switch {
		case rate > tolPivot:
			if math.IsInf(st.hi[st.basis[i]], 1) {
				continue
			}
			lim = (st.hi[st.basis[i]] - st.xB[i]) / rate
		case rate < -tolPivot:
			if math.IsInf(st.lo[st.basis[i]], -1) {
				continue
			}
			lim = (st.xB[i] - st.lo[st.basis[i]]) / -rate
		default:
			continue
		}
		if lim < -tolFeas {
			lim = 0
		}
		replace := false
		if lim < theta-tolFeas {
			replace = true
		} else if lim < theta+tolFeas && leaveRow >= 0 {
			// Tie-break on pivot magnitude for stability, or on smallest
			// basis index under Bland's rule.
			if st.bland {
				replace = st.basis[i] < st.basis[leaveRow]
			} else {
				replace = math.Abs(t) > bestPiv
			}
		} else if lim < theta+tolFeas && leaveRow < 0 && lim <= theta {
			replace = true
		}
		if replace {
			theta = math.Min(theta, math.Max(lim, 0))
			leaveRow = i
			bestPiv = math.Abs(t)
			flip = false
		}
	}
	if leaveRow < 0 && math.IsInf(theta, 1) {
		return false, -1, Inf // unbounded
	}
	return flip, leaveRow, theta
}

// updateBasics applies the step to every basic value, including the leaving
// row: the leaving variable lands exactly on the bound it hit, which pivot
// then uses to classify it before the entering variable takes its slot.
func (st *tableauState) updateBasics(enter int, dir, theta float64) {
	if theta == 0 {
		return
	}
	for i := 0; i < st.m; i++ {
		st.xB[i] -= dir * theta * st.t[i][enter]
	}
}

// pivot makes column enter basic in row r with the entering value entVal,
// performing the row elimination on the tableau and the reduced-cost row.
func (st *tableauState) pivot(r, enter int, entVal float64) {
	leave := st.basis[r]
	// Classify the leaving variable at whichever bound it reached.
	lv := st.xB[r] // value before replacement, already stepped to its bound
	if !math.IsInf(st.lo[leave], -1) && math.Abs(lv-st.lo[leave]) <= math.Abs(lv-st.hi[leave]) {
		st.status[leave] = atLower
	} else if !math.IsInf(st.hi[leave], 1) {
		st.status[leave] = atUpper
	} else {
		st.status[leave] = atLower // free variable leaving: pin at lower (finite by construction)
	}

	piv := st.t[r][enter]
	row := st.t[r]
	inv := 1 / piv
	for j := range row {
		row[j] *= inv
	}
	for i := 0; i < st.m; i++ {
		if i == r {
			continue
		}
		f := st.t[i][enter]
		if f == 0 {
			continue
		}
		// Reslicing to the pivot row's length lets the compiler elide the
		// bounds checks in the hottest loop of the solver.
		ri := st.t[i][:len(row)]
		for j, rv := range row {
			ri[j] -= f * rv
		}
		ri[enter] = 0 // exact zero to stop drift
	}
	f := st.d[enter]
	if f != 0 {
		d := st.d[:len(row)]
		for j, rv := range row {
			d[j] -= f * rv
		}
		d[enter] = 0
	}
	st.basis[r] = enter
	st.status[enter] = basic
	st.xB[r] = entVal
}

// finish extracts the solution vector, objective and row duals.
func (p *Problem) finish(st *tableauState, status Status) (*Solution, error) {
	sol := &Solution{Status: status, Iterations: st.iters}
	if status != Optimal {
		serr := &StatusError{Status: status}
		if status == Canceled && st.ctx != nil {
			serr.cause = st.ctx.Err()
		}
		return sol, serr
	}
	x := make([]float64, st.n)
	for j := 0; j < st.n; j++ {
		if st.status[j] != basic {
			x[j] = nonbasicValue(st.status[j], st.lo[j], st.hi[j])
		}
	}
	for i, b := range st.basis {
		x[b] = st.xB[i]
	}
	sol.x = x[:st.nStruct]
	obj := 0.0
	for j := 0; j < st.nStruct; j++ {
		obj += p.cost[j] * sol.x[j]
	}
	sol.Objective = obj

	// Row duals from the slack columns' reduced costs: with the row
	// possibly scaled by σ_i = ±1, d_slack_i = −σ_i·y_i for the internal
	// minimization; the user-facing dual also flips sign for Maximize.
	st.recomputeReducedCosts()
	sign := 1.0
	if p.sense == Maximize {
		sign = -1
	}
	sol.duals = make([]float64, st.m)
	for i := 0; i < st.m; i++ {
		sigma := 1.0
		if st.flipped[i] {
			sigma = -1
		}
		sol.duals[i] = sign * -sigma * st.d[st.nStruct+i]
	}
	return sol, nil
}

// verifySolution independently re-checks an Optimal solution against the
// original problem data: every value finite and inside its bounds, every
// row residual within tolVerify of its right-hand side(s), relative to the
// row's magnitude. It shares no state with the tableau, so tableau drift
// (accumulated pivot round-off) cannot hide from it.
func (p *Problem) verifySolution(sol *Solution) error {
	for j, x := range sol.x {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("variable %d (%q) is non-finite: %g", j, p.names[j], x)
		}
		scale := 1 + math.Abs(x)
		if x < p.lo[j]-tolVerify*scale || x > p.hi[j]+tolVerify*scale {
			return fmt.Errorf("variable %d (%q) = %g outside bounds [%g, %g]", j, p.names[j], x, p.lo[j], p.hi[j])
		}
	}
	for r := range p.rows {
		rw := &p.rows[r]
		ax, mag := 0.0, 1+math.Abs(rw.rhs)
		for _, t := range rw.terms {
			v := t.Coef * sol.x[t.Var]
			ax += v
			mag += math.Abs(v)
		}
		tol := tolVerify * mag
		var bad bool
		switch {
		case rw.isRange:
			bad = ax < rw.rangeLo-tol || ax > rw.rhs+tol
		case rw.op == LE:
			bad = ax > rw.rhs+tol
		case rw.op == GE:
			bad = ax < rw.rhs-tol
		default: // EQ
			bad = math.Abs(ax-rw.rhs) > tol
		}
		if bad {
			return fmt.Errorf("row %d residual: a·x = %g violates %s %g (tol %g)", r, ax, opString(rw), rw.rhs, tol)
		}
	}
	return nil
}

func opString(rw *row) string {
	if rw.isRange {
		return fmt.Sprintf("range [%g, ·] ≤", rw.rangeLo)
	}
	switch rw.op {
	case LE:
		return "≤"
	case GE:
		return "≥"
	default:
		return "="
	}
}

// rescaledRetry is the last numerical line of defense: the returned basis
// failed verification, so the problem is re-solved once on a copy whose
// rows are equilibrated by exact powers of two (no rounding introduced)
// and whose inequality right-hand sides are relaxed by a tiny
// deterministic slack that preserves feasibility. The retry's solution
// must pass verification against the ORIGINAL problem; otherwise the
// solve fails with an error wrapping ErrNumerical.
func (p *Problem) rescaledRetry(ctx context.Context, ws *Workspace, orig *Solution, verr error) (*Solution, error) {
	q := p.rescaledCopy()
	sol, _, err := q.solveOnce(ctx, ws, false)
	if err != nil && sol.Status == IterLimit {
		sol, _, err = q.solveOnce(ctx, ws, true)
	}
	if err != nil || p.verifySolution(sol) != nil {
		// Keep the original (claimed-optimal) basis for forensics; the
		// error says its numbers cannot be trusted.
		return orig, fmt.Errorf("%w: %w: %v", ErrNotOptimal, ErrNumerical, verr)
	}
	// Undo the row scaling on the duals: row i was multiplied by s_i, so
	// its shadow price w.r.t. the original rhs is s_i times the scaled one.
	for i, s := range q.retryRowScale {
		sol.duals[i] *= s
	}
	// Recompute the objective against the exact original costs (the copy
	// shares them, but keep the contract explicit).
	obj := 0.0
	for j := range sol.x {
		obj += p.cost[j] * sol.x[j]
	}
	sol.Objective = obj
	sol.Rescaled = true
	return sol, nil
}

// rescaledCopy builds the equilibrated, slightly relaxed clone used by
// rescaledRetry. Row scale factors are exact powers of two, so the scaled
// coefficients are bit-exact multiples and the conditioning change is the
// only difference the simplex sees; the RHS relaxation (1e-9 relative)
// only ever widens the feasible set.
func (p *Problem) rescaledCopy() *Problem {
	q := &Problem{
		sense:   p.sense,
		cost:    p.cost,
		lo:      p.lo,
		hi:      p.hi,
		names:   p.names,
		MaxIter: p.MaxIter,
	}
	q.rows = make([]row, len(p.rows))
	q.retryRowScale = make([]float64, len(p.rows))
	for r := range p.rows {
		rw := p.rows[r]
		maxAbs := 0.0
		for _, t := range rw.terms {
			if a := math.Abs(t.Coef); a > maxAbs {
				maxAbs = a
			}
		}
		s := 1.0
		if maxAbs > 0 && !math.IsInf(maxAbs, 0) {
			// Exact power-of-two equilibration: s·maxAbs ∈ [1, 2).
			s = math.Exp2(float64(-math.Ilogb(maxAbs)))
		}
		const relax = 1e-9
		terms := make([]Term, len(rw.terms))
		for k, t := range rw.terms {
			terms[k] = Term{Var: t.Var, Coef: t.Coef * s}
		}
		nr := row{terms: terms, op: rw.op, isRange: rw.isRange}
		switch {
		case rw.isRange:
			d := relax * (1 + math.Max(math.Abs(rw.rangeLo), math.Abs(rw.rhs)))
			nr.rangeLo = (rw.rangeLo - d) * s
			nr.rhs = (rw.rhs + d) * s
		case rw.op == LE:
			nr.rhs = (rw.rhs + relax*(1+math.Abs(rw.rhs))) * s
		case rw.op == GE:
			nr.rhs = (rw.rhs - relax*(1+math.Abs(rw.rhs))) * s
		default: // EQ: perturbing an equality can destroy feasibility; keep it.
			nr.rhs = rw.rhs * s
		}
		q.rows[r] = nr
		q.retryRowScale[r] = s
	}
	return q
}
