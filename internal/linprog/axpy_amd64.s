//go:build amd64

#include "textflag.h"

// func cpuHasAVX2() bool
TEXT ·cpuHasAVX2(SB), NOSPLIT, $0-1
	// CPUID.1:ECX — need OSXSAVE (bit 27) and AVX (bit 28).
	MOVL $1, AX
	XORL CX, CX
	CPUID
	ANDL $0x18000000, CX
	CMPL CX, $0x18000000
	JNE  no
	// XGETBV(0) — OS must enable XMM (bit 1) and YMM (bit 2) state.
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  no
	// CPUID.7.0:EBX bit 5 — AVX2.
	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $0x20, BX
	JZ   no
	MOVB $1, ret+0(FP)
	RET
no:
	MOVB $0, ret+0(FP)
	RET

// func axpyNegAVX2(f float64, x, y []float64)
// y[i] -= f*x[i] for i < len(x). Multiply and subtract round separately
// (VMULPD then VSUBPD — never FMA), matching the scalar loop bit-for-bit.
TEXT ·axpyNegAVX2(SB), NOSPLIT, $0-56
	MOVQ         x_base+8(FP), SI
	MOVQ         y_base+32(FP), DI
	MOVQ         x_len+16(FP), CX
	VBROADCASTSD f+0(FP), Y0
	XORQ         AX, AX
	MOVQ         CX, DX
	ANDQ         $-8, DX

vloop: // two 4-wide lanes per iteration
	CMPQ    AX, DX
	JGE     vtail
	VMOVUPD (SI)(AX*8), Y1
	VMOVUPD 32(SI)(AX*8), Y2
	VMULPD  Y0, Y1, Y1
	VMULPD  Y0, Y2, Y2
	VMOVUPD (DI)(AX*8), Y3
	VMOVUPD 32(DI)(AX*8), Y4
	VSUBPD  Y1, Y3, Y3
	VSUBPD  Y2, Y4, Y4
	VMOVUPD Y3, (DI)(AX*8)
	VMOVUPD Y4, 32(DI)(AX*8)
	ADDQ    $8, AX
	JMP     vloop

vtail: // one 4-wide lane if it fits
	MOVQ    CX, DX
	ANDQ    $-4, DX
	CMPQ    AX, DX
	JGE     stail
	VMOVUPD (SI)(AX*8), Y1
	VMULPD  Y0, Y1, Y1
	VMOVUPD (DI)(AX*8), Y3
	VSUBPD  Y1, Y3, Y3
	VMOVUPD Y3, (DI)(AX*8)
	ADDQ    $4, AX

stail: // scalar remainder — VEX-encoded to avoid SSE/AVX transition stalls
	CMPQ   AX, CX
	JGE    done
	VMOVSD (SI)(AX*8), X1
	VMULSD X0, X1, X1
	VMOVSD (DI)(AX*8), X2
	VSUBSD X1, X2, X2
	VMOVSD X2, (DI)(AX*8)
	INCQ   AX
	JMP    stail

done:
	VZEROUPPER
	RET
