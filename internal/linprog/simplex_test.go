package linprog

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMaximizeSimple2D(t *testing.T) {
	// max 3x + 5y s.t. x ≤ 4; 2y ≤ 12; 3x + 2y ≤ 18 → (2, 6), obj 36.
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, Inf, 3)
	y := p.AddVar("y", 0, Inf, 5)
	p.AddRow(LE, 4, Term{x, 1})
	p.AddRow(LE, 12, Term{y, 2})
	p.AddRow(LE, 18, Term{x, 3}, Term{y, 2})
	sol := solveOK(t, p)
	if !approx(sol.Objective, 36, 1e-8) {
		t.Errorf("objective = %g, want 36", sol.Objective)
	}
	if !approx(sol.Value(x), 2, 1e-8) || !approx(sol.Value(y), 6, 1e-8) {
		t.Errorf("x=%g y=%g, want 2, 6", sol.Value(x), sol.Value(y))
	}
}

func TestMinimizeWithGE(t *testing.T) {
	// min 2x + 3y s.t. x + y ≥ 10; x ≥ 2; y ≥ 3 → x=7, y=3, obj 23.
	p := NewProblem(Minimize)
	x := p.AddVar("x", 2, Inf, 2)
	y := p.AddVar("y", 3, Inf, 3)
	p.AddRow(GE, 10, Term{x, 1}, Term{y, 1})
	sol := solveOK(t, p)
	if !approx(sol.Objective, 23, 1e-8) {
		t.Errorf("objective = %g, want 23", sol.Objective)
	}
	if !approx(sol.Value(x), 7, 1e-8) || !approx(sol.Value(y), 3, 1e-8) {
		t.Errorf("x=%g y=%g, want 7, 3", sol.Value(x), sol.Value(y))
	}
}

func TestEqualityRow(t *testing.T) {
	// max x + 2y s.t. x + y = 5, x ≤ 3 → x=0? no: max → y as large as
	// possible: y=5, x=0, obj 10.
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, 3, 1)
	y := p.AddVar("y", 0, Inf, 2)
	p.AddRow(EQ, 5, Term{x, 1}, Term{y, 1})
	sol := solveOK(t, p)
	if !approx(sol.Objective, 10, 1e-8) {
		t.Errorf("objective = %g, want 10", sol.Objective)
	}
	if !approx(sol.Value(x)+sol.Value(y), 5, 1e-8) {
		t.Errorf("equality violated: %g + %g", sol.Value(x), sol.Value(y))
	}
}

func TestVariableUpperBounds(t *testing.T) {
	// max x + y with x ≤ 1.5 (bound), y ≤ 2 (bound), x + y ≤ 3 → 3.
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, 1.5, 1)
	y := p.AddVar("y", 0, 2, 1)
	p.AddRow(LE, 3, Term{x, 1}, Term{y, 1})
	sol := solveOK(t, p)
	if !approx(sol.Objective, 3, 1e-8) {
		t.Errorf("objective = %g, want 3", sol.Objective)
	}
	if sol.Value(x) > 1.5+1e-9 || sol.Value(y) > 2+1e-9 {
		t.Errorf("bounds violated: x=%g y=%g", sol.Value(x), sol.Value(y))
	}
}

func TestBoundFlipOnly(t *testing.T) {
	// max x with 0 ≤ x ≤ 7 and a vacuous row: solved by a pure bound flip.
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, 7, 1)
	y := p.AddVar("y", 0, 1, 0)
	p.AddRow(LE, 100, Term{x, 1}, Term{y, 1})
	sol := solveOK(t, p)
	if !approx(sol.Value(x), 7, 1e-9) {
		t.Errorf("x = %g, want 7", sol.Value(x))
	}
}

func TestNegativeLowerBounds(t *testing.T) {
	// min x + y with x,y ∈ [-5, 5], x + y ≥ -3 → obj -3.
	p := NewProblem(Minimize)
	x := p.AddVar("x", -5, 5, 1)
	y := p.AddVar("y", -5, 5, 1)
	p.AddRow(GE, -3, Term{x, 1}, Term{y, 1})
	sol := solveOK(t, p)
	if !approx(sol.Objective, -3, 1e-8) {
		t.Errorf("objective = %g, want -3", sol.Objective)
	}
}

func TestFreeVariable(t *testing.T) {
	// min y s.t. y ≥ x - 4, y ≥ -x, x free → x=2, y=-2.
	p := NewProblem(Minimize)
	x := p.AddVar("x", math.Inf(-1), Inf, 0)
	y := p.AddVar("y", math.Inf(-1), Inf, 1)
	p.AddRow(GE, -4, Term{y, 1}, Term{x, -1})
	p.AddRow(GE, 0, Term{y, 1}, Term{x, 1})
	sol := solveOK(t, p)
	if !approx(sol.Objective, -2, 1e-8) {
		t.Errorf("objective = %g, want -2", sol.Objective)
	}
}

func TestRangeRow(t *testing.T) {
	// max x + y with 2 ≤ x + y ≤ 4, x ≤ 3, y ≤ 3 → 4.
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, 3, 1)
	y := p.AddVar("y", 0, 3, 1)
	p.AddRangeRow(2, 4, Term{x, 1}, Term{y, 1})
	sol := solveOK(t, p)
	if !approx(sol.Objective, 4, 1e-8) {
		t.Errorf("objective = %g, want 4", sol.Objective)
	}
	// And minimizing hits the lower side of the range.
	p2 := NewProblem(Minimize)
	x2 := p2.AddVar("x", 0, 3, 1)
	y2 := p2.AddVar("y", 0, 3, 1)
	p2.AddRangeRow(2, 4, Term{x2, 1}, Term{y2, 1})
	sol2 := solveOK(t, p2)
	if !approx(sol2.Objective, 2, 1e-8) {
		t.Errorf("min objective = %g, want 2", sol2.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, Inf, 1)
	p.AddRow(LE, 1, Term{x, 1})
	p.AddRow(GE, 2, Term{x, 1})
	sol, err := p.Solve()
	if !errors.Is(err, ErrNotOptimal) {
		t.Fatalf("err = %v, want ErrNotOptimal", err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want Infeasible", sol.Status)
	}
}

func TestInfeasibleEquality(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVar("x", 0, 1, 1)
	y := p.AddVar("y", 0, 1, 1)
	p.AddRow(EQ, 5, Term{x, 1}, Term{y, 1})
	sol, _ := p.Solve()
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want Infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, Inf, 1)
	y := p.AddVar("y", 0, Inf, 1)
	p.AddRow(GE, 1, Term{x, 1}, Term{y, 1})
	sol, err := p.Solve()
	if err == nil {
		t.Fatal("expected error for unbounded problem")
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want Unbounded", sol.Status)
	}
}

func TestDegenerateLP(t *testing.T) {
	// Classic degenerate corner: multiple constraints meet at the optimum.
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, Inf, 2)
	y := p.AddVar("y", 0, Inf, 1)
	p.AddRow(LE, 4, Term{x, 1})
	p.AddRow(LE, 4, Term{x, 1}, Term{y, 1})
	p.AddRow(LE, 8, Term{x, 2}, Term{y, 1})
	sol := solveOK(t, p)
	if !approx(sol.Objective, 8, 1e-8) {
		t.Errorf("objective = %g, want 8", sol.Objective)
	}
}

// TestBeale is Beale's classic cycling example; the Bland fallback must
// terminate it.
func TestBealeCycling(t *testing.T) {
	p := NewProblem(Minimize)
	x1 := p.AddVar("x1", 0, Inf, -0.75)
	x2 := p.AddVar("x2", 0, Inf, 150)
	x3 := p.AddVar("x3", 0, Inf, -0.02)
	x4 := p.AddVar("x4", 0, Inf, 6)
	p.AddRow(LE, 0, Term{x1, 0.25}, Term{x2, -60}, Term{x3, -0.04}, Term{x4, 9})
	p.AddRow(LE, 0, Term{x1, 0.5}, Term{x2, -90}, Term{x3, -0.02}, Term{x4, 3})
	p.AddRow(LE, 1, Term{x3, 1})
	sol := solveOK(t, p)
	if !approx(sol.Objective, -0.05, 1e-8) {
		t.Errorf("objective = %g, want -0.05", sol.Objective)
	}
}

func TestTransportationProblem(t *testing.T) {
	// 2 suppliers (cap 20, 30) × 3 customers (demand 10, 25, 15),
	// costs: [[2,4,5],[3,1,7]]. Optimal cost: supply c2 from s2 (25×1),
	// c1 from s1 (10×2), c3 from s1 (10×5)+... let's just check against
	// a known optimum of 10*2 + 25*1 + 15*5 with s1 doing c1+c3 (25 ≤ 20
	// fails) — rely on solver consistency instead: verify feasibility and
	// optimality conditions numerically via a brute-force check below.
	p := NewProblem(Minimize)
	cost := [][]float64{{2, 4, 5}, {3, 1, 7}}
	cap := []float64{20, 30}
	dem := []float64{10, 25, 15}
	vars := make([][]int, 2)
	for s := range vars {
		vars[s] = make([]int, 3)
		for c := range vars[s] {
			vars[s][c] = p.AddVar("", 0, Inf, cost[s][c])
		}
	}
	for s, cp := range cap {
		p.AddRow(LE, cp, Term{vars[s][0], 1}, Term{vars[s][1], 1}, Term{vars[s][2], 1})
	}
	for c, d := range dem {
		p.AddRow(EQ, d, Term{vars[0][c], 1}, Term{vars[1][c], 1})
	}
	sol := solveOK(t, p)
	// Optimum: s2→c2:25, s2→c1:5, s1→c1:5, s1→c3:15
	// cost = 25 + 15 + 10 + 75 = 125.
	if !approx(sol.Objective, 125, 1e-7) {
		t.Errorf("objective = %g, want 125", sol.Objective)
	}
	// Demand satisfied exactly.
	for c, d := range dem {
		got := sol.Value(vars[0][c]) + sol.Value(vars[1][c])
		if !approx(got, d, 1e-7) {
			t.Errorf("demand %d: %g, want %g", c, got, d)
		}
	}
}

func TestConcavePWLEncoding(t *testing.T) {
	// Maximizing a concave PWL via segment variables must fill segments in
	// slope order. Figure-3 function: slopes 10, 8, 6 with lengths 0.05.
	// Budget 0.08 → first segment full (0.05) + 0.03 of second:
	// 0.5 + 0.24 = 0.74.
	p := NewProblem(Maximize)
	s1 := p.AddVar("s1", 0, 0.05, 10)
	s2 := p.AddVar("s2", 0, 0.05, 8)
	s3 := p.AddVar("s3", 0, 0.05, 6)
	p.AddRow(LE, 0.08, Term{s1, 1}, Term{s2, 1}, Term{s3, 1})
	sol := solveOK(t, p)
	if !approx(sol.Objective, 0.74, 1e-9) {
		t.Errorf("objective = %g, want 0.74", sol.Objective)
	}
	if !approx(sol.Value(s1), 0.05, 1e-9) || !approx(sol.Value(s2), 0.03, 1e-9) || !approx(sol.Value(s3), 0, 1e-9) {
		t.Errorf("segments = %g %g %g", sol.Value(s1), sol.Value(s2), sol.Value(s3))
	}
}

func TestSetCost(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, 1, 1)
	y := p.AddVar("y", 0, 1, 0)
	p.AddRow(LE, 1, Term{x, 1}, Term{y, 1})
	sol := solveOK(t, p)
	if !approx(sol.Value(x), 1, 1e-9) {
		t.Fatalf("x = %g, want 1", sol.Value(x))
	}
	p.SetCost(x, 0)
	p.SetCost(y, 1)
	sol = solveOK(t, p)
	if !approx(sol.Value(y), 1, 1e-9) {
		t.Fatalf("after SetCost, y = %g, want 1", sol.Value(y))
	}
}

func TestAddVarBadBoundsMarksMalformed(t *testing.T) {
	p := NewProblem(Minimize)
	p.AddVar("x", 2, 1, 0)
	sol, err := p.Solve()
	if err == nil || sol.Status != Malformed {
		t.Fatalf("Solve after AddVar(lo>hi) = (%v, %v), want Malformed error", sol.Status, err)
	}
}

func TestAddRowPanicsOnUnknownVar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddRow with unknown var did not panic")
		}
	}()
	NewProblem(Minimize).AddRow(LE, 1, Term{0, 1})
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		Optimal: "optimal", Infeasible: "infeasible",
		Unbounded: "unbounded", IterLimit: "iteration limit",
	} {
		if s.String() != want {
			t.Errorf("Status(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
}

// --- Randomized cross-validation against brute force -----------------

// bruteForceBoxLP maximizes c·x over box [0,u]^n intersected with rows
// a·x ≤ b by dense sampling of the box corners plus projections; for the
// special structure below (single knapsack row), the exact optimum is the
// greedy fill, which we compute directly.
func greedyKnapsackOpt(c, u []float64, b float64) float64 {
	type item struct{ c, u float64 }
	items := make([]item, len(c))
	for i := range c {
		items[i] = item{c[i], u[i]}
	}
	// Sort by density descending (coefficients are all 1 in the row).
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			if items[j].c > items[i].c {
				items[i], items[j] = items[j], items[i]
			}
		}
	}
	obj, rem := 0.0, b
	for _, it := range items {
		if it.c <= 0 || rem <= 0 {
			break
		}
		take := math.Min(it.u, rem)
		obj += it.c * take
		rem -= take
	}
	return obj
}

// Property: for random fractional-knapsack LPs (max c·x, Σx ≤ b,
// 0 ≤ x ≤ u), the simplex matches the greedy optimum.
func TestKnapsackProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12) + 1
		c := make([]float64, n)
		u := make([]float64, n)
		terms := make([]Term, n)
		p := NewProblem(Maximize)
		for i := 0; i < n; i++ {
			c[i] = math.Round(rng.Float64()*100) / 10
			u[i] = math.Round(rng.Float64()*50)/10 + 0.1
			v := p.AddVar("", 0, u[i], c[i])
			terms[i] = Term{v, 1}
		}
		b := rng.Float64() * 10
		p.AddRow(LE, b, terms...)
		sol, err := p.Solve()
		if err != nil {
			return false
		}
		want := greedyKnapsackOpt(c, u, b)
		return approx(sol.Objective, want, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: random feasible LPs (constraints generated around a known
// interior point) are reported feasible and the returned point satisfies
// all constraints and bounds.
func TestRandomFeasibleLPProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(8) + 2
		m := rng.Intn(8) + 1
		p := NewProblem(Maximize)
		x0 := make([]float64, n) // known feasible point
		for i := 0; i < n; i++ {
			x0[i] = rng.Float64() * 5
			p.AddVar("", 0, x0[i]+rng.Float64()*5, rng.NormFloat64())
		}
		rows := make([][]float64, m)
		ops := make([]Op, m)
		rhs := make([]float64, m)
		for r := 0; r < m; r++ {
			rows[r] = make([]float64, n)
			terms := make([]Term, 0, n)
			dot := 0.0
			for i := 0; i < n; i++ {
				a := rng.NormFloat64()
				rows[r][i] = a
				dot += a * x0[i]
				terms = append(terms, Term{i, a})
			}
			switch rng.Intn(3) {
			case 0:
				ops[r], rhs[r] = LE, dot+rng.Float64()
			case 1:
				ops[r], rhs[r] = GE, dot-rng.Float64()
			default:
				ops[r], rhs[r] = EQ, dot
			}
			p.AddRow(ops[r], rhs[r], terms...)
		}
		sol, err := p.Solve()
		if err != nil {
			// Unbounded is possible (upper bounds are finite, so it is
			// not, actually — all vars bounded ⇒ bounded objective).
			return false
		}
		// Verify constraint satisfaction.
		for r := 0; r < m; r++ {
			dot := 0.0
			for i := 0; i < n; i++ {
				dot += rows[r][i] * sol.Value(i)
			}
			switch ops[r] {
			case LE:
				if dot > rhs[r]+1e-6 {
					return false
				}
			case GE:
				if dot < rhs[r]-1e-6 {
					return false
				}
			case EQ:
				if !approx(dot, rhs[r], 1e-6) {
					return false
				}
			}
		}
		// Objective at least as good as the known feasible point.
		objX0 := 0.0
		for i := 0; i < n; i++ {
			objX0 += p.cost[i] * x0[i]
		}
		return sol.Objective >= objX0-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: solving the same problem twice gives the same answer
// (Solve must not mutate the Problem).
func TestSolveIsRepeatable(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, Inf, 3)
	y := p.AddVar("y", 0, Inf, 5)
	p.AddRow(LE, 4, Term{x, 1})
	p.AddRow(LE, 12, Term{y, 2})
	p.AddRow(LE, 18, Term{x, 3}, Term{y, 2})
	a := solveOK(t, p)
	b := solveOK(t, p)
	if a.Objective != b.Objective || a.Value(x) != b.Value(x) {
		t.Fatal("repeat Solve differs")
	}
}

func TestValuesCopy(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, 2, 1)
	p.AddRow(LE, 5, Term{x, 1})
	sol := solveOK(t, p)
	vs := sol.Values()
	vs[0] = -99
	if sol.Value(x) == -99 {
		t.Fatal("Values must return a copy")
	}
}

func BenchmarkSimplexStage1Scale(b *testing.B) {
	// Shaped like a Stage-1 LP at paper scale: 150 nodes × 4 segments with
	// a shared power row and 153 "thermal" rows.
	rng := rand.New(rand.NewSource(1))
	build := func() *Problem {
		p := NewProblem(Maximize)
		var powerTerms []Term
		thermal := make([][]Term, 153)
		for node := 0; node < 150; node++ {
			slope := 10.0
			for seg := 0; seg < 4; seg++ {
				v := p.AddVar("", 0, 0.44, slope)
				slope *= 0.8
				powerTerms = append(powerTerms, Term{v, 1})
				for r := 0; r < 4; r++ {
					tr := rng.Intn(153)
					thermal[tr] = append(thermal[tr], Term{v, rng.Float64() * 0.1})
				}
			}
		}
		p.AddRow(LE, 100, powerTerms...)
		for _, terms := range thermal {
			if len(terms) > 0 {
				p.AddRow(LE, 25, terms...)
			}
		}
		return p
	}
	p := build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}
