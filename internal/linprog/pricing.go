package linprog

// Pricing selects the entering-variable pricing rule.
type Pricing int

const (
	// PricingDantzig is the exact classic rule: every pivot scans all n
	// columns and enters the one with the largest reduced-cost violation.
	// It is the default because it makes the pivot sequence — and so every
	// emitted value — bit-reproducible against the recorded goldens.
	PricingDantzig Pricing = iota
	// PricingDevex is candidate-list partial pricing with devex-style
	// reference weights: pivots price only a small rotating candidate
	// list, scored d_j²/w_j, refilling the list by one full scan when it
	// runs dry. It reaches the same optimal objective but may stop at a
	// different optimal vertex (these LPs have many — identical node types
	// create symmetric columns), so it is opt-in for callers that want
	// throughput over bit-reproducibility. The pre-optimality verification
	// sweep (see iterate) guards it against premature exits.
	PricingDevex
)

func (p Pricing) String() string {
	switch p {
	case PricingDantzig:
		return "dantzig"
	case PricingDevex:
		return "devex"
	default:
		return "unknown"
	}
}

// devexListSize bounds the candidate list: large enough to amortize
// refills, far smaller than n for the paper-scale LPs.
func devexListSize(n int) int {
	s := 64 + n/32
	if s > 512 {
		s = 512
	}
	if s > n {
		s = n
	}
	return s
}

// resetPricing restarts the pricing state at a phase boundary: reference
// weights back to 1, candidate list empty.
func (st *tableauState) resetPricing() {
	if st.pricing != PricingDevex {
		return
	}
	for j := range st.weight {
		st.weight[j] = 1
	}
	st.candN, st.candStart = 0, 0
}

// scoreAt returns column j's pricing score (reduced-cost violation) and
// entering direction, or (0, 0) when j is not eligible.
func (st *tableauState) scoreAt(j int) (score, dir float64) {
	if st.status[j] == basic || st.lo[j] == st.hi[j] {
		return 0, 0
	}
	dj := st.d[j]
	switch st.status[j] {
	case atLower:
		return -dj, 1
	case atUpper:
		return dj, -1
	default: // freeZero
		if dj < 0 {
			return -dj, 1
		}
		return dj, -1
	}
}

// chooseEnteringDevex prices only the candidate list, choosing the column
// maximizing d_j²/w_j; entries that went ineligible are compacted away.
// When the list runs dry it is refilled by one full rotating scan — the
// only O(n) work — and the selection retried.
func (st *tableauState) chooseEnteringDevex() (int, float64) {
	for pass := 0; pass < 2; pass++ {
		best, bestDir, bestVal := -1, 0.0, 0.0
		cand := st.cand[:st.candN]
		w := 0
		for _, j32 := range cand {
			j := int(j32)
			score, dir := st.scoreAt(j)
			if score <= tolReduced {
				continue // drop from the list
			}
			cand[w] = j32
			w++
			if val := score * score / st.weight[j]; val > bestVal {
				best, bestDir, bestVal = j, dir, val
			}
		}
		st.candN = w
		if best >= 0 {
			return best, bestDir
		}
		if !st.refillCandidates() {
			return -1, 0
		}
	}
	return -1, 0
}

// refillCandidates scans all n columns once, starting at the rotation
// cursor, collecting the first devexListSize eligible columns. Rotation
// spreads pricing attention across the whole column range over successive
// refills (classic multiple partial pricing).
func (st *tableauState) refillCandidates() bool {
	limit := devexListSize(st.n)
	if cap(st.cand) < limit {
		st.cand = make([]int32, limit)
	}
	st.candN = 0
	j := st.candStart
	if j >= st.n {
		j = 0
	}
	for scanned := 0; scanned < st.n; scanned++ {
		if score, _ := st.scoreAt(j); score > tolReduced {
			st.cand[st.candN] = int32(j)
			st.candN++
			if st.candN == limit {
				j++
				break
			}
		}
		if j++; j >= st.n {
			j = 0
		}
	}
	if j >= st.n {
		j = 0
	}
	st.candStart = j
	st.stats.CandidateRebuilds++
	return st.candN > 0
}

// updateDevexWeights applies the devex reference-weight update after a
// pivot in row r on column enter: for every nonbasic column j touched by
// the (already scaled) pivot row, w_j ← max(w_j, ᾱ_rj²·w_q); the leaving
// variable re-enters the nonbasic set with the transformed weight
// max(1, w_q/α_rq²). Weights far past any useful dynamic range reset the
// reference framework. Bridged zeros inside a run contribute nw=0 ≤ w_j,
// so walking runs instead of exact nonzeros changes nothing.
func (st *tableauState) updateDevexWeights(r, enter int, inv float64) {
	w := st.weight
	wq := w[enter]
	if wq < 1 {
		wq = 1
	}
	maxW := 0.0
	prow := st.row(r)
	for k := 0; k < len(st.runs); k += 2 {
		s, e := int(st.runs[k]), int(st.runs[k+1])
		for j := s; j < e; j++ {
			v := prow[j]
			if nw := v * v * wq; nw > w[j] {
				w[j] = nw
			}
			if w[j] > maxW {
				maxW = w[j]
			}
		}
	}
	leave := st.basis[r] // pivot updates basis after this hook
	lw := wq * inv * inv
	if lw < 1 {
		lw = 1
	}
	w[leave] = lw
	if maxW > 1e12 {
		for j := range w {
			w[j] = 1
		}
	}
}
