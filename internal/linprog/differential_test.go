package linprog

import (
	"math"
	"math/rand"
	"testing"
)

// randomLP deterministically generates a random LP from seed: mixed
// ≤/≥/=/range rows, a spread of bound shapes (finite, one-sided, free,
// fixed), small-magnitude coefficients so exact degeneracy and
// near-singular bases stay reachable, and occasional duplicated rows.
// Most rows are anchored to a hidden feasible point so the majority of
// instances are solvable (zero-margin anchors make them degenerate at
// that point); a minority of rows get unrelated right-hand sides to keep
// infeasible and unbounded statuses in the mix. The same seed always
// builds the identical problem, so each core can get a fresh copy.
func randomLP(seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	sense := Minimize
	if rng.Intn(2) == 0 {
		sense = Maximize
	}
	p := NewProblem(sense)
	nv := 1 + rng.Intn(25)
	nr := 1 + rng.Intn(15)
	feas := make([]float64, nv) // hidden feasible point
	for j := 0; j < nv; j++ {
		cost := float64(rng.Intn(21)-10) / 2
		var lo, hi float64
		switch rng.Intn(12) {
		case 0: // free
			lo, hi = -Inf, Inf
		case 1: // lower-unbounded
			lo, hi = -Inf, float64(rng.Intn(8))
		case 2: // upper-unbounded
			lo, hi = float64(-rng.Intn(4)), Inf
		case 3: // fixed
			lo = float64(rng.Intn(5))
			hi = lo
		default: // boxed
			lo = float64(rng.Intn(4)) - 1
			hi = lo + float64(1+rng.Intn(8))
		}
		p.AddVar("", lo, hi, cost)
		switch {
		case lo == hi:
			feas[j] = lo
		case math.IsInf(lo, -1) && math.IsInf(hi, 1):
			feas[j] = float64(rng.Intn(7) - 3)
		case math.IsInf(lo, -1):
			feas[j] = hi - float64(rng.Intn(4))
		case math.IsInf(hi, 1):
			feas[j] = lo + float64(rng.Intn(4))
		default:
			feas[j] = lo + float64(rng.Intn(int(hi-lo)+1))
		}
	}
	addRow := func() {
		terms := make([]Term, 0, 5)
		nt := 1 + rng.Intn(5)
		at := 0.0 // a · feas
		for k := 0; k < nt; k++ {
			c := float64(rng.Intn(11) - 5)
			if c == 0 {
				c = 1
			}
			v := rng.Intn(nv)
			terms = append(terms, Term{v, c})
			at += c * feas[v]
		}
		anchored := rng.Intn(5) > 0 // 80%: row holds at the hidden point
		margin := float64(rng.Intn(5))
		rhs := float64(rng.Intn(31) - 10)
		switch rng.Intn(7) {
		case 0:
			if anchored {
				rhs = at
			}
			p.AddRow(EQ, rhs, terms...)
		case 1:
			if anchored {
				p.AddRangeRow(at-margin, at+float64(rng.Intn(5)), terms...)
			} else {
				p.AddRangeRow(rhs, rhs+float64(1+rng.Intn(10)), terms...)
			}
		case 2, 3:
			if anchored {
				rhs = at - margin
			}
			p.AddRow(GE, rhs, terms...)
		default:
			if anchored {
				rhs = at + margin
			}
			p.AddRow(LE, rhs, terms...)
		}
	}
	for r := 0; r < nr; r++ {
		addRow()
		if rng.Intn(8) == 0 && p.NumRows() > 0 {
			// Duplicate the previous row verbatim: guaranteed degeneracy and
			// a singular 2×2 sub-basis for the factorization to dodge.
			prev := p.NumRows() - 1
			terms := p.RowTerms(prev)
			p.AddRow(p.rows[prev].op, p.rows[prev].rhs, terms...)
		}
	}
	return p
}

// differentialOne solves seed's LP with both cores and cross-checks:
// statuses must agree; on Optimal the objectives must match within
// tolVerify (conditioning-scaled) and both solutions must pass primal
// verification against the original data. Returns whether the instance
// was Optimal (for coverage accounting).
func differentialOne(t *testing.T, seed int64) bool {
	t.Helper()
	pt := randomLP(seed)
	st, terr := pt.Solve()
	pr := asRevised(randomLP(seed))
	sr, rerr := pr.Solve()
	if st.Status != sr.Status {
		t.Fatalf("seed %d: tableau status %v (err %v), revised %v (err %v)",
			seed, st.Status, terr, sr.Status, rerr)
	}
	if st.Status != Optimal {
		return false
	}
	tol := tolVerify * (1 + math.Abs(st.Objective))
	if d := math.Abs(st.Objective - sr.Objective); d > tol {
		t.Fatalf("seed %d: objectives differ by %g (> %g): tableau %v, revised %v",
			seed, d, tol, st.Objective, sr.Objective)
	}
	if err := randomLP(seed).verifySolution(st); err != nil {
		t.Fatalf("seed %d: tableau solution fails verification: %v", seed, err)
	}
	if err := randomLP(seed).verifySolution(sr); err != nil {
		t.Fatalf("seed %d: revised solution fails verification: %v", seed, err)
	}
	return true
}

// differentialSweep runs seeds [0, n) and requires a healthy status mix so
// a generator regression (e.g. everything infeasible) cannot silently
// hollow out the comparison.
func differentialSweep(t *testing.T, n int) {
	optimal := 0
	for seed := int64(0); seed < int64(n); seed++ {
		if differentialOne(t, seed) {
			optimal++
		}
	}
	if optimal < n/4 {
		t.Fatalf("only %d/%d instances optimal — generator no longer exercises the solved path", optimal, n)
	}
}

// TestDifferentialShort is the always-on subset of the tableau-vs-revised
// differential sweep; the full 500-instance sweep runs under -tags slow.
func TestDifferentialShort(t *testing.T) {
	differentialSweep(t, 80)
}

// TestDifferentialWarmRHSPerturbation drives the warm-start path through
// random problems: solve, randomly patch a few right-hand sides, warm
// re-solve, and require bit-identical agreement with a cold revised solve
// of the patched instance.
func TestDifferentialWarmRHSPerturbation(t *testing.T) {
	trials := 0
	for seed := int64(0); seed < 200 && trials < 40; seed++ {
		base := randomLP(seed)
		if s, err := base.Solve(); err != nil || s.Status != Optimal {
			continue // warm starts only engage after an optimal retained solve
		}
		trials++
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		warm := asRevised(randomLP(seed))
		warm.WarmStart = true
		ws := &Workspace{}
		if _, err := warm.SolveWith(ws); err != nil {
			continue // numerically marginal instance; cold path already covered
		}
		for round := 0; round < 3; round++ {
			r := rng.Intn(warm.NumRows())
			delta := float64(rng.Intn(7) - 3)
			warm.SetRHS(r, warm.rows[r].rhs+delta)
			wsol, werr := warm.SolveWith(ws)

			cold := asRevised(randomLP(seed))
			for i := 0; i < cold.NumRows(); i++ {
				cold.SetRHS(i, warm.rows[i].rhs)
			}
			csol, cerr := cold.Solve()
			if (werr == nil) != (cerr == nil) || wsol.Status != csol.Status {
				t.Fatalf("seed %d round %d: warm status %v (err %v), cold %v (err %v)",
					seed, round, wsol.Status, werr, csol.Status, cerr)
			}
			if werr != nil {
				continue
			}
			solutionBitsEqual(t, "warm-differential", wsol, csol)
		}
	}
	if trials < 10 {
		t.Fatalf("only %d warmable instances found — generator drifted", trials)
	}
}
