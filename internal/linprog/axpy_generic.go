package linprog

// axpyNegGeneric is the portable y[i] -= f*x[i] loop, unrolled 4-wide; the
// bounds hint and unrolling keep the compiled loop check-free.
func axpyNegGeneric(f float64, x, y []float64) {
	y = y[:len(x)]
	i := 0
	for ; i+3 < len(x); i += 4 {
		y[i] -= f * x[i]
		y[i+1] -= f * x[i+1]
		y[i+2] -= f * x[i+2]
		y[i+3] -= f * x[i+3]
	}
	for ; i < len(x); i++ {
		y[i] -= f * x[i]
	}
}
