package linprog

import (
	"math"
	"math/rand"
	"testing"
)

// asRevised returns a shallow solver-config copy of build() with the
// revised core selected.
func asRevised(p *Problem) *Problem {
	p.Method = MethodRevised
	return p
}

// fixtureLPs is the shared shape zoo for tableau/revised agreement tests:
// slack-only, artificial-forcing, equality, range, free-variable, and
// degenerate shapes.
func fixtureLPs() map[string]func() *Problem {
	return map[string]func() *Problem{
		"small-bounded": smallLP,
		"big-two-phase": bigLP,
		"klee-minty-8":  func() *Problem { return kleeMinty(8) },
		"equality": func() *Problem {
			p := NewProblem(Minimize)
			x := p.AddVar("x", 0, Inf, 1)
			y := p.AddVar("y", 0, Inf, 2)
			z := p.AddVar("z", 0, Inf, 3)
			p.AddRow(EQ, 10, Term{x, 1}, Term{y, 1}, Term{z, 1})
			p.AddRow(GE, 3, Term{y, 1}, Term{z, 2})
			return p
		},
		"range-row": func() *Problem {
			p := NewProblem(Maximize)
			x := p.AddVar("x", 0, 8, 5)
			y := p.AddVar("y", 0, 8, 4)
			p.AddRangeRow(2, 9, Term{x, 1}, Term{y, 1})
			p.AddRow(LE, 12, Term{x, 2}, Term{y, 1})
			return p
		},
		"free-var": func() *Problem {
			p := NewProblem(Minimize)
			x := p.AddVar("x", -Inf, Inf, 1)
			y := p.AddVar("y", 0, Inf, 1)
			p.AddRow(GE, -4, Term{x, 1}, Term{y, 1})
			p.AddRow(LE, 6, Term{x, 1}, Term{y, 2})
			p.AddRow(GE, 1, Term{y, 1})
			return p
		},
		"degenerate": func() *Problem {
			p := NewProblem(Maximize)
			x := p.AddVar("x", 0, Inf, 1)
			y := p.AddVar("y", 0, Inf, 1)
			p.AddRow(LE, 4, Term{x, 1})
			p.AddRow(LE, 4, Term{x, 1}, Term{y, 0.0}) // duplicate binding row
			p.AddRow(LE, 4, Term{y, 1})
			return p
		},
	}
}

// TestRevisedMatchesTableauFixtures runs the shape zoo through both cores:
// statuses must agree exactly, objectives within the verification
// tolerance, and the revised solution must pass the same primal
// verification the guarded driver applies.
func TestRevisedMatchesTableauFixtures(t *testing.T) {
	for name, build := range fixtureLPs() {
		t.Run(name, func(t *testing.T) {
			want, werr := build().Solve()
			got, gerr := asRevised(build()).Solve()
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("error mismatch: tableau %v, revised %v", werr, gerr)
			}
			if got.Status != want.Status {
				t.Fatalf("status %v, want %v", got.Status, want.Status)
			}
			if want.Status != Optimal {
				return
			}
			tol := tolVerify * (1 + math.Abs(want.Objective))
			if math.Abs(got.Objective-want.Objective) > tol {
				t.Fatalf("objective %v, tableau %v (tol %g)", got.Objective, want.Objective, tol)
			}
			if err := build().verifySolution(got); err != nil {
				t.Fatalf("revised solution fails verification: %v", err)
			}
		})
	}
}

// TestRevisedStatusAgreement pins the non-optimal statuses: both cores
// must call the same problems infeasible and unbounded.
func TestRevisedStatusAgreement(t *testing.T) {
	infeasible := func() *Problem {
		p := NewProblem(Minimize)
		x := p.AddVar("x", 0, 1, 1)
		p.AddRow(GE, 2, Term{x, 1})
		return p
	}
	unbounded := func() *Problem {
		p := NewProblem(Maximize)
		x := p.AddVar("x", 0, Inf, 1)
		y := p.AddVar("y", 0, Inf, 1)
		p.AddRow(LE, 1, Term{x, 1}, Term{y, -1})
		return p
	}
	for name, build := range map[string]func() *Problem{"infeasible": infeasible, "unbounded": unbounded} {
		ts, terr := build().Solve()
		rs, rerr := asRevised(build()).Solve()
		if terr == nil || rerr == nil {
			t.Fatalf("%s: want errors from both cores, got tableau %v, revised %v", name, terr, rerr)
		}
		if rs.Status != ts.Status {
			t.Fatalf("%s: revised status %v, tableau %v", name, rs.Status, ts.Status)
		}
	}
}

// TestRevisedWorkspaceCrossShapeReuse alternates revised solves of two
// shapes through one Workspace: every solve must be bit-identical to a
// fresh-workspace revised solve — no stale CSC, eta, or retention state
// may leak between shapes.
func TestRevisedWorkspaceCrossShapeReuse(t *testing.T) {
	refA, err := asRevised(smallLP()).Solve()
	if err != nil {
		t.Fatal(err)
	}
	refB, err := asRevised(bigLP()).Solve()
	if err != nil {
		t.Fatal(err)
	}
	ws := &Workspace{}
	pa, pb := asRevised(smallLP()), asRevised(bigLP())
	for round := 0; round < 3; round++ {
		got, err := pa.SolveWith(ws)
		if err != nil {
			t.Fatalf("round %d small: %v", round, err)
		}
		solutionBitsEqual(t, "small", got, refA)
		got, err = pb.SolveWith(ws)
		if err != nil {
			t.Fatalf("round %d big: %v", round, err)
		}
		solutionBitsEqual(t, "big", got, refB)
	}
	if ws.Stats.Factorizations == 0 {
		t.Fatal("Stats.Factorizations = 0: revised solves did not factorize")
	}
}

// TestRevisedRefactorizationCadence pushes one solve past refactorEvery
// pivots (Klee–Minty under Dantzig) so the periodic refactorization path
// runs, and checks the eta-file bookkeeping via the stats.
func TestRevisedRefactorizationCadence(t *testing.T) {
	p := asRevised(kleeMinty(10)) // 1023 pivots ≫ refactorEvery
	ws := &Workspace{}
	sol, err := p.SolveWith(ws)
	if err != nil {
		t.Fatal(err)
	}
	want, err := kleeMinty(10).Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-want.Objective) > 1e-6*(1+math.Abs(want.Objective)) {
		t.Fatalf("objective %v, want %v", sol.Objective, want.Objective)
	}
	// Initial basis + ≥ pivots/refactorEvery periodic rebuilds + canonical
	// extraction.
	minFactor := int64(2 + ws.Stats.Pivots/refactorEvery)
	if ws.Stats.Factorizations < minFactor {
		t.Fatalf("Factorizations = %d over %d pivots, want ≥ %d",
			ws.Stats.Factorizations, ws.Stats.Pivots, minFactor)
	}
}

// warmableLP is an artificial-free LP large enough that a cold re-solve
// costs real pivots, used by the warm-start tests. All rows are LE with
// slack-feasible origins so the optimal basis never retains an artificial.
func warmableLP() *Problem {
	rng := rand.New(rand.NewSource(4242))
	p := NewProblem(Maximize)
	const nv, nr = 30, 18
	for j := 0; j < nv; j++ {
		p.AddVar("", 0, 4, 0.5+rng.Float64())
	}
	for r := 0; r < nr; r++ {
		terms := make([]Term, 0, 6)
		for k := 0; k < 6; k++ {
			terms = append(terms, Term{(r*7 + k*5) % nv, 0.2 + rng.Float64()})
		}
		p.AddRow(LE, 4+3*rng.Float64(), terms...)
	}
	return p
}

// TestRevisedWarmStartBitIdentical is the core warm-start contract: after
// an RHS patch, a warm dual re-solve must return bit-identical numbers to
// a cold revised solve of the same patched problem, because both extract
// from the same canonically refactorized basis.
func TestRevisedWarmStartBitIdentical(t *testing.T) {
	p := warmableLP()
	p.Method = MethodRevised
	p.WarmStart = true
	ws := &Workspace{}
	if _, err := p.SolveWith(ws); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		r := rng.Intn(p.NumRows())
		p.SetRHS(r, 4+3*rng.Float64())
		warm, err := p.SolveWith(ws)
		if err != nil {
			t.Fatalf("trial %d warm: %v", trial, err)
		}

		cold := warmableLP()
		cold.Method = MethodRevised
		cold.SetRHS(r, p.rows[r].rhs)
		// Replay all prior patches so the cold problem matches.
		for i := 0; i < cold.NumRows(); i++ {
			cold.SetRHS(i, p.rows[i].rhs)
		}
		ref, err := cold.Solve()
		if err != nil {
			t.Fatalf("trial %d cold: %v", trial, err)
		}
		solutionBitsEqual(t, "warm-vs-cold", warm, ref)
		for i := 0; i < p.NumRows(); i++ {
			if math.Float64bits(warm.Dual(i)) != math.Float64bits(ref.Dual(i)) {
				t.Fatalf("trial %d: dual[%d] = %v warm, %v cold", trial, i, warm.Dual(i), ref.Dual(i))
			}
		}
	}
	if ws.Stats.WarmHits == 0 {
		t.Fatalf("WarmHits = 0 over 20 RHS patches (attempts %d, rejects %d)",
			ws.Stats.WarmAttempts, ws.Stats.WarmRejects)
	}
}

// TestRevisedWarmStartRejectsCoefficientChange: any change outside the RHS
// must miss the signature and run cold — silently warm-starting off a
// stale basis after a cost or coefficient edit would be wrong.
func TestRevisedWarmStartRejectsCoefficientChange(t *testing.T) {
	p := warmableLP()
	p.Method = MethodRevised
	p.WarmStart = true
	ws := &Workspace{}
	if _, err := p.SolveWith(ws); err != nil {
		t.Fatal(err)
	}
	p.SetCost(0, 9.75)
	got, err := p.SolveWith(ws)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Stats.WarmAttempts != 1 || ws.Stats.WarmRejects != 1 {
		t.Fatalf("attempts=%d rejects=%d after cost change, want 1/1",
			ws.Stats.WarmAttempts, ws.Stats.WarmRejects)
	}
	cold := warmableLP()
	cold.Method = MethodRevised
	cold.SetCost(0, 9.75)
	ref, err := cold.Solve()
	if err != nil {
		t.Fatal(err)
	}
	solutionBitsEqual(t, "post-reject", got, ref)

	// The rejected solve retained the new signature, so the next RHS patch
	// warm-starts again.
	p.SetRHS(0, 5.5)
	if _, err := p.SolveWith(ws); err != nil {
		t.Fatal(err)
	}
	if ws.Stats.WarmHits == 0 {
		t.Fatal("warm start did not recover after a rejected attempt")
	}
}

// TestRevisedWarmSolveIntoZeroAllocs is the revised-core version of the
// epoch hot-path guarantee: warmed-up RHS-patched re-solves through
// SolveInto allocate nothing, including the dual warm-start machinery.
func TestRevisedWarmSolveIntoZeroAllocs(t *testing.T) {
	p := warmableLP()
	p.Method = MethodRevised
	p.WarmStart = true
	ws := &Workspace{}
	if _, err := p.SolveInto(nil, ws); err != nil {
		t.Fatal(err)
	}
	rhs := []float64{5.0, 5.5}
	i := 0
	allocs := testing.AllocsPerRun(50, func() {
		p.SetRHS(0, rhs[i%2])
		i++
		sol, err := p.SolveInto(nil, ws)
		if err != nil || sol.Status != Optimal {
			t.Fatalf("warm solve: %v (%v)", err, sol.Status)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm revised SolveInto allocates %.1f objects/op, want 0", allocs)
	}
	if ws.Stats.WarmHits == 0 {
		t.Fatal("alloc loop never warm-started")
	}
}

// TestRevisedWarmFewerPivots: a warm dual re-solve after a modest RHS step
// must cost strictly fewer pivots than the cold solve of the same problem
// — the whole point of retaining the basis.
func TestRevisedWarmFewerPivots(t *testing.T) {
	p := warmableLP()
	p.Method = MethodRevised
	p.WarmStart = true
	ws := &Workspace{}
	if _, err := p.SolveWith(ws); err != nil {
		t.Fatal(err)
	}
	pivots0 := ws.Stats.Pivots
	p.SetRHS(3, 5.25)
	if _, err := p.SolveWith(ws); err != nil {
		t.Fatal(err)
	}
	warmPivots := ws.Stats.Pivots - pivots0
	if ws.Stats.WarmHits != 1 {
		t.Fatalf("WarmHits = %d, want 1", ws.Stats.WarmHits)
	}

	cold := warmableLP()
	cold.Method = MethodRevised
	cold.SetRHS(3, 5.25)
	cws := &Workspace{}
	if _, err := cold.SolveWith(cws); err != nil {
		t.Fatal(err)
	}
	if warmPivots >= cws.Stats.Pivots {
		t.Fatalf("warm re-solve took %d pivots, cold %d — warm start saved nothing",
			warmPivots, cws.Stats.Pivots)
	}
}

// TestMethodString pins the flag-facing names.
func TestMethodString(t *testing.T) {
	if MethodTableau.String() != "tableau" || MethodRevised.String() != "revised" {
		t.Fatalf("Method strings = %q/%q", MethodTableau.String(), MethodRevised.String())
	}
}
