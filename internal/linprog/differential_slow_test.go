//go:build slow

package linprog

import "testing"

// TestDifferentialFull is the full tableau-vs-revised differential sweep —
// 600 seeded random LPs across every row/bound shape the generator emits.
// It runs in CI behind -tags slow; TestDifferentialShort covers the first
// 80 seeds on every plain `go test`.
func TestDifferentialFull(t *testing.T) {
	differentialSweep(t, 600)
}
