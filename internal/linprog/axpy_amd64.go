//go:build amd64

package linprog

// useAVX2 gates the vector elimination kernel on runtime CPU support
// (AVX2 plus OS-enabled YMM state).
var useAVX2 = cpuHasAVX2()

// cpuHasAVX2 reports AVX2 support with the OS saving YMM state, probed via
// CPUID/XGETBV (implemented in axpy_amd64.s).
func cpuHasAVX2() bool

// axpyNegAVX2 computes y[i] -= f*x[i] over len(x) elements with 4-wide
// VMULPD/VSUBPD. Each element is one multiply rounding followed by one
// subtract rounding — the same two-rounding sequence as the scalar loop, so
// results are bit-identical (no FMA, which would contract them into one
// rounding). Caller guarantees len(y) >= len(x).
func axpyNegAVX2(f float64, x, y []float64)

// axpyNeg subtracts f times x from y elementwise: y[i] -= f*x[i].
func axpyNeg(f float64, x, y []float64) {
	if useAVX2 && len(x) >= 8 {
		axpyNegAVX2(f, x, y)
		return
	}
	axpyNegGeneric(f, x, y)
}
