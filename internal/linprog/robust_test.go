package linprog

import (
	"context"
	"errors"
	"math"
	"testing"
)

// kleeMinty builds the n-dimensional Klee–Minty cube
//
//	max Σ_j 2^(n-j) x_j   s.t.   2·Σ_{i<j} 2^(j-i) x_i + x_j ≤ 5^j,  x ≥ 0,
//
// on which Dantzig pricing visits all 2^n−1 vertices while Bland's rule
// terminates in a few hundred pivots — the deterministic stand-in for a
// stalling solve that only the anti-cycling restart can finish.
func kleeMinty(n int) *Problem {
	p := NewProblem(Maximize)
	for j := 1; j <= n; j++ {
		p.AddVar("", 0, Inf, math.Pow(2, float64(n-j)))
	}
	for j := 1; j <= n; j++ {
		var terms []Term
		for i := 1; i < j; i++ {
			terms = append(terms, Term{i - 1, math.Pow(2, float64(j-i+1))})
		}
		terms = append(terms, Term{j - 1, 1})
		p.AddRow(LE, math.Pow(5, float64(j)), terms...)
	}
	return p
}

// TestBlandRestartRegression pins the degradation behavior of an exhausted
// pivot budget: on the n=10 Klee–Minty cube with MaxIter=300, Dantzig
// pricing needs 1023 pivots (fails), Bland needs 177 (fits), so Solve only
// returns Optimal because it restarts under Bland's rule. If the restart
// is ever removed or broken, this test fails with an iteration-limit
// error.
func TestBlandRestartRegression(t *testing.T) {
	const n, budget = 10, 300

	// The plain single pass must exhaust the budget...
	plain := kleeMinty(n)
	plain.MaxIter = budget
	sol, _, err := plain.solveOnce(nil, &Workspace{}, false, false)
	if err == nil || sol.Status != IterLimit {
		t.Fatalf("single Dantzig pass = (%v, %v), want IterLimit — budget no longer tight, adjust the test", sol.Status, err)
	}

	// ...and the public Solve must recover via the Bland restart.
	p := kleeMinty(n)
	p.MaxIter = budget
	sol, err = p.Solve()
	if err != nil {
		t.Fatalf("Solve with Bland restart: %v", err)
	}
	if !sol.Restarted {
		t.Error("solution not marked Restarted")
	}
	want := math.Pow(5, n)
	if math.Abs(sol.Objective-want) > 1e-6*want {
		t.Errorf("objective = %g, want %g", sol.Objective, want)
	}
}

// TestIterLimitStillReported checks that a genuinely too-small budget (too
// small even for Bland) surfaces as an iteration-limit StatusError rather
// than hanging or misclassifying as cycling when no stalling occurred.
func TestIterLimitStillReported(t *testing.T) {
	p := kleeMinty(10)
	p.MaxIter = 50 // below Bland's 177 pivots too
	sol, err := p.Solve()
	if err == nil {
		t.Fatal("want error")
	}
	var st *StatusError
	if !errors.As(err, &st) || st.Status != IterLimit {
		t.Fatalf("err = %v, want StatusError{IterLimit}", err)
	}
	if errors.Is(err, ErrCycling) {
		t.Errorf("non-degenerate budget exhaustion misclassified as cycling: %v", err)
	}
	if !errors.Is(err, ErrNotOptimal) {
		t.Errorf("StatusError does not match ErrNotOptimal: %v", err)
	}
	if sol.Status != IterLimit {
		t.Errorf("sol.Status = %v, want IterLimit", sol.Status)
	}
}

func TestMalformedProblems(t *testing.T) {
	cases := map[string]func() *Problem{
		"nan-cost": func() *Problem {
			p := NewProblem(Minimize)
			p.AddVar("x", 0, 1, math.NaN())
			return p
		},
		"inf-cost": func() *Problem {
			p := NewProblem(Minimize)
			p.AddVar("x", 0, 1, math.Inf(1))
			return p
		},
		"nan-bound": func() *Problem {
			p := NewProblem(Minimize)
			p.AddVar("x", math.NaN(), 1, 0)
			return p
		},
		"inverted-bounds": func() *Problem {
			p := NewProblem(Minimize)
			p.AddVar("x", 2, 1, 0)
			return p
		},
		"nan-rhs": func() *Problem {
			p := NewProblem(Minimize)
			x := p.AddVar("x", 0, 1, 1)
			p.AddRow(LE, math.NaN(), Term{x, 1})
			return p
		},
		"inf-rhs": func() *Problem {
			p := NewProblem(Minimize)
			x := p.AddVar("x", 0, 1, 1)
			p.AddRow(GE, math.Inf(-1), Term{x, 1})
			return p
		},
		"nan-coef": func() *Problem {
			p := NewProblem(Minimize)
			x := p.AddVar("x", 0, 1, 1)
			p.AddRow(LE, 1, Term{x, math.NaN()})
			return p
		},
		"nan-set-cost": func() *Problem {
			p := NewProblem(Minimize)
			x := p.AddVar("x", 0, 1, 1)
			p.SetCost(x, math.NaN())
			return p
		},
		"inverted-range": func() *Problem {
			p := NewProblem(Minimize)
			x := p.AddVar("x", 0, 1, 1)
			p.AddRangeRow(2, 1, Term{x, 1})
			return p
		},
	}
	for name, mk := range cases {
		t.Run(name, func(t *testing.T) {
			p := mk()
			sol, err := p.Solve()
			if err == nil {
				t.Fatal("Solve accepted a malformed problem")
			}
			if sol.Status != Malformed {
				t.Errorf("status = %v, want Malformed", sol.Status)
			}
			if !errors.Is(err, ErrMalformed) {
				t.Errorf("errors.Is(err, ErrMalformed) = false for %v", err)
			}
			if !errors.Is(err, ErrNotOptimal) {
				t.Errorf("errors.Is(err, ErrNotOptimal) = false for %v", err)
			}
			if p.Defect() == nil {
				t.Error("Defect() = nil after malformed insertion")
			}
		})
	}
}

// TestDefectClearsAfterRepair: a bad SetRHS poisons the problem, but a
// warm-solver skeleton legitimately overwrites right-hand sides between
// solves — once the value is repaired, Solve must succeed again.
func TestDefectClearsAfterRepair(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, 10, 1)
	p.AddRow(LE, 5, Term{x, 1})
	p.SetRHS(0, math.NaN())
	if _, err := p.Solve(); !errors.Is(err, ErrMalformed) {
		t.Fatalf("Solve with NaN rhs: err = %v, want ErrMalformed", err)
	}
	p.SetRHS(0, 5)
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve after repair: %v", err)
	}
	if math.Abs(sol.Objective-5) > 1e-9 {
		t.Errorf("objective = %g, want 5", sol.Objective)
	}
	if p.Defect() != nil {
		t.Errorf("Defect() = %v after repair, want nil", p.Defect())
	}
}

func TestSolveContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := kleeMinty(8)
	sol, err := p.SolveContext(ctx)
	if err == nil {
		t.Fatal("want error from canceled context")
	}
	if sol.Status != Canceled {
		t.Errorf("status = %v, want Canceled", sol.Status)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false for %v", err)
	}
	var st *StatusError
	if !errors.As(err, &st) || st.Status != Canceled {
		t.Errorf("err = %v, want StatusError{Canceled}", err)
	}
}

// countdownCtx reports Canceled after its Err method has been polled a
// fixed number of times. The solver only consults ctx.Err() at its
// cooperative check points, so this cancels deterministically mid-solve
// without depending on goroutine scheduling (a cancel() fired from a
// helper goroutine never runs before the solve completes on a single-CPU
// machine, because the pivot loop does not yield).
type countdownCtx struct {
	context.Context
	polls int
}

func (c *countdownCtx) Err() error {
	if c.polls--; c.polls < 0 {
		return context.Canceled
	}
	return nil
}

// TestSolveContextMidSolveCancel cancels after the solve has started
// pivoting (the cube is big enough that the cooperative check every
// ctxCheckEvery pivots fires many times, and the countdown context flips
// to Canceled only after the first few checks have passed).
func TestSolveContextMidSolveCancel(t *testing.T) {
	p := kleeMinty(14) // 16383 Dantzig pivots: plenty of check windows
	ctx := &countdownCtx{Context: context.Background(), polls: 8}
	sol, err := p.SolveContext(ctx)
	if err == nil {
		t.Fatal("want cancellation error")
	}
	if sol.Status != Canceled {
		t.Errorf("status = %v, want Canceled", sol.Status)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false for %v", err)
	}
}

// TestSolveContextBackgroundIdentical: plumbing a live context must not
// change the result of a healthy solve.
func TestSolveContextBackgroundIdentical(t *testing.T) {
	a, err := kleeMinty(8).Solve()
	if err != nil {
		t.Fatal(err)
	}
	b, err := kleeMinty(8).SolveContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if a.Objective != b.Objective || a.Iterations != b.Iterations {
		t.Errorf("context plumbing changed the solve: (%g, %d) vs (%g, %d)",
			a.Objective, a.Iterations, b.Objective, b.Iterations)
	}
	for j := range a.x {
		if a.x[j] != b.x[j] {
			t.Errorf("x[%d]: %g vs %g", j, a.x[j], b.x[j])
		}
	}
}

// TestVerifySolutionCatchesGarbage drives the independent verifier
// directly: a doctored solution vector must be rejected even though the
// tableau believed it optimal.
func TestVerifySolutionCatchesGarbage(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, 10, 1)
	p.AddRow(LE, 5, Term{x, 1})
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.verifySolution(sol); err != nil {
		t.Fatalf("healthy solution rejected: %v", err)
	}
	sol.x[0] = 7 // violates the row
	if err := p.verifySolution(sol); err == nil {
		t.Error("row violation not caught")
	}
	sol.x[0] = -1 // violates the lower bound
	if err := p.verifySolution(sol); err == nil {
		t.Error("bound violation not caught")
	}
	sol.x[0] = math.NaN()
	if err := p.verifySolution(sol); err == nil {
		t.Error("NaN value not caught")
	}
}

// TestRescaledCopyDeterministicAndEquivalent: the numerical-retry clone
// must solve to the same optimum (within the tiny relaxation) and be
// byte-for-byte deterministic across builds.
func TestRescaledCopyDeterministicAndEquivalent(t *testing.T) {
	mk := func() *Problem {
		p := NewProblem(Maximize)
		x := p.AddVar("x", 0, 4, 3)
		y := p.AddVar("y", 0, Inf, 2)
		p.AddRow(LE, 14, Term{x, 2}, Term{y, 1})
		p.AddRow(GE, 0, Term{x, 1}, Term{y, -1})
		p.AddRow(EQ, 4, Term{x, 1})
		p.AddRangeRow(1, 9, Term{x, 1}, Term{y, 1})
		return p
	}
	want, err := mk().Solve()
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := mk().rescaledCopy(), mk().rescaledCopy()
	s1, err := c1.Solve()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c2.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s1.Objective != s2.Objective {
		t.Errorf("rescaled copies disagree: %g vs %g", s1.Objective, s2.Objective)
	}
	if math.Abs(s1.Objective-want.Objective) > 1e-6*(1+math.Abs(want.Objective)) {
		t.Errorf("rescaled objective %g drifted from original %g", s1.Objective, want.Objective)
	}
	// The retried solution must also verify against the ORIGINAL problem.
	orig := mk()
	if err := orig.verifySolution(s1); err != nil {
		t.Errorf("rescaled solution fails original verification: %v", err)
	}
}

// TestDegenerateLPTerminates exercises the in-iterate degeneracy counter:
// a highly degenerate LP (many redundant constraints active at the
// optimum) must still terminate Optimal, not spin.
func TestDegenerateLPTerminates(t *testing.T) {
	p := NewProblem(Maximize)
	n := 6
	vars := make([]int, n)
	for i := range vars {
		vars[i] = p.AddVar("", 0, Inf, 1)
	}
	// All constraints pass through the origin: every early pivot is
	// degenerate.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p.AddRow(LE, 0, Term{vars[i], 1}, Term{vars[j], -1})
			p.AddRow(LE, 0, Term{vars[i], -1}, Term{vars[j], 1})
		}
	}
	p.AddRow(LE, float64(n), sumTerms(vars)...)
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("degenerate LP: %v", err)
	}
	if math.Abs(sol.Objective-float64(n)) > 1e-6 {
		t.Errorf("objective = %g, want %d", sol.Objective, n)
	}
}

func sumTerms(vars []int) []Term {
	out := make([]Term, len(vars))
	for i, v := range vars {
		out[i] = Term{v, 1}
	}
	return out
}
