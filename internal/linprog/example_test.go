package linprog_test

import (
	"fmt"

	"thermaldc/internal/linprog"
)

// Example solves a small production-planning LP and reads the shadow
// price of the binding resource row.
func Example() {
	p := linprog.NewProblem(linprog.Maximize)
	x := p.AddVar("x", 0, linprog.Inf, 3)
	y := p.AddVar("y", 0, linprog.Inf, 5)
	p.AddRow(linprog.LE, 4, linprog.Term{Var: x, Coef: 1})
	p.AddRow(linprog.LE, 12, linprog.Term{Var: y, Coef: 2})
	p.AddRow(linprog.LE, 18, linprog.Term{Var: x, Coef: 3}, linprog.Term{Var: y, Coef: 2})
	sol, err := p.Solve()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("objective %g at (%g, %g)\n", sol.Objective, sol.Value(x), sol.Value(y))
	fmt.Printf("shadow price of row 2: %g\n", sol.Dual(2))
	// Output:
	// objective 36 at (2, 6)
	// shadow price of row 2: 1
}

// Example_infeasible shows the error contract for infeasible programs.
func Example_infeasible() {
	p := linprog.NewProblem(linprog.Minimize)
	x := p.AddVar("x", 0, 1, 1)
	p.AddRow(linprog.GE, 5, linprog.Term{Var: x, Coef: 1})
	sol, err := p.Solve()
	fmt.Println(sol.Status, err != nil)
	// Output:
	// infeasible true
}
