package linprog

import (
	"math"
	"testing"
)

// TestBadlyScaledKnapsack checks numerical robustness across 12 orders of
// magnitude of coefficient disparity — the regime a custom data-center
// model hits when a user mixes W with kW or seconds with hours.
func TestBadlyScaledKnapsack(t *testing.T) {
	for _, scale := range []float64{1e-6, 1e-3, 1, 1e3, 1e6} {
		p := NewProblem(Maximize)
		x := p.AddVar("x", 0, 2*scale, 3/scale)
		y := p.AddVar("y", 0, 5*scale, 1/scale)
		p.AddRow(LE, 4*scale, Term{x, 1}, Term{y, 1})
		sol, err := p.Solve()
		if err != nil {
			t.Fatalf("scale %g: %v", scale, err)
		}
		// Optimum: x = 2·scale, y = 2·scale → 3·2 + 1·2 = 8.
		if math.Abs(sol.Objective-8) > 1e-6 {
			t.Errorf("scale %g: objective %g, want 8", scale, sol.Objective)
		}
	}
}

// TestMixedMagnitudeRows stresses rows whose coefficients span many
// orders of magnitude simultaneously.
func TestMixedMagnitudeRows(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVar("x", 0, Inf, 1e-3)
	y := p.AddVar("y", 0, Inf, 1e3)
	p.AddRow(GE, 1e6, Term{x, 1e-4}, Term{y, 1e4})
	p.AddRow(GE, 1, Term{x, 1e2}, Term{y, 1e-2})
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Verify constraint satisfaction at the reported solution.
	if 1e-4*sol.Value(x)+1e4*sol.Value(y) < 1e6-1 {
		t.Errorf("row 0 violated: x=%g y=%g", sol.Value(x), sol.Value(y))
	}
	if 1e2*sol.Value(x)+1e-2*sol.Value(y) < 1-1e-6 {
		t.Errorf("row 1 violated: x=%g y=%g", sol.Value(x), sol.Value(y))
	}
}
