// Package linprog implements a dense two-phase primal simplex solver for
// linear programs with bounded variables. It is the optimization substrate
// for every LP the paper solves: the Stage-1 relaxed power assignment, the
// Stage-3 desired-execution-rate assignment (Equation 7 with fixed
// P-states), the Equation-21 baseline, the Equation-17 power bounds, and
// the Appendix-B cross-interference feasibility problem.
//
// The solver handles
//   - minimization and maximization,
//   - ≤ / ≥ / = and two-sided range rows,
//   - per-variable lower/upper bounds (including infinite bounds),
//
// using the textbook bounded-variable simplex with a dense tableau, Dantzig
// pricing, and a Bland anti-cycling fallback. Problem sizes in this
// repository are a few hundred rows by a few thousand columns, well within
// dense-tableau territory.
package linprog

import (
	"errors"
	"fmt"
	"math"
)

// Sense selects the optimization direction.
type Sense int

const (
	// Minimize the objective.
	Minimize Sense = iota
	// Maximize the objective.
	Maximize
)

// Op is a row comparison operator.
type Op int

const (
	// LE constrains a·x ≤ rhs.
	LE Op = iota
	// GE constrains a·x ≥ rhs.
	GE
	// EQ constrains a·x = rhs.
	EQ
)

// Inf is a convenience alias for +∞ bounds.
var Inf = math.Inf(1)

// Term is a single coefficient Coef on variable Var within a row.
type Term struct {
	Var  int
	Coef float64
}

// Status describes the outcome of Solve.
type Status int

const (
	// Optimal means an optimal solution was found.
	Optimal Status = iota
	// Infeasible means no point satisfies the constraints.
	Infeasible
	// Unbounded means the objective is unbounded over the feasible set.
	Unbounded
	// IterLimit means the iteration limit was exhausted.
	IterLimit
	// Canceled means the context passed to SolveContext was done before
	// the solve finished.
	Canceled
	// Malformed means the problem itself is invalid (NaN/Inf cost, bound,
	// coefficient, or right-hand side, or inverted bounds) — detected at
	// insertion time and reported by Solve.
	Malformed
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration limit"
	case Canceled:
		return "canceled"
	case Malformed:
		return "malformed"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// ErrNotOptimal is matched (via errors.Is) by every Solve error whose
// status is not Optimal.
var ErrNotOptimal = errors.New("linprog: no optimal solution")

// ErrMalformed is wrapped by Solve errors for problems holding non-finite
// costs, bounds, coefficients, or right-hand sides (or inverted bound
// pairs). The defect is recorded at insertion (AddVar/AddRow/SetRHS/...)
// and surfaced by the next Solve, so construction code needs no error
// plumbing.
var ErrMalformed = errors.New("linprog: malformed problem")

// ErrCycling is wrapped by Solve errors when the simplex stalled on
// degenerate pivots and failed to terminate even after a restart under
// Bland's anti-cycling rule.
var ErrCycling = errors.New("linprog: simplex cycling")

// ErrNumerical is wrapped by Solve errors when a returned basis failed the
// primal residual / bound verification and a rescaled, perturbed retry
// failed it too.
var ErrNumerical = errors.New("linprog: numerically unreliable solution")

// ErrWarmStartRejected is matched (via errors.Is) by Solve errors from
// re-solves whose dual-simplex warm start was rejected (signature mismatch,
// singular retained basis, dual infeasibility, or a stalled dual phase) and
// whose cold fallback then also failed. A rejected warm start that the cold
// path recovers from is not an error; it is only counted in
// Stats.WarmRejects.
var ErrWarmStartRejected = errors.New("linprog: warm start rejected")

// StatusError is the typed error returned by Solve for every non-Optimal
// outcome. It matches ErrNotOptimal via errors.Is, carries the Status for
// programmatic branching, and unwraps to the underlying cause (the context
// error for Canceled, the insertion defect for Malformed, ErrCycling for a
// failed anti-cycling restart).
type StatusError struct {
	Status Status
	cause  error
}

func (e *StatusError) Error() string {
	if e.cause != nil {
		return fmt.Sprintf("%v: %s: %v", ErrNotOptimal, e.Status, e.cause)
	}
	return fmt.Sprintf("%v: %s", ErrNotOptimal, e.Status)
}

// Is matches ErrNotOptimal so existing errors.Is call sites keep working.
func (e *StatusError) Is(target error) bool { return target == ErrNotOptimal }

// Unwrap exposes the cause (may be nil).
func (e *StatusError) Unwrap() error { return e.cause }

type row struct {
	terms []Term
	op    Op
	rhs   float64
	// rangeLo is used only when isRange: rangeLo ≤ a·x ≤ rhs.
	rangeLo float64
	isRange bool
}

// Problem is an LP under construction. Create one with NewProblem, add
// variables and rows, then call Solve. A Problem may be solved repeatedly;
// each Solve works on a fresh tableau.
type Problem struct {
	sense Sense
	cost  []float64
	lo    []float64
	hi    []float64
	names []string
	rows  []row

	// defect records the first malformation detected at insertion time;
	// Solve reports it instead of running the simplex on garbage.
	defect error

	// retryRowScale holds, on a clone built by rescaledCopy, the exact
	// power-of-two factor each row was multiplied by (to unscale duals).
	retryRowScale []float64

	// MaxIter optionally overrides the iteration budget (0 = automatic).
	MaxIter int

	// Pricing selects the entering-variable rule. The zero value
	// (PricingDantzig) reproduces the classic full-scan pivot order
	// bit-for-bit; PricingDevex opts into candidate-list partial pricing
	// (same optimum, possibly a different optimal vertex).
	Pricing Pricing

	// Method selects the simplex implementation. The zero value
	// (MethodTableau) is the flat-tableau core whose pivot sequence is
	// locked against the recorded goldens; MethodRevised opts into the
	// LU-factorized revised simplex (same optimum within tolVerify,
	// possibly a different optimal vertex) and is the only method that
	// supports warm starts.
	Method Method

	// WarmStart opts MethodRevised re-solves through one Workspace into
	// dual-simplex warm starts: after an Optimal solve the workspace
	// retains the basis, and a later solve whose problem differs from the
	// retained one only in right-hand sides restarts the dual simplex from
	// that basis instead of solving cold. Any other change — coefficients,
	// costs, bounds, shape — rejects the warm start and falls back to the
	// cold primal path (counted in Stats.WarmRejects). Ignored by
	// MethodTableau.
	WarmStart bool
}

// Method selects the simplex implementation backing Solve.
type Method int

const (
	// MethodTableau is the dense flat-tableau primal simplex: the default,
	// bit-reproducible against the recorded goldens.
	MethodTableau Method = iota
	// MethodRevised is the revised primal simplex: the basis is
	// LU-factorized (product-form eta updates between periodic
	// refactorizations) and reduced costs are priced against the
	// factorization. Required for WarmStart.
	MethodRevised
)

func (m Method) String() string {
	switch m {
	case MethodTableau:
		return "tableau"
	case MethodRevised:
		return "revised"
	default:
		return "unknown"
	}
}

// noteDefect records the first insertion-time malformation.
func (p *Problem) noteDefect(format string, args ...any) {
	if p.defect == nil {
		p.defect = fmt.Errorf(format, args...)
	}
}

// Defect returns the first malformation recorded at insertion time, or nil
// for a well-formed problem.
func (p *Problem) Defect() error { return p.defect }

// NewProblem returns an empty problem with the given optimization sense.
func NewProblem(sense Sense) *Problem {
	return &Problem{sense: sense}
}

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.cost) }

// NumRows returns the number of rows added so far.
func (p *Problem) NumRows() int { return len(p.rows) }

// AddVar adds a variable with bounds [lo, hi] and the given objective
// coefficient, returning its index. lo may be -Inf and hi may be +Inf.
// A NaN cost or bound, a +Inf lo, a -Inf hi, or lo > hi marks the problem
// malformed; the defect is reported by the next Solve instead of panicking
// here. The name is used only in error messages.
func (p *Problem) AddVar(name string, lo, hi, cost float64) int {
	if lo > hi {
		p.noteDefect("variable %q has lo %g > hi %g", name, lo, hi)
	}
	if math.IsNaN(lo) || math.IsInf(lo, 1) || math.IsNaN(hi) || math.IsInf(hi, -1) {
		p.noteDefect("variable %q has invalid bounds [%g, %g]", name, lo, hi)
	}
	if math.IsNaN(cost) || math.IsInf(cost, 0) {
		p.noteDefect("variable %q has non-finite cost %g", name, cost)
	}
	p.cost = append(p.cost, cost)
	p.lo = append(p.lo, lo)
	p.hi = append(p.hi, hi)
	p.names = append(p.names, name)
	return len(p.cost) - 1
}

// SetCost overwrites the objective coefficient of variable v. This allows
// reusing one constraint matrix for several objectives (e.g. the random
// objectives used to diversify Appendix-B solutions).
func (p *Problem) SetCost(v int, cost float64) {
	if math.IsNaN(cost) || math.IsInf(cost, 0) {
		p.noteDefect("variable %d given non-finite cost %g", v, cost)
	}
	p.cost[v] = cost
}

// AddRow adds the constraint Σ terms ⋈ rhs.
func (p *Problem) AddRow(op Op, rhs float64, terms ...Term) {
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
		p.noteDefect("row %d has non-finite rhs %g", len(p.rows), rhs)
	}
	p.checkTerms(terms)
	p.rows = append(p.rows, row{terms: cloneTerms(terms), op: op, rhs: rhs})
}

// SetRHS replaces the right-hand side of row r, keeping its operator and
// terms. Together with RowTerms it lets a caller reuse one LP skeleton
// across many solves that only perturb coefficients and right-hand sides.
func (p *Problem) SetRHS(r int, rhs float64) {
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
		p.noteDefect("row %d given non-finite rhs %g", r, rhs)
	}
	p.rows[r].rhs = rhs
}

// RowTerms returns the internal term slice of row r so callers can patch
// Coef values in place between solves. The sparsity pattern is fixed:
// callers must not modify Var fields, reorder, or grow the slice.
func (p *Problem) RowTerms(r int) []Term {
	return p.rows[r].terms
}

// AddRangeRow adds the two-sided constraint lo ≤ Σ terms ≤ hi.
func (p *Problem) AddRangeRow(lo, hi float64, terms ...Term) {
	if lo > hi || math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
		p.noteDefect("range row %d has invalid range [%g, %g]", len(p.rows), lo, hi)
	}
	p.checkTerms(terms)
	p.rows = append(p.rows, row{terms: cloneTerms(terms), rhs: hi, rangeLo: lo, isRange: true})
}

func (p *Problem) checkTerms(terms []Term) {
	for _, t := range terms {
		if t.Var < 0 || t.Var >= len(p.cost) {
			panic(fmt.Sprintf("linprog: term references unknown variable %d", t.Var))
		}
		if math.IsNaN(t.Coef) || math.IsInf(t.Coef, 0) {
			p.noteDefect("row %d has non-finite coefficient %g on variable %d", len(p.rows), t.Coef, t.Var)
		}
	}
}

// validate rescans the complete current problem data. It backs Solve's
// malformed-problem check: insertion-time defects (noteDefect) are hints,
// but SetRHS/SetCost legitimately overwrite values between solves, so a
// recorded defect is only fatal if the problem is *still* malformed.
func (p *Problem) validate() error {
	for j := range p.cost {
		if math.IsNaN(p.cost[j]) || math.IsInf(p.cost[j], 0) {
			return fmt.Errorf("variable %d (%q) has non-finite cost %g", j, p.names[j], p.cost[j])
		}
		lo, hi := p.lo[j], p.hi[j]
		if math.IsNaN(lo) || math.IsInf(lo, 1) || math.IsNaN(hi) || math.IsInf(hi, -1) || lo > hi {
			return fmt.Errorf("variable %d (%q) has invalid bounds [%g, %g]", j, p.names[j], lo, hi)
		}
	}
	for r := range p.rows {
		rw := &p.rows[r]
		if math.IsNaN(rw.rhs) || math.IsInf(rw.rhs, 0) {
			return fmt.Errorf("row %d has non-finite rhs %g", r, rw.rhs)
		}
		if rw.isRange && (math.IsNaN(rw.rangeLo) || math.IsInf(rw.rangeLo, 0) || rw.rangeLo > rw.rhs) {
			return fmt.Errorf("row %d has invalid range [%g, %g]", r, rw.rangeLo, rw.rhs)
		}
		for _, t := range rw.terms {
			if math.IsNaN(t.Coef) || math.IsInf(t.Coef, 0) {
				return fmt.Errorf("row %d has non-finite coefficient %g on variable %d", r, t.Coef, t.Var)
			}
		}
	}
	return nil
}

func cloneTerms(ts []Term) []Term {
	out := make([]Term, len(ts))
	copy(out, ts)
	return out
}

// Solution is the result of a successful Solve.
type Solution struct {
	Status    Status
	Objective float64
	x         []float64
	duals     []float64
	// Iterations counts simplex pivots across both phases.
	Iterations int
	// Restarted marks solutions recovered by the anti-cycling restart
	// (the first pass exhausted its budget; Bland's rule finished).
	Restarted bool
	// Rescaled marks solutions recovered by the row-equilibrated,
	// RHS-relaxed retry after the first basis failed verification.
	Rescaled bool
}

// Dual returns the shadow price of row r: the rate of change of the
// optimal objective per unit increase of the row's right-hand side
// (rhs for ≤/=/≥ rows, the upper bound for range rows), valid for small
// perturbations that keep the optimal basis. For a maximization, a binding
// ≤ row has a non-negative dual.
func (s *Solution) Dual(r int) float64 { return s.duals[r] }

// Value returns the optimal value of variable v.
func (s *Solution) Value(v int) float64 { return s.x[v] }

// Values returns a copy of the full primal solution vector (structural
// variables only, in AddVar order).
func (s *Solution) Values() []float64 {
	return append([]float64(nil), s.x...)
}
