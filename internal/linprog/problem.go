// Package linprog implements a dense two-phase primal simplex solver for
// linear programs with bounded variables. It is the optimization substrate
// for every LP the paper solves: the Stage-1 relaxed power assignment, the
// Stage-3 desired-execution-rate assignment (Equation 7 with fixed
// P-states), the Equation-21 baseline, the Equation-17 power bounds, and
// the Appendix-B cross-interference feasibility problem.
//
// The solver handles
//   - minimization and maximization,
//   - ≤ / ≥ / = and two-sided range rows,
//   - per-variable lower/upper bounds (including infinite bounds),
//
// using the textbook bounded-variable simplex with a dense tableau, Dantzig
// pricing, and a Bland anti-cycling fallback. Problem sizes in this
// repository are a few hundred rows by a few thousand columns, well within
// dense-tableau territory.
package linprog

import (
	"errors"
	"fmt"
	"math"
)

// Sense selects the optimization direction.
type Sense int

const (
	// Minimize the objective.
	Minimize Sense = iota
	// Maximize the objective.
	Maximize
)

// Op is a row comparison operator.
type Op int

const (
	// LE constrains a·x ≤ rhs.
	LE Op = iota
	// GE constrains a·x ≥ rhs.
	GE
	// EQ constrains a·x = rhs.
	EQ
)

// Inf is a convenience alias for +∞ bounds.
var Inf = math.Inf(1)

// Term is a single coefficient Coef on variable Var within a row.
type Term struct {
	Var  int
	Coef float64
}

// Status describes the outcome of Solve.
type Status int

const (
	// Optimal means an optimal solution was found.
	Optimal Status = iota
	// Infeasible means no point satisfies the constraints.
	Infeasible
	// Unbounded means the objective is unbounded over the feasible set.
	Unbounded
	// IterLimit means the iteration limit was exhausted.
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// ErrNotOptimal is wrapped by Solve errors when the status is not Optimal.
var ErrNotOptimal = errors.New("linprog: no optimal solution")

type row struct {
	terms []Term
	op    Op
	rhs   float64
	// rangeLo is used only when isRange: rangeLo ≤ a·x ≤ rhs.
	rangeLo float64
	isRange bool
}

// Problem is an LP under construction. Create one with NewProblem, add
// variables and rows, then call Solve. A Problem may be solved repeatedly;
// each Solve works on a fresh tableau.
type Problem struct {
	sense Sense
	cost  []float64
	lo    []float64
	hi    []float64
	names []string
	rows  []row

	// MaxIter optionally overrides the iteration budget (0 = automatic).
	MaxIter int
}

// NewProblem returns an empty problem with the given optimization sense.
func NewProblem(sense Sense) *Problem {
	return &Problem{sense: sense}
}

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.cost) }

// NumRows returns the number of rows added so far.
func (p *Problem) NumRows() int { return len(p.rows) }

// AddVar adds a variable with bounds [lo, hi] and the given objective
// coefficient, returning its index. lo may be -Inf and hi may be +Inf;
// lo must not exceed hi. The name is used only in error messages.
func (p *Problem) AddVar(name string, lo, hi, cost float64) int {
	if lo > hi {
		panic(fmt.Sprintf("linprog: variable %q has lo %g > hi %g", name, lo, hi))
	}
	p.cost = append(p.cost, cost)
	p.lo = append(p.lo, lo)
	p.hi = append(p.hi, hi)
	p.names = append(p.names, name)
	return len(p.cost) - 1
}

// SetCost overwrites the objective coefficient of variable v. This allows
// reusing one constraint matrix for several objectives (e.g. the random
// objectives used to diversify Appendix-B solutions).
func (p *Problem) SetCost(v int, cost float64) {
	p.cost[v] = cost
}

// AddRow adds the constraint Σ terms ⋈ rhs.
func (p *Problem) AddRow(op Op, rhs float64, terms ...Term) {
	p.checkTerms(terms)
	p.rows = append(p.rows, row{terms: cloneTerms(terms), op: op, rhs: rhs})
}

// SetRHS replaces the right-hand side of row r, keeping its operator and
// terms. Together with RowTerms it lets a caller reuse one LP skeleton
// across many solves that only perturb coefficients and right-hand sides.
func (p *Problem) SetRHS(r int, rhs float64) {
	p.rows[r].rhs = rhs
}

// RowTerms returns the internal term slice of row r so callers can patch
// Coef values in place between solves. The sparsity pattern is fixed:
// callers must not modify Var fields, reorder, or grow the slice.
func (p *Problem) RowTerms(r int) []Term {
	return p.rows[r].terms
}

// AddRangeRow adds the two-sided constraint lo ≤ Σ terms ≤ hi.
func (p *Problem) AddRangeRow(lo, hi float64, terms ...Term) {
	if lo > hi {
		panic(fmt.Sprintf("linprog: range row with lo %g > hi %g", lo, hi))
	}
	p.checkTerms(terms)
	p.rows = append(p.rows, row{terms: cloneTerms(terms), rhs: hi, rangeLo: lo, isRange: true})
}

func (p *Problem) checkTerms(terms []Term) {
	for _, t := range terms {
		if t.Var < 0 || t.Var >= len(p.cost) {
			panic(fmt.Sprintf("linprog: term references unknown variable %d", t.Var))
		}
		if math.IsNaN(t.Coef) || math.IsInf(t.Coef, 0) {
			panic(fmt.Sprintf("linprog: non-finite coefficient %g on variable %d", t.Coef, t.Var))
		}
	}
}

func cloneTerms(ts []Term) []Term {
	out := make([]Term, len(ts))
	copy(out, ts)
	return out
}

// Solution is the result of a successful Solve.
type Solution struct {
	Status    Status
	Objective float64
	x         []float64
	duals     []float64
	// Iterations counts simplex pivots across both phases.
	Iterations int
}

// Dual returns the shadow price of row r: the rate of change of the
// optimal objective per unit increase of the row's right-hand side
// (rhs for ≤/=/≥ rows, the upper bound for range rows), valid for small
// perturbations that keep the optimal basis. For a maximization, a binding
// ≤ row has a non-negative dual.
func (s *Solution) Dual(r int) float64 { return s.duals[r] }

// Value returns the optimal value of variable v.
func (s *Solution) Value(v int) float64 { return s.x[v] }

// Values returns a copy of the full primal solution vector (structural
// variables only, in AddVar order).
func (s *Solution) Values() []float64 {
	return append([]float64(nil), s.x...)
}
