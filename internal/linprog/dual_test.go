package linprog

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDualKnown2D(t *testing.T) {
	// max 3x + 5y; x ≤ 4; 2y ≤ 12; 3x + 2y ≤ 18. Optimal (2,6), obj 36.
	// Known duals: row 0 slack (dual 0), row 1 dual 3/2, row 2 dual 1.
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, Inf, 3)
	y := p.AddVar("y", 0, Inf, 5)
	p.AddRow(LE, 4, Term{x, 1})
	p.AddRow(LE, 12, Term{y, 2})
	p.AddRow(LE, 18, Term{x, 3}, Term{y, 2})
	sol := solveOK(t, p)
	want := []float64{0, 1.5, 1}
	for i, w := range want {
		if !approx(sol.Dual(i), w, 1e-8) {
			t.Errorf("Dual(%d) = %g, want %g", i, sol.Dual(i), w)
		}
	}
}

func TestDualMinimization(t *testing.T) {
	// min 2x + 3y s.t. x + y ≥ 10 (binding). Dual = 2 (x is cheaper):
	// raising the requirement by 1 costs 2.
	p := NewProblem(Minimize)
	x := p.AddVar("x", 0, Inf, 2)
	y := p.AddVar("y", 0, Inf, 3)
	p.AddRow(GE, 10, Term{x, 1}, Term{y, 1})
	sol := solveOK(t, p)
	if !approx(sol.Dual(0), 2, 1e-8) {
		t.Errorf("Dual = %g, want 2", sol.Dual(0))
	}
}

func TestDualEqualityRow(t *testing.T) {
	// max x + 2y s.t. x + y = 5, x ≤ 3 (bound). Optimal y=5: dual of the
	// equality = 2 (one more unit of rhs goes to y).
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, 3, 1)
	y := p.AddVar("y", 0, Inf, 2)
	p.AddRow(EQ, 5, Term{x, 1}, Term{y, 1})
	sol := solveOK(t, p)
	if !approx(sol.Dual(0), 2, 1e-8) {
		t.Errorf("Dual = %g, want 2", sol.Dual(0))
	}
}

// TestDualFiniteDifferenceProperty verifies the dual against a finite
// difference of the optimal objective on random knapsack LPs.
func TestDualFiniteDifferenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 2
		build := func(b float64) *Problem {
			r := rand.New(rand.NewSource(seed)) // same coefficients
			p := NewProblem(Maximize)
			terms := make([]Term, n)
			for i := 0; i < n; i++ {
				c := math.Round(r.Float64()*90)/10 + 0.1
				u := math.Round(r.Float64()*40)/10 + 0.2
				v := p.AddVar("", 0, u, c)
				terms[i] = Term{v, 1}
			}
			p.AddRow(LE, b, terms...)
			return p
		}
		b := 1 + rng.Float64()*5
		sol, err := build(b).Solve()
		if err != nil {
			return false
		}
		const eps = 1e-6
		up, err := build(b + eps).Solve()
		if err != nil {
			return false
		}
		fd := (up.Objective - sol.Objective) / eps
		// The dual matches the right-derivative of the optimal value.
		return math.Abs(fd-sol.Dual(0)) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestDualNonBindingRowIsZero(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, 1, 1)
	p.AddRow(LE, 100, Term{x, 1}) // slack row, never binding
	sol := solveOK(t, p)
	if !approx(sol.Dual(0), 0, 1e-9) {
		t.Errorf("non-binding dual = %g, want 0", sol.Dual(0))
	}
}

// checkDualCertificate audits sol's duals as an optimality certificate for
// p: dual sign conventions per row operator, complementary slackness (a
// row with a nonzero dual must be binding), and strong duality — the
// Lagrangian bound g(y) = Σ_i y_i·β_i + Σ_j d_j·(active bound of j) must
// reproduce the primal objective. β_i is the row's rhs (for a range row,
// the side the activity sits on, which complementary slackness pins when
// y_i ≠ 0). Reduced costs d_j = c_j − Σ_i y_i·a_ij are recomputed from
// the original problem data, independent of either solver core.
func checkDualCertificate(t *testing.T, tag string, p *Problem, sol *Solution) {
	t.Helper()
	m, n := p.NumRows(), p.NumVars()
	maxMag := 1 + math.Abs(sol.Objective)

	// Row activities and per-row dual contributions.
	act := make([]float64, m)
	for i := 0; i < m; i++ {
		for _, tm := range p.rows[i].terms {
			act[i] += tm.Coef * sol.Value(tm.Var)
		}
		if a := math.Abs(sol.Dual(i) * act[i]); a > maxMag {
			maxMag = a
		}
	}
	tol := 1e-6 * maxMag

	// Sign conventions: the dual is ∂z*/∂rhs in the user's sense, so for
	// Minimize a ≤ row can only help (y ≤ 0) and a ≥ row can only cost
	// (y ≥ 0); Maximize flips both. Equality and range rows are free.
	g := 0.0
	for i := 0; i < m; i++ {
		y := sol.Dual(i)
		r := &p.rows[i]
		if !r.isRange {
			switch {
			case r.op == LE && p.sense == Minimize && y > tol:
				t.Fatalf("%s: row %d (≤, minimize) has dual %g > 0", tag, i, y)
			case r.op == LE && p.sense == Maximize && y < -tol:
				t.Fatalf("%s: row %d (≤, maximize) has dual %g < 0", tag, i, y)
			case r.op == GE && p.sense == Minimize && y < -tol:
				t.Fatalf("%s: row %d (≥, minimize) has dual %g < 0", tag, i, y)
			case r.op == GE && p.sense == Maximize && y > tol:
				t.Fatalf("%s: row %d (≥, maximize) has dual %g > 0", tag, i, y)
			}
		}
		if math.Abs(y) > tol {
			// Complementary slackness: a priced row must be binding.
			lo, hi := r.rhs, r.rhs
			if r.isRange {
				lo = r.rangeLo
			}
			if act[i] > lo-tol && act[i] < hi+tol &&
				math.Abs(act[i]-lo) > tol && math.Abs(act[i]-hi) > tol {
				t.Fatalf("%s: row %d has dual %g but slack activity %g in (%g, %g)",
					tag, i, y, act[i], lo, hi)
			}
		}
		if r.isRange {
			g += y * act[i] // binding side when y ≠ 0; slack rows add y≈0 noise
		} else {
			g += y * r.rhs
		}
	}

	// Variable part: each reduced cost pushes its variable to a bound, and
	// that bound's contribution closes the duality gap.
	for j := 0; j < n; j++ {
		d := p.cost[j]
		for i := 0; i < m; i++ {
			for _, tm := range p.rows[i].terms {
				if tm.Var == j {
					d -= sol.Dual(i) * tm.Coef
				}
			}
		}
		if math.Abs(d) <= tol {
			continue
		}
		// Which bound the sign of d pins the variable to, in the user sense:
		// minimize wants x_j low when d > 0; maximize wants it high.
		atLo := d > 0
		if p.sense == Maximize {
			atLo = !atLo
		}
		b := p.lo[j]
		if !atLo {
			b = p.hi[j]
		}
		if math.IsInf(b, 0) {
			t.Fatalf("%s: var %d has reduced cost %g against an infinite bound (dual infeasible)", tag, j, d)
		}
		if math.Abs(sol.Value(j)-b) > tol {
			t.Fatalf("%s: var %d has reduced cost %g but sits at %g, not bound %g",
				tag, j, d, sol.Value(j), b)
		}
		g += d * b
	}
	if math.Abs(g-sol.Objective) > 1e-5*maxMag {
		t.Fatalf("%s: strong duality gap: dual bound %v, primal objective %v (tol %g)",
			tag, g, sol.Objective, 1e-5*maxMag)
	}
}

// TestDualStrongDualityProperty runs the dual certificate audit over the
// seeded random-LP population, for both solver cores: every Optimal
// solution's duals must satisfy sign conventions, complementary
// slackness, and strong duality against the original problem data.
func TestDualStrongDualityProperty(t *testing.T) {
	checked := 0
	for seed := int64(0); seed < 250; seed++ {
		for _, method := range []Method{MethodTableau, MethodRevised} {
			p := randomLP(seed)
			p.Method = method
			sol, err := p.Solve()
			if err != nil || sol.Status != Optimal {
				continue
			}
			checked++
			checkDualCertificate(t, method.String(), p, sol)
		}
	}
	if checked < 100 {
		t.Fatalf("only %d optimal instances audited — generator drifted", checked)
	}
}
