package linprog

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDualKnown2D(t *testing.T) {
	// max 3x + 5y; x ≤ 4; 2y ≤ 12; 3x + 2y ≤ 18. Optimal (2,6), obj 36.
	// Known duals: row 0 slack (dual 0), row 1 dual 3/2, row 2 dual 1.
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, Inf, 3)
	y := p.AddVar("y", 0, Inf, 5)
	p.AddRow(LE, 4, Term{x, 1})
	p.AddRow(LE, 12, Term{y, 2})
	p.AddRow(LE, 18, Term{x, 3}, Term{y, 2})
	sol := solveOK(t, p)
	want := []float64{0, 1.5, 1}
	for i, w := range want {
		if !approx(sol.Dual(i), w, 1e-8) {
			t.Errorf("Dual(%d) = %g, want %g", i, sol.Dual(i), w)
		}
	}
}

func TestDualMinimization(t *testing.T) {
	// min 2x + 3y s.t. x + y ≥ 10 (binding). Dual = 2 (x is cheaper):
	// raising the requirement by 1 costs 2.
	p := NewProblem(Minimize)
	x := p.AddVar("x", 0, Inf, 2)
	y := p.AddVar("y", 0, Inf, 3)
	p.AddRow(GE, 10, Term{x, 1}, Term{y, 1})
	sol := solveOK(t, p)
	if !approx(sol.Dual(0), 2, 1e-8) {
		t.Errorf("Dual = %g, want 2", sol.Dual(0))
	}
}

func TestDualEqualityRow(t *testing.T) {
	// max x + 2y s.t. x + y = 5, x ≤ 3 (bound). Optimal y=5: dual of the
	// equality = 2 (one more unit of rhs goes to y).
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, 3, 1)
	y := p.AddVar("y", 0, Inf, 2)
	p.AddRow(EQ, 5, Term{x, 1}, Term{y, 1})
	sol := solveOK(t, p)
	if !approx(sol.Dual(0), 2, 1e-8) {
		t.Errorf("Dual = %g, want 2", sol.Dual(0))
	}
}

// TestDualFiniteDifferenceProperty verifies the dual against a finite
// difference of the optimal objective on random knapsack LPs.
func TestDualFiniteDifferenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 2
		build := func(b float64) *Problem {
			r := rand.New(rand.NewSource(seed)) // same coefficients
			p := NewProblem(Maximize)
			terms := make([]Term, n)
			for i := 0; i < n; i++ {
				c := math.Round(r.Float64()*90)/10 + 0.1
				u := math.Round(r.Float64()*40)/10 + 0.2
				v := p.AddVar("", 0, u, c)
				terms[i] = Term{v, 1}
			}
			p.AddRow(LE, b, terms...)
			return p
		}
		b := 1 + rng.Float64()*5
		sol, err := build(b).Solve()
		if err != nil {
			return false
		}
		const eps = 1e-6
		up, err := build(b + eps).Solve()
		if err != nil {
			return false
		}
		fd := (up.Objective - sol.Objective) / eps
		// The dual matches the right-derivative of the optimal value.
		return math.Abs(fd-sol.Dual(0)) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestDualNonBindingRowIsZero(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, 1, 1)
	p.AddRow(LE, 100, Term{x, 1}) // slack row, never binding
	sol := solveOK(t, p)
	if !approx(sol.Dual(0), 0, 1e-9) {
		t.Errorf("non-binding dual = %g, want 0", sol.Dual(0))
	}
}
