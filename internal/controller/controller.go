// Package controller closes the loop around the paper's two-step scheme.
// The paper solves the first step once and runs open-loop; this package
// re-runs the three-stage assignment whenever a fault (see
// internal/faults) changes the plant — lost cooling capacity, dead nodes,
// a tighter power cap, or biased sensors — so the data center keeps
// honoring its power constraint and inlet redlines while collecting as
// much reward as the degraded hardware allows.
//
// Epoch boundaries are the union of a fixed epoch grid and the fault
// instants, so the controller reacts at the moment the plant changes
// rather than up to one epoch late. Between boundaries the plant is
// constant, which is what makes the safety argument airtight: every plan
// is verified (assign.Verify) against the planner's degraded model at the
// instant it takes effect, sensor bias only ever tightens the planner's
// redlines, and Stage 2 rounds powers down — so the truth-model telemetry
// can never exceed the cap or a redline while a verified plan is in force.
//
// The open-loop mode runs the paper's original scheme against the same
// fault schedule (the plan from the healthy plant stays frozen while
// hooks degrade the plant mid-run) and is the baseline the degraded
// -operation experiment compares against.
package controller

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"thermaldc/internal/assign"
	"thermaldc/internal/faults"
	"thermaldc/internal/flightrec"
	"thermaldc/internal/linprog"
	"thermaldc/internal/model"
	"thermaldc/internal/sched"
	"thermaldc/internal/sim"
	"thermaldc/internal/solvererr"
	"thermaldc/internal/telemetry"
	"thermaldc/internal/tempsearch"
	"thermaldc/internal/thermal"
	"thermaldc/internal/workload"
)

// Mode selects how the controller responds to faults.
type Mode int

const (
	// Reoptimize re-runs the first step at every epoch boundary where the
	// plant changed (the closed loop).
	Reoptimize Mode = iota
	// OpenLoop freezes the healthy plan and lets the faults land mid-run
	// (the paper's original scheme, as a baseline).
	OpenLoop
)

func (m Mode) String() string {
	if m == OpenLoop {
		return "open-loop"
	}
	return "re-optimizing"
}

// Config tunes a controller run.
type Config struct {
	// Horizon is the simulated window (s).
	Horizon float64
	// Epoch is the re-optimization grid spacing (s); fault instants are
	// added as extra boundaries.
	Epoch float64
	// Mode selects closed- or open-loop operation.
	Mode Mode
	// Assign configures the three-stage first step at each re-solve.
	Assign assign.Options
	// Tol is the verification tolerance (default 1e-6).
	Tol float64
	// SolveTimeout bounds the wall time of one epoch's whole trip down the
	// degradation ladder (warm, cold, and retry rungs share the budget).
	// Zero means no deadline.
	SolveTimeout time.Duration
	// SolveRetries is how many extra cold rebuild-and-solve attempts the
	// retry rung makes before the ladder falls to the previous plan.
	SolveRetries int
	// RetryBackoff is the pause before the first retry attempt; it doubles
	// per attempt and is cut short by the SolveTimeout deadline.
	RetryBackoff time.Duration
	// Recorder, when non-nil, publishes the run's telemetry: per-epoch
	// counters and gauges on its metrics registry, epoch/rung/stage/LP
	// spans on its tracer (if tracing is enabled), and one EpochSample row
	// per interval on its series sink (if one is attached). The recorder
	// is also threaded into the assignment pipeline, overriding
	// Assign.Recorder. Nil — the default — keeps the whole run on the
	// uninstrumented fast path. Telemetry never changes results.
	Recorder *telemetry.Recorder
	// MaxEpochReports bounds Result.Epochs: 0 (the default) keeps every
	// per-interval report, preserving historical behavior; N > 0 retains
	// only the last N reports (older ones are evicted as the run
	// progresses, keeping memory flat on long horizons). Run totals and
	// Result.EpochsSeen always cover the whole run — only the per-interval
	// detail is windowed.
	MaxEpochReports int
	// Checkpoint, when non-nil, receives the EpochDelta of every completed
	// closed-loop interval (see CheckpointSink). A sink error aborts the
	// run. Nil — the default — keeps the run on the unpersisted fast path.
	// Closed loop only: open-loop runs are single-shot and restart instead.
	Checkpoint CheckpointSink
	// ZoneFastPath enables the zone-decomposed Stage-1 fast path on
	// power-cap-only epochs (closed loop only). When the planner floor
	// partitions into thermally independent zones (internal/zones), an
	// epoch whose only change is the power cap re-solves Stage 1 at the
	// previous plan's outlet temperatures — per-zone LPs in parallel with
	// the shared cap split by price coordination — instead of re-running
	// the full outlet-temperature search. The plan still passes the same
	// assign.Verify gate; any zone-path failure falls back to the full
	// ladder, so safety is unchanged. Off by default: the fast path pins
	// the outlets on such epochs, which can differ from the re-searched
	// plan (it trades a little outlet optimality for a much cheaper
	// re-solve on large floors).
	ZoneFastPath bool
	// FlightRec, when non-nil, arms the failure flight recorder (closed
	// loop only): any epoch that engages the degradation ladder above
	// warm, fails plan verification, falls back from the zone fast path,
	// or ends with a classified solver error dumps a diagnostic bundle —
	// recent spans, metrics snapshot, the epoch's sample, fault state, LP
	// stats — to the recorder's directory (rate-limited and bounded; see
	// internal/flightrec). Dump failures are logged, never fatal: the
	// black box must not take down the plane. Telemetry never changes
	// results.
	FlightRec *flightrec.Recorder
	// Resume, when non-nil, restores a closed-loop run from a checkpoint
	// instead of starting at t = 0: the loop continues at the next epoch
	// boundary and the remaining intervals compute bit-identically to an
	// uninterrupted run (wall-clock fields excepted). The configuration
	// and inputs must match the checkpointed run's; mismatches the
	// controller can detect fail loudly. Closed loop only.
	Resume *Checkpoint
}

// DefaultConfig returns a closed-loop configuration: no solve deadline
// (each epoch solve runs to completion, as in the paper) and one cold
// retry should a solve ever fail.
func DefaultConfig(horizon, epoch float64) Config {
	return Config{
		Horizon:      horizon,
		Epoch:        epoch,
		Mode:         Reoptimize,
		Assign:       assign.DefaultOptions(),
		Tol:          1e-6,
		SolveRetries: 1,
		RetryBackoff: 25 * time.Millisecond,
	}
}

// Rung identifies the degradation-ladder step that produced an epoch's
// plan. Rungs are ordered best-first; anything at RungPrevPlan or below
// means every solve attempt failed.
type Rung int

const (
	// RungWarm: the warm incremental solver succeeded (the normal path).
	RungWarm Rung = iota
	// RungCold: the warm solve failed; a freshly built solver — new LP
	// skeleton, new tableau — succeeded.
	RungCold
	// RungRetry: a backed-off cold retry succeeded within the time budget.
	RungRetry
	// RungPrevPlan: all solves failed; the previous successfully solved
	// plan still verifies against the current planner model and stays in
	// force.
	RungPrevPlan
	// RungAllOff: last resort — every core off, zero desired rates.
	RungAllOff

	// NumRungs sizes per-rung tallies.
	NumRungs = int(RungAllOff) + 1
)

func (r Rung) String() string {
	switch r {
	case RungWarm:
		return "warm"
	case RungCold:
		return "cold"
	case RungRetry:
		return "retry"
	case RungPrevPlan:
		return "prev-plan"
	case RungAllOff:
		return "all-off"
	default:
		return fmt.Sprintf("Rung(%d)", int(r))
	}
}

// EpochReport is the telemetry of one inter-boundary interval.
type EpochReport struct {
	// Start and End bound the interval (s).
	Start, End float64
	// Resolved marks intervals that began with a first-step re-solve;
	// Fallback marks the re-solve failing and the all-off safe plan
	// taking over.
	Resolved, Fallback bool
	// Violations counts assign.Verify findings against the plan in force,
	// checked on the planner's degraded model (0 for every shipped
	// schedule).
	Violations int
	// Reward, Completed, Dropped and Lost are the interval's scheduling
	// outcomes.
	Reward                   float64
	Completed, Dropped, Lost int
	// MaxPower, MaxPowerExcess and MaxInletExcess are the truth-model
	// plant maxima over the interval (see sim.Result).
	MaxPower, MaxPowerExcess, MaxInletExcess float64
	// Plan is the assignment in force.
	Plan *assign.ThreeStageResult
	// Rung is the degradation-ladder step that produced the plan (only
	// meaningful when Resolved).
	Rung Rung
	// ZonePath marks a re-solve served by the zone-decomposed fast path
	// (Config.ZoneFastPath) instead of a trip down the ladder.
	ZonePath bool
	// ZoneRounds is the fast-path solve's price-coordination round count
	// (0 when the shortcut fired or the fast path was not used).
	ZoneRounds int
	// ZoneFallback marks an epoch whose zone fast-path attempt fell back:
	// either the zone solver delegated to its internal monolithic solver,
	// or the attempt failed outright and the full ladder served the epoch.
	ZoneFallback bool
	// Retries counts backed-off retry attempts spent on this solve.
	Retries int
	// SolveWall is the wall time of the whole ladder trip.
	SolveWall time.Duration
	// ErrKind classifies the last solve failure (Unknown when the warm
	// solve succeeded outright).
	ErrKind solvererr.Kind
	// LP aggregates the simplex counters (solves, pivots, workspace bytes
	// allocated, …) drained from the warm solver after this epoch's ladder
	// trip. Zero when the epoch did not re-solve.
	LP linprog.Stats
}

// Result aggregates a controller run.
type Result struct {
	Mode    Mode
	Horizon float64
	// TotalReward counts only tasks that survived (placed, not lost);
	// RewardRate = TotalReward / Horizon.
	TotalReward, RewardRate  float64
	Completed, Dropped, Lost int
	// Resolves and Fallbacks count first-step re-solves and safe-plan
	// activations (rungs at RungPrevPlan or below).
	Resolves, Fallbacks int
	// RungCounts tallies epochs by the ladder rung that produced their
	// plan; Retries totals backed-off retry attempts across the run.
	RungCounts [NumRungs]int
	Retries    int
	// ZoneFastPaths counts re-solves served by the zone-decomposed fast
	// path (tallied under RungWarm in RungCounts); ZoneFallbacks counts
	// epochs whose fast-path attempt fell back (see
	// EpochReport.ZoneFallback).
	ZoneFastPaths int
	ZoneFallbacks int
	// Violations sums planner-view Verify findings across all plans.
	Violations int
	// MaxPower, MaxPowerExcess and MaxInletExcess fold the per-epoch
	// truth-model maxima: Excess ≤ 0 means the cap/redlines held for the
	// whole run.
	MaxPower, MaxPowerExcess, MaxInletExcess float64
	// LP sums the per-epoch simplex counters across the run.
	LP linprog.Stats
	// Epochs holds the per-interval telemetry. With Config.MaxEpochReports
	// set it is a window over the last reports only (chronological after
	// the run finishes); EpochsSeen counts every interval regardless.
	Epochs     []EpochReport
	EpochsSeen int

	// epochCap/epochNext implement the MaxEpochReports retention ring:
	// when the cap is hit, accumulate overwrites the oldest slot and
	// finish rotates the ring back into chronological order.
	epochCap  int
	epochNext int
}

// Run drives the data center through the fault schedule. The base model is
// never mutated; every epoch plans against a fresh faults.Degrade
// projection. Tasks must be sorted by arrival time.
func Run(base *model.DataCenter, schedule faults.Schedule, tasks []workload.Task, cfg Config) (*Result, error) {
	return RunContext(context.Background(), base, schedule, tasks, cfg)
}

// RunContext is Run under a context: canceling ctx stops the run between
// epochs and cuts short any in-flight solve. Independently,
// cfg.SolveTimeout derives a per-epoch deadline from ctx for each trip
// down the degradation ladder.
func RunContext(ctx context.Context, base *model.DataCenter, schedule faults.Schedule, tasks []workload.Task, cfg Config) (*Result, error) {
	if cfg.Horizon <= 0 || cfg.Epoch <= 0 {
		return nil, fmt.Errorf("controller: horizon and epoch must be positive")
	}
	if err := schedule.Validate(base.NCRAC(), base.NCN()); err != nil {
		return nil, err
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-6
	}
	if cfg.Recorder != nil {
		// One recorder observes the whole pipeline: the assignment solvers
		// (stage/candidate/LP spans, solve counters) share it with the
		// controller's own epoch metrics.
		cfg.Assign.Recorder = cfg.Recorder
	}

	// Task-loss rule: a task is destroyed iff its host node dies before it
	// completes. The schedule is known (deterministic simulation), so the
	// timeline is computed clairvoyantly up front.
	failTimes := faults.NodeFailTimes(schedule, base.NCN())
	nodeOf := make([]int, base.NumCores())
	for j := range base.Nodes {
		lo, hi := base.CoreRange(j)
		for k := lo; k < hi; k++ {
			nodeOf[k] = j
		}
	}
	lost := func(core int, start, completion float64) bool {
		return completion > failTimes[nodeOf[core]]
	}

	if cfg.Mode == OpenLoop {
		if cfg.Checkpoint != nil || cfg.Resume != nil {
			return nil, fmt.Errorf("controller: open-loop runs are single-shot and do not checkpoint or resume")
		}
		return runOpenLoop(ctx, base, schedule, tasks, cfg, lost)
	}
	return runClosedLoop(ctx, base, schedule, tasks, cfg, lost)
}

// runClosedLoop re-plans at every boundary where the plant changed.
func runClosedLoop(ctx context.Context, base *model.DataCenter, schedule faults.Schedule, tasks []workload.Task, cfg Config, lost func(int, float64, float64) bool) (*Result, error) {
	bounds := boundaries(schedule, cfg.Horizon, cfg.Epoch)
	st := faults.NewState(base.NCRAC(), base.NCN())
	res := newResult(cfg)
	p := &truthPlant{}
	m := newRunMetrics(cfg.Recorder, base.NCRAC())
	tr := cfg.Recorder.Tracer()

	var (
		solver    *assign.ThreeStageSolver
		plannerDC *model.DataCenter
		plannerTM *thermal.Model
		plan      *assign.ThreeStageResult
		lastGood  *assign.ThreeStageResult
		s         *sched.Scheduler
		zp        *zonePath
	)
	freeAt := make([]float64, base.NumCores())
	evIdx := 0
	taskIdx := 0
	startBi := 0
	if ck := cfg.Resume; ck != nil {
		r, err := restoreClosedLoop(ctx, base, cfg, ck)
		if err != nil {
			return nil, err
		}
		res, st = r.res, r.st
		solver, plannerDC, plannerTM = r.solver, r.plannerDC, r.plannerTM
		plan, lastGood, s = r.plan, r.lastGood, r.s
		freeAt = r.freeAt
		evIdx, taskIdx, startBi = ck.EvIdx, ck.TaskIdx, ck.EpochsDone
		if cfg.ZoneFastPath && plannerDC != nil && plannerTM != nil {
			zp = newZonePath(plannerDC, plannerTM, cfg)
		}
		if startBi > len(bounds)-1 {
			return nil, fmt.Errorf("controller: resume checkpoint has %d epochs done but the run has only %d intervals",
				startBi, len(bounds)-1)
		}
	}
	for bi := startBi; bi+1 < len(bounds); bi++ {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("controller: run canceled at t=%g: %w", bounds[bi], cerr)
		}
		clkEpoch := tr.Begin()
		a, b := bounds[bi], bounds[bi+1]

		// Fold every event at or before this boundary into the state.
		structural, changed := false, false
		for evIdx < len(schedule.Events) && schedule.Events[evIdx].Time <= a {
			if st.Apply(schedule.Events[evIdx]) {
				structural = true
			}
			changed = true
			evIdx++
		}

		rep := EpochReport{Start: a, End: b}
		if solver == nil || structural {
			// Structure changed: project the degraded model and rebuild the
			// thermal model and LP skeleton.
			var err error
			plannerDC, err = st.Degrade(base, faults.Planner)
			if err != nil {
				return nil, err
			}
			plannerTM, err = thermal.New(plannerDC)
			if err != nil {
				return nil, err
			}
			solver, err = assign.NewThreeStageSolver(plannerDC, plannerTM, cfg.Assign)
			if err != nil {
				return nil, err
			}
			if cfg.ZoneFastPath {
				zp = newZonePath(plannerDC, plannerTM, cfg)
			}
			changed = true
		} else if changed {
			// Power-cap-only change: the Stage-1 LP reads Pconst per solve,
			// so mutating it in place reuses the warm solver.
			plannerDC.Pconst = base.Pconst * st.CapFactor
		}
		if changed || plan == nil {
			var prevOut []float64
			if plan != nil {
				prevOut = plan.Stage1.CracOut
			}
			// Power-cap-only epochs first offer the solve to the zone fast
			// path (when enabled and the floor decomposes): Stage 1 at the
			// previous plan's outlets via parallel per-zone LPs, no search.
			// A declined or failed attempt drops to the ladder untouched.
			zoned := false
			if zp != nil && !structural && len(prevOut) == plannerDC.NCRAC() {
				if p, wall, ok := zp.try(ctx, cfg, solver, plannerDC, plannerTM, prevOut); ok {
					plan = p
					zoned = true
					rep.Rung = RungWarm
					rep.ZonePath = true
					rep.SolveWall = wall
					res.RungCounts[RungWarm]++
					res.ZoneFastPaths++
					lastGood = plan
					zst := zp.solver.LastStats()
					rep.ZoneRounds = zst.Rounds
					if zst.Fallback {
						// The plan shipped, but via the zone solver's internal
						// monolithic fallback — worth flagging.
						rep.ZoneFallback = true
						res.ZoneFallbacks++
					}
				} else {
					// The attempt ran and failed; the full ladder serves the
					// epoch.
					rep.ZoneFallback = true
					res.ZoneFallbacks++
				}
			}
			if !zoned {
				rebuild := func() (*assign.ThreeStageSolver, error) {
					return assign.NewThreeStageSolver(plannerDC, plannerTM, cfg.Assign)
				}
				lad := runLadder(ctx, cfg, solver, rebuild, plannerDC, plannerTM, lastGood, prevOut)
				plan = lad.plan
				if lad.solver != nil {
					solver = lad.solver
				}
				rep.Rung = lad.rung
				rep.Retries = lad.retries
				rep.SolveWall = lad.wall
				rep.ErrKind = solvererr.Classify(lad.lastErr)
				res.RungCounts[lad.rung]++
				res.Retries += lad.retries
				if lad.rung >= RungPrevPlan {
					// Every solve attempt failed: the safe rungs took over.
					rep.Fallback = true
					res.Fallbacks++
				} else {
					lastGood = plan
				}
			}
			rep.Resolved = true
			res.Resolves++
			rep.Violations = len(assign.Verify(plannerDC, plannerTM, plan, cfg.Tol))
			res.Violations += rep.Violations
			// Drain the warm solver's simplex counters for this epoch (a
			// cold rebuild mid-ladder forfeits the failed attempt's counts);
			// the zone solvers' counters ride along whenever the fast path
			// was consulted.
			rep.LP = solver.TakeLPStats()
			if zp != nil {
				rep.LP.Add(zp.solver.TakeLPStats())
			}
			res.LP.Add(rep.LP)

			// A new plan means new desired rates, so the scheduler is
			// rebuilt with its ATC clock started at the boundary; core busy
			// state (freeAt) carries across, so occupancy is continuous.
			// Without a plan change the old scheduler keeps running — a
			// fault-free closed-loop run is then identical to a single
			// uninterrupted simulation.
			var err error
			s, err = sched.New(plannerDC, plan.PStates, plan.Stage3.TC)
			if err != nil {
				return nil, err
			}
			if cfg.Recorder != nil {
				s.SetRecorder(cfg.Recorder)
			}
			s.SetStartTime(a)
		}
		if err := p.update(base, st, plan); err != nil {
			return nil, err
		}
		lo := taskIdx
		for taskIdx < len(tasks) && tasks[taskIdx].Arrival < b {
			taskIdx++
		}
		out, err := sim.RunOpts(plannerDC, plan.PStates, plan.Stage3.TC, tasks[lo:taskIdx], b, sim.Options{
			Start:     a,
			Scheduler: s,
			FreeAt:    freeAt,
			Plant:     p,
			Lost:      lost,
		})
		if err != nil {
			return nil, err
		}
		rep.Plan = plan
		accumulate(res, &rep, out)
		samp, err := m.emitEpoch(res, &rep, p, cfg.FlightRec != nil)
		if err != nil {
			return nil, err
		}
		recordFlight(cfg, res, &rep, st, zp, samp)
		if cfg.Checkpoint != nil {
			d := &EpochDelta{
				EvIdx:       evIdx,
				TaskIdx:     taskIdx,
				Faults:      st.Clone(),
				FreeAt:      append([]float64(nil), freeAt...),
				SchedCounts: s.Counts(),
				SchedStart:  s.StartTime(),
				Report:      rep,
			}
			if err := cfg.Checkpoint(d); err != nil {
				return nil, fmt.Errorf("controller: checkpoint at t=%g: %w", b, err)
			}
		}
		tr.End(clkEpoch, telemetry.SpanEpoch, int32(res.EpochsSeen-1), rep.LP.Pivots, errBit(nil))
	}
	finish(res)
	return res, nil
}

// ladderOutcome is the result of one trip down the degradation ladder.
type ladderOutcome struct {
	plan    *assign.ThreeStageResult
	rung    Rung
	retries int
	wall    time.Duration
	lastErr error
	// solver is non-nil when a cold rebuild replaced the warm solver; the
	// caller adopts it so later epochs do not reuse a poisoned skeleton.
	solver *assign.ThreeStageSolver
}

// runLadder walks the degradation ladder for one epoch boundary:
//
//	warm incremental solve → cold solve on a fresh skeleton →
//	backed-off cold retries within the time budget →
//	previous verified plan (re-verified on the current model) → all off.
//
// Infeasibility and deadline expiry short-circuit the solve rungs: an
// infeasible model fails identically however often it is re-solved, and
// an expired budget leaves no time to retry in. Every solve attempt is
// guarded against panics, so a model-invariant violation degrades the
// epoch instead of killing the run.
func runLadder(parent context.Context, cfg Config, solver *assign.ThreeStageSolver, rebuild func() (*assign.ThreeStageSolver, error), plannerDC *model.DataCenter, plannerTM *thermal.Model, lastGood *assign.ThreeStageResult, prevOut []float64) ladderOutcome {
	start := time.Now()
	ctx := parent
	if cfg.SolveTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(parent, cfg.SolveTimeout)
		defer cancel()
	}
	out := ladderOutcome{}
	done := func(plan *assign.ThreeStageResult, rung Rung) ladderOutcome {
		out.plan, out.rung, out.wall = plan, rung, time.Since(start)
		return out
	}
	// solvable reports whether another solve attempt could change the
	// outcome: not after the budget expired, and not for an infeasible
	// model (deterministic — a rebuild solves the same LP).
	solvable := func() bool {
		if ctx.Err() != nil {
			return false
		}
		switch solvererr.Classify(out.lastErr) {
		case solvererr.Infeasible, solvererr.Timeout:
			return false
		}
		return true
	}

	// attempt wraps one solve rung with a SpanRung trace record (labelled
	// by the rung being attempted) on the recorder's tracer, if any.
	tr := cfg.Recorder.Tracer()
	attempt := func(rung Rung, s *assign.ThreeStageSolver) (*assign.ThreeStageResult, error) {
		clk := tr.Begin()
		plan, err := guardedSolve(ctx, s)
		tr.End(clk, telemetry.SpanRung, int32(rung), 0, errBit(err))
		return plan, err
	}

	if plan, err := attempt(RungWarm, solver); err == nil {
		return done(plan, RungWarm)
	} else {
		out.lastErr = err
	}

	if solvable() {
		if fresh, err := rebuild(); err != nil {
			out.lastErr = err
		} else {
			out.solver = fresh
			if plan, err := attempt(RungCold, fresh); err == nil {
				return done(plan, RungCold)
			} else {
				out.lastErr = err
			}
		}
	}

	backoff := cfg.RetryBackoff
	for i := 0; i < cfg.SolveRetries && solvable(); i++ {
		if backoff > 0 {
			t := time.NewTimer(backoff)
			select {
			case <-ctx.Done():
				t.Stop()
			case <-t.C:
			}
			backoff *= 2
			if ctx.Err() != nil {
				break
			}
		}
		out.retries++
		fresh, err := rebuild()
		if err != nil {
			out.lastErr = err
			continue
		}
		out.solver = fresh
		if plan, err := attempt(RungRetry, fresh); err == nil {
			return done(plan, RungRetry)
		} else {
			out.lastErr = err
		}
	}

	if lastGood != nil && planVerifies(plannerDC, plannerTM, lastGood, cfg.Tol) {
		return done(lastGood, RungPrevPlan)
	}
	return done(fallbackPlan(plannerDC, plannerTM, cfg.Assign.Search, prevOut), RungAllOff)
}

// guardedSolve runs one solve attempt with panic recovery and converts a
// Stage-1 infeasible outcome into a classified error, so the ladder only
// ever sees (verified-feasible plan, nil) or (nil, classified error).
func guardedSolve(ctx context.Context, solver *assign.ThreeStageSolver) (plan *assign.ThreeStageResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			plan = nil
			err = solvererr.New("controller", solvererr.Panic, fmt.Errorf("recovered solve panic: %v", r))
		}
	}()
	plan, err = solver.SolveContext(ctx)
	if err != nil {
		return nil, solvererr.Wrap("controller", err)
	}
	if !plan.Stage1.Feasible {
		return nil, solvererr.New("stage1", solvererr.Infeasible,
			fmt.Errorf("controller: stage-1 solution infeasible at outlets %v", plan.Stage1.CracOut))
	}
	return plan, nil
}

// planVerifies reports whether a previous plan still passes assign.Verify
// against the current planner model; a dimension mismatch (the model
// restructured since the plan was made) or a Verify panic counts as not
// verifying.
func planVerifies(dc *model.DataCenter, tm *thermal.Model, plan *assign.ThreeStageResult, tol float64) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	if len(plan.PStates) != dc.NumCores() || len(plan.Stage1.CracOut) != dc.NCRAC() {
		return false
	}
	return len(assign.Verify(dc, tm, plan, tol)) == 0
}

// runOpenLoop freezes the healthy plan and injects the faults as
// simulation hooks that mutate the physical plant mid-run.
func runOpenLoop(ctx context.Context, base *model.DataCenter, schedule faults.Schedule, tasks []workload.Task, cfg Config, lost func(int, float64, float64) bool) (*Result, error) {
	tm, err := thermal.New(base)
	if err != nil {
		return nil, err
	}
	solver, err := assign.NewThreeStageSolver(base, tm, cfg.Assign)
	if err != nil {
		return nil, err
	}
	plan, err := solver.SolveContext(ctx)
	if err != nil {
		return nil, err
	}
	res := newResult(cfg)
	res.Resolves = 1
	res.Violations = len(assign.Verify(base, tm, plan, cfg.Tol))
	res.LP = solver.TakeLPStats()

	st := faults.NewState(base.NCRAC(), base.NCN())
	p := &truthPlant{}
	if err := p.update(base, st, plan); err != nil {
		return nil, err
	}
	var hookErr error
	var hooks []sim.Hook
	for _, e := range schedule.Events {
		if e.Time >= cfg.Horizon {
			continue
		}
		e := e
		hooks = append(hooks, sim.Hook{Time: e.Time, Fire: func(now float64) {
			st.Apply(e)
			if err := p.update(base, st, plan); err != nil && hookErr == nil {
				hookErr = err
			}
		}})
	}
	out, err := sim.RunOpts(base, plan.PStates, plan.Stage3.TC, tasks, cfg.Horizon, sim.Options{
		Hooks:     hooks,
		Plant:     p,
		Lost:      lost,
		Telemetry: cfg.Recorder,
	})
	if err != nil {
		return nil, err
	}
	if hookErr != nil {
		return nil, hookErr
	}
	rep := EpochReport{Start: 0, End: cfg.Horizon, Resolved: true, Violations: res.Violations, Plan: plan, LP: res.LP}
	accumulate(res, &rep, out)
	// Open loop publishes one sample for the whole horizon; the plant
	// reflects its final (post-fault) state.
	if _, err := newRunMetrics(cfg.Recorder, base.NCRAC()).emitEpoch(res, &rep, p, false); err != nil {
		return nil, err
	}
	finish(res)
	return res, nil
}

// boundaries merges the epoch grid with the fault instants inside the
// horizon into a sorted, deduplicated boundary list starting at 0 and
// ending at the horizon.
func boundaries(schedule faults.Schedule, horizon, epoch float64) []float64 {
	b := []float64{0}
	for i := 1; ; i++ {
		t := float64(i) * epoch
		if t >= horizon {
			break
		}
		b = append(b, t)
	}
	for _, e := range schedule.Events {
		if e.Time > 0 && e.Time < horizon {
			b = append(b, e.Time)
		}
	}
	b = append(b, horizon)
	sort.Float64s(b)
	out := b[:1]
	for _, t := range b[1:] {
		if t > out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}

// fallbackPlan is the last-resort safe plan: every core off, desired
// rates zero. The CRAC outlets still matter — after a cooling fault,
// outlets carried from a healthy plan (or pinned at the CRAC redline)
// can overheat the inlets even with the fleet off — so the candidates
// (previous plan's outlets, uniform redline, then a uniform scan of the
// search lattice from hottest to coldest) are checked against the
// planner's thermal model under base power only, and the first one that
// keeps the inlets under redline and the total power under the cap wins.
// If nothing is fully feasible the least-violating candidate ships:
// best-effort, like the all-off rung it serves.
func fallbackPlan(dc *model.DataCenter, tm *thermal.Model, search tempsearch.Config, prevOut []float64) *assign.ThreeStageResult {
	pstates := make([]int, dc.NumCores())
	for j := range dc.Nodes {
		nt := dc.NodeType(j)
		lo, hi := dc.CoreRange(j)
		for k := lo; k < hi; k++ {
			pstates[k] = nt.OffState()
		}
	}
	npow := make([]float64, dc.NCN())
	for j := range dc.Nodes {
		npow[j] = dc.NodeType(j).BasePower
	}

	var best []float64
	bestViol := math.Inf(1)
	// consider reports whether out is fully safe for the all-off load and
	// tracks the least-violating candidate for the nothing-fits case. The
	// violation mixes kW and °C, which is fine for a last-resort ranking.
	consider := func(out []float64) bool {
		viol := math.Max(tm.TotalPower(out, npow)-dc.Pconst, -tm.RedlineSlack(tm.InletTemps(out, npow)))
		if viol < bestViol {
			bestViol = viol
			best = append([]float64(nil), out...)
		}
		return viol <= 0
	}
	safe := false
	if len(prevOut) == dc.NCRAC() {
		safe = consider(prevOut)
	}
	if !safe {
		uniform := make([]float64, dc.NCRAC())
		setAll := func(t float64) []float64 {
			for i := range uniform {
				uniform[i] = t
			}
			return uniform
		}
		safe = consider(setAll(dc.RedlineCRAC))
		step := search.FineStep
		if step <= 0 {
			step = 1
		}
		// Hottest first: less CRAC power for the same (tiny) heat load.
		for t := search.Hi; t >= search.Lo-1e-9 && !safe; t -= step {
			safe = consider(setAll(t))
		}
	}

	tc := make([][]float64, dc.T())
	for i := range tc {
		tc[i] = make([]float64, dc.NumCores())
	}
	return &assign.ThreeStageResult{
		Stage1: &assign.Stage1Result{
			CracOut:       best,
			NodeCorePower: make([]float64, dc.NCN()),
			NodePower:     npow,
			Feasible:      safe,
		},
		PStates: pstates,
		Stage3:  &assign.Stage3Result{TC: tc, CoreUtilization: make([]float64, dc.NumCores())},
	}
}

func newResult(cfg Config) *Result {
	return &Result{
		Mode:           cfg.Mode,
		Horizon:        cfg.Horizon,
		MaxPowerExcess: math.Inf(-1),
		MaxInletExcess: math.Inf(-1),
		epochCap:       cfg.MaxEpochReports,
	}
}

// accumulate folds one interval's sim result into the epoch report and the
// run totals.
func accumulate(res *Result, rep *EpochReport, out *sim.Result) {
	rep.Reward = out.TotalReward
	rep.Completed, rep.Dropped, rep.Lost = out.Completed, out.Dropped, out.Lost
	rep.MaxPower, rep.MaxPowerExcess, rep.MaxInletExcess = out.MaxPower, out.MaxPowerExcess, out.MaxInletExcess
	res.TotalReward += out.TotalReward
	res.Completed += out.Completed
	res.Dropped += out.Dropped
	res.Lost += out.Lost
	if out.MaxPower > res.MaxPower {
		res.MaxPower = out.MaxPower
	}
	if out.MaxPowerExcess > res.MaxPowerExcess {
		res.MaxPowerExcess = out.MaxPowerExcess
	}
	if out.MaxInletExcess > res.MaxInletExcess {
		res.MaxInletExcess = out.MaxInletExcess
	}
	res.EpochsSeen++
	if res.epochCap > 0 && len(res.Epochs) == res.epochCap {
		res.Epochs[res.epochNext] = *rep
		res.epochNext = (res.epochNext + 1) % res.epochCap
	} else {
		res.Epochs = append(res.Epochs, *rep)
	}
}

func finish(res *Result) {
	if res.Horizon > 0 {
		res.RewardRate = res.TotalReward / res.Horizon
	}
	// Unwind the retention ring so Epochs reads oldest-first.
	if res.epochNext > 0 {
		rot := make([]EpochReport, 0, len(res.Epochs))
		rot = append(rot, res.Epochs[res.epochNext:]...)
		rot = append(rot, res.Epochs[:res.epochNext]...)
		res.Epochs = rot
		res.epochNext = 0
	}
}
