// Package controller closes the loop around the paper's two-step scheme.
// The paper solves the first step once and runs open-loop; this package
// re-runs the three-stage assignment whenever a fault (see
// internal/faults) changes the plant — lost cooling capacity, dead nodes,
// a tighter power cap, or biased sensors — so the data center keeps
// honoring its power constraint and inlet redlines while collecting as
// much reward as the degraded hardware allows.
//
// Epoch boundaries are the union of a fixed epoch grid and the fault
// instants, so the controller reacts at the moment the plant changes
// rather than up to one epoch late. Between boundaries the plant is
// constant, which is what makes the safety argument airtight: every plan
// is verified (assign.Verify) against the planner's degraded model at the
// instant it takes effect, sensor bias only ever tightens the planner's
// redlines, and Stage 2 rounds powers down — so the truth-model telemetry
// can never exceed the cap or a redline while a verified plan is in force.
//
// The open-loop mode runs the paper's original scheme against the same
// fault schedule (the plan from the healthy plant stays frozen while
// hooks degrade the plant mid-run) and is the baseline the degraded
// -operation experiment compares against.
package controller

import (
	"fmt"
	"math"
	"sort"

	"thermaldc/internal/assign"
	"thermaldc/internal/faults"
	"thermaldc/internal/model"
	"thermaldc/internal/sched"
	"thermaldc/internal/sim"
	"thermaldc/internal/thermal"
	"thermaldc/internal/workload"
)

// Mode selects how the controller responds to faults.
type Mode int

const (
	// Reoptimize re-runs the first step at every epoch boundary where the
	// plant changed (the closed loop).
	Reoptimize Mode = iota
	// OpenLoop freezes the healthy plan and lets the faults land mid-run
	// (the paper's original scheme, as a baseline).
	OpenLoop
)

func (m Mode) String() string {
	if m == OpenLoop {
		return "open-loop"
	}
	return "re-optimizing"
}

// Config tunes a controller run.
type Config struct {
	// Horizon is the simulated window (s).
	Horizon float64
	// Epoch is the re-optimization grid spacing (s); fault instants are
	// added as extra boundaries.
	Epoch float64
	// Mode selects closed- or open-loop operation.
	Mode Mode
	// Assign configures the three-stage first step at each re-solve.
	Assign assign.Options
	// Tol is the verification tolerance (default 1e-6).
	Tol float64
}

// DefaultConfig returns a closed-loop configuration.
func DefaultConfig(horizon, epoch float64) Config {
	return Config{Horizon: horizon, Epoch: epoch, Mode: Reoptimize, Assign: assign.DefaultOptions(), Tol: 1e-6}
}

// EpochReport is the telemetry of one inter-boundary interval.
type EpochReport struct {
	// Start and End bound the interval (s).
	Start, End float64
	// Resolved marks intervals that began with a first-step re-solve;
	// Fallback marks the re-solve failing and the all-off safe plan
	// taking over.
	Resolved, Fallback bool
	// Violations counts assign.Verify findings against the plan in force,
	// checked on the planner's degraded model (0 for every shipped
	// schedule).
	Violations int
	// Reward, Completed, Dropped and Lost are the interval's scheduling
	// outcomes.
	Reward                   float64
	Completed, Dropped, Lost int
	// MaxPower, MaxPowerExcess and MaxInletExcess are the truth-model
	// plant maxima over the interval (see sim.Result).
	MaxPower, MaxPowerExcess, MaxInletExcess float64
	// Plan is the assignment in force.
	Plan *assign.ThreeStageResult
}

// Result aggregates a controller run.
type Result struct {
	Mode    Mode
	Horizon float64
	// TotalReward counts only tasks that survived (placed, not lost);
	// RewardRate = TotalReward / Horizon.
	TotalReward, RewardRate  float64
	Completed, Dropped, Lost int
	// Resolves and Fallbacks count first-step re-solves and safe-plan
	// activations.
	Resolves, Fallbacks int
	// Violations sums planner-view Verify findings across all plans.
	Violations int
	// MaxPower, MaxPowerExcess and MaxInletExcess fold the per-epoch
	// truth-model maxima: Excess ≤ 0 means the cap/redlines held for the
	// whole run.
	MaxPower, MaxPowerExcess, MaxInletExcess float64
	// Epochs holds the per-interval telemetry.
	Epochs []EpochReport
}

// Run drives the data center through the fault schedule. The base model is
// never mutated; every epoch plans against a fresh faults.Degrade
// projection. Tasks must be sorted by arrival time.
func Run(base *model.DataCenter, schedule faults.Schedule, tasks []workload.Task, cfg Config) (*Result, error) {
	if cfg.Horizon <= 0 || cfg.Epoch <= 0 {
		return nil, fmt.Errorf("controller: horizon and epoch must be positive")
	}
	if err := schedule.Validate(base.NCRAC(), base.NCN()); err != nil {
		return nil, err
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-6
	}

	// Task-loss rule: a task is destroyed iff its host node dies before it
	// completes. The schedule is known (deterministic simulation), so the
	// timeline is computed clairvoyantly up front.
	failTimes := faults.NodeFailTimes(schedule, base.NCN())
	nodeOf := make([]int, base.NumCores())
	for j := range base.Nodes {
		lo, hi := base.CoreRange(j)
		for k := lo; k < hi; k++ {
			nodeOf[k] = j
		}
	}
	lost := func(core int, start, completion float64) bool {
		return completion > failTimes[nodeOf[core]]
	}

	if cfg.Mode == OpenLoop {
		return runOpenLoop(base, schedule, tasks, cfg, lost)
	}
	return runClosedLoop(base, schedule, tasks, cfg, lost)
}

// runClosedLoop re-plans at every boundary where the plant changed.
func runClosedLoop(base *model.DataCenter, schedule faults.Schedule, tasks []workload.Task, cfg Config, lost func(int, float64, float64) bool) (*Result, error) {
	bounds := boundaries(schedule, cfg.Horizon, cfg.Epoch)
	st := faults.NewState(base.NCRAC(), base.NCN())
	res := newResult(cfg)
	p := &truthPlant{}

	var (
		solver    *assign.ThreeStageSolver
		plannerDC *model.DataCenter
		plannerTM *thermal.Model
		plan      *assign.ThreeStageResult
		s         *sched.Scheduler
	)
	freeAt := make([]float64, base.NumCores())
	evIdx := 0
	taskIdx := 0
	for bi := 0; bi+1 < len(bounds); bi++ {
		a, b := bounds[bi], bounds[bi+1]

		// Fold every event at or before this boundary into the state.
		structural, changed := false, false
		for evIdx < len(schedule.Events) && schedule.Events[evIdx].Time <= a {
			if st.Apply(schedule.Events[evIdx]) {
				structural = true
			}
			changed = true
			evIdx++
		}

		rep := EpochReport{Start: a, End: b}
		if solver == nil || structural {
			// Structure changed: project the degraded model and rebuild the
			// thermal model and LP skeleton.
			var err error
			plannerDC, err = st.Degrade(base, faults.Planner)
			if err != nil {
				return nil, err
			}
			plannerTM, err = thermal.New(plannerDC)
			if err != nil {
				return nil, err
			}
			solver, err = assign.NewThreeStageSolver(plannerDC, plannerTM, cfg.Assign)
			if err != nil {
				return nil, err
			}
			changed = true
		} else if changed {
			// Power-cap-only change: the Stage-1 LP reads Pconst per solve,
			// so mutating it in place reuses the warm solver.
			plannerDC.Pconst = base.Pconst * st.CapFactor
		}
		if changed || plan == nil {
			next, err := solver.Solve()
			if err == nil && next.Stage1.Feasible {
				plan = next
			} else {
				// Infeasible plant: fall back to the all-off safe plan (the
				// shipped fault generators never push the plant this far).
				var prevOut []float64
				if plan != nil {
					prevOut = plan.Stage1.CracOut
				}
				plan = fallbackPlan(plannerDC, prevOut)
				rep.Fallback = true
				res.Fallbacks++
			}
			rep.Resolved = true
			res.Resolves++
			rep.Violations = len(assign.Verify(plannerDC, plannerTM, plan, cfg.Tol))
			res.Violations += rep.Violations

			// A new plan means new desired rates, so the scheduler is
			// rebuilt with its ATC clock started at the boundary; core busy
			// state (freeAt) carries across, so occupancy is continuous.
			// Without a plan change the old scheduler keeps running — a
			// fault-free closed-loop run is then identical to a single
			// uninterrupted simulation.
			s, err = sched.New(plannerDC, plan.PStates, plan.Stage3.TC)
			if err != nil {
				return nil, err
			}
			s.SetStartTime(a)
		}
		if err := p.update(base, st, plan); err != nil {
			return nil, err
		}
		lo := taskIdx
		for taskIdx < len(tasks) && tasks[taskIdx].Arrival < b {
			taskIdx++
		}
		out, err := sim.RunOpts(plannerDC, plan.PStates, plan.Stage3.TC, tasks[lo:taskIdx], b, sim.Options{
			Start:     a,
			Scheduler: s,
			FreeAt:    freeAt,
			Plant:     p,
			Lost:      lost,
		})
		if err != nil {
			return nil, err
		}
		rep.Plan = plan
		accumulate(res, &rep, out)
	}
	finish(res)
	return res, nil
}

// runOpenLoop freezes the healthy plan and injects the faults as
// simulation hooks that mutate the physical plant mid-run.
func runOpenLoop(base *model.DataCenter, schedule faults.Schedule, tasks []workload.Task, cfg Config, lost func(int, float64, float64) bool) (*Result, error) {
	tm, err := thermal.New(base)
	if err != nil {
		return nil, err
	}
	plan, err := assign.ThreeStage(base, tm, cfg.Assign)
	if err != nil {
		return nil, err
	}
	res := newResult(cfg)
	res.Resolves = 1
	res.Violations = len(assign.Verify(base, tm, plan, cfg.Tol))

	st := faults.NewState(base.NCRAC(), base.NCN())
	p := &truthPlant{}
	if err := p.update(base, st, plan); err != nil {
		return nil, err
	}
	var hookErr error
	var hooks []sim.Hook
	for _, e := range schedule.Events {
		if e.Time >= cfg.Horizon {
			continue
		}
		e := e
		hooks = append(hooks, sim.Hook{Time: e.Time, Fire: func(now float64) {
			st.Apply(e)
			if err := p.update(base, st, plan); err != nil && hookErr == nil {
				hookErr = err
			}
		}})
	}
	out, err := sim.RunOpts(base, plan.PStates, plan.Stage3.TC, tasks, cfg.Horizon, sim.Options{
		Hooks: hooks,
		Plant: p,
		Lost:  lost,
	})
	if err != nil {
		return nil, err
	}
	if hookErr != nil {
		return nil, hookErr
	}
	rep := EpochReport{Start: 0, End: cfg.Horizon, Resolved: true, Violations: res.Violations, Plan: plan}
	accumulate(res, &rep, out)
	finish(res)
	return res, nil
}

// boundaries merges the epoch grid with the fault instants inside the
// horizon into a sorted, deduplicated boundary list starting at 0 and
// ending at the horizon.
func boundaries(schedule faults.Schedule, horizon, epoch float64) []float64 {
	b := []float64{0}
	for i := 1; ; i++ {
		t := float64(i) * epoch
		if t >= horizon {
			break
		}
		b = append(b, t)
	}
	for _, e := range schedule.Events {
		if e.Time > 0 && e.Time < horizon {
			b = append(b, e.Time)
		}
	}
	b = append(b, horizon)
	sort.Float64s(b)
	out := b[:1]
	for _, t := range b[1:] {
		if t > out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}

// fallbackPlan is the last-resort safe plan: every core off, desired rates
// zero, outlets kept from the previous plan (or the model's redline for a
// first-epoch failure). With no compute power the power constraint has
// maximum headroom; this is best-effort, not verified.
func fallbackPlan(dc *model.DataCenter, prevOut []float64) *assign.ThreeStageResult {
	pstates := make([]int, dc.NumCores())
	for j := range dc.Nodes {
		nt := dc.NodeType(j)
		lo, hi := dc.CoreRange(j)
		for k := lo; k < hi; k++ {
			pstates[k] = nt.OffState()
		}
	}
	out := append([]float64(nil), prevOut...)
	if len(out) != dc.NCRAC() {
		out = make([]float64, dc.NCRAC())
		for i := range out {
			out[i] = dc.RedlineCRAC
		}
	}
	tc := make([][]float64, dc.T())
	for i := range tc {
		tc[i] = make([]float64, dc.NumCores())
	}
	npow := make([]float64, dc.NCN())
	for j := range dc.Nodes {
		npow[j] = dc.NodeType(j).BasePower
	}
	return &assign.ThreeStageResult{
		Stage1: &assign.Stage1Result{
			CracOut:       out,
			NodeCorePower: make([]float64, dc.NCN()),
			NodePower:     npow,
		},
		PStates: pstates,
		Stage3:  &assign.Stage3Result{TC: tc, CoreUtilization: make([]float64, dc.NumCores())},
	}
}

func newResult(cfg Config) *Result {
	return &Result{
		Mode:           cfg.Mode,
		Horizon:        cfg.Horizon,
		MaxPowerExcess: math.Inf(-1),
		MaxInletExcess: math.Inf(-1),
	}
}

// accumulate folds one interval's sim result into the epoch report and the
// run totals.
func accumulate(res *Result, rep *EpochReport, out *sim.Result) {
	rep.Reward = out.TotalReward
	rep.Completed, rep.Dropped, rep.Lost = out.Completed, out.Dropped, out.Lost
	rep.MaxPower, rep.MaxPowerExcess, rep.MaxInletExcess = out.MaxPower, out.MaxPowerExcess, out.MaxInletExcess
	res.TotalReward += out.TotalReward
	res.Completed += out.Completed
	res.Dropped += out.Dropped
	res.Lost += out.Lost
	if out.MaxPower > res.MaxPower {
		res.MaxPower = out.MaxPower
	}
	if out.MaxPowerExcess > res.MaxPowerExcess {
		res.MaxPowerExcess = out.MaxPowerExcess
	}
	if out.MaxInletExcess > res.MaxInletExcess {
		res.MaxInletExcess = out.MaxInletExcess
	}
	res.Epochs = append(res.Epochs, *rep)
}

func finish(res *Result) {
	if res.Horizon > 0 {
		res.RewardRate = res.TotalReward / res.Horizon
	}
}
