package controller_test

import (
	"testing"
	"time"

	"thermaldc/internal/controller"
	"thermaldc/internal/faults"
	"thermaldc/internal/scenario"
	"thermaldc/internal/stats"
	"thermaldc/internal/workload"
)

// TestInvariantFuzzedSchedules is the subsystem's safety net: across many
// fuzzed (scenario, fault schedule) pairs, the re-optimizing controller
// must keep the truth-model plant inside its power cap and inlet redlines
// for the whole run, and every re-solved plan must pass assign.Verify's
// independent constraint math with zero violations. The schedules come
// from the shipped generator at its default severity bounds — the envelope
// the package promises to survive without falling back.
func TestInvariantFuzzedSchedules(t *testing.T) {
	const tol = 1e-6
	runs := 50
	if testing.Short() {
		runs = 10
	}
	done := 0
	for seed := int64(0); done < runs; seed++ {
		cfg := scenario.Default(0.3, 0.1, seed)
		cfg.NCracs = 2
		cfg.NNodes = 8 + int(seed%5)
		sc, err := scenario.Build(cfg)
		if err != nil {
			// Some seeds draw a fleet the redlines cannot cool at all;
			// those are not this test's concern.
			continue
		}
		done++
		const horizon = 30.0
		gen := faults.DefaultGenConfig(seed*31+7, horizon, sc.DC.NCRAC(), sc.DC.NCN())
		// Vary the schedule shape with the seed, staying inside the
		// generator's default severity bounds.
		gen.CracDegradations = int(seed % 3)
		gen.PowerSteps = 1 + int(seed%2)
		gen.SensorOffsets = int(seed % 2)
		schedule, err := faults.Generate(gen)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tasks := workload.GenerateTasks(sc.DC, horizon, stats.NewRand(seed+1000))

		res, err := controller.Run(sc.DC, schedule, tasks, controller.DefaultConfig(horizon, 10))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Violations != 0 {
			t.Errorf("seed %d: %d Verify violations across %d re-solves", seed, res.Violations, res.Resolves)
		}
		if res.Fallbacks != 0 {
			t.Errorf("seed %d: %d fallbacks under default-severity faults", seed, res.Fallbacks)
		}
		for _, ep := range res.Epochs {
			if ep.MaxPowerExcess > tol {
				t.Errorf("seed %d: epoch [%g, %g): power cap exceeded by %g kW",
					seed, ep.Start, ep.End, ep.MaxPowerExcess)
			}
			if ep.MaxInletExcess > tol {
				t.Errorf("seed %d: epoch [%g, %g): inlet redline exceeded by %g °C",
					seed, ep.Start, ep.End, ep.MaxInletExcess)
			}
		}
		if t.Failed() {
			t.Fatalf("seed %d: schedule was %v", seed, schedule.Events)
		}
	}
}

// TestInvariantTightSolveDeadline starves every epoch re-solve of wall
// time: each trip down the degradation ladder times out immediately and
// the safe rungs (previous plan / all-off) must carry the run. The safety
// contract does not relax — the truth-model plant stays inside the power
// cap and inlet redlines for every fuzzed schedule, with no panics — the
// run just earns less reward.
func TestInvariantTightSolveDeadline(t *testing.T) {
	const tol = 1e-6
	runs := 50
	if testing.Short() {
		runs = 10
	}
	done := 0
	engaged := 0
	for seed := int64(0); done < runs; seed++ {
		cfg := scenario.Default(0.3, 0.1, seed)
		cfg.NCracs = 2
		cfg.NNodes = 8 + int(seed%5)
		sc, err := scenario.Build(cfg)
		if err != nil {
			continue
		}
		done++
		const horizon = 30.0
		gen := faults.DefaultGenConfig(seed*31+7, horizon, sc.DC.NCRAC(), sc.DC.NCN())
		gen.CracDegradations = int(seed % 3)
		gen.PowerSteps = 1 + int(seed%2)
		gen.SensorOffsets = int(seed % 2)
		schedule, err := faults.Generate(gen)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tasks := workload.GenerateTasks(sc.DC, horizon, stats.NewRand(seed+1000))

		run := controller.DefaultConfig(horizon, 10)
		run.SolveTimeout = time.Nanosecond // no solve can finish in this
		res, err := controller.Run(sc.DC, schedule, tasks, run)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		engaged += res.RungCounts[controller.RungPrevPlan] + res.RungCounts[controller.RungAllOff]
		if res.Violations != 0 {
			t.Errorf("seed %d: %d Verify violations across %d starved re-solves", seed, res.Violations, res.Resolves)
		}
		for _, ep := range res.Epochs {
			if ep.MaxPowerExcess > tol {
				t.Errorf("seed %d: epoch [%g, %g): power cap exceeded by %g kW on rung %v",
					seed, ep.Start, ep.End, ep.MaxPowerExcess, ep.Rung)
			}
			if ep.MaxInletExcess > tol {
				t.Errorf("seed %d: epoch [%g, %g): inlet redline exceeded by %g °C on rung %v",
					seed, ep.Start, ep.End, ep.MaxInletExcess, ep.Rung)
			}
		}
		if t.Failed() {
			t.Fatalf("seed %d: schedule was %v", seed, schedule.Events)
		}
	}
	if engaged == 0 {
		t.Fatal("the degradation ladder never engaged under a 1ns solve deadline")
	}
}
