package controller_test

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"thermaldc/internal/controller"
	"thermaldc/internal/stats"
	"thermaldc/internal/workload"
)

// normalizeWall zeroes the wall-clock fields, the only part of a Result
// that legitimately differs between an uninterrupted and a resumed run.
func normalizeWall(res *controller.Result) {
	for i := range res.Epochs {
		res.Epochs[i].SolveWall = 0
	}
}

// gobRoundTrip pushes a checkpoint through gob, as the persistence layer
// does, so the matrix also proves the checkpoint survives serialization.
func gobRoundTrip(t *testing.T, ck *controller.Checkpoint) *controller.Checkpoint {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ck); err != nil {
		t.Fatalf("gob encode: %v", err)
	}
	out := new(controller.Checkpoint)
	if err := gob.NewDecoder(&buf).Decode(out); err != nil {
		t.Fatalf("gob decode: %v", err)
	}
	return out
}

// TestResumeMatrixBitIdentical is the exact-resume property: for every
// epoch k, a run killed after epoch k and resumed from its checkpoint
// finishes with a Result identical — bit for bit, wall clock excepted —
// to the uninterrupted run. Checkpoints take a gob round trip on the way,
// like the on-disk journal's.
func TestResumeMatrixBitIdentical(t *testing.T) {
	sc := buildScenario(t, 1, 10)
	const horizon = 40.0
	schedule := handSchedule(horizon)
	cfg := controller.DefaultConfig(horizon, 10)

	var deltas []*controller.EpochDelta
	cfg.Checkpoint = func(d *controller.EpochDelta) error {
		deltas = append(deltas, d)
		return nil
	}
	tasks := workload.GenerateTasks(sc.DC, horizon, stats.NewRand(31))
	golden, err := controller.Run(sc.DC, schedule, tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	normalizeWall(golden)
	if len(deltas) != golden.EpochsSeen {
		t.Fatalf("sink saw %d deltas for %d epochs", len(deltas), golden.EpochsSeen)
	}
	if len(deltas) < 5 {
		t.Fatalf("scenario too small for a meaningful matrix: %d epochs", len(deltas))
	}

	for k := 1; k <= len(deltas); k++ {
		k := k
		t.Run(fmt.Sprintf("kill-after-epoch-%d", k), func(t *testing.T) {
			ck := controller.NewCheckpoint(cfg)
			for _, d := range deltas[:k] {
				ck.Fold(d)
			}
			rcfg := cfg
			rcfg.Checkpoint = nil
			rcfg.Resume = gobRoundTrip(t, ck)
			// Fresh inputs, as a resuming process would regenerate them.
			rtasks := workload.GenerateTasks(sc.DC, horizon, stats.NewRand(31))
			res, err := controller.Run(sc.DC, schedule, rtasks, rcfg)
			if err != nil {
				t.Fatal(err)
			}
			normalizeWall(res)
			if !reflect.DeepEqual(golden, res) {
				t.Errorf("resumed result diverges from the uninterrupted run:\ngolden: %+v\nresumed: %+v", golden, res)
			}
		})
	}
}

// TestResumeFoldEquivalence checks that deltas emitted by a resumed run
// fold onto the pre-kill checkpoint to the same final state as folding
// the uninterrupted run's full delta stream — i.e. checkpoint chains
// survive repeated kills.
func TestResumeFoldEquivalence(t *testing.T) {
	sc := buildScenario(t, 2, 10)
	const horizon = 40.0
	schedule := handSchedule(horizon)
	cfg := controller.DefaultConfig(horizon, 10)

	var full []*controller.EpochDelta
	cfg.Checkpoint = func(d *controller.EpochDelta) error { full = append(full, d); return nil }
	tasks := workload.GenerateTasks(sc.DC, horizon, stats.NewRand(33))
	if _, err := controller.Run(sc.DC, schedule, tasks, cfg); err != nil {
		t.Fatal(err)
	}
	want := controller.NewCheckpoint(cfg)
	for _, d := range full {
		want.Fold(d)
	}

	k := len(full) / 2
	ck := controller.NewCheckpoint(cfg)
	for _, d := range full[:k] {
		ck.Fold(d)
	}
	rcfg := cfg
	rcfg.Resume = gobRoundTrip(t, ck)
	rcfg.Checkpoint = func(d *controller.EpochDelta) error { ck.Fold(d); return nil }
	rtasks := workload.GenerateTasks(sc.DC, horizon, stats.NewRand(33))
	if _, err := controller.Run(sc.DC, schedule, rtasks, rcfg); err != nil {
		t.Fatal(err)
	}

	for i := range want.Res.Epochs {
		want.Res.Epochs[i].SolveWall = 0
		ck.Res.Epochs[i].SolveWall = 0
	}
	if !reflect.DeepEqual(want, ck) {
		t.Errorf("chained checkpoint diverges:\nwant %+v\ngot  %+v", want, ck)
	}
}

// TestResumeWithEpochWindow exercises the MaxEpochReports retention ring
// across a kill/resume: the windowed reports must match the uninterrupted
// run's window exactly, including the ring cursor.
func TestResumeWithEpochWindow(t *testing.T) {
	sc := buildScenario(t, 3, 10)
	const horizon = 40.0
	schedule := handSchedule(horizon)
	cfg := controller.DefaultConfig(horizon, 10)
	cfg.MaxEpochReports = 3

	var deltas []*controller.EpochDelta
	cfg.Checkpoint = func(d *controller.EpochDelta) error { deltas = append(deltas, d); return nil }
	tasks := workload.GenerateTasks(sc.DC, horizon, stats.NewRand(35))
	golden, err := controller.Run(sc.DC, schedule, tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	normalizeWall(golden)
	if len(golden.Epochs) != 3 || golden.EpochsSeen <= 4 {
		t.Fatalf("window not exercised: %d reports of %d epochs", len(golden.Epochs), golden.EpochsSeen)
	}

	// Kill after the ring has already wrapped.
	k := 5
	ck := controller.NewCheckpoint(cfg)
	for _, d := range deltas[:k] {
		ck.Fold(d)
	}
	rcfg := cfg
	rcfg.Checkpoint = nil
	rcfg.Resume = gobRoundTrip(t, ck)
	rtasks := workload.GenerateTasks(sc.DC, horizon, stats.NewRand(35))
	res, err := controller.Run(sc.DC, schedule, rtasks, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	normalizeWall(res)
	if !reflect.DeepEqual(golden, res) {
		t.Errorf("windowed resume diverges:\ngolden %+v\nresumed %+v", golden, res)
	}
}

func TestResumeValidation(t *testing.T) {
	sc := buildScenario(t, 4, 10)
	const horizon = 40.0
	schedule := handSchedule(horizon)
	cfg := controller.DefaultConfig(horizon, 10)
	tasks := workload.GenerateTasks(sc.DC, horizon, stats.NewRand(37))

	var deltas []*controller.EpochDelta
	ccfg := cfg
	ccfg.Checkpoint = func(d *controller.EpochDelta) error { deltas = append(deltas, d); return nil }
	if _, err := controller.Run(sc.DC, schedule, tasks, ccfg); err != nil {
		t.Fatal(err)
	}
	valid := controller.NewCheckpoint(cfg)
	for _, d := range deltas[:2] {
		valid.Fold(d)
	}

	t.Run("empty checkpoint", func(t *testing.T) {
		rcfg := cfg
		rcfg.Resume = controller.NewCheckpoint(cfg)
		if _, err := controller.Run(sc.DC, schedule, tasks, rcfg); err == nil {
			t.Error("resume from an empty checkpoint succeeded")
		}
	})
	t.Run("window mismatch", func(t *testing.T) {
		rcfg := cfg
		rcfg.MaxEpochReports = 7 // checkpoint was built with 0
		rcfg.Resume = valid
		if _, err := controller.Run(sc.DC, schedule, tasks, rcfg); err == nil {
			t.Error("resume with a different MaxEpochReports succeeded")
		}
	})
	t.Run("core count mismatch", func(t *testing.T) {
		bad := gobRoundTrip(t, valid)
		bad.FreeAt = bad.FreeAt[:len(bad.FreeAt)-1]
		rcfg := cfg
		rcfg.Resume = bad
		if _, err := controller.Run(sc.DC, schedule, tasks, rcfg); err == nil {
			t.Error("resume with a truncated FreeAt succeeded")
		}
	})
	t.Run("epochs beyond horizon", func(t *testing.T) {
		bad := gobRoundTrip(t, valid)
		bad.EpochsDone = 1000
		rcfg := cfg
		rcfg.Resume = bad
		if _, err := controller.Run(sc.DC, schedule, tasks, rcfg); err == nil {
			t.Error("resume past the end of the run succeeded")
		}
	})
	t.Run("open loop rejects persistence", func(t *testing.T) {
		rcfg := cfg
		rcfg.Mode = controller.OpenLoop
		rcfg.Resume = valid
		if _, err := controller.Run(sc.DC, schedule, tasks, rcfg); err == nil {
			t.Error("open-loop resume succeeded")
		}
		rcfg.Resume = nil
		rcfg.Checkpoint = func(*controller.EpochDelta) error { return nil }
		if _, err := controller.Run(sc.DC, schedule, tasks, rcfg); err == nil {
			t.Error("open-loop checkpointing succeeded")
		}
	})
}

func TestCheckpointSinkErrorAborts(t *testing.T) {
	sc := buildScenario(t, 5, 10)
	const horizon = 40.0
	schedule := handSchedule(horizon)
	cfg := controller.DefaultConfig(horizon, 10)
	sinkErr := errors.New("disk gone")
	cfg.Checkpoint = func(*controller.EpochDelta) error { return sinkErr }
	tasks := workload.GenerateTasks(sc.DC, horizon, stats.NewRand(39))
	_, err := controller.Run(sc.DC, schedule, tasks, cfg)
	if !errors.Is(err, sinkErr) {
		t.Fatalf("run error %v, want the sink's", err)
	}
}
