package controller_test

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"thermaldc/internal/controller"
	"thermaldc/internal/stats"
	"thermaldc/internal/telemetry"
	"thermaldc/internal/workload"
)

// TestMaxEpochReportsRing: windowed retention must keep exactly the last N
// reports (chronological) while run totals still cover every interval.
func TestMaxEpochReportsRing(t *testing.T) {
	sc := buildScenario(t, 1, 10)
	const horizon = 40.0
	tasks := workload.GenerateTasks(sc.DC, horizon, stats.NewRand(31))
	schedule := handSchedule(horizon)

	full, err := controller.Run(sc.DC, schedule, tasks, controller.DefaultConfig(horizon, 10))
	if err != nil {
		t.Fatal(err)
	}
	cfg := controller.DefaultConfig(horizon, 10)
	cfg.MaxEpochReports = 3
	capped, err := controller.Run(sc.DC, schedule, tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if capped.EpochsSeen != full.EpochsSeen || capped.EpochsSeen != len(full.Epochs) {
		t.Fatalf("EpochsSeen = %d (capped) vs %d (full, %d reports)",
			capped.EpochsSeen, full.EpochsSeen, len(full.Epochs))
	}
	if len(capped.Epochs) != 3 {
		t.Fatalf("retained %d reports, want 3", len(capped.Epochs))
	}
	// SolveWall is wall-clock time and differs between runs; everything
	// else must match the chronological tail of the full report list.
	norm := func(eps []controller.EpochReport) []controller.EpochReport {
		out := append([]controller.EpochReport(nil), eps...)
		for i := range out {
			out[i].SolveWall = 0
		}
		return out
	}
	if !reflect.DeepEqual(norm(capped.Epochs), norm(full.Epochs[len(full.Epochs)-3:])) {
		t.Error("retained window is not the chronological tail of the full report list")
	}
	// Retention must not change any run total.
	if capped.TotalReward != full.TotalReward || capped.Completed != full.Completed ||
		capped.Resolves != full.Resolves || capped.LP != full.LP {
		t.Error("windowed retention changed run totals")
	}
}

// TestRecorderPublishes runs the closed loop with full telemetry on —
// metrics, tracing, and series export — and checks that (a) results are
// identical to an uninstrumented run and (b) every layer published.
func TestRecorderPublishes(t *testing.T) {
	sc := buildScenario(t, 1, 10)
	const horizon = 40.0
	tasks := workload.GenerateTasks(sc.DC, horizon, stats.NewRand(31))
	schedule := handSchedule(horizon)

	plain, err := controller.Run(sc.DC, schedule, tasks, controller.DefaultConfig(horizon, 10))
	if err != nil {
		t.Fatal(err)
	}

	rec := telemetry.NewRecorder()
	rec.Trace = telemetry.NewTracer(telemetry.DefaultTraceCapacity)
	var buf strings.Builder
	rec.Series = telemetry.NewJSONLWriter(&buf)
	rec.Series.NextRun()
	cfg := controller.DefaultConfig(horizon, 10)
	cfg.Recorder = rec
	res, err := controller.Run(sc.DC, schedule, tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Telemetry must never change results.
	if res.TotalReward != plain.TotalReward || res.Completed != plain.Completed ||
		res.Resolves != plain.Resolves || res.LP != plain.LP {
		t.Error("instrumented run differs from uninstrumented run")
	}

	snap := rec.Metrics.Snapshot()
	for _, name := range []string{
		"tapo_controller_resolves_total",
		"tapo_sim_tasks_completed_total",
		"tapo_lp_solves_total",
		"tapo_lp_pivots_total",
		"tapo_stage1_solves_total",
		"tapo_stage3_solves_total",
		"tapo_sched_assigned_total",
	} {
		v, ok := snap[name].(int64)
		if !ok || v <= 0 {
			t.Errorf("metric %s = %v, want > 0", name, snap[name])
		}
	}
	if v, ok := snap[`tapo_controller_epochs_total{rung="warm"}`].(int64); !ok || v <= 0 {
		t.Errorf("warm-rung epoch counter = %v", snap[`tapo_controller_epochs_total{rung="warm"}`])
	}
	if v, ok := snap["tapo_plant_power_kw"].(float64); !ok || v <= 0 {
		t.Errorf("power gauge = %v", snap["tapo_plant_power_kw"])
	}

	byKind := rec.Trace.CountByKind()
	for _, k := range []telemetry.SpanKind{
		telemetry.SpanEpoch, telemetry.SpanRung, telemetry.SpanStage,
		telemetry.SpanCandidate, telemetry.SpanLPSolve,
	} {
		if byKind[k] == 0 {
			t.Errorf("no %s spans recorded", k)
		}
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != res.EpochsSeen {
		t.Fatalf("series wrote %d rows for %d epochs", len(lines), res.EpochsSeen)
	}
	schema := telemetry.SampleSchema()
	prevEnd := 0.0
	for i, line := range lines {
		var keys map[string]json.RawMessage
		if err := json.Unmarshal([]byte(line), &keys); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		for k := range keys {
			if _, ok := schema[k]; !ok {
				t.Errorf("row %d emits unknown key %q", i, k)
			}
		}
		var s telemetry.EpochSample
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			t.Fatal(err)
		}
		if s.Run != 1 || s.Epoch != i || s.TStart != prevEnd {
			t.Errorf("row %d = run %d epoch %d [%g, %g), want contiguous run-1 series",
				i, s.Run, s.Epoch, s.TStart, s.TEnd)
		}
		prevEnd = s.TEnd
	}
	if prevEnd != horizon {
		t.Errorf("series ends at %g, want %g", prevEnd, horizon)
	}
}
