package controller_test

import (
	"testing"

	"thermaldc/internal/controller"
	"thermaldc/internal/faults"
	"thermaldc/internal/stats"
	"thermaldc/internal/workload"
	"thermaldc/internal/zones"
)

// TestZoneFastPath drives a two-zone floor through power-cap faults: the
// cap-only epochs must be served by the zone-decomposed fast path, and
// the run must hold the cap and redlines exactly like the monolithic
// ladder does.
func TestZoneFastPath(t *testing.T) {
	f, err := zones.BuildFleet(zones.FleetConfig{
		Zones: 2, NodesPerZone: 8, CracsPerZone: 2, Variants: 2, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	dc, err := f.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 40.0
	tasks := workload.GenerateTasks(dc, horizon, stats.NewRand(31))
	schedule := faults.Schedule{Events: []faults.Event{
		{Time: 10, Kind: faults.PowerCap, Magnitude: 0.85},
		{Time: 25, Kind: faults.PowerCap, Magnitude: 0.7},
	}}
	schedule.Sort()

	cfg := controller.DefaultConfig(horizon, 10)
	cfg.ZoneFastPath = true
	res, err := controller.Run(dc, schedule, tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ZoneFastPaths == 0 {
		t.Errorf("no epochs served by the zone fast path (resolves %d, rungs %v)",
			res.Resolves, res.RungCounts)
	}
	if res.Violations != 0 {
		t.Errorf("%d planner-view Verify violations", res.Violations)
	}
	if res.MaxPowerExcess > 1e-6 {
		t.Errorf("power cap violated by %g kW", res.MaxPowerExcess)
	}
	if res.MaxInletExcess > 1e-6 {
		t.Errorf("inlet redline violated by %g °C", res.MaxInletExcess)
	}
	if res.Fallbacks != 0 {
		t.Errorf("%d fallbacks", res.Fallbacks)
	}
	zoned := 0
	for _, ep := range res.Epochs {
		if ep.ZonePath {
			zoned++
			if ep.Rung != controller.RungWarm {
				t.Errorf("zone-path epoch tallied under rung %v, want warm", ep.Rung)
			}
		}
	}
	if zoned != res.ZoneFastPaths {
		t.Errorf("per-epoch ZonePath marks (%d) disagree with run total (%d)", zoned, res.ZoneFastPaths)
	}

	// The flag off: same inputs, no fast-path epochs, same safety.
	cfg.ZoneFastPath = false
	base, err := controller.Run(dc, schedule, tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.ZoneFastPaths != 0 {
		t.Errorf("fast path engaged with the flag off: %d", base.ZoneFastPaths)
	}
	if base.Violations != 0 || base.MaxPowerExcess > 1e-6 {
		t.Errorf("monolithic baseline unsafe: violations %d, excess %g", base.Violations, base.MaxPowerExcess)
	}
}
