package controller

import (
	"context"
	"fmt"
	"math"

	"thermaldc/internal/assign"
	"thermaldc/internal/faults"
	"thermaldc/internal/linprog"
	"thermaldc/internal/model"
	"thermaldc/internal/sched"
	"thermaldc/internal/thermal"
)

// This file implements exact checkpoint/resume for closed-loop runs.
//
// The design splits the resumable state in two:
//
//   - Persisted: the loop cursors (epoch, event and task indices), the
//     folded fault state, per-core busy times, the scheduler's ATC counts
//     and clock anchor, the plan in force, the last verified plan, and the
//     Result accumulators. These are either simulation outputs or
//     accumulators whose value depends on the whole history.
//   - Recomputed: the boundary grid, the clairvoyant node-failure
//     timeline, the degraded planner model, the thermal model and the LP
//     solver. All are pure functions of (base model, config, fault state),
//     so rebuilding them on resume reproduces the live objects exactly.
//
// Because every epoch's work is deterministic given that state, a resumed
// run produces bit-identical remaining epoch reports and totals versus an
// uninterrupted run (wall-clock fields excepted — SolveWall measures the
// machine, not the plant).

// EpochDelta is the state advance of one completed closed-loop interval:
// everything the next interval's computation depends on, plus the
// interval's EpochReport. Deltas are emitted through Config.Checkpoint in
// epoch order; folding them into a Checkpoint (see Checkpoint.Fold)
// reconstructs the full resumable state.
//
// A delta's slices and fault state are deep copies and safe to retain;
// Report.Plan is shared with the run's Result and must be treated as
// read-only.
type EpochDelta struct {
	// EvIdx and TaskIdx are the schedule-event and task-arrival cursors
	// after the interval.
	EvIdx, TaskIdx int
	// Faults is the fault state folded through the interval's boundary.
	Faults *faults.State
	// FreeAt[k] is the time core k becomes idle.
	FreeAt []float64
	// SchedCounts and SchedStart are the scheduler's ATC state (see
	// sched.Counts/StartTime).
	SchedCounts [][]int
	// SchedStart anchors the ATC rate clock.
	SchedStart float64
	// Report is the interval's telemetry, exactly as appended to
	// Result.Epochs.
	Report EpochReport
}

// CheckpointSink receives the EpochDelta of each completed closed-loop
// interval, after the interval's results are final. A non-nil error
// aborts the run: a run that cannot persist its progress must not
// pretend it can.
type CheckpointSink func(d *EpochDelta) error

// ResultState is the exported mirror of Result's accumulators, carrying
// the epoch-report retention ring's cursor so a resumed Result windows
// reports identically.
type ResultState struct {
	TotalReward              float64
	Completed, Dropped, Lost int
	Resolves, Fallbacks      int
	RungCounts               [NumRungs]int
	Retries, Violations      int
	MaxPower                 float64
	MaxPowerExcess           float64
	MaxInletExcess           float64
	LP                       linprog.Stats
	Epochs                   []EpochReport
	EpochsSeen               int
	// EpochCap and EpochNext mirror the MaxEpochReports retention ring.
	EpochCap, EpochNext int
}

// Checkpoint is the complete resumable state of a closed-loop run after
// EpochsDone completed intervals. Build one with NewCheckpoint and
// advance it with Fold, or restore a run by setting Config.Resume.
type Checkpoint struct {
	// EpochsDone counts completed intervals (the resume loop starts at
	// boundary index EpochsDone).
	EpochsDone int
	// EvIdx and TaskIdx are the loop cursors after the last interval.
	EvIdx, TaskIdx int
	// Faults is the folded fault state.
	Faults *faults.State
	// FreeAt is the per-core busy horizon.
	FreeAt []float64
	// SchedCounts and SchedStart restore the scheduler's ATC state.
	SchedCounts [][]int
	SchedStart  float64
	// Plan is the assignment in force; LastGood is the most recent plan
	// that solved successfully (they coincide except after fallback
	// epochs).
	Plan, LastGood *assign.ThreeStageResult
	// Res carries the Result accumulators.
	Res ResultState
}

// NewCheckpoint returns the empty checkpoint of a run that has completed
// zero epochs under cfg.
func NewCheckpoint(cfg Config) *Checkpoint {
	return &Checkpoint{Res: ResultState{
		MaxPowerExcess: math.Inf(-1),
		MaxInletExcess: math.Inf(-1),
		EpochCap:       cfg.MaxEpochReports,
	}}
}

// Fold advances the checkpoint by one completed interval. Applying every
// delta of a run in order reproduces — field for field, bit for bit — the
// accumulator state the live loop held after that interval, because Fold
// performs the same operations on the same recorded values in the same
// order.
func (ck *Checkpoint) Fold(d *EpochDelta) {
	ck.EpochsDone++
	ck.EvIdx, ck.TaskIdx = d.EvIdx, d.TaskIdx
	ck.Faults = d.Faults
	ck.FreeAt = d.FreeAt
	ck.SchedCounts = d.SchedCounts
	ck.SchedStart = d.SchedStart
	ck.Plan = d.Report.Plan
	if d.Report.Resolved && d.Report.Rung < RungPrevPlan {
		// Mirrors the live loop: a successful solve becomes the new
		// fallback plan; fallback epochs leave it untouched.
		ck.LastGood = d.Report.Plan
	}
	rep := d.Report
	ck.Res.fold(&rep)
}

// fold replays one epoch report into the accumulators, performing the
// identical operations (in identical order) as the live loop's resolve
// branch plus accumulate.
func (rs *ResultState) fold(rep *EpochReport) {
	if rep.Resolved {
		rs.RungCounts[rep.Rung]++
		rs.Retries += rep.Retries
		if rep.Fallback {
			rs.Fallbacks++
		}
		rs.Resolves++
		rs.Violations += rep.Violations
		rs.LP.Add(rep.LP)
	}
	rs.TotalReward += rep.Reward
	rs.Completed += rep.Completed
	rs.Dropped += rep.Dropped
	rs.Lost += rep.Lost
	if rep.MaxPower > rs.MaxPower {
		rs.MaxPower = rep.MaxPower
	}
	if rep.MaxPowerExcess > rs.MaxPowerExcess {
		rs.MaxPowerExcess = rep.MaxPowerExcess
	}
	if rep.MaxInletExcess > rs.MaxInletExcess {
		rs.MaxInletExcess = rep.MaxInletExcess
	}
	rs.EpochsSeen++
	if rs.EpochCap > 0 && len(rs.Epochs) == rs.EpochCap {
		rs.Epochs[rs.EpochNext] = *rep
		rs.EpochNext = (rs.EpochNext + 1) % rs.EpochCap
	} else {
		rs.Epochs = append(rs.Epochs, *rep)
	}
}

// toResult rebuilds a live Result from the restored accumulators.
func (rs *ResultState) toResult(cfg Config) *Result {
	res := newResult(cfg)
	res.TotalReward = rs.TotalReward
	res.Completed, res.Dropped, res.Lost = rs.Completed, rs.Dropped, rs.Lost
	res.Resolves, res.Fallbacks = rs.Resolves, rs.Fallbacks
	res.RungCounts = rs.RungCounts
	res.Retries, res.Violations = rs.Retries, rs.Violations
	res.MaxPower = rs.MaxPower
	res.MaxPowerExcess = rs.MaxPowerExcess
	res.MaxInletExcess = rs.MaxInletExcess
	res.LP = rs.LP
	res.Epochs = append([]EpochReport(nil), rs.Epochs...)
	res.EpochsSeen = rs.EpochsSeen
	res.epochNext = rs.EpochNext
	return res
}

// restoredRun is the live loop state rebuilt from a checkpoint.
type restoredRun struct {
	res       *Result
	st        *faults.State
	solver    *assign.ThreeStageSolver
	plannerDC *model.DataCenter
	plannerTM *thermal.Model
	plan      *assign.ThreeStageResult
	lastGood  *assign.ThreeStageResult
	s         *sched.Scheduler
	freeAt    []float64
}

// restoreClosedLoop validates a checkpoint against the run configuration
// and rebuilds every live object: the Result accumulators, the fault
// state, the degraded planner model with its thermal model and solver,
// and the scheduler with its restored ATC state.
//
// The rebuilt solver is warmed with one discarded solve (its statistics
// drained) so the next re-solving epoch reports the same LP workspace
// counters as an uninterrupted run, whose solver allocated its workspace
// epochs ago. Under warm-started LP (-lp-warm) the pivot counts of the
// first post-resume solve may differ — the retained basis is
// solve-history, which a checkpoint deliberately does not carry — but the
// plans themselves are still bit-identical.
func restoreClosedLoop(ctx context.Context, base *model.DataCenter, cfg Config, ck *Checkpoint) (*restoredRun, error) {
	if ck.EpochsDone < 1 || ck.Plan == nil || ck.Faults == nil {
		return nil, fmt.Errorf("controller: resume checkpoint is incomplete (epochs done %d)", ck.EpochsDone)
	}
	if ck.Res.EpochCap != cfg.MaxEpochReports {
		return nil, fmt.Errorf("controller: resume checkpoint retains %d epoch reports, config wants %d",
			ck.Res.EpochCap, cfg.MaxEpochReports)
	}
	if len(ck.FreeAt) != base.NumCores() {
		return nil, fmt.Errorf("controller: resume checkpoint has %d cores, model has %d", len(ck.FreeAt), base.NumCores())
	}
	if len(ck.Faults.CracFlowFactor) != base.NCRAC() || len(ck.Faults.NodeFailed) != base.NCN() {
		return nil, fmt.Errorf("controller: resume checkpoint fault state is %d CRACs / %d nodes, model has %d / %d",
			len(ck.Faults.CracFlowFactor), len(ck.Faults.NodeFailed), base.NCRAC(), base.NCN())
	}

	st := ck.Faults.Clone()
	plannerDC, err := st.Degrade(base, faults.Planner)
	if err != nil {
		return nil, fmt.Errorf("controller: resume: %w", err)
	}
	plannerTM, err := thermal.New(plannerDC)
	if err != nil {
		return nil, fmt.Errorf("controller: resume: %w", err)
	}
	solver, err := assign.NewThreeStageSolver(plannerDC, plannerTM, cfg.Assign)
	if err != nil {
		return nil, fmt.Errorf("controller: resume: %w", err)
	}
	// Warm-up solve: allocate the LP workspaces now and discard the
	// counters, so they are not charged to the next epoch's report. The
	// outcome is irrelevant — a failing model fails identically when the
	// next epoch actually solves it.
	if _, err := guardedSolve(ctx, solver); err != nil && ctx.Err() != nil {
		return nil, fmt.Errorf("controller: resume canceled: %w", ctx.Err())
	}
	solver.TakeLPStats()

	s, err := sched.New(plannerDC, ck.Plan.PStates, ck.Plan.Stage3.TC)
	if err != nil {
		return nil, fmt.Errorf("controller: resume: %w", err)
	}
	if cfg.Recorder != nil {
		s.SetRecorder(cfg.Recorder)
	}
	if err := s.RestoreCounts(ck.SchedCounts); err != nil {
		return nil, fmt.Errorf("controller: resume: %w", err)
	}
	s.SetStartTime(ck.SchedStart)

	return &restoredRun{
		res:       ck.Res.toResult(cfg),
		st:        st,
		solver:    solver,
		plannerDC: plannerDC,
		plannerTM: plannerTM,
		plan:      ck.Plan,
		lastGood:  ck.LastGood,
		s:         s,
		freeAt:    append([]float64(nil), ck.FreeAt...),
	}, nil
}
