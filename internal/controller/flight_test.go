package controller

import (
	"testing"

	"thermaldc/internal/solvererr"
)

func TestFlightReason(t *testing.T) {
	for _, tc := range []struct {
		name string
		rep  EpochReport
		want string
	}{
		{"healthy carryover", EpochReport{}, ""},
		{"healthy warm resolve", EpochReport{Resolved: true, Rung: RungWarm}, ""},
		{"healthy zone fast path",
			EpochReport{Resolved: true, Rung: RungWarm, ZonePath: true}, ""},
		{"fallback names the rung",
			EpochReport{Resolved: true, Fallback: true, Rung: RungAllOff}, "ladder-all-off"},
		{"fallback outranks violations",
			EpochReport{Resolved: true, Fallback: true, Rung: RungPrevPlan, Violations: 2}, "ladder-prev-plan"},
		{"verifier rejection",
			EpochReport{Resolved: true, Rung: RungWarm, Violations: 1}, "verify-reject"},
		{"cold rung engagement",
			EpochReport{Resolved: true, Rung: RungCold}, "ladder-cold"},
		{"retry rung engagement",
			EpochReport{Resolved: true, Rung: RungRetry}, "ladder-retry"},
		{"zone fallback that recovered warm",
			EpochReport{Resolved: true, Rung: RungWarm, ZoneFallback: true}, "zone-fallback"},
		{"absorbed solver error",
			EpochReport{Resolved: true, Rung: RungWarm, ErrKind: solvererr.Timeout}, "solve-error-timeout"},
		// The zone fast path reaching RungWarm is its normal tally; a
		// cold rung with ZonePath set still names the ladder.
		{"zone path cold rung",
			EpochReport{Resolved: true, Rung: RungCold, ZonePath: true, ZoneFallback: true}, "zone-fallback"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if got := flightReason(&tc.rep); got != tc.want {
				t.Fatalf("flightReason(%+v) = %q, want %q", tc.rep, got, tc.want)
			}
		})
	}
}
