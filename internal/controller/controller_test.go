package controller_test

import (
	"math"
	"testing"

	"thermaldc/internal/controller"
	"thermaldc/internal/faults"
	"thermaldc/internal/scenario"
	"thermaldc/internal/stats"
	"thermaldc/internal/workload"
)

func buildScenario(t testing.TB, seed int64, nnodes int) *scenario.Scenario {
	t.Helper()
	cfg := scenario.Default(0.3, 0.1, seed)
	cfg.NCracs = 2
	cfg.NNodes = nnodes
	sc, err := scenario.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func handSchedule(horizon float64) faults.Schedule {
	s := faults.Schedule{Events: []faults.Event{
		{Time: 0.25 * horizon, Kind: faults.CRACDegrade, Unit: 0, Magnitude: 0.7},
		{Time: 0.40 * horizon, Kind: faults.NodeFail, Unit: 1},
		{Time: 0.55 * horizon, Kind: faults.PowerCap, Magnitude: 0.8},
		{Time: 0.70 * horizon, Kind: faults.SensorOffset, Magnitude: 1},
	}}
	s.Sort()
	return s
}

func TestClosedLoopHoldsConstraints(t *testing.T) {
	sc := buildScenario(t, 1, 10)
	const horizon = 40.0
	tasks := workload.GenerateTasks(sc.DC, horizon, stats.NewRand(31))
	schedule := handSchedule(horizon)

	res, err := controller.Run(sc.DC, schedule, tasks, controller.DefaultConfig(horizon, 10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Errorf("%d planner-view Verify violations", res.Violations)
	}
	if res.MaxPowerExcess > 1e-6 {
		t.Errorf("power cap violated by %g kW", res.MaxPowerExcess)
	}
	if res.MaxInletExcess > 1e-6 {
		t.Errorf("inlet redline violated by %g °C", res.MaxInletExcess)
	}
	if res.Fallbacks != 0 {
		t.Errorf("%d fallbacks on a moderate schedule", res.Fallbacks)
	}
	// Every event forces a boundary, so there are at least grid + event
	// intervals; the first epoch always solves.
	if res.Resolves < 5 {
		t.Errorf("only %d re-solves for 4 events", res.Resolves)
	}
	if res.TotalReward <= 0 {
		t.Error("no reward collected")
	}
	if math.Abs(res.RewardRate-res.TotalReward/horizon) > 1e-12 {
		t.Error("reward rate inconsistent with total")
	}
	// Epoch telemetry tiles the horizon.
	prev := 0.0
	for _, ep := range res.Epochs {
		if ep.Start != prev {
			t.Fatalf("epoch gap at %g", ep.Start)
		}
		prev = ep.End
	}
	if prev != horizon {
		t.Fatalf("epochs end at %g, want %g", prev, horizon)
	}
}

func TestClosedLoopBeatsOpenLoopUnderNodeFailures(t *testing.T) {
	// Node failures are where the closed loop wins on reward: the frozen
	// open-loop plan keeps routing tasks onto dead nodes (every one of
	// them lost), while a re-solve shifts the arrival capacity onto the
	// survivors.
	sc := buildScenario(t, 2, 10)
	const horizon = 60.0
	tasks := workload.GenerateTasks(sc.DC, horizon, stats.NewRand(37))
	s := faults.Schedule{Events: []faults.Event{
		{Time: 15, Kind: faults.NodeFail, Unit: 0},
		{Time: 15, Kind: faults.NodeFail, Unit: 3},
		{Time: 15, Kind: faults.NodeFail, Unit: 7},
	}}
	s.Sort()

	cfg := controller.DefaultConfig(horizon, 15)
	closed, err := controller.Run(sc.DC, s, tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Mode = controller.OpenLoop
	open, err := controller.Run(sc.DC, s, tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if closed.MaxPowerExcess > 1e-6 || closed.MaxInletExcess > 1e-6 {
		t.Errorf("closed loop violated constraints: power %+g kW, inlet %+g °C",
			closed.MaxPowerExcess, closed.MaxInletExcess)
	}
	if closed.TotalReward <= open.TotalReward {
		t.Errorf("closed loop reward %g did not beat open loop %g", closed.TotalReward, open.TotalReward)
	}
	if open.Lost <= closed.Lost {
		t.Errorf("open loop lost %d tasks, closed %d; routing around dead nodes should reduce losses",
			open.Lost, closed.Lost)
	}
	t.Logf("closed %.1f/s (lost %d) vs open %.1f/s (lost %d)",
		closed.RewardRate, closed.Lost, open.RewardRate, open.Lost)
}

func TestOpenLoopViolatesWhereClosedLoopHolds(t *testing.T) {
	// Cooling degradation plus a power cut: the frozen plan now draws more
	// than the plant can supply and heats past the redline, while the
	// closed loop re-plans within the degraded envelope.
	sc := buildScenario(t, 2, 10)
	const horizon = 40.0
	tasks := workload.GenerateTasks(sc.DC, horizon, stats.NewRand(39))
	s := faults.Schedule{Events: []faults.Event{
		{Time: 10, Kind: faults.CRACDegrade, Unit: 0, Magnitude: 0.5},
		{Time: 18, Kind: faults.PowerCap, Magnitude: 0.7},
	}}
	s.Sort()

	cfg := controller.DefaultConfig(horizon, 10)
	closed, err := controller.Run(sc.DC, s, tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Mode = controller.OpenLoop
	open, err := controller.Run(sc.DC, s, tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if closed.MaxPowerExcess > 1e-6 || closed.MaxInletExcess > 1e-6 {
		t.Errorf("closed loop violated constraints: power %+g kW, inlet %+g °C",
			closed.MaxPowerExcess, closed.MaxInletExcess)
	}
	if closed.Fallbacks != 0 {
		t.Errorf("%d fallbacks; this schedule should stay re-optimizable", closed.Fallbacks)
	}
	if open.MaxPowerExcess <= 1e-6 && open.MaxInletExcess <= 1e-6 {
		t.Error("open loop survived half cooling + 30% power cut unscathed; schedule too soft to discriminate")
	}
	t.Logf("closed %.1f/s (excess %+.2f kW, %+.2f °C) vs open %.1f/s (excess %+.2f kW, %+.2f °C)",
		closed.RewardRate, closed.MaxPowerExcess, closed.MaxInletExcess,
		open.RewardRate, open.MaxPowerExcess, open.MaxInletExcess)
}

func TestNoFaultsMatchesPlainRun(t *testing.T) {
	// With an empty schedule the closed loop is just the paper's scheme
	// sliced into epochs: reward must match the single-shot run exactly.
	sc := buildScenario(t, 3, 8)
	const horizon = 30.0
	tasks := workload.GenerateTasks(sc.DC, horizon, stats.NewRand(41))
	cfg := controller.DefaultConfig(horizon, 7)
	closed, err := controller.Run(sc.DC, faults.Schedule{}, tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Mode = controller.OpenLoop
	open, err := controller.Run(sc.DC, faults.Schedule{}, tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(closed.TotalReward-open.TotalReward) > 1e-9 {
		t.Errorf("fault-free closed loop reward %g != open loop %g", closed.TotalReward, open.TotalReward)
	}
	if closed.Completed != open.Completed || closed.Dropped != open.Dropped {
		t.Errorf("fault-free task accounting differs: %d/%d vs %d/%d",
			closed.Completed, closed.Dropped, open.Completed, open.Dropped)
	}
	if closed.Lost != 0 || open.Lost != 0 {
		t.Error("tasks lost without any node failure")
	}
	if closed.Resolves != 1 {
		t.Errorf("%d re-solves without any fault, want 1 (initial plan only)", closed.Resolves)
	}
}

func TestRunDeterministic(t *testing.T) {
	sc := buildScenario(t, 4, 8)
	const horizon = 30.0
	tasks := workload.GenerateTasks(sc.DC, horizon, stats.NewRand(43))
	schedule, err := faults.Generate(faults.DefaultGenConfig(9, horizon, sc.DC.NCRAC(), sc.DC.NCN()))
	if err != nil {
		t.Fatal(err)
	}
	cfg := controller.DefaultConfig(horizon, 10)
	a, err := controller.Run(sc.DC, schedule, tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := controller.Run(sc.DC, schedule, tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalReward != b.TotalReward || a.Lost != b.Lost || a.MaxPower != b.MaxPower {
		t.Error("controller run not deterministic")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	sc := buildScenario(t, 5, 8)
	if _, err := controller.Run(sc.DC, faults.Schedule{}, nil, controller.DefaultConfig(0, 10)); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := controller.Run(sc.DC, faults.Schedule{}, nil, controller.DefaultConfig(10, 0)); err == nil {
		t.Error("zero epoch accepted")
	}
	bad := faults.Schedule{Events: []faults.Event{{Time: 1, Kind: faults.NodeFail, Unit: 99}}}
	if _, err := controller.Run(sc.DC, bad, nil, controller.DefaultConfig(10, 5)); err == nil {
		t.Error("out-of-range schedule accepted")
	}
}
