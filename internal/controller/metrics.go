package controller

import (
	"strconv"

	"thermaldc/internal/solvererr"
	"thermaldc/internal/telemetry"
)

// errBit maps an error to the Span.Err convention (0 ok, 1 failed).
func errBit(err error) int32 {
	if err != nil {
		return 1
	}
	return 0
}

// runMetrics resolves every metric handle a controller run publishes, once
// per run, so the per-epoch path is a handful of atomic adds with no map
// lookups. A nil *runMetrics (no Recorder configured) makes every method a
// no-op.
type runMetrics struct {
	rec *telemetry.Recorder

	epochsByRung [NumRungs]telemetry.Counter
	epochsCarry  telemetry.Counter
	resolves     telemetry.Counter
	fallbacks    telemetry.Counter
	retries      telemetry.Counter
	violations   telemetry.Counter

	completed telemetry.Counter
	dropped   telemetry.Counter
	lostTasks telemetry.Counter
	reward    telemetry.Gauge

	power         telemetry.Gauge
	powerHeadroom telemetry.Gauge
	inletHeadroom telemetry.Gauge
	cracOut       []telemetry.Gauge

	lpSolves     telemetry.Counter
	lpPivots     telemetry.Counter
	lpBoundFlips telemetry.Counter
	lpRefreshes  telemetry.Counter
	lpAllocBytes telemetry.Counter

	zonePaths     telemetry.Counter
	zoneRounds    telemetry.Counter
	zoneFallbacks telemetry.Counter

	solveWall telemetry.Histogram

	headroomBuf []float64 // per-sensor scratch, reused every epoch
}

// newRunMetrics registers (or re-attaches to) the controller's metrics on
// rec's registry. Returns nil when rec is nil.
func newRunMetrics(rec *telemetry.Recorder, ncrac int) *runMetrics {
	if rec == nil {
		return nil
	}
	reg := rec.Registry()
	m := &runMetrics{rec: rec}
	for r := 0; r < NumRungs; r++ {
		m.epochsByRung[r] = reg.Counter("tapo_controller_epochs_total",
			"epoch intervals by the degradation-ladder rung that produced their plan",
			"rung", Rung(r).String())
	}
	m.epochsCarry = reg.Counter("tapo_controller_epochs_total",
		"epoch intervals by the degradation-ladder rung that produced their plan",
		"rung", "carryover")
	m.resolves = reg.Counter("tapo_controller_resolves_total", "first-step re-solves")
	m.fallbacks = reg.Counter("tapo_controller_fallbacks_total",
		"epochs where every solve attempt failed and a safe rung took over")
	m.retries = reg.Counter("tapo_controller_retries_total", "backed-off cold solve retries")
	m.violations = reg.Counter("tapo_controller_violations_total",
		"planner-view assign.Verify findings against shipped plans")
	m.completed = reg.Counter("tapo_sim_tasks_completed_total", "tasks completed by deadline")
	m.dropped = reg.Counter("tapo_sim_tasks_dropped_total", "tasks dropped at admission (no deadline-feasible core)")
	m.lostTasks = reg.Counter("tapo_sim_tasks_lost_total", "tasks destroyed by node failures")
	m.reward = reg.Gauge("tapo_controller_reward_rate", "realized reward per second over the last epoch")
	m.power = reg.Gauge("tapo_plant_power_kw", "truth-plant total draw at the plan in force")
	m.powerHeadroom = reg.Gauge("tapo_plant_power_headroom_kw",
		"power cap minus truth-plant draw (negative = cap exceeded)")
	m.inletHeadroom = reg.Gauge("tapo_plant_inlet_headroom_c",
		"worst redline-minus-inlet margin over all thermal sensors (negative = redline exceeded)")
	m.cracOut = make([]telemetry.Gauge, ncrac)
	for i := range m.cracOut {
		m.cracOut[i] = reg.Gauge("tapo_plant_crac_out_c", "CRAC outlet setpoint of the plan in force",
			"crac", strconv.Itoa(i))
	}
	m.lpSolves = reg.Counter("tapo_lp_solves_total", "simplex solves drained from the warm solver")
	m.lpPivots = reg.Counter("tapo_lp_pivots_total", "simplex pivots")
	m.lpBoundFlips = reg.Counter("tapo_lp_bound_flips_total", "simplex bound flips")
	m.lpRefreshes = reg.Counter("tapo_lp_refreshes_total", "full reduced-cost recomputations")
	m.lpAllocBytes = reg.Counter("tapo_lp_alloc_bytes_total", "bytes of simplex workspace growth")
	m.zonePaths = reg.Counter("tapo_controller_zone_fast_paths_total",
		"re-solves served by the zone-decomposed fast path")
	m.zoneRounds = reg.Counter("tapo_controller_zone_rounds_total",
		"price-coordination rounds spent by zone fast-path solves")
	m.zoneFallbacks = reg.Counter("tapo_controller_zone_fallbacks_total",
		"zone fast-path attempts that fell back (to the monolithic zone solver or the full ladder)")
	m.solveWall = reg.Histogram("tapo_controller_solve_wall_seconds",
		"wall time of one epoch's whole degradation-ladder trip",
		[]float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5})
	return m
}

// emitEpoch publishes one interval's outcomes: counters and gauges on the
// registry, and one EpochSample row on the recorder's series sink (when
// one is attached). Called after accumulate, so res.EpochsSeen already
// counts this interval. The plant p is sampled for power and per-sensor
// inlet headroom; it is piecewise-constant over the interval, so the
// sample is exact, not an instant snapshot.
//
// The returned sample (nil when neither a series sink is attached nor
// wantSample is set) aliases per-epoch scratch buffers: it is valid until
// the next emitEpoch, which is exactly long enough for the flight
// recorder to bundle it.
func (m *runMetrics) emitEpoch(res *Result, rep *EpochReport, p *truthPlant, wantSample bool) (*telemetry.EpochSample, error) {
	if m == nil {
		return nil, nil
	}
	if rep.Resolved {
		m.epochsByRung[rep.Rung].Inc()
		m.resolves.Inc()
		m.solveWall.Observe(rep.SolveWall.Seconds())
	} else {
		m.epochsCarry.Inc()
	}
	if rep.Fallback {
		m.fallbacks.Inc()
	}
	m.retries.Add(int64(rep.Retries))
	m.violations.Add(int64(rep.Violations))
	m.completed.Add(int64(rep.Completed))
	m.dropped.Add(int64(rep.Dropped))
	m.lostTasks.Add(int64(rep.Lost))

	epochRate := 0.0
	if dt := rep.End - rep.Start; dt > 0 {
		epochRate = rep.Reward / dt
	}
	m.reward.Set(epochRate)

	power, cap, by := p.headroomInto(m.headroomBuf)
	m.headroomBuf = by
	worst := 0.0
	for i, h := range by {
		if i == 0 || h < worst {
			worst = h
		}
	}
	m.power.Set(power)
	m.powerHeadroom.Set(cap - power)
	m.inletHeadroom.Set(worst)
	for i := range m.cracOut {
		if i < len(p.cracOut) {
			m.cracOut[i].Set(p.cracOut[i])
		}
	}

	m.lpSolves.Add(rep.LP.Solves)
	m.lpPivots.Add(rep.LP.Pivots)
	m.lpBoundFlips.Add(rep.LP.BoundFlips)
	m.lpRefreshes.Add(rep.LP.Refreshes)
	m.lpAllocBytes.Add(rep.LP.AllocBytes)
	if rep.ZonePath {
		m.zonePaths.Inc()
	}
	m.zoneRounds.Add(int64(rep.ZoneRounds))
	if rep.ZoneFallback {
		m.zoneFallbacks.Inc()
	}

	jw := m.rec.SeriesSink()
	if jw == nil && !wantSample {
		return nil, nil
	}
	samp := telemetry.EpochSample{
		Epoch:                  res.EpochsSeen - 1,
		TStart:                 rep.Start,
		TEnd:                   rep.End,
		Resolved:               rep.Resolved,
		RewardRate:             epochRate,
		Completed:              rep.Completed,
		Dropped:                rep.Dropped,
		Lost:                   rep.Lost,
		Violations:             rep.Violations,
		Retries:                rep.Retries,
		SolveWallS:             rep.SolveWall.Seconds(),
		PowerKW:                power,
		PowerHeadroomKW:        cap - power,
		InletHeadroomC:         worst,
		InletHeadroomBySensorC: by,
		CracOutC:               p.cracOut,
		LPSolves:               rep.LP.Solves,
		LPPivots:               rep.LP.Pivots,
		LPAllocBytes:           rep.LP.AllocBytes,
	}
	samp.ZonePath = rep.ZonePath
	samp.ZoneRounds = rep.ZoneRounds
	if rep.ZoneFallback {
		samp.ZoneFallbacks = 1
	}
	if rep.Resolved {
		samp.Rung = rep.Rung.String()
	}
	if rep.ErrKind != solvererr.Unknown {
		samp.ErrKind = rep.ErrKind.String()
	}
	samp.Run = jw.Run()
	if err := jw.Write(samp); err != nil {
		return nil, err
	}
	return &samp, nil
}
