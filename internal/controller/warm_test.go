package controller_test

import (
	"math"
	"testing"

	"thermaldc/internal/controller"
	"thermaldc/internal/faults"
	"thermaldc/internal/linprog"
	"thermaldc/internal/stats"
	"thermaldc/internal/workload"
)

// capStepSchedule tightens the power cap in small steps. Small steps keep
// the searched CRAC outlet optimum on the same lattice point across most
// epochs, so the base Stage-1 solver's epoch re-solves patch only
// right-hand sides and the dual warm start engages; a big step moves the
// outlets, changes the power-row coefficients, and correctly falls back
// cold.
func capStepSchedule(horizon float64) faults.Schedule {
	s := faults.Schedule{Events: []faults.Event{
		{Time: 0.15 * horizon, Kind: faults.PowerCap, Magnitude: 0.97},
		{Time: 0.35 * horizon, Kind: faults.PowerCap, Magnitude: 0.94},
		{Time: 0.55 * horizon, Kind: faults.PowerCap, Magnitude: 0.91},
		{Time: 0.75 * horizon, Kind: faults.PowerCap, Magnitude: 0.88},
	}}
	s.Sort()
	return s
}

// TestClosedLoopWarmStartRegression runs the same power-cap-step fault
// schedule twice under the revised simplex core — warm starts on and off —
// and holds the warm run to two promises:
//
//  1. Exactness: every shipped plan (P-states, CRAC outlets) and the
//     reward accounting are bit-identical to the cold run. A warm start
//     either replays the retained basis to the same optimum or rejects to
//     the cold path; it never changes the answer.
//  2. Work: the warm run engages (WarmHits > 0, with real dual pivots) and
//     pays strictly fewer total pivots, never more in any single epoch.
//
// The scenario seed is chosen so the Stage-1 optima along the schedule are
// unique (degenerate ties can make warm and cold stop at different
// equally-optimal vertices, which would break bit-identity without being a
// bug) and so the searched outlets survive several cap steps.
func TestClosedLoopWarmStartRegression(t *testing.T) {
	const horizon = 40.0
	sc := buildScenario(t, 3, 12)
	tasks := workload.GenerateTasks(sc.DC, horizon, stats.NewRand(31))
	schedule := capStepSchedule(horizon)

	run := func(warm bool) *controller.Result {
		cfg := controller.DefaultConfig(horizon, 10)
		cfg.Assign.Search.Parallelism = 1
		cfg.Assign.Method = linprog.MethodRevised
		cfg.Assign.WarmStart = warm
		res, err := controller.Run(sc.DC, schedule, tasks, cfg)
		if err != nil {
			t.Fatalf("warm=%v: %v", warm, err)
		}
		return res
	}
	w, c := run(true), run(false)

	if math.Float64bits(w.TotalReward) != math.Float64bits(c.TotalReward) {
		t.Errorf("total reward %.17g (warm) != %.17g (cold)", w.TotalReward, c.TotalReward)
	}
	if len(w.Epochs) != len(c.Epochs) {
		t.Fatalf("epoch count %d (warm) != %d (cold)", len(w.Epochs), len(c.Epochs))
	}
	for i := range w.Epochs {
		we, ce := &w.Epochs[i], &c.Epochs[i]
		if math.Float64bits(we.Reward) != math.Float64bits(ce.Reward) {
			t.Errorf("epoch %d: reward differs warm vs cold", i)
		}
		for k := range ce.Plan.PStates {
			if we.Plan.PStates[k] != ce.Plan.PStates[k] {
				t.Errorf("epoch %d: PStates differ at core %d", i, k)
				break
			}
		}
		for k := range ce.Plan.Stage1.CracOut {
			if we.Plan.Stage1.CracOut[k] != ce.Plan.Stage1.CracOut[k] {
				t.Errorf("epoch %d: CracOut %v (warm) != %v (cold)",
					i, we.Plan.Stage1.CracOut, ce.Plan.Stage1.CracOut)
				break
			}
		}
		if we.LP.Pivots > ce.LP.Pivots {
			t.Errorf("epoch %d: warm run spent %d pivots, cold %d — warm must never cost extra",
				i, we.LP.Pivots, ce.LP.Pivots)
		}
	}

	if w.LP.WarmHits == 0 {
		t.Fatalf("no warm hits across the cap schedule (attempts %d, rejects %d)",
			w.LP.WarmAttempts, w.LP.WarmRejects)
	}
	if w.LP.DualPivots == 0 {
		t.Error("warm hits did no dual pivots: cap steps never moved the basis, test is vacuous")
	}
	if w.LP.Pivots >= c.LP.Pivots {
		t.Errorf("warm run total pivots %d >= cold %d", w.LP.Pivots, c.LP.Pivots)
	}
	if c.LP.WarmAttempts != 0 {
		t.Errorf("cold run made %d warm attempts, want 0", c.LP.WarmAttempts)
	}
	lower := 0
	for i := range w.Epochs {
		if w.Epochs[i].LP.Pivots < c.Epochs[i].LP.Pivots {
			lower++
		}
	}
	if lower < 2 {
		t.Errorf("only %d epochs re-solved with fewer pivots than cold, want >= 2", lower)
	}
}
