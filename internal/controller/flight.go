package controller

import (
	"thermaldc/internal/faults"
	"thermaldc/internal/flightrec"
	"thermaldc/internal/solvererr"
	"thermaldc/internal/telemetry"
)

// flightReason decides whether an epoch's outcome warrants a flight
// bundle and names the trigger. Empty string means nothing went wrong.
// When several conditions hold at once the worst one names the bundle
// (the others are all visible inside it anyway).
func flightReason(rep *EpochReport) string {
	switch {
	case rep.Fallback:
		// Every solve attempt failed and a safe rung (prev-plan/all-off)
		// took over.
		return "ladder-" + rep.Rung.String()
	case rep.Violations > 0:
		return "verify-reject"
	case rep.Resolved && !rep.ZonePath && rep.Rung > RungWarm:
		// The ladder engaged past the warm rung (cold rebuild or retry).
		return "ladder-" + rep.Rung.String()
	case rep.ZoneFallback:
		return "zone-fallback"
	case rep.ErrKind != solvererr.Unknown:
		// A classified solver error occurred even though the epoch
		// recovered (e.g. a warm reject absorbed before the cold rung).
		return "solve-error-" + rep.ErrKind.String()
	}
	return ""
}

// recordFlight dumps a diagnostic bundle for a degraded epoch. It is a
// no-op without a flight recorder or when the epoch was healthy. Dump
// failures are logged and swallowed: the black box never aborts the run
// it is documenting.
func recordFlight(cfg Config, res *Result, rep *EpochReport, st *faults.State, zp *zonePath, samp *telemetry.EpochSample) {
	fr := cfg.FlightRec
	if fr == nil {
		return
	}
	reason := flightReason(rep)
	if reason == "" {
		return
	}
	b := flightBundle(cfg, res, rep, st, zp, samp, reason)
	if _, err := fr.Record(b); err != nil {
		log := cfg.Recorder.Logger()
		if log == nil {
			log = telemetry.Default()
		}
		log.Warn("flight recorder dump failed", "reason", reason, "err", err.Error())
	}
}

// flightBundle assembles the diagnostic payload: the epoch's outcome and
// sample, the recent span window, a metrics snapshot, the fault-schedule
// state in force, the epoch's LP work stats, and — when the zone fast
// path is live — the coordinator's last stats.
func flightBundle(cfg Config, res *Result, rep *EpochReport, st *faults.State, zp *zonePath, samp *telemetry.EpochSample, reason string) flightrec.Bundle {
	b := flightrec.Bundle{
		Reason:     reason,
		Epoch:      res.EpochsSeen - 1,
		Violations: rep.Violations,
		LP:         rep.LP,
		LastSample: samp,
	}
	if rep.Resolved {
		b.Rung = rep.Rung.String()
	}
	if rep.ErrKind != solvererr.Unknown {
		b.ErrKind = rep.ErrKind.String()
	}
	if st != nil {
		b.Faults = st.Clone()
	}
	if zp != nil {
		b.Zone = zp.solver.LastStats()
	}
	if samp != nil {
		b.Run = samp.Run
	}
	if rec := cfg.Recorder; rec != nil {
		b.Spans = cfg.FlightRec.SpanWindow(rec.Tracer().Snapshot())
		if reg := rec.Registry(); reg != nil {
			b.Metrics = reg.Snapshot()
		}
	}
	return b
}
