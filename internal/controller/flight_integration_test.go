package controller_test

import (
	"strings"
	"testing"
	"time"

	"thermaldc/internal/controller"
	"thermaldc/internal/faults"
	"thermaldc/internal/flightrec"
	"thermaldc/internal/stats"
	"thermaldc/internal/telemetry"
	"thermaldc/internal/workload"
)

// TestFlightRecorderDumpsOnForcedFault: a 1ns solve budget times out every
// epoch and marches the ladder to a safe rung, so each epoch is a flight
// trigger. The recorder must produce at least one bundle that parses and
// carries the epoch's diagnosis (reason, rung, error kind, spans, sample).
func TestFlightRecorderDumpsOnForcedFault(t *testing.T) {
	sc := buildScenario(t, 1, 10)
	const horizon = 40.0
	tasks := workload.GenerateTasks(sc.DC, horizon, stats.NewRand(31))
	schedule := handSchedule(horizon)

	rec := telemetry.NewRecorder()
	rec.Trace = telemetry.NewTracer(telemetry.DefaultTraceCapacity)
	dir := t.TempDir()
	fr, err := flightrec.New(flightrec.Config{
		Dir:         dir,
		MinInterval: time.Nanosecond, // capture every trigger in this short run
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := controller.DefaultConfig(horizon, 10)
	cfg.Recorder = rec
	cfg.SolveTimeout = time.Nanosecond
	cfg.FlightRec = fr

	res, err := controller.Run(sc.DC, schedule, tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallbacks == 0 {
		t.Fatal("1ns solve budget produced no fallbacks; the fixture no longer forces faults")
	}
	recorded, _ := fr.Stats()
	if recorded == 0 {
		t.Fatal("no flight bundles recorded")
	}
	paths, err := flightrec.List(dir)
	if err != nil || len(paths) == 0 {
		t.Fatalf("bundle listing = %v, %v", paths, err)
	}
	b, err := flightrec.ReadBundle(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.Reason, "ladder-") {
		t.Errorf("bundle reason = %q, want a ladder engagement", b.Reason)
	}
	if b.Rung == "" || b.Rung == "warm" {
		t.Errorf("bundle rung = %q, want a degraded rung", b.Rung)
	}
	if len(b.Spans) == 0 {
		t.Error("bundle carries no spans")
	}
	if b.Metrics == nil {
		t.Error("bundle carries no metrics snapshot")
	}
	if b.LastSample == nil {
		t.Error("bundle carries no epoch sample")
	} else if b.LastSample.Epoch != b.Epoch {
		t.Errorf("sample epoch %d != bundle epoch %d", b.LastSample.Epoch, b.Epoch)
	}
}

// TestFlightRecorderQuietOnHealthyRun: a healthy closed loop must record
// nothing — the black box only captures degradation.
func TestFlightRecorderQuietOnHealthyRun(t *testing.T) {
	sc := buildScenario(t, 1, 10)
	const horizon = 40.0
	tasks := workload.GenerateTasks(sc.DC, horizon, stats.NewRand(31))

	fr, err := flightrec.New(flightrec.Config{Dir: t.TempDir(), MinInterval: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	cfg := controller.DefaultConfig(horizon, 10)
	cfg.FlightRec = fr
	// No fault events and no solve budget: every epoch resolves warm.
	res, err := controller.Run(sc.DC, faults.Schedule{}, tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallbacks != 0 || res.Violations != 0 {
		t.Skipf("fixture degraded on its own (%d fallbacks, %d violations)", res.Fallbacks, res.Violations)
	}
	if recorded, _ := fr.Stats(); recorded != 0 {
		t.Fatalf("healthy run recorded %d bundles", recorded)
	}
}
