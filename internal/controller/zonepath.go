package controller

import (
	"context"
	"time"

	"thermaldc/internal/assign"
	"thermaldc/internal/model"
	"thermaldc/internal/thermal"
	"thermaldc/internal/zones"
)

// zonePath is the controller's zone-decomposed Stage-1 fast path (see
// Config.ZoneFastPath). It is rebuilt whenever the planner model is —
// structural faults can change the floor's thermal structure — and holds
// the price-coordinated zone solver over the current planner model.
type zonePath struct {
	solver *zones.Solver
}

// newZonePath partitions the planner model and prepares a zone solver for
// it. It returns nil — disabling the fast path until the next structural
// rebuild — when the floor does not decompose into at least two zones,
// when ψ is unset (the zone solver could not reproduce the monolithic
// envelopes), or when construction fails; the controller then stays on
// the monolithic ladder, which is always correct.
func newZonePath(dc *model.DataCenter, tm *thermal.Model, cfg Config) *zonePath {
	if cfg.Assign.Psi <= 0 {
		return nil
	}
	part, err := zones.PartitionDataCenter(dc, 0)
	if err != nil || len(part.Zones) < 2 {
		return nil
	}
	zs, err := zones.NewSolverFromPartition(part, tm, zones.Config{
		Psi:         cfg.Assign.Psi,
		Pricing:     cfg.Assign.Pricing,
		Method:      cfg.Assign.Method,
		WarmStart:   cfg.Assign.WarmStart,
		Parallelism: cfg.Assign.Search.Parallelism,
		Recorder:    cfg.Recorder,
	})
	if err != nil {
		return nil
	}
	return &zonePath{solver: zs}
}

// try runs one pinned-outlet zone-decomposed solve: Stage 1 through the
// zone solver at the previous plan's outlets (a budget-only re-solve per
// zone, which the warm dual simplex turns into a handful of pivots), then
// Stages 2–3 on the retained monolithic skeletons. The plan ships only if
// it passes the same assign.Verify gate every laddered plan passes;
// any failure — infeasible zones, unconverged coordination, a verify
// finding, even a panic — reports ok=false and the caller falls back to
// the full ladder. Safety is therefore identical to the monolithic path.
func (z *zonePath) try(parent context.Context, cfg Config, ts *assign.ThreeStageSolver, dc *model.DataCenter, tm *thermal.Model, out []float64) (plan *assign.ThreeStageResult, wall time.Duration, ok bool) {
	start := time.Now()
	ctx := parent
	if cfg.SolveTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(parent, cfg.SolveTimeout)
		defer cancel()
	}
	defer func() {
		wall = time.Since(start)
		if recover() != nil {
			plan, ok = nil, false
		}
	}()
	s1, err := z.solver.Solve(ctx, out)
	if err != nil || !s1.Feasible {
		return nil, 0, false
	}
	p, err := ts.FinishFromStage1(ctx, s1)
	if err != nil {
		return nil, 0, false
	}
	if !planVerifies(dc, tm, p, cfg.Tol) {
		return nil, 0, false
	}
	return p, 0, true
}
