package controller

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"thermaldc/internal/assign"
	"thermaldc/internal/scenario"
	"thermaldc/internal/solvererr"
	"thermaldc/internal/thermal"
)

// ladderFixture builds a small solvable scenario plus a working solver.
func ladderFixture(t *testing.T) (cfg Config, solver *assign.ThreeStageSolver, rebuild func() (*assign.ThreeStageSolver, error), fix *scenario.Scenario, tm *thermal.Model) {
	t.Helper()
	// Some seeds draw a fleet the redlines cannot cool; scan for one that
	// builds (the invariant test does the same).
	var sc *scenario.Scenario
	var err error
	for seed := int64(0); seed < 20; seed++ {
		scCfg := scenario.Default(0.3, 0.1, seed)
		scCfg.NCracs = 2
		scCfg.NNodes = 8
		if sc, err = scenario.Build(scCfg); err == nil {
			break
		}
	}
	if err != nil {
		t.Fatal(err)
	}
	tm, err = thermal.New(sc.DC)
	if err != nil {
		t.Fatal(err)
	}
	opts := assign.DefaultOptions()
	opts.Search.Parallelism = 1
	solver, err = assign.NewThreeStageSolver(sc.DC, tm, opts)
	if err != nil {
		t.Fatal(err)
	}
	rebuild = func() (*assign.ThreeStageSolver, error) {
		return assign.NewThreeStageSolver(sc.DC, tm, opts)
	}
	cfg = DefaultConfig(30, 10)
	cfg.Assign = opts
	return cfg, solver, rebuild, sc, tm
}

func TestLadderWarmRung(t *testing.T) {
	cfg, solver, rebuild, sc, tm := ladderFixture(t)
	out := runLadder(context.Background(), cfg, solver, rebuild, sc.DC, tm, nil, nil)
	if out.rung != RungWarm || out.retries != 0 || out.lastErr != nil {
		t.Fatalf("rung=%v retries=%d err=%v, want warm/0/nil", out.rung, out.retries, out.lastErr)
	}
	if out.plan == nil || !out.plan.Stage1.Feasible {
		t.Fatal("warm rung returned no feasible plan")
	}
}

// TestLadderColdRungAfterPanic: a zero-value ThreeStageSolver panics on a
// nil LP skeleton; the guard must catch it (Panic kind) and the cold rung
// must recover with a freshly built solver.
func TestLadderColdRungAfterPanic(t *testing.T) {
	cfg, _, rebuild, sc, tm := ladderFixture(t)
	broken := new(assign.ThreeStageSolver)
	out := runLadder(context.Background(), cfg, broken, rebuild, sc.DC, tm, nil, nil)
	if out.rung != RungCold {
		t.Fatalf("rung = %v (err %v), want cold", out.rung, out.lastErr)
	}
	if solvererr.Classify(out.lastErr) != solvererr.Panic {
		t.Fatalf("lastErr kind = %v (%v), want panic", solvererr.Classify(out.lastErr), out.lastErr)
	}
	if out.solver == nil {
		t.Fatal("cold rung did not hand back the rebuilt solver")
	}
	if out.plan == nil || !out.plan.Stage1.Feasible {
		t.Fatal("cold rung returned no feasible plan")
	}
}

// TestLadderRetryRung: the first rebuild also hands back a panicking
// solver, so only the backed-off retry succeeds.
func TestLadderRetryRung(t *testing.T) {
	cfg, _, goodRebuild, sc, tm := ladderFixture(t)
	cfg.RetryBackoff = time.Millisecond
	calls := 0
	rebuild := func() (*assign.ThreeStageSolver, error) {
		calls++
		if calls == 1 {
			return new(assign.ThreeStageSolver), nil
		}
		return goodRebuild()
	}
	out := runLadder(context.Background(), cfg, new(assign.ThreeStageSolver), rebuild, sc.DC, tm, nil, nil)
	if out.rung != RungRetry || out.retries != 1 {
		t.Fatalf("rung=%v retries=%d (err %v), want retry/1", out.rung, out.retries, out.lastErr)
	}
	if out.plan == nil || !out.plan.Stage1.Feasible {
		t.Fatal("retry rung returned no feasible plan")
	}
}

// TestLadderPrevPlanRung: every solve attempt fails, but the previous
// verified plan still passes Verify on the unchanged model and stays in
// force.
func TestLadderPrevPlanRung(t *testing.T) {
	cfg, solver, _, sc, tm := ladderFixture(t)
	cfg.RetryBackoff = 0
	lastGood, err := guardedSolve(context.Background(), solver)
	if err != nil {
		t.Fatal(err)
	}
	badRebuild := func() (*assign.ThreeStageSolver, error) {
		return nil, errors.New("skeleton build exploded")
	}
	out := runLadder(context.Background(), cfg, new(assign.ThreeStageSolver), badRebuild, sc.DC, tm, lastGood, nil)
	if out.rung != RungPrevPlan {
		t.Fatalf("rung = %v (err %v), want prev-plan", out.rung, out.lastErr)
	}
	if out.plan != lastGood {
		t.Fatal("prev-plan rung did not reuse the last verified plan")
	}
}

// TestLadderAllOffRung: no solve succeeds and there is no previous plan —
// the ladder bottoms out at the all-off safe plan.
func TestLadderAllOffRung(t *testing.T) {
	cfg, _, _, sc, tm := ladderFixture(t)
	cfg.RetryBackoff = 0
	badRebuild := func() (*assign.ThreeStageSolver, error) {
		return nil, errors.New("skeleton build exploded")
	}
	out := runLadder(context.Background(), cfg, new(assign.ThreeStageSolver), badRebuild, sc.DC, tm, nil, nil)
	if out.rung != RungAllOff {
		t.Fatalf("rung = %v, want all-off", out.rung)
	}
	off := sc.DC.NodeType(0).OffState()
	for _, ps := range out.plan.PStates[:sc.DC.NodeType(0).NumCores] {
		if ps != off {
			t.Fatalf("all-off plan has core at P-state %d", ps)
		}
	}
}

// TestLadderTimeoutSkipsSolveRungs: an expired budget must not burn time
// on cold rebuilds or retries — the ladder drops straight to the safe
// rungs with a Timeout classification.
func TestLadderTimeoutSkipsSolveRungs(t *testing.T) {
	cfg, solver, _, sc, tm := ladderFixture(t)
	cfg.SolveTimeout = time.Nanosecond
	rebuilds := 0
	rebuild := func() (*assign.ThreeStageSolver, error) {
		rebuilds++
		return nil, errors.New("should not be called")
	}
	out := runLadder(context.Background(), cfg, solver, rebuild, sc.DC, tm, nil, nil)
	if out.rung != RungAllOff {
		t.Fatalf("rung = %v, want all-off", out.rung)
	}
	if solvererr.Classify(out.lastErr) != solvererr.Timeout {
		t.Fatalf("lastErr kind = %v (%v), want timeout", solvererr.Classify(out.lastErr), out.lastErr)
	}
	if rebuilds != 0 {
		t.Fatalf("cold/retry rungs ran %d rebuilds after the deadline expired", rebuilds)
	}
}

// TestLadderInfeasibleShortCircuits: infeasibility is a property of the
// model, so the ladder must not waste its budget re-solving the same LP.
func TestLadderInfeasibleShortCircuits(t *testing.T) {
	cfg, solver, _, sc, tm := ladderFixture(t)
	cfg.RetryBackoff = 0
	// A cap below the fleet's base power leaves no feasible assignment.
	old := sc.DC.Pconst
	sc.DC.Pconst = 1e-12
	defer func() { sc.DC.Pconst = old }()
	rebuilds := 0
	rebuild := func() (*assign.ThreeStageSolver, error) {
		rebuilds++
		return nil, errors.New("should not be called")
	}
	out := runLadder(context.Background(), cfg, solver, rebuild, sc.DC, tm, nil, nil)
	if out.rung != RungAllOff {
		t.Fatalf("rung = %v, want all-off", out.rung)
	}
	if k := solvererr.Classify(out.lastErr); k != solvererr.Infeasible {
		t.Fatalf("lastErr kind = %v (%v), want infeasible", k, out.lastErr)
	}
	if rebuilds != 0 {
		t.Fatalf("ladder ran %d rebuilds for a deterministically infeasible model", rebuilds)
	}
}

// TestGuardedSolveClassifiesPanic pins the panic guard's error shape.
func TestGuardedSolveClassifiesPanic(t *testing.T) {
	plan, err := guardedSolve(context.Background(), new(assign.ThreeStageSolver))
	if plan != nil || err == nil {
		t.Fatalf("plan=%v err=%v, want nil plan and an error", plan, err)
	}
	var se *solvererr.SolveError
	if !errors.As(err, &se) || se.Kind != solvererr.Panic {
		t.Fatalf("err = %v, want a SolveError with Panic kind", err)
	}
}

func TestRungStrings(t *testing.T) {
	want := map[Rung]string{
		RungWarm: "warm", RungCold: "cold", RungRetry: "retry",
		RungPrevPlan: "prev-plan", RungAllOff: "all-off",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("Rung(%d).String() = %q, want %q", int(r), r.String(), s)
		}
	}
	if Rung(99).String() != fmt.Sprintf("Rung(%d)", 99) {
		t.Errorf("unknown rung string = %q", Rung(99).String())
	}
}
