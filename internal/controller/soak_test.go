package controller_test

import (
	"sync"
	"testing"

	"thermaldc/internal/controller"
	"thermaldc/internal/faults"
	"thermaldc/internal/stats"
	"thermaldc/internal/workload"
)

// TestSoakConcurrentControllers drives several controller runs at once,
// each with a parallel temperature search inside every re-solve, and
// cross-checks determinism between two concurrent copies of the same
// configuration. Under `go test -race` (the make ci gate) this covers the
// epoch loop's interaction with the tempsearch worker pool — the
// controller mutates its planner model between solves, so any sharing of
// mutable state with still-running search workers would trip the detector.
func TestSoakConcurrentControllers(t *testing.T) {
	sc := buildScenario(t, 12, 10)
	const horizon = 30.0
	tasks := workload.GenerateTasks(sc.DC, horizon, stats.NewRand(77))
	schedule, err := faults.Generate(faults.DefaultGenConfig(5, horizon, sc.DC.NCRAC(), sc.DC.NCN()))
	if err != nil {
		t.Fatal(err)
	}
	cfg := controller.DefaultConfig(horizon, 8)
	cfg.Assign.Search.Parallelism = 4

	const copies = 4
	results := make([]*controller.Result, copies)
	var wg sync.WaitGroup
	for c := 0; c < copies; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			mode := controller.Reoptimize
			if c%2 == 1 {
				mode = controller.OpenLoop
			}
			run := cfg
			run.Mode = mode
			// All copies share the base model on purpose: Run must treat it
			// as read-only (every plan works on a Degrade projection), and
			// the race detector holds it to that.
			res, err := controller.Run(sc.DC, schedule, tasks, run)
			if err != nil {
				t.Error(err)
				return
			}
			results[c] = res
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Same-mode concurrent copies must agree exactly.
	if results[0].TotalReward != results[2].TotalReward || results[0].Lost != results[2].Lost {
		t.Error("concurrent closed-loop runs disagree")
	}
	if results[1].TotalReward != results[3].TotalReward || results[1].Lost != results[3].Lost {
		t.Error("concurrent open-loop runs disagree")
	}
}
