package controller

import (
	"math"

	"thermaldc/internal/assign"
	"thermaldc/internal/faults"
	"thermaldc/internal/model"
	"thermaldc/internal/sim"
	"thermaldc/internal/thermal"
)

// truthPlant is the physical data center as the simulator's telemetry sees
// it: the truth-view degraded model (real redlines, real flows) evaluated
// at the plan currently in force. The paper's power model is
// utilization-independent, so the plant is piecewise-constant between
// updates and sampling at update instants captures the exact maxima.
type truthPlant struct {
	tm      *thermal.Model
	redline []float64
	cap     float64
	cracOut []float64
	pcn     []float64
}

// update re-projects the plant after a state or plan change. Dead nodes
// draw nothing — their plan P-states are irrelevant to the physics — so
// their node power is zeroed regardless of what the (possibly stale,
// open-loop) plan assigns them.
func (p *truthPlant) update(base *model.DataCenter, st *faults.State, plan *assign.ThreeStageResult) error {
	truth, err := st.Degrade(base, faults.Truth)
	if err != nil {
		return err
	}
	tm, err := thermal.New(truth)
	if err != nil {
		return err
	}
	pcn := assign.NodePowersFromPStates(truth, plan.PStates)
	for j, failed := range st.NodeFailed {
		if failed {
			pcn[j] = 0
		}
	}
	p.tm = tm
	p.redline = truth.Redline()
	p.cap = truth.Pconst
	p.cracOut = plan.Stage1.CracOut
	p.pcn = pcn
	return nil
}

// headroomInto reports the truth plant's current total draw, power cap,
// and per-sensor inlet headroom (redline − inlet, positive = margin),
// reusing buf for the headroom vector. Telemetry-only companion to Sample.
func (p *truthPlant) headroomInto(buf []float64) (power, cap float64, by []float64) {
	tin := p.tm.InletTemps(p.cracOut, p.pcn)
	by = buf[:0]
	for i := range tin {
		by = append(by, p.redline[i]-tin[i])
	}
	return p.tm.TotalPower(p.cracOut, p.pcn), p.cap, by
}

// Sample implements sim.Plant against the current truth model.
func (p *truthPlant) Sample(t float64) sim.PlantSample {
	tin := p.tm.InletTemps(p.cracOut, p.pcn)
	worst := math.Inf(-1)
	for i := range tin {
		if d := tin[i] - p.redline[i]; d > worst {
			worst = d
		}
	}
	return sim.PlantSample{
		Power:       p.tm.TotalPower(p.cracOut, p.pcn),
		PowerCap:    p.cap,
		InletExcess: worst,
	}
}
