// Package stats provides the small statistical toolkit used across the
// simulator: summary statistics, Student-t confidence intervals for the
// paper's 95% error bars (Figure 6), and deterministic random helpers for
// the workload generators of Section VI.
package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (divisor n-1).
// It returns 0 when fewer than two samples are given.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the smallest element of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Summary bundles the sample statistics reported for each experiment cell.
type Summary struct {
	N        int     // number of samples
	Mean     float64 // sample mean
	StdDev   float64 // unbiased sample standard deviation
	HalfCI95 float64 // half-width of the 95% confidence interval on the mean
	Lo, Hi   float64 // Mean ∓ HalfCI95
}

// Summarize computes the sample mean, standard deviation and a 95%
// Student-t confidence interval for the mean, matching the error bars the
// paper draws in Figure 6 (25 trials per bar).
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Mean: Mean(xs), StdDev: StdDev(xs)}
	if s.N >= 2 {
		s.HalfCI95 = TQuantile95(s.N-1) * s.StdDev / math.Sqrt(float64(s.N))
	}
	s.Lo = s.Mean - s.HalfCI95
	s.Hi = s.Mean + s.HalfCI95
	return s
}

// String renders the summary in the "mean ± half-width" form used by the
// experiment printers.
func (s Summary) String() string {
	return fmt.Sprintf("%.4f ± %.4f (n=%d)", s.Mean, s.HalfCI95, s.N)
}

// tTable holds two-sided 97.5th-percentile Student-t quantiles for small
// degrees of freedom; beyond the table the normal quantile 1.96 is close
// enough for reporting purposes.
var tTable = []float64{
	0:  math.NaN(),
	1:  12.706,
	2:  4.303,
	3:  3.182,
	4:  2.776,
	5:  2.571,
	6:  2.447,
	7:  2.365,
	8:  2.306,
	9:  2.262,
	10: 2.228,
	11: 2.201,
	12: 2.179,
	13: 2.160,
	14: 2.145,
	15: 2.131,
	16: 2.120,
	17: 2.110,
	18: 2.101,
	19: 2.093,
	20: 2.086,
	21: 2.080,
	22: 2.074,
	23: 2.069,
	24: 2.064,
	25: 2.060,
	26: 2.056,
	27: 2.052,
	28: 2.048,
	29: 2.045,
	30: 2.042,
	40: 2.021,
	60: 2.000,
}

// TQuantile95 returns the two-sided 95% Student-t critical value for the
// given degrees of freedom. For df values between table entries it uses the
// nearest smaller tabulated df (conservative); for df > 60 it returns the
// normal approximation 1.96.
func TQuantile95(df int) float64 {
	if df < 1 {
		return math.NaN()
	}
	if df <= 30 {
		return tTable[df]
	}
	if df <= 40 {
		return tTable[30]
	}
	if df <= 60 {
		return tTable[40]
	}
	return 1.960
}

// Uniform draws a sample from the uniform distribution on [a, b], the
// rand[a,b] primitive used throughout Section VI of the paper.
func Uniform(rng *rand.Rand, a, b float64) float64 {
	if b < a {
		a, b = b, a
	}
	return a + (b-a)*rng.Float64()
}

// Exp draws an exponential inter-arrival time with the given rate
// (events per unit time). It panics if rate <= 0.
func Exp(rng *rand.Rand, rate float64) float64 {
	if rate <= 0 {
		panic(fmt.Sprintf("stats: Exp rate must be positive, got %g", rate))
	}
	return rng.ExpFloat64() / rate
}

// Poisson draws a Poisson-distributed count with the given mean using
// inversion by sequential search for small means and the PTRS
// transformed-rejection method for large means.
func Poisson(rng *rand.Rand, mean float64) int {
	if mean < 0 {
		panic(fmt.Sprintf("stats: Poisson mean must be non-negative, got %g", mean))
	}
	if mean == 0 {
		return 0
	}
	if mean < 30 {
		// Knuth's product-of-uniforms method.
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= rng.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	// Normal approximation with continuity correction is adequate for the
	// large-mean regime used only in stress tests.
	for {
		x := rng.NormFloat64()*math.Sqrt(mean) + mean + 0.5
		if x >= 0 {
			return int(x)
		}
	}
}

// NewRand returns a deterministic RNG for the given seed. Trials use
// seed = base + trial index so every experiment is reproducible.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
