package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMeanBasic(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %g, want %g", c.xs, got, c.want)
		}
	}
}

func TestVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n-1 divisor: sum sq dev = 32, / 7.
	want := 32.0 / 7.0
	if got := Variance(xs); !almostEqual(got, want, 1e-12) {
		t.Errorf("Variance = %g, want %g", got, want)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(want), 1e-12) {
		t.Errorf("StdDev = %g, want %g", got, math.Sqrt(want))
	}
}

func TestVarianceDegenerate(t *testing.T) {
	if got := Variance(nil); got != 0 {
		t.Errorf("Variance(nil) = %g, want 0", got)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Errorf("Variance(single) = %g, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -2, 7, 0}
	if got := Min(xs); got != -2 {
		t.Errorf("Min = %g, want -2", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %g, want 7", got)
	}
}

func TestMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Min(nil) did not panic")
		}
	}()
	Min(nil)
}

func TestSummarizePaperTrialCount(t *testing.T) {
	// 25 trials, df = 24, t = 2.064 as in the paper's Figure 6 error bars.
	xs := make([]float64, 25)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := Summarize(xs)
	if s.N != 25 {
		t.Fatalf("N = %d, want 25", s.N)
	}
	wantHalf := 2.064 * StdDev(xs) / math.Sqrt(25)
	if !almostEqual(s.HalfCI95, wantHalf, 1e-9) {
		t.Errorf("HalfCI95 = %g, want %g", s.HalfCI95, wantHalf)
	}
	if !almostEqual(s.Hi-s.Lo, 2*wantHalf, 1e-9) {
		t.Errorf("CI width = %g, want %g", s.Hi-s.Lo, 2*wantHalf)
	}
}

func TestTQuantileMonotone(t *testing.T) {
	prev := math.Inf(1)
	for df := 1; df <= 200; df++ {
		q := TQuantile95(df)
		if q > prev+1e-12 {
			t.Fatalf("TQuantile95 not non-increasing at df=%d: %g > %g", df, q, prev)
		}
		if q < 1.959 {
			t.Fatalf("TQuantile95(%d) = %g below normal limit", df, q)
		}
		prev = q
	}
}

func TestUniformRange(t *testing.T) {
	rng := NewRand(1)
	for i := 0; i < 1000; i++ {
		x := Uniform(rng, 0.9, 1.1)
		if x < 0.9 || x >= 1.1 {
			t.Fatalf("Uniform out of range: %g", x)
		}
	}
	// Swapped bounds are tolerated.
	x := Uniform(rng, 5, 2)
	if x < 2 || x >= 5 {
		t.Fatalf("Uniform with swapped bounds out of range: %g", x)
	}
}

func TestUniformMeanProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := NewRand(seed)
		sum := 0.0
		const n = 4000
		for i := 0; i < n; i++ {
			sum += Uniform(rng, 2, 4)
		}
		return almostEqual(sum/n, 3, 0.1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestExpMean(t *testing.T) {
	rng := NewRand(7)
	const rate = 2.5
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		sum += Exp(rng, rate)
	}
	if !almostEqual(sum/n, 1/rate, 0.02) {
		t.Errorf("Exp mean = %g, want %g", sum/n, 1/rate)
	}
}

func TestExpPanicsOnNonPositiveRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(rate=0) did not panic")
		}
	}()
	Exp(NewRand(1), 0)
}

func TestPoissonSmallMean(t *testing.T) {
	rng := NewRand(11)
	const mean = 3.2
	const n = 20000
	sum := 0
	for i := 0; i < n; i++ {
		sum += Poisson(rng, mean)
	}
	got := float64(sum) / n
	if !almostEqual(got, mean, 0.1) {
		t.Errorf("Poisson mean = %g, want %g", got, mean)
	}
}

func TestPoissonLargeMean(t *testing.T) {
	rng := NewRand(13)
	const mean = 200.0
	const n = 5000
	sum := 0
	for i := 0; i < n; i++ {
		sum += Poisson(rng, mean)
	}
	got := float64(sum) / n
	if !almostEqual(got, mean, 2) {
		t.Errorf("Poisson mean = %g, want %g", got, mean)
	}
}

func TestPoissonZero(t *testing.T) {
	rng := NewRand(1)
	if got := Poisson(rng, 0); got != 0 {
		t.Errorf("Poisson(0) = %d, want 0", got)
	}
}

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}
