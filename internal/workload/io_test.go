package workload

import (
	"bytes"
	"strings"
	"testing"

	"thermaldc/internal/stats"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dc, _ := genDC(t, 0.1, 31)
	tasks := GenerateTasks(dc, 5, stats.NewRand(2))
	var buf bytes.Buffer
	if err := SaveTasks(&buf, tasks); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTasks(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(tasks) {
		t.Fatalf("round trip lost tasks: %d vs %d", len(back), len(tasks))
	}
	for i := range tasks {
		if back[i] != tasks[i] {
			t.Fatalf("task %d differs: %+v vs %+v", i, back[i], tasks[i])
		}
	}
}

func TestLoadTasksValidates(t *testing.T) {
	cases := map[string]string{
		"bad json":         `{not json`,
		"negative arrival": `[{"ID":0,"Type":0,"Arrival":-1,"Deadline":2}]`,
		"deadline<arrival": `[{"ID":0,"Type":0,"Arrival":5,"Deadline":2}]`,
		"negative type":    `[{"ID":0,"Type":-1,"Arrival":1,"Deadline":2}]`,
	}
	for name, raw := range cases {
		if _, err := LoadTasks(strings.NewReader(raw)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestLoadTasksResorts(t *testing.T) {
	raw := `[{"ID":1,"Type":0,"Arrival":5,"Deadline":7},{"ID":0,"Type":0,"Arrival":1,"Deadline":3}]`
	tasks, err := LoadTasks(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if tasks[0].Arrival != 1 || tasks[1].Arrival != 5 {
		t.Fatalf("not sorted: %+v", tasks)
	}
}
