package workload_test

import (
	"bytes"
	"sort"
	"testing"

	"thermaldc/internal/workload"
)

// FuzzLoadTasks feeds arbitrary byte streams to the task-stream parser.
// The contract under fuzzing: malformed input returns an error — never a
// panic — and accepted input yields a stream whose invariants (sorted
// arrivals, deadlines at or after arrivals, non-negative types) hold and
// which survives a save/load round trip.
func FuzzLoadTasks(f *testing.F) {
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"ID":0,"Type":1,"Arrival":0.5,"Deadline":2}]`))
	f.Add([]byte(`[{"ID":1,"Type":0,"Arrival":3,"Deadline":3}, {"ID":0,"Type":2,"Arrival":1,"Deadline":9}]`))
	f.Add([]byte(`[{"Arrival":-1}]`))
	f.Add([]byte(`[{"Deadline":-5,"Arrival":0}]`))
	f.Add([]byte(`[{"Type":-3}]`))
	f.Add([]byte(`[{"Arrival":1e308,"Deadline":1e309}]`))
	f.Add([]byte(`[][]`))
	f.Add([]byte(`[]garbage`))
	f.Add([]byte(`{"not":"an array"}`))
	f.Add([]byte("\x00\xff\xfe"))
	f.Add([]byte(`[{"ID":9007199254740993,"Type":0,"Arrival":0,"Deadline":0}]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		tasks, err := workload.LoadTasks(bytes.NewReader(data))
		if err != nil {
			return
		}
		if !sort.SliceIsSorted(tasks, func(a, b int) bool { return tasks[a].Arrival < tasks[b].Arrival }) {
			t.Fatal("accepted stream not sorted by arrival")
		}
		for i, task := range tasks {
			if task.Arrival < 0 || task.Deadline < task.Arrival || task.Type < 0 {
				t.Fatalf("accepted task %d violates invariants: %+v", i, task)
			}
		}
		// Round trip: what we accepted must save and re-load to the same
		// stream.
		var buf bytes.Buffer
		if err := workload.SaveTasks(&buf, tasks); err != nil {
			t.Fatalf("saving accepted stream: %v", err)
		}
		again, err := workload.LoadTasks(&buf)
		if err != nil {
			t.Fatalf("re-loading saved stream: %v", err)
		}
		if len(again) != len(tasks) {
			t.Fatalf("round trip changed length: %d -> %d", len(tasks), len(again))
		}
		for i := range tasks {
			if again[i] != tasks[i] {
				t.Fatalf("round trip changed task %d: %+v -> %+v", i, tasks[i], again[i])
			}
		}
	})
}

func TestLoadTasksRejectsTrailingData(t *testing.T) {
	if _, err := workload.LoadTasks(bytes.NewReader([]byte(`[] []`))); err == nil {
		t.Error("trailing array accepted")
	}
	if _, err := workload.LoadTasks(bytes.NewReader([]byte(`[]x`))); err == nil {
		t.Error("trailing garbage accepted")
	}
	// A trailing newline (what SaveTasks writes) is fine.
	if _, err := workload.LoadTasks(bytes.NewReader([]byte("[]\n"))); err != nil {
		t.Errorf("trailing newline rejected: %v", err)
	}
}
