package workload

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"thermaldc/internal/model"
	"thermaldc/internal/stats"
)

func genDC(t testing.TB, vprop float64, seed int64) (*model.DataCenter, GenConfig) {
	t.Helper()
	cfg := DefaultGenConfig(vprop)
	dc := &model.DataCenter{
		NodeTypes:   model.TableINodeTypes(0.3),
		RedlineNode: 25,
		RedlineCRAC: 40,
		CRACs:       []model.CRAC{{Flow: 1}},
	}
	for j := 0; j < 10; j++ {
		dc.Nodes = append(dc.Nodes, model.Node{Type: j % 2})
	}
	rng := stats.NewRand(seed)
	ecs, err := GenerateECS(dc.NodeTypes, cfg, rng)
	if err != nil {
		t.Fatalf("GenerateECS: %v", err)
	}
	dc.ECS = ecs
	if err := GenerateTaskTypes(dc, cfg, rng); err != nil {
		t.Fatalf("GenerateTaskTypes: %v", err)
	}
	return dc, cfg
}

func TestGenerateECSShape(t *testing.T) {
	dc, cfg := genDC(t, 0.1, 1)
	if len(dc.ECS) != cfg.T {
		t.Fatalf("ECS task dim = %d, want %d", len(dc.ECS), cfg.T)
	}
	for i := range dc.ECS {
		if len(dc.ECS[i]) != 2 {
			t.Fatalf("ECS node dim = %d, want 2", len(dc.ECS[i]))
		}
		for j := range dc.ECS[i] {
			if len(dc.ECS[i][j]) != 5 {
				t.Fatalf("ECS pstate dim = %d, want 5", len(dc.ECS[i][j]))
			}
		}
	}
}

func TestECSMonotoneInPState(t *testing.T) {
	for _, vprop := range []float64{0.1, 0.3} {
		dc, _ := genDC(t, vprop, 2)
		for i := range dc.ECS {
			for j := range dc.ECS[i] {
				row := dc.ECS[i][j]
				for k := 1; k < len(row); k++ {
					if row[k] >= row[k-1] && row[k-1] != 0 {
						t.Fatalf("Vprop=%g: ECS[%d][%d] not decreasing: %v", vprop, i, j, row)
					}
				}
				if row[len(row)-1] != 0 {
					t.Fatalf("off-state ECS = %g, want 0", row[len(row)-1])
				}
			}
		}
	}
}

func TestECSTaskEasinessDoubling(t *testing.T) {
	// Type i+1 is on average twice as fast as type i (within the ±VECS
	// variation of 10%).
	dc, _ := genDC(t, 0.1, 3)
	for i := 0; i+1 < len(dc.ECS); i++ {
		for j := range dc.ECS[i] {
			ratio := dc.ECS[i+1][j][0] / dc.ECS[i][j][0]
			if ratio < 2*0.9/1.1 || ratio > 2*1.1/0.9 {
				t.Errorf("ECS ratio type %d→%d on node %d = %g, want ≈2", i, i+1, j, ratio)
			}
		}
	}
}

func TestECSNodeTypePerformanceRatio(t *testing.T) {
	// Node type 1 performs 0.6× node type 2 on average.
	dc, _ := genDC(t, 0.1, 4)
	sum0, sum1 := 0.0, 0.0
	for i := range dc.ECS {
		sum0 += dc.ECS[i][0][0]
		sum1 += dc.ECS[i][1][0]
	}
	ratio := sum0 / sum1
	if ratio < 0.6*0.85 || ratio > 0.6*1.15 {
		t.Errorf("node performance ratio = %g, want ≈0.6", ratio)
	}
}

func TestECSFrequencyScaling(t *testing.T) {
	// With Vprop=0.1, ECS at P-state k is within ±10% of the frequency-
	// proportional value (unless the monotonicity repair bit).
	dc, _ := genDC(t, 0.1, 5)
	for i := range dc.ECS {
		for j := range dc.ECS[i] {
			freqs := dc.NodeTypes[j].Core.FreqMHz
			for k := 1; k < 4; k++ {
				ideal := dc.ECS[i][j][0] * freqs[k] / freqs[0]
				got := dc.ECS[i][j][k]
				if got < ideal*0.9-1e-12 || got > ideal*1.1+1e-12 {
					t.Errorf("ECS[%d][%d][%d] = %g outside ±10%% of %g", i, j, k, got, ideal)
				}
			}
		}
	}
}

func TestGenerateECSConfigValidation(t *testing.T) {
	rng := stats.NewRand(1)
	types := model.TableINodeTypes(0.3)
	bad := []GenConfig{
		{T: 0, NodeTypePerf: []float64{1, 1}, DeadlineFactor: 1},
		{T: 2, NodeTypePerf: []float64{1}, DeadlineFactor: 1},
		{T: 2, NodeTypePerf: []float64{1, 1}, VECS: 1.0, DeadlineFactor: 1},
		{T: 2, NodeTypePerf: []float64{1, 1}, DeadlineFactor: 0},
	}
	for i, cfg := range bad {
		if _, err := GenerateECS(types, cfg, rng); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestTaskTypeRewards(t *testing.T) {
	// Equation 11: reward = 1/avg ECS; easier (higher-ECS) types earn less.
	dc, _ := genDC(t, 0.1, 6)
	for i, tt := range dc.TaskTypes {
		avg := (dc.ECS[i][0][0] + dc.ECS[i][1][0]) / 2
		if math.Abs(tt.Reward*avg-1) > 1e-9 {
			t.Errorf("reward %d = %g, want %g", i, tt.Reward, 1/avg)
		}
	}
	for i := 0; i+1 < len(dc.TaskTypes); i++ {
		if dc.TaskTypes[i].Reward <= dc.TaskTypes[i+1].Reward {
			t.Errorf("rewards should decrease with task easiness: r%d=%g r%d=%g",
				i, dc.TaskTypes[i].Reward, i+1, dc.TaskTypes[i+1].Reward)
		}
	}
}

func TestDeadlineRange(t *testing.T) {
	// Equation 14: m_i ∈ 1.5·[1/MaxECS, 1/MinECS]; in particular at least
	// one node type meets the deadline at P-state 0 (1/MaxECS ≤ m/1.5).
	prop := func(seed int64) bool {
		dc, cfg := genDC(t, 0.3, seed)
		for i, tt := range dc.TaskTypes {
			minECS, maxECS := math.Inf(1), math.Inf(-1)
			for j := range dc.NodeTypes {
				eta := dc.NodeTypes[j].NumPStates()
				minECS = math.Min(minECS, dc.ECS[i][j][eta-1])
				maxECS = math.Max(maxECS, dc.ECS[i][j][0])
			}
			lo := cfg.DeadlineFactor / maxECS
			hi := cfg.DeadlineFactor / minECS
			if tt.RelDeadline < lo-1e-9 || tt.RelDeadline > hi+1e-9 {
				return false
			}
			// Feasibility at P-state 0 on the fastest type.
			if tt.RelDeadline < 1/maxECS {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestArrivalRates(t *testing.T) {
	// Equation 15-16: λ_i ≈ SumECS_i within ±30%.
	dc, cfg := genDC(t, 0.1, 8)
	for i, tt := range dc.TaskTypes {
		sum := 0.0
		for j := range dc.Nodes {
			nt := dc.Nodes[j].Type
			sum += dc.ECS[i][nt][0] * float64(dc.NodeTypes[nt].NumCores)
		}
		sum /= float64(cfg.T)
		if tt.ArrivalRate < sum*(1-cfg.Varrival)-1e-9 || tt.ArrivalRate > sum*(1+cfg.Varrival)+1e-9 {
			t.Errorf("λ_%d = %g outside SumECS %g ± 30%%", i, tt.ArrivalRate, sum)
		}
	}
}

func TestGenerateTaskTypesRequiresECS(t *testing.T) {
	cfg := DefaultGenConfig(0.1)
	dc := &model.DataCenter{NodeTypes: model.TableINodeTypes(0.3)}
	if err := GenerateTaskTypes(dc, cfg, stats.NewRand(1)); err == nil {
		t.Fatal("GenerateTaskTypes without ECS accepted")
	}
}

func TestGenerateTasksStream(t *testing.T) {
	dc, _ := genDC(t, 0.1, 9)
	const horizon = 50.0
	tasks := GenerateTasks(dc, horizon, stats.NewRand(10))
	if len(tasks) == 0 {
		t.Fatal("no tasks generated")
	}
	if !sort.SliceIsSorted(tasks, func(a, b int) bool { return tasks[a].Arrival < tasks[b].Arrival }) {
		t.Fatal("tasks not sorted by arrival")
	}
	counts := make([]int, dc.T())
	for i, task := range tasks {
		if task.ID != i {
			t.Fatal("IDs not arrival-ordered")
		}
		if task.Arrival < 0 || task.Arrival >= horizon {
			t.Fatalf("arrival %g outside horizon", task.Arrival)
		}
		want := task.Arrival + dc.TaskTypes[task.Type].RelDeadline
		if math.Abs(task.Deadline-want) > 1e-12 {
			t.Fatalf("deadline %g, want %g", task.Deadline, want)
		}
		counts[task.Type]++
	}
	// Empirical rates within 3 sigma of λ·horizon.
	for i, tt := range dc.TaskTypes {
		mean := tt.ArrivalRate * horizon
		sigma := math.Sqrt(mean)
		if math.Abs(float64(counts[i])-mean) > 4*sigma+1 {
			t.Errorf("type %d: %d arrivals, expected ≈%g", i, counts[i], mean)
		}
	}
}

func TestGenerateTasksZeroRate(t *testing.T) {
	dc, _ := genDC(t, 0.1, 11)
	for i := range dc.TaskTypes {
		dc.TaskTypes[i].ArrivalRate = 0
	}
	if tasks := GenerateTasks(dc, 100, stats.NewRand(1)); len(tasks) != 0 {
		t.Fatalf("expected no tasks, got %d", len(tasks))
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := genDC(t, 0.3, 42)
	b, _ := genDC(t, 0.3, 42)
	for i := range a.ECS {
		for j := range a.ECS[i] {
			for k := range a.ECS[i][j] {
				if a.ECS[i][j][k] != b.ECS[i][j][k] {
					t.Fatal("ECS generation not deterministic")
				}
			}
		}
	}
	for i := range a.TaskTypes {
		if a.TaskTypes[i] != b.TaskTypes[i] {
			t.Fatal("task-type generation not deterministic")
		}
	}
}
