// Package workload implements the synthetic workload generators of
// Section VI: the ECS tensor (§VI.C, Equation 10 with the monotonicity
// repair), task-type rewards (Equation 11), deadlines (Equations 12-14),
// arrival rates (Equations 15-16), and a Poisson task-stream generator for
// the second-step dynamic scheduler.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"thermaldc/internal/model"
	"thermaldc/internal/stats"
)

// GenConfig holds the §VI generator parameters.
type GenConfig struct {
	// T is the number of task types (paper: 8).
	T int
	// VECS is the task/node affinity variation factor (paper: 0.1).
	VECS float64
	// Vprop is the frequency-proportionality variation factor (paper: 0.1
	// or 0.3; the Figure-6 knob).
	Vprop float64
	// Varrival is the arrival-rate variation factor (paper: 0.3).
	Varrival float64
	// NodeTypePerf is the average ECS per node type; the paper uses
	// {0.6, 1.0} from the SPECpower ssj-ops ratio of the two servers.
	NodeTypePerf []float64
	// DeadlineFactor scales deadlines (paper Equation 14: 1.5).
	DeadlineFactor float64
}

// DefaultGenConfig returns the paper's §VI parameters for the given Vprop.
func DefaultGenConfig(vprop float64) GenConfig {
	return GenConfig{
		T:              8,
		VECS:           0.1,
		Vprop:          vprop,
		Varrival:       0.3,
		NodeTypePerf:   []float64{0.6, 1.0},
		DeadlineFactor: 1.5,
	}
}

func (c *GenConfig) validate(numNodeTypes int) error {
	if c.T <= 0 {
		return fmt.Errorf("workload: T must be positive, got %d", c.T)
	}
	if len(c.NodeTypePerf) != numNodeTypes {
		return fmt.Errorf("workload: %d node-type performance factors for %d node types",
			len(c.NodeTypePerf), numNodeTypes)
	}
	for _, v := range []float64{c.VECS, c.Vprop, c.Varrival} {
		if v < 0 || v >= 1 {
			return fmt.Errorf("workload: variation factors must be in [0, 1), got %g", v)
		}
	}
	if c.DeadlineFactor <= 0 {
		return fmt.Errorf("workload: deadline factor must be positive")
	}
	return nil
}

// GenerateECS builds the three-dimensional ECS tensor of §VI.C:
//
//  1. A 2-D P-state-0 matrix: entry (i, j) is the product of the task
//     type's average ECS (each type half as fast as the next), the node
//     type's average ECS, and a variation factor rand[1−VECS, 1+VECS].
//  2. Extension along P-states by Equation 10 (clock-frequency scaling
//     times rand[1−Vprop, 1+Vprop]), regenerating any draw that would make
//     ECS increase with the P-state index.
//  3. A final 0 entry per (i, j) for the turned-off state.
func GenerateECS(nodeTypes []model.NodeType, cfg GenConfig, rng *rand.Rand) (model.ECS, error) {
	if err := cfg.validate(len(nodeTypes)); err != nil {
		return nil, err
	}
	ecs := make(model.ECS, cfg.T)
	for i := 0; i < cfg.T; i++ {
		// Task-type average: type T−1 has average 1, each earlier type is
		// half as fast.
		taskAvg := math.Pow(2, float64(i-(cfg.T-1)))
		ecs[i] = make([][]float64, len(nodeTypes))
		for j := range nodeTypes {
			eta := nodeTypes[j].NumPStates()
			row := make([]float64, eta+1)
			row[0] = taskAvg * cfg.NodeTypePerf[j] * stats.Uniform(rng, 1-cfg.VECS, 1+cfg.VECS)
			freqs := nodeTypes[j].Core.FreqMHz
			for k := 1; k < eta; k++ {
				for {
					v := row[0] * (freqs[k] / freqs[0]) * stats.Uniform(rng, 1-cfg.Vprop, 1+cfg.Vprop)
					if v < row[k-1] {
						row[k] = v
						break
					}
				}
			}
			// row[eta] stays 0: turned off.
			ecs[i][j] = row
		}
	}
	return ecs, nil
}

// GenerateTaskTypes fills dc.TaskTypes from dc.ECS and the node
// population, using the paper's reward (Equation 11), deadline
// (Equations 12-14) and arrival-rate (Equations 15-16) rules. dc.ECS and
// dc.Nodes must already be populated.
func GenerateTaskTypes(dc *model.DataCenter, cfg GenConfig, rng *rand.Rand) error {
	if err := cfg.validate(len(dc.NodeTypes)); err != nil {
		return err
	}
	if len(dc.ECS) != cfg.T {
		return fmt.Errorf("workload: ECS has %d task types, config says %d", len(dc.ECS), cfg.T)
	}
	types := make([]model.TaskType, cfg.T)
	for i := 0; i < cfg.T; i++ {
		// Equation 11: reward = 1 / (average P-state-0 ECS over node types).
		avg := 0.0
		for j := range dc.NodeTypes {
			avg += dc.ECS[i][j][0]
		}
		avg /= float64(len(dc.NodeTypes))
		reward := 1 / avg

		// Equations 12-13: extreme ECS over node types; the minimum is at
		// the slowest real P-state (index η−1 here, the paper's η_j − 2
		// counting the off state), the maximum at P-state 0.
		minECS := math.Inf(1)
		maxECS := math.Inf(-1)
		for j := range dc.NodeTypes {
			eta := dc.NodeTypes[j].NumPStates()
			if v := dc.ECS[i][j][eta-1]; v < minECS {
				minECS = v
			}
			if v := dc.ECS[i][j][0]; v > maxECS {
				maxECS = v
			}
		}
		// Equation 14: m_i = 1.5·rand[1/MaxECS, 1/MinECS], guaranteeing at
		// least one core type can meet the deadline at P-state 0.
		m := cfg.DeadlineFactor * stats.Uniform(rng, 1/maxECS, 1/minECS)

		// Equations 15-16: λ_i sized so the full-power data center could
		// just absorb the load split evenly across task types.
		sumECS := 0.0
		for j := range dc.Nodes {
			nt := dc.Nodes[j].Type
			sumECS += dc.ECS[i][nt][0] * float64(dc.NodeTypes[nt].NumCores)
		}
		sumECS /= float64(cfg.T)
		lambda := sumECS * stats.Uniform(rng, 1-cfg.Varrival, 1+cfg.Varrival)

		types[i] = model.TaskType{
			Name:        fmt.Sprintf("type-%d", i),
			Reward:      reward,
			RelDeadline: m,
			ArrivalRate: lambda,
		}
	}
	dc.TaskTypes = types
	return nil
}

// Task is one concrete task instance for the dynamic scheduler.
type Task struct {
	// ID is a unique, arrival-ordered identifier.
	ID int
	// Type indexes DataCenter.TaskTypes.
	Type int
	// Arrival is the arrival time in seconds from simulation start.
	Arrival float64
	// Deadline = Arrival + m_type (absolute).
	Deadline float64
}

// GenerateTasks draws a Poisson arrival stream for every task type over
// [0, horizon) seconds and returns the merged, arrival-sorted task list.
func GenerateTasks(dc *model.DataCenter, horizon float64, rng *rand.Rand) []Task {
	var tasks []Task
	for i, tt := range dc.TaskTypes {
		if tt.ArrivalRate <= 0 {
			continue
		}
		for t := stats.Exp(rng, tt.ArrivalRate); t < horizon; t += stats.Exp(rng, tt.ArrivalRate) {
			tasks = append(tasks, Task{Type: i, Arrival: t, Deadline: t + tt.RelDeadline})
		}
	}
	sort.Slice(tasks, func(a, b int) bool { return tasks[a].Arrival < tasks[b].Arrival })
	for i := range tasks {
		tasks[i].ID = i
	}
	return tasks
}
