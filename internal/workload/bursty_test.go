package workload

import (
	"math"
	"sort"
	"testing"

	"thermaldc/internal/stats"
)

func TestBurstConfigValidate(t *testing.T) {
	good := BurstConfig{Burst: 0.5, HighFraction: 0.3, MeanHighDuration: 5}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []BurstConfig{
		{Burst: -0.1, HighFraction: 0.3, MeanHighDuration: 5},
		{Burst: 1.5, HighFraction: 0.3, MeanHighDuration: 5},
		{Burst: 0.5, HighFraction: 0, MeanHighDuration: 5},
		{Burst: 0.5, HighFraction: 1, MeanHighDuration: 5},
		{Burst: 1.0, HighFraction: 0.6, MeanHighDuration: 5}, // 0.6·2 > 1
		{Burst: 0.5, HighFraction: 0.3, MeanHighDuration: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestBurstRatesPreserveMean(t *testing.T) {
	for _, c := range []BurstConfig{
		{Burst: 0.8, HighFraction: 0.25, MeanHighDuration: 3},
		{Burst: 0.3, HighFraction: 0.5, MeanHighDuration: 10},
	} {
		high, low := c.rates()
		mean := c.HighFraction*high + (1-c.HighFraction)*low
		if math.Abs(mean-1) > 1e-12 {
			t.Errorf("%+v: long-run multiplier %g, want 1", c, mean)
		}
		if low < 0 {
			t.Errorf("%+v: negative low rate %g", c, low)
		}
	}
}

func TestGenerateBurstyTasksMeanRate(t *testing.T) {
	dc, _ := genDC(t, 0.1, 21)
	cfg := BurstConfig{Burst: 0.9, HighFraction: 0.3, MeanHighDuration: 4}
	const horizon = 300.0
	tasks, err := GenerateBurstyTasks(dc, horizon, cfg, stats.NewRand(5))
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(tasks, func(a, b int) bool { return tasks[a].Arrival < tasks[b].Arrival }) {
		t.Fatal("tasks not sorted")
	}
	counts := make([]float64, dc.T())
	for _, task := range tasks {
		counts[task.Type]++
		if task.Arrival < 0 || task.Arrival >= horizon {
			t.Fatalf("arrival %g outside horizon", task.Arrival)
		}
	}
	// Long-run rates match λ_i despite the modulation (generous bounds:
	// MMPP variance exceeds Poisson).
	for i, tt := range dc.TaskTypes {
		mean := tt.ArrivalRate * horizon
		if math.Abs(counts[i]-mean) > 6*math.Sqrt(mean)+0.15*mean {
			t.Errorf("type %d: %g arrivals, expected ≈%g", i, counts[i], mean)
		}
	}
}

func TestGenerateBurstyTasksIsBurstier(t *testing.T) {
	// The index of dispersion (var/mean of counts in windows) must exceed
	// the Poisson value of 1.
	dc, _ := genDC(t, 0.1, 22)
	// Single type keeps the statistics clean.
	dc.TaskTypes = dc.TaskTypes[:1]
	dc.TaskTypes[0].ArrivalRate = 50
	const horizon = 400.0
	cfg := BurstConfig{Burst: 1.0, HighFraction: 0.2, MeanHighDuration: 5}
	bursty, err := GenerateBurstyTasks(dc, horizon, cfg, stats.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	poisson := GenerateTasks(dc, horizon, stats.NewRand(7))
	dispersion := func(tasks []Task) float64 {
		const window = 2.0
		n := int(horizon / window)
		counts := make([]float64, n)
		for _, task := range tasks {
			w := int(task.Arrival / window)
			if w < n {
				counts[w]++
			}
		}
		return stats.Variance(counts) / stats.Mean(counts)
	}
	db, dp := dispersion(bursty), dispersion(poisson)
	if db <= dp {
		t.Errorf("bursty dispersion %g not above Poisson %g", db, dp)
	}
	if dp > 1.5 {
		t.Errorf("Poisson dispersion %g suspiciously high", dp)
	}
}

func TestGenerateBurstyTasksBadConfig(t *testing.T) {
	dc, _ := genDC(t, 0.1, 23)
	if _, err := GenerateBurstyTasks(dc, 10, BurstConfig{Burst: 2}, stats.NewRand(1)); err == nil {
		t.Fatal("invalid config accepted")
	}
}
