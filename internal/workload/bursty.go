package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"thermaldc/internal/model"
	"thermaldc/internal/stats"
)

// BurstConfig parameterizes a two-state Markov-modulated Poisson process
// (MMPP) per task type: arrivals alternate between a high-rate burst state
// (rate λ·(1+Burst)) and a compensating low-rate state, with the long-run
// mean still λ. The paper assumes plain Poisson arrivals; this extension
// stresses the dynamic scheduler with the burstiness real workloads show.
type BurstConfig struct {
	// Burst ∈ [0, 1]: the high state runs at λ·(1+Burst).
	Burst float64
	// HighFraction ∈ (0, 1): long-run fraction of time in the high state.
	// HighFraction·(1+Burst) must not exceed 1 so the low rate stays ≥ 0.
	HighFraction float64
	// MeanHighDuration is the expected burst length in seconds.
	MeanHighDuration float64
}

// Validate checks the configuration.
func (c BurstConfig) Validate() error {
	if c.Burst < 0 || c.Burst > 1 {
		return fmt.Errorf("workload: Burst %g outside [0, 1]", c.Burst)
	}
	if c.HighFraction <= 0 || c.HighFraction >= 1 {
		return fmt.Errorf("workload: HighFraction %g outside (0, 1)", c.HighFraction)
	}
	if c.HighFraction*(1+c.Burst) > 1 {
		return fmt.Errorf("workload: HighFraction·(1+Burst) = %g > 1 leaves a negative low rate",
			c.HighFraction*(1+c.Burst))
	}
	if c.MeanHighDuration <= 0 {
		return fmt.Errorf("workload: MeanHighDuration must be positive")
	}
	return nil
}

// rates returns the high and low arrival-rate multipliers.
func (c BurstConfig) rates() (high, low float64) {
	high = 1 + c.Burst
	low = (1 - c.HighFraction*high) / (1 - c.HighFraction)
	return high, low
}

// GenerateBurstyTasks draws an MMPP arrival stream for every task type
// over [0, horizon) and returns the merged, arrival-sorted task list. Each
// type gets an independent state process so bursts do not align.
func GenerateBurstyTasks(dc *model.DataCenter, horizon float64, cfg BurstConfig, rng *rand.Rand) ([]Task, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	highMul, lowMul := cfg.rates()
	meanLow := cfg.MeanHighDuration * (1 - cfg.HighFraction) / cfg.HighFraction
	var tasks []Task
	for i, tt := range dc.TaskTypes {
		if tt.ArrivalRate <= 0 {
			continue
		}
		// Start in the high state with probability HighFraction.
		inHigh := rng.Float64() < cfg.HighFraction
		t := 0.0
		for t < horizon {
			var stateEnd, rate float64
			if inHigh {
				stateEnd = t + stats.Exp(rng, 1/cfg.MeanHighDuration)
				rate = tt.ArrivalRate * highMul
			} else {
				stateEnd = t + stats.Exp(rng, 1/meanLow)
				rate = tt.ArrivalRate * lowMul
			}
			if stateEnd > horizon {
				stateEnd = horizon
			}
			if rate > 0 {
				for at := t + stats.Exp(rng, rate); at < stateEnd; at += stats.Exp(rng, rate) {
					tasks = append(tasks, Task{Type: i, Arrival: at, Deadline: at + tt.RelDeadline})
				}
			}
			t = stateEnd
			inHigh = !inHigh
		}
	}
	sort.Slice(tasks, func(a, b int) bool { return tasks[a].Arrival < tasks[b].Arrival })
	for i := range tasks {
		tasks[i].ID = i
	}
	return tasks, nil
}
