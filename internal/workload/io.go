package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"thermaldc/internal/telemetry"
)

// SaveTasks writes a task stream as JSON, so generated (or traced)
// workloads can be replayed across runs and tools.
func SaveTasks(w io.Writer, tasks []Task) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(tasks); err != nil {
		return err
	}
	telemetry.Default().Debug("workload: saved tasks", "tasks", len(tasks))
	return nil
}

// LoadTasks reads a task stream written by SaveTasks, re-sorts it by
// arrival (defensively) and validates basic invariants. Malformed input —
// bad JSON, trailing data after the array, or out-of-range fields — is an
// error, never a panic or a silently truncated stream.
func LoadTasks(r io.Reader) ([]Task, error) {
	var tasks []Task
	dec := json.NewDecoder(r)
	if err := dec.Decode(&tasks); err != nil {
		return nil, fmt.Errorf("workload: decoding tasks: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("workload: trailing data after task array")
	}
	for i, t := range tasks {
		if t.Arrival < 0 {
			return nil, fmt.Errorf("workload: task %d has negative arrival %g", i, t.Arrival)
		}
		if t.Deadline < t.Arrival {
			return nil, fmt.Errorf("workload: task %d deadline %g before arrival %g", i, t.Deadline, t.Arrival)
		}
		if t.Type < 0 {
			return nil, fmt.Errorf("workload: task %d has negative type", i)
		}
	}
	sort.Slice(tasks, func(a, b int) bool { return tasks[a].Arrival < tasks[b].Arrival })
	telemetry.Default().Debug("workload: loaded tasks", "tasks", len(tasks))
	return tasks, nil
}
