package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"fmt"

	"thermaldc/internal/controller"
	"thermaldc/internal/linprog"
	"thermaldc/internal/persist"
)

// This file persists the degraded-operation sweep through internal/persist:
// every completed closed-loop epoch and every finished run is one durable
// journal record, so a killed sweep resumes at the exact epoch it died in.
//
// The journal carries two record kinds, gob-encoded:
//
//   - epochRecord: one controller.EpochDelta of the closed-loop run in
//     progress. Folding a run's deltas in order (controller.Checkpoint.Fold)
//     rebuilds the mid-run state the controller resumes from.
//   - runDoneRecord: a finished run (closed or open) reduced to exactly
//     the values the sweep's row accumulation reads. Completed runs are
//     never re-executed on resume; their journaled summaries feed the
//     identical accumulation code path, so a resumed sweep's table is
//     byte-identical to an uninterrupted one.
//
// Open-loop runs are single solves and do not checkpoint mid-run: killed
// mid-open-run, the resume re-executes it from scratch (deterministic, so
// nothing is lost but wall time).
//
// Snapshots compact recovery: every snapshotEvery commits the folded sweep
// state (finished-run summaries + the in-progress run's checkpoint) is
// atomically rewritten, so resume replays only the journal tail.

// runKey identifies one run of the sweep.
type runKey struct {
	// Level indexes DegradedConfig.Levels; Trial counts within the level.
	Level, Trial int
	// Open distinguishes the open-loop run from the closed-loop one.
	Open bool
}

// runSummary is a finished run reduced to the row-accumulation inputs.
type runSummary struct {
	RewardRate                   float64
	Lost                         int
	Resolves, Fallbacks, Retries int
	RungCounts                   [controller.NumRungs]int
	LP                           linprog.Stats
	MaxPowerExcess               float64
	MaxInletExcess               float64
}

func summarize(r *controller.Result) runSummary {
	return runSummary{
		RewardRate:     r.RewardRate,
		Lost:           r.Lost,
		Resolves:       r.Resolves,
		Fallbacks:      r.Fallbacks,
		Retries:        r.Retries,
		RungCounts:     r.RungCounts,
		LP:             r.LP,
		MaxPowerExcess: r.MaxPowerExcess,
		MaxInletExcess: r.MaxInletExcess,
	}
}

// epochRecord journals one completed closed-loop epoch.
type epochRecord struct {
	Key   runKey
	Delta *controller.EpochDelta
}

// runDoneRecord journals one finished run.
type runDoneRecord struct {
	Key     runKey
	Summary runSummary
}

// journalRecord is the tagged union stored in each journal record.
type journalRecord struct {
	Epoch   *epochRecord
	RunDone *runDoneRecord
}

// doneEntry is one finished run in the snapshot, in completion order.
type doneEntry struct {
	Key     runKey
	Summary runSummary
}

// sweepSnapshot is the compacted sweep state written as the snapshot
// payload.
type sweepSnapshot struct {
	Done []doneEntry
	// PartialKey/Partial carry the in-progress closed run's folded
	// checkpoint, when one exists.
	PartialKey *runKey
	Partial    *controller.Checkpoint
}

// runTag hashes every configuration field that influences results, so a
// checkpoint directory can never be resumed under different parameters
// (persist.KindMismatch instead of a silently diverging run). Telemetry
// hooks are excluded: they never change results.
func (cfg DegradedConfig) runTag() persist.Tag {
	opts := cfg.Options
	opts.Recorder = nil
	opts.Search.Trace = nil
	h := sha256.New()
	fmt.Fprintf(h, "degraded|v1|%d|%d|%v|%v|%d|%v|%v|%d|%+v|%+v|%v",
		cfg.NCracs, cfg.NNodes, cfg.StaticShare, cfg.Vprop, cfg.Seed,
		cfg.Horizon, cfg.Epoch, cfg.Trials, cfg.Levels, opts, cfg.SolveTimeout)
	var tag persist.Tag
	h.Sum(tag[:0])
	return tag
}

// sweepCheckpoint drives the store for one sweep. A nil *sweepCheckpoint
// is valid and inert, so the sweep body is uncluttered by enablement
// checks on the hot path.
type sweepCheckpoint struct {
	store     *persist.Store
	ctrl      controller.Config
	snapEvery int
	hook      func(commits int)

	done       map[runKey]runSummary
	order      []runKey
	partialKey *runKey
	partial    *controller.Checkpoint
	commits    int
}

func corruptErr(dir string, cause error) error {
	return &persist.Error{Op: "sweep resume", Kind: persist.KindCorrupt, Path: dir, Cause: cause}
}

// openSweepCheckpoint creates or recovers the checkpoint directory. It
// returns nil when checkpointing is disabled.
func openSweepCheckpoint(cfg DegradedConfig, ctrl controller.Config) (*sweepCheckpoint, error) {
	if cfg.CheckpointDir == "" {
		if cfg.Resume {
			return nil, fmt.Errorf("experiments: resume requested without a checkpoint directory")
		}
		return nil, nil
	}
	ck := &sweepCheckpoint{
		ctrl:      ctrl,
		snapEvery: cfg.SnapshotEvery,
		hook:      cfg.CommitHook,
		done:      make(map[runKey]runSummary),
	}
	if ck.snapEvery == 0 {
		ck.snapEvery = 8
	}
	tag := cfg.runTag()
	if !cfg.Resume {
		store, err := persist.CreateStore(cfg.CheckpointDir, tag)
		if err != nil {
			return nil, err
		}
		ck.store = store
		return ck, nil
	}
	store, rec, err := persist.OpenStore(cfg.CheckpointDir, tag)
	if err != nil {
		return nil, err
	}
	ck.store = store
	if rec.Snapshot != nil {
		var snap sweepSnapshot
		if err := gob.NewDecoder(bytes.NewReader(rec.Snapshot)).Decode(&snap); err != nil {
			store.Close()
			return nil, corruptErr(cfg.CheckpointDir, fmt.Errorf("decoding snapshot: %w", err))
		}
		for _, e := range snap.Done {
			ck.done[e.Key] = e.Summary
			ck.order = append(ck.order, e.Key)
		}
		ck.partialKey, ck.partial = snap.PartialKey, snap.Partial
	}
	for _, r := range rec.Records {
		var jr journalRecord
		if err := gob.NewDecoder(bytes.NewReader(r.Payload)).Decode(&jr); err != nil {
			store.Close()
			return nil, corruptErr(cfg.CheckpointDir, fmt.Errorf("decoding record %d: %w", r.Seq, err))
		}
		if err := ck.fold(&jr); err != nil {
			store.Close()
			return nil, corruptErr(cfg.CheckpointDir, fmt.Errorf("replaying record %d: %w", r.Seq, err))
		}
	}
	return ck, nil
}

// fold replays one journal record into the recovered sweep state,
// mirroring exactly what the live sink/finishRun pair did when the record
// was committed.
func (ck *sweepCheckpoint) fold(jr *journalRecord) error {
	switch {
	case jr.Epoch != nil:
		key := jr.Epoch.Key
		if key.Open {
			return fmt.Errorf("epoch record for an open-loop run %+v", key)
		}
		if _, isDone := ck.done[key]; isDone {
			return fmt.Errorf("epoch record for already finished run %+v", key)
		}
		if ck.partialKey == nil || *ck.partialKey != key {
			if ck.partial != nil && ck.partial.EpochsDone > 0 {
				return fmt.Errorf("epoch record for %+v while %+v is unfinished", key, *ck.partialKey)
			}
			k := key
			ck.partialKey, ck.partial = &k, controller.NewCheckpoint(ck.ctrl)
		}
		ck.partial.Fold(jr.Epoch.Delta)
	case jr.RunDone != nil:
		key := jr.RunDone.Key
		if _, isDone := ck.done[key]; isDone {
			return fmt.Errorf("run %+v finished twice", key)
		}
		ck.done[key] = jr.RunDone.Summary
		ck.order = append(ck.order, key)
		if ck.partialKey != nil && *ck.partialKey == key {
			ck.partialKey, ck.partial = nil, nil
		}
	default:
		return fmt.Errorf("record is neither an epoch nor a run completion")
	}
	return nil
}

// completed reports a journaled summary for the run, if one exists.
func (ck *sweepCheckpoint) completed(key runKey) (runSummary, bool) {
	if ck == nil {
		return runSummary{}, false
	}
	s, ok := ck.done[key]
	return s, ok
}

// begin prepares persistence for one closed-loop run: the checkpoint to
// resume from (nil for a fresh run) and the live fold target the sink
// advances. A recovered partial belonging to a different run than the
// first unfinished one means the journal and the sweep order disagree.
func (ck *sweepCheckpoint) begin(key runKey) (*controller.Checkpoint, error) {
	if ck.partialKey != nil && *ck.partialKey != key {
		return nil, corruptErr(ck.store.Dir(),
			fmt.Errorf("journal holds progress for run %+v but the sweep is at %+v", *ck.partialKey, key))
	}
	if ck.partial != nil && ck.partial.EpochsDone > 0 {
		return ck.partial, nil
	}
	k := key
	ck.partialKey, ck.partial = &k, controller.NewCheckpoint(ck.ctrl)
	return nil, nil
}

// sink returns the CheckpointSink of the closed-loop run for key: commit
// the epoch record durably, advance the folded state, snapshot on the
// period. The crash hook fires after the commit is durable — exactly the
// point where killing the process must lose nothing.
func (ck *sweepCheckpoint) sink(key runKey) controller.CheckpointSink {
	if ck == nil {
		return nil
	}
	return func(d *controller.EpochDelta) error {
		if err := ck.commit(&journalRecord{Epoch: &epochRecord{Key: key, Delta: d}}); err != nil {
			return err
		}
		ck.partial.Fold(d)
		return ck.maybeSnapshot()
	}
}

// finishRun journals a run completion and retires any partial state.
func (ck *sweepCheckpoint) finishRun(key runKey, sum runSummary) error {
	if ck == nil {
		return nil
	}
	if err := ck.commit(&journalRecord{RunDone: &runDoneRecord{Key: key, Summary: sum}}); err != nil {
		return err
	}
	ck.done[key] = sum
	ck.order = append(ck.order, key)
	if ck.partialKey != nil && *ck.partialKey == key {
		ck.partialKey, ck.partial = nil, nil
	}
	return ck.maybeSnapshot()
}

// commit encodes and durably appends one record, then fires the crash
// hook.
func (ck *sweepCheckpoint) commit(jr *journalRecord) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(jr); err != nil {
		return fmt.Errorf("experiments: encoding journal record: %w", err)
	}
	if _, err := ck.store.Commit(buf.Bytes()); err != nil {
		return err
	}
	ck.commits++
	if ck.hook != nil {
		ck.hook(ck.commits)
	}
	return nil
}

// maybeSnapshot compacts recovery state every snapEvery commits.
func (ck *sweepCheckpoint) maybeSnapshot() error {
	if ck.snapEvery <= 0 || ck.commits%ck.snapEvery != 0 {
		return nil
	}
	snap := sweepSnapshot{PartialKey: ck.partialKey, Partial: ck.partial}
	for _, key := range ck.order {
		snap.Done = append(snap.Done, doneEntry{Key: key, Summary: ck.done[key]})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&snap); err != nil {
		return fmt.Errorf("experiments: encoding snapshot: %w", err)
	}
	return ck.store.Snapshot(buf.Bytes())
}

// Close releases the store.
func (ck *sweepCheckpoint) Close() error {
	if ck == nil {
		return nil
	}
	return ck.store.Close()
}
