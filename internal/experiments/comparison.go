package experiments

import (
	"context"
	"fmt"
	"strings"

	"thermaldc/internal/assign"
	"thermaldc/internal/scenario"
	"thermaldc/internal/stats"
)

// ComparisonResult pits three P-state techniques against each other on the
// same scenarios:
//
//  1. the naive server-level "ondemand-style" clamp (all P0, turn cores
//     off blindly until feasible) — what the paper's introduction says is
//     done in practice and fails under a power cap;
//  2. the Equation-21 baseline (P0-or-off, reward-aware fractions);
//  3. the paper's three-stage assignment.
//
// All three use the same Stage-3 rate LP, so differences isolate the
// P-state/temperature decision.
type ComparisonResult struct {
	Config SweepConfig
	// Naive, Baseline, ThreeStage summarize absolute reward rates.
	Naive, Baseline, ThreeStage stats.Summary
	// BaselineOverNaive and ThreeStageOverBaseline are % improvements.
	BaselineOverNaive      stats.Summary
	ThreeStageOverBaseline stats.Summary
}

// TechniqueComparison runs the three techniques. cfg.Values is ignored.
func TechniqueComparison(cfg SweepConfig) (*ComparisonResult, error) {
	return TechniqueComparisonContext(context.Background(), cfg)
}

// TechniqueComparisonContext is TechniqueComparison under a cancelable
// context.
func TechniqueComparisonContext(ctx context.Context, cfg SweepConfig) (*ComparisonResult, error) {
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("experiments: Trials must be positive")
	}
	var naive, base, three, bOverN, tOverB []float64
	for t := 0; t < cfg.Trials; t++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		seed := cfg.BaseSeed + int64(t)
		scCfg := scenario.Default(cfg.StaticShare, cfg.Vprop, seed)
		scCfg.NCracs, scCfg.NNodes = cfg.NCracs, cfg.NNodes
		sc, err := scenario.Build(scCfg)
		if err != nil {
			return nil, err
		}
		nv, err := assign.NaiveOndemand(sc.DC, sc.Thermal, cfg.Options.Search)
		if err != nil {
			return nil, fmt.Errorf("naive: %w", err)
		}
		bl, err := assign.Baseline(sc.DC, sc.Thermal, cfg.Options)
		if err != nil {
			return nil, fmt.Errorf("baseline: %w", err)
		}
		ts, err := assign.ThreeStage(sc.DC, sc.Thermal, cfg.Options)
		if err != nil {
			return nil, fmt.Errorf("three-stage: %w", err)
		}
		naive = append(naive, nv.Stage3.RewardRate)
		base = append(base, bl.RewardRate)
		three = append(three, ts.RewardRate())
		bOverN = append(bOverN, 100*(bl.RewardRate-nv.Stage3.RewardRate)/nv.Stage3.RewardRate)
		tOverB = append(tOverB, 100*(ts.RewardRate()-bl.RewardRate)/bl.RewardRate)
	}
	return &ComparisonResult{
		Config:                 cfg,
		Naive:                  stats.Summarize(naive),
		Baseline:               stats.Summarize(base),
		ThreeStage:             stats.Summarize(three),
		BaselineOverNaive:      stats.Summarize(bOverN),
		ThreeStageOverBaseline: stats.Summarize(tOverB),
	}, nil
}

// Render prints the three-way comparison.
func (r *ComparisonResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Technique comparison (%d trials, %d nodes, %d CRACs)\n\n",
		r.Config.Trials, r.Config.NNodes, r.Config.NCracs)
	fmt.Fprintf(&b, "%-34s %s\n", "naive ondemand clamp (all P0):", r.Naive)
	fmt.Fprintf(&b, "%-34s %s\n", "Equation-21 baseline:", r.Baseline)
	fmt.Fprintf(&b, "%-34s %s\n\n", "three-stage (paper):", r.ThreeStage)
	fmt.Fprintf(&b, "Eq. 21 over naive     : %+.2f%% ± %.2f\n", r.BaselineOverNaive.Mean, r.BaselineOverNaive.HalfCI95)
	fmt.Fprintf(&b, "three-stage over Eq.21: %+.2f%% ± %.2f\n", r.ThreeStageOverBaseline.Mean, r.ThreeStageOverBaseline.HalfCI95)
	return b.String()
}
