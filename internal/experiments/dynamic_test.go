package experiments

import (
	"math"
	"strings"
	"testing"

	"thermaldc/internal/scenario"
	"thermaldc/internal/stats"
)

func smallDynamic(seed int64) DynamicConfig {
	cfg := DefaultDynamicConfig(seed)
	cfg.NNodes = 10
	cfg.Horizon = 60
	cfg.Epoch = 15
	cfg.Period = 60
	return cfg
}

func TestDynamicReassignmentRuns(t *testing.T) {
	res, err := DynamicReassignment(smallDynamic(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks == 0 {
		t.Fatal("no tasks generated")
	}
	if res.StaticReward <= 0 || res.AdaptiveReward <= 0 {
		t.Fatal("rewards should be positive")
	}
	if res.Reassignments != 4 {
		t.Errorf("reassignments = %d, want 4 (60/15)", res.Reassignments)
	}
	out := res.Render()
	for _, want := range []string{"static assignment", "epoch reassignment", "gain"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestDynamicReassignmentValidation(t *testing.T) {
	cfg := smallDynamic(1)
	cfg.Epoch = 0
	if _, err := DynamicReassignment(cfg); err == nil {
		t.Error("zero epoch accepted")
	}
	cfg = smallDynamic(1)
	cfg.Horizon = -1
	if _, err := DynamicReassignment(cfg); err == nil {
		t.Error("negative horizon accepted")
	}
}

func TestDynamicAdaptiveHelpsUnderDriftOnAverage(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed drift experiment in -short mode")
	}
	sum := 0.0
	const trials = 3
	for seed := int64(1); seed <= trials; seed++ {
		res, err := DynamicReassignment(smallDynamic(seed))
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("seed %d: static %.1f, adaptive %.1f (%+.2f%%)", seed, res.StaticReward, res.AdaptiveReward, res.GainPct)
		sum += res.GainPct
	}
	if sum/trials < -1 {
		t.Errorf("adaptive reassignment loses %.2f%% on average under heavy drift", sum/trials)
	}
}

func TestInstantAndMeanRatesConsistent(t *testing.T) {
	cfg := smallDynamic(1)
	// The mean over a full period equals the base rate.
	got := meanRateOver(10, 2, 8, &cfg, 0, cfg.Period)
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("full-period mean = %g, want 10", got)
	}
	// The mean over a short window approximates the instantaneous rate.
	mid := 17.3
	inst := instantRate(10, 2, 8, &cfg, mid)
	short := meanRateOver(10, 2, 8, &cfg, mid-0.01, mid+0.01)
	if math.Abs(inst-short) > 1e-3 {
		t.Errorf("short-window mean %g vs instantaneous %g", short, inst)
	}
	// Numerical cross-check of the analytic integral.
	a, b := 3.0, 21.0
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		sum += instantRate(10, 2, 8, &cfg, a+(b-a)*(float64(i)+0.5)/n)
	}
	numeric := sum / n
	analytic := meanRateOver(10, 2, 8, &cfg, a, b)
	if math.Abs(numeric-analytic) > 1e-3 {
		t.Errorf("numeric %g vs analytic %g", numeric, analytic)
	}
}

func TestPolicyAblationReducedScale(t *testing.T) {
	if testing.Short() {
		t.Skip("policy ablation in -short mode")
	}
	cfg := smallSweep(nil)
	res, err := PolicyAblation(cfg, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names) != 5 {
		t.Fatalf("got %d policies", len(res.Names))
	}
	paperIdx := -1
	for i, n := range res.Names {
		if n == "paper-min-ratio" {
			paperIdx = i
		}
		if res.Reward[i].Mean <= 0 {
			t.Errorf("policy %s: non-positive reward", n)
		}
	}
	if paperIdx < 0 {
		t.Fatal("paper policy missing")
	}
	t.Log("\n" + res.Render())
	if !strings.Contains(res.Render(), "round-robin") {
		t.Error("render missing policies")
	}
}

func TestPolicyAblationValidation(t *testing.T) {
	cfg := smallSweep(nil)
	cfg.Trials = 0
	if _, err := PolicyAblation(cfg, 30); err == nil {
		t.Error("Trials=0 accepted")
	}
	cfg = smallSweep(nil)
	if _, err := PolicyAblation(cfg, 0); err == nil {
		t.Error("horizon=0 accepted")
	}
}

func TestGenerateDriftingTasksSorted(t *testing.T) {
	cfg := smallDynamic(2)
	scCfg := scenario.Default(cfg.StaticShare, cfg.Vprop, cfg.Seed)
	scCfg.NCracs, scCfg.NNodes = cfg.NCracs, cfg.NNodes
	sc, err := scenario.Build(scCfg)
	if err != nil {
		t.Fatal(err)
	}
	tasks := generateDriftingTasks(sc.DC, &cfg, stats.NewRand(1))
	for i := 1; i < len(tasks); i++ {
		if tasks[i].Arrival < tasks[i-1].Arrival {
			t.Fatal("tasks not sorted")
		}
	}
	for _, task := range tasks {
		want := task.Arrival + sc.DC.TaskTypes[task.Type].RelDeadline
		if math.Abs(task.Deadline-want) > 1e-12 {
			t.Fatal("deadline inconsistent")
		}
	}
}

func TestTechniqueComparisonReducedScale(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison in -short mode")
	}
	cfg := smallSweep(nil)
	res, err := TechniqueComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Naive.Mean <= 0 || res.Baseline.Mean <= 0 || res.ThreeStage.Mean <= 0 {
		t.Fatal("all techniques should earn reward")
	}
	if res.ThreeStage.Mean < res.Naive.Mean {
		t.Errorf("three-stage (%g) below naive clamp (%g) on average", res.ThreeStage.Mean, res.Naive.Mean)
	}
	if !strings.Contains(res.Render(), "naive ondemand") {
		t.Error("render incomplete")
	}
}

func TestTechniqueComparisonValidation(t *testing.T) {
	cfg := smallSweep(nil)
	cfg.Trials = 0
	if _, err := TechniqueComparison(cfg); err == nil {
		t.Error("Trials=0 accepted")
	}
}

func TestBurstinessSweepReducedScale(t *testing.T) {
	if testing.Short() {
		t.Skip("burstiness sweep in -short mode")
	}
	cfg := smallSweep([]float64{0, 0.8})
	res, err := BurstinessSweep(cfg, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PaperRatePct) != 2 || len(res.SoftRatePct) != 2 {
		t.Fatalf("unexpected point counts")
	}
	for i := range res.Bursts {
		if res.PaperRatePct[i].Mean <= 0 || res.SoftRatePct[i].Mean <= 0 {
			t.Error("rates should be positive")
		}
		// The soft policy never drops more than the paper policy on the
		// same stream (it only ever converts drops into assignments).
		if res.SoftDropPct[i].Mean > res.PaperDropPct[i].Mean+1e-9 {
			t.Errorf("burst %g: soft drops %g%% > paper drops %g%%",
				res.Bursts[i], res.SoftDropPct[i].Mean, res.PaperDropPct[i].Mean)
		}
	}
	if !strings.Contains(res.Render(), "burst") {
		t.Error("render incomplete")
	}
}

func TestBurstinessSweepValidation(t *testing.T) {
	cfg := smallSweep(nil)
	if _, err := BurstinessSweep(cfg, 20); err == nil {
		t.Error("empty values accepted")
	}
}

func TestHeterogeneitySweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	res, err := HeterogeneitySweep(smallSweep([]float64{0.02, 0.98}))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.ThreeStage.Mean <= 0 {
			t.Errorf("x=%g: non-positive reward", p.X)
		}
	}
	// x ≈ 0 → nearly all NEC (faster fleet) earns more than all-HP.
	if res.Points[0].ThreeStage.Mean <= res.Points[1].ThreeStage.Mean {
		t.Error("all-NEC fleet should outperform all-HP fleet")
	}
}

func TestDynamicTransientSafety(t *testing.T) {
	res, err := DynamicReassignment(smallDynamic(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.MinTransientSlack < -1e-6 {
		t.Errorf("transient redline violation: slack %g °C", res.MinTransientSlack)
	}
	if !strings.Contains(res.Render(), "transient slack") {
		t.Error("render missing transient slack")
	}
}
