package experiments

import (
	"fmt"
	"strings"

	"thermaldc/internal/assign"
	"thermaldc/internal/model"
	"thermaldc/internal/power"
	"thermaldc/internal/pwl"
)

// Fig345Series holds one plotted function as (power, reward-rate) samples.
type Fig345Series struct {
	Name string
	Func *pwl.Func
}

// exampleDC rebuilds the Section-V.B.2 worked example: P-state powers
// 0.15/0.1/0.05/0 W, ECS 1.2/0.9/0.5/0, reward 1.
func exampleDC(relDeadline float64) *model.DataCenter {
	nt := model.NodeType{
		Name:      "example core",
		BasePower: 0.1,
		NumCores:  2,
		Core: power.CoreModel{
			FreqMHz: []float64{3000, 2000, 1000},
			Voltage: []float64{1, 1, 1},
			P0Power: 0.15,
		},
		AirFlow: 0.07,
	}
	return &model.DataCenter{
		NodeTypes:   []model.NodeType{nt},
		Nodes:       []model.Node{{Type: 0}},
		CRACs:       []model.CRAC{{Flow: 0.07}},
		TaskTypes:   []model.TaskType{{Name: "i", Reward: 1, RelDeadline: relDeadline, ArrivalRate: 10}},
		ECS:         model.ECS{{{1.2, 0.9, 0.5, 0}}},
		Alpha:       [][]float64{{0, 1}, {1, 0}},
		RedlineNode: 25,
		RedlineCRAC: 40,
		Pconst:      100,
	}
}

// Figures345 regenerates the three worked-example functions:
// Figure 3 — RR without deadline pressure; Figure 4 — RR with m_i = 1.5
// zeroing P-state 2; Figure 5 — the concave ARR envelope eliding the bad
// P-state.
func Figures345() ([]Fig345Series, error) {
	noDeadline := exampleDC(100)
	withDeadline := exampleDC(1.5)
	arr, err := assign.ARR(withDeadline, 0, 100)
	if err != nil {
		return nil, err
	}
	return []Fig345Series{
		{Name: "Figure 3: RR_{i,j}", Func: assign.RR(noDeadline, 0, 0)},
		{Name: "Figure 4: RR_{i,j} with m_i = 1.5", Func: assign.RR(withDeadline, 0, 0)},
		{Name: "Figure 5: ARR_j, bad P-state elided", Func: arr},
	}, nil
}

// RenderFig345 prints each series' breakpoints and a dense sample table
// ready for plotting.
func RenderFig345(series []Fig345Series) string {
	var b strings.Builder
	for _, s := range series {
		fmt.Fprintf(&b, "%s\n", s.Name)
		fmt.Fprintf(&b, "  breakpoints: %s\n", s.Func)
		fmt.Fprintf(&b, "  %-12s %-12s\n", "power (W)", "reward rate")
		lo, hi := s.Func.Domain()
		const samples = 16
		for i := 0; i <= samples; i++ {
			x := lo + (hi-lo)*float64(i)/samples
			fmt.Fprintf(&b, "  %-12.4f %-12.4f\n", x, s.Func.Eval(x))
		}
		b.WriteString("\n")
	}
	return b.String()
}
