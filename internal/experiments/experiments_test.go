package experiments

import (
	"math"
	"strings"
	"testing"

	"thermaldc/internal/assign"
)

// reducedFig6 returns a small, fast Figure-6 configuration.
func reducedFig6() Fig6Config {
	cfg := DefaultFig6Config()
	cfg.Trials = 2
	cfg.NCracs = 2
	cfg.NNodes = 10
	return cfg
}

func TestFigure6ReducedScale(t *testing.T) {
	cfg := reducedFig6()
	res, err := Figure6(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 3 {
		t.Fatalf("got %d groups, want 3", len(res.Groups))
	}
	for _, g := range res.Groups {
		if len(g.Trials) != cfg.Trials {
			t.Fatalf("group %s has %d trials, want %d", g.Group.Label(), len(g.Trials), cfg.Trials)
		}
		if len(g.PsiSummaries) != len(cfg.Psis) {
			t.Fatalf("group %s has %d ψ summaries", g.Group.Label(), len(g.PsiSummaries))
		}
		for _, tr := range g.Trials {
			if tr.BaselineReward <= 0 {
				t.Error("baseline reward should be positive")
			}
			// Best-of improvement dominates the individual ψ improvements.
			for p, imp := range tr.ImprovementByPsi {
				if tr.BestImprovement < imp-1e-9 {
					t.Errorf("best %g < ψ[%d] improvement %g", tr.BestImprovement, p, imp)
				}
			}
			if tr.BestImprovement < 0 {
				t.Logf("note: seed %d best improvement %.2f%% (negative trials can occur)", tr.Seed, tr.BestImprovement)
			}
		}
	}
	// Rendering mentions each group and draws CI values.
	out := res.Render()
	for _, g := range res.Groups {
		if !strings.Contains(out, g.Group.Label()) {
			t.Errorf("render missing group %q", g.Group.Label())
		}
	}
	if !strings.Contains(out, "ψ=25") || !strings.Contains(out, "best") {
		t.Error("render missing cells")
	}
}

func TestFigure6Deterministic(t *testing.T) {
	cfg := reducedFig6()
	cfg.Trials = 1
	cfg.Groups = []Fig6Group{{StaticShare: 0.3, Vprop: 0.1}}
	a, err := Figure6(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure6(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Groups[0].BestSummary.Mean != b.Groups[0].BestSummary.Mean {
		t.Error("Figure6 not deterministic across runs")
	}
}

func TestFigure6Validation(t *testing.T) {
	cfg := reducedFig6()
	cfg.Trials = 0
	if _, err := Figure6(cfg, nil); err == nil {
		t.Error("Trials=0 accepted")
	}
	cfg = reducedFig6()
	cfg.Psis = nil
	if _, err := Figure6(cfg, nil); err == nil {
		t.Error("empty Psis accepted")
	}
}

func TestTable1(t *testing.T) {
	out := Table1(0.3)
	for _, want := range []string{
		"HP ProLiant DL785 G5", "NEC Express5800/A1080a-S",
		"0.353", "0.418", "2500", "2666", "0.01375", "0.01625",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
	// P-state powers decrease down the table for both shares.
	if !strings.Contains(Table1(0.2), "static share 20%") {
		t.Error("Table1 should echo the static share")
	}
}

func TestTable2(t *testing.T) {
	out := Table2()
	for _, want := range []string{"A", "E", "30–40", "80–90", "40–80"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q", want)
		}
	}
}

func TestFigures345(t *testing.T) {
	series, err := Figures345()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("got %d series", len(series))
	}
	fig3, fig4, fig5 := series[0].Func, series[1].Func, series[2].Func
	if math.Abs(fig3.Eval(0.15)-1.2) > 1e-12 || math.Abs(fig3.Eval(0.05)-0.5) > 1e-12 {
		t.Error("Figure 3 values wrong")
	}
	if math.Abs(fig4.Eval(0.05)) > 1e-12 {
		t.Error("Figure 4 should zero P-state 2")
	}
	if math.Abs(fig5.Eval(0.05)-0.45) > 1e-12 {
		t.Error("Figure 5 envelope wrong")
	}
	out := RenderFig345(series)
	if !strings.Contains(out, "Figure 3") || !strings.Contains(out, "breakpoints") {
		t.Error("render incomplete")
	}
}

func smallSweep(values []float64) SweepConfig {
	cfg := DefaultSweepConfig(values)
	cfg.Trials = 2
	cfg.NCracs = 2
	cfg.NNodes = 10
	return cfg
}

func TestPowerCapSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	res, err := PowerCapSweep(smallSweep([]float64{0.3, 0.9}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("got %d points", len(res.Points))
	}
	// More power → more reward for both techniques.
	if res.Points[1].Baseline.Mean <= res.Points[0].Baseline.Mean {
		t.Error("baseline reward should grow with the power cap")
	}
	if res.Points[1].ThreeStage.Mean <= res.Points[0].ThreeStage.Mean {
		t.Error("three-stage reward should grow with the power cap")
	}
	if !strings.Contains(res.Render(), "Pconst fraction") {
		t.Error("render missing x label")
	}
}

func TestPsiSweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	res, err := PsiSweep(smallSweep([]float64{25, 50, 100}))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.ThreeStage.Mean <= 0 {
			t.Errorf("ψ=%g: non-positive reward", p.X)
		}
	}
}

func TestStrategyAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short mode")
	}
	cfg := smallSweep(nil)
	res, err := StrategyAblation(cfg, []assign.Strategy{assign.CoarseToFine, assign.CoordDescent})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reward) != 2 {
		t.Fatalf("got %d strategies", len(res.Reward))
	}
	if !strings.Contains(res.Render(), "coarse-to-fine") {
		t.Error("render missing strategy name")
	}
}

func TestSchedulerValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("validation in -short mode")
	}
	cfg := smallSweep(nil)
	res, err := SchedulerValidation(cfg, 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.RatePct.Mean < 50 || res.RatePct.Mean > 130 {
		t.Errorf("realized/predicted = %.1f%%, expected near 100%%", res.RatePct.Mean)
	}
	if !strings.Contains(res.Render(), "Realized / predicted") {
		t.Error("render incomplete")
	}
}

func TestFigure6WithSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated fig6 in -short mode")
	}
	cfg := reducedFig6()
	cfg.Trials = 1
	cfg.Groups = []Fig6Group{{StaticShare: 0.3, Vprop: 0.1}}
	cfg.SimHorizon = 20
	res, err := Figure6(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Groups[0].Trials[0]
	if tr.RealizedBaseline <= 0 || tr.RealizedThreeStage <= 0 {
		t.Fatalf("realized rates not populated: %+v", tr)
	}
	out := res.Render()
	if !strings.Contains(out, "admitted") || !strings.Contains(out, "completed-in-window") {
		t.Error("render missing simulation rows")
	}
}
