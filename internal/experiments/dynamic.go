package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"thermaldc/internal/assign"
	"thermaldc/internal/model"
	"thermaldc/internal/scenario"
	"thermaldc/internal/sched"
	"thermaldc/internal/stats"
	"thermaldc/internal/thermal"
	"thermaldc/internal/workload"
)

// DynamicConfig controls the epoch-reassignment extension experiment. The
// paper fixes P-states and desired rates once ("once a P-state of a core
// is assigned, we assume that it is not changed") and assumes constant
// arrival rates; here the rates drift sinusoidally and the first-step
// assignment optionally re-runs every epoch with the current rates.
type DynamicConfig struct {
	// NCracs/NNodes/StaticShare/Vprop/Seed: scenario knobs.
	NCracs, NNodes int
	StaticShare    float64
	Vprop          float64
	Seed           int64
	// Horizon is the simulated arrival window (s).
	Horizon float64
	// Epoch is the reassignment interval (s).
	Epoch float64
	// Amplitude ∈ [0, 1) modulates each λ_i by 1 + Amplitude·sin(2πt/Period + φ_i),
	// with phases spread across task types so the mix shifts over time.
	Amplitude float64
	// Period of the modulation (s).
	Period float64
	// Options for the first-step assignment at each (re)assignment.
	Options assign.Options
}

// DefaultDynamicConfig returns a reduced-scale drift experiment.
func DefaultDynamicConfig(seed int64) DynamicConfig {
	return DynamicConfig{
		NCracs:      2,
		NNodes:      20,
		StaticShare: 0.3,
		Vprop:       0.3,
		Seed:        seed,
		Horizon:     120,
		Epoch:       30,
		Amplitude:   0.8,
		Period:      120,
		Options:     assign.DefaultOptions(),
	}
}

// DynamicResult compares the static first-step assignment against epoch
// reassignment on the same drifting task stream.
type DynamicResult struct {
	Config DynamicConfig
	// Tasks is the stream length.
	Tasks int
	// Static*/Adaptive*: realized reward rates and drop counts.
	StaticReward    float64
	AdaptiveReward  float64
	StaticDropped   int
	AdaptiveDropped int
	// Reassignments counts first-step re-solves in the adaptive run.
	Reassignments int
	// GainPct = 100·(Adaptive − Static)/Static.
	GainPct float64
	// MinTransientSlack is the smallest redline slack (°C) observed while
	// simulating the first-order temperature dynamics across the adaptive
	// run's epoch switches (τ = 90 s). Non-negative confirms the
	// no-overshoot property: switching between redline-feasible operating
	// points never violates the redlines transiently.
	MinTransientSlack float64
}

// instantRate returns λ_i at time t.
func instantRate(base float64, i, t1 int, cfg *DynamicConfig, t float64) float64 {
	phase := 2 * math.Pi * float64(i) / float64(t1)
	return base * (1 + cfg.Amplitude*math.Sin(2*math.Pi*t/cfg.Period+phase))
}

// meanRateOver integrates λ_i over [a, b] / (b−a) analytically.
func meanRateOver(base float64, i, t1 int, cfg *DynamicConfig, a, b float64) float64 {
	phase := 2 * math.Pi * float64(i) / float64(t1)
	w := 2 * math.Pi / cfg.Period
	// ∫ (1 + A sin(wt+φ)) dt = (b−a) − A/w·(cos(wb+φ) − cos(wa+φ))
	integral := (b - a) - cfg.Amplitude/w*(math.Cos(w*b+phase)-math.Cos(w*a+phase))
	return base * integral / (b - a)
}

// generateDriftingTasks draws a non-homogeneous Poisson stream per type by
// thinning against the peak rate.
func generateDriftingTasks(dc *model.DataCenter, cfg *DynamicConfig, rng interface {
	Float64() float64
	ExpFloat64() float64
}) []workload.Task {
	var tasks []workload.Task
	t1 := dc.T()
	for i, tt := range dc.TaskTypes {
		peak := tt.ArrivalRate * (1 + cfg.Amplitude)
		if peak <= 0 {
			continue
		}
		for t := rng.ExpFloat64() / peak; t < cfg.Horizon; t += rng.ExpFloat64() / peak {
			if rng.Float64()*peak <= instantRate(tt.ArrivalRate, i, t1, cfg, t) {
				tasks = append(tasks, workload.Task{Type: i, Arrival: t, Deadline: t + tt.RelDeadline})
			}
		}
	}
	sort.Slice(tasks, func(a, b int) bool { return tasks[a].Arrival < tasks[b].Arrival })
	for i := range tasks {
		tasks[i].ID = i
	}
	return tasks
}

// DynamicReassignment runs the drift experiment.
func DynamicReassignment(cfg DynamicConfig) (*DynamicResult, error) {
	return DynamicReassignmentContext(context.Background(), cfg)
}

// DynamicReassignmentContext is DynamicReassignment under a cancelable
// context: canceling ctx stops between epochs.
func DynamicReassignmentContext(ctx context.Context, cfg DynamicConfig) (*DynamicResult, error) {
	if cfg.Epoch <= 0 || cfg.Horizon <= 0 || cfg.Period <= 0 {
		return nil, fmt.Errorf("experiments: horizon, epoch and period must be positive")
	}
	scCfg := scenario.Default(cfg.StaticShare, cfg.Vprop, cfg.Seed)
	scCfg.NCracs, scCfg.NNodes = cfg.NCracs, cfg.NNodes
	sc, err := scenario.Build(scCfg)
	if err != nil {
		return nil, err
	}
	rng := stats.NewRand(cfg.Seed + 424242)
	tasks := generateDriftingTasks(sc.DC, &cfg, rng)

	res := &DynamicResult{Config: cfg, Tasks: len(tasks)}

	// Static run: one assignment from the long-run average rates (the base
	// λ_i, since the sinusoid averages out).
	static, err := assign.ThreeStage(sc.DC, sc.Thermal, cfg.Options)
	if err != nil {
		return nil, err
	}
	reward, dropped, err := replay(sc.DC, static.PStates, static.Stage3.TC, tasks, 0, cfg.Horizon, nil)
	if err != nil {
		return nil, err
	}
	res.StaticReward = reward / cfg.Horizon
	res.StaticDropped = dropped

	// Adaptive run: re-solve the first step each epoch with that epoch's
	// mean rates; core busy state persists across epochs. A transient
	// thermal simulation runs alongside to confirm the epoch switches are
	// thermally safe.
	freeAt := make([]float64, sc.DC.NumCores())
	totalReward := 0.0
	totalDropped := 0
	baseRates := make([]float64, sc.DC.T())
	for i, tt := range sc.DC.TaskTypes {
		baseRates[i] = tt.ArrivalRate
	}
	const tau = 90.0
	var trans *thermal.Transient
	res.MinTransientSlack = math.Inf(1)
	for start := 0.0; start < cfg.Horizon; start += cfg.Epoch {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		end := math.Min(start+cfg.Epoch, cfg.Horizon)
		for i := range sc.DC.TaskTypes {
			sc.DC.TaskTypes[i].ArrivalRate = meanRateOver(baseRates[i], i, sc.DC.T(), &cfg, start, end)
		}
		epochAssign, err := assign.ThreeStage(sc.DC, sc.Thermal, cfg.Options)
		if err != nil {
			return nil, err
		}
		res.Reassignments++
		// Thermal transient: step toward this epoch's operating point in
		// 5 s increments, tracking the minimum redline slack.
		pcn := assign.NodePowersFromPStates(sc.DC, epochAssign.PStates)
		if trans == nil {
			trans, err = thermal.NewTransient(sc.Thermal, tau, epochAssign.Stage1.CracOut, pcn)
			if err != nil {
				return nil, err
			}
		}
		for t := 0.0; t < end-start; t += 5 {
			trans.Step(5, epochAssign.Stage1.CracOut, pcn)
			if slack := trans.RedlineSlack(); slack < res.MinTransientSlack {
				res.MinTransientSlack = slack
			}
		}
		var epochTasks []workload.Task
		for _, t := range tasks {
			if t.Arrival >= start && t.Arrival < end {
				epochTasks = append(epochTasks, t)
			}
		}
		reward, dropped, err := replay(sc.DC, epochAssign.PStates, epochAssign.Stage3.TC, epochTasks, start, end, freeAt)
		if err != nil {
			return nil, err
		}
		totalReward += reward
		totalDropped += dropped
	}
	// Restore the scenario's rates.
	for i := range sc.DC.TaskTypes {
		sc.DC.TaskTypes[i].ArrivalRate = baseRates[i]
	}
	res.AdaptiveReward = totalReward / cfg.Horizon
	res.AdaptiveDropped = totalDropped
	res.GainPct = 100 * (res.AdaptiveReward - res.StaticReward) / res.StaticReward
	return res, nil
}

// replay streams tasks through a fresh scheduler; freeAt (when non-nil)
// carries core busy state across calls. The scheduler's ATC clock starts
// at epochStart so ratios reflect the current epoch only.
func replay(dc *model.DataCenter, pstates []int, tc [][]float64, tasks []workload.Task, epochStart, epochEnd float64, freeAt []float64) (reward float64, dropped int, err error) {
	s, err := sched.New(dc, pstates, tc)
	if err != nil {
		return 0, 0, err
	}
	s.SetStartTime(epochStart) // ATC rates measured within this epoch
	if freeAt == nil {
		freeAt = make([]float64, dc.NumCores())
	}
	for _, task := range tasks {
		core, completion, ok := s.ScheduleWith(sched.PaperPolicy{}, task, task.Arrival, freeAt)
		if !ok {
			dropped++
			continue
		}
		freeAt[core] = completion
		reward += dc.TaskTypes[task.Type].Reward
	}
	_ = epochEnd
	return reward, dropped, nil
}

// Render prints the comparison.
func (r *DynamicResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Epoch-reassignment extension (%d nodes, %d CRACs, %d tasks)\n",
		r.Config.NNodes, r.Config.NCracs, r.Tasks)
	fmt.Fprintf(&b, "arrival drift: ±%.0f%% over a %.0f s period; epoch %.0f s\n\n",
		100*r.Config.Amplitude, r.Config.Period, r.Config.Epoch)
	fmt.Fprintf(&b, "static assignment   : reward %.1f/s, dropped %d\n", r.StaticReward, r.StaticDropped)
	fmt.Fprintf(&b, "epoch reassignment  : reward %.1f/s, dropped %d (%d re-solves)\n",
		r.AdaptiveReward, r.AdaptiveDropped, r.Reassignments)
	fmt.Fprintf(&b, "gain                : %+.2f%%\n", r.GainPct)
	fmt.Fprintf(&b, "min transient slack : %.2f °C (no-overshoot check, τ = 90 s)\n", r.MinTransientSlack)
	return b.String()
}
