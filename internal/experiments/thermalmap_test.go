package experiments

import (
	"strings"
	"testing"

	"thermaldc/internal/assign"
	"thermaldc/internal/scenario"
)

func TestThermalMap(t *testing.T) {
	cfg := scenario.Default(0.3, 0.1, 5)
	cfg.NCracs = 2
	cfg.NNodes = 10
	res, err := ThermalMap(cfg, assign.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NodeInlet) != 10 || len(res.CRACInlet) != 2 {
		t.Fatalf("inlet vectors: %d nodes, %d CRACs", len(res.NodeInlet), len(res.CRACInlet))
	}
	for j, temp := range res.NodeInlet {
		if temp > res.RedlineNode+1e-6 {
			t.Errorf("node %d inlet %g exceeds redline", j, temp)
		}
		if temp < 0 {
			t.Errorf("node %d inlet %g negative", j, temp)
		}
	}
	// Histogram totals must equal the core count.
	total := 0
	for _, hist := range res.PStateHistogram {
		for _, c := range hist {
			total += c
		}
	}
	if total != 320 {
		t.Errorf("histogram covers %d cores, want 320", total)
	}
	if res.ComputePower+res.CRACPower > res.Pconst+1e-6 {
		t.Errorf("power ledger %g exceeds Pconst %g", res.ComputePower+res.CRACPower, res.Pconst)
	}
	if res.PowerShadowPrice <= 0 {
		t.Error("oversubscribed scenario should have a positive shadow price")
	}
	out := res.Render()
	for _, want := range []string{"Thermal map", "slot 4", "P-state histogram", "shadow price"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestShadeMonotone(t *testing.T) {
	order := []byte{'.', '-', '+', '#', '!'}
	idx := func(b byte) int {
		for i, o := range order {
			if o == b {
				return i
			}
		}
		return -1
	}
	prev := -1
	for _, frac := range []float64{0.1, 0.65, 0.8, 0.95, 1.0} {
		g := idx(shade(frac*25, 25))
		if g < prev {
			t.Fatalf("shade not monotone at %g", frac)
		}
		prev = g
	}
}
