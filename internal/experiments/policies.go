package experiments

import (
	"context"
	"fmt"
	"strings"

	"thermaldc/internal/assign"
	"thermaldc/internal/scenario"
	"thermaldc/internal/sched"
	"thermaldc/internal/sim"
	"thermaldc/internal/stats"
	"thermaldc/internal/workload"
)

// PolicyAblationResult compares second-step scheduling policies on
// identical task streams and first-step assignments: how much of the
// realized reward depends on honoring the Stage-3 desired rates versus
// naive feasible-core choices.
type PolicyAblationResult struct {
	Config  SweepConfig
	Horizon float64
	Names   []string
	// Reward[p] and DropPct[p] summarize each policy across trials.
	Reward  []stats.Summary
	DropPct []stats.Summary
	// Predicted summarizes the Stage-3 prediction for reference.
	Predicted stats.Summary
}

// PolicyAblation runs each policy over the same streams. cfg.Values is
// ignored.
func PolicyAblation(cfg SweepConfig, horizon float64) (*PolicyAblationResult, error) {
	return PolicyAblationContext(context.Background(), cfg, horizon)
}

// PolicyAblationContext is PolicyAblation under a cancelable context.
func PolicyAblationContext(ctx context.Context, cfg SweepConfig, horizon float64) (*PolicyAblationResult, error) {
	if cfg.Trials <= 0 || horizon <= 0 {
		return nil, fmt.Errorf("experiments: need positive Trials and horizon")
	}
	mkPolicies := func(seed int64) []sched.Policy {
		return []sched.Policy{
			sched.PaperPolicy{},
			sched.SoftRatioPolicy{},
			sched.MinCompletionPolicy{},
			&sched.RandomPolicy{Rng: stats.NewRand(seed + 900000)},
			&sched.RoundRobinPolicy{},
		}
	}
	names := []string{}
	for _, p := range mkPolicies(0) {
		names = append(names, p.Name())
	}
	rewards := make([][]float64, len(names))
	drops := make([][]float64, len(names))
	var predicted []float64
	for t := 0; t < cfg.Trials; t++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		seed := cfg.BaseSeed + int64(t)
		scCfg := scenario.Default(cfg.StaticShare, cfg.Vprop, seed)
		scCfg.NCracs, scCfg.NNodes = cfg.NCracs, cfg.NNodes
		sc, err := scenario.Build(scCfg)
		if err != nil {
			return nil, err
		}
		ts, err := assign.ThreeStage(sc.DC, sc.Thermal, cfg.Options)
		if err != nil {
			return nil, err
		}
		predicted = append(predicted, ts.RewardRate())
		tasks := workload.GenerateTasks(sc.DC, horizon, stats.NewRand(seed+700000))
		for p, policy := range mkPolicies(seed) {
			out, err := sim.RunPolicy(sc.DC, ts.PStates, ts.Stage3.TC, tasks, horizon, policy)
			if err != nil {
				return nil, fmt.Errorf("policy %s: %w", policy.Name(), err)
			}
			rewards[p] = append(rewards[p], out.WindowRewardRate)
			drops[p] = append(drops[p], 100*float64(out.Dropped)/float64(len(tasks)))
		}
	}
	res := &PolicyAblationResult{Config: cfg, Horizon: horizon, Names: names, Predicted: stats.Summarize(predicted)}
	for p := range names {
		res.Reward = append(res.Reward, stats.Summarize(rewards[p]))
		res.DropPct = append(res.DropPct, stats.Summarize(drops[p]))
	}
	return res, nil
}

// Render prints the policy comparison.
func (r *PolicyAblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Second-step policy ablation (%d trials, %d nodes, %d CRACs, %.0f s horizon)\n",
		r.Config.Trials, r.Config.NNodes, r.Config.NCracs, r.Horizon)
	fmt.Fprintf(&b, "Stage-3 predicted reward rate: %s\n\n", r.Predicted)
	fmt.Fprintf(&b, "%-18s %-24s %-18s\n", "policy", "realized reward", "dropped %")
	for p, name := range r.Names {
		fmt.Fprintf(&b, "%-18s %10.2f ± %-10.2f %8.1f ± %-8.1f\n",
			name, r.Reward[p].Mean, r.Reward[p].HalfCI95, r.DropPct[p].Mean, r.DropPct[p].HalfCI95)
	}
	return b.String()
}
