package experiments

import (
	"context"
	"fmt"
	"strings"

	"thermaldc/internal/assign"
	"thermaldc/internal/scenario"
	"thermaldc/internal/sched"
	"thermaldc/internal/sim"
	"thermaldc/internal/stats"
	"thermaldc/internal/workload"
)

// BurstinessResult measures how arrival burstiness degrades the
// second-step scheduler relative to the Stage-3 steady-state prediction,
// for both the paper's policy and our soft variant.
type BurstinessResult struct {
	Config  SweepConfig
	Horizon float64
	// Bursts lists the swept burst factors (Config.Values).
	Bursts []float64
	// PaperRatePct[b] / SoftRatePct[b]: realized/predicted reward (%).
	PaperRatePct []stats.Summary
	SoftRatePct  []stats.Summary
	// PaperDropPct[b] / SoftDropPct[b]: dropped-task percentages.
	PaperDropPct []stats.Summary
	SoftDropPct  []stats.Summary
}

// BurstinessSweep sweeps the MMPP burst factor (cfg.Values; 0 = plain
// Poisson) and simulates both scheduling policies on identical streams.
func BurstinessSweep(cfg SweepConfig, horizon float64) (*BurstinessResult, error) {
	return BurstinessSweepContext(context.Background(), cfg, horizon)
}

// BurstinessSweepContext is BurstinessSweep under a cancelable context.
func BurstinessSweepContext(ctx context.Context, cfg SweepConfig, horizon float64) (*BurstinessResult, error) {
	if cfg.Trials <= 0 || len(cfg.Values) == 0 || horizon <= 0 {
		return nil, fmt.Errorf("experiments: burstiness sweep needs Trials, Values and a horizon")
	}
	res := &BurstinessResult{Config: cfg, Horizon: horizon, Bursts: cfg.Values}
	paperRate := make([][]float64, len(cfg.Values))
	softRate := make([][]float64, len(cfg.Values))
	paperDrop := make([][]float64, len(cfg.Values))
	softDrop := make([][]float64, len(cfg.Values))
	for t := 0; t < cfg.Trials; t++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		seed := cfg.BaseSeed + int64(t)
		scCfg := scenario.Default(cfg.StaticShare, cfg.Vprop, seed)
		scCfg.NCracs, scCfg.NNodes = cfg.NCracs, cfg.NNodes
		sc, err := scenario.Build(scCfg)
		if err != nil {
			return nil, err
		}
		ts, err := assign.ThreeStage(sc.DC, sc.Thermal, cfg.Options)
		if err != nil {
			return nil, err
		}
		pred := ts.RewardRate()
		for b, burst := range cfg.Values {
			var tasks []workload.Task
			rng := stats.NewRand(seed + int64(b)*131 + 600000)
			if burst <= 0 {
				tasks = workload.GenerateTasks(sc.DC, horizon, rng)
			} else {
				tasks, err = workload.GenerateBurstyTasks(sc.DC, horizon, workload.BurstConfig{
					Burst:            burst,
					HighFraction:     0.25,
					MeanHighDuration: horizon / 10,
				}, rng)
				if err != nil {
					return nil, err
				}
			}
			for _, policy := range []sched.Policy{sched.PaperPolicy{}, sched.SoftRatioPolicy{}} {
				out, err := sim.RunPolicy(sc.DC, ts.PStates, ts.Stage3.TC, tasks, horizon, policy)
				if err != nil {
					return nil, err
				}
				rate := 100 * out.WindowRewardRate / pred
				drop := 100 * float64(out.Dropped) / float64(len(tasks))
				if policy.Name() == "paper-min-ratio" {
					paperRate[b] = append(paperRate[b], rate)
					paperDrop[b] = append(paperDrop[b], drop)
				} else {
					softRate[b] = append(softRate[b], rate)
					softDrop[b] = append(softDrop[b], drop)
				}
			}
		}
	}
	for b := range cfg.Values {
		res.PaperRatePct = append(res.PaperRatePct, stats.Summarize(paperRate[b]))
		res.SoftRatePct = append(res.SoftRatePct, stats.Summarize(softRate[b]))
		res.PaperDropPct = append(res.PaperDropPct, stats.Summarize(paperDrop[b]))
		res.SoftDropPct = append(res.SoftDropPct, stats.Summarize(softDrop[b]))
	}
	return res, nil
}

// Render prints the burstiness table.
func (r *BurstinessResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Arrival-burstiness sweep (%d trials, %d nodes, %d CRACs, %.0f s)\n",
		r.Config.Trials, r.Config.NNodes, r.Config.NCracs, r.Horizon)
	fmt.Fprintf(&b, "realized/predicted reward %% and drop %% per policy\n\n")
	fmt.Fprintf(&b, "%-8s %-22s %-22s %-18s %-18s\n", "burst", "paper rate %", "soft rate %", "paper drop %", "soft drop %")
	for i, burst := range r.Bursts {
		fmt.Fprintf(&b, "%-8.2f %8.1f ± %-10.1f %8.1f ± %-10.1f %6.1f ± %-8.1f %6.1f ± %-8.1f\n",
			burst,
			r.PaperRatePct[i].Mean, r.PaperRatePct[i].HalfCI95,
			r.SoftRatePct[i].Mean, r.SoftRatePct[i].HalfCI95,
			r.PaperDropPct[i].Mean, r.PaperDropPct[i].HalfCI95,
			r.SoftDropPct[i].Mean, r.SoftDropPct[i].HalfCI95)
	}
	return b.String()
}
