package experiments

import (
	"fmt"
	"sort"
	"strings"

	"thermaldc/internal/assign"
	"thermaldc/internal/scenario"
)

// ThermalMapResult is a diagnostic snapshot of the data center after the
// three-stage assignment: per-node inlet temperatures, P-state histogram
// and the power ledger.
type ThermalMapResult struct {
	CracOut []float64
	// NodeInlet[j] and CRACInlet[i] are the inlet temperatures.
	NodeInlet []float64
	CRACInlet []float64
	// RedlineNode echoes the constraint for rendering.
	RedlineNode float64
	// PStateHistogram[nodeType][pstate] counts cores.
	PStateHistogram map[string][]int
	// ComputePower, CRACPower, Pconst in kW.
	ComputePower, CRACPower, Pconst float64
	// RewardRate and PowerShadowPrice summarize the assignment.
	RewardRate       float64
	PowerShadowPrice float64
	// racks[rack] lists (slot, inlet °C) for rendering.
	racks map[int][]rackSlot
}

type rackSlot struct {
	slot  int
	inlet float64
}

// ThermalMap runs the three-stage assignment on a freshly built scenario
// and captures the resulting thermal and power state.
func ThermalMap(scCfg scenario.Config, opts assign.Options) (*ThermalMapResult, error) {
	sc, err := scenario.Build(scCfg)
	if err != nil {
		return nil, err
	}
	res, err := assign.ThreeStage(sc.DC, sc.Thermal, opts)
	if err != nil {
		return nil, err
	}
	pcn := assign.NodePowersFromPStates(sc.DC, res.PStates)
	tin := sc.Thermal.InletTemps(res.Stage1.CracOut, pcn)

	out := &ThermalMapResult{
		CracOut:          res.Stage1.CracOut,
		NodeInlet:        tin[sc.DC.NCRAC():],
		CRACInlet:        tin[:sc.DC.NCRAC()],
		RedlineNode:      sc.DC.RedlineNode,
		PStateHistogram:  map[string][]int{},
		Pconst:           sc.DC.Pconst,
		RewardRate:       res.RewardRate(),
		PowerShadowPrice: res.Stage1.PowerShadowPrice,
		racks:            map[int][]rackSlot{},
	}
	for _, p := range pcn {
		out.ComputePower += p
	}
	for _, cp := range sc.Thermal.CRACPowers(res.Stage1.CracOut, pcn) {
		out.CRACPower += cp
	}
	for j, node := range sc.DC.Nodes {
		nt := sc.DC.NodeType(j)
		hist, ok := out.PStateHistogram[nt.Name]
		if !ok {
			hist = make([]int, nt.NumPStates()+1)
		}
		lo, hi := sc.DC.CoreRange(j)
		for k := lo; k < hi; k++ {
			hist[res.PStates[k]]++
		}
		out.PStateHistogram[nt.Name] = hist
		out.racks[node.Rack] = append(out.racks[node.Rack], rackSlot{node.Slot, out.NodeInlet[j]})
	}
	return out, nil
}

// shade maps an inlet temperature to a glyph relative to the redline.
func shade(inlet, redline float64) byte {
	frac := inlet / redline
	switch {
	case frac < 0.6:
		return '.'
	case frac < 0.75:
		return '-'
	case frac < 0.9:
		return '+'
	case frac < 0.99:
		return '#'
	default:
		return '!'
	}
}

// Render draws the rack-by-slot inlet-temperature map plus the P-state
// histogram and power ledger.
func (r *ThermalMapResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Thermal map after three-stage assignment\n")
	fmt.Fprintf(&b, "CRAC outlets %v °C, CRAC inlets ", r.CracOut)
	for i, t := range r.CRACInlet {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%.1f", t)
	}
	fmt.Fprintf(&b, " °C\n")
	fmt.Fprintf(&b, "power: compute %.1f + CRAC %.1f = %.1f / %.1f kW; reward %.1f/s; shadow price %.2f reward/kW\n\n",
		r.ComputePower, r.CRACPower, r.ComputePower+r.CRACPower, r.Pconst, r.RewardRate, r.PowerShadowPrice)

	fmt.Fprintf(&b, "node inlet temperature by rack (redline %.0f °C): . <60%%  - <75%%  + <90%%  # <99%%  ! at redline\n\n", r.RedlineNode)
	var rackIDs []int
	maxSlot := 0
	for rk, slots := range r.racks {
		rackIDs = append(rackIDs, rk)
		for _, s := range slots {
			if s.slot > maxSlot {
				maxSlot = s.slot
			}
		}
	}
	sort.Ints(rackIDs)
	for slot := maxSlot; slot >= 0; slot-- {
		fmt.Fprintf(&b, "slot %d  ", slot)
		for _, rk := range rackIDs {
			glyph := byte(' ')
			for _, s := range r.racks[rk] {
				if s.slot == slot {
					glyph = shade(s.inlet, r.RedlineNode)
				}
			}
			b.WriteByte(glyph)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "        %s\n\n", strings.Repeat("^", len(rackIDs)))

	fmt.Fprintf(&b, "P-state histogram (cores):\n")
	var names []string
	for name := range r.PStateHistogram {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		hist := r.PStateHistogram[name]
		fmt.Fprintf(&b, "  %-26s", name)
		for k, c := range hist {
			label := fmt.Sprintf("P%d", k)
			if k == len(hist)-1 {
				label = "off"
			}
			fmt.Fprintf(&b, " %s:%-5d", label, c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
