package experiments

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"thermaldc/internal/assign"
	"thermaldc/internal/scenario"
	"thermaldc/internal/sim"
	"thermaldc/internal/stats"
	"thermaldc/internal/workload"
)

// SweepConfig controls the extension sweeps.
type SweepConfig struct {
	// Trials per sweep point.
	Trials int
	// NCracs and NNodes size each data center.
	NCracs, NNodes int
	// BaseSeed: trial t of point p uses BaseSeed + 1000·p + t.
	BaseSeed int64
	// StaticShare and Vprop fix the non-swept knobs.
	StaticShare, Vprop float64
	// Options for both techniques (ψ applies to the three-stage side).
	Options assign.Options
	// Parallelism caps concurrent trials (0 = GOMAXPROCS).
	Parallelism int
	// Values are the swept x-coordinates.
	Values []float64
}

// DefaultSweepConfig returns a reduced-scale sweep setup (fast enough for
// interactive use; raise NNodes/Trials for paper fidelity).
func DefaultSweepConfig(values []float64) SweepConfig {
	return SweepConfig{
		Trials:      5,
		NCracs:      2,
		NNodes:      30,
		BaseSeed:    1,
		StaticShare: 0.3,
		Vprop:       0.3,
		Options:     assign.DefaultOptions(),
		Values:      values,
	}
}

// SweepPoint is one x-coordinate of a sweep.
type SweepPoint struct {
	X float64
	// Baseline and ThreeStage summarize absolute reward rates;
	// Improvement summarizes the per-trial percentage gain.
	Baseline    stats.Summary
	ThreeStage  stats.Summary
	Improvement stats.Summary
}

// SweepResult is a full sweep.
type SweepResult struct {
	Kind, XLabel string
	Config       SweepConfig
	Points       []SweepPoint
}

// trialEval runs both techniques on one scenario and returns their reward
// rates.
type trialEval func(x float64, seed int64) (baseline, threeStage float64, err error)

// runSweep evaluates all (value, trial) cells on a worker pool. Canceling
// ctx abandons unstarted cells and returns the context's error.
func runSweep(ctx context.Context, kind, xlabel string, cfg SweepConfig, eval trialEval) (*SweepResult, error) {
	if cfg.Trials <= 0 || len(cfg.Values) == 0 {
		return nil, fmt.Errorf("experiments: sweep needs positive Trials and at least one value")
	}
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type cell struct {
		point, trial int
		bl, ts       float64
		err          error
	}
	jobs := make(chan [2]int)
	results := make(chan cell)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if err := ctx.Err(); err != nil {
					results <- cell{point: j[0], trial: j[1], err: err}
					continue
				}
				seed := cfg.BaseSeed + int64(1000*j[0]+j[1])
				bl, ts, err := eval(cfg.Values[j[0]], seed)
				results <- cell{point: j[0], trial: j[1], bl: bl, ts: ts, err: err}
			}
		}()
	}
	go func() {
		for p := range cfg.Values {
			for t := 0; t < cfg.Trials; t++ {
				jobs <- [2]int{p, t}
			}
		}
		close(jobs)
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	bl := make([][]float64, len(cfg.Values))
	ts := make([][]float64, len(cfg.Values))
	imp := make([][]float64, len(cfg.Values))
	var firstErr error
	for c := range results {
		if c.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s=%g trial %d: %w", xlabel, cfg.Values[c.point], c.trial, c.err)
			}
			continue
		}
		bl[c.point] = append(bl[c.point], c.bl)
		ts[c.point] = append(ts[c.point], c.ts)
		imp[c.point] = append(imp[c.point], 100*(c.ts-c.bl)/c.bl)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	out := &SweepResult{Kind: kind, XLabel: xlabel, Config: cfg}
	for p, x := range cfg.Values {
		out.Points = append(out.Points, SweepPoint{
			X:           x,
			Baseline:    stats.Summarize(bl[p]),
			ThreeStage:  stats.Summarize(ts[p]),
			Improvement: stats.Summarize(imp[p]),
		})
	}
	return out, nil
}

// bothTechniques builds the scenario and runs baseline + three-stage once.
func bothTechniques(sc *scenario.Scenario, opts assign.Options) (bl, ts float64, err error) {
	b, err := assign.Baseline(sc.DC, sc.Thermal, opts)
	if err != nil {
		return 0, 0, err
	}
	t, err := assign.ThreeStage(sc.DC, sc.Thermal, opts)
	if err != nil {
		return 0, 0, err
	}
	return b.RewardRate, t.RewardRate(), nil
}

// PowerCapSweep varies where Pconst sits between Pmin and Pmax
// (Equation 18 uses 0.5). The three-stage advantage should be largest in
// the heavily constrained regime and vanish as the cap approaches Pmax.
func PowerCapSweep(cfg SweepConfig) (*SweepResult, error) {
	return PowerCapSweepContext(context.Background(), cfg)
}

// PowerCapSweepContext is PowerCapSweep under a cancelable context.
func PowerCapSweepContext(ctx context.Context, cfg SweepConfig) (*SweepResult, error) {
	return runSweep(ctx, "power-cap", "Pconst fraction", cfg, func(x float64, seed int64) (float64, float64, error) {
		scCfg := scenario.Default(cfg.StaticShare, cfg.Vprop, seed)
		scCfg.NCracs, scCfg.NNodes = cfg.NCracs, cfg.NNodes
		scCfg.PconstFraction = x
		sc, err := scenario.Build(scCfg)
		if err != nil {
			return 0, 0, err
		}
		return bothTechniques(sc, cfg.Options)
	})
}

// PsiSweep varies ψ, re-solving only the three-stage side per value.
func PsiSweep(cfg SweepConfig) (*SweepResult, error) {
	return PsiSweepContext(context.Background(), cfg)
}

// PsiSweepContext is PsiSweep under a cancelable context.
func PsiSweepContext(ctx context.Context, cfg SweepConfig) (*SweepResult, error) {
	return runSweep(ctx, "psi", "ψ (%)", cfg, func(x float64, seed int64) (float64, float64, error) {
		scCfg := scenario.Default(cfg.StaticShare, cfg.Vprop, seed)
		scCfg.NCracs, scCfg.NNodes = cfg.NCracs, cfg.NNodes
		sc, err := scenario.Build(scCfg)
		if err != nil {
			return 0, 0, err
		}
		opts := cfg.Options
		opts.Psi = x
		return bothTechniques(sc, opts)
	})
}

// VpropSweep varies the ECS frequency-proportionality variation factor.
func VpropSweep(cfg SweepConfig) (*SweepResult, error) {
	return VpropSweepContext(context.Background(), cfg)
}

// VpropSweepContext is VpropSweep under a cancelable context.
func VpropSweepContext(ctx context.Context, cfg SweepConfig) (*SweepResult, error) {
	return runSweep(ctx, "vprop", "Vprop", cfg, func(x float64, seed int64) (float64, float64, error) {
		scCfg := scenario.Default(cfg.StaticShare, x, seed)
		scCfg.NCracs, scCfg.NNodes = cfg.NCracs, cfg.NNodes
		sc, err := scenario.Build(scCfg)
		if err != nil {
			return 0, 0, err
		}
		return bothTechniques(sc, cfg.Options)
	})
}

// HeterogeneitySweep varies the node-type mix from all-NEC (x = 0) to
// all-HP (x = 1). With a homogeneous fleet the task-machine affinity the
// title's "heterogeneous" refers to disappears on the node axis, leaving
// only P-state affinity; the sweep separates the two effects.
func HeterogeneitySweep(cfg SweepConfig) (*SweepResult, error) {
	return HeterogeneitySweepContext(context.Background(), cfg)
}

// HeterogeneitySweepContext is HeterogeneitySweep under a cancelable context.
func HeterogeneitySweepContext(ctx context.Context, cfg SweepConfig) (*SweepResult, error) {
	return runSweep(ctx, "heterogeneity", "type-1 fraction", cfg, func(x float64, seed int64) (float64, float64, error) {
		scCfg := scenario.Default(cfg.StaticShare, cfg.Vprop, seed)
		scCfg.NCracs, scCfg.NNodes = cfg.NCracs, cfg.NNodes
		scCfg.Type1Fraction = x
		sc, err := scenario.Build(scCfg)
		if err != nil {
			return 0, 0, err
		}
		return bothTechniques(sc, cfg.Options)
	})
}

// StaticShareSweep varies the static fraction of P-state-0 core power.
func StaticShareSweep(cfg SweepConfig) (*SweepResult, error) {
	return StaticShareSweepContext(context.Background(), cfg)
}

// StaticShareSweepContext is StaticShareSweep under a cancelable context.
func StaticShareSweepContext(ctx context.Context, cfg SweepConfig) (*SweepResult, error) {
	return runSweep(ctx, "static-share", "static share", cfg, func(x float64, seed int64) (float64, float64, error) {
		scCfg := scenario.Default(x, cfg.Vprop, seed)
		scCfg.NCracs, scCfg.NNodes = cfg.NCracs, cfg.NNodes
		sc, err := scenario.Build(scCfg)
		if err != nil {
			return 0, 0, err
		}
		return bothTechniques(sc, cfg.Options)
	})
}

// Render prints a sweep as an aligned table.
func (r *SweepResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sweep: %s (%d trials/point, %d nodes, %d CRACs)\n\n",
		r.Kind, r.Config.Trials, r.Config.NNodes, r.Config.NCracs)
	fmt.Fprintf(&b, "%-16s %-24s %-24s %-20s\n", r.XLabel, "baseline reward", "three-stage reward", "improvement %")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-16.3g %10.2f ± %-10.2f %10.2f ± %-10.2f %8.2f ± %-8.2f\n",
			p.X, p.Baseline.Mean, p.Baseline.HalfCI95,
			p.ThreeStage.Mean, p.ThreeStage.HalfCI95,
			p.Improvement.Mean, p.Improvement.HalfCI95)
	}
	return b.String()
}

// StrategyAblationResult compares temperature-search strategies.
type StrategyAblationResult struct {
	Config     SweepConfig
	Strategies []assign.Strategy
	// Reward[s] and Evals[s] summarize each strategy across trials.
	Reward []stats.Summary
	Evals  []stats.Summary
}

// StrategyAblation runs the three-stage technique under each search
// strategy on identical scenarios, comparing reward and LP-solve counts.
// cfg.Values is ignored.
func StrategyAblation(cfg SweepConfig, strategies []assign.Strategy) (*StrategyAblationResult, error) {
	return StrategyAblationContext(context.Background(), cfg, strategies)
}

// StrategyAblationContext is StrategyAblation under a cancelable context.
func StrategyAblationContext(ctx context.Context, cfg SweepConfig, strategies []assign.Strategy) (*StrategyAblationResult, error) {
	if len(strategies) == 0 {
		strategies = []assign.Strategy{assign.CoarseToFine, assign.FullGrid, assign.CoordDescent}
	}
	rewards := make([][]float64, len(strategies))
	evals := make([][]float64, len(strategies))
	for t := 0; t < cfg.Trials; t++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		seed := cfg.BaseSeed + int64(t)
		scCfg := scenario.Default(cfg.StaticShare, cfg.Vprop, seed)
		scCfg.NCracs, scCfg.NNodes = cfg.NCracs, cfg.NNodes
		sc, err := scenario.Build(scCfg)
		if err != nil {
			return nil, err
		}
		for s, strat := range strategies {
			opts := cfg.Options
			opts.Strategy = strat
			res, err := assign.ThreeStage(sc.DC, sc.Thermal, opts)
			if err != nil {
				return nil, fmt.Errorf("strategy %s: %w", strat, err)
			}
			rewards[s] = append(rewards[s], res.RewardRate())
			evals[s] = append(evals[s], float64(res.SearchEvals))
		}
	}
	out := &StrategyAblationResult{Config: cfg, Strategies: strategies}
	for s := range strategies {
		out.Reward = append(out.Reward, stats.Summarize(rewards[s]))
		out.Evals = append(out.Evals, stats.Summarize(evals[s]))
	}
	return out, nil
}

// Render prints the ablation table.
func (r *StrategyAblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Temperature-search strategy ablation (%d trials, %d nodes, %d CRACs)\n\n",
		r.Config.Trials, r.Config.NNodes, r.Config.NCracs)
	fmt.Fprintf(&b, "%-22s %-24s %-18s\n", "strategy", "three-stage reward", "Stage-1 LP solves")
	for s, strat := range r.Strategies {
		fmt.Fprintf(&b, "%-22s %10.2f ± %-10.2f %8.0f ± %-8.0f\n",
			strat, r.Reward[s].Mean, r.Reward[s].HalfCI95, r.Evals[s].Mean, r.Evals[s].HalfCI95)
	}
	return b.String()
}

// SchedulerValidation runs the second-step simulation against the Stage-3
// prediction (Section V.C has no figure; this is the natural check).
type SchedulerValidationResult struct {
	Config SweepConfig
	// RatePct: admitted-reward rate / prediction (boundary-inclusive);
	// WindowRatePct: only tasks completing inside the horizon (a lower
	// bound — long-deadline tasks legitimately finish after it).
	RatePct       stats.Summary
	WindowRatePct stats.Summary
	DropPct       stats.Summary
	RatioErr      stats.Summary
	Predicted     stats.Summary
	Realized      stats.Summary
}

// SchedulerValidation simulates the dynamic scheduler for each trial over
// the given horizon (seconds). cfg.Values is ignored.
func SchedulerValidation(cfg SweepConfig, horizon float64) (*SchedulerValidationResult, error) {
	return SchedulerValidationContext(context.Background(), cfg, horizon)
}

// SchedulerValidationContext is SchedulerValidation under a cancelable
// context.
func SchedulerValidationContext(ctx context.Context, cfg SweepConfig, horizon float64) (*SchedulerValidationResult, error) {
	var ratePct, windowPct, dropPct, ratioErr, pred, real []float64
	for t := 0; t < cfg.Trials; t++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		seed := cfg.BaseSeed + int64(t)
		scCfg := scenario.Default(cfg.StaticShare, cfg.Vprop, seed)
		scCfg.NCracs, scCfg.NNodes = cfg.NCracs, cfg.NNodes
		sc, err := scenario.Build(scCfg)
		if err != nil {
			return nil, err
		}
		ts, err := assign.ThreeStage(sc.DC, sc.Thermal, cfg.Options)
		if err != nil {
			return nil, err
		}
		tasks := workload.GenerateTasks(sc.DC, horizon, stats.NewRand(seed+500000))
		out, err := sim.Run(sc.DC, ts.PStates, ts.Stage3.TC, tasks, horizon)
		if err != nil {
			return nil, err
		}
		pred = append(pred, ts.RewardRate())
		real = append(real, out.RewardRate)
		ratePct = append(ratePct, 100*out.RewardRate/ts.RewardRate())
		windowPct = append(windowPct, 100*out.WindowRewardRate/ts.RewardRate())
		dropPct = append(dropPct, 100*float64(out.Dropped)/float64(out.Completed+out.Dropped))
		ratioErr = append(ratioErr, out.MeanRatioError)
	}
	return &SchedulerValidationResult{
		Config:        cfg,
		RatePct:       stats.Summarize(ratePct),
		WindowRatePct: stats.Summarize(windowPct),
		DropPct:       stats.Summarize(dropPct),
		RatioErr:      stats.Summarize(ratioErr),
		Predicted:     stats.Summarize(pred),
		Realized:      stats.Summarize(real),
	}, nil
}

// Render prints the validation summary.
func (r *SchedulerValidationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Second-step dynamic-scheduler validation (%d trials, %d nodes, %d CRACs)\n\n",
		r.Config.Trials, r.Config.NNodes, r.Config.NCracs)
	fmt.Fprintf(&b, "Stage-3 predicted reward rate : %s\n", r.Predicted)
	fmt.Fprintf(&b, "Realized reward rate          : %s\n", r.Realized)
	fmt.Fprintf(&b, "Realized / predicted          : %.1f%% ± %.1f (admitted)\n", r.RatePct.Mean, r.RatePct.HalfCI95)
	fmt.Fprintf(&b, "Completed-in-window / pred.   : %.1f%% ± %.1f (lower bound)\n", r.WindowRatePct.Mean, r.WindowRatePct.HalfCI95)
	fmt.Fprintf(&b, "Dropped tasks                 : %.1f%% ± %.1f\n", r.DropPct.Mean, r.DropPct.HalfCI95)
	fmt.Fprintf(&b, "Mean |ATC/TC − 1|             : %.3f ± %.3f\n", r.RatioErr.Mean, r.RatioErr.HalfCI95)
	return b.String()
}
